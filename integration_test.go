package urel_test

import (
	"strings"
	"testing"

	"urel"
	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/tpch"
	"urel/internal/uldb"
	"urel/internal/wsd"
)

// TestIntegrationFullPipeline drives the complete stack end to end on a
// tiny, fully enumerable world-set: generator -> SQL -> translation ->
// evaluation -> certain answers -> confidence, everything checked
// against brute-force world enumeration.
func TestIntegrationFullPipeline(t *testing.T) {
	p := tpch.DefaultParams(0.002, 0.004, 0.25)
	p.Seed = 7
	db, st, err := tpch.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.W.CountWorlds(5000); err != nil {
		t.Skipf("world-set too large to enumerate (log10=%g)", st.Log10Worlds)
	}

	// SQL -> possible answers == ground truth.
	parsed, err := sqlparse.Parse(
		"possible select o_orderkey from orders where o_totalprice > 100000")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.EvalPoss(parsed.Query, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.PossibleGroundTruth(parsed.Query, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("SQL possible answers: %d vs ground truth %d", got.Len(), want.Len())
	}

	// Certain answers == per-world intersection.
	inner := core.StripPoss(parsed.Query)
	cert, err := db.CertainAnswers(inner)
	if err != nil {
		t.Fatal(err)
	}
	certWant, err := db.CertainGroundTruth(inner, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.EqualAsSet(certWant) {
		t.Fatalf("certain answers: %d vs ground truth %d", cert.Len(), certWant.Len())
	}

	// Confidences sum correctly against world probabilities.
	res, err := db.Eval(inner, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	confs, err := res.Confidences()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range confs {
		if c.P <= 0 || c.P > 1+1e-12 {
			t.Fatalf("confidence out of range: %+v", c)
		}
	}

	// Normalization preserves the world-set end to end.
	norm, err := db.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := db.WorldSetSignature(5000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := norm.WorldSetSignature(40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("normalization changed the world count: %d vs %d", len(s1), len(s2))
	}

	// Normalized database -> WSD -> back, still the same world-set.
	w, err := wsd.FromNormalizedUDB(norm)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := w.WorldSetSignature(40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s3) != len(s1) {
		t.Fatalf("WSD conversion changed the world count: %d vs %d", len(s3), len(s1))
	}
}

// TestIntegrationTupleLevelAndULDB checks the Figure 14 representation
// chain on a tiny instance: attribute-level -> tuple-level -> ULDB all
// agree on possible answers.
func TestIntegrationTupleLevelAndULDB(t *testing.T) {
	p := tpch.DefaultParams(0.002, 0.01, 0.1)
	p.Seed = 3
	db, _, err := tpch.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Project(
		core.Select(core.Rel("customer"),
			engine.Cmp(engine.EQ, engine.Col("c_mktsegment"), engine.ConstStr("BUILDING"))),
		"c_custkey")
	attr, err := db.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tpch.TupleLevel(db, "customer")
	if err != nil {
		t.Fatal(err)
	}
	tuple, err := tl.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !attr.EqualAsSet(tuple) {
		t.Fatalf("attribute-level (%d) vs tuple-level (%d) possible answers differ",
			attr.Len(), tuple.Len())
	}
	// ULDB: select + project + minimize, same possible tuples.
	cdb := core.NewUDB()
	cdb.W = tl.W.Clone()
	// Move only the customer relation across.
	if err := copyRelation(cdb, tl, "customer"); err != nil {
		t.Fatal(err)
	}
	udb, err := tpch.ULDBFromTupleLevel(cdb)
	if err != nil {
		t.Fatal(err)
	}
	ids := uldb.NewIDGen(1 << 41)
	sel, err := uldb.Select(udb.Rels["customer"],
		engine.Cmp(engine.EQ, engine.Col("c_mktsegment"), engine.ConstStr("BUILDING")), ids)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := uldb.Project(sel, []string{"c_custkey"}, ids)
	if err != nil {
		t.Fatal(err)
	}
	got := uldb.Minimize(proj).PossibleTuples()
	if !got.EqualAsSet(attr) {
		t.Fatalf("ULDB (%d) vs attribute-level (%d) possible answers differ",
			got.Len(), attr.Len())
	}
}

func copyRelation(dst, src *core.UDB, name string) error {
	rs := src.Rels[name]
	if err := dst.AddRelation(name, rs.Attrs...); err != nil {
		return err
	}
	for _, p := range rs.Parts {
		np, err := dst.AddPartition(name, p.Name, p.Attrs...)
		if err != nil {
			return err
		}
		np.Rows = append(np.Rows, p.Rows...)
	}
	return nil
}

// TestIntegrationPublicSQLToCertain uses only exported API surfaces
// plus the SQL front-end the way cmd/urquery does.
func TestIntegrationPublicSQLToCertain(t *testing.T) {
	db := urel.New()
	db.MustAddRelation("emp", "name", "dept")
	x := db.W.NewBoolVar("x")
	un := db.MustAddPartition("emp", "u_name", "name")
	ud := db.MustAddPartition("emp", "u_dept", "dept")
	un.Add(nil, 1, urel.Str("ada"))
	ud.Add(urel.D(urel.A(x, 1)), 1, urel.Str("db"))
	ud.Add(urel.D(urel.A(x, 2)), 1, urel.Str("os"))
	un.Add(nil, 2, urel.Str("bob"))
	ud.Add(nil, 2, urel.Str("db"))

	parsed, err := sqlparse.Parse("certain select name from emp where dept = 'db'")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := db.CertainAnswers(core.StripPoss(parsed.Query))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 1 || cert.Rows[0][0].S != "bob" {
		t.Fatalf("only bob is certainly in db: %s", cert)
	}
	poss, err := db.EvalPoss(urel.Poss(parsed.Query), urel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Len() != 2 {
		t.Fatalf("ada and bob are possibly in db: %d", poss.Len())
	}
	// Explain renders.
	plan, err := db.ExplainQuery(parsed.Query, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "u_dept") {
		t.Fatalf("plan should scan the dept partition:\n%s", plan)
	}
}
