// Command urgen generates an uncertain TPC-H database (the paper's
// extended dbgen) and reports its characteristics — the per-dataset
// numbers behind Figure 9 — optionally dumping the U-relations as CSV.
//
// Usage:
//
//	urgen -scale 0.1 -x 0.01 -z 0.25 [-seed 42] [-dump dir]
//	urgen -scale 0.1 -save /data/bench                  # store snapshot
//	urgen -scale 0.1 -save /data/bench -shards 2        # sharded snapshot
//	urgen -scale 0.1 -save /data/bench -index orders.o_custkey  # + secondary index
//
// With -shards N the snapshot splits into /data/bench/shard0 ..
// shardN-1: the -sharded relations hash-partition by tuple id, the rest
// replicate, and each directory is a complete store an urserved node
// can serve (front them with urserved -coordinator).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"urel/internal/core"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/tpch"
	"urel/internal/txn"
)

func main() {
	scale := flag.Float64("scale", 0.1, "scale units (1.0 ≈ 15K orders)")
	x := flag.Float64("x", 0.01, "uncertainty ratio")
	z := flag.Float64("z", 0.25, "correlation ratio (Zipf parameter)")
	m := flag.Int("m", 8, "maximum alternatives per field")
	p := flag.Float64("p", 0.25, "combination survival probability")
	seed := flag.Int64("seed", 42, "generator seed")
	dump := flag.String("dump", "", "directory to dump U-relations as CSV")
	save := flag.String("save", "", "directory to save as a columnar store snapshot")
	shards := flag.Int("shards", 1, "with -save: split into N shard directories (shard0..shardN-1)")
	sharded := flag.String("sharded", "lineitem,orders", "with -shards > 1: comma-separated relations to hash-partition by tid")
	index := flag.String("index", "", "with -save: comma-separated rel.col secondary indexes to declare (built per shard directory)")
	flag.Parse()

	params := tpch.DefaultParams(*scale, *x, *z)
	params.MaxAlternatives = *m
	params.SurvivalP = *p
	params.Seed = *seed

	db, st, err := tpch.Generate(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urgen:", err)
		os.Exit(1)
	}
	fmt.Printf("generated uncertain TPC-H (%s)\n", params)
	fmt.Printf("  tables:\n")
	for _, name := range db.RelNames() {
		nparts := len(db.Rels[name].Parts)
		rows := 0
		for _, pt := range db.Rels[name].Parts {
			rows += len(pt.Rows)
		}
		fmt.Printf("    %-10s %8d tuples  %2d partitions  %9d partition rows\n",
			name, st.Rows[name], nparts, rows)
	}
	fmt.Printf("  uncertain fields: %d\n", st.UncertainFields)
	fmt.Printf("  variables:        %d\n", st.Vars)
	fmt.Printf("  worlds:           10^%.1f\n", st.Log10Worlds)
	fmt.Printf("  max local worlds: %d\n", st.MaxLocalWorlds)
	fmt.Printf("  size:             %.2f MB\n", float64(st.SizeBytes)/(1<<20))

	if *dump != "" {
		if err := dumpCSV(db, *dump); err != nil {
			fmt.Fprintln(os.Stderr, "urgen: dump:", err)
			os.Exit(1)
		}
		fmt.Printf("  dumped to %s\n", *dump)
	}

	if *save != "" {
		if *shards <= 1 {
			if err := store.Save(db, *save); err != nil {
				fmt.Fprintln(os.Stderr, "urgen: save:", err)
				os.Exit(1)
			}
			fmt.Printf("  saved to %s\n", *save)
		} else {
			dirs := make([]string, *shards)
			for i := range dirs {
				dirs[i] = filepath.Join(*save, fmt.Sprintf("shard%d", i))
				if err := os.MkdirAll(dirs[i], 0o755); err != nil {
					fmt.Fprintln(os.Stderr, "urgen: save:", err)
					os.Exit(1)
				}
			}
			rels := strings.Split(*sharded, ",")
			if err := store.ShardedSave(db, dirs, rels); err != nil {
				fmt.Fprintln(os.Stderr, "urgen: save:", err)
				os.Exit(1)
			}
			fmt.Printf("  saved %d shards under %s (sharded: %s)\n", *shards, *save, *sharded)
		}
		if *index != "" {
			var dirs []string
			if *shards <= 1 {
				dirs = []string{*save}
			} else {
				for i := 0; i < *shards; i++ {
					dirs = append(dirs, filepath.Join(*save, fmt.Sprintf("shard%d", i)))
				}
			}
			if err := declareIndexes(dirs, *index); err != nil {
				fmt.Fprintln(os.Stderr, "urgen: index:", err)
				os.Exit(1)
			}
			fmt.Printf("  indexed: %s\n", *index)
		}
	}
}

// declareIndexes declares each rel.col spec on every saved directory —
// indexes are shard-local, so a sharded snapshot builds one set of runs
// per shard, each covering exactly that shard's rows.
func declareIndexes(dirs []string, specs string) error {
	for _, dir := range dirs {
		rw, err := txn.Open(dir, txn.Options{DisableAutoFlush: true})
		if err != nil {
			return err
		}
		for _, spec := range strings.Split(specs, ",") {
			rel, col, ok := strings.Cut(strings.TrimSpace(spec), ".")
			if !ok {
				rw.Close()
				return fmt.Errorf("bad -index spec %q (want rel.col)", spec)
			}
			if _, err := rw.ExecStmt(&sqlparse.CreateIndexStmt{Table: rel, Col: col}); err != nil {
				rw.Close()
				return err
			}
		}
		if err := rw.Close(); err != nil {
			return err
		}
	}
	return nil
}

// dumpCSV writes every partition as <dir>/<partition>.csv with columns
// d (descriptor), tid, and the value attributes, plus the world table
// as w.csv.
func dumpCSV(db *core.UDB, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.RelNames() {
		for _, p := range db.Rels[name].Parts {
			f, err := os.Create(filepath.Join(dir, p.Name+".csv"))
			if err != nil {
				return err
			}
			cw := csv.NewWriter(f)
			header := append([]string{"d", "tid"}, p.Attrs...)
			if err := cw.Write(header); err != nil {
				f.Close()
				return err
			}
			for _, r := range p.Rows {
				rec := []string{r.D.String(), strconv.FormatInt(r.TID, 10)}
				for _, v := range r.Vals {
					rec = append(rec, v.String())
				}
				if err := cw.Write(rec); err != nil {
					f.Close()
					return err
				}
			}
			cw.Flush()
			if err := cw.Error(); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	// World table.
	f, err := os.Create(filepath.Join(dir, "w.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"var", "rng"}); err != nil {
		return err
	}
	for _, row := range db.W.Relation().Rows {
		if err := cw.Write([]string{row[0].String(), row[1].String()}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
