package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"urel/internal/tpch"
)

func TestDumpCSV(t *testing.T) {
	db, _, err := tpch.Generate(tpch.DefaultParams(0.002, 0.01, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := dumpCSV(db, dir); err != nil {
		t.Fatal(err)
	}
	// One CSV per partition plus the world table.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantParts := 1 // w.csv
	for _, name := range db.RelNames() {
		wantParts += len(db.Rels[name].Parts)
	}
	if len(entries) != wantParts {
		t.Fatalf("want %d files, got %d", wantParts, len(entries))
	}
	// The customer mktsegment partition parses back as CSV with the
	// right header and row count.
	f, err := os.Open(filepath.Join(dir, "u_customer_c_mktsegment.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatal("no data rows")
	}
	h := recs[0]
	if h[0] != "d" || h[1] != "tid" || h[2] != "c_mktsegment" {
		t.Fatalf("bad header: %v", h)
	}
	var part int
	for _, p := range db.Rels["customer"].Parts {
		if p.Name == "u_customer_c_mktsegment" {
			part = len(p.Rows)
		}
	}
	if len(recs)-1 != part {
		t.Fatalf("row count mismatch: csv %d vs partition %d", len(recs)-1, part)
	}
	// World table file exists and has the header.
	wf, err := os.Open(filepath.Join(dir, "w.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	wrecs, err := csv.NewReader(wf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(wrecs) < 2 || wrecs[0][0] != "var" {
		t.Fatalf("world table dump wrong: %v", wrecs[0])
	}
}
