// Command urbench regenerates the tables and figures of the paper's
// evaluation section on the Go substrate.
//
// Usage:
//
//	urbench -figure 9            # Figure 9 world-count/size table
//	urbench -figure 10           # merge-aware plan for Q1
//	urbench -figure 11           # answer sizes
//	urbench -figure 12           # query evaluation times
//	urbench -figure 13           # optimized plan for Q2
//	urbench -figure 14           # attr vs tuple-level vs ULDB
//	urbench -figure 6            # succinctness separations (Figs 6/7)
//	urbench -figure parallel     # serial vs parallel join speedup
//	urbench -figure all          # everything
//	urbench -grid paper|quick|smoke  # sweep size (default quick)
//	urbench -workers 8           # worker count for -figure parallel
//	urbench -seed 7              # generator seed for every dataset
//	urbench -save /tmp/snap      # persist the grid's datasets, then exit
//	urbench -load /tmp/snap      # run figures from the stored databases
//	urbench -json BENCH.json     # run the machine-readable trajectory
//	                             # suite, write it, and exit
//	urbench -compare a.json b.json  # compare two trajectory files,
//	                             # exit 1 on a >25% regression
package main

import (
	"flag"
	"fmt"
	"os"

	"urel/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "figure to regenerate: 6, 9, 10, 11, 12, 13, 14, parallel, all")
	gridName := flag.String("grid", "quick", "parameter sweep: quick, paper, or smoke")
	scale := flag.Float64("scale", 0, "override: single scale for figures 11/13/14")
	workers := flag.Int("workers", 0, "worker goroutines for -figure parallel (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 0, "generator seed for every dataset of the sweep (0 = tpch default)")
	saveDir := flag.String("save", "", "generate the grid's datasets, persist them under this directory, and exit")
	loadDir := flag.String("load", "", "run figures against databases previously saved with -save (cold, segment-backed scans)")
	jsonPath := flag.String("json", "", "run the machine-readable benchmark suite, write it to this file, and exit")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files (old new); exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.25, "fractional regression tolerance for -compare")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "urbench: -compare needs two files: old.json new.json")
			os.Exit(2)
		}
		old, err := bench.ReadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "urbench:", err)
			os.Exit(1)
		}
		cur, err := bench.ReadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "urbench:", err)
			os.Exit(1)
		}
		regressions := bench.CompareReports(old, cur, *tolerance, os.Stdout)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "urbench: %d regression(s):\n", len(regressions))
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Println("no regressions past tolerance")
		return
	}

	if *jsonPath != "" {
		rep, err := bench.JSONSuite(os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urbench: json suite:", err)
			os.Exit(1)
		}
		if err := bench.WriteReport(rep, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "urbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d metrics, %s %s/%s)\n",
			*jsonPath, len(rep.Results), rep.GoVersion, rep.GOOS, rep.GOARCH)
		return
	}

	grid := bench.QuickGrid()
	switch *gridName {
	case "paper":
		grid = bench.PaperGrid()
	case "smoke":
		grid = bench.SmokeGrid()
	}
	grid.Seed = *seed
	grid.Dir = *loadDir

	if *saveDir != "" {
		if err := bench.SaveGrid(grid, *saveDir, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "urbench: save: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fig11Scale := grid.Scales[len(grid.Scales)-1]
	if *scale > 0 {
		fig11Scale = *scale
	}

	run := func(name string, f func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "urbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("9", func() error {
		_, err := bench.Figure9(grid, os.Stdout)
		return err
	})
	run("10", func() error {
		_, err := bench.Figure10(0.01, 0.01, 0.25, os.Stdout)
		return err
	})
	run("11", func() error {
		_, err := bench.Figure11(fig11Scale, grid, os.Stdout)
		return err
	})
	run("12", func() error {
		_, err := bench.Figure12(grid, os.Stdout)
		return err
	})
	run("13", func() error {
		_, err := bench.Figure13(0.1, 0.1, 0.1, os.Stdout)
		return err
	})
	run("14", func() error {
		scales := []float64{0.01, 0.02, 0.05}
		xs := []float64{0.001, 0.01}
		if *gridName == "paper" {
			scales = []float64{0.01, 0.05, 0.1}
		}
		_, err := bench.Figure14(scales, xs, 0.1, os.Stdout)
		return err
	})
	run("6", func() error {
		_, err := bench.Succinctness([]int{2, 4, 6, 8, 10, 12, 14, 16}, os.Stdout)
		return err
	})
	run("parallel", func() error {
		sizes := []int{20000, 100000}
		reps := 3
		if *gridName == "paper" {
			sizes = []int{20000, 100000, 400000}
			reps = 5
		}
		_, err := bench.ParallelJoinSweep(sizes, *workers, reps, os.Stdout)
		return err
	})
}
