package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/store"
	"urel/internal/ws"
)

// clusterDataset builds the integration test's database: readings is
// the sharded fact relation (tuple ids chosen so the certain reading
// (1, 70) has its two representation rows on different shards), sensors
// the replicated dimension.
func clusterDataset() *core.UDB {
	db := core.NewUDB()
	db.MustAddRelation("readings", "sid", "temp")
	db.MustAddRelation("sensors", "sensor", "name")
	x := db.W.NewBoolVar("x")
	ur := db.MustAddPartition("readings", "u_read", "sid", "temp")
	us := db.MustAddPartition("sensors", "u_sens", "sensor", "name")
	ur.Add(ws.MustDescriptor(ws.A(x, 1)), 1, engine.Int(1), engine.Int(70))
	ur.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(1), engine.Int(70))
	ur.Add(ws.MustDescriptor(ws.A(x, 1)), 3, engine.Int(2), engine.Int(80))
	ur.Add(nil, 4, engine.Int(3), engine.Int(90))
	us.Add(nil, 10, engine.Int(1), engine.Str("alpha"))
	us.Add(nil, 11, engine.Int(2), engine.Str("beta"))
	us.Add(nil, 12, engine.Int(3), engine.Str("gamma"))
	return db
}

// node is one urserved child process.
type node struct {
	addr string
	cmd  *exec.Cmd
	out  *bytes.Buffer
}

func (n *node) url() string { return "http://" + n.addr }

// startNode re-execs the test binary as a real urserved process (the
// TestMain URSERVED_CHILD hook) and waits for liveness.
func startNode(t *testing.T, args string) *node {
	t.Helper()
	addr := freePort(t)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), fmt.Sprintf("URSERVED_CHILD=-addr %s %s", addr, args))
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	n := &node{addr: addr, cmd: cmd, out: out}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() })
	for i := 0; i < 200; i++ {
		resp, err := http.Get(n.url() + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return n
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("node %q never came up\n%s", args, out.String())
	return nil
}

func postJSON(t *testing.T, url string, req any) (int, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode, out
}

// multisetRows canonicalizes a response's rows for order-independent
// comparison across nodes.
func multisetRows(t *testing.T, body map[string]any) map[string]int {
	t.Helper()
	raw, ok := body["rows"].([]any)
	if !ok {
		t.Fatalf("response has no rows: %v", body)
	}
	out := map[string]int{}
	for _, r := range raw {
		b, _ := json.Marshal(r)
		out[string(b)]++
	}
	return out
}

// TestClusterMultiProcess is the end-to-end acceptance test: a real
// five-process topology — two shard primaries, a WAL-shipping replica
// behind each, and a coordinator — answers every uncertainty mode
// identically to a single node over the unsplit database, absorbs
// concurrent reads and writes, converges its replicas, and survives a
// primary being SIGKILLed by failing reads over to the replica.
func TestClusterMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("five real processes; skipped in -short")
	}
	db := clusterDataset()
	shard0, shard1 := t.TempDir(), t.TempDir()
	if err := store.ShardedSave(db, []string{shard0, shard1}, []string{"readings"}); err != nil {
		t.Fatal(err)
	}
	singleDir := t.TempDir()
	if err := store.Save(clusterDataset(), singleDir); err != nil {
		t.Fatal(err)
	}

	p0 := startNode(t, "-db demo="+shard0+" -rw")
	p1 := startNode(t, "-db demo="+shard1+" -rw")
	r0 := startNode(t, "-db demo="+t.TempDir()+" -follow demo="+p0.url())
	r1 := startNode(t, "-db demo="+t.TempDir()+" -follow demo="+p1.url())
	single := startNode(t, "-db demo="+singleDir)

	topo := map[string]any{"catalogs": map[string]any{"demo": map[string]any{
		"sharded": []string{"readings"},
		"shards": []map[string]any{
			{"name": "s0", "nodes": []string{p0.url(), r0.url()}},
			{"name": "s1", "nodes": []string{p1.url(), r1.url()}},
		},
	}}}
	topoPath := filepath.Join(t.TempDir(), "topology.json")
	tb, _ := json.Marshal(topo)
	if err := os.WriteFile(topoPath, tb, 0o644); err != nil {
		t.Fatal(err)
	}
	coord := startNode(t, "-coordinator "+topoPath)

	// Differential: coordinator ≡ single node for every mode.
	queries := []string{
		"POSSIBLE SELECT sid, temp FROM readings",
		"CERTAIN SELECT sid, temp FROM readings",
		"SELECT sid, temp FROM readings",
		"CONF SELECT sid FROM readings",
		"CONF BOUNDS SELECT sid FROM readings",
		"POSSIBLE SELECT name FROM readings, sensors WHERE sid = sensor",
	}
	for _, sql := range queries {
		req := map[string]any{"sql": sql, "db": "demo"}
		code, got := postJSON(t, coord.url()+"/query", req)
		if code != 200 {
			t.Fatalf("%s: coordinator status %d: %v", sql, code, got)
		}
		wcode, want := postJSON(t, single.url()+"/query", req)
		if wcode != 200 {
			t.Fatalf("%s: single status %d: %v", sql, wcode, want)
		}
		gs, wants := multisetRows(t, got), multisetRows(t, want)
		if fmt.Sprint(gs) != fmt.Sprint(wants) {
			t.Fatalf("%s:\n coordinator: %v\n single node: %v", sql, gs, wants)
		}
	}

	// Concurrent reads and writes through the coordinator.
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				sql := queries[(g+i)%len(queries)]
				code, body := postJSON(t, coord.url()+"/query", map[string]any{"sql": sql, "db": "demo"})
				if code != 200 {
					errs <- fmt.Sprintf("%s: %d %v", sql, code, body)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			sql := fmt.Sprintf("insert into readings values (%d, %d)", 100+i, 1000+i)
			code, body := postJSON(t, coord.url()+"/exec", map[string]any{"sql": sql, "db": "demo"})
			if code != 200 {
				errs <- fmt.Sprintf("%s: %d %v", sql, code, body)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	// Every acknowledged write becomes visible to scattered reads.
	// Scatter sub-requests rotate across a shard's nodes, so a read may
	// land on the replica while it is still applying the tail of the
	// WAL — retry briefly rather than demand read-your-writes from an
	// asynchronously shipped follower.
	readDeadline := time.Now().Add(10 * time.Second)
	var code int
	var body map[string]any
	for {
		code, body = postJSON(t, coord.url()+"/query",
			map[string]any{"sql": "POSSIBLE SELECT sid, temp FROM readings", "db": "demo"})
		if code != 200 {
			t.Fatalf("read after writes: %d %v", code, body)
		}
		rows := multisetRows(t, body)
		missing := ""
		for i := 0; i < 10; i++ {
			if k := fmt.Sprintf("[%d,%d]", 100+i, 1000+i); rows[k] != 1 {
				missing = k
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(readDeadline) {
			t.Fatalf("write %s never became visible to the merged read: %v", missing, rows)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Replica convergence: the writes all landed on shard 0's primary
	// (insert routing); its replica must apply them via /wal/stream.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = postJSON(t, r0.url()+"/query",
			map[string]any{"sql": "POSSIBLE SELECT sid, temp FROM readings", "db": "demo"})
		if code == 200 && multisetRows(t, body)["[109,1009]"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge: %d %v\n%s", code, body, r0.out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	for {
		resp, err := http.Get(r0.url() + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Catalogs map[string]struct {
				Replica *struct {
					LagBytes int64 `json:"lag_bytes"`
				} `json:"replica"`
			} `json:"catalogs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		rep := st.Catalogs["demo"].Replica
		if rep == nil {
			t.Fatal("/stats on the follower reports no replica state")
		}
		if rep.LagBytes == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica lag stuck at %d bytes", rep.LagBytes)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Kill shard 0's primary: reads must fail over to its replica and
	// still include the replicated writes; writes (primary-only) must
	// fail with the explicit 503 naming the shard.
	if err := p0.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = p0.cmd.Process.Wait()
	code, body = postJSON(t, coord.url()+"/query",
		map[string]any{"sql": "POSSIBLE SELECT sid, temp FROM readings", "db": "demo"})
	if code != 200 {
		t.Fatalf("read after primary kill: %d %v", code, body)
	}
	rows := multisetRows(t, body)
	if rows["[109,1009]"] != 1 || rows["[1,70]"] != 1 {
		t.Fatalf("replica-served read lost rows: %v", rows)
	}
	code, body = postJSON(t, coord.url()+"/exec",
		map[string]any{"sql": "insert into readings values (200, 2000)", "db": "demo"})
	if code != http.StatusServiceUnavailable || !strings.Contains(body["error"].(string), `shard "s0"`) {
		t.Fatalf("write with dead primary: %d %v, want 503 naming s0", code, body)
	}
}
