package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/store"
	"urel/internal/txn"
)

// TestMain doubles as the child process of the signal test: when
// URSERVED_CHILD is set, the binary behaves exactly like urserved
// (same run function), so the parent can exercise the real
// SIGTERM-handling path of a real process.
func TestMain(m *testing.M) {
	if args := os.Getenv("URSERVED_CHILD"); args != "" {
		os.Exit(run(strings.Fields(args), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestGracefulShutdownOnSIGTERM is the satellite acceptance test: a
// real urserved process, opened read-write, receives a real SIGTERM
// and must drain, flush the WAL, close cleanly, and exit 0 — with the
// commit it acknowledged before the signal surviving a subsequent
// reopen of the catalog directory.
func TestGracefulShutdownOnSIGTERM(t *testing.T) {
	db := core.NewUDB()
	db.MustAddRelation("kv", "k", "v")
	u := db.MustAddPartition("kv", "u_kv", "k", "v")
	u.Add(nil, 1, engine.Int(1), engine.Int(10))
	dir := t.TempDir()
	if err := store.Save(db, dir); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("URSERVED_CHILD=-addr %s -db kv=%s -rw", addr, dir))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for liveness.
	alive := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				alive = true
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !alive {
		t.Fatalf("server never came up\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
	}

	// Commit a write the shutdown must not lose.
	resp, err := http.Post("http://"+addr+"/exec", "application/json",
		strings.NewReader(`{"sql": "insert into kv values (2, 20)"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/exec returned %d", resp.StatusCode)
	}

	// The real signal.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited non-zero: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("process did not exit after SIGTERM\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "shutting down") || !strings.Contains(out, "drained and closed") {
		t.Fatalf("shutdown narration missing:\n%s", out)
	}

	// The acknowledged commit replays from the WAL on reopen.
	d, err := txn.Open(dir, txn.Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rows, err := d.Snapshot().Rels["kv"].Parts[0].Back.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("reopened kv has %d rows, want 2 (the pre-shutdown commit must survive)", len(rows))
	}
}
