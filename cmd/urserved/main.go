// Command urserved serves U-relational databases over HTTP/JSON: the
// sqlparse dialect ([POSSIBLE|CERTAIN|CONF] SELECT ...) against one or
// more catalogs saved with urel.Save / urbench -save, with a shared
// decoded-segment cache, a plan cache, and admission control. With
// -rw the catalogs open through the transactional write path: DML
// statements (INSERT/DELETE/UPDATE) execute on POST /exec, reads serve
// MVCC snapshots, and commits are WAL-durable.
//
// A node can also take cluster roles: -coordinator serves a sharded
// catalog by scatter-gathering over the shard nodes of a topology file
// (internal/cluster.Spec), and -follow opens a catalog as a WAL-shipping
// read replica of a -rw primary (see docs/OPERATIONS.md).
//
// Usage:
//
//	urserved -addr :8080 -db /path/to/saved/db
//	urserved -db tpch=/snap/s0.1_x0.01_... -db vehicles=/data/vehicles
//	urserved -db /data/db -max-concurrent 16 -row-limit 1000000 -timeout 30s
//	urserved -db /data/db -rw
//	urserved -coordinator topology.json
//	urserved -db bench=/data/replica -follow bench=http://primary:8080
//
// Endpoints:
//
//	POST /query     {"sql": "...", "db": "...", "limit": n, "timeout_ms": n}
//	POST /exec      {"sql": "...", "db": "..."} (DML; requires -rw)
//	GET  /catalogs  registered catalogs
//	GET  /stats     query counters, cache statistics, write-path epochs
//	GET  /metrics   Prometheus text exposition of the same state
//	GET  /healthz   liveness
//
// On SIGTERM or SIGINT the server shuts down gracefully: the listener
// stops, in-flight queries drain (up to -drain-timeout), the write
// path flushes and closes its WAL, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"urel/internal/cluster"
	"urel/internal/server"
)

// dbFlags collects repeated -db name=dir (or bare dir) mappings.
type dbFlags map[string]string

func (d dbFlags) String() string { return fmt.Sprintf("%v", map[string]string(d)) }

func (d dbFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok {
		dir = v
		name = filepath.Base(filepath.Clean(v))
	}
	if name == "" || dir == "" {
		return fmt.Errorf("want name=dir or dir, got %q", v)
	}
	if _, dup := d[name]; dup {
		return fmt.Errorf("catalog %q named twice", name)
	}
	d[name] = dir
	return nil
}

// followFlags collects repeated -follow name=primary-url mappings.
type followFlags map[string]string

func (f followFlags) String() string { return fmt.Sprintf("%v", map[string]string(f)) }

func (f followFlags) Set(v string) error {
	name, upstream, ok := strings.Cut(v, "=")
	if !ok || name == "" || upstream == "" {
		return fmt.Errorf("want name=primary-url, got %q", v)
	}
	if _, dup := f[name]; dup {
		return fmt.Errorf("catalog %q followed twice", name)
	}
	f[name] = upstream
	return nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with injectable arguments and streams, so the graceful
// shutdown path is testable with a real signal against a real process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("urserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	catalogs := dbFlags{}
	fs.Var(catalogs, "db", "catalog to serve, as name=dir or dir (repeatable)")
	follows := followFlags{}
	fs.Var(follows, "follow", "serve a catalog as a read replica, as name=primary-url; needs a local -db name=dir (repeatable)")
	coordSpec := fs.String("coordinator", "", "serve sharded catalogs by scatter-gather over this topology file")
	addr := fs.String("addr", ":8080", "listen address")
	rw := fs.Bool("rw", false, "open catalogs read-write: accept DML on POST /exec (WAL-durable commits)")
	maxConc := fs.Int("max-concurrent", 0, "queries executing at once (0 = 2×GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", time.Second, "max wait for an execution slot before 429")
	rowLimit := fs.Int("row-limit", 0, "per-query materialized row cap (0 = default 1<<20)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query deadline")
	drain := fs.Duration("drain-timeout", 15*time.Second, "max wait for in-flight queries on shutdown")
	cacheMB := fs.Int64("cache-mb", 256, "shared decoded-segment cache budget in MiB (0 disables)")
	planCache := fs.Int("plan-cache", 0, "parsed-statement cache entries (0 = default 512)")
	workers := fs.Int("workers", 0, "engine parallelism per query (0 = serial)")
	mcSamples := fs.Int("mc-samples", 0, "Monte-Carlo samples for CONF fallback (0 = default 20000)")
	flushKB := fs.Int64("flush-kb", 0, "write-path auto-flush threshold in KiB (0 = default 4096)")
	slowMS := fs.Int64("slow-query-ms", 0, "log queries at or above this many milliseconds as JSON lines on stderr (0 disables; enables operator tracing)")
	promoteAfter := fs.Duration("promote-after", 0, "follower catalogs: self-promote to writable primary after this long without primary contact (0 disables auto-promotion)")
	pprofOn := fs.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if len(catalogs) == 0 && *coordSpec == "" {
		fmt.Fprintln(stderr, "urserved: at least one -db (or a -coordinator topology) is required")
		fs.Usage()
		return 2
	}
	var clusterCfg map[string]cluster.CatalogSpec
	if *coordSpec != "" {
		spec, err := cluster.LoadSpec(*coordSpec)
		if err != nil {
			fmt.Fprintln(stderr, "urserved:", err)
			return 1
		}
		clusterCfg = spec.Catalogs
	}
	cfg := server.Config{
		Catalogs:        catalogs,
		Cluster:         clusterCfg,
		Follow:          follows,
		MaxConcurrent:   *maxConc,
		QueueWait:       *queueWait,
		MaxRows:         *rowLimit,
		Timeout:         *timeout,
		SegCacheBytes:   *cacheMB << 20,
		DisableSegCache: *cacheMB == 0,
		PlanCacheSize:   *planCache,
		Parallelism:     *workers,
		MCSamples:       *mcSamples,
		Writable:        *rw,
		FlushBytes:      *flushKB << 10,
		PromoteAfter:    *promoteAfter,
	}
	if *slowMS > 0 {
		cfg.SlowQueryThreshold = time.Duration(*slowMS) * time.Millisecond
		cfg.SlowLogWriter = stderr
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "urserved:", err)
		return 1
	}
	for _, name := range s.CatalogNames() {
		switch {
		case clusterCfg[name].Shards != nil:
			fmt.Fprintf(stdout, "serving catalog %q as coordinator over %d shards\n",
				name, len(clusterCfg[name].Shards))
		case follows[name] != "":
			fmt.Fprintf(stdout, "serving catalog %q from %s (replica of %s)\n",
				name, catalogs[name], follows[name])
		default:
			mode := "read-only"
			if *rw {
				mode = "read-write"
			}
			fmt.Fprintf(stdout, "serving catalog %q from %s (%s)\n", name, catalogs[name], mode)
		}
	}

	handler := s.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	fmt.Fprintf(stdout, "urserved listening on %s\n", *addr)

	// Graceful shutdown: on SIGTERM/SIGINT stop accepting connections,
	// drain in-flight queries, then flush and close the write path
	// (WAL sync + file handles) before exiting 0. SIGHUP re-reads the
	// -coordinator topology file and hot-swaps the coordinators (the
	// file-based twin of POST /topology).
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)
	hupCh := make(chan os.Signal, 1)
	if *coordSpec != "" {
		signal.Notify(hupCh, syscall.SIGHUP)
		defer signal.Stop(hupCh)
	}

	for {
		select {
		case err := <-serveErr:
			s.Close()
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(stderr, "urserved:", err)
				return 1
			}
			return 0
		case <-hupCh:
			spec, err := cluster.LoadSpec(*coordSpec)
			if err != nil {
				fmt.Fprintln(stderr, "urserved: topology reload:", err)
				continue
			}
			if err := s.ReloadTopology(spec.Catalogs); err != nil {
				fmt.Fprintln(stderr, "urserved: topology reload:", err)
				continue
			}
			fmt.Fprintf(stdout, "urserved: topology reloaded from %s\n", *coordSpec)
		case sig := <-sigCh:
			fmt.Fprintf(stdout, "urserved: caught %v, shutting down\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			err := hs.Shutdown(ctx) // stop listening, drain in-flight requests
			cancel()
			if err != nil {
				fmt.Fprintln(stderr, "urserved: drain:", err)
			}
			if cerr := s.Close(); cerr != nil { // flush + close WAL and segment files
				fmt.Fprintln(stderr, "urserved: close:", cerr)
				return 1
			}
			fmt.Fprintln(stdout, "urserved: drained and closed, bye")
			return 0
		}
	}
}
