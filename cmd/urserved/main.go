// Command urserved serves U-relational databases over HTTP/JSON: the
// sqlparse dialect ([POSSIBLE|CERTAIN|CONF] SELECT ...) against one or
// more catalogs saved with urel.Save / urbench -save, with a shared
// decoded-segment cache, a plan cache, and admission control.
//
// Usage:
//
//	urserved -addr :8080 -db /path/to/saved/db
//	urserved -db tpch=/snap/s0.1_x0.01_... -db vehicles=/data/vehicles
//	urserved -db /data/db -max-concurrent 16 -row-limit 1000000 -timeout 30s
//
// Endpoints:
//
//	POST /query     {"sql": "...", "db": "...", "limit": n, "timeout_ms": n}
//	GET  /catalogs  registered catalogs
//	GET  /stats     query counters and cache statistics
//	GET  /healthz   liveness
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"urel/internal/server"
)

// dbFlags collects repeated -db name=dir (or bare dir) mappings.
type dbFlags map[string]string

func (d dbFlags) String() string { return fmt.Sprintf("%v", map[string]string(d)) }

func (d dbFlags) Set(v string) error {
	name, dir, ok := strings.Cut(v, "=")
	if !ok {
		dir = v
		name = filepath.Base(filepath.Clean(v))
	}
	if name == "" || dir == "" {
		return fmt.Errorf("want name=dir or dir, got %q", v)
	}
	if _, dup := d[name]; dup {
		return fmt.Errorf("catalog %q named twice", name)
	}
	d[name] = dir
	return nil
}

func main() {
	catalogs := dbFlags{}
	flag.Var(catalogs, "db", "catalog to serve, as name=dir or dir (repeatable)")
	addr := flag.String("addr", ":8080", "listen address")
	maxConc := flag.Int("max-concurrent", 0, "queries executing at once (0 = 2×GOMAXPROCS)")
	queueWait := flag.Duration("queue-wait", time.Second, "max wait for an execution slot before 429")
	rowLimit := flag.Int("row-limit", 0, "per-query materialized row cap (0 = default 1<<20)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query deadline")
	cacheMB := flag.Int64("cache-mb", 256, "shared decoded-segment cache budget in MiB (0 disables)")
	planCache := flag.Int("plan-cache", 0, "parsed-statement cache entries (0 = default 512)")
	workers := flag.Int("workers", 0, "engine parallelism per query (0 = serial)")
	mcSamples := flag.Int("mc-samples", 0, "Monte-Carlo samples for CONF fallback (0 = default 20000)")
	flag.Parse()

	if len(catalogs) == 0 {
		fmt.Fprintln(os.Stderr, "urserved: at least one -db is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := server.Config{
		Catalogs:        catalogs,
		MaxConcurrent:   *maxConc,
		QueueWait:       *queueWait,
		MaxRows:         *rowLimit,
		Timeout:         *timeout,
		SegCacheBytes:   *cacheMB << 20,
		DisableSegCache: *cacheMB == 0,
		PlanCacheSize:   *planCache,
		Parallelism:     *workers,
		MCSamples:       *mcSamples,
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urserved:", err)
		os.Exit(1)
	}
	defer s.Close()
	for _, name := range s.CatalogNames() {
		fmt.Printf("serving catalog %q from %s\n", name, catalogs[name])
	}
	fmt.Printf("urserved listening on %s\n", *addr)
	if err := server.ListenAndServe(*addr, s); err != nil {
		fmt.Fprintln(os.Stderr, "urserved:", err)
		os.Exit(1)
	}
}
