package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"urel/internal/store"
)

// postTopology hot-swaps the coordinator's shard lists.
func postTopology(t *testing.T, coord *node, shards []map[string]any) {
	t.Helper()
	topo := map[string]any{"catalogs": map[string]any{"demo": map[string]any{
		"sharded": []string{"readings"},
		"shards":  shards,
	}}}
	code, body := postJSON(t, coord.url()+"/topology", topo)
	if code != 200 {
		t.Fatalf("topology reload: %d %v", code, body)
	}
}

// TestPromotionMultiProcess is the kill-primary acceptance test with
// real processes: a follower armed with -promote-after survives its
// primary being SIGKILLed by self-promoting; the coordinator, once
// re-pointed, resumes writes within 5 seconds of the kill with zero
// acknowledged writes lost; and the resurrected old primary is fenced
// on its first coordinated write — durably, across its own restarts.
func TestPromotionMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("real processes; skipped in -short")
	}
	shard0 := t.TempDir()
	if err := shardedSaveDataset(shard0); err != nil {
		t.Fatal(err)
	}
	p0 := startNode(t, "-db demo="+shard0+" -rw")
	r0 := startNode(t, "-db demo="+t.TempDir()+" -follow demo="+p0.url()+" -promote-after 300ms")

	topoPath := filepath.Join(t.TempDir(), "topology.json")
	topo := map[string]any{"catalogs": map[string]any{"demo": map[string]any{
		"sharded": []string{"readings"},
		"shards":  []map[string]any{{"name": "s0", "nodes": []string{p0.url(), r0.url()}}},
	}}}
	tb, _ := json.Marshal(topo)
	if err := os.WriteFile(topoPath, tb, 0o644); err != nil {
		t.Fatal(err)
	}
	coord := startNode(t, "-coordinator "+topoPath)

	// Acknowledged writes through the coordinator.
	acked := map[string]int{}
	for i := 0; i < 5; i++ {
		sid, temp := 200+i, 2000+i
		code, body := postJSON(t, coord.url()+"/exec",
			map[string]any{"sql": fmt.Sprintf("insert into readings values (%d, %d)", sid, temp), "db": "demo"})
		if code != 200 {
			t.Fatalf("acked write %d: %d %v", i, code, body)
		}
		acked[fmt.Sprintf("[%d,%d]", sid, temp)] = 1
	}
	// Wait for the replica to converge on every acknowledged write.
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := postJSON(t, r0.url()+"/query",
			map[string]any{"sql": "POSSIBLE SELECT sid, temp FROM readings", "db": "demo"})
		if code == 200 {
			rows := multisetRows(t, body)
			ok := true
			for k := range acked {
				ok = ok && rows[k] == 1
			}
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never converged on the acknowledged writes")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// SIGKILL the primary; re-point the topology at the (promoting)
	// follower; writes must resume within 5s of the kill.
	killAt := time.Now()
	if err := p0.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = p0.cmd.Process.Wait()
	postTopology(t, coord, []map[string]any{{"name": "s0", "nodes": []string{r0.url()}}})
	writeDeadline := killAt.Add(5 * time.Second)
	for {
		code, body := postJSON(t, coord.url()+"/exec",
			map[string]any{"sql": "insert into readings values (300, 3000)", "db": "demo"})
		if code == 200 {
			break
		}
		if time.Now().After(writeDeadline) {
			t.Fatalf("writes did not resume within 5s of the kill: %d %v\nreplica log:\n%s", code, body, r0.out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("writes resumed %s after SIGKILL", time.Since(killAt))
	acked["[300,3000]"] = 1

	// Zero acknowledged writes lost.
	code, body := postJSON(t, coord.url()+"/query",
		map[string]any{"sql": "POSSIBLE SELECT sid, temp FROM readings", "db": "demo"})
	if code != 200 {
		t.Fatalf("post-promotion read: %d %v", code, body)
	}
	rows := multisetRows(t, body)
	for k := range acked {
		if rows[k] != 1 {
			t.Fatalf("acknowledged write %s lost after promotion: %v", k, rows)
		}
	}
	// The promotion minted epoch 1.
	resp, err := http.Get(r0.url() + "/fence?db=demo")
	if err != nil {
		t.Fatal(err)
	}
	var fr struct {
		Fence uint64 `json:"fence"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&fr)
	resp.Body.Close()
	if fr.Fence != 1 {
		t.Fatalf("promoted fence epoch = %d, want 1", fr.Fence)
	}

	// Resurrect the old primary on its original directory and point the
	// topology at it (the operator mistake the fence exists for). The
	// refreshed coordinator writes with the promoted epoch; the stale
	// primary refuses and self-fences durably instead of forking history.
	p0b := startNode(t, "-db demo="+shard0+" -rw")
	postTopology(t, coord, []map[string]any{{"name": "s0", "nodes": []string{p0b.url(), r0.url()}}})
	code, body = postJSON(t, coord.url()+"/exec",
		map[string]any{"sql": "insert into readings values (400, 4000)", "db": "demo"})
	if code != http.StatusConflict {
		t.Fatalf("write to resurrected stale primary: %d %v, want 409", code, body)
	}
	// Fenced for direct writes too, and durably so across a restart.
	code, body = postJSON(t, p0b.url()+"/exec",
		map[string]any{"sql": "insert into readings values (400, 4000)", "db": "demo"})
	if code != http.StatusConflict {
		t.Fatalf("direct write to fenced primary: %d %v, want 409", code, body)
	}
	_ = p0b.cmd.Process.Kill()
	_, _ = p0b.cmd.Process.Wait()
	p0c := startNode(t, "-db demo="+shard0+" -rw")
	code, body = postJSON(t, p0c.url()+"/exec",
		map[string]any{"sql": "insert into readings values (400, 4000)", "db": "demo"})
	if code != http.StatusConflict {
		t.Fatalf("restarted fenced primary accepted a write: %d %v, want durable 409", code, body)
	}

	// Point the topology back at the promoted primary: service resumes.
	postTopology(t, coord, []map[string]any{{"name": "s0", "nodes": []string{r0.url()}}})
	code, body = postJSON(t, coord.url()+"/exec",
		map[string]any{"sql": "insert into readings values (500, 5000)", "db": "demo"})
	if code != 200 {
		t.Fatalf("write after re-pointing at the promoted primary: %d %v", code, body)
	}
}

// shardedSaveDataset writes the integration dataset as a single-shard
// sharded catalog (ShardedSave with one directory).
func shardedSaveDataset(dir string) error {
	return store.ShardedSave(clusterDataset(), []string{dir}, []string{"readings"})
}
