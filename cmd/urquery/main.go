// Command urquery runs the paper's benchmark queries (Figure 8) — or
// any SQL query over the uncertain TPC-H schema — on a freshly
// generated database, optionally printing the translated, optimized
// physical plan (the paper's Figure 13 view).
//
// Usage:
//
//	urquery -q Q2 -scale 0.1 -x 0.01 -z 0.25 [-explain] [-limit 20] [-workers N]
//	urquery -db /tmp/snap/s0.1_x0.01_z0.25_m8_p0.25_seed42 -q Q2
//	urquery -sql "possible select l_extendedprice from lineitem where l_quantity < 24"
//	urquery -sql "certain select c_mktsegment from customer where c_custkey < 5"
//	urquery -sql "conf select o_shippriority from orders where o_orderkey < 8"
//	urquery -sql "conf bounds select o_shippriority from orders where o_orderkey < 8"
//	urquery -db /data/db -sql "insert into nation values (25, 'ATLANTIS', 1)"
//	urquery -db /data/db -sql "delete from lineitem where l_quantity <= 5"
//
// With -db the query runs against a database stored by urbench -save
// (or urel.Save): partitions stay on disk and are scanned segment by
// segment, so nothing is regenerated. DML statements (INSERT, DELETE,
// UPDATE) require -db: the directory opens through the transactional
// write path, the commit is WAL-durable before the command exits, and
// subsequent opens (urquery, urserved) see it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"urel/internal/bench"
	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/tpch"
	"urel/internal/txn"
)

func main() {
	qname := flag.String("q", "Q2", "query: Q1, Q2, or Q3")
	sql := flag.String("sql", "", "SQL query ([possible|certain] select ... from ... where ...)")
	scale := flag.Float64("scale", 0.1, "scale units")
	x := flag.Float64("x", 0.01, "uncertainty ratio")
	z := flag.Float64("z", 0.25, "correlation ratio")
	seed := flag.Int64("seed", 42, "generator seed")
	dbdir := flag.String("db", "", "query a stored database directory (urbench -save) instead of generating")
	explain := flag.Bool("explain", false, "print the optimized physical plan instead of running")
	analyze := flag.Bool("analyze", false, "execute with operator tracing and print the plan annotated with actual rows, timings, and store statistics (EXPLAIN ANALYZE)")
	noopt := flag.Bool("no-optimizer", false, "disable the engine optimizer")
	workers := flag.Int("workers", 0, "parallel worker goroutines (0 = serial, -1 = GOMAXPROCS)")
	limit := flag.Int("limit", 20, "print at most this many answer tuples")
	flag.Parse()

	var q core.Query
	var mode sqlparse.Mode
	if *sql != "" {
		st, err := sqlparse.ParseStatement(*sql)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		if _, isQuery := st.(*sqlparse.Parsed); !isQuery {
			runDML(*dbdir, st, *workers)
			return
		}
		parsed := st.(*sqlparse.Parsed)
		q = parsed.Query
		mode = parsed.Mode
		*qname = "SQL"
	} else {
		var ok bool
		q, ok = tpch.Queries()[*qname]
		if !ok {
			fmt.Fprintf(os.Stderr, "urquery: unknown query %q (use Q1, Q2, Q3 or -sql)\n", *qname)
			os.Exit(1)
		}
		mode = sqlparse.ModePossible
	}
	var db *core.UDB
	if *dbdir != "" {
		start := time.Now()
		var err error
		db, err = store.Open(*dbdir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		defer db.Close()
		fmt.Printf("opened %s in %s (%d relations, 10^%.1f worlds, %.2f MB on disk)\n",
			*dbdir, time.Since(start).Round(time.Millisecond), len(db.RelNames()),
			db.W.Log10Worlds(), float64(db.SizeBytes())/(1<<20))
	} else {
		params := tpch.DefaultParams(*scale, *x, *z)
		params.Seed = *seed
		start := time.Now()
		var st tpch.Stats
		var err error
		db, st, err = tpch.Generate(params)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		fmt.Printf("generated %s in %s (10^%.1f worlds, %.2f MB)\n",
			params, time.Since(start).Round(time.Millisecond), st.Log10Worlds,
			float64(st.SizeBytes)/(1<<20))
	}

	if *explain {
		plan, err := db.ExplainQuery(q, !*noopt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s translated & optimized plan:\n%s", *qname, plan)
		return
	}

	cfg := engine.ExecConfig{DisableOptimizer: *noopt, Parallelism: *workers}
	if *analyze {
		// Mirror the evaluation split: possible mode analyzes the poss
		// projection plan, certain/conf the full-merge translation whose
		// lineage their post-processing consumes.
		full := mode != sqlparse.ModePossible && mode != sqlparse.ModePlain
		aq := q
		if !full {
			if _, ok := q.(*core.PossQ); !ok {
				aq = core.Poss(q)
			}
		}
		res, err := db.ExplainAnalyze(aq, full, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s EXPLAIN ANALYZE:\n%s", *qname, res.Text)
		return
	}
	if mode == sqlparse.ModeConfBounds {
		start := time.Now()
		res, err := db.Eval(q, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		bounds := res.ConfidenceBounds()
		fmt.Printf("confidence bounds computed in %s (%d distinct tuples):\n",
			time.Since(start).Round(time.Millisecond), len(bounds))
		if len(bounds) > *limit {
			bounds = bounds[:*limit]
		}
		for _, tb := range bounds {
			fmt.Printf("  P in [%.6f, %.6f]  %v\n", tb.Certain, tb.Possible, tb.Vals)
		}
		return
	}
	if mode == sqlparse.ModeConf {
		start := time.Now()
		res, err := db.Eval(q, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		confs, stats, err := res.ConfidencesDispatch(core.ConfOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		fmt.Printf("confidences computed in %s (%s; %d read-once, %d enumerated, %d sampled):\n",
			time.Since(start).Round(time.Millisecond), stats.Estimator(), stats.ReadOnce, stats.Enum, stats.MC)
		if len(confs) > *limit {
			confs = confs[:*limit]
		}
		for _, tc := range confs {
			fmt.Printf("  P = %.6f  %v\n", tc.P, tc.Vals)
		}
		return
	}
	if mode == sqlparse.ModeCertain {
		start := time.Now()
		rel, err := db.CertainAnswersCfg(core.StripPoss(q), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "urquery:", err)
			os.Exit(1)
		}
		fmt.Printf("certain answers computed in %s (%d tuples):\n",
			time.Since(start).Round(time.Millisecond), rel.Len())
		if rel.Len() > *limit {
			rel.Rows = rel.Rows[:*limit]
		}
		fmt.Print(rel)
		return
	}
	m, err := bench.RunQuery(db, *qname, q, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urquery:", err)
		os.Exit(1)
	}
	fmt.Printf("%s evaluated in %s: %d representation tuples, %d distinct possible tuples\n",
		*qname, m.Elapsed.Round(time.Millisecond), m.ReprRows, m.Distinct)

	rel, err := db.EvalPoss(q, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "urquery:", err)
		os.Exit(1)
	}
	n := rel.Len()
	if n > *limit {
		rel.Rows = rel.Rows[:*limit]
	}
	fmt.Printf("\npossible answers (%d total, showing %d):\n%s", n, rel.Len(), rel)
}

// runDML executes one INSERT/DELETE/UPDATE against a stored database
// directory through the transactional write path and reports what the
// commit did.
func runDML(dbdir string, st sqlparse.Statement, workers int) {
	if dbdir == "" {
		fmt.Fprintln(os.Stderr, "urquery: DML needs a stored database: pass -db <dir> (urbench -save)")
		os.Exit(2)
	}
	d, err := txn.Open(dbdir, txn.Options{Parallelism: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "urquery:", err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := d.ExecStmt(st)
	if err != nil {
		d.Close()
		fmt.Fprintln(os.Stderr, "urquery:", err)
		os.Exit(1)
	}
	if err := d.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "urquery:", err)
		os.Exit(1)
	}
	fmt.Printf("%s committed in %s: %d tuples, %d representation rows written, %d tombstones (epoch %d)\n",
		res.Kind, time.Since(start).Round(time.Millisecond), res.Tuples, res.ReprRows, res.Tombstones, res.Epoch)
}
