// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus the ablations DESIGN.md calls out. Run
// with:
//
//	go test -bench=. -benchmem
//
// Figure-faithful sweeps (the paper's full grid) live in cmd/urbench;
// the testing.B benchmarks here pin representative parameter points so
// they finish in laptop minutes while preserving every comparison the
// paper makes. Custom metrics report answer sizes and representation
// sizes alongside ns/op.
package urel_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"urel/internal/bench"
	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/tpch"
	"urel/internal/uldb"
	"urel/internal/wsd"
)

// dbPool caches generated databases across benchmarks.
var dbPool sync.Map

func benchDB(b *testing.B, s, x, z float64) *core.UDB {
	b.Helper()
	key := fmt.Sprintf("%g/%g/%g", s, x, z)
	if v, ok := dbPool.Load(key); ok {
		return v.(*core.UDB)
	}
	db, _, err := tpch.Generate(tpch.DefaultParams(s, x, z))
	if err != nil {
		b.Fatal(err)
	}
	dbPool.Store(key, db)
	return db
}

// BenchmarkFigure9_Generate measures dataset generation and reports the
// Figure 9 characteristics (log10 worlds, max local worlds, MB) as
// custom metrics.
func BenchmarkFigure9_Generate(b *testing.B) {
	b.ReportAllocs()
	for _, cfg := range []struct{ s, x, z float64 }{
		{0.01, 0.01, 0.25},
		{0.05, 0.01, 0.25},
		{0.05, 0.1, 0.5},
	} {
		name := fmt.Sprintf("s=%g/x=%g/z=%g", cfg.s, cfg.x, cfg.z)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var st tpch.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = tpch.Generate(tpch.DefaultParams(cfg.s, cfg.x, cfg.z))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(st.Log10Worlds, "log10worlds")
			b.ReportMetric(float64(st.MaxLocalWorlds), "lworlds")
			b.ReportMetric(float64(st.SizeBytes)/(1<<20), "MB")
		})
	}
}

// BenchmarkFigure11_AnswerSizes evaluates the three queries and reports
// the representation-level and distinct answer sizes (Figure 11's
// y-axis) as custom metrics.
func BenchmarkFigure11_AnswerSizes(b *testing.B) {
	b.ReportAllocs()
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		for _, x := range []float64{0.01, 0.1} {
			name := fmt.Sprintf("%s/x=%g", qn, x)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				db := benchDB(b, 0.05, x, 0.25)
				q := tpch.Queries()[qn]
				var m bench.QueryMeasurement
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.RunQuery(db, qn, q, engine.ExecConfig{})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(m.ReprRows), "repr_rows")
				b.ReportMetric(float64(m.Distinct), "distinct")
			})
		}
	}
}

// BenchmarkFigure12 times the three queries across a scale/x/z subset —
// the log-log panels of Figure 12 as ns/op series.
func BenchmarkFigure12(b *testing.B) {
	b.ReportAllocs()
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		for _, s := range []float64{0.01, 0.05, 0.1} {
			for _, x := range []float64{0.001, 0.01, 0.1} {
				name := fmt.Sprintf("%s/s=%g/x=%g/z=0.25", qn, s, x)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					db := benchDB(b, s, x, 0.25)
					q := tpch.Queries()[qn]
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := bench.RunQuery(db, qn, q, engine.ExecConfig{}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFigure12_Correlation sweeps z at fixed scale/x (the paper's
// per-panel z variation).
func BenchmarkFigure12_Correlation(b *testing.B) {
	b.ReportAllocs()
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		for _, z := range []float64{0.1, 0.25, 0.5} {
			name := fmt.Sprintf("%s/z=%g", qn, z)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				db := benchDB(b, 0.05, 0.01, z)
				q := tpch.Queries()[qn]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.RunQuery(db, qn, q, engine.ExecConfig{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure14 compares attribute-level U-relations, tuple-level
// U-relations, and ULDBs on Q3 without poss (the paper's Figure 14
// regime).
func BenchmarkFigure14(b *testing.B) {
	b.ReportAllocs()
	const s, x, z = 0.01, 0.01, 0.1
	db := benchDB(b, s, x, z)
	q := tpch.Q3NoPoss()

	b.Run("attribute-level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan, _, err := db.Translate(q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Run(plan, engine.NewCatalog(), engine.ExecConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	tl, err := tpch.TupleLevelDB(db)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tuple-level", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			plan, _, err := tl.Translate(q)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := engine.Run(plan, engine.NewCatalog(), engine.ExecConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSuccinctness_Chain measures the Figure 7 separation: the
// σ_{A=B} answer on the chain world-set stays linear as a U-relation
// while its normalization (= WSD) explodes; reported as metrics.
func BenchmarkSuccinctness_Chain(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var rows, local int
			for i := 0; i < b.N; i++ {
				res, err := wsd.ChainSelectResult(n)
				if err != nil {
					b.Fatal(err)
				}
				rows = res.Len()
				local, err = wsd.NormalizedLocalWorlds(res)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rows), "urel_rows")
			b.ReportMetric(float64(local), "wsd_local")
		})
	}
}

// BenchmarkSuccinctness_OrSet measures the Theorem 5.6 separation
// between attribute-level U-relations and ULDBs on or-set relations.
func BenchmarkSuccinctness_OrSet(b *testing.B) {
	b.ReportAllocs()
	const n, arity, k = 10, 4, 3
	b.Run("u-relations", func(b *testing.B) {
		b.ReportAllocs()
		var rows int
		for i := 0; i < b.N; i++ {
			db := uldb.OrSetUDB(n, arity, k)
			rows = 0
			for _, name := range db.RelNames() {
				for _, p := range db.Rels[name].Parts {
					rows += len(p.Rows)
				}
			}
		}
		b.ReportMetric(float64(rows), "rows")
	})
	b.Run("uldb", func(b *testing.B) {
		b.ReportAllocs()
		var alts int
		for i := 0; i < b.N; i++ {
			db := uldb.OrSetULDB(n, arity, k)
			alts = db.Rels["r"].NumAlternatives()
		}
		b.ReportMetric(float64(alts), "alternatives")
	})
}

// BenchmarkNormalize measures Algorithm 1 on query results of growing
// descriptor complexity.
func BenchmarkNormalize(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{6, 10, 14} {
		b.Run(fmt.Sprintf("chain_n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			res, err := wsd.ChainSelectResult(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := res.Normalize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCertainAnswers measures the normalize + Lemma 4.3 pipeline.
func BenchmarkCertainAnswers(b *testing.B) {
	b.ReportAllocs()
	db := benchDB(b, 0.01, 0.01, 0.25)
	q := core.Project(core.Rel("customer"), "c_custkey", "c_mktsegment")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.CertainAnswers(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConfidence measures exact and Monte-Carlo confidence
// computation on a query result (the Section 7 extension).
func BenchmarkConfidence(b *testing.B) {
	b.ReportAllocs()
	db := benchDB(b, 0.01, 0.05, 0.25)
	res, err := db.Eval(core.Project(core.Rel("customer"), "c_mktsegment"), engine.ExecConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := res.Confidences(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("monte-carlo-10k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res.ConfidencesMC(10000, int64(i))
		}
	})
}

// Ablation: merge placement / optimizer on-off (the paper's Figure 3
// P1-vs-P2/P3 discussion — the optimizer pushes selections below the
// merge joins).
func BenchmarkAblation_Optimizer(b *testing.B) {
	b.ReportAllocs()
	db := benchDB(b, 0.05, 0.01, 0.25)
	for _, cfg := range []struct {
		name string
		c    engine.ExecConfig
	}{
		{"optimized", engine.ExecConfig{}},
		{"naive-merge-first", engine.ExecConfig{DisableOptimizer: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			q := tpch.Queries()["Q2"]
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunQuery(db, "Q2", q, cfg.c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: physical join algorithm for the translated queries.
func BenchmarkAblation_JoinPhysical(b *testing.B) {
	b.ReportAllocs()
	db := benchDB(b, 0.05, 0.01, 0.25)
	for _, algo := range []struct {
		name string
		a    engine.JoinAlgo
	}{
		{"hash", engine.JoinHash},
		{"sort-merge", engine.JoinMerge},
	} {
		b.Run(algo.name, func(b *testing.B) {
			b.ReportAllocs()
			q := tpch.Queries()["Q1"]
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunQuery(db, "Q1", q, engine.ExecConfig{Join: algo.a}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelHashJoin compares the serial hash join against the
// partitioned parallel hash join on synthetic equi joins with a
// residual filter — the first entries of the engine's own perf
// trajectory (not a paper figure). Run with GOMAXPROCS >= 4 to see the
// partitioned speedup; on one core the parallel operator degrades
// gracefully to near-serial cost.
func BenchmarkParallelHashJoin(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{20000, 100000} {
		l := bench.SyntheticJoinInput(n, n/8+1, "l", 1)
		r := bench.SyntheticJoinInput(n, n/8+1, "r", 2)
		plan := engine.Join(
			engine.Values(l, "l"), engine.Values(r, "r"),
			engine.And(
				engine.EqCols("l.k", "r.k"),
				engine.Cmp(engine.NE, engine.Col("l.s"), engine.Col("r.s")),
			))
		cat := engine.NewCatalog()
		for _, mode := range []struct {
			name string
			cfg  engine.ExecConfig
		}{
			{"serial", engine.ExecConfig{}},
			{"parallel", engine.ExecConfig{Parallelism: -1, ParallelThreshold: 1}},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				var rows int
				for i := 0; i < b.N; i++ {
					rel, err := engine.Run(plan, cat, mode.cfg)
					if err != nil {
						b.Fatal(err)
					}
					rows = rel.Len()
				}
				b.ReportMetric(float64(rows), "out_rows")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
			})
		}
	}
}

// BenchmarkParallelFilter compares the serial and parallel scan+filter
// drain over a large synthetic relation.
func BenchmarkParallelFilter(b *testing.B) {
	b.ReportAllocs()
	const n = 400000
	rel := bench.SyntheticJoinInput(n, 1000, "t", 3)
	plan := engine.Filter(engine.Values(rel, "t"),
		engine.Cmp(engine.LT, engine.Col("t.k"), engine.ConstInt(100)))
	cat := engine.NewCatalog()
	for _, mode := range []struct {
		name string
		cfg  engine.ExecConfig
	}{
		{"serial", engine.ExecConfig{}},
		{"parallel", engine.ExecConfig{Parallelism: -1, ParallelThreshold: 1}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(plan, cat, mode.cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure12_Parallel re-times the paper's Q1/Q2/Q3 with the
// parallel operators enabled, against the serial ns/op of
// BenchmarkFigure12.
func BenchmarkFigure12_Parallel(b *testing.B) {
	b.ReportAllocs()
	// Threshold lowered below the default so the translated plans'
	// partition inputs (a few thousand rows at s=0.05) actually choose
	// the parallel operators.
	cfg := engine.ExecConfig{Parallelism: -1, ParallelThreshold: 2048}
	for _, qn := range []string{"Q1", "Q2", "Q3"} {
		b.Run(qn+"/s=0.05/x=0.01/z=0.25", func(b *testing.B) {
			b.ReportAllocs()
			db := benchDB(b, 0.05, 0.01, 0.25)
			q := tpch.Queries()[qn]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunQuery(db, qn, q, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReduction measures the exact reduction and the paper's
// semijoin-based relational reduction.
func BenchmarkReduction(b *testing.B) {
	b.ReportAllocs()
	mk := func() *core.UDB {
		db, _, err := tpch.Generate(tpch.DefaultParams(0.005, 0.05, 0.25))
		if err != nil {
			b.Fatal(err)
		}
		return db
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		db := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.Reduce()
		}
	})
	b.Run("semijoin-once", func(b *testing.B) {
		b.ReportAllocs()
		db := mk()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.ReduceSemijoinOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
