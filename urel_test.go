package urel_test

import (
	"testing"

	"urel"
)

// TestPublicAPIRoundTrip exercises the whole public surface on the
// paper's Figure 1 scenario.
func TestPublicAPIRoundTrip(t *testing.T) {
	db := urel.New()
	db.MustAddRelation("r", "id", "type", "faction")
	x := db.W.NewBoolVar("x")
	y := db.W.NewBoolVar("y")
	z := db.W.NewBoolVar("z")

	uid := db.MustAddPartition("r", "u_r_id", "id")
	uty := db.MustAddPartition("r", "u_r_type", "type")
	ufa := db.MustAddPartition("r", "u_r_faction", "faction")

	uid.Add(nil, 1, urel.Int(1))
	uid.Add(urel.D(urel.A(x, 1)), 2, urel.Int(2))
	uid.Add(urel.D(urel.A(x, 2)), 2, urel.Int(3))
	uid.Add(urel.D(urel.A(x, 1)), 3, urel.Int(3))
	uid.Add(urel.D(urel.A(x, 2)), 3, urel.Int(2))
	uid.Add(nil, 4, urel.Int(4))

	uty.Add(nil, 1, urel.Str("Tank"))
	uty.Add(nil, 2, urel.Str("Transport"))
	uty.Add(nil, 3, urel.Str("Tank"))
	uty.Add(urel.D(urel.A(y, 1)), 4, urel.Str("Tank"))
	uty.Add(urel.D(urel.A(y, 2)), 4, urel.Str("Transport"))

	ufa.Add(nil, 1, urel.Str("Friend"))
	ufa.Add(nil, 2, urel.Str("Friend"))
	ufa.Add(nil, 3, urel.Str("Enemy"))
	ufa.Add(urel.D(urel.A(z, 1)), 4, urel.Str("Friend"))
	ufa.Add(urel.D(urel.A(z, 2)), 4, urel.Str("Enemy"))

	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if db.W.NumWorlds().Int64() != 8 {
		t.Fatalf("want 8 worlds, got %v", db.W.NumWorlds())
	}

	enemyTanks := urel.Project(
		urel.Select(urel.Rel("r"), urel.And(
			urel.Eq(urel.Col("type"), urel.Const(urel.Str("Tank"))),
			urel.Eq(urel.Col("faction"), urel.Const(urel.Str("Enemy"))))),
		"id")
	poss, err := db.EvalPoss(urel.Poss(enemyTanks), urel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Len() != 3 {
		t.Fatalf("possible enemy-tank ids: want 3, got %d\n%s", poss.Len(), poss)
	}

	res, err := db.Eval(enemyTanks, urel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := res.TupleProb(urel.Tuple{urel.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if conf != 0.25 {
		t.Fatalf("confidence of id 4: want 0.25, got %v", conf)
	}

	certain, err := db.CertainAnswers(urel.Project(urel.Rel("r"), "id"))
	if err != nil {
		t.Fatal(err)
	}
	if certain.Len() != 4 {
		t.Fatalf("certain ids: want 4, got %d", certain.Len())
	}
}

func TestPublicExprHelpers(t *testing.T) {
	db := urel.New()
	db.MustAddRelation("s", "a")
	p := db.MustAddPartition("s", "u_s_a", "a")
	for i := int64(1); i <= 5; i++ {
		p.Add(nil, i, urel.Int(i))
	}
	cases := []struct {
		cond urel.Expr
		want int
	}{
		{urel.Lt(urel.Col("a"), urel.Const(urel.Int(3))), 2},
		{urel.Le(urel.Col("a"), urel.Const(urel.Int(3))), 3},
		{urel.Gt(urel.Col("a"), urel.Const(urel.Int(3))), 2},
		{urel.Ge(urel.Col("a"), urel.Const(urel.Int(3))), 3},
		{urel.Ne(urel.Col("a"), urel.Const(urel.Int(3))), 4},
		{urel.Or(urel.Eq(urel.Col("a"), urel.Const(urel.Int(1))),
			urel.Eq(urel.Col("a"), urel.Const(urel.Int(5)))), 2},
		{urel.Not(urel.Eq(urel.Col("a"), urel.Const(urel.Int(1)))), 4},
	}
	for i, c := range cases {
		rel, err := db.EvalPoss(urel.Poss(urel.Select(urel.Rel("s"), c.cond)), urel.Config{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if rel.Len() != c.want {
			t.Fatalf("case %d: want %d rows, got %d", i, c.want, rel.Len())
		}
	}
	if urel.Date("1995-03-15").AsInt() <= 0 {
		t.Fatal("date helper")
	}
	if !urel.Null().IsNull() || urel.Bool(true).Truth() != true || urel.Float(1.5).AsFloat() != 1.5 {
		t.Fatal("value helpers")
	}
}

func TestPublicUnion(t *testing.T) {
	db := urel.New()
	db.MustAddRelation("t", "a", "b")
	pa := db.MustAddPartition("t", "u_t_a", "a")
	pb := db.MustAddPartition("t", "u_t_b", "b")
	x := db.W.NewBoolVar("x")
	pa.Add(urel.D(urel.A(x, 1)), 1, urel.Int(10))
	pa.Add(urel.D(urel.A(x, 2)), 1, urel.Int(11))
	pb.Add(nil, 1, urel.Int(20))
	q := urel.Union(
		urel.Project(urel.RelAs("t", "t1"), "t1.a"),
		urel.Project(urel.RelAs("t", "t2"), "t2.b"))
	rel, err := db.EvalPoss(urel.Poss(q), urel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 { // {10, 11, 20}
		t.Fatalf("union possible values: want 3, got %d\n%s", rel.Len(), rel)
	}
}

// TestSaveOpenFacade exercises the persistence surface: Save, Open
// (lazy), query from disk, Materialize, Close.
func TestSaveOpenFacade(t *testing.T) {
	db := urel.New()
	db.MustAddRelation("r", "id", "type")
	x := db.W.NewBoolVar("x")
	u := db.MustAddPartition("r", "u_r", "id", "type")
	u.Add(urel.D(urel.A(x, 1)), 1, urel.Int(1), urel.Str("Tank"))
	u.Add(urel.D(urel.A(x, 2)), 1, urel.Int(1), urel.Str("Transport"))
	u.Add(nil, 2, urel.Int(2), urel.Str("Tank"))

	dir := t.TempDir()
	if err := urel.Save(db, dir); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := urel.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer got.Close()

	q := urel.Poss(urel.Select(urel.Rel("r"),
		urel.Eq(urel.Col("type"), urel.Const(urel.Str("Tank")))))
	want, err := db.EvalPoss(q, urel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []urel.Config{{}, urel.Parallel(2)} {
		rel, err := got.EvalPoss(q, cfg)
		if err != nil {
			t.Fatalf("stored EvalPoss: %v", err)
		}
		if !rel.EqualAsSet(want) {
			t.Fatalf("stored answers differ:\ngot\n%s\nwant\n%s", rel, want)
		}
	}
	if err := got.Materialize(); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate after Materialize: %v", err)
	}
	if n := len(got.Rels["r"].Parts[0].Rows); n != 3 {
		t.Fatalf("materialized rows = %d, want 3", n)
	}
}
