// Package wsd implements world-set decompositions (WSDs), the
// representation system of Antova, Koch and Olteanu ("10^10^6 Worlds and
// Beyond", ICDE 2007), which Section 5 of the U-relations paper uses as
// a succinctness baseline: a world-set is decomposed into a product of
// independent components, each component a relation whose rows are its
// local worlds and whose columns are tuple fields.
//
// WSDs are essentially normalized U-relational databases — each
// variable corresponds to a component and each domain value to one of
// its local worlds (Figure 5) — so this package provides exactly the
// conversions the paper describes, plus world enumeration and the size
// accounting used in the succinctness experiments (Theorem 5.2).
//
// Paper-section map: wsd.go — the representation and its conversions
// (Section 5, Figure 5); chain.go — the chain world-sets behind the
// Figure 7 exponential-separation experiment.
package wsd
