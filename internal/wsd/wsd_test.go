package wsd

import (
	"math/rand"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// smallUDB builds a tiny normalized database for conversion tests.
func smallUDB(t *testing.T) *core.UDB {
	t.Helper()
	db := core.NewUDB()
	db.MustAddRelation("r", "a", "b")
	x := db.W.MustNewVar("x", 1, 2)
	y := db.W.MustNewVar("y", 1, 2, 3)
	ua := db.MustAddPartition("r", "ua", "a")
	ub := db.MustAddPartition("r", "ub", "b")
	ua.Add(ws.MustDescriptor(ws.A(x, 1)), 1, engine.Int(10))
	ua.Add(ws.MustDescriptor(ws.A(x, 2)), 1, engine.Int(11))
	ub.Add(nil, 1, engine.Int(20))
	ua.Add(nil, 2, engine.Int(12))
	ub.Add(ws.MustDescriptor(ws.A(y, 1)), 2, engine.Int(21))
	ub.Add(ws.MustDescriptor(ws.A(y, 2)), 2, engine.Int(22))
	ub.Add(ws.MustDescriptor(ws.A(y, 3)), 2, engine.Int(23))
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFromNormalizedUDBRoundTrip(t *testing.T) {
	db := smallUDB(t)
	w, err := FromNormalizedUDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumWorlds() != 6 {
		t.Fatalf("want 6 worlds, got %d", w.NumWorlds())
	}
	sig1, err := db.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := w.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig1) != len(sig2) {
		t.Fatalf("world-set sizes differ: %d vs %d", len(sig1), len(sig2))
	}
	for i := range sig1 {
		if sig1[i] != sig2[i] {
			t.Fatalf("world-set differs at %d", i)
		}
	}
	// Back to U-relations.
	back, err := w.ToUDB()
	if err != nil {
		t.Fatal(err)
	}
	sig3, err := back.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sig1 {
		if sig1[i] != sig3[i] {
			t.Fatalf("round trip changed the world-set at %d", i)
		}
	}
}

func TestFromNormalizedRejectsWide(t *testing.T) {
	db := core.NewUDB()
	db.MustAddRelation("r", "a")
	x := db.W.MustNewVar("x", 1, 2)
	y := db.W.MustNewVar("y", 1, 2)
	u := db.MustAddPartition("r", "u", "a")
	d, _ := ws.Descriptor{ws.A(x, 1)}.Union(ws.Descriptor{ws.A(y, 1)})
	u.Add(d, 1, engine.Int(1))
	if _, err := FromNormalizedUDB(db); err == nil {
		t.Fatal("descriptor width 2 must be rejected")
	}
}

func TestChainWorldSetsAgree(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		db := ChainUDB(n)
		w := ChainWSD(n)
		s1, err := db.WorldSetSignature(200)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := w.WorldSetSignature(200)
		if err != nil {
			t.Fatal(err)
		}
		if len(s1) != len(s2) {
			t.Fatalf("n=%d: world-set sizes differ: %d vs %d", n, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("n=%d: world-sets differ", n)
			}
		}
	}
}

func TestChainSelectBlowup(t *testing.T) {
	// Figure 7: σ_{A=B}(R) has a linear U-relational representation
	// (2n tuples) but its normalization — the WSD equivalent — needs
	// 2^n local worlds.
	for _, n := range []int{3, 5, 8} {
		res, err := ChainSelectResult(n)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 2*n {
			t.Fatalf("n=%d: U-relation answer should have 2n=%d tuples, got %d",
				n, 2*n, res.Len())
		}
		lw, err := NormalizedLocalWorlds(res)
		if err != nil {
			t.Fatal(err)
		}
		if lw != 1<<n {
			t.Fatalf("n=%d: normalized (WSD) representation needs 2^n=%d local worlds, got %d",
				n, 1<<n, lw)
		}
	}
}

func TestChainSelectGroundTruth(t *testing.T) {
	n := 4
	db := ChainUDB(n)
	q := core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.Col("b")))
	got, err := db.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.PossibleGroundTruth(q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("chain select: translated %d vs ground truth %d", got.Len(), want.Len())
	}
}

func TestWSDSizeAccounting(t *testing.T) {
	w := ChainWSD(5)
	if w.Cells() != 5*2*2 {
		t.Fatalf("cells: got %d", w.Cells())
	}
	if w.SizeBytes() <= 0 {
		t.Fatal("size must be positive")
	}
	if w.Comps[0].LocalWorlds() != 2 {
		t.Fatal("local worlds")
	}
}

func TestRandomNormalizedRoundTrip(t *testing.T) {
	// Random normalized databases survive UDB -> WSD -> UDB.
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		db := core.NewUDB()
		db.MustAddRelation("r", "a", "b")
		nv := 1 + rng.Intn(3)
		vars := make([]ws.Var, nv)
		for i := range vars {
			dom := make([]ws.Val, 2+rng.Intn(2))
			for j := range dom {
				dom[j] = ws.Val(j + 1)
			}
			vars[i] = db.W.MustNewVar("", dom...)
		}
		ua := db.MustAddPartition("r", "ua", "a")
		ub := db.MustAddPartition("r", "ub", "b")
		for tid := int64(1); tid <= 3; tid++ {
			for _, p := range []*core.URelation{ua, ub} {
				if rng.Intn(3) == 0 {
					p.Add(nil, tid, engine.Int(int64(rng.Intn(5))))
					continue
				}
				x := vars[rng.Intn(nv)]
				for _, v := range db.W.Domain(x) {
					p.Add(ws.MustDescriptor(ws.A(x, v)), tid, engine.Int(int64(rng.Intn(5))))
				}
			}
		}
		w, err := FromNormalizedUDB(db)
		if err != nil {
			t.Fatal(err)
		}
		back, err := w.ToUDB()
		if err != nil {
			t.Fatal(err)
		}
		s1, err1 := db.WorldSetSignature(2000)
		s2, err2 := back.WorldSetSignature(2000)
		if err1 != nil || err2 != nil {
			continue
		}
		if len(s1) != len(s2) {
			t.Fatalf("iter %d: world-set sizes differ: %d vs %d", iter, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("iter %d: world-sets differ", iter)
			}
		}
	}
}
