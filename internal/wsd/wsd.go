package wsd

import (
	"fmt"
	"sort"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// Field identifies one tuple field: relation, tuple id, attribute.
type Field struct {
	Rel  string
	TID  int64
	Attr string
}

func (f Field) String() string { return fmt.Sprintf("%s.t%d.%s", f.Rel, f.TID, f.Attr) }

// Component is one factor of the decomposition: a relation over a set
// of tuple fields whose rows are the component's local worlds. A NULL
// cell is the paper's ⊥: the field does not exist in that local world.
type Component struct {
	Name   string
	Fields []Field
	Rows   [][]engine.Value
}

// LocalWorlds returns the number of local worlds (rows).
func (c *Component) LocalWorlds() int { return len(c.Rows) }

// Cells returns the number of cells (rows × fields), the paper's size
// measure for WSD components.
func (c *Component) Cells() int { return len(c.Rows) * len(c.Fields) }

// WSD is a world-set decomposition: a schema plus a product of
// components. Fields not mentioned by any component do not exist.
type WSD struct {
	Schema map[string][]string // relation -> attribute list
	Comps  []*Component

	relOrder []string
}

// New creates an empty WSD for the given schema (relation -> attrs),
// with deterministic relation order.
func New(schema map[string][]string) *WSD {
	w := &WSD{Schema: map[string][]string{}}
	var names []string
	for n := range schema {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w.Schema[n] = append([]string(nil), schema[n]...)
		w.relOrder = append(w.relOrder, n)
	}
	return w
}

// AddComponent appends a component.
func (w *WSD) AddComponent(c *Component) { w.Comps = append(w.Comps, c) }

// NumWorlds returns the total number of worlds (product of local world
// counts).
func (w *WSD) NumWorlds() int64 {
	n := int64(1)
	for _, c := range w.Comps {
		n *= int64(len(c.Rows))
	}
	return n
}

// Cells returns the total number of cells across components.
func (w *WSD) Cells() int {
	n := 0
	for _, c := range w.Comps {
		n += c.Cells()
	}
	return n
}

// SizeBytes estimates the representation footprint (cells plus field
// headers).
func (w *WSD) SizeBytes() int64 {
	var n int64
	for _, c := range w.Comps {
		n += int64(len(c.Fields)) * 24
		for _, row := range c.Rows {
			for _, v := range row {
				n += int64(v.SizeBytes())
			}
		}
	}
	return n
}

// EnumWorlds enumerates every world (one local world per component) and
// yields the instantiated relations; stops when yield returns false.
func (w *WSD) EnumWorlds(yield func(world map[string]*engine.Relation) bool) {
	choice := make([]int, len(w.Comps))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(w.Comps) {
			return yield(w.instantiate(choice))
		}
		c := w.Comps[i]
		if len(c.Rows) == 0 {
			return rec(i + 1)
		}
		for j := range c.Rows {
			choice[i] = j
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

func (w *WSD) instantiate(choice []int) map[string]*engine.Relation {
	type key struct {
		rel string
		tid int64
	}
	fields := map[key]map[string]engine.Value{}
	for ci, c := range w.Comps {
		if len(c.Rows) == 0 {
			continue
		}
		row := c.Rows[choice[ci]]
		for fi, f := range c.Fields {
			v := row[fi]
			if v.IsNull() {
				continue // ⊥: field absent in this local world
			}
			k := key{rel: f.Rel, tid: f.TID}
			m, ok := fields[k]
			if !ok {
				m = map[string]engine.Value{}
				fields[k] = m
			}
			m[f.Attr] = v
		}
	}
	out := map[string]*engine.Relation{}
	for _, rel := range w.relOrder {
		attrs := w.Schema[rel]
		cols := make([]engine.Column, len(attrs))
		for i, a := range attrs {
			cols[i] = engine.Column{Name: rel + "." + a, Kind: engine.KindNull}
		}
		r := engine.NewRelation(engine.Schema{Cols: cols})
		var tids []int64
		for k := range fields {
			if k.rel == rel {
				tids = append(tids, k.tid)
			}
		}
		sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
		for _, tid := range tids {
			m := fields[key{rel: rel, tid: tid}]
			if len(m) != len(attrs) {
				continue // partial tuple: removed from the world
			}
			row := make(engine.Tuple, len(attrs))
			for i, a := range attrs {
				row[i] = m[a]
			}
			r.Rows = append(r.Rows, row)
		}
		out[rel] = r
	}
	return out
}

// WorldSetSignature fingerprints the represented world-set (sorted
// distinct world signatures), comparable with core.WorldSetSignature.
func (w *WSD) WorldSetSignature(maxWorlds int64) ([]string, error) {
	if n := w.NumWorlds(); n > maxWorlds {
		return nil, fmt.Errorf("wsd: %d worlds exceed cap %d", n, maxWorlds)
	}
	seen := map[string]bool{}
	w.EnumWorlds(func(world map[string]*engine.Relation) bool {
		seen[core.WorldSignature(world)] = true
		return true
	})
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// FromNormalizedUDB converts a normalized (descriptor width ≤ 1)
// U-relational database into the corresponding WSD: one component per
// variable (Figure 5's correspondence), plus one single-local-world
// component holding all certain fields.
func FromNormalizedUDB(db *core.UDB) (*WSD, error) {
	schema := map[string][]string{}
	for _, name := range db.RelNames() {
		schema[name] = db.Rels[name].Attrs
	}
	out := New(schema)

	type cell struct {
		f Field
		v engine.Value
	}
	perVar := map[ws.Var]map[ws.Val][]cell{}
	var certain []cell
	for _, name := range db.RelNames() {
		for _, p := range db.Rels[name].Parts {
			for _, r := range p.Rows {
				if len(r.D) > 1 {
					return nil, fmt.Errorf("wsd: database not normalized: descriptor %s", r.D)
				}
				for ai, a := range p.Attrs {
					c := cell{f: Field{Rel: name, TID: r.TID, Attr: a}, v: r.Vals[ai]}
					if len(r.D) == 0 || r.D[0].Var == ws.TrivialVar {
						certain = append(certain, c)
						continue
					}
					x := r.D[0].Var
					if perVar[x] == nil {
						perVar[x] = map[ws.Val][]cell{}
					}
					perVar[x][r.D[0].Val] = append(perVar[x][r.D[0].Val], c)
				}
			}
		}
	}
	// Certain component: one local world assigning every certain field.
	if len(certain) > 0 {
		comp := &Component{Name: "c0"}
		row := make([]engine.Value, 0, len(certain))
		for _, c := range certain {
			comp.Fields = append(comp.Fields, c.f)
			row = append(row, c.v)
		}
		comp.Rows = [][]engine.Value{row}
		out.AddComponent(comp)
	}
	// One component per variable: rows indexed by domain value.
	for _, x := range db.W.NontrivialVars() {
		cellsByVal := perVar[x]
		// Collect the fields this variable controls.
		fieldIdx := map[Field]int{}
		var fields []Field
		for _, cs := range cellsByVal {
			for _, c := range cs {
				if _, ok := fieldIdx[c.f]; !ok {
					fieldIdx[c.f] = len(fields)
					fields = append(fields, c.f)
				}
			}
		}
		if len(fields) == 0 {
			continue // variable controls nothing: drop the component
		}
		comp := &Component{Name: db.W.Name(x), Fields: fields}
		for _, v := range db.W.Domain(x) {
			row := make([]engine.Value, len(fields)) // ⊥-initialized
			for _, c := range cellsByVal[v] {
				row[fieldIdx[c.f]] = c.v
			}
			comp.Rows = append(comp.Rows, row)
		}
		out.AddComponent(comp)
	}
	return out, nil
}

// ToUDB converts a WSD back into a normalized U-relational database:
// one variable per component (domain = local world indexes), one
// attribute-level partition per (relation, attribute).
func (w *WSD) ToUDB() (*core.UDB, error) {
	db := core.NewUDB()
	type pkey struct{ rel, attr string }
	parts := map[pkey]*core.URelation{}
	for _, rel := range w.relOrder {
		attrs := w.Schema[rel]
		if err := db.AddRelation(rel, attrs...); err != nil {
			return nil, err
		}
		for _, a := range attrs {
			p, err := db.AddPartition(rel, "u_"+rel+"_"+a, a)
			if err != nil {
				return nil, err
			}
			parts[pkey{rel, a}] = p
		}
	}
	for _, c := range w.Comps {
		if len(c.Rows) == 0 {
			continue
		}
		var d func(j int) ws.Descriptor
		if len(c.Rows) == 1 {
			// Single local world: certain content, empty descriptor.
			d = func(int) ws.Descriptor { return nil }
		} else {
			dom := make([]ws.Val, len(c.Rows))
			for j := range dom {
				dom[j] = ws.Val(j + 1)
			}
			x, err := db.W.NewVar(c.Name, dom)
			if err != nil {
				return nil, err
			}
			d = func(j int) ws.Descriptor {
				return ws.MustDescriptor(ws.A(x, ws.Val(j+1)))
			}
		}
		for j, row := range c.Rows {
			for fi, f := range c.Fields {
				if row[fi].IsNull() {
					continue
				}
				p := parts[pkey{f.Rel, f.Attr}]
				if p == nil {
					return nil, fmt.Errorf("wsd: field %s outside schema", f)
				}
				p.Add(d(j), f.TID, row[fi])
			}
		}
	}
	return db, nil
}
