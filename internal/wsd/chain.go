package wsd

import (
	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// ChainUDB builds the world-set of Example 5.1 as U-relations: a
// relation R[A,B] over tuples t1..tn where ti.A and t_{(i mod n)+1}.B
// depend on each other through variable ci (domain {1, 2} standing for
// the paper's {w1, w2}); value 1 under w1 and 0 under w2 (Figure 6b).
func ChainUDB(n int) *core.UDB {
	db := core.NewUDB()
	db.MustAddRelation("r", "a", "b")
	u1 := db.MustAddPartition("r", "u1_a", "a")
	u2 := db.MustAddPartition("r", "u2_b", "b")
	vars := make([]ws.Var, n+1)
	for i := 1; i <= n; i++ {
		vars[i] = db.W.NewBoolVar("")
	}
	next := func(i int) int { return i%n + 1 }
	for i := 1; i <= n; i++ {
		u1.Add(ws.MustDescriptor(ws.A(vars[i], 1)), int64(i), engine.Int(1))
		u1.Add(ws.MustDescriptor(ws.A(vars[i], 2)), int64(i), engine.Int(0))
		u2.Add(ws.MustDescriptor(ws.A(vars[i], 1)), int64(next(i)), engine.Int(1))
		u2.Add(ws.MustDescriptor(ws.A(vars[i], 2)), int64(next(i)), engine.Int(0))
	}
	return db
}

// ChainWSD builds the same world-set directly as a WSD (Figure 6a): n
// components, each with fields {ti.A, t_{(i mod n)+1}.B} and two local
// worlds.
func ChainWSD(n int) *WSD {
	w := New(map[string][]string{"r": {"a", "b"}})
	next := func(i int) int { return i%n + 1 }
	for i := 1; i <= n; i++ {
		c := &Component{
			Name: "c" + string(rune('0'+i%10)),
			Fields: []Field{
				{Rel: "r", TID: int64(i), Attr: "a"},
				{Rel: "r", TID: int64(next(i)), Attr: "b"},
			},
			Rows: [][]engine.Value{
				{engine.Int(1), engine.Int(1)},
				{engine.Int(0), engine.Int(0)},
			},
		}
		w.AddComponent(c)
	}
	return w
}

// ChainSelectResult evaluates σ_{A=B}(R) on the chain database through
// the U-relational translation (the Figure 7 experiment). The result
// U-relation has 2n tuples; normalizing it (the WSD equivalent) blows
// up to one component with 2^n local worlds — Theorem 5.2's separation,
// measurable via NormalizedLocalWorlds.
func ChainSelectResult(n int) (*core.UResult, error) {
	db := ChainUDB(n)
	q := core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.Col("b")))
	return db.Eval(q, engine.ExecConfig{})
}

// NormalizedLocalWorlds normalizes the result and returns the maximum
// domain size among the fresh variables — the number of local worlds
// the equivalent WSD needs.
func NormalizedLocalWorlds(r *core.UResult) (int, error) {
	norm, err := r.Normalize()
	if err != nil {
		return 0, err
	}
	return norm.W.MaxDomainSize(), nil
}
