package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFaultRuleCounting pins the counting semantics: After skips the
// first calls, Every selects a stride, Count caps total firings — all
// per (rule, target).
func TestFaultRuleCounting(t *testing.T) {
	p := NewFaultPlan(1, FaultRule{After: 2, Every: 2, Count: 3, Drop: true})
	var fired []bool
	for i := 0; i < 12; i++ {
		fired = append(fired, p.decide(0, "a:1"))
	}
	// Calls 1,2 pass (After). Then calls 3,5,7 fire (Every=2 from the
	// first eligible), capped at Count=3; everything later passes.
	want := []bool{false, false, true, false, true, false, true, false, false, false, false, false}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("firing schedule %v, want %v", fired, want)
	}
	// A different target has its own counters: two grace calls, then
	// the rule fires again despite being exhausted for the first target.
	if p.decide(0, "b:1") || p.decide(0, "b:1") {
		t.Fatal("fresh target must get its own After grace calls")
	}
	if !p.decide(0, "b:1") {
		t.Fatal("third call for the fresh target must fire")
	}
}

// TestFaultProbDeterminism: probabilistic rules draw from (seed,
// target, call index) only, so two plans with the same seed agree
// call-for-call, and a different seed disagrees somewhere.
func TestFaultProbDeterminism(t *testing.T) {
	schedule := func(seed int64) []bool {
		p := NewFaultPlan(seed, FaultRule{Prob: 0.4, Drop: true})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.decide(0, "node-a:1"))
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(a, schedule(8)) {
		t.Fatal("different seeds produced identical 64-call schedules (suspicious)")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("Prob=0.4 fired %d/64 times — draws are not uniform", fired)
	}
}

// TestFaultProbConcurrencyInvariant: decisions depend on the per-target
// call index, not on interleaving — hammering decide from many
// goroutines fires exactly as many faults as the sequential schedule.
func TestFaultProbConcurrencyInvariant(t *testing.T) {
	count := func(parallel bool) int {
		p := NewFaultPlan(42, FaultRule{Prob: 0.5, Drop: true})
		const calls = 200
		if !parallel {
			n := 0
			for i := 0; i < calls; i++ {
				if p.decide(0, "x:1") {
					n++
				}
			}
			return n
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		n := 0
		for i := 0; i < calls; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if p.decide(0, "x:1") {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		return n
	}
	if s, par := count(false), count(true); s != par {
		t.Fatalf("sequential fired %d, concurrent fired %d — schedule depends on interleaving", s, par)
	}
}

// TestFaultTransport exercises each action through a real HTTP
// round-trip: drop, reset, synthesized status, and trickle.
func TestFaultTransport(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "hello from upstream")
	}))
	defer ts.Close()
	get := func(c *http.Client, path string) (*http.Response, error) {
		return c.Get(ts.URL + path)
	}

	t.Run("drop", func(t *testing.T) {
		c := NewFaultPlan(1, FaultRule{Path: "/q", Drop: true}).Client(time.Second)
		if _, err := get(c, "/q"); err == nil || !strings.Contains(err.Error(), "dropped") {
			t.Fatalf("want dropped-request error, got %v", err)
		}
		// Non-matching path passes through.
		resp, err := get(c, "/other")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("non-matching path must pass: %v %v", resp, err)
		}
		resp.Body.Close()
	})

	t.Run("reset", func(t *testing.T) {
		c := NewFaultPlan(1, FaultRule{Reset: true}).Client(time.Second)
		if _, err := get(c, "/q"); err == nil || !strings.Contains(err.Error(), "connection reset") {
			t.Fatalf("want reset error, got %v", err)
		}
	})

	t.Run("status", func(t *testing.T) {
		c := NewFaultPlan(1, FaultRule{Status: 503, Count: 1}).Client(time.Second)
		resp, err := get(c, "/q")
		if err != nil || resp.StatusCode != 503 {
			t.Fatalf("want synthesized 503, got %v %v", resp, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(b), "injected 503") {
			t.Fatalf("synthesized body = %q", b)
		}
		// Count=1 exhausted: next call reaches the upstream.
		resp, err = get(c, "/q")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("after Count exhausted want upstream 200, got %v %v", resp, err)
		}
		resp.Body.Close()
	})

	t.Run("trickle", func(t *testing.T) {
		p := NewFaultPlan(1, FaultRule{Trickle: time.Millisecond})
		c := p.Client(5 * time.Second)
		resp, err := get(c, "/q")
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(b) != "hello from upstream" {
			t.Fatalf("trickled body = %q, %v", b, err)
		}
		if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
			t.Fatalf("trickle delivered %d bytes in %s — not trickling", len(b), elapsed)
		}
		if len(p.Log()) != 1 {
			t.Fatalf("fault log = %v, want one entry", p.Log())
		}
	})
}
