package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"urel/internal/core"
	"urel/internal/obs"
	"urel/internal/store"
	"urel/internal/ws"
)

// ReplicaOptions tunes a WAL-shipping follower.
type ReplicaOptions struct {
	// Cache is the shared segment cache for opened part files.
	Cache *store.SegCache
	// HTTPClient overrides the transport (tests). nil uses a client
	// without a timeout — /wal/stream long-polls, so a transport-level
	// deadline would turn idle periods into errors.
	HTTPClient *http.Client
	// Registry receives urel_replica_* metrics for this catalog; nil
	// disables them.
	Registry *obs.Registry
	// Catalog is the metric label; defaults to the upstream db name.
	Catalog string
	// Backoff is the delay after the first failed poll before
	// reconnecting; consecutive failures double it (with ±20% jitter so
	// a fleet of replicas does not hammer a recovering primary in
	// lockstep) up to MaxBackoff. Default 500ms.
	Backoff time.Duration
	// MaxBackoff caps the reconnect backoff. Default 10s.
	MaxBackoff time.Duration
	// WaitMS is the long-poll window requested from the primary.
	// Default 10000.
	WaitMS int
	// PromoteAfter enables automatic promotion: when the primary has
	// been unreachable for this long (a WAL-stream lease timeout — any
	// successful poll, even an idle one, renews the lease), the replica
	// fences the catalog by bumping the manifest's fencing epoch and
	// detaches. 0 disables (default).
	PromoteAfter time.Duration
	// OnPromote is called once, after a successful promotion, from the
	// streaming goroutine. The server uses it to reopen the directory
	// read-write and start serving writes.
	OnPromote func()
}

// ReplicaStats is a point-in-time snapshot of replication progress.
type ReplicaStats struct {
	Upstream string `json:"upstream"`
	// Epoch is the replica's own MVCC epoch (counts local publishes,
	// not the primary's commit numbering).
	Epoch uint64 `json:"epoch"`
	// Gen is the WAL generation currently streamed (the primary's
	// manifest epoch at the replica's last sync point).
	Gen uint64 `json:"gen"`
	// WALOff is how far into that generation's log the replica has
	// durably applied, in bytes.
	WALOff int64 `json:"wal_off"`
	// LagBytes is the primary's durable WAL size minus WALOff at the
	// last poll: 0 means caught up.
	LagBytes int64 `json:"lag_bytes"`
	// Resyncs counts full manifest re-synchronizations (bootstrap and
	// every WAL rotation observed).
	Resyncs uint64 `json:"resyncs"`
	// Reconnects counts WAL-stream reconnect attempts after failed
	// polls.
	Reconnects uint64 `json:"reconnects"`
	// Promoted reports that this replica fenced the catalog and
	// detached from its upstream (see ReplicaOptions.PromoteAfter).
	Promoted bool `json:"promoted,omitempty"`
	// LastErr is the most recent streaming error, cleared on the next
	// successful poll.
	LastErr string `json:"last_err,omitempty"`
}

// Replica is a read-only follower of a primary catalog, kept current by
// shipping the primary's write-ahead log (GET /wal/stream) and applying
// the frames through the same replay path crash recovery uses. The
// replica directory is a physical clone: segment files and worlds.bin
// are fetched by name, the WAL frames are re-appended to a local log of
// the same generation, and the manifest commits by atomic rename — so
// the directory is crash-consistent at every instant and promotion is
// simply reopening it read-write (urserved -rw) after pointing clients
// at it.
type Replica struct {
	dir      string
	upstream string
	db       string
	opts     ReplicaOptions
	hc       *http.Client

	mu     sync.Mutex // guards man, layers, mem, wal, retired, closed
	man    *store.Manifest
	w      *ws.WorldTable
	layers map[repPartKey][]*store.PartHandle
	mem    map[repPartKey]*store.PartDelta
	wal    *store.WAL
	// retired holds part handles replaced by a resync; published
	// snapshots may still reference them, so they close only with the
	// replica.
	retired []*store.PartHandle
	closed  bool

	state      atomic.Pointer[repState]
	lag        atomic.Int64
	resyncs    atomic.Uint64
	reconnects atomic.Uint64
	promoted   atomic.Bool
	lastErr    atomic.Pointer[string]
	reconnCtr  *obs.Counter

	// ctx cancels in-flight upstream requests on Close — without it, an
	// idle long-poll would hold Close (and the primary's handler) for
	// the full wait window.
	ctx    context.Context
	cancel context.CancelFunc
	quit   chan struct{}
	done   chan struct{}
}

type repPartKey struct {
	rel  string
	part int
}

type repState struct {
	epoch uint64
	gen   uint64
	off   int64
	udb   *core.UDB
}

// OpenReplica opens (or bootstraps) dir as a follower of the catalog
// named db on the upstream node. If dir already holds a catalog — a
// previous follower session, or a seed copied from a backup — it is
// reopened and streaming resumes from its local WAL position; otherwise
// the primary's manifest, segment files, and world table are fetched
// first (the initial sync blocks until the replica can serve reads).
// The background apply loop runs until Close.
func OpenReplica(dir, upstream, db string, opts ReplicaOptions) (*Replica, error) {
	if opts.Backoff <= 0 {
		opts.Backoff = 500 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 10 * time.Second
	}
	if opts.WaitMS <= 0 {
		opts.WaitMS = 10000
	}
	r := &Replica{
		dir:      dir,
		upstream: upstream,
		db:       db,
		opts:     opts,
		hc:       opts.HTTPClient,
		layers:   map[repPartKey][]*store.PartHandle{},
		mem:      map[repPartKey]*store.PartDelta{},
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	if r.hc == nil {
		r.hc = &http.Client{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: replica %s: %w", dir, err)
	}
	var err error
	if _, serr := os.Stat(filepath.Join(dir, store.CatalogName)); serr == nil {
		err = r.openLocal()
	} else {
		err = r.resync()
	}
	if err != nil {
		r.closeHandles()
		return nil, fmt.Errorf("cluster: replica %s: %w", dir, err)
	}
	r.publish()
	if reg := opts.Registry; reg != nil {
		cat := opts.Catalog
		if cat == "" {
			cat = db
		}
		lbl, val := []string{"catalog"}, []string{cat}
		reg.GaugeFuncWith("urel_replica_wal_lag_bytes",
			"Durable WAL bytes on the primary not yet applied by this replica.",
			lbl, val, func() float64 { return float64(r.lag.Load()) })
		reg.GaugeFuncWith("urel_replica_epoch",
			"The replica's local MVCC epoch (one per applied publish).",
			lbl, val, func() float64 { return float64(r.Stats().Epoch) })
		reg.GaugeFuncWith("urel_replica_resyncs_total",
			"Full manifest re-synchronizations (bootstrap and WAL rotations).",
			lbl, val, func() float64 { return float64(r.resyncs.Load()) })
		r.reconnCtr = reg.CounterWith("urel_replica_reconnects_total",
			"WAL-stream reconnect attempts after failed polls.", lbl, val...)
	}
	go r.loop()
	return r, nil
}

// Snapshot returns the replica's current MVCC snapshot. Like the
// primary's, it stays consistent while streaming continues.
func (r *Replica) Snapshot() *core.UDB { return r.state.Load().udb }

// Stats reports replication progress.
func (r *Replica) Stats() ReplicaStats {
	st := r.state.Load()
	out := ReplicaStats{
		Upstream:   r.upstream,
		Epoch:      st.epoch,
		Gen:        st.gen,
		WALOff:     st.off,
		LagBytes:   r.lag.Load(),
		Resyncs:    r.resyncs.Load(),
		Reconnects: r.reconnects.Load(),
		Promoted:   r.promoted.Load(),
	}
	if e := r.lastErr.Load(); e != nil {
		out.LastErr = *e
	}
	return out
}

// Fences returns the replica's manifest fencing epochs: its own
// authority epoch (the primary's, shipped with the manifest) and the
// highest foreign epoch witnessed. GET /fence serves these so a
// topology reload learns a promotion from any surviving node.
func (r *Replica) Fences() (own, fencedBy uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.man == nil {
		return 0, 0
	}
	return r.man.Fence, r.man.FencedBy
}

// Close stops the apply loop and releases every file handle, including
// handles retired by resyncs that published snapshots may reference.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.quit)
	r.cancel()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeHandles()
	return nil
}

func (r *Replica) closeHandles() {
	for _, ls := range r.layers {
		for _, h := range ls {
			h.Close()
		}
	}
	r.layers = map[repPartKey][]*store.PartHandle{}
	for _, h := range r.retired {
		h.Close()
	}
	r.retired = nil
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
}

// openLocal resumes from an existing replica directory: open the
// manifest's layers, replay the local WAL's intact prefix into
// memtables (exactly crash recovery), and stream onward from its end.
func (r *Replica) openLocal() error {
	man, err := store.ReadManifest(r.dir)
	if err != nil {
		return err
	}
	w, err := store.ReadWorldTable(r.dir)
	if err != nil {
		return err
	}
	for _, mr := range man.Relations {
		for pi, mp := range mr.Parts {
			src, err := store.OpenPartLayers(r.dir, mp, r.opts.Cache)
			if err != nil {
				return err
			}
			r.layers[repPartKey{mr.Name, pi}] = src.Layers
		}
	}
	if man.WAL == "" {
		return fmt.Errorf("catalog has no WAL (not a mutable-format snapshot)")
	}
	wal, records, err := store.OpenWAL(filepath.Join(r.dir, man.WAL))
	if err != nil {
		return err
	}
	r.wal = wal
	for _, rec := range records {
		ops, err := store.DecodeWALRecord(rec)
		if err != nil {
			return err
		}
		if err := r.applyOps(ops); err != nil {
			return err
		}
	}
	r.man = man
	r.w = w
	return nil
}

func (r *Replica) get(path string, q url.Values) (*http.Response, error) {
	u := r.upstream + path + "?" + q.Encode()
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return r.hc.Do(req)
}

func (r *Replica) fetch(path string, q url.Values) ([]byte, error) {
	resp, err := r.get(path, q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, firstLine(b))
	}
	return b, nil
}

func firstLine(b []byte) string {
	s := string(b)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}

// resync brings the replica to the primary's current manifest
// generation: fetch the manifest, download every referenced segment
// file not already present (file names are generation-unique and their
// content immutable once written, so presence implies currency), fetch
// worlds.bin on first sync, start a fresh local WAL for the new
// generation, and commit by manifest rename — the same write-files-
// then-rename discipline every state transition in the store uses.
func (r *Replica) resync() error {
	q := url.Values{"db": {r.db}}
	rawMan, err := r.fetch("/store/manifest", q)
	if err != nil {
		return err
	}
	man, err := store.ParseManifest(rawMan)
	if err != nil {
		return err
	}
	if man.WAL == "" {
		return fmt.Errorf("primary catalog %q is not writable (no WAL to stream)", r.db)
	}
	if r.w == nil {
		wb, err := r.fetch("/worlds", q)
		if err != nil {
			return err
		}
		w, err := store.DecodeWorldTable(wb)
		if err != nil {
			return err
		}
		if err := writeAtomic(filepath.Join(r.dir, store.WorldsName), wb); err != nil {
			return err
		}
		r.w = w
	}

	// Download missing segment files, then swap the layer sets. Handles
	// for files that carry over are reused; replaced ones are retired,
	// not closed — a published snapshot may still be reading them.
	byFile := map[string]*store.PartHandle{}
	for _, ls := range r.layers {
		for _, h := range ls {
			byFile[filepath.Base(h.Path())] = h
		}
	}
	newLayers := map[repPartKey][]*store.PartHandle{}
	opened := []*store.PartHandle{}
	fail := func(err error) error {
		for _, h := range opened {
			h.Close()
		}
		return err
	}
	for _, mr := range man.Relations {
		for pi, mp := range mr.Parts {
			files := []string{mp.File}
			for _, d := range mp.Deltas {
				files = append(files, d.File)
			}
			var ls []*store.PartHandle
			for _, f := range files {
				if h := byFile[f]; h != nil {
					ls = append(ls, h)
					delete(byFile, f)
					continue
				}
				local := filepath.Join(r.dir, f)
				if _, serr := os.Stat(local); serr != nil {
					b, err := r.fetch("/store/file", url.Values{"db": {r.db}, "name": {f}})
					if err != nil {
						return fail(err)
					}
					if err := writeAtomic(local, b); err != nil {
						return fail(err)
					}
				}
				h, err := store.OpenPart(local)
				if err != nil {
					return fail(err)
				}
				h.SetCache(r.opts.Cache)
				opened = append(opened, h)
				ls = append(ls, h)
			}
			newLayers[repPartKey{mr.Name, pi}] = ls
		}
	}
	// Whatever remains in byFile was superseded by this generation.
	for _, h := range byFile {
		r.retired = append(r.retired, h)
	}

	oldWAL := ""
	if r.man != nil {
		oldWAL = r.man.WAL
	}
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
	wal, err := store.CreateWAL(filepath.Join(r.dir, man.WAL))
	if err != nil {
		return fail(err)
	}
	if err := store.WriteManifest(r.dir, man); err != nil {
		wal.Close()
		return fail(err)
	}
	if oldWAL != "" && oldWAL != man.WAL {
		os.Remove(filepath.Join(r.dir, oldWAL))
	}
	r.wal = wal
	r.man = man
	r.layers = newLayers
	r.mem = map[repPartKey]*store.PartDelta{}
	r.resyncs.Add(1)
	return nil
}

// writeAtomic lands content via tmp+rename so a crashed download never
// leaves a torn file the next open would trust.
func writeAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (r *Replica) applyOps(ops []store.WALOp) error {
	for _, o := range ops {
		pk := repPartKey{o.Rel, o.Part}
		if _, ok := r.layers[pk]; !ok {
			return fmt.Errorf("wal op targets unknown partition %s/%d", o.Rel, o.Part)
		}
		mp := r.mem[pk]
		if mp == nil {
			mp = &store.PartDelta{}
			r.mem[pk] = mp
		}
		mp.ApplyOp(o)
	}
	return nil
}

// publish builds and publishes the next snapshot — the mirror of the
// primary's commit publication, fed by replayed frames instead of
// statements.
func (r *Replica) publish() {
	var epoch uint64
	if st := r.state.Load(); st != nil {
		epoch = st.epoch
	}
	udb := core.NewUDB()
	udb.W = r.w
	for _, mr := range r.man.Relations {
		udb.MustAddRelation(mr.Name, mr.Attrs...)
		for pi, mp := range mr.Parts {
			u := udb.MustAddPartition(mr.Name, mp.Name, mp.Attrs...)
			pk := repPartKey{mr.Name, pi}
			ls := r.layers[pk]
			src := &store.PartSource{Layers: ls[:len(ls):len(ls)]}
			if m := r.mem[pk]; m != nil {
				m.Freeze(src)
			}
			u.Back = src
		}
	}
	r.state.Store(&repState{epoch: epoch + 1, gen: r.man.Epoch, off: r.wal.Size(), udb: udb})
}

// loop is the follower's apply loop: long-poll the primary for durable
// WAL bytes past our offset, append them to the local log, replay them,
// publish; on 410 Gone (the primary rotated the log in a flush or
// compaction) resync to the new manifest generation first. Failed
// polls reconnect under exponential backoff with jitter; when
// PromoteAfter is set and the primary stays unreachable past it, the
// replica promotes itself (see promote) and the loop ends.
func (r *Replica) loop() {
	defer close(r.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := r.opts.Backoff
	lastContact := time.Now() // bootstrap/openLocal just succeeded
	for {
		select {
		case <-r.quit:
			return
		default:
		}
		err := r.poll()
		if err == nil {
			r.lastErr.Store(nil)
			backoff = r.opts.Backoff
			lastContact = time.Now()
			continue
		}
		msg := err.Error()
		r.lastErr.Store(&msg)
		if r.opts.PromoteAfter > 0 && time.Since(lastContact) >= r.opts.PromoteAfter {
			if r.promote() {
				return
			}
		}
		r.reconnects.Add(1)
		if r.reconnCtr != nil {
			r.reconnCtr.Inc()
		}
		jittered := time.Duration(float64(backoff) * (0.8 + 0.4*rng.Float64()))
		select {
		case <-r.quit:
			return
		case <-time.After(jittered):
		}
		if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// promote fences the catalog and detaches from the dead upstream: the
// manifest's fencing epoch is bumped past every epoch this replica has
// seen and committed by atomic rename, so a resurrected old primary —
// whose epoch is now lower — refuses coordinated writes the moment it
// sees ours (txn.CheckFence), and cannot be confused with the new
// authority. The local WAL handle is closed so OnPromote can reopen
// the directory read-write (txn.Open adopts the log); already-
// published read snapshots stay valid. Returns false if fencing could
// not be committed (the loop keeps retrying the stream).
func (r *Replica) promote() bool {
	r.mu.Lock()
	if r.closed || r.promoted.Load() {
		r.mu.Unlock()
		return true
	}
	man := r.man.Clone()
	if man.FencedBy > man.Fence {
		man.Fence = man.FencedBy // never promote below a witnessed epoch
	}
	man.Fence++
	if err := store.WriteManifest(r.dir, man); err != nil {
		msg := fmt.Sprintf("promote: %v", err)
		r.lastErr.Store(&msg)
		r.mu.Unlock()
		return false
	}
	r.man = man
	r.promoted.Store(true)
	if r.wal != nil {
		r.wal.Close()
		r.wal = nil
	}
	cb := r.opts.OnPromote
	r.mu.Unlock()
	if cb != nil {
		cb()
	}
	return true
}

var errRotated = fmt.Errorf("wal rotated")

func (r *Replica) poll() error {
	st := r.state.Load()
	q := url.Values{
		"db":      {r.db},
		"gen":     {strconv.FormatUint(st.gen, 10)},
		"off":     {strconv.FormatInt(st.off, 10)},
		"wait_ms": {strconv.Itoa(r.opts.WaitMS)},
	}
	resp, err := r.get("/wal/stream", q)
	if err != nil {
		return err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return rerr
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return nil
		}
		if err := r.resync(); err != nil {
			return fmt.Errorf("resync after rotation: %w", err)
		}
		r.publish()
		return nil
	default:
		return fmt.Errorf("/wal/stream: status %d: %s", resp.StatusCode, firstLine(body))
	}
	if durable, err := strconv.ParseInt(resp.Header.Get("X-Urel-Wal-Durable"), 10, 64); err == nil {
		r.lag.Store(durable - st.off - int64(len(body)))
	}
	if len(body) == 0 {
		return nil // idle long-poll window; already caught up
	}
	records, _, perr := store.ParseWALChunk(body)
	if perr != nil {
		return fmt.Errorf("/wal/stream: %w", perr)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	for _, rec := range records {
		ops, derr := store.DecodeWALRecord(rec)
		if derr != nil {
			return derr
		}
		// Durability before visibility, exactly like the primary: the
		// frame lands in the local log (fsync inside Append) before its
		// effects publish, so a crashed replica replays it on reopen.
		if aerr := r.wal.Append(rec); aerr != nil {
			return aerr
		}
		if aerr := r.applyOps(ops); aerr != nil {
			return aerr
		}
	}
	r.publish()
	return nil
}
