// Package cluster is the distribution layer over U-relational serving:
// hash-sharded catalogs, a scatter-gather coordinator, and WAL-shipping
// read replicas.
//
// The paper's central design — uncertain data represented as plain
// relations, queried by plain relational plans (Section 3) — is what
// makes sharding trivial here: a U-relation row carries its entire
// ws-descriptor with it, so hash-partitioning the rows of a relation by
// tuple id (store.ShardedSave) partitions the *representation* without
// severing any lineage. The world table W is small (it grows with
// uncertainty, not with data) and is replicated to every shard, as are
// dimension-style relations, so each shard is a complete, independently
// openable U-relational database over a slice of the facts.
//
// Merge semantics per query mode (Coordinator):
//
//   - possible: each shard computes its possible tuples (Section 3's
//     poss closes the world semantics per shard); the global answer is
//     the deduplicated union, because the sharded relation is a
//     disjoint union of the shard slices and positive relational
//     algebra distributes over union in one argument.
//   - plain (representation) answers concatenate: the result's repr
//     rows are themselves hash-partitioned by provenance.
//   - certain and exact conf gather representations: a tuple can be
//     certain (or have its exact probability determined) only by rows
//     living on *different* shards — shard-local certain/conf answers
//     are sound but not complete — so the coordinator fetches each
//     shard's result representation ("wire": "repr"), unions the rows,
//     and runs the Lemma 4.3 certain-answer pipeline or the Section 7
//     confidence computation centrally over the union.
//   - conf bounds (the UA-DB style [certain, possible] interval)
//     merge without any lineage exchange: lower = max over shards of
//     the per-shard lower bounds (each is max P(d) over that shard's
//     rows), upper = min(1, sum of per-shard upper bounds) — exact
//     even when a shard clamps its sum at 1, since any clamped shard
//     already forces the global sum past 1.
//
// Read replicas (Replica) are physical clones kept current by shipping
// the primary's write-ahead log: a follower bootstraps by fetching the
// manifest, the segment files it references, and worlds.bin, then
// long-polls /wal/stream for the durable frames of the live log,
// appends them to its own local WAL, and applies them through exactly
// the crash-recovery replay path (store.DecodeWALRecord → PartDelta),
// publishing its own MVCC epochs. Because the clone is physical, the
// replica directory is at all times a crash-consistent store: promotion
// is simply reopening it read-write.
package cluster
