package cluster

import (
	"encoding/json"
	"fmt"
	"os"
)

// Spec is a cluster topology file: per coordinated catalog, which
// relations are hash-sharded and which nodes serve each shard.
//
//	{
//	  "catalogs": {
//	    "bench": {
//	      "sharded": ["lineitem", "orders"],
//	      "shards": [
//	        {"name": "s0", "nodes": ["http://10.0.0.1:8080", "http://10.0.0.3:8080"]},
//	        {"name": "s1", "nodes": ["http://10.0.0.2:8080"]}
//	      ]
//	    }
//	  }
//	}
type Spec struct {
	Catalogs map[string]CatalogSpec `json:"catalogs"`
}

// CatalogSpec describes one sharded catalog. Every node must serve the
// catalog under the same name the coordinator registers it as; shard
// order must match the store.ShardSpec indexes written by ShardedSave.
type CatalogSpec struct {
	// Sharded lists the hash-partitioned relations (store.ShardedSave's
	// sharded argument). Relations not listed are full replicas on every
	// shard. A query referencing one sharded relation scatters; one
	// referencing none routes to a single shard round-robin; joining two
	// sharded relations is rejected (it would need cross-shard data
	// movement).
	Sharded []string `json:"sharded"`
	// Shards lists the shard serving groups in shard-index order.
	Shards []ShardNodes `json:"shards"`
}

// ShardNodes is one shard's serving group: the primary first, read
// replicas after. Reads round-robin over all nodes with failover;
// writes go to the primary only.
type ShardNodes struct {
	Name  string   `json:"name"`
	Nodes []string `json:"nodes"`
}

// ParseSpec decodes and validates a topology document.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("cluster: bad topology: %w", err)
	}
	if len(s.Catalogs) == 0 {
		return nil, fmt.Errorf("cluster: topology declares no catalogs")
	}
	for name, cs := range s.Catalogs {
		if err := cs.validate(); err != nil {
			return nil, fmt.Errorf("cluster: catalog %q: %w", name, err)
		}
	}
	return &s, nil
}

// LoadSpec reads and validates a topology file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

func (cs CatalogSpec) validate() error {
	if len(cs.Shards) == 0 {
		return fmt.Errorf("no shards")
	}
	seen := map[string]bool{}
	for i, sh := range cs.Shards {
		if sh.Name == "" {
			return fmt.Errorf("shard %d has no name", i)
		}
		if seen[sh.Name] {
			return fmt.Errorf("shard name %q used twice", sh.Name)
		}
		seen[sh.Name] = true
		if len(sh.Nodes) == 0 {
			return fmt.Errorf("shard %q has no nodes", sh.Name)
		}
	}
	return nil
}
