package cluster

// Deterministic fault injection for cluster transport.
//
// A FaultPlan is a set of rules matched against outgoing HTTP requests.
// Rules fire based on per-(rule, target) call counters, never on shared
// RNG state consumed at decision time, so a given per-target request
// sequence always observes the same faults regardless of goroutine
// interleaving. Probabilistic rules hash (seed, target, call index)
// into a uniform value, which keeps them equally deterministic.
//
// The chaos suite (chaos_test.go) derives rule sets from a seed and
// replays them against real multi-node topologies; same seed, same
// schedule, same outcome.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultRule describes one injectable fault. Matching is by substring on
// the request's URL host (Target) and path (Path); empty matches all.
// The counting fields select which of the matching calls actually
// fault: the first After calls pass untouched, then every Every-th call
// (0 or 1 = all) faults, at most Count times (0 = unlimited). Prob, if
// non-zero, additionally gates each firing on a deterministic
// pseudo-random draw keyed by (plan seed, target, call index).
//
// Exactly one action should be set. Drop and Reset synthesize transport
// errors (the coordinator treats both as node failure), Status
// synthesizes an HTTP error response without contacting the node, Delay
// sleeps before forwarding, and Trickle forwards but delivers the
// response body in 1-byte reads with a pause between each.
type FaultRule struct {
	Target string
	Path   string
	After  int
	Count  int
	Every  int
	Prob   float64

	Drop    bool
	Reset   bool
	Status  int
	Delay   time.Duration
	Trickle time.Duration
}

func (r FaultRule) action() string {
	switch {
	case r.Drop:
		return "drop"
	case r.Reset:
		return "reset"
	case r.Status != 0:
		return fmt.Sprintf("status=%d", r.Status)
	case r.Delay != 0:
		return fmt.Sprintf("delay=%s", r.Delay)
	case r.Trickle != 0:
		return fmt.Sprintf("trickle=%s", r.Trickle)
	}
	return "noop"
}

// FaultPlan holds rules plus their per-target firing state. Safe for
// concurrent use. The zero value is not usable; call NewFaultPlan.
type FaultPlan struct {
	seed  int64
	rules []FaultRule

	mu    sync.Mutex
	calls []map[string]int // per rule: matching calls seen, by target
	fired []map[string]int // per rule: faults fired, by target
	log   []string
}

// NewFaultPlan builds a plan from explicit rules. The seed only feeds
// Prob draws; tests typically also derive the rule set itself from the
// same seed.
func NewFaultPlan(seed int64, rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{seed: seed, rules: rules}
	p.calls = make([]map[string]int, len(rules))
	p.fired = make([]map[string]int, len(rules))
	for i := range rules {
		p.calls[i] = make(map[string]int)
		p.fired[i] = make(map[string]int)
	}
	return p
}

// Log returns a copy of the fired-fault log, one line per injected
// fault, in firing order. Intended for test-failure forensics.
func (p *FaultPlan) Log() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.log...)
}

// splitmix64 is the standard SplitMix64 finalizer; good avalanche, no
// state, so draws depend only on their inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a 64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw returns a deterministic uniform [0,1) value for (seed, target, n).
func (p *FaultPlan) draw(target string, n int) float64 {
	v := splitmix64(uint64(p.seed) ^ splitmix64(hashString(target)) ^ splitmix64(uint64(n)))
	return float64(v>>11) / float64(1<<53)
}

// decide records one matching call for rule i against target and
// reports whether the rule fires on it.
func (p *FaultPlan) decide(i int, target string) bool {
	r := p.rules[i]
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls[i][target]++
	n := p.calls[i][target]
	if n <= r.After {
		return false
	}
	if r.Count > 0 && p.fired[i][target] >= r.Count {
		return false
	}
	if r.Every > 1 && (n-r.After-1)%r.Every != 0 {
		return false
	}
	if r.Prob > 0 && p.draw(target, n) >= r.Prob {
		return false
	}
	p.fired[i][target]++
	p.log = append(p.log, fmt.Sprintf("rule[%d] %s call=%d target=%s", i, r.Tag(), n, target))
	return true
}

// Tag renders the rule compactly for logs.
func (r FaultRule) Tag() string {
	t := r.Target
	if t == "" {
		t = "*"
	}
	pth := r.Path
	if pth == "" {
		pth = "*"
	}
	return fmt.Sprintf("%s%s:%s", t, pth, r.action())
}

// faultTransport applies a FaultPlan in front of a base RoundTripper.
type faultTransport struct {
	plan *FaultPlan
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) with the plan.
func (p *FaultPlan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{plan: p, base: base}
}

// Client returns an *http.Client whose transport applies the plan.
func (p *FaultPlan) Client(timeout time.Duration) *http.Client {
	return &http.Client{Transport: p.Transport(nil), Timeout: timeout}
}

// resetError mimics a peer connection reset at the transport level.
type resetError struct{ target string }

func (e *resetError) Error() string   { return "fault: connection reset by " + e.target }
func (e *resetError) Timeout() bool   { return false }
func (e *resetError) Temporary() bool { return true }

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	target := req.URL.Host
	path := req.URL.Path
	var trickle time.Duration
	for i, r := range t.plan.rules {
		if r.Target != "" && !strings.Contains(target, r.Target) {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if !t.plan.decide(i, target) {
			continue
		}
		switch {
		case r.Drop:
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, fmt.Errorf("fault: dropped request to %s%s", target, path)
		case r.Reset:
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &resetError{target: target}
		case r.Status != 0:
			if req.Body != nil {
				req.Body.Close()
			}
			body := fmt.Sprintf("{\"error\":\"fault: injected %d from %s\"}", r.Status, target)
			return &http.Response{
				Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
				StatusCode:    r.Status,
				Proto:         "HTTP/1.1",
				ProtoMajor:    1,
				ProtoMinor:    1,
				Header:        http.Header{"Content-Type": []string{"application/json"}},
				Body:          io.NopCloser(bytes.NewReader([]byte(body))),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		case r.Delay != 0:
			time.Sleep(r.Delay)
		case r.Trickle != 0:
			if trickle == 0 || r.Trickle > trickle {
				trickle = r.Trickle
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err == nil && trickle > 0 {
		resp.Body = &trickleReader{rc: resp.Body, pause: trickle}
	}
	return resp, err
}

// trickleReader delivers the wrapped body one byte per Read with a
// pause before each, simulating a slow or congested peer.
type trickleReader struct {
	rc    io.ReadCloser
	pause time.Duration
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	time.Sleep(t.pause)
	return t.rc.Read(p[:1])
}

func (t *trickleReader) Close() error { return t.rc.Close() }
