package cluster

import (
	"encoding/json"
	"fmt"
	"strconv"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// QueryRequest is the POST /query body — the one wire type shared by
// single-node serving and the coordinator, so a shard node cannot
// drift from what the coordinator sends it.
type QueryRequest struct {
	// SQL is a statement in the sqlparse dialect:
	// [POSSIBLE|CERTAIN|CONF] SELECT cols FROM tables [WHERE cond].
	SQL string `json:"sql"`
	// DB names the catalog; optional when exactly one is registered.
	DB string `json:"db"`
	// Limit caps the rows returned in the response (the full count is
	// still reported as row_count). 0 = no client cap.
	Limit int `json:"limit"`
	// TimeoutMS lowers the server's per-query deadline.
	TimeoutMS int `json:"timeout_ms"`
	// Accuracy selects the confidence evaluation policy for CONF
	// queries: "exact" (default — read-once fast path, enumeration,
	// Monte-Carlo past the cap), "bounds" (one-pass certain/possible
	// bounds, never enumerates), or "auto" (exact within the deadline,
	// degrading to bounds instead of failing with 504).
	Accuracy string `json:"accuracy"`
	// Trace requests an operator-level execution trace in the response
	// ("trace" field): per relational operator, the rows and batches
	// emitted, wall time, estimated rows, and store-side effects
	// (segments read/pruned, cache hits, bytes decoded).
	Trace bool `json:"trace"`
	// Wire selects the result encoding: "" renders answers as JSON rows;
	// "repr" returns the query's result representation (descriptors,
	// tuple ids, values) for CERTAIN/CONF statements instead of the
	// rendered answer — the coordinator's gather format, in which the
	// certain-answer and confidence computations run centrally over the
	// union of shard representations.
	Wire string `json:"wire,omitempty"`
	// Partial opts a coordinated query into graceful degradation: when
	// a shard stays unreachable past failover, possible/plain answers
	// come back from the reachable shards with "partial": true and the
	// missing shards named, and confidence degrades to bounds that stay
	// sound under the absent shard (lower = max over reachable shards,
	// upper = 1). Default false = fail fast with a 503.
	Partial bool `json:"partial,omitempty"`
}

// ExecRequest is the POST /exec body.
type ExecRequest struct {
	SQL string `json:"sql"`
	DB  string `json:"db"`
}

// FenceHeader carries the coordinator's fencing epoch on coordinated
// writes. A primary whose manifest records a different epoch refuses
// the write (409); see txn.DB.CheckFence.
const FenceHeader = "X-Urel-Fence"

// Error pairs a client-visible message with an HTTP status, the
// coordinator's error currency (the server maps it onto its own).
// Shard/Catalog/NodesTried are set on shard-level failures so clients
// and tests can match on structured fields instead of prose.
type Error struct {
	Status int
	Msg    string

	Shard      string
	Catalog    string
	NodesTried int
}

func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// shardResponse is the subset of a shard's /query response the
// coordinator inspects. Result rows stay raw JSON: merged row modes
// (possible union, plain concat) pass them through byte-identical —
// no float re-encoding — and the possible-mode dedup keys on the raw
// bytes, which is sound because every shard renders values through the
// same encoder.
type shardResponse struct {
	Mode      string            `json:"mode"`
	Columns   []string          `json:"columns"`
	Rows      []json.RawMessage `json:"rows"`
	RowCount  int               `json:"row_count"`
	Truncated bool              `json:"truncated"`
	Estimator string            `json:"estimator"`
	Degraded  bool              `json:"degraded"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Plan      string            `json:"plan"`
	Repr      *Repr             `json:"repr"`
	Error     string            `json:"error"`
}

// shardExecResponse mirrors the /exec response for DML merging. Fence
// is set on fencing rejections (409) and carries the node's own
// fencing epoch so the coordinator can adopt it and retry.
type shardExecResponse struct {
	Kind     string `json:"kind"`
	Tuples   int    `json:"tuples"`
	ReprRows int    `json:"repr_rows"`
	Tombs    int    `json:"tombstones"`
	Epoch    uint64 `json:"epoch"`
	Fence    uint64 `json:"fence,omitempty"`
	Error    string `json:"error"`
}

// Repr is a query result in representation form, shipped shard →
// coordinator for the modes whose answers are not unions of per-shard
// answers (CERTAIN, exact CONF).
type Repr struct {
	Attrs   []string  `json:"attrs"`
	TIDCols []string  `json:"tid_cols"`
	Rows    []ReprRow `json:"rows"`
}

// ReprRow is one representation row: the ws-descriptor as a flat
// [var, val, var, val, ...] array, then tid-column and attribute
// values in the kind-tagged wire encoding.
type ReprRow struct {
	D []int64     `json:"d"`
	T []WireValue `json:"t"`
	V []WireValue `json:"v"`
}

// WireValue is an engine value in kind-tagged JSON array form:
// ["n"] null, ["i","123"] int, ["f",1.5] float, ["s","x"] string,
// ["b",true] bool. Integers (including tuple ids) travel as strings
// because JSON numbers round through float64 and would corrupt 64-bit
// ids.
type WireValue struct{ engine.Value }

// MarshalJSON implements the kind-tagged encoding.
func (v WireValue) MarshalJSON() ([]byte, error) {
	switch v.K {
	case engine.KindNull:
		return []byte(`["n"]`), nil
	case engine.KindInt:
		return json.Marshal([]any{"i", strconv.FormatInt(v.I, 10)})
	case engine.KindFloat:
		return json.Marshal([]any{"f", v.F})
	case engine.KindString:
		return json.Marshal([]any{"s", v.S})
	case engine.KindBool:
		return json.Marshal([]any{"b", v.I != 0})
	default:
		return nil, fmt.Errorf("cluster: unencodable value kind %v", v.K)
	}
}

// UnmarshalJSON decodes the kind-tagged encoding.
func (v *WireValue) UnmarshalJSON(data []byte) error {
	var parts []json.RawMessage
	if err := json.Unmarshal(data, &parts); err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("cluster: empty wire value")
	}
	var tag string
	if err := json.Unmarshal(parts[0], &tag); err != nil {
		return err
	}
	if tag == "n" {
		v.Value = engine.Null()
		return nil
	}
	if len(parts) != 2 {
		return fmt.Errorf("cluster: wire value %q wants a payload", tag)
	}
	switch tag {
	case "i":
		var s string
		if err := json.Unmarshal(parts[1], &s); err != nil {
			return err
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("cluster: bad wire int %q", s)
		}
		v.Value = engine.Int(i)
	case "f":
		var f float64
		if err := json.Unmarshal(parts[1], &f); err != nil {
			return err
		}
		v.Value = engine.Float(f)
	case "s":
		var s string
		if err := json.Unmarshal(parts[1], &s); err != nil {
			return err
		}
		v.Value = engine.Str(s)
	case "b":
		var b bool
		if err := json.Unmarshal(parts[1], &b); err != nil {
			return err
		}
		v.Value = engine.Bool(b)
	default:
		return fmt.Errorf("cluster: unknown wire value tag %q", tag)
	}
	return nil
}

// EncodeRepr renders a decoded result as the gather wire form.
func EncodeRepr(res *core.UResult) *Repr {
	out := &Repr{Attrs: res.Attrs, TIDCols: res.TIDCols, Rows: make([]ReprRow, len(res.Rows))}
	for i, r := range res.Rows {
		row := ReprRow{
			D: make([]int64, 0, 2*len(r.D)),
			T: make([]WireValue, len(r.TIDs)),
			V: make([]WireValue, len(r.Vals)),
		}
		for _, a := range r.D {
			row.D = append(row.D, int64(a.Var), int64(a.Val))
		}
		for j, t := range r.TIDs {
			row.T[j] = WireValue{t}
		}
		for j, v := range r.Vals {
			row.V[j] = WireValue{v}
		}
		out.Rows[i] = row
	}
	return out
}

// decodeReprInto appends a shard's representation rows to res,
// restoring descriptors from their flat form. Descriptors arrive in
// the canonical order the producing server emitted, so no
// re-normalization is needed (or wanted: it would have to re-validate
// against W, which decode callers already hold).
func decodeReprInto(res *core.UResult, rep *Repr) error {
	if res.Attrs == nil {
		res.Attrs = rep.Attrs
		res.TIDCols = rep.TIDCols
	} else if len(res.Attrs) != len(rep.Attrs) {
		return fmt.Errorf("cluster: shard representations disagree on attributes (%v vs %v)", res.Attrs, rep.Attrs)
	}
	for _, r := range rep.Rows {
		if len(r.D)%2 != 0 {
			return fmt.Errorf("cluster: odd descriptor encoding length %d", len(r.D))
		}
		d := make(ws.Descriptor, 0, len(r.D)/2)
		for i := 0; i < len(r.D); i += 2 {
			d = append(d, ws.A(ws.Var(r.D[i]), ws.Val(r.D[i+1])))
		}
		row := core.UResultRow{D: d, TIDs: make(engine.Tuple, len(r.T)), Vals: make(engine.Tuple, len(r.V))}
		for i, t := range r.T {
			row.TIDs[i] = t.Value
		}
		for i, v := range r.V {
			row.Vals[i] = v.Value
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}
