package cluster

// Per-node health tracking for the coordinator: consecutive-failure
// circuit breakers with exponential backoff + jitter, and an active
// probe loop that closes breakers as soon as a node answers /healthz
// again. Replaces the fixed 1s cooldown of the first scale-out cut.
//
// States follow the classic breaker: closed (healthy, requests flow),
// open (tripped, skipped until its backoff expires), half-open (backoff
// expired, the next request is a trial — success closes, failure
// re-opens with doubled backoff). Open and half-open nodes are still
// kept as last-resort candidates in the try order, so a shard whose
// every node tripped degrades to a retry against them, not an
// immediate 503.

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker states, exported as the urel_node_state gauge.
const (
	nodeClosed   = 0
	nodeHalfOpen = 1
	nodeOpen     = 2
)

// HealthOptions tunes per-node failure handling.
type HealthOptions struct {
	// FailThreshold is how many consecutive failures trip the breaker.
	// Default 3.
	FailThreshold int
	// BaseBackoff is the first open interval; each consecutive trip
	// doubles it. Default 250ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the open interval. Default 15s.
	MaxBackoff time.Duration
	// Jitter is the ± fraction applied to each backoff. Default 0.2.
	Jitter float64
	// ProbeInterval is the active /healthz probe cadence while any
	// breaker is not closed; probes never run when every node is
	// healthy. Default 500ms; negative disables probing.
	ProbeInterval time.Duration
	// Seed seeds the jitter PRNG (tests); 0 uses a fixed default.
	Seed int64
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 15 * time.Second
	}
	if o.Jitter <= 0 {
		o.Jitter = 0.2
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	return o
}

type nodeHealth struct {
	state     int
	fails     int // consecutive failures since last success
	trips     int // consecutive breaker trips (drives the backoff exponent)
	openUntil time.Time
}

type healthTracker struct {
	opts HealthOptions

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[string]*nodeHealth
}

func newHealthTracker(opts HealthOptions) *healthTracker {
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &healthTracker{
		opts:  opts,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: map[string]*nodeHealth{},
	}
}

func (t *healthTracker) get(node string) *nodeHealth {
	h := t.nodes[node]
	if h == nil {
		h = &nodeHealth{}
		t.nodes[node] = h
	}
	return h
}

// observe records one request or probe outcome for node.
func (t *healthTracker) observe(node string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.get(node)
	if ok {
		h.state = nodeClosed
		h.fails = 0
		h.trips = 0
		return
	}
	h.fails++
	if h.state == nodeHalfOpen || h.fails >= t.opts.FailThreshold {
		h.trips++
		h.state = nodeOpen
		h.openUntil = time.Now().Add(t.backoffLocked(h.trips))
		h.fails = 0
	}
}

// backoffLocked is BaseBackoff doubled per consecutive trip, capped at
// MaxBackoff, with ±Jitter so a fleet of coordinators does not retry a
// recovering node in lockstep.
func (t *healthTracker) backoffLocked(trips int) time.Duration {
	d := t.opts.BaseBackoff
	for i := 1; i < trips && d < t.opts.MaxBackoff; i++ {
		d *= 2
	}
	if d > t.opts.MaxBackoff {
		d = t.opts.MaxBackoff
	}
	j := 1 + t.opts.Jitter*(2*t.rng.Float64()-1)
	return time.Duration(float64(d) * j)
}

// split partitions nodes (already in preferred order) into ready ones
// (closed, or open with an expired backoff — those transition to
// half-open here) and tripped ones still inside their backoff.
func (t *healthTracker) split(nodes []string) (ready, tripped []string) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, n := range nodes {
		h := t.nodes[n]
		switch {
		case h == nil || h.state == nodeClosed || h.state == nodeHalfOpen:
			ready = append(ready, n)
		case now.Before(h.openUntil):
			tripped = append(tripped, n)
		default:
			h.state = nodeHalfOpen
			ready = append(ready, n)
		}
	}
	return ready, tripped
}

// stateOf reports the node's breaker state for the urel_node_state
// gauge.
func (t *healthTracker) stateOf(node string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h := t.nodes[node]; h != nil {
		return h.state
	}
	return nodeClosed
}

// unhealthy returns the nodes whose breaker is not closed — the active
// probe set. Empty in steady state, so probing costs nothing then.
func (t *healthTracker) unhealthy() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for n, h := range t.nodes {
		if h.state != nodeClosed {
			out = append(out, n)
		}
	}
	return out
}
