package cluster

import (
	"testing"
	"time"
)

// TestBreakerTrip: consecutive failures below the threshold keep the
// breaker closed; the threshold-th trips it open; a success anywhere
// resets everything.
func TestBreakerTrip(t *testing.T) {
	tr := newHealthTracker(HealthOptions{FailThreshold: 3, BaseBackoff: time.Hour, ProbeInterval: -1})
	tr.observe("n", false)
	tr.observe("n", false)
	if s := tr.stateOf("n"); s != nodeClosed {
		t.Fatalf("2 failures: state %d, want closed", s)
	}
	tr.observe("n", false)
	if s := tr.stateOf("n"); s != nodeOpen {
		t.Fatalf("3rd failure: state %d, want open", s)
	}
	ready, tripped := tr.split([]string{"n", "m"})
	if len(ready) != 1 || ready[0] != "m" || len(tripped) != 1 || tripped[0] != "n" {
		t.Fatalf("split = ready %v tripped %v", ready, tripped)
	}
	tr.observe("n", true)
	if s := tr.stateOf("n"); s != nodeClosed {
		t.Fatalf("success must close the breaker, state %d", s)
	}
}

// TestBreakerHalfOpen: an expired backoff moves the node to half-open
// via split; a failure there re-opens immediately (no threshold), a
// success closes.
func TestBreakerHalfOpen(t *testing.T) {
	tr := newHealthTracker(HealthOptions{FailThreshold: 1, BaseBackoff: time.Nanosecond, ProbeInterval: -1})
	tr.observe("n", false) // trips at threshold 1
	time.Sleep(time.Millisecond)
	ready, tripped := tr.split([]string{"n"})
	if len(ready) != 1 || len(tripped) != 0 {
		t.Fatalf("expired backoff: ready %v tripped %v, want node ready (half-open)", ready, tripped)
	}
	if s := tr.stateOf("n"); s != nodeHalfOpen {
		t.Fatalf("state %d, want half-open", s)
	}
	tr.observe("n", false) // half-open failure: re-open on the spot
	if s := tr.stateOf("n"); s != nodeOpen {
		t.Fatalf("half-open failure: state %d, want open", s)
	}
}

// TestBreakerBackoffGrowth: each consecutive trip doubles the open
// interval up to the cap; jitter stays inside its ± fraction.
func TestBreakerBackoffGrowth(t *testing.T) {
	tr := newHealthTracker(HealthOptions{
		BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.2, ProbeInterval: -1})
	within := func(d time.Duration, base time.Duration) bool {
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		return d >= lo && d <= hi
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for trips, base := 1, 100*time.Millisecond; trips <= 6; trips++ {
		d := tr.backoffLocked(trips)
		if !within(d, base) {
			t.Fatalf("trips=%d backoff %s outside %s ±20%%", trips, d, base)
		}
		if base < time.Second {
			base *= 2
			if base > time.Second {
				base = time.Second
			}
		}
	}
}

// TestBreakerUnhealthySet: the active probe set is exactly the
// not-closed nodes — empty in steady state.
func TestBreakerUnhealthySet(t *testing.T) {
	tr := newHealthTracker(HealthOptions{FailThreshold: 1, BaseBackoff: time.Hour, ProbeInterval: -1})
	if u := tr.unhealthy(); len(u) != 0 {
		t.Fatalf("steady state unhealthy = %v", u)
	}
	tr.observe("a", true)
	tr.observe("b", false)
	u := tr.unhealthy()
	if len(u) != 1 || u[0] != "b" {
		t.Fatalf("unhealthy = %v, want [b]", u)
	}
}
