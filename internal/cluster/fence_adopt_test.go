package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// fenceShard fakes a shard primary that refuses coordinated writes
// whose fence header differs from its own epoch, mirroring the
// server's CheckFence mapping (409 + {"error", "fence"}).
func fenceShard(epoch uint64, calls *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/exec" {
			fmt.Fprint(w, `{}`)
			return
		}
		calls.Add(1)
		if got := r.Header.Get(FenceHeader); got != fmt.Sprint(epoch) {
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{
				"error": "txn: write carries stale fence epoch " + got,
				"fence": epoch,
			})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"kind": "insert", "tuples": 1, "epoch": 9})
	})
}

// TestExecFenceAdoptRetry: a 409 carrying a HIGHER epoch than the
// coordinator knows means its topology view is stale — it adopts the
// epoch and retries once, transparently to the caller.
func TestExecFenceAdoptRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(fenceShard(3, &calls))
	defer ts.Close()
	spec := CatalogSpec{Sharded: []string{"s"}, Shards: []ShardNodes{{Name: "s0", Nodes: []string{ts.URL}}}}
	c, err := NewCoordinator("demo", spec, Options{HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, cerr := c.Exec(ExecRequest{SQL: "insert into s values (1, 2)"})
	if cerr != nil {
		t.Fatalf("Exec with stale fence must adopt and succeed: %v", cerr)
	}
	if res.Tuples != 1 || calls.Load() != 2 {
		t.Fatalf("adopt-retry: tuples=%d calls=%d, want 1 tuple over exactly 2 calls", res.Tuples, calls.Load())
	}

	// The adopted epoch sticks: the next write carries it up front.
	calls.Store(0)
	if _, cerr := c.Exec(ExecRequest{SQL: "insert into s values (3, 4)"}); cerr != nil {
		t.Fatalf("second Exec: %v", cerr)
	}
	if calls.Load() != 1 {
		t.Fatalf("second Exec took %d calls, want 1 (epoch already adopted)", calls.Load())
	}
}

// TestExecFenceSupersededTerminal: a 409 whose epoch is NOT higher
// than the coordinator's view is a fenced old primary — no retry loop,
// the 409 surfaces to the caller.
func TestExecFenceSupersededTerminal(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(fenceShard(3, &calls))
	defer ts.Close()
	spec := CatalogSpec{Sharded: []string{"s"}, Shards: []ShardNodes{{Name: "s0", Nodes: []string{ts.URL}}}}
	c, err := NewCoordinator("demo", spec, Options{HTTPClient: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The coordinator already knows epoch 5; the node answers 409 with
	// its own lower epoch 3 (it was fenced by the promotion that minted
	// 5). Nothing to adopt — terminal.
	c.fences[0].Store(5)

	_, cerr := c.Exec(ExecRequest{SQL: "insert into s values (1, 2)"})
	if cerr == nil || cerr.Status != http.StatusConflict {
		t.Fatalf("want terminal 409, got %v", cerr)
	}
	if calls.Load() != 1 {
		t.Fatalf("superseded refusal retried: %d calls, want 1", calls.Load())
	}
}
