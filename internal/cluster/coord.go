package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"urel/internal/core"
	"urel/internal/obs"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/ws"
)

// Options tunes a Coordinator.
type Options struct {
	// HTTPClient overrides the transport (tests inject httptest
	// clients); nil uses a client with a 5-minute ceiling so shard-side
	// query deadlines, not the transport, bound sub-requests.
	HTTPClient *http.Client
	// Registry receives the urel_shard_* metric family; nil disables
	// coordinator metrics.
	Registry *obs.Registry
	// Cooldown is deprecated: it used to be the fixed skip interval for
	// a failed node and now seeds Health.BaseBackoff when that is unset.
	Cooldown time.Duration
	// Health tunes the per-node circuit breakers, backoff, and active
	// health probes.
	Health HealthOptions
	// HedgeQuantile, when in (0,1), hedges scatter reads: if the first
	// node of a shard has not answered within that quantile of the
	// shard's observed latency, a second request is launched to the
	// next node and the first answer wins. Off by default (0).
	HedgeQuantile float64
	// HedgeMin floors the hedge delay. Default 10ms.
	HedgeMin time.Duration
}

// Coordinator scatter-gathers queries for one sharded catalog over the
// ordinary single-node HTTP/JSON protocol and merges the results with
// the per-mode semantics documented in the package comment. It is safe
// for concurrent use.
type Coordinator struct {
	catalog string
	spec    CatalogSpec
	sharded map[string]bool
	hc      *http.Client
	opts    Options // as passed to NewCoordinator (topology reload rebuilds with them)

	health   *healthTracker
	hedgeQ   float64
	hedgeMin time.Duration
	hlat     []*obs.Histogram // per shard: latency for hedge delays (always on)
	fences   []atomic.Uint64  // per shard: highest fencing epoch witnessed

	rr     atomic.Uint64   // round-robin cursor: single-shard routing of replicated-only queries
	nodeRR []atomic.Uint64 // per shard: replica-read rotation, advanced only by that shard's calls

	probeQuit chan struct{}
	probeOnce sync.Once

	worlds atomic.Pointer[ws.WorldTable] // fetched once; W is immutable

	reqs      []*obs.Counter // per shard: sub-requests issued
	failovers []*obs.Counter // per shard: node failures routed around
	unavail   []*obs.Counter // per shard: requests failed with every node down
	hedges    []*obs.Counter // per shard: hedged second requests launched
	lat       []*obs.Histogram
	partials  *obs.Counter // partial (degraded) merged results served
}

// NewCoordinator builds a coordinator for catalog over spec.
func NewCoordinator(catalog string, spec CatalogSpec, opts Options) (*Coordinator, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("cluster: catalog %q: %w", catalog, err)
	}
	hopts := opts.Health
	if hopts.BaseBackoff == 0 && opts.Cooldown > 0 {
		hopts.BaseBackoff = opts.Cooldown
	}
	c := &Coordinator{
		catalog:   catalog,
		spec:      spec,
		sharded:   map[string]bool{},
		hc:        opts.HTTPClient,
		opts:      opts,
		health:    newHealthTracker(hopts),
		hedgeQ:    opts.HedgeQuantile,
		hedgeMin:  opts.HedgeMin,
		probeQuit: make(chan struct{}),
	}
	if c.hedgeMin <= 0 {
		c.hedgeMin = 10 * time.Millisecond
	}
	c.fences = make([]atomic.Uint64, len(spec.Shards))
	c.nodeRR = make([]atomic.Uint64, len(spec.Shards))
	for _, r := range spec.Sharded {
		c.sharded[r] = true
	}
	if c.hc == nil {
		// DefaultTransport keeps only 2 idle connections per host, which
		// churns TCP sockets under fan-out; pool enough for a busy shard.
		c.hc = &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	for range spec.Shards {
		c.hlat = append(c.hlat, obs.NewHistogram(nil))
	}
	if r := opts.Registry; r != nil {
		for si, sh := range spec.Shards {
			lv := []string{catalog, sh.Name}
			c.reqs = append(c.reqs, r.CounterWith("urel_shard_requests_total",
				"Sub-requests issued to each shard.", []string{"catalog", "shard"}, lv...))
			c.failovers = append(c.failovers, r.CounterWith("urel_shard_failovers_total",
				"Node failures routed around to another node of the shard.", []string{"catalog", "shard"}, lv...))
			c.unavail = append(c.unavail, r.CounterWith("urel_shard_unavailable_total",
				"Sub-requests that failed with every node of the shard down (503s).", []string{"catalog", "shard"}, lv...))
			c.hedges = append(c.hedges, r.CounterWith("urel_shard_hedges_total",
				"Hedged second requests launched after the latency-quantile delay.", []string{"catalog", "shard"}, lv...))
			c.lat = append(c.lat, r.HistogramWith("urel_shard_seconds",
				"Sub-request latency per shard.", nil, []string{"catalog", "shard"}, lv...))
			for _, node := range sh.Nodes {
				node := node
				r.GaugeFuncWith("urel_node_state",
					"Per-node circuit-breaker state (0 closed, 1 half-open, 2 open).",
					[]string{"catalog", "shard", "node"}, []string{catalog, spec.Shards[si].Name, node},
					func() float64 { return float64(c.health.stateOf(node)) })
			}
		}
		c.partials = r.CounterWith("urel_partial_results_total",
			"Coordinated results served partial (at least one shard missing).",
			[]string{"catalog"}, catalog)
		r.GaugeFuncWith("urel_cluster_shards", "Shards in the coordinated catalog.",
			[]string{"catalog"}, []string{catalog},
			func() float64 { return float64(len(spec.Shards)) })
	}
	if c.health.opts.ProbeInterval > 0 {
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the health-probe loop. Queries already holding the
// coordinator keep working — topology reload relies on that to drain
// in-flight requests on the old object while new ones use its
// replacement.
func (c *Coordinator) Close() {
	c.probeOnce.Do(func() { close(c.probeQuit) })
}

// probeLoop actively probes /healthz on nodes whose breaker is not
// closed, closing the breaker the moment one answers again. When every
// node is healthy an iteration is one mutex acquire — steady-state
// overhead is nil.
func (c *Coordinator) probeLoop() {
	probe := &http.Client{Transport: c.hc.Transport, Timeout: time.Second}
	t := time.NewTicker(c.health.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.probeQuit:
			return
		case <-t.C:
		}
		for _, node := range c.health.unhealthy() {
			resp, err := probe.Get(node + "/healthz")
			if err != nil {
				c.health.observe(node, false)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.health.observe(node, resp.StatusCode == http.StatusOK)
		}
	}
}

// Catalog returns the coordinated catalog's name.
func (c *Coordinator) Catalog() string { return c.catalog }

// Spec returns the coordinator's topology.
func (c *Coordinator) Spec() CatalogSpec { return c.spec }

// Opts returns the options the coordinator was built with, so a
// topology reload can rebuild against a new spec with identical tuning.
func (c *Coordinator) Opts() Options { return c.opts }

// Route resolves which shards a query touching rels must visit.
// scatter reports whether the result is a fan-out (the query reads a
// hash-sharded relation) or a single-shard round-robin pick (only
// replicated relations). Joining two distinct sharded relations is
// rejected: their rows are co-partitioned by unrelated tuple ids, so
// per-shard evaluation would miss cross-shard join pairs.
func (c *Coordinator) Route(rels []string) (targets []int, scatter bool, err *Error) {
	var shardedRels []string
	for _, r := range rels {
		if c.sharded[r] {
			shardedRels = append(shardedRels, r)
		}
	}
	if len(shardedRels) > 1 {
		return nil, false, errf(400,
			"cluster: query joins sharded relations %s: tuples of distinct sharded relations are partitioned independently, so scatter-gather cannot evaluate their join (shard one of them only, or replicate one)",
			strings.Join(shardedRels, ", "))
	}
	if len(shardedRels) == 0 {
		return []int{int(c.rr.Add(1)-1) % len(c.spec.Shards)}, false, nil
	}
	targets = make([]int, len(c.spec.Shards))
	for i := range targets {
		targets[i] = i
	}
	return targets, true, nil
}

// nodeOrder returns the shard's nodes in try order for reads: a
// round-robin rotation of the nodes whose breaker admits requests
// first (spreading load over primary and replicas), then the tripped
// ones as a last resort — a transient blip should degrade to a retry,
// not a 503.
func (c *Coordinator) nodeOrder(shard int) []string {
	nodes := c.spec.Shards[shard].Nodes
	// Per-shard cursor: rotation depends only on how many calls THIS
	// shard has served, not on sibling shards racing the same counter
	// during a scatter — keeps replica load even per shard and the node
	// order reproducible for a sequential request stream.
	rot := int(c.nodeRR[shard].Add(1)-1) % len(nodes)
	rotated := make([]string, 0, len(nodes))
	for i := range nodes {
		rotated = append(rotated, nodes[(rot+i)%len(nodes)])
	}
	ready, tripped := c.health.split(rotated)
	return append(ready, tripped...)
}

// shardCall is one sub-request's outcome: the raw response body, HTTP
// status, and the node that served it.
type shardCall struct {
	status  int
	body    []byte
	node    string
	elapsed time.Duration
}

// post issues one sub-request to one node. fence, when non-zero, rides
// along as the X-Urel-Fence header (coordinated writes only).
func (c *Coordinator) post(node, path string, body []byte, fence uint64) (*shardCall, error) {
	req, err := http.NewRequest(http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if fence > 0 {
		req.Header.Set(FenceHeader, strconv.FormatUint(fence, 10))
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	return &shardCall{status: resp.StatusCode, body: b, node: node, elapsed: time.Since(start)}, nil
}

// call POSTs body to path on one node of the shard, failing over
// across the shard's nodes on transport errors. Only transport errors
// fail over — an HTTP error status is an answer from a healthy node
// and is returned as-is. When every node is unreachable the error is
// the satellite-mandated explicit 503 naming the shard, with the
// structured Shard/Catalog/NodesTried fields populated.
func (c *Coordinator) call(shard int, path string, body []byte, primaryOnly bool, fence uint64) (*shardCall, *Error) {
	if len(c.reqs) > 0 {
		c.reqs[shard].Inc()
	}
	nodes := c.nodeOrder(shard)
	if primaryOnly {
		nodes = c.spec.Shards[shard].Nodes[:1]
	}
	var lastErr error
	start := 0
	if c.hedgeQ > 0 && c.hedgeQ < 1 && !primaryOnly && len(nodes) > 1 {
		sc, consumed, err := c.hedged(shard, nodes, path, body)
		if sc != nil {
			return sc, nil
		}
		lastErr = err
		start = consumed
	}
	for i := start; i < len(nodes); i++ {
		node := nodes[i]
		if i > 0 && len(c.failovers) > 0 {
			c.failovers[shard].Inc()
		}
		sc, err := c.post(node, path, body, fence)
		if err != nil {
			c.health.observe(node, false)
			lastErr = err
			continue
		}
		c.health.observe(node, true)
		c.hlat[shard].ObserveDuration(sc.elapsed)
		if len(c.lat) > 0 {
			c.lat[shard].ObserveDuration(sc.elapsed)
		}
		return sc, nil
	}
	if len(c.unavail) > 0 {
		c.unavail[shard].Inc()
	}
	e := errf(http.StatusServiceUnavailable,
		"cluster: shard %q of catalog %q unavailable: no reachable node (%d tried, last error: %v)",
		c.spec.Shards[shard].Name, c.catalog, len(nodes), lastErr)
	e.Shard = c.spec.Shards[shard].Name
	e.Catalog = c.catalog
	e.NodesTried = len(nodes)
	return nil, e
}

// hedged races nodes[0] against a delayed second request to nodes[1]:
// the second launches only if the first has not answered within the
// shard's HedgeQuantile observed latency (floored at HedgeMin) — the
// tail-latency cut for a slow or struggling node. Returns the winning
// answer, or (nil, nodes consumed, last error) when every launched
// request failed so the caller can continue down the node list.
func (c *Coordinator) hedged(shard int, nodes []string, path string, body []byte) (*shardCall, int, error) {
	type result struct {
		sc   *shardCall
		err  error
		node string
	}
	ch := make(chan result, 2)
	send := func(node string) {
		sc, err := c.post(node, path, body, 0)
		ch <- result{sc: sc, err: err, node: node}
	}
	go send(nodes[0])
	delay := time.Duration(c.hlat[shard].Quantile(c.hedgeQ) * float64(time.Second))
	if delay < c.hedgeMin {
		delay = c.hedgeMin
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, failed := 1, 0
	var lastErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				c.health.observe(r.node, true)
				c.hlat[shard].ObserveDuration(r.sc.elapsed)
				if len(c.lat) > 0 {
					c.lat[shard].ObserveDuration(r.sc.elapsed)
				}
				if r.node != nodes[0] && len(c.failovers) > 0 {
					c.failovers[shard].Inc()
				}
				return r.sc, launched, nil
			}
			c.health.observe(r.node, false)
			lastErr = r.err
			failed++
			if failed == launched {
				if launched == 1 {
					// First failed before the hedge delay: plain failover,
					// no point waiting out the timer.
					return nil, 1, lastErr
				}
				return nil, launched, lastErr
			}
		case <-timer.C:
			if launched == 1 {
				launched = 2
				if len(c.hedges) > 0 {
					c.hedges[shard].Inc()
				}
				go send(nodes[1])
			}
		}
	}
}

// Relay forwards a query to a single shard and returns the raw
// response bytes for verbatim pass-through. When routing resolves to
// one shard, its answer IS the global answer for every mode (all
// relevant representation rows live there), so the coordinator skips
// the decode/merge/re-encode cycle entirely — this is what keeps
// 1-shard coordinator overhead to a transport hop.
func (c *Coordinator) Relay(shard int, req QueryRequest) (status int, body []byte, err *Error) {
	req.DB = c.catalog
	b, merr := json.Marshal(req)
	if merr != nil {
		return 0, nil, errf(500, "cluster: %v", merr)
	}
	sc, cerr := c.call(shard, "/query", b, false, 0)
	if cerr != nil {
		return 0, nil, cerr
	}
	return sc.status, sc.body, nil
}

// scatter issues the request to every target shard concurrently and
// decodes each response. A per-shard child span (when span is non-nil)
// records the sub-request latency and row count — the per-shard
// breakdown EXPLAIN ANALYZE and "trace":true surface.
//
// With allowPartial, a shard whose every node is unreachable (the
// structured 503) yields a nil slot and its index in missing instead
// of failing the whole scatter; any other shard error, and the case of
// every shard missing, still fail.
func (c *Coordinator) scatter(targets []int, req QueryRequest, span *obs.Span, allowPartial bool) (resps []*shardResponse, missing []int, err *Error) {
	req.DB = c.catalog
	req.Limit = 0     // limits cannot push below a union; applied after merging
	req.Trace = false // shard-internal traces are not gathered; spans carry latency
	body, merr := json.Marshal(req)
	if merr != nil {
		return nil, nil, errf(500, "cluster: %v", merr)
	}
	type slot struct {
		resp *shardResponse
		call *shardCall
		err  *Error
	}
	slots := make([]slot, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			sc, err := c.call(shard, "/query", body, false, 0)
			if err != nil {
				slots[i] = slot{err: err}
				return
			}
			var sr shardResponse
			if uerr := json.Unmarshal(sc.body, &sr); uerr != nil {
				slots[i] = slot{err: errf(502, "cluster: shard %q returned unparseable response: %v",
					c.spec.Shards[shard].Name, uerr)}
				return
			}
			if sc.status != http.StatusOK {
				msg := sr.Error
				if msg == "" {
					msg = fmt.Sprintf("status %d", sc.status)
				}
				serr := errf(sc.status, "cluster: shard %q: %s", c.spec.Shards[shard].Name, msg)
				serr.Shard = c.spec.Shards[shard].Name
				serr.Catalog = c.catalog
				slots[i] = slot{err: serr}
				return
			}
			slots[i] = slot{resp: &sr, call: sc}
		}(i, shard)
	}
	wg.Wait()
	out := make([]*shardResponse, len(targets))
	var lastMissing *Error
	for i, sl := range slots {
		if sl.err != nil {
			if allowPartial && sl.err.Status == http.StatusServiceUnavailable && sl.err.NodesTried > 0 {
				missing = append(missing, i)
				lastMissing = sl.err
				continue
			}
			return nil, nil, sl.err
		}
		if span != nil {
			child := span.Child("shard "+c.spec.Shards[targets[i]].Name, -1)
			child.AddNanos(sl.call.elapsed.Nanoseconds())
			child.AddRows(int64(sl.resp.RowCount))
		}
		out[i] = sl.resp
	}
	if len(missing) == len(targets) {
		return nil, nil, lastMissing
	}
	if len(missing) > 0 && c.partials != nil {
		c.partials.Inc()
	}
	return out, missing, nil
}

// missingNames maps missing slot indices back to shard names.
func (c *Coordinator) missingNames(targets, missing []int) []string {
	var out []string
	for _, i := range missing {
		out = append(out, c.spec.Shards[targets[i]].Name)
	}
	return out
}

// Merged is a coordinator-merged row-mode result. Partial marks a
// degraded answer: MissingShards did not contribute, so row modes are
// a sound subset and bounds are widened to stay sound.
type Merged struct {
	Columns       []string
	Rows          []json.RawMessage
	Truncated     bool
	Estimator     string
	Degraded      bool
	Partial       bool
	MissingShards []string
}

// ScatterRows runs a possible- or plain-mode query on every target and
// merges: possible answers union with cross-shard dedup (each shard
// already returns a set); plain representation rows concatenate. With
// req.Partial, unreachable shards are skipped and reported in
// MissingShards — the merged rows are then a subset of the full
// answer (sound for possible/plain, which are unions over shards).
func (c *Coordinator) ScatterRows(targets []int, req QueryRequest, dedup bool, span *obs.Span) (*Merged, *Error) {
	resps, missing, err := c.scatter(targets, req, span, req.Partial)
	if err != nil {
		return nil, err
	}
	m := &Merged{Partial: len(missing) > 0, MissingShards: c.missingNames(targets, missing)}
	var seen map[string]bool
	if dedup {
		seen = make(map[string]bool)
	}
	for _, sr := range resps {
		if sr == nil {
			continue
		}
		if m.Columns == nil {
			m.Columns = sr.Columns
		}
		m.Truncated = m.Truncated || sr.Truncated
		for _, row := range sr.Rows {
			if dedup {
				k := string(row)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			m.Rows = append(m.Rows, row)
		}
	}
	return m, nil
}

// ScatterBounds runs a CONF BOUNDS query on every target and merges
// per answer tuple: lower = max of shard lowers, upper = min(1, sum of
// shard uppers). Exactness argument: a tuple's global lower bound is
// max P(d) over ALL its representation rows = max over shards of the
// per-shard max; the upper bound is min(1, Σ P(d)) over all rows, and
// per-shard clamping cannot change it — a clamped shard's partial sum
// already exceeds 1, forcing the global min(1, ·) to 1 as well. Tuples
// absent from a shard contribute (0, 0) there, matching "no rows".
//
// With req.Partial, an unreachable shard widens instead of failing:
// its rows might have raised any tuple's upper bound (and introduced
// tuples we cannot list), so every returned upper is clamped to 1,
// while lowers stay sound — a max over fewer shards can only
// underestimate, and a lower bound may be low. The result sandwiches
// the exact confidence of every tuple it lists.
func (c *Coordinator) ScatterBounds(targets []int, req QueryRequest, span *obs.Span) (*Merged, *Error) {
	req.Accuracy = "bounds"
	resps, missing, err := c.scatter(targets, req, span, req.Partial)
	if err != nil {
		return nil, err
	}
	type bound struct {
		vals    []json.RawMessage
		lo, hi  float64
		clamped bool
	}
	var order []string
	merged := map[string]*bound{}
	degraded := len(missing) > 0
	var columns []string
	for _, sr := range resps {
		if sr == nil {
			continue
		}
		if columns == nil {
			columns = sr.Columns
		}
		degraded = degraded || sr.Degraded
		if len(sr.Columns) < 2 {
			return nil, errf(502, "cluster: shard bounds response has %d columns", len(sr.Columns))
		}
		nvals := len(sr.Columns) - 2 // trailing _p_lo, _p_hi
		for _, raw := range sr.Rows {
			var cells []json.RawMessage
			if uerr := json.Unmarshal(raw, &cells); uerr != nil || len(cells) != nvals+2 {
				return nil, errf(502, "cluster: bad shard bounds row %s", raw)
			}
			var lo, hi float64
			if uerr := json.Unmarshal(cells[nvals], &lo); uerr != nil {
				return nil, errf(502, "cluster: bad bounds row lower %s", cells[nvals])
			}
			if uerr := json.Unmarshal(cells[nvals+1], &hi); uerr != nil {
				return nil, errf(502, "cluster: bad bounds row upper %s", cells[nvals+1])
			}
			key := string(bytes.Join(rawBytes(cells[:nvals]), []byte{0}))
			b := merged[key]
			if b == nil {
				b = &bound{vals: cells[:nvals]}
				merged[key] = b
				order = append(order, key)
			}
			if lo > b.lo {
				b.lo = lo
			}
			b.hi += hi
			if hi >= 1 {
				b.clamped = true
			}
		}
	}
	m := &Merged{
		Columns:       columns,
		Estimator:     "bounds",
		Degraded:      degraded,
		Partial:       len(missing) > 0,
		MissingShards: c.missingNames(targets, missing),
	}
	sort.Strings(order) // deterministic cross-shard output order
	for _, key := range order {
		b := merged[key]
		if b.hi > 1 || b.clamped || m.Partial {
			b.hi = 1
		}
		if b.lo > b.hi {
			b.lo = b.hi // max-certain from one shard cannot exceed the clamped possible
		}
		cells := append(append([]json.RawMessage{}, b.vals...), jsonNum(b.lo), jsonNum(b.hi))
		row, merr := json.Marshal(cells)
		if merr != nil {
			return nil, errf(500, "cluster: %v", merr)
		}
		m.Rows = append(m.Rows, json.RawMessage(row))
	}
	return m, nil
}

func rawBytes(cells []json.RawMessage) [][]byte {
	out := make([][]byte, len(cells))
	for i, c := range cells {
		out[i] = []byte(c)
	}
	return out
}

func jsonNum(f float64) json.RawMessage {
	b, _ := json.Marshal(f)
	return json.RawMessage(b)
}

// GatherRepr runs the query on every target with "wire": "repr" and
// unions the returned representations into one core.UResult over the
// (replicated, immutable) world table — the input to running the
// certain-answer pipeline or exact confidence computation centrally.
func (c *Coordinator) GatherRepr(targets []int, req QueryRequest, span *obs.Span) (*core.UResult, *Error) {
	w, werr := c.worldTable()
	if werr != nil {
		return nil, werr
	}
	req.Wire = "repr"
	resps, _, err := c.scatter(targets, req, span, false)
	if err != nil {
		return nil, err
	}
	res := &core.UResult{W: w}
	for i, sr := range resps {
		if sr.Repr == nil {
			return nil, errf(502, "cluster: shard %q returned no representation (is it running an older build?)",
				c.spec.Shards[targets[i]].Name)
		}
		if derr := decodeReprInto(res, sr.Repr); derr != nil {
			return nil, errf(502, "%v", derr)
		}
	}
	return res, nil
}

// ScatterExplain fans an EXPLAIN [ANALYZE] statement out and composes
// the shard plans under a scatter-gather header, with per-shard wall
// time — the distribution-aware EXPLAIN ANALYZE.
func (c *Coordinator) ScatterExplain(targets []int, scatter bool, req QueryRequest, span *obs.Span) (plan string, rows int, err *Error) {
	resps, _, serr := c.scatter(targets, req, span, false)
	if serr != nil {
		return "", 0, serr
	}
	var b strings.Builder
	routing := "single-shard (round-robin: no sharded relation read)"
	if scatter {
		routing = fmt.Sprintf("fan-out %d/%d shards", len(targets), len(c.spec.Shards))
	}
	fmt.Fprintf(&b, "Scatter-Gather on %s: %s\n", c.catalog, routing)
	for i, sr := range resps {
		rows += sr.RowCount
		fmt.Fprintf(&b, "shard %s: %.3fms\n", c.spec.Shards[targets[i]].Name, sr.ElapsedMS)
		text := strings.TrimRight(sr.Plan, "\n")
		for _, line := range strings.Split(text, "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), rows, nil
}

// worldTable fetches (once) the catalog's world table from any live
// node. W is replicated to every shard and immutable at serving time —
// DML inserts certain rows or reuses existing variables; only loading
// a new database introduces variables — so a single fetch is safe to
// cache for the coordinator's lifetime.
func (c *Coordinator) worldTable() (*ws.WorldTable, *Error) {
	if w := c.worlds.Load(); w != nil {
		return w, nil
	}
	var lastErr *Error
	for shard := range c.spec.Shards {
		for _, node := range c.nodeOrder(shard) {
			resp, err := c.hc.Get(node + "/worlds?db=" + url.QueryEscape(c.catalog))
			if err != nil {
				c.health.observe(node, false)
				lastErr = errf(503, "cluster: fetch world table: %v", err)
				continue
			}
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				lastErr = errf(502, "cluster: fetch world table from %s: status %d (%v)", node, resp.StatusCode, rerr)
				continue
			}
			w, derr := store.DecodeWorldTable(b)
			if derr != nil {
				return nil, errf(502, "cluster: decode world table: %v", derr)
			}
			c.worlds.Store(w)
			return w, nil
		}
	}
	if lastErr == nil {
		lastErr = errf(503, "cluster: no nodes configured")
	}
	return nil, lastErr
}

// ExecResult is a coordinator-merged DML outcome.
type ExecResult struct {
	Kind     string
	Tuples   int
	ReprRows int
	Tombs    int
	Epoch    uint64
}

// Exec routes one DML statement:
//
//   - INSERT ... VALUES into a sharded relation goes to the write
//     shard's primary (shard 0). Fresh tuple ids are allocated above
//     the GLOBAL MaxTID that ShardedSave stamped into every shard's
//     manifest, so they never collide with rows on other shards; reads
//     scatter, so placement does not affect correctness, only balance.
//   - INSERT ... SELECT may read replicated relations (each shard holds
//     them whole) but not sharded ones (the write shard only sees its
//     slice).
//   - DELETE / UPDATE on a sharded relation scatter to every primary;
//     counts sum, the epoch reported is the maximum.
//   - DML on replicated relations is rejected: an uncoordinated
//     per-shard write would let the replicas diverge. Reload the
//     catalog (ShardedSave) to change dimension data.
func (c *Coordinator) Exec(req ExecRequest) (*ExecResult, *Error) {
	st, perr := sqlparse.ParseStatement(req.SQL)
	if perr != nil {
		return nil, errf(400, "%v", perr)
	}
	var table string
	scatterWrite := false
	switch s := st.(type) {
	case *sqlparse.InsertStmt:
		table = s.Table
		if s.Select != nil {
			for _, r := range core.Relations(s.Select.Query) {
				if c.sharded[r] {
					return nil, errf(400,
						"cluster: INSERT ... SELECT reads sharded relation %q: the write shard only holds its own slice (SELECT from replicated relations only)", r)
				}
			}
		}
	case *sqlparse.DeleteStmt:
		table = s.Table
		scatterWrite = true
	case *sqlparse.UpdateStmt:
		table = s.Table
		scatterWrite = true
	default:
		return nil, errf(400, "cluster: unsupported statement for coordinated execution")
	}
	if !c.sharded[table] {
		return nil, errf(http.StatusForbidden,
			"cluster: relation %q is replicated to every shard and read-only under sharding (rebuild the catalog with store.ShardedSave to change it)", table)
	}

	req.DB = c.catalog
	body, merr := json.Marshal(req)
	if merr != nil {
		return nil, errf(500, "cluster: %v", merr)
	}
	targets := []int{0}
	if scatterWrite {
		targets = make([]int, len(c.spec.Shards))
		for i := range targets {
			targets[i] = i
		}
	}
	out := &ExecResult{}
	for _, shard := range targets {
		sr, cerr := c.execShard(shard, body, scatterWrite)
		if cerr != nil {
			return nil, cerr
		}
		out.Kind = sr.Kind
		out.Tuples += sr.Tuples
		out.ReprRows += sr.ReprRows
		out.Tombs += sr.Tombs
		if sr.Epoch > out.Epoch {
			out.Epoch = sr.Epoch
		}
	}
	return out, nil
}

// execShard sends one coordinated write to the shard's primary with
// the shard's known fencing epoch attached. A 409 carrying a HIGHER
// epoch means the coordinator's view was stale (a replica was promoted
// since the last topology refresh): adopt the new epoch and retry once
// against the current topology. A lower-epoch refusal is terminal —
// the node we wrote to is a fenced old primary.
func (c *Coordinator) execShard(shard int, body []byte, scatterWrite bool) (*shardExecResponse, *Error) {
	for attempt := 0; ; attempt++ {
		sc, cerr := c.call(shard, "/exec", body, true, c.fences[shard].Load())
		if cerr != nil {
			if scatterWrite && shard > 0 {
				cerr.Msg += fmt.Sprintf(" (WARNING: the statement already applied on %d shard(s); retrying is safe — DELETE and UPDATE are predicate-idempotent)", shard)
			}
			return nil, cerr
		}
		var sr shardExecResponse
		if uerr := json.Unmarshal(sc.body, &sr); uerr != nil {
			return nil, errf(502, "cluster: shard %q returned unparseable /exec response: %v",
				c.spec.Shards[shard].Name, uerr)
		}
		if sc.status == http.StatusConflict && sr.Fence > c.fences[shard].Load() && attempt == 0 {
			c.fences[shard].Store(sr.Fence)
			continue
		}
		if sc.status != http.StatusOK {
			msg := sr.Error
			if msg == "" {
				msg = fmt.Sprintf("status %d", sc.status)
			}
			e := errf(sc.status, "cluster: shard %q: %s", c.spec.Shards[shard].Name, msg)
			e.Shard = c.spec.Shards[shard].Name
			e.Catalog = c.catalog
			return nil, e
		}
		return &sr, nil
	}
}

// RefreshFences asks every node of every shard for its fencing epoch
// and records the per-shard maximum. Called on topology reload, so a
// coordinator pointed back at a resurrected old primary still writes
// with the promoted epoch — the stale primary self-fences instead of
// accepting a divergent write. Unreachable nodes are skipped (their
// epoch is learned via the 409 adopt-and-retry path if it matters).
func (c *Coordinator) RefreshFences() {
	probe := &http.Client{Transport: c.hc.Transport, Timeout: 2 * time.Second}
	var wg sync.WaitGroup
	for shard := range c.spec.Shards {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for _, node := range c.spec.Shards[shard].Nodes {
				resp, err := probe.Get(node + "/fence?db=" + url.QueryEscape(c.catalog))
				if err != nil {
					continue
				}
				b, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					continue
				}
				var fr struct {
					Fence    uint64 `json:"fence"`
					FencedBy uint64 `json:"fenced_by"`
				}
				if json.Unmarshal(b, &fr) != nil {
					continue
				}
				max := fr.Fence
				if fr.FencedBy > max {
					max = fr.FencedBy
				}
				for {
					cur := c.fences[shard].Load()
					if max <= cur || c.fences[shard].CompareAndSwap(cur, max) {
						break
					}
				}
			}
		}(shard)
	}
	wg.Wait()
}
