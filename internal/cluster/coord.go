package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"urel/internal/core"
	"urel/internal/obs"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/ws"
)

// Options tunes a Coordinator.
type Options struct {
	// HTTPClient overrides the transport (tests inject httptest
	// clients); nil uses a client with a 5-minute ceiling so shard-side
	// query deadlines, not the transport, bound sub-requests.
	HTTPClient *http.Client
	// Registry receives the urel_shard_* metric family; nil disables
	// coordinator metrics.
	Registry *obs.Registry
	// Cooldown is how long a node that failed at the transport level is
	// skipped before being retried. Default 1s.
	Cooldown time.Duration
}

// Coordinator scatter-gathers queries for one sharded catalog over the
// ordinary single-node HTTP/JSON protocol and merges the results with
// the per-mode semantics documented in the package comment. It is safe
// for concurrent use.
type Coordinator struct {
	catalog string
	spec    CatalogSpec
	sharded map[string]bool
	hc      *http.Client
	cool    time.Duration

	rr atomic.Uint64 // round-robin cursor: single-shard routing and replica reads

	mu   sync.Mutex
	down map[string]time.Time // node URL -> retry-after time

	worlds atomic.Pointer[ws.WorldTable] // fetched once; W is immutable

	reqs      []*obs.Counter // per shard: sub-requests issued
	failovers []*obs.Counter // per shard: node failures routed around
	unavail   []*obs.Counter // per shard: requests failed with every node down
	lat       []*obs.Histogram
}

// NewCoordinator builds a coordinator for catalog over spec.
func NewCoordinator(catalog string, spec CatalogSpec, opts Options) (*Coordinator, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("cluster: catalog %q: %w", catalog, err)
	}
	c := &Coordinator{
		catalog: catalog,
		spec:    spec,
		sharded: map[string]bool{},
		hc:      opts.HTTPClient,
		cool:    opts.Cooldown,
		down:    map[string]time.Time{},
	}
	for _, r := range spec.Sharded {
		c.sharded[r] = true
	}
	if c.hc == nil {
		// DefaultTransport keeps only 2 idle connections per host, which
		// churns TCP sockets under fan-out; pool enough for a busy shard.
		c.hc = &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if c.cool <= 0 {
		c.cool = time.Second
	}
	if r := opts.Registry; r != nil {
		for _, sh := range spec.Shards {
			lv := []string{catalog, sh.Name}
			c.reqs = append(c.reqs, r.CounterWith("urel_shard_requests_total",
				"Sub-requests issued to each shard.", []string{"catalog", "shard"}, lv...))
			c.failovers = append(c.failovers, r.CounterWith("urel_shard_failovers_total",
				"Node failures routed around to another node of the shard.", []string{"catalog", "shard"}, lv...))
			c.unavail = append(c.unavail, r.CounterWith("urel_shard_unavailable_total",
				"Sub-requests that failed with every node of the shard down (503s).", []string{"catalog", "shard"}, lv...))
			c.lat = append(c.lat, r.HistogramWith("urel_shard_seconds",
				"Sub-request latency per shard.", nil, []string{"catalog", "shard"}, lv...))
		}
		r.GaugeFuncWith("urel_cluster_shards", "Shards in the coordinated catalog.",
			[]string{"catalog"}, []string{catalog},
			func() float64 { return float64(len(spec.Shards)) })
	}
	return c, nil
}

// Catalog returns the coordinated catalog's name.
func (c *Coordinator) Catalog() string { return c.catalog }

// Spec returns the coordinator's topology.
func (c *Coordinator) Spec() CatalogSpec { return c.spec }

// Route resolves which shards a query touching rels must visit.
// scatter reports whether the result is a fan-out (the query reads a
// hash-sharded relation) or a single-shard round-robin pick (only
// replicated relations). Joining two distinct sharded relations is
// rejected: their rows are co-partitioned by unrelated tuple ids, so
// per-shard evaluation would miss cross-shard join pairs.
func (c *Coordinator) Route(rels []string) (targets []int, scatter bool, err *Error) {
	var shardedRels []string
	for _, r := range rels {
		if c.sharded[r] {
			shardedRels = append(shardedRels, r)
		}
	}
	if len(shardedRels) > 1 {
		return nil, false, errf(400,
			"cluster: query joins sharded relations %s: tuples of distinct sharded relations are partitioned independently, so scatter-gather cannot evaluate their join (shard one of them only, or replicate one)",
			strings.Join(shardedRels, ", "))
	}
	if len(shardedRels) == 0 {
		return []int{int(c.rr.Add(1)-1) % len(c.spec.Shards)}, false, nil
	}
	targets = make([]int, len(c.spec.Shards))
	for i := range targets {
		targets[i] = i
	}
	return targets, true, nil
}

// nodeOrder returns the shard's nodes in try order for reads: a
// round-robin rotation of the healthy nodes first (spreading load over
// primary and replicas), then the cooling-down ones as a last resort —
// a transient blip should degrade to a retry, not a 503.
func (c *Coordinator) nodeOrder(shard int) []string {
	nodes := c.spec.Shards[shard].Nodes
	rot := int(c.rr.Add(1)-1) % len(nodes)
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var up, cooling []string
	for i := range nodes {
		n := nodes[(rot+i)%len(nodes)]
		if until, bad := c.down[n]; bad && now.Before(until) {
			cooling = append(cooling, n)
		} else {
			up = append(up, n)
		}
	}
	return append(up, cooling...)
}

func (c *Coordinator) markDown(node string) {
	c.mu.Lock()
	c.down[node] = time.Now().Add(c.cool)
	c.mu.Unlock()
}

func (c *Coordinator) markUp(node string) {
	c.mu.Lock()
	delete(c.down, node)
	c.mu.Unlock()
}

// shardCall is one sub-request's outcome: the raw response body, HTTP
// status, and the node that served it.
type shardCall struct {
	status  int
	body    []byte
	node    string
	elapsed time.Duration
}

// call POSTs body to path on one node of the shard, failing over
// across the shard's nodes on transport errors. Only transport errors
// fail over — an HTTP error status is an answer from a healthy node
// and is returned as-is. When every node is unreachable the error is
// the satellite-mandated explicit 503 naming the shard.
func (c *Coordinator) call(shard int, path string, body []byte, primaryOnly bool) (*shardCall, *Error) {
	if len(c.reqs) > 0 {
		c.reqs[shard].Inc()
	}
	nodes := c.nodeOrder(shard)
	if primaryOnly {
		nodes = c.spec.Shards[shard].Nodes[:1]
	}
	var lastErr error
	for i, node := range nodes {
		if i > 0 && len(c.failovers) > 0 {
			c.failovers[shard].Inc()
		}
		start := time.Now()
		resp, err := c.hc.Post(node+path, "application/json", bytes.NewReader(body))
		if err != nil {
			c.markDown(node)
			lastErr = err
			continue
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			c.markDown(node)
			lastErr = err
			continue
		}
		c.markUp(node)
		elapsed := time.Since(start)
		if len(c.lat) > 0 {
			c.lat[shard].ObserveDuration(elapsed)
		}
		return &shardCall{status: resp.StatusCode, body: b, node: node, elapsed: elapsed}, nil
	}
	if len(c.unavail) > 0 {
		c.unavail[shard].Inc()
	}
	return nil, errf(http.StatusServiceUnavailable,
		"cluster: shard %q of catalog %q unavailable: no reachable node (%d tried, last error: %v)",
		c.spec.Shards[shard].Name, c.catalog, len(nodes), lastErr)
}

// Relay forwards a query to a single shard and returns the raw
// response bytes for verbatim pass-through. When routing resolves to
// one shard, its answer IS the global answer for every mode (all
// relevant representation rows live there), so the coordinator skips
// the decode/merge/re-encode cycle entirely — this is what keeps
// 1-shard coordinator overhead to a transport hop.
func (c *Coordinator) Relay(shard int, req QueryRequest) (status int, body []byte, err *Error) {
	req.DB = c.catalog
	b, merr := json.Marshal(req)
	if merr != nil {
		return 0, nil, errf(500, "cluster: %v", merr)
	}
	sc, cerr := c.call(shard, "/query", b, false)
	if cerr != nil {
		return 0, nil, cerr
	}
	return sc.status, sc.body, nil
}

// scatter issues the request to every target shard concurrently and
// decodes each response. A per-shard child span (when span is non-nil)
// records the sub-request latency and row count — the per-shard
// breakdown EXPLAIN ANALYZE and "trace":true surface.
func (c *Coordinator) scatter(targets []int, req QueryRequest, span *obs.Span) ([]*shardResponse, *Error) {
	req.DB = c.catalog
	req.Limit = 0     // limits cannot push below a union; applied after merging
	req.Trace = false // shard-internal traces are not gathered; spans carry latency
	body, merr := json.Marshal(req)
	if merr != nil {
		return nil, errf(500, "cluster: %v", merr)
	}
	type slot struct {
		resp *shardResponse
		call *shardCall
		err  *Error
	}
	slots := make([]slot, len(targets))
	var wg sync.WaitGroup
	for i, shard := range targets {
		wg.Add(1)
		go func(i, shard int) {
			defer wg.Done()
			sc, err := c.call(shard, "/query", body, false)
			if err != nil {
				slots[i] = slot{err: err}
				return
			}
			var sr shardResponse
			if uerr := json.Unmarshal(sc.body, &sr); uerr != nil {
				slots[i] = slot{err: errf(502, "cluster: shard %q returned unparseable response: %v",
					c.spec.Shards[shard].Name, uerr)}
				return
			}
			if sc.status != http.StatusOK {
				msg := sr.Error
				if msg == "" {
					msg = fmt.Sprintf("status %d", sc.status)
				}
				slots[i] = slot{err: errf(sc.status, "cluster: shard %q: %s", c.spec.Shards[shard].Name, msg)}
				return
			}
			slots[i] = slot{resp: &sr, call: sc}
		}(i, shard)
	}
	wg.Wait()
	out := make([]*shardResponse, len(targets))
	for i, sl := range slots {
		if sl.err != nil {
			return nil, sl.err
		}
		if span != nil {
			child := span.Child("shard "+c.spec.Shards[targets[i]].Name, -1)
			child.AddNanos(sl.call.elapsed.Nanoseconds())
			child.AddRows(int64(sl.resp.RowCount))
		}
		out[i] = sl.resp
	}
	return out, nil
}

// Merged is a coordinator-merged row-mode result.
type Merged struct {
	Columns   []string
	Rows      []json.RawMessage
	Truncated bool
	Estimator string
	Degraded  bool
}

// ScatterRows runs a possible- or plain-mode query on every target and
// merges: possible answers union with cross-shard dedup (each shard
// already returns a set); plain representation rows concatenate.
func (c *Coordinator) ScatterRows(targets []int, req QueryRequest, dedup bool, span *obs.Span) (*Merged, *Error) {
	resps, err := c.scatter(targets, req, span)
	if err != nil {
		return nil, err
	}
	m := &Merged{Columns: resps[0].Columns}
	var seen map[string]bool
	if dedup {
		seen = make(map[string]bool)
	}
	for _, sr := range resps {
		m.Truncated = m.Truncated || sr.Truncated
		for _, row := range sr.Rows {
			if dedup {
				k := string(row)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			m.Rows = append(m.Rows, row)
		}
	}
	return m, nil
}

// ScatterBounds runs a CONF BOUNDS query on every target and merges
// per answer tuple: lower = max of shard lowers, upper = min(1, sum of
// shard uppers). Exactness argument: a tuple's global lower bound is
// max P(d) over ALL its representation rows = max over shards of the
// per-shard max; the upper bound is min(1, Σ P(d)) over all rows, and
// per-shard clamping cannot change it — a clamped shard's partial sum
// already exceeds 1, forcing the global min(1, ·) to 1 as well. Tuples
// absent from a shard contribute (0, 0) there, matching "no rows".
func (c *Coordinator) ScatterBounds(targets []int, req QueryRequest, span *obs.Span) (*Merged, *Error) {
	req.Accuracy = "bounds"
	resps, err := c.scatter(targets, req, span)
	if err != nil {
		return nil, err
	}
	type bound struct {
		vals    []json.RawMessage
		lo, hi  float64
		clamped bool
	}
	var order []string
	merged := map[string]*bound{}
	degraded := false
	for _, sr := range resps {
		degraded = degraded || sr.Degraded
		if len(sr.Columns) < 2 {
			return nil, errf(502, "cluster: shard bounds response has %d columns", len(sr.Columns))
		}
		nvals := len(sr.Columns) - 2 // trailing _p_lo, _p_hi
		for _, raw := range sr.Rows {
			var cells []json.RawMessage
			if uerr := json.Unmarshal(raw, &cells); uerr != nil || len(cells) != nvals+2 {
				return nil, errf(502, "cluster: bad shard bounds row %s", raw)
			}
			var lo, hi float64
			if uerr := json.Unmarshal(cells[nvals], &lo); uerr != nil {
				return nil, errf(502, "cluster: bad bounds row lower %s", cells[nvals])
			}
			if uerr := json.Unmarshal(cells[nvals+1], &hi); uerr != nil {
				return nil, errf(502, "cluster: bad bounds row upper %s", cells[nvals+1])
			}
			key := string(bytes.Join(rawBytes(cells[:nvals]), []byte{0}))
			b := merged[key]
			if b == nil {
				b = &bound{vals: cells[:nvals]}
				merged[key] = b
				order = append(order, key)
			}
			if lo > b.lo {
				b.lo = lo
			}
			b.hi += hi
			if hi >= 1 {
				b.clamped = true
			}
		}
	}
	m := &Merged{Columns: resps[0].Columns, Estimator: "bounds", Degraded: degraded}
	sort.Strings(order) // deterministic cross-shard output order
	for _, key := range order {
		b := merged[key]
		if b.hi > 1 || b.clamped {
			b.hi = 1
		}
		if b.lo > b.hi {
			b.lo = b.hi // max-certain from one shard cannot exceed the clamped possible
		}
		cells := append(append([]json.RawMessage{}, b.vals...), jsonNum(b.lo), jsonNum(b.hi))
		row, merr := json.Marshal(cells)
		if merr != nil {
			return nil, errf(500, "cluster: %v", merr)
		}
		m.Rows = append(m.Rows, json.RawMessage(row))
	}
	return m, nil
}

func rawBytes(cells []json.RawMessage) [][]byte {
	out := make([][]byte, len(cells))
	for i, c := range cells {
		out[i] = []byte(c)
	}
	return out
}

func jsonNum(f float64) json.RawMessage {
	b, _ := json.Marshal(f)
	return json.RawMessage(b)
}

// GatherRepr runs the query on every target with "wire": "repr" and
// unions the returned representations into one core.UResult over the
// (replicated, immutable) world table — the input to running the
// certain-answer pipeline or exact confidence computation centrally.
func (c *Coordinator) GatherRepr(targets []int, req QueryRequest, span *obs.Span) (*core.UResult, *Error) {
	w, werr := c.worldTable()
	if werr != nil {
		return nil, werr
	}
	req.Wire = "repr"
	resps, err := c.scatter(targets, req, span)
	if err != nil {
		return nil, err
	}
	res := &core.UResult{W: w}
	for i, sr := range resps {
		if sr.Repr == nil {
			return nil, errf(502, "cluster: shard %q returned no representation (is it running an older build?)",
				c.spec.Shards[targets[i]].Name)
		}
		if derr := decodeReprInto(res, sr.Repr); derr != nil {
			return nil, errf(502, "%v", derr)
		}
	}
	return res, nil
}

// ScatterExplain fans an EXPLAIN [ANALYZE] statement out and composes
// the shard plans under a scatter-gather header, with per-shard wall
// time — the distribution-aware EXPLAIN ANALYZE.
func (c *Coordinator) ScatterExplain(targets []int, scatter bool, req QueryRequest, span *obs.Span) (plan string, rows int, err *Error) {
	resps, serr := c.scatter(targets, req, span)
	if serr != nil {
		return "", 0, serr
	}
	var b strings.Builder
	routing := "single-shard (round-robin: no sharded relation read)"
	if scatter {
		routing = fmt.Sprintf("fan-out %d/%d shards", len(targets), len(c.spec.Shards))
	}
	fmt.Fprintf(&b, "Scatter-Gather on %s: %s\n", c.catalog, routing)
	for i, sr := range resps {
		rows += sr.RowCount
		fmt.Fprintf(&b, "shard %s: %.3fms\n", c.spec.Shards[targets[i]].Name, sr.ElapsedMS)
		text := strings.TrimRight(sr.Plan, "\n")
		for _, line := range strings.Split(text, "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), rows, nil
}

// worldTable fetches (once) the catalog's world table from any live
// node. W is replicated to every shard and immutable at serving time —
// DML inserts certain rows or reuses existing variables; only loading
// a new database introduces variables — so a single fetch is safe to
// cache for the coordinator's lifetime.
func (c *Coordinator) worldTable() (*ws.WorldTable, *Error) {
	if w := c.worlds.Load(); w != nil {
		return w, nil
	}
	var lastErr *Error
	for shard := range c.spec.Shards {
		for _, node := range c.nodeOrder(shard) {
			resp, err := c.hc.Get(node + "/worlds?db=" + url.QueryEscape(c.catalog))
			if err != nil {
				c.markDown(node)
				lastErr = errf(503, "cluster: fetch world table: %v", err)
				continue
			}
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				lastErr = errf(502, "cluster: fetch world table from %s: status %d (%v)", node, resp.StatusCode, rerr)
				continue
			}
			w, derr := store.DecodeWorldTable(b)
			if derr != nil {
				return nil, errf(502, "cluster: decode world table: %v", derr)
			}
			c.worlds.Store(w)
			return w, nil
		}
	}
	if lastErr == nil {
		lastErr = errf(503, "cluster: no nodes configured")
	}
	return nil, lastErr
}

// ExecResult is a coordinator-merged DML outcome.
type ExecResult struct {
	Kind     string
	Tuples   int
	ReprRows int
	Tombs    int
	Epoch    uint64
}

// Exec routes one DML statement:
//
//   - INSERT ... VALUES into a sharded relation goes to the write
//     shard's primary (shard 0). Fresh tuple ids are allocated above
//     the GLOBAL MaxTID that ShardedSave stamped into every shard's
//     manifest, so they never collide with rows on other shards; reads
//     scatter, so placement does not affect correctness, only balance.
//   - INSERT ... SELECT may read replicated relations (each shard holds
//     them whole) but not sharded ones (the write shard only sees its
//     slice).
//   - DELETE / UPDATE on a sharded relation scatter to every primary;
//     counts sum, the epoch reported is the maximum.
//   - DML on replicated relations is rejected: an uncoordinated
//     per-shard write would let the replicas diverge. Reload the
//     catalog (ShardedSave) to change dimension data.
func (c *Coordinator) Exec(req ExecRequest) (*ExecResult, *Error) {
	st, perr := sqlparse.ParseStatement(req.SQL)
	if perr != nil {
		return nil, errf(400, "%v", perr)
	}
	var table string
	scatterWrite := false
	switch s := st.(type) {
	case *sqlparse.InsertStmt:
		table = s.Table
		if s.Select != nil {
			for _, r := range core.Relations(s.Select.Query) {
				if c.sharded[r] {
					return nil, errf(400,
						"cluster: INSERT ... SELECT reads sharded relation %q: the write shard only holds its own slice (SELECT from replicated relations only)", r)
				}
			}
		}
	case *sqlparse.DeleteStmt:
		table = s.Table
		scatterWrite = true
	case *sqlparse.UpdateStmt:
		table = s.Table
		scatterWrite = true
	default:
		return nil, errf(400, "cluster: unsupported statement for coordinated execution")
	}
	if !c.sharded[table] {
		return nil, errf(http.StatusForbidden,
			"cluster: relation %q is replicated to every shard and read-only under sharding (rebuild the catalog with store.ShardedSave to change it)", table)
	}

	req.DB = c.catalog
	body, merr := json.Marshal(req)
	if merr != nil {
		return nil, errf(500, "cluster: %v", merr)
	}
	targets := []int{0}
	if scatterWrite {
		targets = make([]int, len(c.spec.Shards))
		for i := range targets {
			targets[i] = i
		}
	}
	out := &ExecResult{}
	for _, shard := range targets {
		sc, cerr := c.call(shard, "/exec", body, true)
		if cerr != nil {
			if scatterWrite && shard > 0 {
				cerr.Msg += fmt.Sprintf(" (WARNING: the statement already applied on %d shard(s); retrying is safe — DELETE and UPDATE are predicate-idempotent)", shard)
			}
			return nil, cerr
		}
		var sr shardExecResponse
		if uerr := json.Unmarshal(sc.body, &sr); uerr != nil {
			return nil, errf(502, "cluster: shard %q returned unparseable /exec response: %v",
				c.spec.Shards[shard].Name, uerr)
		}
		if sc.status != http.StatusOK {
			msg := sr.Error
			if msg == "" {
				msg = fmt.Sprintf("status %d", sc.status)
			}
			return nil, errf(sc.status, "cluster: shard %q: %s", c.spec.Shards[shard].Name, msg)
		}
		out.Kind = sr.Kind
		out.Tuples += sr.Tuples
		out.ReprRows += sr.ReprRows
		out.Tombs += sr.Tombs
		if sr.Epoch > out.Epoch {
			out.Epoch = sr.Epoch
		}
	}
	return out, nil
}
