package ws

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVarAndDomains(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	y := w.NewBoolVar("y")
	if w.DomainSize(x) != 2 || w.DomainSize(y) != 2 {
		t.Fatal("domain sizes")
	}
	if !w.Has(x, 1) || w.Has(x, 3) {
		t.Fatal("Has")
	}
	if w.Name(x) != "x" {
		t.Fatal("name")
	}
	if _, err := w.NewVar("bad", nil); err == nil {
		t.Fatal("empty domain must fail")
	}
	if _, err := w.NewVar("dup", []Val{1, 1}); err == nil {
		t.Fatal("duplicate domain value must fail")
	}
	if got := len(w.NontrivialVars()); got != 2 {
		t.Fatalf("want 2 nontrivial vars, got %d", got)
	}
	if got := len(w.Vars()); got != 3 {
		t.Fatalf("want 3 vars incl trivial, got %d", got)
	}
}

func TestWorldCounts(t *testing.T) {
	w := NewWorldTable()
	w.NewBoolVar("x")
	w.NewBoolVar("y")
	w.NewBoolVar("z")
	if w.NumWorlds().Int64() != 8 {
		t.Fatalf("want 8 worlds, got %v", w.NumWorlds())
	}
	if math.Abs(w.Log10Worlds()-math.Log10(8)) > 1e-12 {
		t.Fatal("log10 worlds")
	}
	if w.MaxDomainSize() != 2 {
		t.Fatal("max domain size")
	}
	n, err := w.CountWorlds(100)
	if err != nil || n != 8 {
		t.Fatal("CountWorlds")
	}
	if _, err := w.CountWorlds(7); err == nil {
		t.Fatal("CountWorlds must respect the cap")
	}
}

func TestAllWorlds(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	y := w.MustNewVar("y", 1, 2, 3)
	count := 0
	seen := map[[2]Val]bool{}
	w.AllWorlds(func(f Valuation) bool {
		count++
		if !w.Total(f) {
			t.Fatal("world must be total")
		}
		seen[[2]Val{f[x], f[y]}] = true
		return true
	})
	if count != 6 || len(seen) != 6 {
		t.Fatalf("want 6 distinct worlds, got %d/%d", count, len(seen))
	}
	// Early stop.
	count = 0
	w.AllWorlds(func(Valuation) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop at 3, got %d", count)
	}
}

func TestDescriptorBasics(t *testing.T) {
	d := MustDescriptor(A(3, 1), A(1, 2))
	if d[0].Var != 1 || d[1].Var != 3 {
		t.Fatal("descriptor must sort by var")
	}
	if v, ok := d.Lookup(3); !ok || v != 1 {
		t.Fatal("lookup")
	}
	if _, ok := d.Lookup(2); ok {
		t.Fatal("lookup missing")
	}
	if _, err := NewDescriptor(A(1, 1), A(1, 2)); err == nil {
		t.Fatal("contradiction must fail")
	}
	// Duplicates collapse.
	d2 := MustDescriptor(A(1, 1), A(1, 1))
	if len(d2) != 1 {
		t.Fatal("duplicates must collapse")
	}
}

func TestDescriptorConsistency(t *testing.T) {
	d := MustDescriptor(A(1, 1), A(2, 2))
	e := MustDescriptor(A(2, 2), A(3, 1))
	f := MustDescriptor(A(2, 1))
	if !d.ConsistentWith(e) {
		t.Fatal("d and e agree on shared var 2")
	}
	if d.ConsistentWith(f) {
		t.Fatal("d and f disagree on var 2")
	}
	u, ok := d.Union(e)
	if !ok || len(u) != 3 {
		t.Fatalf("union: %v %v", u, ok)
	}
	if _, ok := d.Union(f); ok {
		t.Fatal("inconsistent union must fail")
	}
	// Empty descriptor is consistent with everything.
	var empty Descriptor
	if !empty.ConsistentWith(d) || !d.ConsistentWith(empty) {
		t.Fatal("empty descriptor consistency")
	}
}

func TestDescriptorExtendedBy(t *testing.T) {
	d := MustDescriptor(A(1, 1))
	if !d.ExtendedBy(Valuation{1: 1, 2: 5}) {
		t.Fatal("should extend")
	}
	if d.ExtendedBy(Valuation{1: 2}) {
		t.Fatal("wrong value")
	}
	if d.ExtendedBy(Valuation{2: 1}) {
		t.Fatal("unassigned var")
	}
	var empty Descriptor
	if !empty.ExtendedBy(Valuation{}) {
		t.Fatal("empty descriptor extended by everything")
	}
}

func TestDescriptorPad(t *testing.T) {
	d := MustDescriptor(A(1, 1))
	p := d.Pad(3)
	if len(p) != 3 || p[1] != A(1, 1) || p[2] != A(1, 1) {
		t.Fatalf("pad repeats assignments: %v", p)
	}
	var empty Descriptor
	pe := empty.Pad(2)
	if len(pe) != 2 || pe[0].Var != TrivialVar {
		t.Fatalf("empty pads with trivial: %v", pe)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pad below size must panic")
		}
	}()
	p.Pad(1)
}

func TestConsistencyUnionAgree(t *testing.T) {
	// Property: Union succeeds iff ConsistentWith, and the union is
	// extended exactly by valuations extending both.
	f := func(a1, v1, a2, v2, a3, v3 uint8) bool {
		d := MustDescriptor(A(Var(a1%3+1), Val(v1%2)), A(Var(a2%3+1), Val(v1%2)))
		e := MustDescriptor(A(Var(a3%3+1), Val(v3%2)))
		u, ok := d.Union(e)
		if ok != d.ConsistentWith(e) {
			return false
		}
		if !ok {
			return true
		}
		val := Valuation{1: Val(v1 % 2), 2: Val(v2 % 2), 3: Val(v3 % 2)}
		return u.ExtendedBy(val) == (d.ExtendedBy(val) && e.ExtendedBy(val))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProbabilities(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	if w.Prob(x, 1) != 0.5 {
		t.Fatal("uniform default")
	}
	if err := w.SetProbs(x, []float64{0.3, 0.7}); err != nil {
		t.Fatal(err)
	}
	if w.Prob(x, 2) != 0.7 {
		t.Fatal("explicit prob")
	}
	if err := w.SetProbs(x, []float64{0.5, 0.6}); err == nil {
		t.Fatal("probs must sum to 1")
	}
	if err := w.SetProbs(x, []float64{1}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	d := MustDescriptor(A(x, 1))
	if math.Abs(d.Prob(w)-0.3) > 1e-12 {
		t.Fatal("descriptor prob")
	}
}

func TestSampleWorldDistribution(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	if err := w.SetProbs(x, []float64{0.2, 0.8}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	n1 := 0
	const N = 20000
	for i := 0; i < N; i++ {
		if w.SampleWorld(rng)[x] == 1 {
			n1++
		}
	}
	frac := float64(n1) / N
	if math.Abs(frac-0.2) > 0.02 {
		t.Fatalf("sampled frequency %.3f far from 0.2", frac)
	}
}

func TestWorldProb(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	y := w.MustNewVar("y", 1, 2)
	total := 0.0
	w.AllWorlds(func(f Valuation) bool {
		total += w.WorldProb(f)
		return true
	})
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("world probabilities must sum to 1, got %g", total)
	}
	_ = x
	_ = y
}

func TestWorldTableRelation(t *testing.T) {
	w := NewWorldTable()
	w.MustNewVar("x", 1, 2)
	rel := w.Relation()
	// trivial(1) + x(2) rows
	if rel.Len() != 3 {
		t.Fatalf("W relation rows: %d", rel.Len())
	}
	if rel.Sch.Names()[0] != "w.var" {
		t.Fatal("W schema")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	c := w.Clone()
	c.MustNewVar("y", 1, 2, 3)
	if len(w.NontrivialVars()) != 1 {
		t.Fatal("clone must not affect original")
	}
	if c.DomainSize(x) != 2 {
		t.Fatal("clone keeps domains")
	}
	if w.SizeBytes() <= 0 {
		t.Fatal("SizeBytes")
	}
}

func TestDescriptorStrings(t *testing.T) {
	w := NewWorldTable()
	x := w.MustNewVar("x", 1, 2)
	d := MustDescriptor(A(x, 1))
	if d.String() == "" || d.StringNamed(w) != "{x->1}" {
		t.Fatalf("render: %s / %s", d, d.StringNamed(w))
	}
	var empty Descriptor
	if empty.String() != "{}" {
		t.Fatal("empty render")
	}
	if TrivialVar.String() != "⊤" || Var(3).String() != "c3" {
		t.Fatal("var render")
	}
	if !d.ValidIn(w) {
		t.Fatal("ValidIn")
	}
	bad := MustDescriptor(A(x, 9))
	if bad.ValidIn(w) {
		t.Fatal("ValidIn must reject values outside W")
	}
}
