// Package ws implements world-sets in the style of the U-relations
// paper (Section 2): a finite set of variables over finite domains,
// represented relationally by a world table W(Var, Rng); a possible
// world is a total valuation of the variables. ws-descriptors — partial
// valuations whose graph is a subset of W — annotate U-relation tuples
// and identify the subset of worlds a tuple belongs to.
//
// The package also carries the paper's Section 7 extension: an optional
// probability column on W turning the world-set into a product
// distribution over independent variables.
//
// Paper-section map: world.go — the world table and valuations
// (Section 2, Definition 2.1); descriptor.go — ws-descriptors, their
// consistency check and the ψ-conditions joined on during query
// evaluation (Sections 2-3).
package ws
