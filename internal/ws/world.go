package ws

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"urel/internal/engine"
)

// Var identifies a world-set variable. TrivialVar (0) is the reserved
// variable with the singleton domain {0}; the empty ws-descriptor is a
// shortcut for {TrivialVar -> 0} (see Section 2 of the paper).
type Var int64

// Val is a domain value of a variable.
type Val int64

// TrivialVar is the reserved singleton-domain variable.
const TrivialVar Var = 0

// WorldTable is the relational world table W(Var, Rng[, P]). It owns
// the variable id space.
type WorldTable struct {
	doms  map[Var][]Val
	probs map[Var][]float64 // parallel to doms; nil = uniform
	names map[Var]string
	next  Var
	// order holds the nontrivial variables sorted by id, maintained
	// eagerly at construction time (NewVar allocates ascending ids;
	// ImportWorldTable sorts once). Keeping it materialized makes the
	// hot iteration paths (world sampling, enumeration) allocation-free
	// and deterministic without mutating shared state on reads.
	order []Var
}

// NewWorldTable creates a world table containing only the trivial
// variable.
func NewWorldTable() *WorldTable {
	w := &WorldTable{
		doms:  map[Var][]Val{TrivialVar: {0}},
		probs: map[Var][]float64{},
		names: map[Var]string{TrivialVar: "⊤"},
		next:  1,
	}
	return w
}

// NewVar allocates a fresh variable with the given domain (order is
// preserved and duplicates are rejected). name is for display only.
func (w *WorldTable) NewVar(name string, dom []Val) (Var, error) {
	if len(dom) == 0 {
		return 0, fmt.Errorf("ws: variable %q needs a non-empty domain", name)
	}
	seen := map[Val]bool{}
	for _, v := range dom {
		if seen[v] {
			return 0, fmt.Errorf("ws: variable %q has duplicate domain value %d", name, v)
		}
		seen[v] = true
	}
	id := w.next
	w.next++
	w.doms[id] = append([]Val(nil), dom...)
	w.order = append(w.order, id)
	if name == "" {
		name = fmt.Sprintf("c%d", id)
	}
	w.names[id] = name
	return id, nil
}

// MustNewVar is NewVar that panics; for tests and examples.
func (w *WorldTable) MustNewVar(name string, dom ...Val) Var {
	id, err := w.NewVar(name, dom)
	if err != nil {
		panic(err)
	}
	return id
}

// NewBoolVar allocates a fresh two-valued variable with domain {1, 2},
// matching the paper's running example.
func (w *WorldTable) NewBoolVar(name string) Var {
	return w.MustNewVar(name, 1, 2)
}

// Domain returns the domain of x (nil if unknown).
func (w *WorldTable) Domain(x Var) []Val { return w.doms[x] }

// DomainSize returns |dom(x)|.
func (w *WorldTable) DomainSize(x Var) int { return len(w.doms[x]) }

// Has reports whether (x, v) ∈ W.
func (w *WorldTable) Has(x Var, v Val) bool {
	for _, d := range w.doms[x] {
		if d == v {
			return true
		}
	}
	return false
}

// Name returns the display name of x.
func (w *WorldTable) Name(x Var) string {
	if n, ok := w.names[x]; ok {
		return n
	}
	return fmt.Sprintf("c%d", x)
}

// Vars returns all variables in ascending id order, including the
// trivial variable.
func (w *WorldTable) Vars() []Var {
	out := make([]Var, 0, len(w.doms))
	for x := range w.doms {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NontrivialVars returns all variables except the trivial one, in
// ascending id order. The result is a copy; callers may keep it.
func (w *WorldTable) NontrivialVars() []Var {
	return append([]Var(nil), w.order...)
}

// SetProbs assigns a probability distribution to x; the values must sum
// to 1 (within 1e-9) and be parallel to the domain.
func (w *WorldTable) SetProbs(x Var, p []float64) error {
	dom := w.doms[x]
	if len(p) != len(dom) {
		return fmt.Errorf("ws: %d probabilities for %d domain values of %s",
			len(p), len(dom), w.Name(x))
	}
	sum := 0.0
	for _, q := range p {
		if q < 0 {
			return fmt.Errorf("ws: negative probability on %s", w.Name(x))
		}
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ws: probabilities of %s sum to %g, want 1", w.Name(x), sum)
	}
	w.probs[x] = append([]float64(nil), p...)
	return nil
}

// Prob returns P(x = v); uniform over the domain when no explicit
// distribution was set.
func (w *WorldTable) Prob(x Var, v Val) float64 {
	dom := w.doms[x]
	if len(dom) == 0 {
		return 0
	}
	if p, ok := w.probs[x]; ok {
		for i, d := range dom {
			if d == v {
				return p[i]
			}
		}
		return 0
	}
	if !w.Has(x, v) {
		return 0
	}
	return 1 / float64(len(dom))
}

// NumWorlds returns the exact number of worlds ∏ |dom(x)| as a big
// integer (the paper's Figure 9 reports numbers like 10^6702).
func (w *WorldTable) NumWorlds() *big.Int {
	n := big.NewInt(1)
	for x, dom := range w.doms {
		if x == TrivialVar {
			continue
		}
		n.Mul(n, big.NewInt(int64(len(dom))))
	}
	return n
}

// Log10Worlds returns log10 of the number of worlds. Summation runs in
// variable order so the result is deterministic.
func (w *WorldTable) Log10Worlds() float64 {
	s := 0.0
	for _, x := range w.Vars() {
		if x == TrivialVar {
			continue
		}
		s += math.Log10(float64(len(w.doms[x])))
	}
	return s
}

// MaxDomainSize returns the largest domain size among non-trivial
// variables (the paper's "max. number of local worlds", lworlds).
func (w *WorldTable) MaxDomainSize() int {
	m := 0
	for x, dom := range w.doms {
		if x == TrivialVar {
			continue
		}
		if len(dom) > m {
			m = len(dom)
		}
	}
	return m
}

// Valuation is a (partial or total) assignment of variables to values.
type Valuation map[Var]Val

// Clone copies the valuation.
func (f Valuation) Clone() Valuation {
	out := make(Valuation, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// Total reports whether f assigns every non-trivial variable of w.
func (w *WorldTable) Total(f Valuation) bool {
	for x := range w.doms {
		if x == TrivialVar {
			continue
		}
		if _, ok := f[x]; !ok {
			return false
		}
	}
	return true
}

// AllWorlds enumerates every total valuation (including the trivial
// variable's forced assignment) and calls yield; enumeration stops when
// yield returns false. Intended for ground-truth testing on small
// world-sets.
func (w *WorldTable) AllWorlds(yield func(Valuation) bool) {
	vars := w.NontrivialVars()
	f := Valuation{TrivialVar: 0}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return yield(f)
		}
		for _, v := range w.doms[vars[i]] {
			f[vars[i]] = v
			if !rec(i + 1) {
				return false
			}
		}
		delete(f, vars[i])
		return true
	}
	rec(0)
}

// CountWorlds returns the number of worlds as an int64, or an error if
// it exceeds max (guards accidental exponential enumeration in tests).
func (w *WorldTable) CountWorlds(max int64) (int64, error) {
	n := int64(1)
	for x, dom := range w.doms {
		if x == TrivialVar {
			continue
		}
		n *= int64(len(dom))
		if n > max || n < 0 {
			return 0, fmt.Errorf("ws: more than %d worlds", max)
		}
	}
	return n, nil
}

// SampleWorld draws a total valuation from the product distribution.
// Variables are consumed in sorted order, so a fixed rng seed yields
// the same world sequence on every call (the seeded Monte-Carlo
// estimators rely on this for deterministic CI assertions).
func (w *WorldTable) SampleWorld(rng *rand.Rand) Valuation {
	f := Valuation{TrivialVar: 0}
	for _, x := range w.order {
		dom := w.doms[x]
		if p, ok := w.probs[x]; ok {
			u := rng.Float64()
			acc := 0.0
			chosen := dom[len(dom)-1]
			for i, q := range p {
				acc += q
				if u < acc {
					chosen = dom[i]
					break
				}
			}
			f[x] = chosen
		} else {
			f[x] = dom[rng.Intn(len(dom))]
		}
	}
	return f
}

// WorldProb returns the probability of a total valuation under the
// product distribution.
func (w *WorldTable) WorldProb(f Valuation) float64 {
	p := 1.0
	for x, v := range f {
		if x == TrivialVar {
			continue
		}
		p *= w.Prob(x, v)
	}
	return p
}

// Relation encodes the world table as an engine relation W(var, rng),
// ordered by (var, rng). The trivial variable is included, matching the
// paper's convention that every ws-descriptor is a subset of W.
func (w *WorldTable) Relation() *engine.Relation {
	sch := engine.NewSchema(
		engine.Column{Name: "w.var", Kind: engine.KindInt},
		engine.Column{Name: "w.rng", Kind: engine.KindInt},
	)
	r := engine.NewRelation(sch)
	for _, x := range w.Vars() {
		for _, v := range w.doms[x] {
			r.Append(engine.Tuple{engine.Int(int64(x)), engine.Int(int64(v))})
		}
	}
	return r
}

// SizeBytes estimates the footprint of the world table (for the
// Figure 9 dbsize accounting).
func (w *WorldTable) SizeBytes() int64 {
	var n int64
	for _, dom := range w.doms {
		n += int64(len(dom)) * 18 // (var, rng) pair of tagged ints
	}
	return n
}

// VarDef is the serializable form of one world-table variable, used by
// the persistent store (internal/store) to snapshot world tables.
type VarDef struct {
	X     Var
	Name  string
	Dom   []Val
	Probs []float64 // nil = uniform over Dom
}

// Export returns the non-trivial variables as VarDefs in ascending id
// order, sharing no mutable state with the table.
func (w *WorldTable) Export() []VarDef {
	var out []VarDef
	for _, x := range w.Vars() {
		if x == TrivialVar {
			continue
		}
		d := VarDef{X: x, Name: w.names[x], Dom: append([]Val(nil), w.doms[x]...)}
		if p, ok := w.probs[x]; ok {
			d.Probs = append([]float64(nil), p...)
		}
		out = append(out, d)
	}
	return out
}

// NextID returns the next variable id the table would allocate;
// persisted with the VarDefs so a reopened table keeps allocating
// fresh ids.
func (w *WorldTable) NextID() Var { return w.next }

// ImportWorldTable rebuilds a world table from exported variable
// definitions. Domains and probabilities are validated exactly as
// NewVar/SetProbs would.
func ImportWorldTable(next Var, defs []VarDef) (*WorldTable, error) {
	w := NewWorldTable()
	for _, d := range defs {
		if d.X <= TrivialVar {
			return nil, fmt.Errorf("ws: import: invalid variable id %d", d.X)
		}
		if _, dup := w.doms[d.X]; dup {
			return nil, fmt.Errorf("ws: import: duplicate variable id %d", d.X)
		}
		if len(d.Dom) == 0 {
			return nil, fmt.Errorf("ws: import: variable %q has empty domain", d.Name)
		}
		seen := map[Val]bool{}
		for _, v := range d.Dom {
			if seen[v] {
				return nil, fmt.Errorf("ws: import: variable %q has duplicate domain value %d", d.Name, v)
			}
			seen[v] = true
		}
		w.doms[d.X] = append([]Val(nil), d.Dom...)
		w.order = append(w.order, d.X)
		name := d.Name
		if name == "" {
			name = fmt.Sprintf("c%d", d.X)
		}
		w.names[d.X] = name
		if d.X >= w.next {
			w.next = d.X + 1
		}
		if d.Probs != nil {
			if err := w.SetProbs(d.X, d.Probs); err != nil {
				return nil, fmt.Errorf("ws: import: %w", err)
			}
		}
	}
	if next > w.next {
		w.next = next
	}
	// Exported defs may arrive in any id order; restore the invariant.
	sort.Slice(w.order, func(i, j int) bool { return w.order[i] < w.order[j] })
	return w, nil
}

// Clone deep-copies the world table.
func (w *WorldTable) Clone() *WorldTable {
	out := &WorldTable{
		doms:  make(map[Var][]Val, len(w.doms)),
		probs: make(map[Var][]float64, len(w.probs)),
		names: make(map[Var]string, len(w.names)),
		next:  w.next,
		order: append([]Var(nil), w.order...),
	}
	for k, v := range w.doms {
		out.doms[k] = append([]Val(nil), v...)
	}
	for k, v := range w.probs {
		out.probs[k] = append([]float64(nil), v...)
	}
	for k, v := range w.names {
		out.names[k] = v
	}
	return out
}
