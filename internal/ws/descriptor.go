package ws

import (
	"fmt"
	"sort"
	"strings"
)

// Assignment is one variable-to-value pair of a ws-descriptor.
type Assignment struct {
	Var Var
	Val Val
}

// Descriptor is a ws-descriptor: a partial valuation represented as a
// list of assignments sorted by variable id, with no contradictory
// duplicates. The empty descriptor denotes the entire world-set
// (shortcut for {⊤ -> 0}).
type Descriptor []Assignment

// NewDescriptor builds a normalized descriptor from assignments,
// sorting, deduplicating, and rejecting contradictions (same variable,
// different values).
func NewDescriptor(assigns ...Assignment) (Descriptor, error) {
	d := append(Descriptor(nil), assigns...)
	sort.Slice(d, func(i, j int) bool {
		if d[i].Var != d[j].Var {
			return d[i].Var < d[j].Var
		}
		return d[i].Val < d[j].Val
	})
	out := d[:0]
	for i, a := range d {
		if i > 0 && a.Var == d[i-1].Var {
			if a.Val != d[i-1].Val {
				return nil, fmt.Errorf("ws: contradictory descriptor: %s has two values", a.Var)
			}
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

// MustDescriptor is NewDescriptor that panics; for tests and examples.
func MustDescriptor(assigns ...Assignment) Descriptor {
	d, err := NewDescriptor(assigns...)
	if err != nil {
		panic(err)
	}
	return d
}

// A is shorthand for building an Assignment.
func A(x Var, v Val) Assignment { return Assignment{Var: x, Val: v} }

// Lookup returns the value assigned to x, if any.
func (d Descriptor) Lookup(x Var) (Val, bool) {
	for _, a := range d {
		if a.Var == x {
			return a.Val, true
		}
		if a.Var > x {
			break
		}
	}
	return 0, false
}

// ConsistentWith reports whether two descriptors agree on their shared
// variables — the ψ condition of the paper's Figure 4.
func (d Descriptor) ConsistentWith(e Descriptor) bool {
	i, j := 0, 0
	for i < len(d) && j < len(e) {
		switch {
		case d[i].Var < e[j].Var:
			i++
		case d[i].Var > e[j].Var:
			j++
		default:
			if d[i].Val != e[j].Val {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Union merges two descriptors; ok is false if they are inconsistent.
func (d Descriptor) Union(e Descriptor) (Descriptor, bool) {
	out := make(Descriptor, 0, len(d)+len(e))
	i, j := 0, 0
	for i < len(d) && j < len(e) {
		switch {
		case d[i].Var < e[j].Var:
			out = append(out, d[i])
			i++
		case d[i].Var > e[j].Var:
			out = append(out, e[j])
			j++
		default:
			if d[i].Val != e[j].Val {
				return nil, false
			}
			out = append(out, d[i])
			i++
			j++
		}
	}
	out = append(out, d[i:]...)
	out = append(out, e[j:]...)
	return out, true
}

// ExtendedBy reports whether the total valuation f extends d (footnote 2
// of the paper: for all x on which d is defined, d(x) = f(x)).
func (d Descriptor) ExtendedBy(f Valuation) bool {
	for _, a := range d {
		v, ok := f[a.Var]
		if !ok || v != a.Val {
			return false
		}
	}
	return true
}

// Vars returns the variables mentioned by d.
func (d Descriptor) Vars() []Var {
	out := make([]Var, len(d))
	for i, a := range d {
		out[i] = a.Var
	}
	return out
}

// ValidIn reports whether every assignment's graph is a subset of W.
func (d Descriptor) ValidIn(w *WorldTable) bool {
	for _, a := range d {
		if !w.Has(a.Var, a.Val) {
			return false
		}
	}
	return true
}

// Prob returns the probability of the conjunction of d's assignments
// under w's product distribution (Section 7 extension).
func (d Descriptor) Prob(w *WorldTable) float64 {
	p := 1.0
	for _, a := range d {
		if a.Var == TrivialVar {
			continue
		}
		p *= w.Prob(a.Var, a.Val)
	}
	return p
}

// String renders the descriptor like "{x->1, y->2}".
func (d Descriptor) String() string {
	if len(d) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range d {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d->%d", a.Var, a.Val)
	}
	b.WriteByte('}')
	return b.String()
}

// StringNamed renders the descriptor with variable names from w.
func (d Descriptor) StringNamed(w *WorldTable) string {
	if len(d) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range d {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s->%d", w.Name(a.Var), a.Val)
	}
	b.WriteByte('}')
	return b.String()
}

// Pad returns a copy of d extended to exactly width assignments by
// repeating an existing assignment, or the trivial assignment if d is
// empty — the paper's "pumping in already contained variable
// assignments" (Section 3, union translation). Pad panics if
// len(d) > width; callers size the target first.
func (d Descriptor) Pad(width int) Descriptor {
	if len(d) > width {
		panic(fmt.Sprintf("ws: cannot pad descriptor of size %d to width %d", len(d), width))
	}
	out := make(Descriptor, 0, width)
	out = append(out, d...)
	fill := Assignment{Var: TrivialVar, Val: 0}
	if len(d) > 0 {
		fill = d[0]
	}
	for len(out) < width {
		out = append(out, fill)
	}
	return out
}

// String implements fmt.Stringer for variables ("c7"; "⊤" for the
// trivial variable).
func (x Var) String() string {
	if x == TrivialVar {
		return "⊤"
	}
	return fmt.Sprintf("c%d", int64(x))
}
