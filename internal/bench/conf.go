package bench

import (
	"fmt"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// confQ1Catalog builds the confidence benchmark catalog: the Q1 schema
// (customer ⋈ orders ⋈ lineitem) with one qualifying order whose n
// lineitems each carry an independent boolean variable on l_shipdate
// (the qualifying date on one alternative, a non-qualifying date on the
// other), plus certain non-qualifying lineitems the scan must filter.
// Q1's single answer tuple then has lineage ∨_i (ship_i = 1) — n
// independent events — so the legacy exact policy enumerates the 2^n
// joint domain while the read-once decomposition and the one-pass
// bounds stay linear in n. n must keep 2^n under the enumeration cap
// or the legacy path silently switches to Monte-Carlo and the metric
// changes meaning.
func confQ1Catalog(n int) *core.UDB {
	db := core.NewUDB()
	db.MustAddRelation("customer", "c_custkey", "c_mktsegment")
	cu := db.MustAddPartition("customer", "", "c_custkey", "c_mktsegment")
	cu.Add(nil, 1, engine.Int(1), engine.Str("BUILDING"))

	db.MustAddRelation("orders", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	ou := db.MustAddPartition("orders", "", "o_orderkey", "o_custkey", "o_orderdate", "o_shippriority")
	ou.Add(nil, 1, engine.Int(1), engine.Int(1), engine.MustDate("1995-03-16"), engine.Int(0))

	db.MustAddRelation("lineitem", "l_orderkey", "l_shipdate")
	lk := db.MustAddPartition("lineitem", "u_l_key", "l_orderkey")
	ld := db.MustAddPartition("lineitem", "u_l_date", "l_shipdate")
	good := engine.MustDate("1995-03-16")
	bad := engine.MustDate("1995-06-01")
	for i := 0; i < n; i++ {
		tid := int64(i + 1)
		lk.Add(nil, tid, engine.Int(1))
		v := db.W.NewBoolVar(fmt.Sprintf("ship%d", i))
		ld.Add(ws.MustDescriptor(ws.A(v, 1)), tid, good)
		ld.Add(ws.MustDescriptor(ws.A(v, 2)), tid, bad)
	}
	for i := n; i < n+200; i++ {
		tid := int64(i + 1)
		lk.Add(nil, tid, engine.Int(1))
		ld.Add(nil, tid, bad)
	}
	return db
}
