package bench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"urel/internal/cluster"
	"urel/internal/core"
	"urel/internal/server"
	"urel/internal/store"
)

// shardedRelations is the relation split of the cluster benchmark:
// lineitem (the fact table, and the dominant cost of the mixed
// workload) is hash-partitioned; the dimension relations are replicated
// so single-shard plans join locally.
var shardedRelations = []string{"lineitem"}

// ShardedQPS projects the sharded cluster's throughput on the mixed
// statement set: the database splits over nShards ShardedSave
// directories, the coordinator's routing rules assign each of the
// total queries its sub-requests (statements reading lineitem scatter
// to every shard, dimension-only statements round-robin to one), and
// each node's sub-request workload then runs against its shard
// directory IN ISOLATION, timed separately.
//
//	qps = total / max over nodes of (node busy time)
//
// The max is the scatter-gather critical path: shards serve their
// sub-requests in parallel in a real deployment, so the slowest node
// bounds the cluster. Running the nodes sequentially and taking the
// max measures exactly that shared-nothing bound without needing
// nShards × GOMAXPROCS cores under the benchmark harness — on a
// multi-core host the live cluster realizes it, which is what the
// multi-process stress test (cmd/urserved) exercises.
func ShardedQPS(db *core.UDB, nShards, concurrency, total int) (float64, error) {
	dirs := make([]string, nShards)
	for i := range dirs {
		d, err := os.MkdirTemp("", fmt.Sprintf("urbench-shard%d-", i))
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	if err := store.ShardedSave(db, dirs, shardedRelations); err != nil {
		return 0, err
	}

	// Route the workload exactly as the coordinator would: scatter
	// statements fan a sub-request to every node, the rest round-robin.
	perNode := make([][]string, nShards)
	rr := 0
	for i := 0; i < total; i++ {
		q := ThroughputQueries[i%len(ThroughputQueries)]
		scatters := false
		for _, rel := range shardedRelations {
			if strings.Contains(q, rel) {
				scatters = true
			}
		}
		if scatters {
			for n := range perNode {
				perNode[n] = append(perNode[n], q)
			}
		} else {
			perNode[rr%nShards] = append(perNode[rr%nShards], q)
			rr++
		}
	}

	worst := time.Duration(0)
	for n, queries := range perNode {
		busy, err := nodeBusyTime(dirs[n], queries, concurrency)
		if err != nil {
			return 0, fmt.Errorf("bench: shard %d: %w", n, err)
		}
		if busy > worst {
			worst = busy
		}
	}
	return float64(total) / worst.Seconds(), nil
}

// nodeBusyTime boots a server over one shard directory and times its
// sub-request list at the given client concurrency (the coordinator
// fans sub-requests out with the caller's concurrency preserved). Only
// the timed section counts: server boot and the per-statement warm-up
// are deployment one-offs, not per-query busy time.
func nodeBusyTime(dir string, queries []string, concurrency int) (time.Duration, error) {
	s, err := server.New(server.Config{
		Catalogs:      map[string]string{"bench": dir},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	_, busy, err := throughputAgainst(s, queries, concurrency, len(queries))
	return busy, err
}

// CoordinatorOverheadPct prices the coordinator hop at one shard: the
// same workload through a coordinator routing to a single shard node
// versus directly against that node. At one shard every statement takes
// the single-target relay path (the shard's response bytes pass through
// verbatim), so this measures the floor cost of putting a coordinator
// in front of a catalog — the acceptance gate keeps it ≤ 15%.
func CoordinatorOverheadPct(dir string, queries []string, concurrency, total int) (float64, error) {
	shardS, err := server.New(server.Config{
		Catalogs:      map[string]string{"bench": dir},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer shardS.Close()
	shardTS := httptest.NewServer(shardS.Handler())
	defer shardTS.Close()

	coordS, err := server.New(server.Config{
		Cluster: map[string]cluster.CatalogSpec{"bench": {
			Sharded: shardedRelations,
			Shards:  []cluster.ShardNodes{{Name: "s0", Nodes: []string{shardTS.URL}}},
		}},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer coordS.Close()

	// Best-of-3 on each side: the paths differ by a fixed per-request
	// hop, so peak-vs-peak isolates that hop from GC and scheduler
	// noise between the two sequential measurements.
	best := func(s *server.Server) (float64, error) {
		peak := 0.0
		for i := 0; i < 3; i++ {
			qps, _, err := throughputAgainst(s, queries, concurrency, total)
			if err != nil {
				return 0, err
			}
			if qps > peak {
				peak = qps
			}
		}
		return peak, nil
	}
	directQPS, err := best(shardS)
	if err != nil {
		return 0, err
	}
	coordQPS, err := best(coordS)
	if err != nil {
		return 0, err
	}

	overhead := (directQPS - coordQPS) / directQPS * 100
	if overhead < 0 {
		overhead = 0
	}
	return overhead, nil
}
