package bench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"urel/internal/cluster"
	"urel/internal/core"
	"urel/internal/server"
	"urel/internal/store"
)

// shardedRelations is the relation split of the cluster benchmark:
// lineitem (the fact table, and the dominant cost of the mixed
// workload) is hash-partitioned; the dimension relations are replicated
// so single-shard plans join locally.
var shardedRelations = []string{"lineitem"}

// ShardedQPS projects the sharded cluster's throughput on the mixed
// statement set: the database splits over nShards ShardedSave
// directories, the coordinator's routing rules assign each of the
// total queries its sub-requests (statements reading lineitem scatter
// to every shard, dimension-only statements round-robin to one), and
// each node's sub-request workload then runs against its shard
// directory IN ISOLATION, timed separately.
//
//	qps = total / max over nodes of (node busy time)
//
// The max is the scatter-gather critical path: shards serve their
// sub-requests in parallel in a real deployment, so the slowest node
// bounds the cluster. Running the nodes sequentially and taking the
// max measures exactly that shared-nothing bound without needing
// nShards × GOMAXPROCS cores under the benchmark harness — on a
// multi-core host the live cluster realizes it, which is what the
// multi-process stress test (cmd/urserved) exercises.
func ShardedQPS(db *core.UDB, nShards, concurrency, total int) (float64, error) {
	dirs := make([]string, nShards)
	for i := range dirs {
		d, err := os.MkdirTemp("", fmt.Sprintf("urbench-shard%d-", i))
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(d)
		dirs[i] = d
	}
	if err := store.ShardedSave(db, dirs, shardedRelations); err != nil {
		return 0, err
	}

	// Route the workload exactly as the coordinator would: scatter
	// statements fan a sub-request to every node, the rest round-robin.
	perNode := make([][]string, nShards)
	rr := 0
	for i := 0; i < total; i++ {
		q := ThroughputQueries[i%len(ThroughputQueries)]
		scatters := false
		for _, rel := range shardedRelations {
			if strings.Contains(q, rel) {
				scatters = true
			}
		}
		if scatters {
			for n := range perNode {
				perNode[n] = append(perNode[n], q)
			}
		} else {
			perNode[rr%nShards] = append(perNode[rr%nShards], q)
			rr++
		}
	}

	worst := time.Duration(0)
	for n, queries := range perNode {
		busy, err := nodeBusyTime(dirs[n], queries, concurrency)
		if err != nil {
			return 0, fmt.Errorf("bench: shard %d: %w", n, err)
		}
		if busy > worst {
			worst = busy
		}
	}
	return float64(total) / worst.Seconds(), nil
}

// nodeBusyTime boots a server over one shard directory and times its
// sub-request list at the given client concurrency (the coordinator
// fans sub-requests out with the caller's concurrency preserved). Only
// the timed section counts: server boot and the per-statement warm-up
// are deployment one-offs, not per-query busy time.
func nodeBusyTime(dir string, queries []string, concurrency int) (time.Duration, error) {
	s, err := server.New(server.Config{
		Catalogs:      map[string]string{"bench": dir},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	_, busy, err := throughputAgainst(s, queries, concurrency, len(queries))
	return busy, err
}

// CoordinatorHopMS prices the coordinator hop at one shard: the same
// workload through a coordinator routing to a single shard node versus
// directly against that node. At one shard every statement takes the
// single-target relay path (the shard's response bytes pass through
// verbatim), so this measures the floor cost of putting a coordinator
// in front of a catalog, as absolute added milliseconds per request.
// Absolute, not a percentage of direct throughput: the hop is a fixed
// relay cost, and expressing it relative to a moving baseline would
// flag a "regression" every time shard-local execution gets faster.
func CoordinatorHopMS(dir string, queries []string, concurrency, total int) (float64, error) {
	shardS, err := server.New(server.Config{
		Catalogs:      map[string]string{"bench": dir},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer shardS.Close()
	shardTS := httptest.NewServer(shardS.Handler())
	defer shardTS.Close()

	coordS, err := server.New(server.Config{
		Cluster: map[string]cluster.CatalogSpec{"bench": {
			Sharded: shardedRelations,
			Shards:  []cluster.ShardNodes{{Name: "s0", Nodes: []string{shardTS.URL}}},
		}},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer coordS.Close()

	// Interleaved best-of-3: alternating the two paths shares thermal,
	// GC, and scheduler conditions between them, and peak-vs-peak
	// isolates the fixed per-request hop from that noise.
	directQPS, coordQPS := 0.0, 0.0
	for i := 0; i < 3; i++ {
		d, _, err := throughputAgainst(shardS, queries, concurrency, total)
		if err != nil {
			return 0, err
		}
		if d > directQPS {
			directQPS = d
		}
		c, _, err := throughputAgainst(coordS, queries, concurrency, total)
		if err != nil {
			return 0, err
		}
		if c > coordQPS {
			coordQPS = c
		}
	}

	hop := (1/coordQPS - 1/directQPS) * 1000
	if hop < 0 {
		hop = 0
	}
	return hop, nil
}
