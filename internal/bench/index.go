package bench

import (
	"fmt"
	"os"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/store"
	"urel/internal/txn"
)

// IndexCatalogRows is the synthetic catalog size the index benchmarks
// run at: large enough that a point lookup's scan-vs-index gap is the
// dominant cost, keyed by a shuffled permutation so segment min/max
// stats cannot prune the scan path.
const IndexCatalogRows = 1_000_000

// IndexBench measures the secondary-index subsystem on a synthetic
// IndexCatalogRows-row catalog: point-lookup throughput through the
// indexed equality path (queries/sec end to end, parse-free plan built
// per probe), and a selective index-nested-loop join driving a 64-row
// probe relation into the catalog (ms, median of reps).
func IndexBench(reps int) (lookupQPS, indexJoinMS float64, err error) {
	db := core.NewUDB()
	db.MustAddRelation("catalog", "k", "v")
	uc := db.MustAddPartition("catalog", "u_catalog", "k", "v")
	n := IndexCatalogRows
	for i := 0; i < n; i++ {
		// Odd multiplier coprime to n: a shuffled bijection.
		uc.Add(nil, int64(i+1), engine.Int(int64((i*2654435761)%n)), engine.Int(int64(i)))
	}
	db.MustAddRelation("probe", "k", "p")
	up := db.MustAddPartition("probe", "u_probe", "k", "p")
	for i := 0; i < 64; i++ {
		up.Add(nil, int64(i+1), engine.Int(int64((i*997*2654435761)%n)), engine.Int(int64(i)))
	}

	dir, err := os.MkdirTemp("", "urbench-index-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	if err := store.Save(db, dir); err != nil {
		return 0, 0, err
	}
	rw, err := txn.Open(dir, txn.Options{DisableAutoFlush: true})
	if err != nil {
		return 0, 0, err
	}
	defer rw.Close()
	if _, err := rw.Exec("create index on catalog(k)"); err != nil {
		return 0, 0, fmt.Errorf("bench: create index: %w", err)
	}
	snap := rw.Snapshot()

	point := func(k int64) core.Query {
		return core.Project(core.Select(core.Rel("catalog"),
			engine.Eq(engine.Col("k"), engine.ConstInt(k))), "v")
	}
	// Warm the lazily-loaded runs, then measure.
	if _, err := snap.EvalPoss(point(1), engine.ExecConfig{}); err != nil {
		return 0, 0, err
	}
	const probes = 400
	start := time.Now()
	for i := 0; i < probes; i++ {
		rel, err := snap.EvalPoss(point(int64((i*131*2654435761)%n)), engine.ExecConfig{})
		if err != nil {
			return 0, 0, err
		}
		if rel.Len() != 1 {
			return 0, 0, fmt.Errorf("bench: point lookup returned %d rows", rel.Len())
		}
	}
	lookupQPS = probes / time.Since(start).Seconds()

	join := core.Project(core.Join(core.RelAs("probe", "p"), core.RelAs("catalog", "c"),
		engine.Eq(engine.Col("p.k"), engine.Col("c.k"))), "p.k", "c.v")
	var times []time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		rel, err := snap.EvalPoss(join, engine.ExecConfig{})
		if err != nil {
			return 0, 0, err
		}
		if rel.Len() != 64 {
			return 0, 0, fmt.Errorf("bench: index join returned %d rows", rel.Len())
		}
		times = append(times, time.Since(start))
	}
	return lookupQPS, ms(median(times)), nil
}
