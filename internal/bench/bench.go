// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 6) on the Go substrate.
// The drivers are shared by cmd/urbench, the repository's testing.B
// benchmarks, and EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/tpch"
)

// QueryMeasurement is one timed evaluation of a translated query.
type QueryMeasurement struct {
	Query    string
	Params   tpch.Params
	Elapsed  time.Duration
	ReprRows int // representation-level result tuples (paper's answer size)
	Distinct int // distinct possible tuples (poss output)
}

// RunQuery translates the (poss-wrapped) query lazily, evaluates it,
// and measures both the representation-level answer and the distinct
// poss projection.
func RunQuery(db *core.UDB, name string, q core.Query, cfg engine.ExecConfig) (QueryMeasurement, error) {
	inner := core.StripPoss(q)
	start := time.Now()
	plan, lay, err := db.Translate(inner)
	if err != nil {
		return QueryMeasurement{}, err
	}
	cat := engine.NewCatalog()
	rel, err := engine.Run(plan, cat, cfg)
	if err != nil {
		return QueryMeasurement{}, err
	}
	// poss: distinct projection on the value attributes.
	it := engine.NewDistinct(engine.NewProject(engine.NewScan(rel), lay.Attrs))
	distinct, err := engine.Drain(it)
	if err != nil {
		return QueryMeasurement{}, err
	}
	elapsed := time.Since(start)
	return QueryMeasurement{
		Query:    name,
		Elapsed:  elapsed,
		ReprRows: rel.Len(),
		Distinct: distinct.Len(),
	}, nil
}

// dbCache avoids regenerating identical datasets across figures within
// one harness run. When the grid names a snapshot directory, stored
// databases are opened from disk instead of being regenerated.
type dbCache struct {
	dir string
	m   map[string]cached
}

type cached struct {
	db *core.UDB
	st tpch.Stats
}

func newCache(g Grid) *dbCache { return &dbCache{dir: g.Dir, m: map[string]cached{}} }

func (c *dbCache) get(p tpch.Params) (*core.UDB, tpch.Stats, error) {
	k := p.String() + fmt.Sprintf(" seed=%d", p.Seed)
	if e, ok := c.m[k]; ok {
		return e.db, e.st, nil
	}
	if c.dir != "" {
		// A named snapshot directory is a promise that the figures run
		// from disk: a missing or unreadable snapshot is an error, not a
		// silent fall-back to freshly generated in-memory data.
		dir := SnapshotDir(c.dir, p)
		db, st, err := LoadSnapshot(dir)
		if err != nil {
			return nil, tpch.Stats{}, fmt.Errorf(
				"bench: snapshot %s: %w (create it with urbench -save and the same -seed, or drop -load)", dir, err)
		}
		c.m[k] = cached{db: db, st: st}
		return db, st, nil
	}
	db, st, err := tpch.Generate(p)
	if err != nil {
		return nil, tpch.Stats{}, err
	}
	c.m[k] = cached{db: db, st: st}
	return db, st, nil
}

// Close releases the storage backings of every cached database (a
// no-op for generated in-memory ones). Figures close their cache when
// they finish so a multi-figure run does not accumulate open segment
// files across the whole sweep.
func (c *dbCache) Close() {
	for _, e := range c.m {
		e.db.Close()
	}
	c.m = map[string]cached{}
}

// Grid bundles the parameter sweep of the paper's Section 6. The
// default mirrors the paper's grid; callers shrink it for quick runs.
type Grid struct {
	Scales []float64
	Zs     []float64
	Xs     []float64 // excluding the x=0 baseline where not applicable
	Reps   int       // repetitions per point (paper: 4, median)
	// Seed overrides the generator seed for every dataset of the sweep
	// (0 keeps the tpch default), so snapshots are reproducible
	// run-to-run.
	Seed int64
	// Dir, when non-empty, is a snapshot directory written by SaveGrid:
	// the harness opens stored databases from it (cold, segment-backed)
	// instead of regenerating, falling back to generation for datasets
	// that are not present.
	Dir string
}

// params builds the tpch parameters for one sweep point, honoring the
// grid's seed override.
func (g Grid) params(s, x, z float64) tpch.Params {
	p := tpch.DefaultParams(s, x, z)
	if g.Seed != 0 {
		p.Seed = g.Seed
	}
	return p
}

// PaperGrid returns the paper's full sweep.
func PaperGrid() Grid {
	return Grid{
		Scales: []float64{0.01, 0.05, 0.1, 0.5, 1},
		Zs:     []float64{0.1, 0.25, 0.5},
		Xs:     []float64{0.001, 0.01, 0.1},
		Reps:   4,
	}
}

// QuickGrid returns a laptop-minute-scale subset.
func QuickGrid() Grid {
	return Grid{
		Scales: []float64{0.01, 0.05, 0.1},
		Zs:     []float64{0.1, 0.5},
		Xs:     []float64{0.01, 0.1},
		Reps:   2,
	}
}

// SmokeGrid returns a single-point grid: one small dataset, one rep.
// CI uses it to snapshot a dataset for the server stress job in
// seconds.
func SmokeGrid() Grid {
	return Grid{
		Scales: []float64{0.01},
		Zs:     []float64{0.25},
		Xs:     []float64{0.01},
		Reps:   1,
	}
}

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
