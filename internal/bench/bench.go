// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 6) on the Go substrate.
// The drivers are shared by cmd/urbench, the repository's testing.B
// benchmarks, and EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/tpch"
)

// QueryMeasurement is one timed evaluation of a translated query.
type QueryMeasurement struct {
	Query    string
	Params   tpch.Params
	Elapsed  time.Duration
	ReprRows int // representation-level result tuples (paper's answer size)
	Distinct int // distinct possible tuples (poss output)
}

// RunQuery translates the (poss-wrapped) query lazily, evaluates it,
// and measures both the representation-level answer and the distinct
// poss projection.
func RunQuery(db *core.UDB, name string, q core.Query, cfg engine.ExecConfig) (QueryMeasurement, error) {
	inner := core.StripPoss(q)
	start := time.Now()
	plan, lay, err := db.Translate(inner)
	if err != nil {
		return QueryMeasurement{}, err
	}
	cat := engine.NewCatalog()
	rel, err := engine.Run(plan, cat, cfg)
	if err != nil {
		return QueryMeasurement{}, err
	}
	// poss: distinct projection on the value attributes.
	it := engine.NewDistinct(engine.NewProject(engine.NewScan(rel), lay.Attrs))
	distinct, err := engine.Drain(it)
	if err != nil {
		return QueryMeasurement{}, err
	}
	elapsed := time.Since(start)
	return QueryMeasurement{
		Query:    name,
		Elapsed:  elapsed,
		ReprRows: rel.Len(),
		Distinct: distinct.Len(),
	}, nil
}

// dbCache avoids regenerating identical datasets across figures within
// one harness run.
type dbCache struct {
	m map[string]cached
}

type cached struct {
	db *core.UDB
	st tpch.Stats
}

func newCache() *dbCache { return &dbCache{m: map[string]cached{}} }

func (c *dbCache) get(p tpch.Params) (*core.UDB, tpch.Stats, error) {
	k := p.String()
	if e, ok := c.m[k]; ok {
		return e.db, e.st, nil
	}
	db, st, err := tpch.Generate(p)
	if err != nil {
		return nil, tpch.Stats{}, err
	}
	c.m[k] = cached{db: db, st: st}
	return db, st, nil
}

// Grid bundles the parameter sweep of the paper's Section 6. The
// default mirrors the paper's grid; callers shrink it for quick runs.
type Grid struct {
	Scales []float64
	Zs     []float64
	Xs     []float64 // excluding the x=0 baseline where not applicable
	Reps   int       // repetitions per point (paper: 4, median)
}

// PaperGrid returns the paper's full sweep.
func PaperGrid() Grid {
	return Grid{
		Scales: []float64{0.01, 0.05, 0.1, 0.5, 1},
		Zs:     []float64{0.1, 0.25, 0.5},
		Xs:     []float64{0.001, 0.01, 0.1},
		Reps:   4,
	}
}

// QuickGrid returns a laptop-minute-scale subset.
func QuickGrid() Grid {
	return Grid{
		Scales: []float64{0.01, 0.05, 0.1},
		Zs:     []float64{0.1, 0.5},
		Xs:     []float64{0.01, 0.1},
		Reps:   2,
	}
}

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
