package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"urel/internal/store"
	"urel/internal/tpch"
)

// throughputDir saves a small dataset for server benchmarks/tests.
func throughputDir(tb testing.TB) string {
	tb.Helper()
	params := tpch.DefaultParams(0.01, 0.01, 0.25)
	params.Seed = 42
	db, _, err := tpch.Generate(params)
	if err != nil {
		tb.Fatal(err)
	}
	dir := tb.TempDir()
	if err := store.Save(db, dir); err != nil {
		tb.Fatal(err)
	}
	return dir
}

func TestServerThroughput(t *testing.T) {
	qps, err := ServerThroughput(throughputDir(t), ThroughputQueries, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("qps = %v", qps)
	}
}

// BenchmarkServerThroughput keeps the serving-path benchmark compiled
// and runnable by the CI smoke step.
func BenchmarkServerThroughput(b *testing.B) {
	b.ReportAllocs()
	dir := throughputDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ServerThroughput(dir, ThroughputQueries, 4, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReportRoundTripAndCompare covers the trajectory file format and
// the regression gate the CI comparator relies on.
func TestReportRoundTripAndCompare(t *testing.T) {
	old := &BenchReport{Version: reportVersion, GoVersion: "go0.0", Results: []BenchResult{
		{Name: "Q1_eval_ms", Unit: "ms", Value: 100, Better: "lower"},
		{Name: "server_qps_c8", Unit: "qps", Value: 50, Better: "higher"},
		{Name: "gone_metric", Unit: "ms", Value: 1, Better: "lower"},
	}}
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := WriteReport(old, path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 3 || back.Results[0] != old.Results[0] {
		t.Fatalf("round trip mangled the report: %+v", back)
	}

	// Within tolerance: 20% slower and 20% less throughput pass at 25%.
	ok := &BenchReport{Version: reportVersion, Results: []BenchResult{
		{Name: "Q1_eval_ms", Unit: "ms", Value: 120, Better: "lower"},
		{Name: "server_qps_c8", Unit: "qps", Value: 40, Better: "higher"},
		{Name: "brand_new", Unit: "ms", Value: 5, Better: "lower"},
	}}
	if regs := CompareReports(back, ok, 0.25, nil); len(regs) != 0 {
		t.Fatalf("within-tolerance changes flagged: %v", regs)
	}

	// Past tolerance, in each direction.
	bad := &BenchReport{Version: reportVersion, Results: []BenchResult{
		{Name: "Q1_eval_ms", Unit: "ms", Value: 130, Better: "lower"},     // +30% time
		{Name: "server_qps_c8", Unit: "qps", Value: 35, Better: "higher"}, // -30% qps
	}}
	regs := CompareReports(back, bad, 0.25, nil)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "tolerance") {
			t.Fatalf("regression message should carry the tolerance: %q", r)
		}
	}

	// A faster run never regresses.
	fast := &BenchReport{Version: reportVersion, Results: []BenchResult{
		{Name: "Q1_eval_ms", Unit: "ms", Value: 10, Better: "lower"},
		{Name: "server_qps_c8", Unit: "qps", Value: 500, Better: "higher"},
	}}
	if regs := CompareReports(back, fast, 0.25, nil); len(regs) != 0 {
		t.Fatalf("improvements flagged: %v", regs)
	}

	// Version bump disables comparison entirely.
	vnext := &BenchReport{Version: reportVersion + 1, Results: bad.Results}
	if regs := CompareReports(back, vnext, 0.25, nil); regs != nil {
		t.Fatalf("cross-version comparison should be skipped: %v", regs)
	}

	if _, err := ReadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{"), 0o644)
	if _, err := ReadReport(badPath); err == nil {
		t.Fatal("malformed file should error")
	}
}
