// Serial-vs-parallel execution measurements: the first entries of the
// engine's performance trajectory. These are not figures from the paper
// — they track this reproduction's own scaling work (batch execution,
// partitioned parallel joins) against the serial Volcano baseline.

package bench

import (
	"io"
	"math/rand"
	"runtime"
	"time"

	"urel/internal/engine"
)

// SyntheticJoinInput builds a deterministic relation (k int, s string,
// v float) with n rows and keys distinct join keys, for controlled
// serial-vs-parallel join measurements.
func SyntheticJoinInput(n, keys int, prefix string, seed int64) *engine.Relation {
	r := rand.New(rand.NewSource(seed))
	rel := engine.NewRelation(engine.NewSchema(
		engine.Column{Name: prefix + ".k", Kind: engine.KindInt},
		engine.Column{Name: prefix + ".s", Kind: engine.KindString},
		engine.Column{Name: prefix + ".v", Kind: engine.KindFloat},
	))
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < n; i++ {
		rel.Append(engine.Tuple{
			engine.Int(int64(r.Intn(keys))),
			engine.Str(names[r.Intn(len(names))]),
			engine.Float(r.Float64()),
		})
	}
	return rel
}

// ParallelPoint is one serial-vs-parallel comparison at a fixed input
// size.
type ParallelPoint struct {
	Rows     int // rows per join input
	OutRows  int
	Workers  int
	Serial   time.Duration
	Parallel time.Duration
	Speedup  float64
}

// parallelJoinPlan is the measured query: an equi join with a residual
// inequality, the same Merge Cond / Join Filter shape translated
// U-relation queries produce.
func parallelJoinPlan(l, r *engine.Relation) engine.Plan {
	return engine.Join(
		engine.Values(l, "l"), engine.Values(r, "r"),
		engine.And(
			engine.EqCols("l.k", "r.k"),
			engine.Cmp(engine.NE, engine.Col("l.s"), engine.Col("r.s")),
		))
}

// ParallelJoinSweep times the serial hash join against the partitioned
// parallel hash join across input sizes, writing a table to w (nil
// discards). workers <= 0 selects GOMAXPROCS. reps repetitions, median
// reported.
func ParallelJoinSweep(sizes []int, workers, reps int, w io.Writer) ([]ParallelPoint, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reps < 1 {
		reps = 1
	}
	fprintf(w, "Serial vs parallel partitioned hash join (workers=%d, median of %d)\n", workers, reps)
	fprintf(w, "%10s  %10s  %12s  %12s  %8s\n", "rows/side", "out rows", "serial", "parallel", "speedup")
	cat := engine.NewCatalog()
	var out []ParallelPoint
	for _, n := range sizes {
		l := SyntheticJoinInput(n, n/8+1, "l", 1)
		r := SyntheticJoinInput(n, n/8+1, "r", 2)
		plan := parallelJoinPlan(l, r)
		serialCfg := engine.ExecConfig{}
		parallelCfg := engine.ExecConfig{Parallelism: workers, ParallelThreshold: 1}

		// Warm-up: fault in the inputs and grow the allocator so the
		// first measured configuration is not penalized.
		if _, err := engine.Run(plan, cat, serialCfg); err != nil {
			return nil, err
		}
		outRows := 0
		measure := func(cfg engine.ExecConfig) (time.Duration, error) {
			ds := make([]time.Duration, 0, reps)
			for i := 0; i < reps; i++ {
				start := time.Now()
				rel, err := engine.Run(plan, cat, cfg)
				if err != nil {
					return 0, err
				}
				ds = append(ds, time.Since(start))
				outRows = rel.Len()
			}
			return median(ds), nil
		}
		s, err := measure(serialCfg)
		if err != nil {
			return nil, err
		}
		p, err := measure(parallelCfg)
		if err != nil {
			return nil, err
		}
		pt := ParallelPoint{
			Rows: n, OutRows: outRows, Workers: workers,
			Serial: s, Parallel: p,
			Speedup: float64(s) / float64(p),
		}
		out = append(out, pt)
		fprintf(w, "%10d  %10d  %12s  %12s  %7.2fx\n", n, outRows, s, p, pt.Speedup)
	}
	return out, nil
}
