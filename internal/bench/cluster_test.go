package bench

import (
	"testing"

	"urel/internal/tpch"
)

// TestShardedQPSAndOverhead smoke-tests the scale-out benchmark pair:
// the 2-shard projection must produce a positive rate (and its routing
// must split the workload), and the 1-shard coordinator hop must come
// back as a sane per-request cost.
func TestShardedQPSAndOverhead(t *testing.T) {
	params := tpch.DefaultParams(0.01, 0.01, 0.25)
	params.Seed = 42
	db, _, err := tpch.Generate(params)
	if err != nil {
		t.Fatal(err)
	}
	qps, err := ShardedQPS(db, 2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("2-shard qps = %v", qps)
	}

	dir := throughputDir(t)
	hop, err := CoordinatorHopMS(dir, ThroughputQueries, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if hop < 0 || hop > 100 {
		t.Fatalf("coordinator hop = %vms", hop)
	}
}
