package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/obs"
	"urel/internal/store"
	"urel/internal/tpch"
	"urel/internal/txn"
)

// BenchResult is one machine-readable measurement. Names are stable
// across PRs so successive BENCH_*.json files form a trajectory.
type BenchResult struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
	// Better says which direction is an improvement: "lower" (times)
	// or "higher" (throughput).
	Better string `json:"better"`
}

// BenchReport is the file format of BENCH_*.json.
type BenchReport struct {
	Version    int           `json:"version"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []BenchResult `json:"results"`
}

// reportVersion is bumped when the suite's workloads change meaning
// (comparisons across versions are skipped).
const reportVersion = 1

// JSONSuite runs the fixed quick benchmark grid and returns the
// machine-readable report: the paper's three queries on a generated
// database, the same evaluation cold from the columnar store, and the
// query server's throughput at fixed concurrency. Narration goes to w
// (nil for silence).
func JSONSuite(w io.Writer) (*BenchReport, error) {
	rep := &BenchReport{
		Version:    reportVersion,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	add := func(name, unit string, value float64, better string) {
		rep.Results = append(rep.Results, BenchResult{Name: name, Unit: unit, Value: value, Better: better})
		fprintf(w, "%-28s %12.3f %s\n", name, value, unit)
	}

	// Fixed workload: the suite is a trajectory, so the parameters are
	// pinned (quick-grid scale, seeded generator).
	params := tpch.DefaultParams(0.05, 0.01, 0.25)
	params.Seed = 42
	genStart := time.Now()
	db, _, err := tpch.Generate(params)
	if err != nil {
		return nil, err
	}
	add("generate_s0.05_ms", "ms", ms(time.Since(genStart)), "lower")

	// In-memory query evaluation (Figure 12's workload, one point).
	// Q1 and Q3 also report heap allocations per representation row,
	// tracking the engine's allocation trajectory (the hash join and
	// batch paths are designed to amortize to near zero per row).
	const reps = 3
	for _, name := range []string{"Q1", "Q2", "Q3"} {
		q := tpch.Queries()[name]
		var times []time.Duration
		var allocsPerRow float64
		for r := 0; r < reps; r++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			m, err := RunQuery(db, name, q, engine.ExecConfig{})
			runtime.ReadMemStats(&after)
			if err != nil {
				return nil, err
			}
			times = append(times, m.Elapsed)
			if rows := m.ReprRows; rows > 0 {
				allocsPerRow = float64(after.Mallocs-before.Mallocs) / float64(rows)
			}
		}
		add(fmt.Sprintf("%s_eval_ms", name), "ms", ms(median(times)), "lower")
		if name == "Q1" || name == "Q3" {
			add(fmt.Sprintf("%s_allocs_per_row", name), "allocs/row", allocsPerRow, "lower")
		}
	}

	// Operator-tracing overhead (PR 7): Q1 with a live trace span vs
	// the plain run, interleaved to share thermal/cache conditions.
	// Disabled tracing is a nil check on the hot path; this prices the
	// enabled case (per-batch span bookkeeping) and the trajectory
	// gates it staying small. Clamped at 0: negative deltas are noise.
	var plainT, tracedT []time.Duration
	for r := 0; r < 2*reps; r++ {
		m, err := RunQuery(db, "Q1", tpch.Queries()["Q1"], engine.ExecConfig{})
		if err != nil {
			return nil, err
		}
		plainT = append(plainT, m.Elapsed)
		m, err = RunQuery(db, "Q1", tpch.Queries()["Q1"], engine.ExecConfig{Trace: obs.NewSpan("query")})
		if err != nil {
			return nil, err
		}
		tracedT = append(tracedT, m.Elapsed)
	}
	overheadPct := (median(tracedT).Seconds()/median(plainT).Seconds() - 1) * 100
	if overheadPct < 0 {
		overheadPct = 0
	}
	add("trace_overhead_pct", "pct", overheadPct, "lower")

	// Confidence computation (PR 6): Q1 over the confidence catalog —
	// one answer tuple whose lineage is a union of 20 independent
	// boolean events — priced three ways: the legacy exact policy
	// (joint-domain enumeration, 2^20 worlds here), the read-once
	// dispatcher (certifies independence, evaluates the product form),
	// and the one-pass certain/possible bounds. All three answer the
	// same CONF query; the spread is the exponential-vs-linear gap the
	// fast paths exist for.
	confRes, err := confQ1Catalog(20).Eval(core.StripPoss(tpch.Queries()["Q1"]), engine.ExecConfig{})
	if err != nil {
		return nil, err
	}
	var exactTimes, roTimes, boundsTimes []time.Duration
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, _, err := confRes.ConfidencesAuto(20000, 1); err != nil {
			return nil, err
		}
		exactTimes = append(exactTimes, time.Since(start))

		start = time.Now()
		if _, _, err := confRes.ConfidencesDispatch(core.ConfOptions{}); err != nil {
			return nil, err
		}
		roTimes = append(roTimes, time.Since(start))

		start = time.Now()
		confRes.ConfidenceBounds()
		boundsTimes = append(boundsTimes, time.Since(start))
	}
	add("conf_exact_ms", "ms", ms(median(exactTimes)), "lower")
	add("conf_readonce_ms", "ms", ms(median(roTimes)), "lower")
	add("conf_bounds_ms", "ms", ms(median(boundsTimes)), "lower")

	// Cold evaluation from the columnar store (uncached, fresh open
	// per rep so every segment decode is paid).
	dir, err := os.MkdirTemp("", "urbench-json-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	saveStart := time.Now()
	if err := store.Save(db, dir); err != nil {
		return nil, err
	}
	add("store_save_ms", "ms", ms(time.Since(saveStart)), "lower")
	var coldTimes []time.Duration
	for r := 0; r < reps; r++ {
		cold, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		m, err := RunQuery(cold, "Q2", tpch.Queries()["Q2"], engine.ExecConfig{})
		cold.Close()
		if err != nil {
			return nil, err
		}
		coldTimes = append(coldTimes, m.Elapsed)
	}
	add("Q2_cold_store_ms", "ms", ms(median(coldTimes)), "lower")

	// Server throughput at fixed concurrency — the serving-layer
	// number the trajectory tracks (queries/sec, higher is better).
	qps, err := ServerThroughput(dir, ThroughputQueries, 8, 240)
	if err != nil {
		return nil, err
	}
	add("server_qps_c8", "qps", qps, "higher")

	// Scale-out (PR 8): the same workload over a 2-shard split — each
	// node serves only its sub-requests, and the critical path (slowest
	// node) bounds the cluster — plus the price of the coordinator hop
	// at one shard (the single-target relay path).
	qps2, err := ShardedQPS(db, 2, 8, 240)
	if err != nil {
		return nil, err
	}
	add("qps_2shard", "qps", qps2, "higher")
	hop, err := CoordinatorHopMS(dir, ThroughputQueries, 8, 240)
	if err != nil {
		return nil, err
	}
	add("coordinator_hop_ms", "ms", hop, "lower")

	// Write path (PR 5): bulk-insert throughput through the
	// transactional store (WAL fsync per statement included), and Q1
	// after deleting ~10% of lineitem — the tombstone-filtered scan
	// cost the trajectory gates. A fresh snapshot directory keeps the
	// read-only metrics above undisturbed.
	wdir, err := os.MkdirTemp("", "urbench-write-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(wdir)
	if err := store.Save(db, wdir); err != nil {
		return nil, err
	}
	rw, err := txn.Open(wdir, txn.Options{DisableAutoFlush: true})
	if err != nil {
		return nil, err
	}
	const insBatches, insBatchRows = 20, 100
	insStart := time.Now()
	for b := 0; b < insBatches; b++ {
		var sb strings.Builder
		sb.WriteString("insert into lineitem (l_orderkey, l_partkey, l_quantity, l_extendedprice) values ")
		for r := 0; r < insBatchRows; r++ {
			if r > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d.0)", 900000+b*insBatchRows+r, r%200, 1+r%50, 1000+r)
		}
		if _, err := rw.Exec(sb.String()); err != nil {
			rw.Close()
			return nil, fmt.Errorf("bench: insert batch %d: %w", b, err)
		}
	}
	insElapsed := time.Since(insStart)
	add("insert_rows_per_sec", "rows/s", float64(insBatches*insBatchRows)/insElapsed.Seconds(), "higher")

	// l_quantity is uniform on 1..50, so <= 5 deletes ~10% of lineitem.
	if _, err := rw.Exec("delete from lineitem where l_quantity <= 5"); err != nil {
		rw.Close()
		return nil, fmt.Errorf("bench: delete 10%%: %w", err)
	}
	var delTimes []time.Duration
	for r := 0; r < reps; r++ {
		m, err := RunQuery(rw.Snapshot(), "Q1", tpch.Queries()["Q1"], engine.ExecConfig{})
		if err != nil {
			rw.Close()
			return nil, err
		}
		delTimes = append(delTimes, m.Elapsed)
	}
	if err := rw.Close(); err != nil {
		return nil, err
	}
	add("q1_after_10pct_deletes_ms", "ms", ms(median(delTimes)), "lower")

	// Secondary indexes (PR 10): point-lookup throughput on a 1M-row
	// catalog through the indexed equality path, and the selective
	// index-nested-loop join the strategy suite picks for a small probe
	// relation against the same catalog.
	lookupQPS, idxJoinMS, err := IndexBench(reps)
	if err != nil {
		return nil, err
	}
	add("point_lookup_qps", "qps", lookupQPS, "higher")
	add("q1_index_join_ms", "ms", idxJoinMS, "lower")
	return rep, nil
}

// WriteReport writes the report as pretty JSON to path.
func WriteReport(rep *BenchReport, path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadReport loads a BENCH_*.json file.
func ReadReport(path string) (*BenchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &rep, nil
}

// CompareReports checks cur against old metric by metric and returns
// the regressions: changes past tolerance in the worse direction.
// tolerance is fractional (0.25 = 25%).
func CompareReports(old, cur *BenchReport, tolerance float64, w io.Writer) (regressions []string) {
	if old.Version != cur.Version {
		fprintf(w, "suite version changed (%d -> %d); skipping comparison\n", old.Version, cur.Version)
		return nil
	}
	oldBy := map[string]BenchResult{}
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	fprintf(w, "%-28s %12s %12s %8s\n", "metric", "old", "new", "change")
	for _, nr := range cur.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fprintf(w, "%-28s %12s %12.3f %8s\n", nr.Name, "-", nr.Value, "new")
			continue
		}
		// Metrics already in percent (e.g. trace_overhead_pct) compare
		// on absolute points, not relative change: a 0.1% -> 0.3%
		// overhead is not a 200% regression. The gate scales with the
		// tolerance: 25% relative allows 2.5 points.
		if nr.Unit == "pct" {
			delta := nr.Value - or.Value
			worse := delta
			if nr.Better == "higher" {
				worse = -delta
			}
			mark := ""
			if worse > tolerance*10 {
				mark = "  <-- REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %.3f -> %.3f %s (%+.1f points, tolerance %.1f points)",
						nr.Name, or.Value, nr.Value, nr.Unit, delta, tolerance*10))
			}
			fprintf(w, "%-28s %12.3f %12.3f %+6.1fpt%s\n", nr.Name, or.Value, nr.Value, delta, mark)
			continue
		}
		if or.Value <= 0 {
			continue
		}
		change := (nr.Value - or.Value) / or.Value
		worse := change
		if nr.Better == "higher" {
			worse = -change
		}
		mark := ""
		if worse > tolerance {
			mark = "  <-- REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3f -> %.3f %s (%+.1f%%, tolerance %.0f%%)",
					nr.Name, or.Value, nr.Value, nr.Unit, change*100, tolerance*100))
		}
		fprintf(w, "%-28s %12.3f %12.3f %+7.1f%%%s\n", nr.Name, or.Value, nr.Value, change*100, mark)
	}
	return regressions
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
