package bench

import (
	"strings"
	"testing"

	"urel/internal/engine"
	"urel/internal/tpch"
)

func tinyGrid() Grid {
	return Grid{
		Scales: []float64{0.01},
		Zs:     []float64{0.25},
		Xs:     []float64{0.01, 0.1},
		Reps:   1,
	}
}

func TestFigure9Driver(t *testing.T) {
	var sb strings.Builder
	cells, err := Figure9(tinyGrid(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("want 2 cells, got %d", len(cells))
	}
	// World count grows with x while size grows moderately.
	if cells[0].Log10Worlds >= cells[1].Log10Worlds {
		t.Fatalf("worlds must grow with x: %v", cells)
	}
	if cells[1].SizeMB <= 0 {
		t.Fatal("size must be positive")
	}
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Fatal("report header missing")
	}
}

func TestFigure11Driver(t *testing.T) {
	var sb strings.Builder
	cells, err := Figure11(0.01, tinyGrid(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 3 queries × 1 z × 2 x
		t.Fatalf("want 6 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.ReprRows < c.Distinct {
			t.Fatalf("representation rows can never undercut distinct tuples: %+v", c)
		}
	}
}

func TestFigure12Driver(t *testing.T) {
	var sb strings.Builder
	cells, err := Figure12(tinyGrid(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("want 6 cells, got %d", len(cells))
	}
	for _, c := range cells {
		if c.Median <= 0 {
			t.Fatalf("non-positive timing: %+v", c)
		}
	}
}

func TestFigure13And10Drivers(t *testing.T) {
	s, err := Figure13(0.01, 0.01, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Join", "u_lineitem_l_shipdate", "u_lineitem_l_extendedprice"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 13 plan should mention %q:\n%s", want, s)
		}
	}
	s10, err := Figure10(0.01, 0.01, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s10, "u_customer_c_mktsegment") {
		t.Errorf("Figure 10 plan should touch the mktsegment partition:\n%s", s10)
	}
}

func TestFigure14Driver(t *testing.T) {
	var sb strings.Builder
	cells, err := Figure14([]float64{0.01}, []float64{0.01}, 0.1, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(cells))
	}
	c := cells[0]
	if c.TupleRows < c.AttrRows/12 {
		// lineitem has 11 columns; tuple-level rows ≥ #tuples.
		t.Logf("tuple rows %d, attr rows %d", c.TupleRows, c.AttrRows)
	}
	if c.AttrTime <= 0 || c.TupleTime <= 0 || c.ULDBTime <= 0 {
		t.Fatalf("timings must be positive: %+v", c)
	}
}

func TestSuccinctnessDriver(t *testing.T) {
	rows, err := Succinctness([]int{3, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].URelRows != 6 || rows[0].WSDLocal != 8 {
		t.Fatalf("n=3: want 6 rows / 8 local worlds, got %+v", rows[0])
	}
	if rows[1].URelRows != 12 || rows[1].WSDLocal != 64 {
		t.Fatalf("n=6: want 12 rows / 64 local worlds, got %+v", rows[1])
	}
	if rows[0].OrSetULDBAlts <= rows[0].OrSetURelRows {
		t.Fatalf("or-set ULDB must be larger: %+v", rows[0])
	}
}

func TestRunQueryMeasurement(t *testing.T) {
	db, _, err := tpch.Generate(tpch.DefaultParams(0.01, 0.01, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunQuery(db, "Q2", tpch.Q2(), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed <= 0 || m.ReprRows < m.Distinct {
		t.Fatalf("bad measurement: %+v", m)
	}
}
