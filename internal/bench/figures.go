package bench

import (
	"io"
	"time"

	"urel/internal/engine"
	"urel/internal/tpch"
	"urel/internal/uldb"
	"urel/internal/wsd"
)

// Fig9Cell is one (scale, z, x) measurement of Figure 9: world count,
// maximum local worlds, database size.
type Fig9Cell struct {
	Scale, Z, X    float64
	Log10Worlds    float64
	MaxLocalWorlds int
	SizeMB         float64
}

// Figure9 reproduces the paper's Figure 9 table: for every (scale, z)
// pair the base (x=0) database size plus, per uncertainty ratio x, the
// total number of worlds (as 10^k), the maximum number of local worlds
// of a variable, and the representation size.
func Figure9(g Grid, w io.Writer) ([]Fig9Cell, error) {
	cache := newCache(g)
	defer cache.Close()
	var out []Fig9Cell
	fprintf(w, "Figure 9: world counts and database sizes\n")
	fprintf(w, "%-6s %-5s | %-8s | %s\n", "scale", "z", "x=0 MB",
		"per x: log10(#worlds)  lworlds  MB")
	for _, s := range g.Scales {
		for _, z := range g.Zs {
			_, base, err := cache.get(g.params(s, 0, z))
			if err != nil {
				return nil, err
			}
			fprintf(w, "%-6g %-5g | %8.2f |", s, z, mb(base.SizeBytes))
			for _, x := range g.Xs {
				_, st, err := cache.get(g.params(s, x, z))
				if err != nil {
					return nil, err
				}
				cell := Fig9Cell{
					Scale: s, Z: z, X: x,
					Log10Worlds:    st.Log10Worlds,
					MaxLocalWorlds: st.MaxLocalWorlds,
					SizeMB:         mb(st.SizeBytes),
				}
				out = append(out, cell)
				fprintf(w, "  [x=%g] 10^%.1f  %d  %.2f", x,
					cell.Log10Worlds, cell.MaxLocalWorlds, cell.SizeMB)
			}
			fprintf(w, "\n")
		}
	}
	return out, nil
}

// Fig11Cell is one answer-size measurement of Figure 11.
type Fig11Cell struct {
	Query    string
	Z, X     float64
	ReprRows int
	Distinct int
}

// Figure11 reproduces the answer-size plots: for each query, answer
// sizes as a function of the uncertainty ratio, one series per
// correlation ratio, at the given scale.
func Figure11(scale float64, g Grid, w io.Writer) ([]Fig11Cell, error) {
	cache := newCache(g)
	defer cache.Close()
	var out []Fig11Cell
	fprintf(w, "Figure 11: query answer sizes at scale %g\n", scale)
	fprintf(w, "%-5s %-5s %-7s %12s %12s\n", "query", "z", "x", "repr rows", "distinct")
	for _, name := range []string{"Q1", "Q2", "Q3"} {
		q := tpch.Queries()[name]
		for _, z := range g.Zs {
			for _, x := range g.Xs {
				db, _, err := cache.get(g.params(scale, x, z))
				if err != nil {
					return nil, err
				}
				m, err := RunQuery(db, name, q, engine.ExecConfig{})
				if err != nil {
					return nil, err
				}
				cell := Fig11Cell{Query: name, Z: z, X: x,
					ReprRows: m.ReprRows, Distinct: m.Distinct}
				out = append(out, cell)
				fprintf(w, "%-5s %-5g %-7g %12d %12d\n", name, z, x, m.ReprRows, m.Distinct)
			}
		}
	}
	return out, nil
}

// Fig12Cell is one timing measurement of Figure 12.
type Fig12Cell struct {
	Query       string
	Scale, Z, X float64
	Median      time.Duration
}

// Figure12 reproduces the nine log-log timing panels: median evaluation
// time of each query as a function of scale, one panel per (query, z),
// one series per x.
func Figure12(g Grid, w io.Writer) ([]Fig12Cell, error) {
	cache := newCache(g)
	defer cache.Close()
	var out []Fig12Cell
	fprintf(w, "Figure 12: query evaluation times (median of %d runs)\n", g.Reps)
	fprintf(w, "%-5s %-5s %-7s %-6s %12s\n", "query", "z", "x", "scale", "median")
	for _, name := range []string{"Q1", "Q2", "Q3"} {
		q := tpch.Queries()[name]
		for _, z := range g.Zs {
			for _, x := range g.Xs {
				for _, s := range g.Scales {
					db, _, err := cache.get(g.params(s, x, z))
					if err != nil {
						return nil, err
					}
					var times []time.Duration
					for r := 0; r < g.Reps; r++ {
						m, err := RunQuery(db, name, q, engine.ExecConfig{})
						if err != nil {
							return nil, err
						}
						times = append(times, m.Elapsed)
					}
					cell := Fig12Cell{Query: name, Scale: s, Z: z, X: x, Median: median(times)}
					out = append(out, cell)
					fprintf(w, "%-5s %-5g %-7g %-6g %12s\n", name, z, x, s, cell.Median)
				}
			}
		}
	}
	return out, nil
}

// Figure13 renders the engine's optimized physical plan for the
// translated Q2 — the analogue of the PostgreSQL EXPLAIN output in the
// paper's Figure 13.
func Figure13(scale, x, z float64, w io.Writer) (string, error) {
	db, _, err := tpch.Generate(tpch.DefaultParams(scale, x, z))
	if err != nil {
		return "", err
	}
	s, err := db.ExplainQuery(tpch.Q2(), true)
	if err != nil {
		return "", err
	}
	fprintf(w, "Figure 13: optimized plan for translated Q2 (s=%g x=%g z=%g)\n%s", scale, x, z, s)
	return s, nil
}

// Figure10 renders the optimized plan for Q1, whose shape shows the
// merge placement (the paper's Figure 10 merge-aware plan).
func Figure10(scale, x, z float64, w io.Writer) (string, error) {
	db, _, err := tpch.Generate(tpch.DefaultParams(scale, x, z))
	if err != nil {
		return "", err
	}
	s, err := db.ExplainQuery(tpch.Q1(), true)
	if err != nil {
		return "", err
	}
	fprintf(w, "Figure 10: optimized plan for translated Q1 (s=%g x=%g z=%g)\n%s", scale, x, z, s)
	return s, nil
}

// Fig14Cell compares one configuration across the three
// representations (attribute-level U-relations, tuple-level
// U-relations, ULDB).
type Fig14Cell struct {
	Scale, X  float64
	AttrTime  time.Duration
	TupleTime time.Duration
	ULDBTime  time.Duration
	AttrRows  int // representation sizes of the lineitem relation
	TupleRows int
	ULDBAlts  int
}

// Figure14 reproduces the attribute- vs tuple-level vs ULDB comparison
// on Q3 without the poss operator and without erroneous-tuple removal,
// exactly the regime of the paper's Figure 14.
func Figure14(scales []float64, xs []float64, z float64, w io.Writer) ([]Fig14Cell, error) {
	var out []Fig14Cell
	fprintf(w, "Figure 14: Q3 (no poss) on attribute-level vs tuple-level vs ULDB (z=%g)\n", z)
	fprintf(w, "%-6s %-7s %12s %12s %12s %10s %10s %10s\n",
		"scale", "x", "attr", "tuple", "uldb", "attrRows", "tupleRows", "uldbAlts")
	for _, x := range xs {
		for _, s := range scales {
			cell, err := figure14Cell(s, x, z)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
			fprintf(w, "%-6g %-7g %12s %12s %12s %10d %10d %10d\n",
				s, x, cell.AttrTime, cell.TupleTime, cell.ULDBTime,
				cell.AttrRows, cell.TupleRows, cell.ULDBAlts)
		}
	}
	return out, nil
}

func figure14Cell(s, x, z float64) (Fig14Cell, error) {
	db, _, err := tpch.Generate(tpch.DefaultParams(s, x, z))
	if err != nil {
		return Fig14Cell{}, err
	}
	cell := Fig14Cell{Scale: s, X: x}
	q := tpch.Q3NoPoss()

	// Attribute-level evaluation.
	start := time.Now()
	plan, _, err := db.Translate(q)
	if err != nil {
		return Fig14Cell{}, err
	}
	rel, err := engine.Run(plan, engine.NewCatalog(), engine.ExecConfig{})
	if err != nil {
		return Fig14Cell{}, err
	}
	cell.AttrTime = time.Since(start)
	_ = rel
	for _, p := range db.Rels["lineitem"].Parts {
		cell.AttrRows += len(p.Rows)
	}

	// Tuple-level evaluation.
	tl, err := tpch.TupleLevelDB(db)
	if err != nil {
		return Fig14Cell{}, err
	}
	cell.TupleRows = len(tl.Rels["lineitem"].Parts[0].Rows)
	start = time.Now()
	plan, _, err = tl.Translate(q)
	if err != nil {
		return Fig14Cell{}, err
	}
	if _, err = engine.Run(plan, engine.NewCatalog(), engine.ExecConfig{}); err != nil {
		return Fig14Cell{}, err
	}
	cell.TupleTime = time.Since(start)

	// ULDB evaluation (lineage propagation, no minimization).
	udb, err := tpch.ULDBFromTupleLevel(tl)
	if err != nil {
		return Fig14Cell{}, err
	}
	cell.ULDBAlts = udb.Rels["lineitem"].NumAlternatives()
	start = time.Now()
	if err := runQ3ULDB(udb); err != nil {
		return Fig14Cell{}, err
	}
	cell.ULDBTime = time.Since(start)
	return cell, nil
}

// runQ3ULDB evaluates Q3's join tree with lineage propagation over the
// ULDB encoding.
func runQ3ULDB(db *uldb.DB) error {
	ids := uldb.NewIDGen(1 << 50)
	eq := func(a, b string) engine.Expr { return engine.EqCols(a, b) }
	sl, err := uldb.Join(db.Rels["supplier"], db.Rels["lineitem"], eq("s_suppkey", "l_suppkey"), ids)
	if err != nil {
		return err
	}
	sl, err = uldb.Project(sl, []string{"s_nationkey", "l_orderkey"}, ids)
	if err != nil {
		return err
	}
	slo, err := uldb.Join(sl, db.Rels["orders"], eq("l_orderkey", "o_orderkey"), ids)
	if err != nil {
		return err
	}
	slo, err = uldb.Project(slo, []string{"s_nationkey", "o_custkey"}, ids)
	if err != nil {
		return err
	}
	sloc, err := uldb.Join(slo, db.Rels["customer"], eq("o_custkey", "c_custkey"), ids)
	if err != nil {
		return err
	}
	sloc, err = uldb.Project(sloc, []string{"s_nationkey", "c_nationkey"}, ids)
	if err != nil {
		return err
	}
	n1, err := uldb.Select(db.Rels["nation"],
		engine.Cmp(engine.EQ, engine.Col("n_name"), engine.ConstStr("GERMANY")), ids)
	if err != nil {
		return err
	}
	n2, err := uldb.Select(db.Rels["nation"],
		engine.Cmp(engine.EQ, engine.Col("n_name"), engine.ConstStr("IRAQ")), ids)
	if err != nil {
		return err
	}
	n2 = renameULDB(n2, map[string]string{
		"n_nationkey": "n2_nationkey", "n_name": "n2_name", "n_regionkey": "n2_regionkey"})
	j1, err := uldb.Join(sloc, n1, eq("s_nationkey", "n_nationkey"), ids)
	if err != nil {
		return err
	}
	j1, err = uldb.Project(j1, []string{"c_nationkey", "n_name"}, ids)
	if err != nil {
		return err
	}
	j2, err := uldb.Join(j1, n2, eq("c_nationkey", "n2_nationkey"), ids)
	if err != nil {
		return err
	}
	_, err = uldb.Project(j2, []string{"n_name", "n2_name"}, ids)
	return err
}

func renameULDB(r *uldb.Relation, m map[string]string) *uldb.Relation {
	attrs := make([]string, len(r.Attrs))
	for i, a := range r.Attrs {
		if n, ok := m[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	r.Attrs = attrs
	return r
}

// SuccinctnessRow is one n of the Figures 6/7 chain experiment plus the
// or-set (Theorem 5.6) measurement.
type SuccinctnessRow struct {
	N             int
	URelRows      int // σ_{A=B}(R) result size as U-relation (2n)
	WSDLocal      int // local worlds of the normalized/WSD answer (2^n)
	OrSetURelRows int // or-set: U-relation rows (n·arity·k)
	OrSetULDBAlts int // or-set: ULDB alternatives (n·k^arity)
}

// Succinctness reproduces the separations of Section 5: the chain
// world-set's σ_{A=B} answer is linear as a U-relation and exponential
// as a WSD (Theorem 5.2 / Figure 7); or-set relations are linear as
// U-relations and exponential (in arity) as ULDBs (Theorem 5.6).
func Succinctness(ns []int, w io.Writer) ([]SuccinctnessRow, error) {
	fprintf(w, "Figures 6/7 + Theorems 5.2/5.6: succinctness separations\n")
	fprintf(w, "%-4s %10s %12s %14s %14s\n", "n", "urel rows", "wsd local",
		"orset urel", "orset uldb")
	var out []SuccinctnessRow
	for _, n := range ns {
		res, err := wsd.ChainSelectResult(n)
		if err != nil {
			return nil, err
		}
		lw, err := wsd.NormalizedLocalWorlds(res)
		if err != nil {
			return nil, err
		}
		const arity, k = 4, 3
		orUDB := uldb.OrSetUDB(n, arity, k)
		orULDB := uldb.OrSetULDB(n, arity, k)
		orRows := 0
		for _, name := range orUDB.RelNames() {
			for _, p := range orUDB.Rels[name].Parts {
				orRows += len(p.Rows)
			}
		}
		row := SuccinctnessRow{
			N:             n,
			URelRows:      res.Len(),
			WSDLocal:      lw,
			OrSetURelRows: orRows,
			OrSetULDBAlts: orULDB.Rels["r"].NumAlternatives(),
		}
		out = append(out, row)
		fprintf(w, "%-4d %10d %12d %14d %14d\n", n, row.URelRows, row.WSDLocal,
			row.OrSetURelRows, row.OrSetULDBAlts)
	}
	return out, nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
