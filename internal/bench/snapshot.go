package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"urel/internal/core"
	"urel/internal/store"
	"urel/internal/tpch"
)

// statsName is the per-snapshot sidecar carrying the generator's
// Figure 9 statistics, which are a property of generation and cannot
// be recomputed cheaply from the stored representation.
const statsName = "stats.json"

// SnapshotDir returns the directory of one dataset inside a snapshot
// root: one subdirectory per parameter point, keyed by every knob that
// affects generation (including the k/dom/window shape parameters, so
// non-default generator configurations cannot collide).
func SnapshotDir(root string, p tpch.Params) string {
	return filepath.Join(root, fmt.Sprintf("s%g_x%g_z%g_m%d_p%g_k%d_dom%d_w%d_seed%d",
		p.Scale, p.Uncertainty, p.Correlation, p.MaxAlternatives, p.SurvivalP,
		p.MaxDFC, p.MaxDomain, p.Window, p.Seed))
}

// SaveSnapshot generates (or reuses) one dataset and persists it with
// its statistics under dir.
func SaveSnapshot(db *core.UDB, st tpch.Stats, dir string) error {
	if err := store.Save(db, dir); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(&st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, statsName), append(buf, '\n'), 0o644)
}

// LoadSnapshot opens a stored dataset (segment-backed, lazily
// scanned) together with its generator statistics. A missing sidecar
// degrades to statistics derived from the representation itself.
func LoadSnapshot(dir string) (*core.UDB, tpch.Stats, error) {
	db, err := store.Open(dir)
	if err != nil {
		return nil, tpch.Stats{}, err
	}
	var st tpch.Stats
	if buf, err := os.ReadFile(filepath.Join(dir, statsName)); err == nil {
		if err := json.Unmarshal(buf, &st); err != nil {
			db.Close()
			return nil, tpch.Stats{}, fmt.Errorf("bench: %s: bad stats sidecar: %w", dir, err)
		}
	} else {
		st.Log10Worlds = db.W.Log10Worlds()
		st.MaxLocalWorlds = db.W.MaxDomainSize()
		st.SizeBytes = db.SizeBytes()
	}
	return db, st, nil
}

// SaveGrid generates every dataset the grid's figures touch — each
// (scale, z) pair at x = 0 and at every x of the sweep — and saves
// them under root, skipping datasets already present. Saved snapshots
// are reproducible: the same grid (and seed) always writes the same
// databases.
func SaveGrid(g Grid, root string, w io.Writer) error {
	var params []tpch.Params
	for _, s := range g.Scales {
		for _, z := range g.Zs {
			params = append(params, g.params(s, 0, z))
			for _, x := range g.Xs {
				params = append(params, g.params(s, x, z))
			}
		}
	}
	for _, p := range params {
		dir := SnapshotDir(root, p)
		if _, err := os.Stat(filepath.Join(dir, store.CatalogName)); err == nil {
			fprintf(w, "snapshot %s: already present\n", filepath.Base(dir))
			continue
		}
		start := time.Now()
		db, st, err := tpch.Generate(p)
		if err != nil {
			return err
		}
		if err := SaveSnapshot(db, st, dir); err != nil {
			return err
		}
		fprintf(w, "snapshot %s: saved in %s (%.2f MB)\n",
			filepath.Base(dir), time.Since(start).Round(time.Millisecond), mb(st.SizeBytes))
	}
	return nil
}
