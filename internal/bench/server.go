package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"urel/internal/server"
)

// ThroughputQueries is the fixed mixed-mode statement set of the
// server throughput benchmark (possible/certain/plain over the
// uncertain TPC-H schema).
var ThroughputQueries = []string{
	"possible select l_extendedprice from lineitem where l_quantity < 24",
	"possible select c_mktsegment from customer where c_custkey < 10",
	"certain select c_mktsegment from customer where c_custkey < 5",
	"select n_name from nation where n_nationkey < 3",
}

// ServerThroughput boots a query server over the stored database in
// dir (shared segment cache attached) and fires total queries from
// `concurrency` client goroutines round-robin over the statement set,
// returning sustained queries/sec. Every response must be HTTP 200 —
// admission control is sized so the benchmark measures throughput,
// not shedding.
func ServerThroughput(dir string, queries []string, concurrency, total int) (float64, error) {
	s, err := server.New(server.Config{
		Catalogs:      map[string]string{"bench": dir},
		MaxConcurrent: concurrency,
		QueueWait:     time.Minute,
	})
	if err != nil {
		return 0, err
	}
	defer s.Close()
	qps, _, err := throughputAgainst(s, queries, concurrency, total)
	return qps, err
}

// throughputAgainst drives the client loop against an already-built
// server (a plain catalog server or a coordinator — the request shape
// is identical, which is the point of the router/executor split). It
// returns both the rate and the elapsed wall time of the timed section
// (boot and warm-up excluded — the cluster projection sums the latter
// across nodes).
func throughputAgainst(s *server.Server, queries []string, concurrency, total int) (float64, time.Duration, error) {
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	run := func(sql string) error {
		body, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := client.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("bench: server returned %d: %v", resp.StatusCode, e)
		}
		return nil
	}

	// Warm the plan cache and the segment cache once per DISTINCT
	// statement, so the measurement reflects steady-state serving.
	warmed := map[string]bool{}
	for _, q := range queries {
		if warmed[q] {
			continue
		}
		warmed[q] = true
		if err := run(q); err != nil {
			return 0, 0, err
		}
	}

	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				if err := run(queries[i%int64(len(queries))]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return 0, 0, err
	}
	return float64(total) / elapsed.Seconds(), elapsed, nil
}
