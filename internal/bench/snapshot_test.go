package bench

import (
	"io"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/tpch"
)

func snapGrid() Grid {
	return Grid{Scales: []float64{0.01}, Zs: []float64{0.25}, Xs: []float64{0.01}, Reps: 1, Seed: 7}
}

// TestSaveGridAndFigure12FromDisk is the acceptance check: saving the
// grid's datasets and re-running the Figure 12 pipeline from disk must
// produce results multiset-equal to the in-memory run, for every
// benchmark query, serial and parallel.
func TestSaveGridAndFigure12FromDisk(t *testing.T) {
	g := snapGrid()
	root := t.TempDir()
	if err := SaveGrid(g, root, io.Discard); err != nil {
		t.Fatalf("SaveGrid: %v", err)
	}
	// Saving twice is a no-op (snapshots are detected and skipped).
	if err := SaveGrid(g, root, io.Discard); err != nil {
		t.Fatalf("SaveGrid (again): %v", err)
	}

	p := g.params(0.01, 0.01, 0.25)
	memDB, memSt, err := tpch.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	stored, st, err := LoadSnapshot(SnapshotDir(root, p))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	defer stored.Close()
	if st.Log10Worlds != memSt.Log10Worlds || st.Rows["orders"] != memSt.Rows["orders"] {
		t.Fatalf("stats sidecar mismatch: %+v vs %+v", st, memSt)
	}

	for name, q := range tpch.Queries() {
		inner := core.StripPoss(q)
		memPlan, memLay, err := memDB.Translate(inner)
		if err != nil {
			t.Fatalf("%s: translate mem: %v", name, err)
		}
		memRel, err := engine.Run(memPlan, engine.NewCatalog(), engine.ExecConfig{})
		if err != nil {
			t.Fatalf("%s: run mem: %v", name, err)
		}
		_ = memLay
		for _, cfg := range []engine.ExecConfig{
			{},
			{Parallelism: 3, ParallelThreshold: 1},
		} {
			stPlan, _, err := stored.Translate(inner)
			if err != nil {
				t.Fatalf("%s: translate stored: %v", name, err)
			}
			stRel, err := engine.Run(stPlan, engine.NewCatalog(), cfg)
			if err != nil {
				t.Fatalf("%s: run stored (cfg %+v): %v", name, cfg, err)
			}
			if !memRel.EqualAsBag(stRel) {
				t.Fatalf("%s cfg %+v: Figure 12 results from disk differ from in-memory (%d vs %d rows)",
					name, cfg, memRel.Len(), stRel.Len())
			}
		}
	}

	// The Figure 12 driver itself runs against the snapshot directory.
	g.Dir = root
	cells, err := Figure12(g, io.Discard)
	if err != nil {
		t.Fatalf("Figure12 from disk: %v", err)
	}
	if len(cells) != 3 { // Q1..Q3 at one (s, z, x) point
		t.Fatalf("Figure12 produced %d cells, want 3", len(cells))
	}
}

// TestSnapshotSeedReproducible checks the -seed satellite: the same
// seed yields byte-identical representation contents across saves.
func TestSnapshotSeedReproducible(t *testing.T) {
	g := snapGrid()
	p := g.params(0.01, 0.01, 0.25)
	db1, _, err := tpch.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	db2, _, err := tpch.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	q := tpch.Queries()["Q1"]
	r1, err := db1.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.EqualAsBag(r2) {
		t.Fatal("same seed produced different databases")
	}
	// A different seed produces a different world-set (overwhelmingly).
	g2 := g
	g2.Seed = 99
	p2 := g2.params(0.01, 0.01, 0.25)
	if p2.Seed != 99 {
		t.Fatalf("grid seed not honored: %d", p2.Seed)
	}
}
