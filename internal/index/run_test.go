package index

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"urel/internal/engine"
)

func TestRunLookupRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, segRows = 10_000, 512
	keys := make([]engine.Value, n)
	for i := range keys {
		switch rng.Intn(10) {
		case 0:
			keys[i] = engine.Null()
		case 1:
			keys[i] = engine.Str("k" + string(rune('a'+rng.Intn(26))))
		default:
			keys[i] = engine.Int(int64(rng.Intn(3000)))
		}
	}
	run := BuildRun(keys, segRows)

	// Round-trip through the file format.
	path := filepath.Join(t.TempDir(), "r.idx")
	if err := run.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	probe := func(r *Run, key engine.Value) map[Loc]bool {
		got := map[Loc]bool{}
		for _, loc := range r.Lookup(key, nil) {
			got[loc] = true
		}
		return got
	}
	for trial := 0; trial < 500; trial++ {
		key := engine.Int(int64(rng.Intn(3500)))
		want := map[Loc]bool{}
		for i, k := range keys {
			if engine.Compare(k, key) == 0 {
				want[Loc{Seg: int32(i / segRows), Row: int32(i % segRows)}] = true
			}
		}
		for name, r := range map[string]*Run{"built": run, "loaded": loaded} {
			got := probe(r, key)
			if len(got) != len(want) {
				t.Fatalf("%s: key %v: got %d locs, want %d", name, key, len(got), len(want))
			}
			for loc := range want {
				if !got[loc] {
					t.Fatalf("%s: key %v: missing loc %+v", name, key, loc)
				}
			}
		}
	}

	// NULL never matches.
	if locs := run.Lookup(engine.Null(), nil); len(locs) != 0 {
		t.Fatalf("NULL probe returned %d locs", len(locs))
	}
}

func TestRunBloomRejections(t *testing.T) {
	keys := make([]engine.Value, 4096)
	for i := range keys {
		keys[i] = engine.Int(int64(i * 2)) // evens only
	}
	run := BuildRun(keys, 1024)
	var st LookupStats
	misses := 0
	for k := int64(1); k < 20001; k += 2 { // odd probes: all absent
		if locs := run.Lookup(engine.Int(k), &st); len(locs) != 0 {
			t.Fatalf("absent key %d returned %d locs", k, len(locs))
		}
		misses++
	}
	if st.RunsConsulted != int64(misses) {
		t.Fatalf("RunsConsulted = %d, want %d", st.RunsConsulted, misses)
	}
	// ~1% false-positive rate at 10 bits/key: the overwhelming majority
	// of absent probes must be rejected by the blooms alone.
	if st.BloomRejections < int64(misses)*9/10 {
		t.Fatalf("bloom rejected %d of %d absent probes, want ≥ 90%%", st.BloomRejections, misses)
	}
}

func TestRunCorruptionDetected(t *testing.T) {
	keys := []engine.Value{engine.Int(1), engine.Int(2), engine.Str("x")}
	run := BuildRun(keys, 2)
	data := run.Marshal()
	if _, err := Unmarshal(data); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func([]byte) []byte{
		func(b []byte) []byte { b[len(b)/2] ^= 0xFF; return b }, // flipped byte
		func(b []byte) []byte { return b[:len(b)-3] },           // truncated
		func(b []byte) []byte { b[0] = 'X'; return b },          // bad magic
	} {
		b := mut(append([]byte(nil), data...))
		if _, err := Unmarshal(b); err == nil {
			t.Fatal("corrupt run decoded without error")
		}
	}
	// A corrupt file on disk surfaces the same way.
	path := filepath.Join(t.TempDir(), "bad.idx")
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("corrupt run file loaded without error")
	}
}
