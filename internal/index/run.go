package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"

	"urel/internal/engine"
)

// Run file layout (multi-byte integers are varints unless noted fixed):
//
//	runMagic
//	uvarint #segments; per segment: uvarint #words, words (fixed64 each)
//	uvarint #entries; per entry: tagged key, uvarint segment, uvarint row
//	crc32 (fixed32) over everything above
//
// Entries are sorted by key under engine.Compare (ties by locator), so
// an equality probe is one binary search and a sort-merge join can
// stream the run in key order.
const runMagic = "URIDXv1\n"

// ErrCorruptRun reports a structurally invalid, truncated, or
// checksum-failing index run file.
var ErrCorruptRun = errors.New("index: corrupt run file")

// Loc locates one row inside a segment file: segment ordinal and row
// ordinal within the segment.
type Loc struct {
	Seg int32
	Row int32
}

// LookupStats accumulates side statistics of equality probes, surfaced
// in traces (runs consulted, whole runs rejected by bloom filters) and
// the urel_index_* metric families.
type LookupStats struct {
	RunsConsulted   int64
	BloomRejections int64
	Hits            int64
}

// Run is an immutable sorted-run index over one layer file: every
// non-null key of the indexed column, sorted, with its row locator,
// plus one bloom filter per segment for equality keys.
type Run struct {
	keys   []engine.Value
	locs   []Loc
	blooms []bloom
	ndv    int // distinct keys; derived after sorting (0 when empty)
}

// Builder accumulates per-segment key columns in storage order and
// finalizes them into a Run. It handles arbitrary per-segment row
// counts (a file's last segment is usually partial), which is what
// building from an already-written segment file needs.
type Builder struct {
	r Run
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Segment appends the key column of the next segment, in row order.
// Null keys are skipped — an equality probe can never match NULL.
func (b *Builder) Segment(keys []engine.Value) {
	si := len(b.r.blooms)
	n := 0
	for _, k := range keys {
		if !k.IsNull() {
			n++
		}
	}
	bl := newBloom(n)
	for row, k := range keys {
		if k.IsNull() {
			continue
		}
		b.r.keys = append(b.r.keys, k)
		b.r.locs = append(b.r.locs, Loc{Seg: int32(si), Row: int32(row)})
		bl.add(hashKey(k))
	}
	b.r.blooms = append(b.r.blooms, bl)
}

// Run sorts the accumulated entries and returns the finished run. The
// builder must not be reused afterwards.
func (b *Builder) Run() *Run {
	r := &b.r
	r.sortEntries()
	r.deriveNDV()
	return r
}

// BuildRun indexes keys given in storage order under uniform chunking:
// key i lives at segment i/segRows, row i%segRows — exactly how
// WritePartition chunks rows into segments.
func BuildRun(keys []engine.Value, segRows int) *Run {
	if segRows <= 0 {
		segRows = 1
	}
	b := NewBuilder()
	for start := 0; start < len(keys); start += segRows {
		end := start + segRows
		if end > len(keys) {
			end = len(keys)
		}
		b.Segment(keys[start:end])
	}
	return b.Run()
}

// deriveNDV counts distinct keys by one pass over the sorted entries.
func (r *Run) deriveNDV() {
	n := 0
	for i := range r.keys {
		if i == 0 || engine.Compare(r.keys[i], r.keys[i-1]) != 0 {
			n++
		}
	}
	r.ndv = n
}

// NDV returns the number of distinct indexed keys (the run's exact
// per-layer statistic, feeding lookup-cardinality estimates).
func (r *Run) NDV() int { return r.ndv }

func (r *Run) sortEntries() {
	sort.Sort(runSorter{r})
}

type runSorter struct{ r *Run }

func (s runSorter) Len() int { return len(s.r.keys) }
func (s runSorter) Less(i, j int) bool {
	if c := engine.Compare(s.r.keys[i], s.r.keys[j]); c != 0 {
		return c < 0
	}
	if s.r.locs[i].Seg != s.r.locs[j].Seg {
		return s.r.locs[i].Seg < s.r.locs[j].Seg
	}
	return s.r.locs[i].Row < s.r.locs[j].Row
}
func (s runSorter) Swap(i, j int) {
	s.r.keys[i], s.r.keys[j] = s.r.keys[j], s.r.keys[i]
	s.r.locs[i], s.r.locs[j] = s.r.locs[j], s.r.locs[i]
}

// Len returns the number of indexed (non-null) keys.
func (r *Run) Len() int { return len(r.keys) }

// Entry returns the i-th entry in key order (the sorted-run order a
// merge join streams).
func (r *Run) Entry(i int) (engine.Value, Loc) { return r.keys[i], r.locs[i] }

// Segments returns the number of per-segment bloom filters.
func (r *Run) Segments() int { return len(r.blooms) }

// Lookup returns the locators of every row whose key equals key, in
// (segment, row) order. The per-segment bloom filters run first: a run
// none of whose segments can contain the key is rejected without
// touching the sorted entries at all.
func (r *Run) Lookup(key engine.Value, st *LookupStats) []Loc {
	if st != nil {
		st.RunsConsulted++
	}
	if key.IsNull() || len(r.keys) == 0 {
		return nil
	}
	h := hashKey(key)
	any := false
	for _, b := range r.blooms {
		if b.has(h) {
			any = true
			break
		}
	}
	if !any {
		if st != nil {
			st.BloomRejections++
		}
		return nil
	}
	lo := sort.Search(len(r.keys), func(i int) bool {
		return engine.Compare(r.keys[i], key) >= 0
	})
	hi := lo
	for hi < len(r.keys) && engine.Compare(r.keys[hi], key) == 0 {
		hi++
	}
	if lo == hi {
		return nil
	}
	out := make([]Loc, hi-lo)
	copy(out, r.locs[lo:hi])
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seg != out[j].Seg {
			return out[i].Seg < out[j].Seg
		}
		return out[i].Row < out[j].Row
	})
	if st != nil {
		st.Hits += int64(len(out))
	}
	return out
}

// SegmentMayContain reports whether the segment's bloom filter admits
// the key — the per-segment gate a scan fallback can use even when it
// will not consult the sorted entries.
func (r *Run) SegmentMayContain(seg int, key engine.Value) bool {
	if seg < 0 || seg >= len(r.blooms) {
		return false
	}
	return r.blooms[seg].has(hashKey(key))
}

// Marshal encodes the run into its file format.
func (r *Run) Marshal() []byte {
	b := []byte(runMagic)
	b = binary.AppendUvarint(b, uint64(len(r.blooms)))
	for _, bl := range r.blooms {
		b = binary.AppendUvarint(b, uint64(len(bl.words)))
		for _, w := range bl.words {
			var x [8]byte
			binary.LittleEndian.PutUint64(x[:], w)
			b = append(b, x[:]...)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(r.keys)))
	for i, k := range r.keys {
		b = appendKeyValue(b, k)
		b = binary.AppendUvarint(b, uint64(r.locs[i].Seg))
		b = binary.AppendUvarint(b, uint64(r.locs[i].Row))
	}
	crc := crc32.ChecksumIEEE(b)
	return append(b, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
}

// Unmarshal decodes a run file, validating the checksum.
func Unmarshal(data []byte) (*Run, error) {
	if len(data) < len(runMagic)+4 {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCorruptRun, len(data))
	}
	if string(data[:len(runMagic)]) != runMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptRun)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRun)
	}
	c := &runCursor{b: body, pos: len(runMagic)}
	nsegs, err := c.count(1 << 30)
	if err != nil {
		return nil, err
	}
	r := &Run{blooms: make([]bloom, nsegs)}
	for si := 0; si < nsegs; si++ {
		nw, err := c.count(1 << 28)
		if err != nil {
			return nil, err
		}
		words := make([]uint64, nw)
		for i := range words {
			if words[i], err = c.fixed64(); err != nil {
				return nil, err
			}
		}
		r.blooms[si] = bloom{words: words}
	}
	n, err := c.count(1 << 31)
	if err != nil {
		return nil, err
	}
	r.keys = make([]engine.Value, n)
	r.locs = make([]Loc, n)
	for i := 0; i < n; i++ {
		if r.keys[i], err = c.value(); err != nil {
			return nil, err
		}
		seg, err := c.count(1 << 31)
		if err != nil {
			return nil, err
		}
		row, err := c.count(1 << 31)
		if err != nil {
			return nil, err
		}
		r.locs[i] = Loc{Seg: int32(seg), Row: int32(row)}
	}
	if c.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptRun, len(body)-c.pos)
	}
	r.deriveNDV()
	return r, nil
}

// WriteFile writes the run to path and syncs it, so a subsequently
// committed manifest never references a half-written run.
func (r *Run) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(r.Marshal()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads and decodes a run file.
func Load(path string) (*Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// runCursor decodes the run body, turning every overrun into
// ErrCorruptRun.
type runCursor struct {
	b   []byte
	pos int
}

func (c *runCursor) count(max uint64) (int, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrCorruptRun, c.pos)
	}
	if v > max {
		return 0, fmt.Errorf("%w: count %d exceeds bound %d", ErrCorruptRun, v, max)
	}
	c.pos += n
	return int(v), nil
}

func (c *runCursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorruptRun, c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *runCursor) fixed64() (uint64, error) {
	if c.pos+8 > len(c.b) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorruptRun, c.pos)
	}
	v := binary.LittleEndian.Uint64(c.b[c.pos:])
	c.pos += 8
	return v, nil
}

// appendKeyValue encodes a tagged scalar key.
func appendKeyValue(b []byte, v engine.Value) []byte {
	b = append(b, byte(v.K))
	switch v.K {
	case engine.KindInt, engine.KindBool:
		b = binary.AppendVarint(b, v.I)
	case engine.KindFloat:
		var x [8]byte
		binary.LittleEndian.PutUint64(x[:], math.Float64bits(v.F))
		b = append(b, x[:]...)
	case engine.KindString:
		b = binary.AppendUvarint(b, uint64(len(v.S)))
		b = append(b, v.S...)
	}
	return b
}

func (c *runCursor) value() (engine.Value, error) {
	if c.pos >= len(c.b) {
		return engine.Null(), fmt.Errorf("%w: truncated key at offset %d", ErrCorruptRun, c.pos)
	}
	k := engine.Kind(c.b[c.pos])
	c.pos++
	switch k {
	case engine.KindNull:
		return engine.Null(), nil
	case engine.KindInt:
		i, err := c.varint()
		return engine.Int(i), err
	case engine.KindBool:
		i, err := c.varint()
		return engine.Bool(i != 0), err
	case engine.KindFloat:
		bits, err := c.fixed64()
		return engine.Float(math.Float64frombits(bits)), err
	case engine.KindString:
		n, err := c.count(uint64(len(c.b)))
		if err != nil {
			return engine.Null(), err
		}
		if c.pos+n > len(c.b) {
			return engine.Null(), fmt.Errorf("%w: truncated string key at offset %d", ErrCorruptRun, c.pos)
		}
		s := string(c.b[c.pos : c.pos+n])
		c.pos += n
		return engine.Str(s), nil
	default:
		return engine.Null(), fmt.Errorf("%w: unknown key kind %d", ErrCorruptRun, k)
	}
}
