// Package index implements persistent secondary indexes over the
// columnar segment store: per-layer sorted runs (key → segment/row
// locators) plus per-segment bloom filters for equality keys.
//
// Paper map. The source paper's thesis (Antova, Jansen, Koch, Olteanu,
// "Fast and Simple Relational Processing of Uncertain Data", ICDE
// 2008) is that U-relations are *just relations* — ws-descriptor
// columns, tuple-id columns, and value columns side by side — so every
// piece of conventional relational machinery applies unchanged. This
// package cashes that claim in for indexing: because a vertical
// partition U[D; T; A] is an ordinary table, a secondary index over
// its tuple-id column or any value column is an ordinary secondary
// index, with no uncertainty-specific structure at all. Uncertainty
// stays where the representation puts it — in the descriptor columns
// the lookup path carries along untouched — which is why an index hit
// composes with tombstone layers, the memtable, and confidence
// computation for free. The alternative uncertain-join strategies the
// runs enable (index-nested-loop beside the partitioned hash join,
// sort-merge over sorted runs) instantiate Magnani & Montesi's
// "Joining relations under discrete uncertainty" strategy suite on
// U-relations, picked by the optimizer from estimated cardinalities.
//
// A Run is immutable, built beside a segment file at flush,
// compaction, save, or CREATE INDEX time, and recorded implicitly in
// the v2 manifest: a layer file F with an index on key k owns the
// artifact F.<k>.idx, which crash recovery treats like any other
// unreferenced file (orphans are removed on open, missing or corrupt
// runs degrade that layer's lookups to a pruned scan — never to a
// wrong answer).
package index
