package index

import (
	"encoding/binary"
	"math"

	"urel/internal/engine"
)

// bloomBitsPerKey and bloomHashes size the per-segment filters at
// ~10 bits per key with 7 probes — under 1% false positives, the
// classic engineering point.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// bloom is a standard double-hashing bloom filter over 64-bit key
// hashes. The zero value is an always-empty filter.
type bloom struct {
	words []uint64
}

// newBloom sizes a filter for n keys.
func newBloom(n int) bloom {
	bits := n * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	return bloom{words: make([]uint64, (bits+63)/64)}
}

func (b bloom) add(h uint64) {
	nbits := uint64(len(b.words)) * 64
	h1, h2 := h, h>>32|h<<32
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

func (b bloom) has(h uint64) bool {
	if len(b.words) == 0 {
		return false
	}
	nbits := uint64(len(b.words)) * 64
	h1, h2 := h, h>>32|h<<32
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// hashKey hashes a scalar value for the bloom filters: FNV-1a over a
// canonical kind tag and payload. engine.Compare treats Int and Float
// as one numeric domain, so an integral float in int64 range hashes
// exactly like the equal int — equal values always collide, the one
// property equality probes need. (Bool is its own kind under Compare
// and keeps its own tag.)
func hashKey(v engine.Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	kind := v.K
	payload := uint64(v.I)
	switch v.K {
	case engine.KindFloat:
		if f := v.F; f == math.Trunc(f) && f >= -9.2e18 && f <= 9.2e18 {
			kind = engine.KindInt
			payload = uint64(int64(f))
		} else {
			payload = math.Float64bits(f)
		}
	case engine.KindString:
		h := uint64(offset64)
		h = (h ^ uint64(kind)) * prime64
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * prime64
		}
		return h
	}
	h := uint64(offset64)
	h = (h ^ uint64(kind)) * prime64
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], payload)
	for _, b := range buf {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}
