package sqlparse

import "testing"

// FuzzParse asserts the parser never panics: arbitrary input must
// either parse or return an error. CI runs this as a short -fuzz smoke
// (see the workflow); without -fuzz it replays the seed corpus as a
// regression test.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"select * from r",
		"possible select a, b from r where a = 1",
		"certain select a from r s where s.a < 'x'",
		"conf select o_shippriority from orders where o_orderkey < 8",
		"conf bounds select o_shippriority from orders where o_orderkey < 8",
		"CONF BOUNDS SELECT * FROM r",
		"conf bounds",
		"conf bounds bounds",
		"select bounds from bounds where bounds = 1",
		"select a from r where a between 1 and 2 and not (b = 'y' or c >= 3.5)",
		"select a from r where d = '1995-03-15'",
		"select a from r, s t where r.a = t.b",
		"select",
		"select * from",
		"select * from r where",
		"select * from r trailing",
		"select 'unterminated from r",
		"select a from r where a in (1, 2)",
		"\x00\xff select",
		"insert into r (a, b) values (1, 'x'), (-2, null)",
		"insert into r select b from s where b > 3",
		"delete from r where a = 1",
		"update r set a = 2, b = 'y' where a < -1.5",
		"insert into r values (true, false, '1995-03-15')",
		"insert into r values ((1)",
		"update r set",
		"explain select a from r where a < 3",
		"explain analyze conf bounds select * from r",
		"EXPLAIN ANALYZE POSSIBLE SELECT a FROM r",
		"explain",
		"explain analyze",
		"explain explain select a from r",
		"explain insert into r values (1)",
		"select explain from analyze where explain = 1",
		"create index on r(a)",
		"CREATE INDEX ON orders(o_custkey)",
		"create index on r(a, b)",
		"create index on r()",
		"create index r(a)",
		"create index on r",
		"create",
		"create index",
		"select create from index where create = 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseStatement(src)
		if err == nil && p == nil {
			t.Fatal("nil result without error")
		}
	})
}
