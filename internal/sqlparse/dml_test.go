package sqlparse

import (
	"strings"
	"testing"

	"urel/internal/engine"
)

func TestParseInsertValues(t *testing.T) {
	st, err := ParseStatement("insert into r (a, b) values (1, 'x'), (-2, null)")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := st.(*InsertStmt)
	if !ok {
		t.Fatalf("got %T, want *InsertStmt", st)
	}
	if ins.Table != "r" {
		t.Fatalf("table %q", ins.Table)
	}
	if len(ins.Cols) != 2 || ins.Cols[0] != "a" || ins.Cols[1] != "b" {
		t.Fatalf("cols %v", ins.Cols)
	}
	if len(ins.Rows) != 2 {
		t.Fatalf("%d rows", len(ins.Rows))
	}
	if !engine.Equal(ins.Rows[0][0], engine.Int(1)) || !engine.Equal(ins.Rows[0][1], engine.Str("x")) {
		t.Fatalf("row 0 = %v", ins.Rows[0])
	}
	if !engine.Equal(ins.Rows[1][0], engine.Int(-2)) || !ins.Rows[1][1].IsNull() {
		t.Fatalf("row 1 = %v", ins.Rows[1])
	}
}

func TestParseInsertLiteralKinds(t *testing.T) {
	st, err := ParseStatement("insert into r values (1.5, true, false, '1995-03-15', +7)")
	if err != nil {
		t.Fatal(err)
	}
	row := st.(*InsertStmt).Rows[0]
	if row[0].K != engine.KindFloat || row[0].F != 1.5 {
		t.Fatalf("float literal = %v", row[0])
	}
	if row[1].K != engine.KindBool || row[2].K != engine.KindBool {
		t.Fatalf("bool literals = %v %v", row[1], row[2])
	}
	if !engine.Equal(row[3], engine.MustDate("1995-03-15")) {
		t.Fatalf("date literal = %v", row[3])
	}
	if !engine.Equal(row[4], engine.Int(7)) {
		t.Fatalf("plus literal = %v", row[4])
	}
}

func TestParseInsertSelect(t *testing.T) {
	st, err := ParseStatement("insert into r (a) select b from s where b > 3")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Select == nil || ins.Rows != nil {
		t.Fatalf("want select form, got %+v", ins)
	}
	if _, err := ParseStatement("insert into r certain select b from s"); err == nil {
		t.Fatal("CERTAIN select must be rejected as an insert source")
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	st, err := ParseStatement("delete from r where a = 1 and b <> 'x'")
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*DeleteStmt)
	if del.Table != "r" || del.Where == nil {
		t.Fatalf("%+v", del)
	}

	st, err = ParseStatement("delete from r")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where != nil {
		t.Fatal("unconditional delete must carry a nil Where")
	}

	st, err = ParseStatement("update r set a = 2, b = 'y' where a < 0")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if up.Table != "r" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	if up.Set[0].Col != "a" || !engine.Equal(up.Set[0].Val, engine.Int(2)) {
		t.Fatalf("set[0] = %+v", up.Set[0])
	}
	if up.Set[1].Col != "b" || !engine.Equal(up.Set[1].Val, engine.Str("y")) {
		t.Fatalf("set[1] = %+v", up.Set[1])
	}
}

func TestParseRejectsDMLAsQuery(t *testing.T) {
	_, err := Parse("insert into r values (1)")
	if err == nil || !strings.Contains(err.Error(), "INSERT") {
		t.Fatalf("Parse must reject DML with a pointed error, got %v", err)
	}
}

func TestParseDMLErrors(t *testing.T) {
	for _, src := range []string{
		"insert r values (1)",                   // missing INTO
		"insert into select values (1)",         // keyword table name
		"insert into r values 1",                // missing paren
		"insert into r values (1), (1, 2)",      // mixed arity
		"insert into r (a values (1)",           // unterminated column list
		"insert into r values (select)",         // keyword literal
		"insert into r values (1) trailing",     // trailing input
		"delete r where a = 1",                  // missing FROM
		"delete from where a = 1",               // keyword table name
		"update r a = 1",                        // missing SET
		"update r set a 1",                      // missing '='
		"update r set a = b",                    // non-literal value
		"update r set a = 1 where",              // dangling WHERE
		"insert into r certain select a from s", // wrong mode
		"insert into r values (--1)",            // double negation
		"insert into r values (-'x')",           // negated string
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}
}

func TestParseNegativeNumbersInConditions(t *testing.T) {
	st, err := ParseStatement("select a from r where a > -5")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Parsed); !ok {
		t.Fatalf("got %T", st)
	}
}

func TestParseCreateIndex(t *testing.T) {
	st, err := ParseStatement("CREATE INDEX ON orders(o_custkey)")
	if err != nil {
		t.Fatal(err)
	}
	ci, ok := st.(*CreateIndexStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ci.Table != "orders" || ci.Col != "o_custkey" {
		t.Fatalf("parsed %+v", ci)
	}

	for _, src := range []string{
		"create index r(a)",         // missing ON
		"create index on r",         // missing column
		"create index on r()",       // empty column
		"create index on r(a, b)",   // multi-column unsupported
		"create index on select(a)", // keyword table name
		"create index on r(a) x",    // trailing input
		"create table r (a int)",    // only CREATE INDEX exists
	} {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q) succeeded, want error", src)
		}
	}

	// CREATE and INDEX stay contextual: usable as identifiers.
	if _, err := ParseStatement("select create, index from create where index = 1"); err != nil {
		t.Fatalf("contextual CREATE/INDEX: %v", err)
	}
	if _, err := Parse("create index on r(a)"); err == nil {
		t.Fatal("Parse must reject CREATE INDEX (not a query)")
	}
}
