// Package sqlparse implements a small SQL front-end for the uncertain
// query language of the paper: `[POSSIBLE|CERTAIN] SELECT ... FROM ...
// [WHERE ...]` over the logical schema of a U-relational database. The
// FROM list compiles to a cross product whose WHERE conjuncts the
// engine optimizer absorbs into join conditions and orders — the same
// division of labor the paper relies on ("the query plans obtained by
// our translation scheme are usually handled well by the query
// optimizers of off-the-shelf relational DBMS").
//
// Paper-section map: the POSSIBLE/CERTAIN modes are the poss operator
// of Section 3 and the certain answers of Section 4; lexer.go and
// parser.go build core.Query values that core.UDB.Translate lowers per
// Figure 4.
package sqlparse
