package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"urel/internal/core"
	"urel/internal/engine"
)

// Mode selects the uncertainty semantics wrapping the select.
type Mode uint8

// Query modes.
const (
	// ModePlain returns the result U-relation as-is.
	ModePlain Mode = iota
	// ModePossible computes the set of possible answers (poss).
	ModePossible
	// ModeCertain computes the certain answers.
	ModeCertain
	// ModeConf computes each distinct answer tuple's confidence
	// (Section 7 probabilistic U-relations): exact enumeration over the
	// involved variables where feasible, Monte-Carlo above the cap.
	ModeConf
)

func (m Mode) String() string {
	return [...]string{"plain", "possible", "certain", "conf"}[m]
}

// Parsed is the outcome of parsing one statement.
type Parsed struct {
	Mode  Mode
	Query core.Query
}

// Parse compiles `[POSSIBLE|CERTAIN|CONF] SELECT cols FROM tables
// [WHERE cond]` into the core query algebra. Tables may be aliased
// (`nation n1`), columns may be `alias.attr` or bare `attr`, and `*`
// selects everything. Conditions support comparisons, BETWEEN ... AND
// ..., AND/OR/NOT, parentheses, numeric and string literals; string
// literals shaped like dates ('1995-03-15') become date values.
func Parse(src string) (*Parsed, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	out, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// matchKw consumes an identifier token equal (case-insensitively) to
// kw.
func (p *parser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) matchSym(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseStatement() (*Parsed, error) {
	mode := ModePlain
	switch {
	case p.matchKw("possible"):
		mode = ModePossible
	case p.matchKw("certain"):
		mode = ModeCertain
	case p.matchKw("conf"):
		mode = ModeConf
	}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	star, cols, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	tables, err := p.parseTables()
	if err != nil {
		return nil, err
	}
	var cond engine.Expr
	if p.matchKw("where") {
		cond, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	// Build: left-deep cross product; the optimizer absorbs the WHERE
	// conjuncts into join conditions and orders the joins.
	q := tables[0]
	for _, t := range tables[1:] {
		q = core.Join(q, t, nil)
	}
	if cond != nil {
		q = core.Select(q, cond)
	}
	if !star {
		q = core.Project(q, cols...)
	}
	out := &Parsed{Mode: mode, Query: q}
	if mode == ModePossible {
		out.Query = core.Poss(q)
	}
	return out, nil
}

func (p *parser) parseSelectList() (star bool, cols []string, err error) {
	if p.matchSym("*") {
		return true, nil, nil
	}
	for {
		c, err := p.parseColumnName()
		if err != nil {
			return false, nil, err
		}
		cols = append(cols, c)
		if !p.matchSym(",") {
			return false, cols, nil
		}
	}
}

func (p *parser) parseColumnName() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected column name, found %q", t.text)
	}
	name := t.text
	if p.matchSym(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("sql: expected attribute after %q.", name)
		}
		name = name + "." + t2.text
	}
	return name, nil
}

func (p *parser) parseTables() ([]core.Query, error) {
	var out []core.Query
	for {
		t := p.next()
		if t.kind != tokIdent || isKeyword(t.text) {
			return nil, fmt.Errorf("sql: expected table name, found %q", t.text)
		}
		name := t.text
		alias := ""
		if p.matchKw("as") {
			a := p.next()
			if a.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected alias after AS")
			}
			alias = a.text
		} else if p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			alias = p.next().text
		}
		if alias == "" {
			out = append(out, core.Rel(name))
		} else {
			out = append(out, core.RelAs(name, alias))
		}
		if !p.matchSym(",") {
			return out, nil
		}
	}
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "and", "or", "not", "between", "select", "from", "as",
		"possible", "certain", "conf":
		return true
	}
	return false
}

func (p *parser) parseOr() (engine.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []engine.Expr{l}
	for p.matchKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return engine.Or(args...), nil
}

func (p *parser) parseAnd() (engine.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	args := []engine.Expr{l}
	for p.matchKw("and") {
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return engine.And(args...), nil
}

func (p *parser) parsePrimary() (engine.Expr, error) {
	if p.matchKw("not") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return engine.Not(e), nil
	}
	if p.matchSym("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.matchSym(")") {
			return nil, fmt.Errorf("sql: expected ')'")
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (engine.Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.matchKw("between") {
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return engine.And(
			engine.Cmp(engine.GE, l, lo),
			engine.Cmp(engine.LE, l, hi)), nil
	}
	t := p.next()
	if t.kind != tokSymbol {
		return nil, fmt.Errorf("sql: expected comparison operator, found %q", t.text)
	}
	var op engine.CmpOp
	switch t.text {
	case "=":
		op = engine.EQ
	case "<>":
		op = engine.NE
	case "<":
		op = engine.LT
	case "<=":
		op = engine.LE
	case ">":
		op = engine.GT
	case ">=":
		op = engine.GE
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", t.text)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return engine.Cmp(op, l, r), nil
}

func (p *parser) parseOperand() (engine.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return engine.ConstFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return engine.ConstInt(i), nil
	case tokString:
		p.next()
		// Date-shaped literals become date values so range predicates
		// work, as in the Figure 8 queries.
		if v, err := engine.ParseDate(t.text); err == nil {
			return engine.Const(v), nil
		}
		return engine.ConstStr(t.text), nil
	case tokIdent:
		name, err := p.parseColumnName()
		if err != nil {
			return nil, err
		}
		return engine.Col(name), nil
	default:
		return nil, fmt.Errorf("sql: expected operand, found %q", t.text)
	}
}
