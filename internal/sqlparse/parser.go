package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"urel/internal/core"
	"urel/internal/engine"
)

// Mode selects the uncertainty semantics wrapping the select.
type Mode uint8

// Query modes.
const (
	// ModePlain returns the result U-relation as-is.
	ModePlain Mode = iota
	// ModePossible computes the set of possible answers (poss).
	ModePossible
	// ModeCertain computes the certain answers.
	ModeCertain
	// ModeConf computes each distinct answer tuple's confidence
	// (Section 7 probabilistic U-relations): exact enumeration over the
	// involved variables where feasible, Monte-Carlo above the cap.
	ModeConf
	// ModeConfBounds computes per-tuple certain/possible confidence
	// bounds in one relational pass (no enumeration, no sampling).
	ModeConfBounds
)

func (m Mode) String() string {
	return [...]string{"plain", "possible", "certain", "conf", "conf-bounds"}[m]
}

// Parsed is the outcome of parsing one query statement.
type Parsed struct {
	Mode  Mode
	Query core.Query
}

// Statement is any parsed statement: a query (*Parsed) or one of the
// DML forms (*InsertStmt, *DeleteStmt, *UpdateStmt). Per the paper's
// central claim that U-relations are just relations, each DML form is
// executed (internal/txn) as an ordinary relational plan whose result
// rows become delta rows of the representation.
type Statement interface{ stmt() }

func (*Parsed) stmt()          {}
func (*InsertStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*CreateIndexStmt) stmt() {}

// CreateIndexStmt is `CREATE INDEX ON table(col)`: it declares a
// persistent secondary index on one of the relation's attributes.
// Sorted runs are built immediately for every existing file layer and
// thereafter beside each flushed or compacted layer. CREATE and INDEX
// are contextual keywords, so both remain usable as identifiers.
type CreateIndexStmt struct {
	Table string
	Col   string
}

// ExplainStmt is `EXPLAIN [ANALYZE] <query>`. Plain EXPLAIN renders
// the translated, optimized physical plan with cardinality estimates;
// EXPLAIN ANALYZE also executes the query with operator tracing and
// annotates each node with actual rows/batches/time and store-side
// statistics. EXPLAIN and ANALYZE are contextual keywords (like
// BOUNDS): only their position at the head of a statement is special,
// so columns and tables may still use the names.
type ExplainStmt struct {
	Analyze bool
	Query   *Parsed
}

// InsertStmt is `INSERT INTO table [(cols)] VALUES (lit, ...), ...`
// or `INSERT INTO table [(cols)] SELECT ...`. Literal rows insert
// certain tuples (empty ws-descriptor: present in every world);
// INSERT ... SELECT preserves the selected rows' descriptors, so
// uncertain data can be copied between relations.
type InsertStmt struct {
	Table string
	// Cols is the optional explicit column list; empty means all of the
	// relation's attributes in schema order. Omitted attributes are
	// inserted as NULL.
	Cols []string
	// Rows holds the literal VALUES rows (nil for INSERT ... SELECT).
	Rows [][]engine.Value
	// Select is the source query of INSERT ... SELECT (plain mode).
	Select *Parsed
}

// DeleteStmt is `DELETE FROM table [WHERE cond]`: it deletes every
// representation row contributing to a tuple that possibly satisfies
// the condition (in all of the row's worlds).
type DeleteStmt struct {
	Table string
	Where engine.Expr // nil = delete everything
}

// SetClause is one `col = literal` assignment of an UPDATE.
type SetClause struct {
	Col string
	Val engine.Value
}

// UpdateStmt is `UPDATE table SET col = lit, ... [WHERE cond]`,
// executed as delete-plus-reinsert of the matching representation rows
// with the assigned attributes replaced.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where engine.Expr // nil = update everything
}

// Parse compiles `[POSSIBLE|CERTAIN|CONF] SELECT cols FROM tables
// [WHERE cond]` into the core query algebra. Tables may be aliased
// (`nation n1`), columns may be `alias.attr` or bare `attr`, and `*`
// selects everything. Conditions support comparisons, BETWEEN ... AND
// ..., AND/OR/NOT, parentheses, numeric and string literals; string
// literals shaped like dates ('1995-03-15') become date values.
// DML statements are rejected; use ParseStatement for those.
func Parse(src string) (*Parsed, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	q, ok := st.(*Parsed)
	if !ok {
		return nil, fmt.Errorf("sql: %s is not a query (execute it against a writable store)", stmtKind(st))
	}
	return q, nil
}

// ParseStatement parses one statement of the full dialect: the query
// forms of Parse plus INSERT INTO ... VALUES / SELECT,
// DELETE FROM ... WHERE, and UPDATE ... SET ... WHERE.
func ParseStatement(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	out, err := p.parseAnyStatement()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return out, nil
}

func stmtKind(st Statement) string {
	switch st.(type) {
	case *InsertStmt:
		return "INSERT"
	case *DeleteStmt:
		return "DELETE"
	case *UpdateStmt:
		return "UPDATE"
	case *ExplainStmt:
		return "EXPLAIN"
	case *CreateIndexStmt:
		return "CREATE INDEX"
	default:
		return "statement"
	}
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// matchKw consumes an identifier token equal (case-insensitively) to
// kw.
func (p *parser) matchKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.matchKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

func (p *parser) matchSym(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseAnyStatement() (Statement, error) {
	switch {
	case p.matchKw("insert"):
		return p.parseInsert()
	case p.matchKw("delete"):
		return p.parseDelete()
	case p.matchKw("update"):
		return p.parseUpdate()
	case p.matchKw("create"):
		return p.parseCreateIndex()
	case p.matchKw("explain"):
		analyze := p.matchKw("analyze")
		st, err := p.parseAnyStatement()
		if err != nil {
			return nil, err
		}
		q, ok := st.(*Parsed)
		if !ok {
			return nil, fmt.Errorf("sql: EXPLAIN supports queries, not %s", stmtKind(st))
		}
		return &ExplainStmt{Analyze: analyze, Query: q}, nil
	}
	return p.parseStatement()
}

// parseTableName consumes a non-keyword identifier naming a relation.
func (p *parser) parseTableName() (string, error) {
	t := p.next()
	if t.kind != tokIdent || isKeyword(t.text) {
		return "", fmt.Errorf("sql: expected table name, found %q", t.text)
	}
	return t.text, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	out := &InsertStmt{Table: table}
	if p.matchSym("(") {
		for {
			t := p.next()
			if t.kind != tokIdent || isKeyword(t.text) {
				return nil, fmt.Errorf("sql: expected column name, found %q", t.text)
			}
			out.Cols = append(out.Cols, t.text)
			if p.matchSym(")") {
				break
			}
			if !p.matchSym(",") {
				return nil, fmt.Errorf("sql: expected ',' or ')' in column list, found %q", p.peek().text)
			}
		}
	}
	if p.matchKw("values") {
		for {
			if !p.matchSym("(") {
				return nil, fmt.Errorf("sql: expected '(' before VALUES row, found %q", p.peek().text)
			}
			var row []engine.Value
			for {
				v, err := p.parseLiteral()
				if err != nil {
					return nil, err
				}
				row = append(row, v)
				if p.matchSym(")") {
					break
				}
				if !p.matchSym(",") {
					return nil, fmt.Errorf("sql: expected ',' or ')' in VALUES row, found %q", p.peek().text)
				}
			}
			if len(out.Rows) > 0 && len(row) != len(out.Rows[0]) {
				return nil, fmt.Errorf("sql: VALUES rows have mixed arities (%d vs %d)", len(row), len(out.Rows[0]))
			}
			out.Rows = append(out.Rows, row)
			if !p.matchSym(",") {
				return out, nil
			}
		}
	}
	// INSERT ... SELECT: a plain (or possible) query supplies the rows.
	sel, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if sel.Mode != ModePlain && sel.Mode != ModePossible {
		return nil, fmt.Errorf("sql: INSERT ... SELECT supports plain or POSSIBLE queries, not %s", sel.Mode)
	}
	out.Select = sel
	return out, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	if err := p.expectKw("index"); err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if !p.matchSym("(") {
		return nil, fmt.Errorf("sql: expected '(' after table name, found %q", p.peek().text)
	}
	t := p.next()
	if t.kind != tokIdent || isKeyword(t.text) {
		return nil, fmt.Errorf("sql: expected column name, found %q", t.text)
	}
	if !p.matchSym(")") {
		return nil, fmt.Errorf("sql: expected ')' after column name, found %q", p.peek().text)
	}
	return &CreateIndexStmt{Table: table, Col: t.text}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	out := &DeleteStmt{Table: table}
	if p.matchKw("where") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		out.Where = cond
	}
	return out, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	out := &UpdateStmt{Table: table}
	for {
		t := p.next()
		if t.kind != tokIdent || isKeyword(t.text) {
			return nil, fmt.Errorf("sql: expected column name, found %q", t.text)
		}
		if !p.matchSym("=") {
			return nil, fmt.Errorf("sql: expected '=' after %q, found %q", t.text, p.peek().text)
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		out.Set = append(out.Set, SetClause{Col: t.text, Val: v})
		if !p.matchSym(",") {
			break
		}
	}
	if p.matchKw("where") {
		cond, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		out.Where = cond
	}
	return out, nil
}

// parseLiteral parses a scalar literal: signed numbers, strings
// (date-shaped ones become date values, as in conditions), NULL, TRUE,
// FALSE.
func (p *parser) parseLiteral() (engine.Value, error) {
	neg := false
	if p.matchSym("-") {
		neg = true
	} else {
		p.matchSym("+")
	}
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return engine.Null(), fmt.Errorf("sql: bad number %q", t.text)
			}
			if neg {
				f = -f
			}
			return engine.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return engine.Null(), fmt.Errorf("sql: bad number %q", t.text)
		}
		if neg {
			i = -i
		}
		return engine.Int(i), nil
	case t.kind == tokString && !neg:
		p.next()
		if v, err := engine.ParseDate(t.text); err == nil {
			return v, nil
		}
		return engine.Str(t.text), nil
	case t.kind == tokIdent && !neg:
		switch {
		case p.matchKw("null"):
			return engine.Null(), nil
		case p.matchKw("true"):
			return engine.Bool(true), nil
		case p.matchKw("false"):
			return engine.Bool(false), nil
		}
	}
	return engine.Null(), fmt.Errorf("sql: expected literal, found %q", t.text)
}

func (p *parser) parseStatement() (*Parsed, error) {
	mode := ModePlain
	switch {
	case p.matchKw("possible"):
		mode = ModePossible
	case p.matchKw("certain"):
		mode = ModeCertain
	case p.matchKw("conf"):
		mode = ModeConf
		// BOUNDS is a contextual keyword: only meaningful right after
		// CONF, still usable as an identifier everywhere else.
		if p.matchKw("bounds") {
			mode = ModeConfBounds
		}
	}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	star, cols, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	tables, err := p.parseTables()
	if err != nil {
		return nil, err
	}
	var cond engine.Expr
	if p.matchKw("where") {
		cond, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	// Build: left-deep cross product; the optimizer absorbs the WHERE
	// conjuncts into join conditions and orders the joins.
	q := tables[0]
	for _, t := range tables[1:] {
		q = core.Join(q, t, nil)
	}
	if cond != nil {
		q = core.Select(q, cond)
	}
	if !star {
		q = core.Project(q, cols...)
	}
	out := &Parsed{Mode: mode, Query: q}
	if mode == ModePossible {
		out.Query = core.Poss(q)
	}
	return out, nil
}

func (p *parser) parseSelectList() (star bool, cols []string, err error) {
	if p.matchSym("*") {
		return true, nil, nil
	}
	for {
		c, err := p.parseColumnName()
		if err != nil {
			return false, nil, err
		}
		cols = append(cols, c)
		if !p.matchSym(",") {
			return false, cols, nil
		}
	}
}

func (p *parser) parseColumnName() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected column name, found %q", t.text)
	}
	name := t.text
	if p.matchSym(".") {
		t2 := p.next()
		if t2.kind != tokIdent {
			return "", fmt.Errorf("sql: expected attribute after %q.", name)
		}
		name = name + "." + t2.text
	}
	return name, nil
}

func (p *parser) parseTables() ([]core.Query, error) {
	var out []core.Query
	for {
		t := p.next()
		if t.kind != tokIdent || isKeyword(t.text) {
			return nil, fmt.Errorf("sql: expected table name, found %q", t.text)
		}
		name := t.text
		alias := ""
		if p.matchKw("as") {
			a := p.next()
			if a.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected alias after AS")
			}
			alias = a.text
		} else if p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			alias = p.next().text
		}
		if alias == "" {
			out = append(out, core.Rel(name))
		} else {
			out = append(out, core.RelAs(name, alias))
		}
		if !p.matchSym(",") {
			return out, nil
		}
	}
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "where", "and", "or", "not", "between", "select", "from", "as",
		"possible", "certain", "conf",
		"insert", "into", "values", "delete", "update", "set",
		"null", "true", "false":
		return true
	}
	return false
}

func (p *parser) parseOr() (engine.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []engine.Expr{l}
	for p.matchKw("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return engine.Or(args...), nil
}

func (p *parser) parseAnd() (engine.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	args := []engine.Expr{l}
	for p.matchKw("and") {
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return engine.And(args...), nil
}

func (p *parser) parsePrimary() (engine.Expr, error) {
	if p.matchKw("not") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return engine.Not(e), nil
	}
	if p.matchSym("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.matchSym(")") {
			return nil, fmt.Errorf("sql: expected ')'")
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (engine.Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.matchKw("between") {
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return engine.And(
			engine.Cmp(engine.GE, l, lo),
			engine.Cmp(engine.LE, l, hi)), nil
	}
	t := p.next()
	if t.kind != tokSymbol {
		return nil, fmt.Errorf("sql: expected comparison operator, found %q", t.text)
	}
	var op engine.CmpOp
	switch t.text {
	case "=":
		op = engine.EQ
	case "<>":
		op = engine.NE
	case "<":
		op = engine.LT
	case "<=":
		op = engine.LE
	case ">":
		op = engine.GT
	case ">=":
		op = engine.GE
	default:
		return nil, fmt.Errorf("sql: unknown operator %q", t.text)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return engine.Cmp(op, l, r), nil
}

func (p *parser) parseOperand() (engine.Expr, error) {
	if p.peek().kind == tokSymbol && (p.peek().text == "-" || p.peek().text == "+") {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return engine.Const(v), nil
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return engine.ConstFloat(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return engine.ConstInt(i), nil
	case tokString:
		p.next()
		// Date-shaped literals become date values so range predicates
		// work, as in the Figure 8 queries.
		if v, err := engine.ParseDate(t.text); err == nil {
			return engine.Const(v), nil
		}
		return engine.ConstStr(t.text), nil
	case tokIdent:
		name, err := p.parseColumnName()
		if err != nil {
			return nil, err
		}
		return engine.Col(name), nil
	default:
		return nil, fmt.Errorf("sql: expected operand, found %q", t.text)
	}
}
