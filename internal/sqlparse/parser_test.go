package sqlparse

import (
	"strings"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/tpch"
	"urel/internal/ws"
)

func mustParse(t *testing.T, src string) *Parsed {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return p
}

func TestParseModes(t *testing.T) {
	if mustParse(t, "select * from r").Mode != ModePlain {
		t.Fatal("plain mode")
	}
	if mustParse(t, "possible select * from r").Mode != ModePossible {
		t.Fatal("possible mode")
	}
	if mustParse(t, "CERTAIN SELECT * FROM r").Mode != ModeCertain {
		t.Fatal("certain mode, case-insensitive")
	}
	if p := mustParse(t, "conf select a from r where b = 1"); p.Mode != ModeConf {
		t.Fatal("conf mode")
	} else if _, isPoss := p.Query.(*core.PossQ); isPoss {
		t.Fatal("conf queries must stay poss-free (confidence needs tuple-level descriptors)")
	}
	if mustParse(t, "CONF SELECT * FROM r").Mode != ModeConf {
		t.Fatal("conf mode, case-insensitive")
	}
	if p := mustParse(t, "conf bounds select a from r where b = 1"); p.Mode != ModeConfBounds {
		t.Fatal("conf bounds mode")
	} else if _, isPoss := p.Query.(*core.PossQ); isPoss {
		t.Fatal("conf bounds queries must stay poss-free (bounds need tuple-level descriptors)")
	}
	if mustParse(t, "CONF BOUNDS SELECT * FROM r").Mode != ModeConfBounds {
		t.Fatal("conf bounds mode, case-insensitive")
	}
	// BOUNDS is contextual: outside CONF it is an ordinary identifier.
	if p := mustParse(t, "select bounds from bounds where bounds = 1"); p.Mode != ModePlain {
		t.Fatal("bounds as identifier")
	}
	if ModePossible.String() != "possible" || ModeConf.String() != "conf" ||
		ModeConfBounds.String() != "conf-bounds" {
		t.Fatal("mode string")
	}
}

// TestConfKeywordNotAlias: CONF must not be swallowed as a table alias
// when it starts a statement, nor be usable as an implicit alias.
func TestConfKeywordNotAlias(t *testing.T) {
	p := mustParse(t, "select a from r conf2")
	if p.Query == nil {
		t.Fatal("conf2 is a normal alias")
	}
	if _, err := Parse("select a from r conf"); err == nil {
		t.Fatal("bare keyword CONF as alias should fail (keywords are reserved)")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select from r",
		"select * from r where",
		"select * from r where a ==",
		"select * from r where a between 1",
		"select * from r where (a = 1",
		"select * from r alias1 alias2",
		"select * from r where a = 'unterminated",
		"select * from r where a ~ 1",
		"select a. from r",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestParseErrorMessages pins the failure shape of the main error
// paths: missing table, malformed literals, and trailing tokens.
func TestParseErrorMessages(t *testing.T) {
	cases := []struct{ src, want string }{
		{"select * from where a = 1", "expected table name"},
		{"select * from ,", "expected table name"},
		{"possible select * from r where a = 99999999999999999999999999", "bad number"},
		{"select * from r where a = 1 ) extra", "trailing input"},
		{"certain select a from r where a = 1 b = 2", "trailing input"},
		{"select a from r where a = 'x' select", "trailing input"},
		{"select a from r where between 1 and 2", "expected comparison operator"},
		{"conf select a from r where a >", "expected operand"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want it to mention %q", c.src, err, c.want)
		}
	}
}

// TestUnknownTableSurfacesAtTranslation: the parser is schema-free, so
// an unknown table parses fine and fails loudly when the query is
// translated against a database.
func TestUnknownTableSurfacesAtTranslation(t *testing.T) {
	db := vehiclesDB(t)
	p := mustParse(t, "possible select a from nosuch")
	_, err := db.EvalPoss(p.Query, engine.ExecConfig{})
	if err == nil || !strings.Contains(err.Error(), `unknown relation "nosuch"`) {
		t.Fatalf("unknown table should fail at translation, got %v", err)
	}
}

// vehicles database for end-to-end parsing tests.
func vehiclesDB(t *testing.T) *core.UDB {
	t.Helper()
	db := core.NewUDB()
	db.MustAddRelation("r", "id", "typ", "faction")
	x := db.W.NewBoolVar("x")
	uid := db.MustAddPartition("r", "u_id", "id")
	uty := db.MustAddPartition("r", "u_typ", "typ")
	ufa := db.MustAddPartition("r", "u_faction", "faction")
	uid.Add(nil, 1, engine.Int(1))
	uid.Add(nil, 2, engine.Int(2))
	uty.Add(nil, 1, engine.Str("Tank"))
	uty.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Str("Tank"))
	uty.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Str("Transport"))
	ufa.Add(nil, 1, engine.Str("Enemy"))
	ufa.Add(nil, 2, engine.Str("Enemy"))
	return db
}

func TestParsedQueryEvaluates(t *testing.T) {
	db := vehiclesDB(t)
	p := mustParse(t, "possible select id from r where typ = 'Tank' and faction = 'Enemy'")
	rel, err := db.EvalPoss(p.Query, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("both vehicles possibly enemy tanks: got %d\n%s", rel.Len(), rel)
	}
	// Certain mode: only vehicle 1 is certainly a tank.
	pc := mustParse(t, "certain select id from r where typ = 'Tank'")
	cert, err := db.CertainAnswers(pc.Query)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 1 || cert.Rows[0][0].AsInt() != 1 {
		t.Fatalf("only id 1 is certainly a tank: %s", cert)
	}
}

func TestParseAliasesAndQualified(t *testing.T) {
	db := vehiclesDB(t)
	p := mustParse(t,
		"possible select s1.id, s2.id from r s1, r as s2 where s1.id < s2.id")
	rel, err := db.EvalPoss(p.Query, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Fatalf("one ordered pair: got %d", rel.Len())
	}
}

func TestParseBetweenAndDates(t *testing.T) {
	p := mustParse(t,
		"select a from r where d between '1994-01-01' and '1996-01-01' and x between 1 and 5 or not (y = 2.5)")
	if p.Query == nil {
		t.Fatal("query built")
	}
	s := p.Query.String()
	for _, want := range []string{"8766", ">=", "<=", "OR", "NOT", "2.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered query should contain %q: %s", want, s)
		}
	}
}

func TestParseAgainstFigure8SQL(t *testing.T) {
	// The paper's Q2, almost verbatim.
	db, _, err := tpch.Generate(tpch.DefaultParams(0.01, 0.01, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	p := mustParse(t, `possible select l_extendedprice from lineitem
		where l_shipdate between '1994-01-02' and '1995-12-31'
		and l_discount between 0.05 and 0.08 and l_quantity < 24`)
	got, err := db.EvalPoss(p.Query, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.EvalPoss(tpch.Q2(), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("SQL Q2 (%d rows) != algebraic Q2 (%d rows)", got.Len(), want.Len())
	}
	// The paper's Q1 via SQL with a three-table FROM: the optimizer
	// must recover the join conditions from the WHERE clause.
	p1 := mustParse(t, `possible select o_orderkey, o_orderdate, o_shippriority
		from customer, orders, lineitem
		where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
		and o_orderkey = l_orderkey and o_orderdate > '1995-03-15'
		and l_shipdate < '1995-03-17'`)
	got1, err := db.EvalPoss(p1.Query, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want1, err := db.EvalPoss(tpch.Q1(), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !got1.EqualAsSet(want1) {
		t.Fatalf("SQL Q1 (%d) != algebraic Q1 (%d)", got1.Len(), want1.Len())
	}
}

func TestParseStringEscapes(t *testing.T) {
	p := mustParse(t, "select a from r where s = 'O''Brien'")
	if !strings.Contains(p.Query.String(), "O'Brien") {
		t.Fatalf("escaped quote lost: %s", p.Query.String())
	}
}

func TestParseExplain(t *testing.T) {
	st, err := ParseStatement("explain select a from r where a < 3")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok {
		t.Fatalf("got %T, want *ExplainStmt", st)
	}
	if ex.Analyze {
		t.Fatal("plain EXPLAIN parsed as ANALYZE")
	}
	if ex.Query.Mode != ModePlain {
		t.Fatalf("default mode = %v", ex.Query.Mode)
	}

	st, err = ParseStatement("EXPLAIN ANALYZE conf bounds select a from r")
	if err != nil {
		t.Fatal(err)
	}
	ex = st.(*ExplainStmt)
	if !ex.Analyze || ex.Query.Mode != ModeConfBounds {
		t.Fatalf("analyze=%v mode=%v", ex.Analyze, ex.Query.Mode)
	}

	// EXPLAIN of DML is rejected with a statement-kind message.
	if _, err := ParseStatement("explain insert into r values (1)"); err == nil {
		t.Fatal("EXPLAIN INSERT accepted")
	}
	// EXPLAIN and ANALYZE stay usable as identifiers elsewhere.
	p := mustParse(t, "select explain from analyze where explain = 1")
	if p.Mode != ModePlain {
		t.Fatalf("contextual keyword leaked: %+v", p)
	}
}
