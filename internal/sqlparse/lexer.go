package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits the input into tokens. Keywords are returned as
// tokIdent; the parser matches them case-insensitively.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at %d", start)
}

func (l *lexer) lexSymbol() error {
	start := l.pos
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		text := two
		if text == "!=" {
			text = "<>"
		}
		l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case ',', '(', ')', '=', '<', '>', '*', '.', '-', '+':
		l.pos++
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}
