package uldb

import (
	"fmt"

	"urel/internal/engine"
)

// Query evaluation with lineage propagation, in the regime of the
// paper's Figure 14 comparison: selections and joins over ULDB
// relations produce result relations whose alternatives carry lineage
// to the input alternatives. No erroneous-tuple removal happens during
// evaluation — that is Trio's separate, expensive data-minimization
// step (Minimize below).

// nextID hands out fresh x-tuple ids for results.
type idGen struct{ next int64 }

func (g *idGen) get() int64 { g.next++; return g.next }

// NewIDGen creates an id generator starting above the given id.
func NewIDGen(above int64) *idGen { return &idGen{next: above} }

// MaxXTupleID returns the largest x-tuple id in the database.
func (db *DB) MaxXTupleID() int64 {
	var m int64
	for _, r := range db.Rels {
		for _, xt := range r.XTs {
			if xt.ID > m {
				m = xt.ID
			}
		}
	}
	return m
}

// Select filters alternatives by a predicate over the relation's
// attributes. X-tuples that lose alternatives become '?'-optional
// (Trio semantics); x-tuples losing all alternatives are dropped.
func Select(r *Relation, pred engine.Expr, ids *idGen) (*Relation, error) {
	sch := attrSchema(r)
	bound, err := pred.Bind(sch)
	if err != nil {
		return nil, err
	}
	out := &Relation{Name: "sel(" + r.Name + ")", Attrs: r.Attrs}
	for _, xt := range r.XTs {
		var kept []Alternative
		for ai, a := range xt.Alts {
			if bound.Eval(a.Vals).Truth() {
				// Result lineage points to the source alternative.
				lin := append(append([]AltID{}, a.Lineage...), AltID{XT: xt.ID, Alt: ai})
				kept = append(kept, Alternative{Vals: a.Vals, Lineage: lin})
			}
		}
		if len(kept) == 0 {
			continue
		}
		nxt := out.AddXTuple(ids.get(), xt.Maybe || len(kept) < len(xt.Alts))
		nxt.Alts = kept
	}
	return out, nil
}

// Project maps every alternative to the named attribute subset,
// preserving lineage.
func Project(r *Relation, attrs []string, ids *idGen) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := indexOf(r.Attrs, a)
		if j < 0 {
			return nil, fmt.Errorf("uldb: project: attribute %q not in %v", a, r.Attrs)
		}
		idx[i] = j
	}
	out := &Relation{Name: "proj(" + r.Name + ")", Attrs: attrs}
	for _, xt := range r.XTs {
		nxt := out.AddXTuple(ids.get(), xt.Maybe)
		for ai, a := range xt.Alts {
			vals := make(engine.Tuple, len(idx))
			for i, j := range idx {
				vals[i] = a.Vals[j]
			}
			lin := append(append([]AltID{}, a.Lineage...), AltID{XT: xt.ID, Alt: ai})
			nxt.Alts = append(nxt.Alts, Alternative{Vals: vals, Lineage: lin})
		}
	}
	return out, nil
}

// Join combines alternatives of both inputs under a predicate over the
// concatenated attributes. The result's lineage points to both source
// alternatives — which is exactly how erroneous tuples arise: lineage
// only references the immediate inputs, so combinations whose sources
// never co-occur in a world still produce result alternatives
// (Section 5's discussion of ULDB data minimization).
func Join(l, r *Relation, cond engine.Expr, ids *idGen) (*Relation, error) {
	attrs := append(append([]string{}, l.Attrs...), r.Attrs...)
	out := &Relation{Name: "join(" + l.Name + "," + r.Name + ")", Attrs: attrs}
	var bound engine.Expr
	if cond != nil {
		sch := attrSchemaNames(attrs, l, r)
		b, err := cond.Bind(sch)
		if err != nil {
			return nil, err
		}
		bound = b
	}
	for _, lx := range l.XTs {
		for _, rx := range r.XTs {
			var alts []Alternative
			for lai, la := range lx.Alts {
				for rai, ra := range rx.Alts {
					row := la.Vals.Concat(ra.Vals)
					if bound != nil && !bound.Eval(row).Truth() {
						continue
					}
					lin := append(append([]AltID{}, la.Lineage...), ra.Lineage...)
					lin = append(lin, AltID{XT: lx.ID, Alt: lai}, AltID{XT: rx.ID, Alt: rai})
					alts = append(alts, Alternative{Vals: row, Lineage: lin})
				}
			}
			if len(alts) == 0 {
				continue
			}
			nxt := out.AddXTuple(ids.get(), true)
			nxt.Alts = alts
		}
	}
	return out, nil
}

// Minimize removes erroneous alternatives: those whose transitive
// lineage requires two different alternatives of the same x-tuple. This
// is the expensive operation U-relations avoid by carrying all
// dependencies in ws-descriptors (ψ filters inconsistent combinations
// during the join itself).
func Minimize(r *Relation) *Relation {
	out := &Relation{Name: "min(" + r.Name + ")", Attrs: r.Attrs}
	for _, xt := range r.XTs {
		var kept []Alternative
		for _, a := range xt.Alts {
			if lineageConsistent(a.Lineage) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			continue
		}
		nxt := out.AddXTuple(xt.ID, xt.Maybe || len(kept) < len(xt.Alts))
		nxt.Alts = kept
	}
	return out
}

// lineageConsistent reports whether a lineage conjunction avoids
// requiring two alternatives of one x-tuple.
func lineageConsistent(lin []AltID) bool {
	chosen := map[int64]int{}
	for _, d := range lin {
		if prev, ok := chosen[d.XT]; ok && prev != d.Alt {
			return false
		}
		chosen[d.XT] = d.Alt
	}
	return true
}

// PossibleTuples returns the distinct value tuples across alternatives
// (NOT worlds-aware: erroneous alternatives contribute too, unless the
// relation was minimized first — exactly the paper's point).
func (r *Relation) PossibleTuples() *engine.Relation {
	rel := engine.NewRelation(attrSchema(r))
	for _, xt := range r.XTs {
		for _, a := range xt.Alts {
			rel.Rows = append(rel.Rows, a.Vals)
		}
	}
	return rel.Distinct()
}

func attrSchema(r *Relation) engine.Schema {
	cols := make([]engine.Column, len(r.Attrs))
	for i, a := range r.Attrs {
		k := engine.KindNull
		for _, xt := range r.XTs {
			if len(xt.Alts) > 0 && !xt.Alts[0].Vals[i].IsNull() {
				k = xt.Alts[0].Vals[i].K
				break
			}
		}
		cols[i] = engine.Column{Name: a, Kind: k}
	}
	return engine.Schema{Cols: cols}
}

func attrSchemaNames(attrs []string, l, r *Relation) engine.Schema {
	cols := make([]engine.Column, len(attrs))
	for i, a := range attrs {
		cols[i] = engine.Column{Name: a, Kind: engine.KindNull}
	}
	return engine.Schema{Cols: cols}
}

func indexOf(list []string, s string) int {
	for i, x := range list {
		if x == s {
			return i
		}
	}
	return -1
}
