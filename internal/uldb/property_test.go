package uldb

import (
	"math/rand"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
)

// coreJoinQuery is the core-algebra version of the self-join used in
// TestPropertyMinimizedJoinPossEqualsUDB.
func coreJoinQuery() core.Query {
	return core.Join(
		core.Project(core.RelAs("r", "s1"), "s1.a", "s1.b"),
		core.Project(core.RelAs("r", "s2"), "s2.a", "s2.b"),
		engine.And(
			engine.EqCols("s1.b", "s2.b"),
			engine.Cmp(engine.NE, engine.Col("s1.a"), engine.Col("s2.a"))))
}

// randULDB builds a random ULDB with lineage-free and maybe x-tuples
// (the regime where the Lemma 5.5 translation is world-set exact), plus
// occasionally lineage-distinguished dependents.
func randULDB(rng *rand.Rand) *DB {
	db := NewDB()
	r := db.AddRelation("r", "a", "b")
	var id int64
	nBase := 1 + rng.Intn(3)
	var bases []*XTuple
	for i := 0; i < nBase; i++ {
		id++
		xt := r.AddXTuple(id, rng.Intn(3) == 0)
		nAlts := 1 + rng.Intn(3)
		for j := 0; j < nAlts; j++ {
			xt.AddAlt(nil, engine.Int(int64(i)), engine.Int(int64(j)))
		}
		bases = append(bases, xt)
	}
	// Dependent x-tuples: either fully lineage-distinguished over a
	// non-optional base (exact elision case) or maybe with partial
	// lineage.
	nDep := rng.Intn(3)
	for i := 0; i < nDep; i++ {
		base := bases[rng.Intn(len(bases))]
		id++
		if !base.Maybe && len(base.Alts) >= 2 && rng.Intn(2) == 0 {
			// One alternative per base alternative.
			xt := r.AddXTuple(id, false)
			for j := range base.Alts {
				xt.AddAlt([]AltID{{XT: base.ID, Alt: j}},
					engine.Int(100+int64(i)), engine.Int(int64(j)))
			}
		} else {
			// Optional with lineage to one base alternative.
			xt := r.AddXTuple(id, true)
			xt.AddAlt([]AltID{{XT: base.ID, Alt: rng.Intn(len(base.Alts))}},
				engine.Int(200+int64(i)), engine.Int(0))
		}
	}
	return db
}

// TestPropertyLemma55 checks that the ULDB -> U-relations translation
// preserves the world-set on random well-behaved ULDBs.
func TestPropertyLemma55(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for iter := 0; iter < 80; iter++ {
		db := randULDB(rng)
		s1, err := db.WorldSetSignature(3000)
		if err != nil {
			continue
		}
		udb, err := db.ToUDB()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		s2, err := udb.WorldSetSignature(30000)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(s1) != len(s2) {
			t.Fatalf("iter %d: world-set sizes differ: ULDB %d vs U-rel %d",
				iter, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("iter %d: world-sets differ at %d", iter, i)
			}
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

// TestPropertyMinimizedJoinPossEqualsUDB: for random ULDBs, the
// minimized ULDB join has the same possible tuples as the U-relational
// evaluation of the same query (erroneous tuples are exactly what
// minimization removes and ψ prevents).
func TestPropertyMinimizedJoinPossEqualsUDB(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 40; iter++ {
		db := randULDB(rng)
		if _, err := db.WorldSetSignature(2000); err != nil {
			continue
		}
		udb, err := db.ToUDB()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Self-join on b with a <> a.
		ids := NewIDGen(db.MaxXTupleID())
		l, err := Project(db.Rels["r"], []string{"a", "b"}, ids)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Project(db.Rels["r"], []string{"a", "b"}, ids)
		if err != nil {
			t.Fatal(err)
		}
		r2.Attrs = []string{"a2", "b2"}
		joined, err := Join(l, r2, engine.And(
			engine.EqCols("b", "b2"),
			engine.Cmp(engine.NE, engine.Col("a"), engine.Col("a2"))), ids)
		if err != nil {
			t.Fatal(err)
		}
		got := Minimize(joined).PossibleTuples()

		// The same query over the converted U-relations, via brute
		// force (poss ground truth).
		import1 := coreJoinQuery()
		want, err := udb.PossibleGroundTruth(import1, 30000)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("iter %d: minimized ULDB join (%d) vs U-rel ground truth (%d)",
				iter, got.Len(), want.Len())
		}
	}
}
