// Package uldb implements ULDBs — databases with uncertainty and
// lineage (Benjelloun, Das Sarma, Halevy, Widom, VLDB 2006; the Trio
// system) — as the tuple-level baseline of Section 5 of the U-relations
// paper. A ULDB relation is a set of x-tuples, each a list of
// alternatives; a world chooses one alternative per x-tuple (or none
// for '?'-optional x-tuples); lineage ties alternatives across
// x-tuples: an alternative may only appear in worlds that also choose
// every alternative its lineage points to.
//
// The package provides construction, world enumeration, query
// evaluation with lineage propagation (select/project/join — the regime
// of the paper's Figure 14 comparison, which runs without erroneous-
// tuple removal), data minimization (removal of erroneous tuples via
// lineage-consistency checking), and the linear translation of ULDBs
// into U-relational databases (Lemma 5.5).
//
// Paper-section map: uldb.go — the representation and world semantics
// (Section 5); query.go — lineage-propagating evaluation (Figure 14
// regime); convert.go — the Lemma 5.5 translation and the or-set
// constructions behind the Theorem 5.6 separation.
package uldb
