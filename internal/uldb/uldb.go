package uldb

import (
	"fmt"
	"sort"

	"urel/internal/engine"
)

// AltID identifies one alternative: x-tuple id and alternative index
// (0-based).
type AltID struct {
	XT  int64
	Alt int
}

func (a AltID) String() string { return fmt.Sprintf("(%d,%d)", a.XT, a.Alt) }

// Alternative is one possible instantiation of an x-tuple, with its
// lineage: a conjunction of alternatives of other x-tuples this one
// depends on.
type Alternative struct {
	Vals    engine.Tuple
	Lineage []AltID
}

// XTuple is an uncertain tuple: a set of mutually exclusive
// alternatives; Maybe marks the paper's '?', allowing worlds with none
// of the alternatives.
type XTuple struct {
	ID    int64
	Maybe bool
	Alts  []Alternative
}

// Relation is a ULDB relation.
type Relation struct {
	Name  string
	Attrs []string
	XTs   []*XTuple
}

// AddXTuple appends an x-tuple and returns it.
func (r *Relation) AddXTuple(id int64, maybe bool) *XTuple {
	xt := &XTuple{ID: id, Maybe: maybe}
	r.XTs = append(r.XTs, xt)
	return xt
}

// AddAlt appends an alternative to the x-tuple.
func (x *XTuple) AddAlt(lineage []AltID, vals ...engine.Value) {
	x.Alts = append(x.Alts, Alternative{Vals: vals, Lineage: lineage})
}

// NumAlternatives counts all alternatives (the dominant size factor;
// the paper reports 15M alternatives where vertical partitions hold
// 80K tuples).
func (r *Relation) NumAlternatives() int {
	n := 0
	for _, xt := range r.XTs {
		n += len(xt.Alts)
	}
	return n
}

// SizeBytes estimates the representation footprint.
func (r *Relation) SizeBytes() int64 {
	var n int64
	for _, xt := range r.XTs {
		n += 16
		for _, a := range xt.Alts {
			n += int64(len(a.Lineage)) * 12
			for _, v := range a.Vals {
				n += int64(v.SizeBytes())
			}
		}
	}
	return n
}

// DB is a ULDB database: named relations plus a deterministic order.
type DB struct {
	Rels  map[string]*Relation
	order []string
}

// NewDB creates an empty ULDB.
func NewDB() *DB { return &DB{Rels: map[string]*Relation{}} }

// AddRelation declares a relation.
func (db *DB) AddRelation(name string, attrs ...string) *Relation {
	r := &Relation{Name: name, Attrs: append([]string(nil), attrs...)}
	db.Rels[name] = r
	db.order = append(db.order, name)
	return r
}

// RelNames returns relation names in declaration order.
func (db *DB) RelNames() []string { return append([]string(nil), db.order...) }

// choice maps x-tuple id -> chosen alternative (-1 = none).
type choice map[int64]int

// allXTuples returns every x-tuple (across relations), sorted by id;
// ids must be globally unique for lineage to be unambiguous.
func (db *DB) allXTuples() ([]*XTuple, error) {
	var all []*XTuple
	seen := map[int64]bool{}
	for _, name := range db.order {
		for _, xt := range db.Rels[name].XTs {
			if seen[xt.ID] {
				return nil, fmt.Errorf("uldb: duplicate x-tuple id %d", xt.ID)
			}
			seen[xt.ID] = true
			all = append(all, xt)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, nil
}

// consistent checks that every chosen alternative's lineage is
// satisfied by the choice (transitively, since lineage targets are
// themselves chosen alternatives checked the same way).
func (db *DB) consistent(all []*XTuple, ch choice) bool {
	for _, xt := range all {
		ai := ch[xt.ID]
		if ai < 0 {
			continue
		}
		for _, dep := range xt.Alts[ai].Lineage {
			if got, ok := ch[dep.XT]; !ok || got != dep.Alt {
				return false
			}
		}
	}
	return true
}

// EnumWorlds enumerates all consistent worlds, yielding the
// instantiated relations; stops when yield returns false. Exponential;
// for tests and small baselines only.
func (db *DB) EnumWorlds(yield func(world map[string]*engine.Relation) bool) error {
	all, err := db.allXTuples()
	if err != nil {
		return err
	}
	ch := choice{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(all) {
			if !db.consistent(all, ch) {
				return true
			}
			return yield(db.instantiate(ch))
		}
		xt := all[i]
		for ai := range xt.Alts {
			ch[xt.ID] = ai
			if !rec(i + 1) {
				return false
			}
		}
		if xt.Maybe || len(xt.Alts) == 0 {
			ch[xt.ID] = -1
			if !rec(i + 1) {
				return false
			}
		}
		delete(ch, xt.ID)
		return true
	}
	rec(0)
	return nil
}

func (db *DB) instantiate(ch choice) map[string]*engine.Relation {
	out := map[string]*engine.Relation{}
	for _, name := range db.order {
		r := db.Rels[name]
		cols := make([]engine.Column, len(r.Attrs))
		for i, a := range r.Attrs {
			cols[i] = engine.Column{Name: name + "." + a, Kind: engine.KindNull}
		}
		rel := engine.NewRelation(engine.Schema{Cols: cols})
		for _, xt := range r.XTs {
			ai, ok := ch[xt.ID]
			if !ok || ai < 0 {
				continue
			}
			rel.Rows = append(rel.Rows, xt.Alts[ai].Vals)
		}
		out[name] = rel
	}
	return out
}

// WorldSetSignature fingerprints the represented world-set.
func (db *DB) WorldSetSignature(maxWorlds int64) ([]string, error) {
	all, err := db.allXTuples()
	if err != nil {
		return nil, err
	}
	n := int64(1)
	for _, xt := range all {
		k := int64(len(xt.Alts))
		if xt.Maybe || len(xt.Alts) == 0 {
			k++
		}
		n *= k
		if n > maxWorlds {
			return nil, fmt.Errorf("uldb: more than %d candidate worlds", maxWorlds)
		}
	}
	seen := map[string]bool{}
	err = db.EnumWorlds(func(world map[string]*engine.Relation) bool {
		seen[worldSig(world)] = true
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

func worldSig(world map[string]*engine.Relation) string {
	names := make([]string, 0, len(world))
	for n := range world {
		names = append(names, n)
	}
	sort.Strings(names)
	sig := ""
	for _, n := range names {
		sig += "#" + n + "{"
		for _, t := range world[n].Sorted() {
			sig += engine.KeyString(t) + ";"
		}
		sig += "}"
	}
	return sig
}
