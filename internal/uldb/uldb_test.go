package uldb

import (
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
)

// vehiclesULDB builds the ULDB of Example 5.4 (the paper's equivalent
// of the Figure 1 vehicles database): x-tuples a, b, c, d with lineage
// Λ tying b's position choice to c's.
func vehiclesULDB() *DB {
	db := NewDB()
	r := db.AddRelation("r", "id", "type", "faction")
	a := r.AddXTuple(1, false)
	a.AddAlt(nil, engine.Int(1), engine.Str("Tank"), engine.Str("Friend"))
	c := r.AddXTuple(3, false)
	c.AddAlt(nil, engine.Int(3), engine.Str("Tank"), engine.Str("Enemy"))
	c.AddAlt(nil, engine.Int(2), engine.Str("Tank"), engine.Str("Enemy"))
	b := r.AddXTuple(2, false)
	b.AddAlt([]AltID{{XT: 3, Alt: 0}}, engine.Int(2), engine.Str("Transport"), engine.Str("Friend"))
	b.AddAlt([]AltID{{XT: 3, Alt: 1}}, engine.Int(3), engine.Str("Transport"), engine.Str("Friend"))
	d := r.AddXTuple(4, false)
	d.AddAlt(nil, engine.Int(4), engine.Str("Tank"), engine.Str("Friend"))
	d.AddAlt(nil, engine.Int(4), engine.Str("Tank"), engine.Str("Enemy"))
	d.AddAlt(nil, engine.Int(4), engine.Str("Transport"), engine.Str("Friend"))
	d.AddAlt(nil, engine.Int(4), engine.Str("Transport"), engine.Str("Enemy"))
	return db
}

func TestVehiclesULDBWorlds(t *testing.T) {
	db := vehiclesULDB()
	count := 0
	err := db.EnumWorlds(func(world map[string]*engine.Relation) bool {
		count++
		if world["r"].Len() != 4 {
			t.Fatalf("every world has 4 vehicles, got %d", world["r"].Len())
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 (a) × 2 (b/c linked) × 4 (d) = 8 worlds, as in Example 2.1.
	if count != 8 {
		t.Fatalf("want 8 worlds, got %d", count)
	}
}

func TestLemma55ConversionPreservesWorlds(t *testing.T) {
	db := vehiclesULDB()
	udb, err := db.ToUDB()
	if err != nil {
		t.Fatal(err)
	}
	s1, err := db.WorldSetSignature(10000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := udb.WorldSetSignature(10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("world-set sizes differ: ULDB %d vs U-relations %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("world-sets differ at %d", i)
		}
	}
}

func TestSelectProjectLineage(t *testing.T) {
	db := vehiclesULDB()
	ids := NewIDGen(db.MaxXTupleID())
	sel, err := Select(db.Rels["r"],
		engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")), ids)
	if err != nil {
		t.Fatal(err)
	}
	// c (2 alts, both enemy) and d (2 of 4 alts) survive.
	if len(sel.XTs) != 2 {
		t.Fatalf("want 2 x-tuples, got %d", len(sel.XTs))
	}
	if !sel.XTs[1].Maybe {
		t.Fatal("d lost alternatives and must become optional")
	}
	proj, err := Project(sel, []string{"id"}, ids)
	if err != nil {
		t.Fatal(err)
	}
	poss := proj.PossibleTuples()
	if poss.Len() != 3 { // ids 3, 2 (from c) and 4 (from d)
		t.Fatalf("want 3 possible ids, got %d:\n%s", poss.Len(), poss)
	}
	// Lineage of the first projected alternative points back through
	// the selection to the base alternative.
	if len(proj.XTs[0].Alts[0].Lineage) == 0 {
		t.Fatal("projection must accumulate lineage")
	}
}

func TestJoinProducesErroneousTuplesAndMinimize(t *testing.T) {
	// Self-join of the enemy vehicles on different ids: c's two
	// alternatives are mutually exclusive, so combinations of (3,·) with
	// (2,·) from the same x-tuple are erroneous — present after the
	// join, gone after minimization.
	db := vehiclesULDB()
	ids := NewIDGen(db.MaxXTupleID())
	enemies, err := Select(db.Rels["r"],
		engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")), ids)
	if err != nil {
		t.Fatal(err)
	}
	idsOnly, err := Project(enemies, []string{"id"}, ids)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Project(enemies, []string{"id"}, ids)
	if err != nil {
		t.Fatal(err)
	}
	rhs.Attrs = []string{"id2"}
	joined, err := Join(idsOnly, rhs,
		engine.Cmp(engine.NE, engine.Col("id"), engine.Col("id2")), ids)
	if err != nil {
		t.Fatal(err)
	}
	before := joined.PossibleTuples()
	minimized := Minimize(joined)
	after := minimized.PossibleTuples()
	// (3,2)/(2,3) pairs rely on both alternatives of c simultaneously:
	// erroneous.
	hasPair := func(rel *engine.Relation, a, b int64) bool {
		for _, row := range rel.Rows {
			if row[0].AsInt() == a && row[1].AsInt() == b {
				return true
			}
		}
		return false
	}
	if !hasPair(before, 3, 2) {
		t.Fatalf("join without minimization should contain the erroneous pair (3,2):\n%s", before)
	}
	if hasPair(after, 3, 2) || hasPair(after, 2, 3) {
		t.Fatalf("minimization must remove erroneous pairs:\n%s", after)
	}
	if !hasPair(after, 3, 4) || !hasPair(after, 4, 3) {
		t.Fatalf("real pairs must survive minimization:\n%s", after)
	}
}

func TestMinimizedJoinMatchesUDBGroundTruth(t *testing.T) {
	// After minimization, the ULDB join's possible tuples equal the
	// U-relational (world-exact) evaluation of the same query.
	db := vehiclesULDB()
	udb, err := db.ToUDB()
	if err != nil {
		t.Fatal(err)
	}
	q := core.Join(
		core.Project(core.Select(core.RelAs("r", "s1"),
			engine.Cmp(engine.EQ, engine.Col("s1.faction"), engine.ConstStr("Enemy"))), "s1.id"),
		core.Project(core.Select(core.RelAs("r", "s2"),
			engine.Cmp(engine.EQ, engine.Col("s2.faction"), engine.ConstStr("Enemy"))), "s2.id"),
		engine.Cmp(engine.NE, engine.Col("s1.id"), engine.Col("s2.id")))
	want, err := udb.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := NewIDGen(db.MaxXTupleID())
	enemies, _ := Select(db.Rels["r"],
		engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")), ids)
	l, _ := Project(enemies, []string{"id"}, ids)
	r, _ := Project(enemies, []string{"id"}, ids)
	r.Attrs = []string{"id2"}
	joined, err := Join(l, r, engine.Cmp(engine.NE, engine.Col("id"), engine.Col("id2")), ids)
	if err != nil {
		t.Fatal(err)
	}
	got := Minimize(joined).PossibleTuples()
	if !got.EqualAsSet(want) {
		t.Fatalf("minimized ULDB join vs U-relations:\n%s\nvs\n%s", got, want)
	}
}

func TestOrSetSuccinctness(t *testing.T) {
	// Theorem 5.6: or-set relations are linear as U-relations but
	// exponential (in arity) as ULDBs.
	n, arity, k := 3, 4, 3
	udbRep := OrSetUDB(n, arity, k)
	uldbRep := OrSetULDB(n, arity, k)
	uRows := 0
	for _, name := range udbRep.RelNames() {
		for _, p := range udbRep.Rels[name].Parts {
			uRows += len(p.Rows)
		}
	}
	if uRows != n*arity*k {
		t.Fatalf("U-relations should have n·arity·k = %d rows, got %d", n*arity*k, uRows)
	}
	alts := uldbRep.Rels["r"].NumAlternatives()
	want := n * 81 // k^arity = 3^4
	if alts != want {
		t.Fatalf("ULDB should have n·k^arity = %d alternatives, got %d", want, alts)
	}
	// Same world count.
	wantWorlds := udbRep.W.Log10Worlds()
	if wantWorlds <= 0 {
		t.Fatal("or-set UDB should have many worlds")
	}
}

func TestDuplicateXTupleIDRejected(t *testing.T) {
	db := NewDB()
	r := db.AddRelation("r", "a")
	r.AddXTuple(1, false).AddAlt(nil, engine.Int(1))
	r.AddXTuple(1, false).AddAlt(nil, engine.Int(2))
	if err := db.EnumWorlds(func(map[string]*engine.Relation) bool { return true }); err == nil {
		t.Fatal("duplicate x-tuple ids must be rejected")
	}
}

func TestFromTupleLevelResult(t *testing.T) {
	// Round-trip a U-relational query result into ULDB form and check
	// the possible tuples coincide (after minimization).
	db := vehiclesULDB()
	udb, err := db.ToUDB()
	if err != nil {
		t.Fatal(err)
	}
	q := core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")))
	res, err := udb.Eval(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := NewIDGen(1000)
	rel, aux, err := FromTupleLevelResult(res, "enemy", ids)
	if err != nil {
		t.Fatal(err)
	}
	if aux == nil {
		t.Fatal("expected auxiliary variable relation")
	}
	got := Minimize(rel).PossibleTuples()
	want := res.PossibleTuples()
	if !got.EqualAsSet(want) {
		t.Fatalf("tuple-level conversion changed possible tuples:\n%s\nvs\n%s", got, want)
	}
}
