package uldb

import (
	"fmt"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/ws"
)

// ToUDB translates a ULDB into a U-relational database in linear time
// (Lemma 5.5): every x-tuple t gets a variable c_t whose domain indexes
// its alternatives (plus a fresh value for '?'-optional x-tuples); the
// alternative (t, j) with lineage {(t1,j1),...,(tn,jn)} becomes a
// U-relation tuple with ws-descriptor
//
//	[(c_t, j), (c_t1, j1), ..., (c_tn, jn)].
//
// One refinement keeps the world-set exact for the paper's own Example
// 5.4: when a non-optional x-tuple's alternatives are fully
// distinguished by their lineage (mutually exclusive lineage that
// exhausts the referenced choice), the alternative choice carries no
// information of its own and c_t is elided — the descriptor is the
// lineage alone, exactly how Figure 1 shares variable x between the
// mutually constrained vehicles b and c. Without elision the encoding
// would admit spurious worlds in which a lineage-bound, non-optional
// x-tuple disappears.
//
// The result is tuple-level: one partition carrying all attributes.
func (db *DB) ToUDB() (*core.UDB, error) {
	out := core.NewUDB()
	all, err := db.allXTuples()
	if err != nil {
		return nil, err
	}
	// First pass: decide which x-tuples need their own variable.
	vars := map[int64]ws.Var{}
	elide := map[int64]bool{}
	for _, xt := range all {
		if db.lineageDistinguished(xt) {
			elide[xt.ID] = true
			continue
		}
		k := len(xt.Alts)
		if xt.Maybe || len(xt.Alts) == 0 {
			k++ // the "none" world
		}
		if k < 2 {
			// Single mandatory alternative without distinguishing
			// lineage: certain content, no variable needed.
			elide[xt.ID] = true
			continue
		}
		dom := make([]ws.Val, k)
		for i := range dom {
			dom[i] = ws.Val(i + 1)
		}
		x, err := out.W.NewVar(fmt.Sprintf("ct%d", xt.ID), dom)
		if err != nil {
			return nil, err
		}
		vars[xt.ID] = x
	}
	for _, name := range db.order {
		r := db.Rels[name]
		if err := out.AddRelation(name, r.Attrs...); err != nil {
			return nil, err
		}
		part, err := out.AddPartition(name, "u_"+name, r.Attrs...)
		if err != nil {
			return nil, err
		}
		for _, xt := range r.XTs {
			for ai, a := range xt.Alts {
				var assigns []ws.Assignment
				if !elide[xt.ID] {
					assigns = append(assigns, ws.A(vars[xt.ID], ws.Val(ai+1)))
				}
				bad := false
				for _, dep := range a.Lineage {
					x, exists := vars[dep.XT]
					if !exists {
						if elide[dep.XT] {
							// The target x-tuple is certain (single
							// mandatory alternative): the dependency
							// is vacuous if it points at that
							// alternative, unsatisfiable otherwise.
							if dep.Alt != 0 {
								bad = true
							}
							continue
						}
						return nil, fmt.Errorf("uldb: lineage references unknown x-tuple %d", dep.XT)
					}
					assigns = append(assigns, ws.A(x, ws.Val(dep.Alt+1)))
				}
				if bad {
					continue
				}
				d, err := ws.NewDescriptor(assigns...)
				if err != nil {
					// Lineage internally inconsistent: the alternative
					// is erroneous and appears in no world; skip it
					// (U-relations have no erroneous tuples).
					continue
				}
				part.Add(d, xt.ID, a.Vals...)
			}
		}
	}
	return out, nil
}

// lineageDistinguished reports whether a non-optional x-tuple's
// alternatives are fully determined by their lineage: every alternative
// has a single-assignment lineage on one shared target x-tuple, with
// pairwise distinct alternatives that exhaust the target's choices.
func (db *DB) lineageDistinguished(xt *XTuple) bool {
	if xt.Maybe || len(xt.Alts) < 2 {
		return false
	}
	var target int64 = -1
	seen := map[int]bool{}
	for _, a := range xt.Alts {
		if len(a.Lineage) != 1 {
			return false
		}
		dep := a.Lineage[0]
		if target == -1 {
			target = dep.XT
		} else if target != dep.XT {
			return false
		}
		if seen[dep.Alt] {
			return false
		}
		seen[dep.Alt] = true
	}
	// Exhaustiveness: the lineage must cover every alternative of the
	// (non-optional) target.
	for _, r := range db.Rels {
		for _, t := range r.XTs {
			if t.ID == target {
				return !t.Maybe && len(seen) == len(t.Alts)
			}
		}
	}
	return false
}

// FromTupleLevelResult converts a tuple-level U-relational query result
// into a ULDB relation the way the paper's experiment maps MayBMS data
// into Trio: one x-tuple per tuple id (group of result rows), one
// alternative per row, and auxiliary "variable" x-tuples whose
// alternatives stand for the domain values; descriptor assignments
// become lineage pointers to those auxiliary alternatives. The second
// return value is the auxiliary relation.
func FromTupleLevelResult(res *core.UResult, name string, ids *idGen) (*Relation, *Relation, error) {
	aux := &Relation{Name: name + "_vars", Attrs: []string{"var", "rng"}}
	auxByVar := map[ws.Var]*XTuple{}
	valIdx := map[ws.Var]map[ws.Val]int{}
	ensureVar := func(x ws.Var) *XTuple {
		if xt, ok := auxByVar[x]; ok {
			return xt
		}
		xt := aux.AddXTuple(ids.get(), false)
		valIdx[x] = map[ws.Val]int{}
		for i, v := range res.W.Domain(x) {
			xt.AddAlt(nil, engine.Int(int64(x)), engine.Int(int64(v)))
			valIdx[x][v] = i
		}
		auxByVar[x] = xt
		return xt
	}
	out := &Relation{Name: name, Attrs: append([]string{}, res.Attrs...)}
	groups := map[string]*XTuple{}
	for _, row := range res.Rows {
		key := engine.KeyString(row.TIDs)
		xt, ok := groups[key]
		if !ok {
			xt = out.AddXTuple(ids.get(), true)
			groups[key] = xt
		}
		var lin []AltID
		for _, a := range row.D {
			if a.Var == ws.TrivialVar {
				continue
			}
			av := ensureVar(a.Var)
			lin = append(lin, AltID{XT: av.ID, Alt: valIdx[a.Var][a.Val]})
		}
		xt.AddAlt(lin, row.Vals...)
	}
	return out, aux, nil
}

// OrSetUDB builds an or-set relation (Theorem 5.6's separating family)
// as attribute-level U-relations: n tuples over `arity` attributes,
// each field independently one of k values. Linear in n·arity·k.
func OrSetUDB(n, arity, k int) *core.UDB {
	db := core.NewUDB()
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	db.MustAddRelation("r", attrs...)
	for ai, a := range attrs {
		p := db.MustAddPartition("r", "u_r_"+a, a)
		for tid := int64(1); tid <= int64(n); tid++ {
			dom := make([]ws.Val, k)
			for j := range dom {
				dom[j] = ws.Val(j + 1)
			}
			x := db.W.MustNewVar(fmt.Sprintf("t%d_%s", tid, a), dom...)
			for j := 0; j < k; j++ {
				p.Add(ws.MustDescriptor(ws.A(x, ws.Val(j+1))), tid,
					engine.Int(int64(ai*1000+j)))
			}
		}
	}
	return db
}

// OrSetULDB builds the same or-set world-set as a ULDB: each x-tuple
// must enumerate all k^arity value combinations as alternatives —
// exponential in the arity (Theorem 5.6).
func OrSetULDB(n, arity, k int) *DB {
	db := NewDB()
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	r := db.AddRelation("r", attrs...)
	var id int64
	for tid := 1; tid <= n; tid++ {
		id++
		xt := r.AddXTuple(id, false)
		combos := 1
		for i := 0; i < arity; i++ {
			combos *= k
		}
		for c := 0; c < combos; c++ {
			vals := make(engine.Tuple, arity)
			rem := c
			for i := 0; i < arity; i++ {
				vals[i] = engine.Int(int64(i*1000 + rem%k))
				rem /= k
			}
			xt.AddAlt(nil, vals...)
		}
	}
	return db
}
