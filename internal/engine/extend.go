package engine

// NamedExpr pairs an expression with an output column name.
type NamedExpr struct {
	Name string
	E    Expr
	Kind Kind // declared output kind (for schema purposes)
}

// ExtendIter appends computed columns to each input row. The U-relation
// union translation uses it to pad ws-descriptors to a common width and
// to add NULL tuple-id columns for the other side's relations.
type ExtendIter struct {
	In    Iterator
	Exprs []NamedExpr

	bound []Expr
	sch   Schema
}

// NewExtend builds an extend operator.
func NewExtend(in Iterator, exprs []NamedExpr) *ExtendIter {
	return &ExtendIter{In: in, Exprs: exprs}
}

func (e *ExtendIter) Open() error {
	if err := e.In.Open(); err != nil {
		return err
	}
	in := e.In.Schema()
	e.bound = make([]Expr, len(e.Exprs))
	cols := make([]Column, 0, in.Len()+len(e.Exprs))
	cols = append(cols, in.Cols...)
	for i, ne := range e.Exprs {
		b, err := ne.E.Bind(in)
		if err != nil {
			return err
		}
		e.bound[i] = b
		cols = append(cols, Column{Name: ne.Name, Kind: ne.Kind})
	}
	e.sch = Schema{Cols: cols}
	return nil
}

func (e *ExtendIter) Next() (Tuple, bool, error) {
	row, ok, err := e.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Tuple, 0, len(row)+len(e.bound))
	out = append(out, row...)
	for _, b := range e.bound {
		out = append(out, b.Eval(row))
	}
	return out, true, nil
}

func (e *ExtendIter) Close() error { return e.In.Close() }

func (e *ExtendIter) Schema() Schema {
	if e.sch.Len() > 0 {
		return e.sch
	}
	in := e.In.Schema()
	cols := make([]Column, 0, in.Len()+len(e.Exprs))
	cols = append(cols, in.Cols...)
	for _, ne := range e.Exprs {
		cols = append(cols, Column{Name: ne.Name, Kind: ne.Kind})
	}
	return Schema{Cols: cols}
}

// ExtendPlan is the logical node for ExtendIter.
type ExtendPlan struct {
	Child Plan
	Exprs []NamedExpr
}

// Extend builds an extend node.
func Extend(child Plan, exprs ...NamedExpr) *ExtendPlan {
	return &ExtendPlan{Child: child, Exprs: exprs}
}

func (p *ExtendPlan) Schema(cat *Catalog) (Schema, error) {
	in, err := p.Child.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	cols := make([]Column, 0, in.Len()+len(p.Exprs))
	cols = append(cols, in.Cols...)
	for _, ne := range p.Exprs {
		cols = append(cols, Column{Name: ne.Name, Kind: ne.Kind})
	}
	return Schema{Cols: cols}, nil
}

func (p *ExtendPlan) Children() []Plan { return []Plan{p.Child} }
func (p *ExtendPlan) WithChildren(ch []Plan) Plan {
	return &ExtendPlan{Child: ch[0], Exprs: p.Exprs}
}

func (p *ExtendPlan) Label() string {
	names := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		names[i] = ne.Name
	}
	return "Extend: " + joinStrings(names)
}
