package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a scalar expression evaluated against a tuple. Expressions are
// built unresolved (column references by name) and bound to a schema
// before execution; Bind returns a resolved copy and never mutates.
type Expr interface {
	// Eval evaluates the bound expression on a row.
	Eval(row Tuple) Value
	// Bind resolves column references against sch.
	Bind(sch Schema) (Expr, error)
	// Columns appends the names of all referenced columns to dst.
	Columns(dst []string) []string
	// String renders the expression for EXPLAIN output.
	String() string
}

// ColRef references a column by name; after Bind, Idx is the position in
// the input schema.
type ColRef struct {
	Name string
	Idx  int
}

// Col builds an unresolved column reference.
func Col(name string) *ColRef { return &ColRef{Name: name, Idx: -1} }

// Eval returns the referenced field.
func (c *ColRef) Eval(row Tuple) Value {
	return row[c.Idx]
}

// Bind resolves the reference.
func (c *ColRef) Bind(sch Schema) (Expr, error) {
	i := sch.IndexOf(c.Name)
	if i < 0 {
		return nil, fmt.Errorf("engine: unknown column %q in %v", c.Name, sch.Names())
	}
	return &ColRef{Name: c.Name, Idx: i}, nil
}

// Columns appends the column name.
func (c *ColRef) Columns(dst []string) []string { return append(dst, c.Name) }

func (c *ColRef) String() string { return c.Name }

// ConstExpr is a literal value.
type ConstExpr struct{ Val Value }

// Const builds a literal expression.
func Const(v Value) *ConstExpr { return &ConstExpr{Val: v} }

// ConstInt, ConstStr, ConstFloat are literal shorthands.
func ConstInt(i int64) *ConstExpr     { return Const(Int(i)) }
func ConstStr(s string) *ConstExpr    { return Const(Str(s)) }
func ConstFloat(f float64) *ConstExpr { return Const(Float(f)) }

// Eval returns the literal.
func (c *ConstExpr) Eval(Tuple) Value { return c.Val }

// Bind is a no-op for literals.
func (c *ConstExpr) Bind(Schema) (Expr, error) { return c, nil }

// Columns is a no-op for literals.
func (c *ConstExpr) Columns(dst []string) []string { return dst }

func (c *ConstExpr) String() string { return c.Val.Quoted() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// CmpExpr compares two subexpressions. Comparisons involving NULL yield
// false (two-valued collapse of SQL's UNKNOWN), except EQ/NE never treat
// NULL equal to anything including NULL.
type CmpExpr struct {
	Op   CmpOp
	L, R Expr
}

// Cmp builds a comparison.
func Cmp(op CmpOp, l, r Expr) *CmpExpr { return &CmpExpr{Op: op, L: l, R: r} }

// Eq builds an equality comparison between two columns or expressions.
func Eq(l, r Expr) *CmpExpr { return Cmp(EQ, l, r) }

// EqCols builds l = r over column names.
func EqCols(l, r string) *CmpExpr { return Eq(Col(l), Col(r)) }

// Eval evaluates the comparison.
func (c *CmpExpr) Eval(row Tuple) Value {
	lv := c.L.Eval(row)
	rv := c.R.Eval(row)
	if lv.IsNull() || rv.IsNull() {
		return Bool(false)
	}
	cv := Compare(lv, rv)
	switch c.Op {
	case EQ:
		return Bool(cv == 0)
	case NE:
		return Bool(cv != 0)
	case LT:
		return Bool(cv < 0)
	case LE:
		return Bool(cv <= 0)
	case GT:
		return Bool(cv > 0)
	case GE:
		return Bool(cv >= 0)
	}
	return Bool(false)
}

// Bind resolves both sides.
func (c *CmpExpr) Bind(sch Schema) (Expr, error) {
	l, err := c.L.Bind(sch)
	if err != nil {
		return nil, err
	}
	r, err := c.R.Bind(sch)
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: c.Op, L: l, R: r}, nil
}

// Columns collects referenced columns from both sides.
func (c *CmpExpr) Columns(dst []string) []string {
	return c.R.Columns(c.L.Columns(dst))
}

func (c *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	AndOp LogicOp = iota
	OrOp
	NotOp
)

// LogicExpr combines boolean subexpressions. For NotOp only Args[0] is
// used.
type LogicExpr struct {
	Op   LogicOp
	Args []Expr
}

// And conjoins expressions; And() with no arguments is the constant
// true, And(e) is e.
func And(args ...Expr) Expr {
	flat := make([]Expr, 0, len(args))
	for _, a := range args {
		if a == nil {
			continue
		}
		if l, ok := a.(*LogicExpr); ok && l.Op == AndOp {
			flat = append(flat, l.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return Const(Bool(true))
	case 1:
		return flat[0]
	}
	return &LogicExpr{Op: AndOp, Args: flat}
}

// Or disjoins expressions; Or() with no arguments is the constant false.
func Or(args ...Expr) Expr {
	flat := make([]Expr, 0, len(args))
	for _, a := range args {
		if a == nil {
			continue
		}
		if l, ok := a.(*LogicExpr); ok && l.Op == OrOp {
			flat = append(flat, l.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return Const(Bool(false))
	case 1:
		return flat[0]
	}
	return &LogicExpr{Op: OrOp, Args: flat}
}

// Not negates an expression.
func Not(a Expr) Expr { return &LogicExpr{Op: NotOp, Args: []Expr{a}} }

// Eval evaluates the connective with short-circuiting.
func (l *LogicExpr) Eval(row Tuple) Value {
	switch l.Op {
	case AndOp:
		for _, a := range l.Args {
			if !a.Eval(row).Truth() {
				return Bool(false)
			}
		}
		return Bool(true)
	case OrOp:
		for _, a := range l.Args {
			if a.Eval(row).Truth() {
				return Bool(true)
			}
		}
		return Bool(false)
	case NotOp:
		return Bool(!l.Args[0].Eval(row).Truth())
	}
	return Bool(false)
}

// Bind resolves all children.
func (l *LogicExpr) Bind(sch Schema) (Expr, error) {
	args := make([]Expr, len(l.Args))
	for i, a := range l.Args {
		b, err := a.Bind(sch)
		if err != nil {
			return nil, err
		}
		args[i] = b
	}
	return &LogicExpr{Op: l.Op, Args: args}, nil
}

// Columns collects from all children.
func (l *LogicExpr) Columns(dst []string) []string {
	for _, a := range l.Args {
		dst = a.Columns(dst)
	}
	return dst
}

func (l *LogicExpr) String() string {
	switch l.Op {
	case NotOp:
		return fmt.Sprintf("NOT (%s)", l.Args[0])
	case AndOp:
		parts := make([]string, len(l.Args))
		for i, a := range l.Args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	default:
		parts := make([]string, len(l.Args))
		for i, a := range l.Args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	AddOp ArithOp = iota
	SubOp
	MulOp
	DivOp
	ModOp
)

func (o ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[o]
}

// ArithExpr is binary arithmetic; ints stay ints unless either side is
// float. Division by zero yields NULL.
type ArithExpr struct {
	Op   ArithOp
	L, R Expr
}

// Arith builds an arithmetic expression.
func Arith(op ArithOp, l, r Expr) *ArithExpr { return &ArithExpr{Op: op, L: l, R: r} }

// Eval evaluates arithmetic with numeric promotion.
func (a *ArithExpr) Eval(row Tuple) Value {
	lv := a.L.Eval(row)
	rv := a.R.Eval(row)
	if lv.IsNull() || rv.IsNull() {
		return Null()
	}
	if lv.K == KindFloat || rv.K == KindFloat {
		x, y := lv.AsFloat(), rv.AsFloat()
		switch a.Op {
		case AddOp:
			return Float(x + y)
		case SubOp:
			return Float(x - y)
		case MulOp:
			return Float(x * y)
		case DivOp:
			if y == 0 {
				return Null()
			}
			return Float(x / y)
		case ModOp:
			return Null()
		}
	}
	x, y := lv.AsInt(), rv.AsInt()
	switch a.Op {
	case AddOp:
		return Int(x + y)
	case SubOp:
		return Int(x - y)
	case MulOp:
		return Int(x * y)
	case DivOp:
		if y == 0 {
			return Null()
		}
		return Int(x / y)
	case ModOp:
		if y == 0 {
			return Null()
		}
		return Int(x % y)
	}
	return Null()
}

// Bind resolves both sides.
func (a *ArithExpr) Bind(sch Schema) (Expr, error) {
	l, err := a.L.Bind(sch)
	if err != nil {
		return nil, err
	}
	r, err := a.R.Bind(sch)
	if err != nil {
		return nil, err
	}
	return &ArithExpr{Op: a.Op, L: l, R: r}, nil
}

// Columns collects from both sides.
func (a *ArithExpr) Columns(dst []string) []string {
	return a.R.Columns(a.L.Columns(dst))
}

func (a *ArithExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// InExpr tests membership of an expression in a literal list.
type InExpr struct {
	E    Expr
	Vals []Value
}

// In builds a membership test.
func In(e Expr, vals ...Value) *InExpr { return &InExpr{E: e, Vals: vals} }

// Eval evaluates the membership test; NULL input yields false.
func (in *InExpr) Eval(row Tuple) Value {
	v := in.E.Eval(row)
	if v.IsNull() {
		return Bool(false)
	}
	for _, w := range in.Vals {
		if Compare(v, w) == 0 {
			return Bool(true)
		}
	}
	return Bool(false)
}

// Bind resolves the tested expression.
func (in *InExpr) Bind(sch Schema) (Expr, error) {
	e, err := in.E.Bind(sch)
	if err != nil {
		return nil, err
	}
	return &InExpr{E: e, Vals: in.Vals}, nil
}

// Columns collects from the tested expression.
func (in *InExpr) Columns(dst []string) []string { return in.E.Columns(dst) }

func (in *InExpr) String() string {
	parts := make([]string, len(in.Vals))
	for i, v := range in.Vals {
		parts[i] = v.Quoted()
	}
	return fmt.Sprintf("%s IN (%s)", in.E, strings.Join(parts, ", "))
}

// IsNullExpr tests whether a subexpression is NULL.
type IsNullExpr struct{ E Expr }

// IsNull builds a NULL test.
func IsNull(e Expr) *IsNullExpr { return &IsNullExpr{E: e} }

// Eval evaluates the NULL test.
func (n *IsNullExpr) Eval(row Tuple) Value { return Bool(n.E.Eval(row).IsNull()) }

// Bind resolves the child.
func (n *IsNullExpr) Bind(sch Schema) (Expr, error) {
	e, err := n.E.Bind(sch)
	if err != nil {
		return nil, err
	}
	return &IsNullExpr{E: e}, nil
}

// Columns collects from the child.
func (n *IsNullExpr) Columns(dst []string) []string { return n.E.Columns(dst) }

func (n *IsNullExpr) String() string { return fmt.Sprintf("%s IS NULL", n.E) }

// SplitConjuncts flattens nested ANDs into a list of conjuncts.
// Constant-true conjuncts are dropped.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*LogicExpr); ok && l.Op == AndOp {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, SplitConjuncts(a)...)
		}
		return out
	}
	if c, ok := e.(*ConstExpr); ok && c.Val.Truth() {
		return nil
	}
	return []Expr{e}
}

// ExprColumns returns the sorted, deduplicated column names referenced
// by e (nil-safe).
func ExprColumns(e Expr) []string {
	if e == nil {
		return nil
	}
	cols := e.Columns(nil)
	sort.Strings(cols)
	out := cols[:0]
	var prev string
	for i, c := range cols {
		if i == 0 || c != prev {
			out = append(out, c)
		}
		prev = c
	}
	return out
}

// CoveredBy reports whether every column referenced by e resolves in
// sch (nil expressions are trivially covered).
func CoveredBy(e Expr, sch Schema) bool {
	if e == nil {
		return true
	}
	for _, c := range ExprColumns(e) {
		if !sch.Has(c) {
			return false
		}
	}
	return true
}

// EquiPair is an equality join condition column pair extracted from a
// predicate: left column (in the left input) = right column (in the
// right input).
type EquiPair struct {
	L, R string
}

// ExtractEquiJoin splits a join predicate into equi-join column pairs
// usable for hash/merge joins plus a residual expression evaluated on
// the concatenated row. left and right are the input schemas.
func ExtractEquiJoin(cond Expr, left, right Schema) (pairs []EquiPair, residual Expr) {
	var rest []Expr
	for _, c := range SplitConjuncts(cond) {
		if cmp, ok := c.(*CmpExpr); ok && cmp.Op == EQ {
			lc, lok := cmp.L.(*ColRef)
			rc, rok := cmp.R.(*ColRef)
			if lok && rok {
				switch {
				case left.Has(lc.Name) && right.Has(rc.Name) && !right.Has(lc.Name) && !left.Has(rc.Name):
					pairs = append(pairs, EquiPair{L: lc.Name, R: rc.Name})
					continue
				case left.Has(rc.Name) && right.Has(lc.Name) && !right.Has(rc.Name) && !left.Has(lc.Name):
					pairs = append(pairs, EquiPair{L: rc.Name, R: lc.Name})
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if len(rest) == 0 {
		return pairs, nil
	}
	return pairs, And(rest...)
}
