package engine

import (
	"fmt"
	"sort"
)

// Iterator is the Volcano-style physical operator interface. Open must
// be called before Next; Next returns (row, true, nil) per row and
// (nil, false, nil) at end of stream. Implementations are single-use.
type Iterator interface {
	Open() error
	Next() (Tuple, bool, error)
	Close() error
	Schema() Schema
}

// Drain runs an iterator to completion and materializes the result. It
// drives the batch fast path (see BatchIterator); single-tuple operators
// are adapted transparently.
func Drain(it Iterator) (*Relation, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	out := NewRelation(it.Schema())
	bit := Batched(it)
	for {
		batch, ok, err := bit.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out.Rows = append(out.Rows, batch...)
	}
}

// Count runs an iterator to completion and returns the row count
// without materializing.
func Count(it Iterator) (int64, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for {
		_, ok, err := it.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// ScanIter scans a materialized relation.
type ScanIter struct {
	Rel *Relation
	pos int
	cb  ColBatch // reused by the (transposing) columnar path
}

// NewScan builds a scan over r.
func NewScan(r *Relation) *ScanIter { return &ScanIter{Rel: r} }

func (s *ScanIter) Open() error { s.pos = 0; return nil }

func (s *ScanIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.Rel.Rows) {
		return nil, false, nil
	}
	t := s.Rel.Rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *ScanIter) Close() error   { return nil }
func (s *ScanIter) Schema() Schema { return s.Rel.Sch }

// FilterIter applies a predicate. Above a natively columnar input it
// evaluates the predicate vectorized over selection vectors (see
// NextColBatch); otherwise it runs the row paths below.
type FilterIter struct {
	In   Iterator
	Pred Expr // unbound

	bound Expr
	bin   BatchIterator // lazily set by NextBatch
	out   []Tuple       // reused output buffer for the batch path

	colNative bool             // input is columnar end-to-end
	colIn     ColBatchIterator // lazily set by NextColBatch
	vp        *vecPred         // compiled predicate for the columnar path
	sel       []int32          // reused selection buffer
	cb        ColBatch         // reused output batch header
}

// NewFilter builds a filter; pred is bound at Open time.
func NewFilter(in Iterator, pred Expr) *FilterIter {
	return &FilterIter{In: in, Pred: pred}
}

func (f *FilterIter) Open() error {
	if err := f.In.Open(); err != nil {
		return err
	}
	b, err := f.Pred.Bind(f.In.Schema())
	if err != nil {
		return err
	}
	f.bound = b
	f.bin = nil
	f.colIn = nil
	f.vp = nil
	_, f.colNative = NativeColumnar(f.In)
	return nil
}

func (f *FilterIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.bound.Eval(row).Truth() {
			return row, true, nil
		}
	}
}

func (f *FilterIter) Close() error   { return f.In.Close() }
func (f *FilterIter) Schema() Schema { return f.In.Schema() }

// ProjectIter projects to named columns (and may rename via "src AS dst"
// entries handled by the logical layer; physically it is index-based).
type ProjectIter struct {
	In    Iterator
	Names []string

	idx   []int
	sch   Schema
	bin   BatchIterator // lazily set by NextBatch
	out   []Tuple       // reused output buffer for the batch path
	arena outArena      // output cells for the row path (write-once)

	colNative bool             // input is columnar end-to-end
	colIn     ColBatchIterator // lazily set by NextColBatch
	cols      []ColVec         // reused projected column headers
	cb        ColBatch         // reused output batch header
}

// NewProject builds a projection onto the named columns.
func NewProject(in Iterator, names []string) *ProjectIter {
	return &ProjectIter{In: in, Names: names}
}

func (p *ProjectIter) Open() error {
	if err := p.In.Open(); err != nil {
		return err
	}
	insch := p.In.Schema()
	p.idx = make([]int, len(p.Names))
	cols := make([]Column, len(p.Names))
	for i, n := range p.Names {
		j := insch.IndexOf(n)
		if j < 0 {
			return fmt.Errorf("engine: project: column %q not in %v", n, insch.Names())
		}
		p.idx[i] = j
		cols[i] = Column{Name: n, Kind: insch.Cols[j].Kind}
	}
	p.sch = Schema{Cols: cols}
	p.bin = nil
	p.colIn = nil
	_, p.colNative = NativeColumnar(p.In)
	return nil
}

func (p *ProjectIter) Next() (Tuple, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := p.arena.carve(len(p.idx))
	for i, j := range p.idx {
		out[i] = row[j]
	}
	return out, true, nil
}

func (p *ProjectIter) Close() error { return p.In.Close() }

func (p *ProjectIter) Schema() Schema {
	if p.sch.Len() == 0 && len(p.Names) > 0 {
		// Schema before Open: best effort from input schema.
		insch := p.In.Schema()
		cols := make([]Column, len(p.Names))
		for i, n := range p.Names {
			j := insch.IndexOf(n)
			k := KindNull
			if j >= 0 {
				k = insch.Cols[j].Kind
			}
			cols[i] = Column{Name: n, Kind: k}
		}
		return Schema{Cols: cols}
	}
	return p.sch
}

// RenameIter relabels the columns of its input (width must match).
type RenameIter struct {
	In    Iterator
	Names []string
}

// NewRename relabels the input's columns positionally.
func NewRename(in Iterator, names []string) *RenameIter {
	return &RenameIter{In: in, Names: names}
}

func (r *RenameIter) Open() error {
	if len(r.Names) != r.In.Schema().Len() {
		return fmt.Errorf("engine: rename: %d names for %d columns",
			len(r.Names), r.In.Schema().Len())
	}
	return r.In.Open()
}

func (r *RenameIter) Next() (Tuple, bool, error) { return r.In.Next() }
func (r *RenameIter) Close() error               { return r.In.Close() }

func (r *RenameIter) Schema() Schema {
	in := r.In.Schema()
	cols := make([]Column, len(r.Names))
	for i, n := range r.Names {
		k := KindNull
		if i < len(in.Cols) {
			k = in.Cols[i].Kind
		}
		cols[i] = Column{Name: n, Kind: k}
	}
	return Schema{Cols: cols}
}

// DistinctIter removes duplicate rows via hashing.
type DistinctIter struct {
	In   Iterator
	seen map[string]struct{}
	buf  []byte // reused key-encoding buffer
}

// NewDistinct builds a duplicate-eliminating operator.
func NewDistinct(in Iterator) *DistinctIter { return &DistinctIter{In: in} }

func (d *DistinctIter) Open() error {
	d.seen = make(map[string]struct{})
	return d.In.Open()
}

func (d *DistinctIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := d.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		// The map[string(bytes)] lookup does not allocate; only fresh
		// keys pay a string conversion on insert.
		d.buf = AppendKey(d.buf[:0], row)
		if _, dup := d.seen[string(d.buf)]; dup {
			continue
		}
		d.seen[string(d.buf)] = struct{}{}
		return row, true, nil
	}
}

func (d *DistinctIter) Close() error   { d.seen = nil; return d.In.Close() }
func (d *DistinctIter) Schema() Schema { return d.In.Schema() }

// SortIter materializes and sorts its input by the named key columns
// (ascending, lexicographic).
type SortIter struct {
	In   Iterator
	Keys []string

	rows []Tuple
	pos  int
}

// NewSort builds an in-memory sort on the given key columns.
func NewSort(in Iterator, keys []string) *SortIter {
	return &SortIter{In: in, Keys: keys}
}

func (s *SortIter) Open() error {
	if err := s.In.Open(); err != nil {
		return err
	}
	sch := s.In.Schema()
	idx := make([]int, len(s.Keys))
	for i, k := range s.Keys {
		j := sch.IndexOf(k)
		if j < 0 {
			return fmt.Errorf("engine: sort: column %q not in %v", k, sch.Names())
		}
		idx[i] = j
	}
	for {
		row, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(a, b int) bool {
		ra, rb := s.rows[a], s.rows[b]
		for _, j := range idx {
			if c := Compare(ra[j], rb[j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

func (s *SortIter) Next() (Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *SortIter) Close() error   { s.rows = nil; return s.In.Close() }
func (s *SortIter) Schema() Schema { return s.In.Schema() }

// LimitIter passes through at most N rows.
type LimitIter struct {
	In Iterator
	N  int64

	seen int64
}

// NewLimit builds a limit operator.
func NewLimit(in Iterator, n int64) *LimitIter { return &LimitIter{In: in, N: n} }

func (l *LimitIter) Open() error { l.seen = 0; return l.In.Open() }

func (l *LimitIter) Next() (Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return row, true, nil
}

func (l *LimitIter) Close() error   { return l.In.Close() }
func (l *LimitIter) Schema() Schema { return l.In.Schema() }
