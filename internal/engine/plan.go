package engine

import (
	"fmt"

	"urel/internal/obs"
)

// Plan is a logical query plan node. Plans are built against a Catalog
// (scans resolve names at Schema/Build time), optimized by Optimize,
// and lowered to physical iterators by Build. Leaf nodes provided by
// external storage layers implement SourcePlan.
type Plan interface {
	// Schema computes the output schema of the node.
	Schema(cat *Catalog) (Schema, error)
	// Children returns the input plans (empty for leaves).
	Children() []Plan
	// WithChildren returns a copy of the node with replaced inputs.
	WithChildren(children []Plan) Plan
	// Label renders the node head for EXPLAIN.
	Label() string
}

// SourcePlan is a leaf plan backed by an external storage layer (e.g.
// internal/store's segment files). The engine treats it opaquely:
// Build lowers it via BuildIter, and the cardinality estimators consult
// EstimateRowCount, so storage formats can plug into planning without
// the engine importing them.
type SourcePlan interface {
	Plan
	// BuildIter lowers the leaf to a physical iterator.
	BuildIter(cfg ExecConfig) (Iterator, error)
	// EstimateRowCount estimates the rows the leaf will produce,
	// reflecting any source-level skipping (e.g. segment pruning).
	EstimateRowCount() float64
}

// ColumnarLeaf is implemented by source plans whose physical iterator
// serves column batches natively (ColumnarNative). EXPLAIN consults it
// to annotate each operator with its execution mode: a chain of
// filters and projections above a columnar leaf runs columnar
// (selection vectors, typed predicate loops) up to the first operator
// that needs rows.
type ColumnarLeaf interface {
	ColumnarScan() bool
}

// FilterAdvisor is implemented by source plans that can exploit a
// predicate evaluated directly above them to skip data (segment
// pruning by min/max statistics). The advice is purely an
// optimization: the filter is still applied on top, so sources may
// only skip rows that provably fail the predicate.
type FilterAdvisor interface {
	AdviseFilter(cond Expr)
}

// ScanPlan reads a named relation from the catalog.
type ScanPlan struct {
	Name string
}

// Scan builds a catalog scan.
func Scan(name string) *ScanPlan { return &ScanPlan{Name: name} }

func (p *ScanPlan) Schema(cat *Catalog) (Schema, error) {
	r, err := cat.Get(p.Name)
	if err != nil {
		return Schema{}, err
	}
	return r.Sch, nil
}

func (p *ScanPlan) Children() []Plan         { return nil }
func (p *ScanPlan) WithChildren([]Plan) Plan { c := *p; return &c }
func (p *ScanPlan) Label() string            { return "Seq Scan on " + p.Name }

// ValuesPlan scans an anonymous, already materialized relation. The
// U-relation layer uses it to evaluate over representations that are
// not registered in a catalog.
type ValuesPlan struct {
	Rel  *Relation
	Name string // display name for EXPLAIN
}

// Values builds a scan over an unregistered relation.
func Values(rel *Relation, name string) *ValuesPlan {
	return &ValuesPlan{Rel: rel, Name: name}
}

func (p *ValuesPlan) Schema(*Catalog) (Schema, error) { return p.Rel.Sch, nil }
func (p *ValuesPlan) Children() []Plan                { return nil }
func (p *ValuesPlan) WithChildren([]Plan) Plan        { c := *p; return &c }
func (p *ValuesPlan) Label() string {
	n := p.Name
	if n == "" {
		n = "values"
	}
	return fmt.Sprintf("Seq Scan on %s", n)
}

// FilterPlan applies a predicate.
type FilterPlan struct {
	Child Plan
	Cond  Expr
}

// Filter builds a selection.
func Filter(child Plan, cond Expr) *FilterPlan { return &FilterPlan{Child: child, Cond: cond} }

func (p *FilterPlan) Schema(cat *Catalog) (Schema, error) { return p.Child.Schema(cat) }
func (p *FilterPlan) Children() []Plan                    { return []Plan{p.Child} }
func (p *FilterPlan) WithChildren(ch []Plan) Plan         { return &FilterPlan{Child: ch[0], Cond: p.Cond} }
func (p *FilterPlan) Label() string                       { return "Filter: " + p.Cond.String() }

// ProjectPlan projects to named columns.
type ProjectPlan struct {
	Child Plan
	Names []string
}

// Project builds a projection.
func Project(child Plan, names ...string) *ProjectPlan {
	return &ProjectPlan{Child: child, Names: names}
}

func (p *ProjectPlan) Schema(cat *Catalog) (Schema, error) {
	in, err := p.Child.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	return in.Project(p.Names)
}

func (p *ProjectPlan) Children() []Plan { return []Plan{p.Child} }
func (p *ProjectPlan) WithChildren(ch []Plan) Plan {
	return &ProjectPlan{Child: ch[0], Names: p.Names}
}
func (p *ProjectPlan) Label() string { return "Project: " + joinStrings(p.Names) }

// RenamePlan relabels all columns positionally (relation aliasing).
type RenamePlan struct {
	Child Plan
	Names []string
}

// Rename relabels columns positionally.
func Rename(child Plan, names []string) *RenamePlan {
	return &RenamePlan{Child: child, Names: names}
}

func (p *RenamePlan) Schema(cat *Catalog) (Schema, error) {
	in, err := p.Child.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	if len(p.Names) != in.Len() {
		return Schema{}, fmt.Errorf("engine: rename: %d names for %d columns", len(p.Names), in.Len())
	}
	cols := make([]Column, in.Len())
	for i := range cols {
		cols[i] = Column{Name: p.Names[i], Kind: in.Cols[i].Kind}
	}
	return Schema{Cols: cols}, nil
}

func (p *RenamePlan) Children() []Plan { return []Plan{p.Child} }
func (p *RenamePlan) WithChildren(ch []Plan) Plan {
	return &RenamePlan{Child: ch[0], Names: p.Names}
}
func (p *RenamePlan) Label() string { return "Rename" }

// JoinKind selects inner join vs semi/anti join.
type JoinKind uint8

// Join kinds.
const (
	InnerJoin JoinKind = iota
	SemiJoin
	AntiJoin
)

func (k JoinKind) String() string {
	return [...]string{"Join", "Semi Join", "Anti Join"}[k]
}

// JoinPlan joins two inputs under an arbitrary predicate (nil = cross
// product). The physical algorithm is chosen at Build time.
type JoinPlan struct {
	Kind JoinKind
	L, R Plan
	Cond Expr
}

// Join builds an inner join.
func Join(l, r Plan, cond Expr) *JoinPlan { return &JoinPlan{Kind: InnerJoin, L: l, R: r, Cond: cond} }

// Semi builds a semi-join (rows of l with a match in r).
func Semi(l, r Plan, cond Expr) *JoinPlan { return &JoinPlan{Kind: SemiJoin, L: l, R: r, Cond: cond} }

// Anti builds an anti-join (rows of l with no match in r).
func Anti(l, r Plan, cond Expr) *JoinPlan { return &JoinPlan{Kind: AntiJoin, L: l, R: r, Cond: cond} }

func (p *JoinPlan) Schema(cat *Catalog) (Schema, error) {
	ls, err := p.L.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	if p.Kind != InnerJoin {
		return ls, nil
	}
	rs, err := p.R.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	return ls.Concat(rs), nil
}

func (p *JoinPlan) Children() []Plan { return []Plan{p.L, p.R} }
func (p *JoinPlan) WithChildren(ch []Plan) Plan {
	return &JoinPlan{Kind: p.Kind, L: ch[0], R: ch[1], Cond: p.Cond}
}

func (p *JoinPlan) Label() string {
	if p.Cond == nil {
		return "Nested Loop (cross)"
	}
	return p.Kind.String()
}

// UnionPlan is bag union (UNION ALL) of two width-compatible inputs.
type UnionPlan struct{ L, R Plan }

// Union builds a bag union.
func Union(l, r Plan) *UnionPlan { return &UnionPlan{L: l, R: r} }

func (p *UnionPlan) Schema(cat *Catalog) (Schema, error) { return p.L.Schema(cat) }
func (p *UnionPlan) Children() []Plan                    { return []Plan{p.L, p.R} }
func (p *UnionPlan) WithChildren(ch []Plan) Plan         { return &UnionPlan{L: ch[0], R: ch[1]} }
func (p *UnionPlan) Label() string                       { return "Append" }

// DiffPlan is set difference.
type DiffPlan struct{ L, R Plan }

// Diff builds a set difference.
func Diff(l, r Plan) *DiffPlan { return &DiffPlan{L: l, R: r} }

func (p *DiffPlan) Schema(cat *Catalog) (Schema, error) { return p.L.Schema(cat) }
func (p *DiffPlan) Children() []Plan                    { return []Plan{p.L, p.R} }
func (p *DiffPlan) WithChildren(ch []Plan) Plan         { return &DiffPlan{L: ch[0], R: ch[1]} }
func (p *DiffPlan) Label() string                       { return "Except" }

// IntersectPlan is set intersection.
type IntersectPlan struct{ L, R Plan }

// Intersect builds a set intersection.
func Intersect(l, r Plan) *IntersectPlan { return &IntersectPlan{L: l, R: r} }

func (p *IntersectPlan) Schema(cat *Catalog) (Schema, error) { return p.L.Schema(cat) }
func (p *IntersectPlan) Children() []Plan                    { return []Plan{p.L, p.R} }
func (p *IntersectPlan) WithChildren(ch []Plan) Plan         { return &IntersectPlan{L: ch[0], R: ch[1]} }
func (p *IntersectPlan) Label() string                       { return "Intersect" }

// DistinctPlan removes duplicates.
type DistinctPlan struct{ Child Plan }

// DistinctOf builds a duplicate elimination.
func DistinctOf(child Plan) *DistinctPlan { return &DistinctPlan{Child: child} }

func (p *DistinctPlan) Schema(cat *Catalog) (Schema, error) { return p.Child.Schema(cat) }
func (p *DistinctPlan) Children() []Plan                    { return []Plan{p.Child} }
func (p *DistinctPlan) WithChildren(ch []Plan) Plan         { return &DistinctPlan{Child: ch[0]} }
func (p *DistinctPlan) Label() string                       { return "HashAggregate (distinct)" }

// SortPlan sorts by key columns.
type SortPlan struct {
	Child Plan
	Keys  []string
}

// Sort builds a sort.
func Sort(child Plan, keys ...string) *SortPlan { return &SortPlan{Child: child, Keys: keys} }

func (p *SortPlan) Schema(cat *Catalog) (Schema, error) { return p.Child.Schema(cat) }
func (p *SortPlan) Children() []Plan                    { return []Plan{p.Child} }
func (p *SortPlan) WithChildren(ch []Plan) Plan         { return &SortPlan{Child: ch[0], Keys: p.Keys} }
func (p *SortPlan) Label() string                       { return "Sort: " + joinStrings(p.Keys) }

// LimitPlan caps the row count.
type LimitPlan struct {
	Child Plan
	N     int64
}

// Limit builds a limit.
func Limit(child Plan, n int64) *LimitPlan { return &LimitPlan{Child: child, N: n} }

func (p *LimitPlan) Schema(cat *Catalog) (Schema, error) { return p.Child.Schema(cat) }
func (p *LimitPlan) Children() []Plan                    { return []Plan{p.Child} }
func (p *LimitPlan) WithChildren(ch []Plan) Plan         { return &LimitPlan{Child: ch[0], N: p.N} }
func (p *LimitPlan) Label() string                       { return fmt.Sprintf("Limit %d", p.N) }

// AggPlan groups and aggregates.
type AggPlan struct {
	Child   Plan
	GroupBy []string
	Aggs    []AggSpec
}

// Agg builds a grouped aggregation.
func Agg(child Plan, groupBy []string, aggs ...AggSpec) *AggPlan {
	return &AggPlan{Child: child, GroupBy: groupBy, Aggs: aggs}
}

func (p *AggPlan) Schema(cat *Catalog) (Schema, error) {
	in, err := p.Child.Schema(cat)
	if err != nil {
		return Schema{}, err
	}
	h := &HashAggIter{In: NewScan(NewRelation(in)), GroupBy: p.GroupBy, Aggs: p.Aggs}
	return h.Schema(), nil
}

func (p *AggPlan) Children() []Plan { return []Plan{p.Child} }
func (p *AggPlan) WithChildren(ch []Plan) Plan {
	return &AggPlan{Child: ch[0], GroupBy: p.GroupBy, Aggs: p.Aggs}
}
func (p *AggPlan) Label() string { return "HashAggregate" }

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// JoinAlgo selects the physical join algorithm.
type JoinAlgo uint8

// Physical join algorithm choices. JoinAuto picks hash for equi-joins
// and nested loop otherwise.
const (
	JoinAuto JoinAlgo = iota
	JoinHash
	JoinMerge
	JoinNestedLoop
	// JoinIndex forces index-nested-loop; it degrades to hash when the
	// right side has no usable index on a join column.
	JoinIndex
)

// ExecConfig controls physical lowering; the zero value is the default
// configuration (optimizer on, automatic join selection, serial
// execution).
type ExecConfig struct {
	// DisableOptimizer skips logical optimization in Run/Explain.
	DisableOptimizer bool
	// Join forces a physical join algorithm (ablation experiments).
	Join JoinAlgo
	// Parallelism enables the parallel physical operators: 0 or 1 runs
	// fully serial (the default), n > 1 allows up to n worker
	// goroutines, and any negative value selects one worker per logical
	// CPU (runtime.GOMAXPROCS). Plans only switch to parallel operators
	// on inputs whose estimated cardinality clears ParallelThreshold, so
	// small queries keep the cheaper serial operators.
	Parallelism int
	// ParallelThreshold overrides the minimum estimated input row count
	// at which plans choose parallel operators; 0 means
	// DefaultParallelThreshold.
	ParallelThreshold float64
	// Trace, when non-nil, is the parent span operator traces attach
	// under: Build gives every plan node a child span and wraps its
	// iterator so actual rows/batches/time (and store-side stats) are
	// recorded. Nil — the default — builds the exact untraced iterator
	// tree; tracing costs nothing when off.
	Trace *obs.Span
}

// workers returns the effective worker count implied by Parallelism.
func (c ExecConfig) workers() int {
	if c.Parallelism == 0 || c.Parallelism == 1 {
		return 1
	}
	return effectiveWorkers(c.Parallelism)
}

// Build lowers a logical plan to a physical iterator tree. With
// cfg.Trace set, every node also gets a span recording its actuals —
// the recursion threads each node's span through cfg so children
// attach beneath their parent.
func Build(p Plan, cat *Catalog, cfg ExecConfig) (Iterator, error) {
	if cfg.Trace == nil {
		return build(p, cat, cfg)
	}
	sp := cfg.Trace.Child(p.Label(), EstimateRows(p, cat))
	cfg.Trace = sp
	it, err := build(p, cat, cfg)
	if err != nil {
		return nil, err
	}
	return newTraceIter(it, sp), nil
}

func build(p Plan, cat *Catalog, cfg ExecConfig) (Iterator, error) {
	switch n := p.(type) {
	case *ScanPlan:
		r, err := cat.Get(n.Name)
		if err != nil {
			return nil, err
		}
		return NewScan(r), nil
	case *ValuesPlan:
		return NewScan(n.Rel), nil
	case *FilterPlan:
		// Let a storage-backed child use the predicate to skip segments
		// before it is built (and before its cardinality is estimated).
		if adv, ok := n.Child.(FilterAdvisor); ok {
			adv.AdviseFilter(n.Cond)
		}
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		if w := cfg.workers(); w > 1 && parallelWorthwhile(cfg, EstimateRows(n.Child, cat)) {
			return NewParallelFilter(in, n.Cond, w), nil
		}
		return NewFilter(in, n.Cond), nil
	case *ProjectPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewProject(in, n.Names), nil
	case *RenamePlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewRename(in, n.Names), nil
	case *JoinPlan:
		ls, err := n.L.Schema(cat)
		if err != nil {
			return nil, err
		}
		rs, err := n.R.Schema(cat)
		if err != nil {
			return nil, err
		}
		pairs, residual := ExtractEquiJoin(n.Cond, ls, rs)
		// The algorithm is chosen before the children are lowered: the
		// index and sorted-run strategies build their inputs differently
		// (probes instead of a right scan, presorted feeds instead of
		// Build), so the decision must precede construction.
		choice := joinChoice{algo: cfg.Join}
		if n.Kind != InnerJoin {
			choice = joinChoice{algo: JoinHash}
		} else {
			switch cfg.Join {
			case JoinAuto:
				choice = chooseJoinAlgo(n, pairs, cat)
			case JoinIndex:
				if c, ok := pickIndexJoin(n, pairs, cat); ok {
					choice = c
				} else {
					choice = joinChoice{algo: JoinHash}
				}
			}
		}
		if choice.algo == JoinIndex {
			l, err := Build(n.L, cat, cfg)
			if err != nil {
				return nil, err
			}
			srcSch, err := choice.src.Schema(cat)
			if err != nil {
				return nil, err
			}
			res := indexJoinResidual(choice.rest, residual)
			return NewIndexJoin(l, choice.src, srcSch, choice.proj,
				choice.lcol, choice.rcol, res), nil
		}
		if choice.algo == JoinMerge && choice.lSorted != nil {
			l, err := buildSortedLeaf(n.L, choice.lSorted, choice.lSortCol, cat, cfg)
			if err != nil {
				return nil, err
			}
			r, err := buildSortedLeaf(n.R, choice.rSorted, choice.rSortCol, cat, cfg)
			if err != nil {
				return nil, err
			}
			mj := NewMergeJoin(l, r, pairs, residual)
			mj.LSorted, mj.RSorted = true, true
			return mj, nil
		}
		l, err := Build(n.L, cat, cfg)
		if err != nil {
			return nil, err
		}
		r, err := Build(n.R, cat, cfg)
		if err != nil {
			return nil, err
		}
		switch n.Kind {
		case SemiJoin:
			return NewSemiJoin(l, r, pairs, residual, false), nil
		case AntiJoin:
			return NewSemiJoin(l, r, pairs, residual, true), nil
		}
		algo := choice.algo
		if algo == JoinAuto {
			if len(pairs) > 0 {
				algo = JoinHash
			} else {
				algo = JoinNestedLoop
			}
		}
		switch algo {
		case JoinHash:
			if len(pairs) == 0 {
				return NewNestedLoopJoin(l, r, n.Cond), nil
			}
			if w := cfg.workers(); w > 1 && parallelWorthwhile(cfg, joinInputRows(n, cat)) {
				return NewParallelHashJoin(l, r, pairs, residual, w), nil
			}
			return NewHashJoin(l, r, pairs, residual), nil
		case JoinMerge:
			if len(pairs) == 0 {
				return NewNestedLoopJoin(l, r, n.Cond), nil
			}
			return NewMergeJoin(l, r, pairs, residual), nil
		default:
			return NewNestedLoopJoin(l, r, n.Cond), nil
		}
	case *UnionPlan:
		l, err := Build(n.L, cat, cfg)
		if err != nil {
			return nil, err
		}
		r, err := Build(n.R, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewUnion(l, r), nil
	case *DiffPlan:
		l, err := Build(n.L, cat, cfg)
		if err != nil {
			return nil, err
		}
		r, err := Build(n.R, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewDiff(l, r), nil
	case *IntersectPlan:
		l, err := Build(n.L, cat, cfg)
		if err != nil {
			return nil, err
		}
		r, err := Build(n.R, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewIntersect(l, r), nil
	case *DistinctPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewDistinct(in), nil
	case *SortPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewSort(in, n.Keys), nil
	case *LimitPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewLimit(in, n.N), nil
	case *AggPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewHashAgg(in, n.GroupBy, n.Aggs), nil
	case *ExtendPlan:
		in, err := Build(n.Child, cat, cfg)
		if err != nil {
			return nil, err
		}
		return NewExtend(in, n.Exprs), nil
	default:
		if sp, ok := p.(SourcePlan); ok {
			return sp.BuildIter(cfg)
		}
		return nil, fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// Run optimizes (unless disabled), lowers, and executes a plan,
// returning a materialized result.
func Run(p Plan, cat *Catalog, cfg ExecConfig) (*Relation, error) {
	if !cfg.DisableOptimizer {
		var err error
		p, err = Optimize(p, cat)
		if err != nil {
			return nil, err
		}
	}
	it, err := Build(p, cat, cfg)
	if err != nil {
		return nil, err
	}
	return Drain(it)
}

// RunDefault executes with the default configuration.
func RunDefault(p Plan, cat *Catalog) (*Relation, error) {
	return Run(p, cat, ExecConfig{})
}
