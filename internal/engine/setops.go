package engine

import "fmt"

// UnionIter concatenates two inputs with identical widths (UNION ALL).
// Column names are taken from the left input.
type UnionIter struct {
	L, R    Iterator
	onRight bool
}

// NewUnion builds a bag union.
func NewUnion(l, r Iterator) *UnionIter { return &UnionIter{L: l, R: r} }

func (u *UnionIter) Open() error {
	if err := u.L.Open(); err != nil {
		return err
	}
	if err := u.R.Open(); err != nil {
		return err
	}
	if u.L.Schema().Len() != u.R.Schema().Len() {
		return fmt.Errorf("engine: union width mismatch: %d vs %d",
			u.L.Schema().Len(), u.R.Schema().Len())
	}
	u.onRight = false
	return nil
}

func (u *UnionIter) Next() (Tuple, bool, error) {
	if !u.onRight {
		row, ok, err := u.L.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		u.onRight = true
	}
	return u.R.Next()
}

func (u *UnionIter) Close() error {
	err1 := u.L.Close()
	err2 := u.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (u *UnionIter) Schema() Schema { return u.L.Schema() }

// DiffIter computes set difference L − R (set semantics: output is
// deduplicated). Used by the Lemma 4.3 certain-answer RA query.
type DiffIter struct {
	L, R Iterator

	right map[string]struct{}
	seen  map[string]struct{}
}

// NewDiff builds a set difference.
func NewDiff(l, r Iterator) *DiffIter { return &DiffIter{L: l, R: r} }

func (d *DiffIter) Open() error {
	if err := d.L.Open(); err != nil {
		return err
	}
	if err := d.R.Open(); err != nil {
		return err
	}
	if d.L.Schema().Len() != d.R.Schema().Len() {
		return fmt.Errorf("engine: difference width mismatch: %d vs %d",
			d.L.Schema().Len(), d.R.Schema().Len())
	}
	d.right = make(map[string]struct{})
	d.seen = make(map[string]struct{})
	for {
		row, ok, err := d.R.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		d.right[KeyString(row)] = struct{}{}
	}
	return nil
}

func (d *DiffIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := d.L.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := KeyString(row)
		if _, drop := d.right[k]; drop {
			continue
		}
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, true, nil
	}
}

func (d *DiffIter) Close() error {
	d.right, d.seen = nil, nil
	err1 := d.L.Close()
	err2 := d.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (d *DiffIter) Schema() Schema { return d.L.Schema() }

// IntersectIter computes set intersection (deduplicated).
type IntersectIter struct {
	L, R Iterator

	right map[string]struct{}
	seen  map[string]struct{}
}

// NewIntersect builds a set intersection.
func NewIntersect(l, r Iterator) *IntersectIter { return &IntersectIter{L: l, R: r} }

func (d *IntersectIter) Open() error {
	if err := d.L.Open(); err != nil {
		return err
	}
	if err := d.R.Open(); err != nil {
		return err
	}
	if d.L.Schema().Len() != d.R.Schema().Len() {
		return fmt.Errorf("engine: intersect width mismatch: %d vs %d",
			d.L.Schema().Len(), d.R.Schema().Len())
	}
	d.right = make(map[string]struct{})
	d.seen = make(map[string]struct{})
	for {
		row, ok, err := d.R.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		d.right[KeyString(row)] = struct{}{}
	}
	return nil
}

func (d *IntersectIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := d.L.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := KeyString(row)
		if _, keep := d.right[k]; !keep {
			continue
		}
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, true, nil
	}
}

func (d *IntersectIter) Close() error {
	d.right, d.seen = nil, nil
	err1 := d.L.Close()
	err2 := d.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (d *IntersectIter) Schema() Schema { return d.L.Schema() }
