package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// effectiveWorkers normalizes a worker-count knob: n > 0 is taken
// literally, anything else means one worker per logical CPU.
func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// hashKeyAt hashes the key columns idx of row, consistent with
// KeyString/TupleEqual. ok=false signals a NULL key (which never joins).
func hashKeyAt(row Tuple, idx []int) (uint64, bool) {
	h := uint64(fnvOffset64)
	for _, i := range idx {
		v := row[i]
		if v.IsNull() {
			return 0, false
		}
		h ^= HashValue(v)
		h *= fnvPrime64
	}
	return h, true
}

// ParallelHashJoinIter is the partitioned parallel counterpart of
// HashJoinIter. The build side is hash-partitioned by join key across
// Workers partitions, each owned by one goroutine that builds a
// private open-addressing joinTable (the same hashed-key machinery as
// the serial join — no shared-table contention, no per-row key
// strings). Probe batches are then scattered by the same hash function
// and probed against the per-partition tables in parallel; each worker
// evaluates the residual predicate on its own bound expression copy
// and carves output rows from its own arena. Results stream out as
// batches. The multiset of output rows is exactly that of
// HashJoinIter; only the order differs.
type ParallelHashJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr
	Workers  int // <= 0 means GOMAXPROCS

	nw        int
	parts     []*joinTable
	lidx      []int
	ridx      []int
	bounds    []Expr // per-partition bound residual copies
	bin       BatchIterator
	sch       Schema
	probe     []Tuple    // gathered probe rows (reused)
	buckets   [][]Tuple  // per-partition probe buckets (reused)
	outs      [][]Tuple  // per-partition outputs (reused)
	arenas    []outArena // per-partition output cells (write-once)
	scratches []Tuple    // per-partition residual buffers
	result    []Tuple    // concatenated output batch (reused)
	pending   []Tuple
	ppos      int
}

// NewParallelHashJoin builds a partitioned parallel hash join; pairs
// must be non-empty. workers <= 0 selects GOMAXPROCS.
func NewParallelHashJoin(l, r Iterator, pairs []EquiPair, residual Expr, workers int) *ParallelHashJoinIter {
	return &ParallelHashJoinIter{L: l, R: r, Pairs: pairs, Residual: residual, Workers: workers}
}

func (j *ParallelHashJoinIter) Open() error {
	if len(j.Pairs) == 0 {
		return fmt.Errorf("engine: parallel hash join requires at least one equi pair")
	}
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch.Concat(rsch)
	j.lidx = make([]int, len(j.Pairs))
	j.ridx = make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: parallel hash join: pair %v not resolvable (%v ⋈ %v)",
				p, lsch.Names(), rsch.Names())
		}
		j.lidx[i] = li
		j.ridx[i] = ri
	}
	j.nw = effectiveWorkers(j.Workers)
	j.bounds = make([]Expr, j.nw)
	for w := 0; w < j.nw; w++ {
		if j.Residual != nil {
			b, err := j.Residual.Bind(j.sch)
			if err != nil {
				return err
			}
			j.bounds[w] = b
		}
	}
	if err := j.build(); err != nil {
		return err
	}
	j.bin = Batched(j.R)
	j.buckets = make([][]Tuple, j.nw)
	j.outs = make([][]Tuple, j.nw)
	j.arenas = make([]outArena, j.nw)
	j.scratches = make([]Tuple, j.nw)
	for w := 0; w < j.nw; w++ {
		j.scratches[w] = make(Tuple, j.sch.Len())
	}
	j.pending = nil
	j.ppos = 0
	return nil
}

// build drains the left input, scattering rows to per-partition builder
// goroutines that each construct a private hash table.
func (j *ParallelHashJoinIter) build() error {
	j.parts = make([]*joinTable, j.nw)
	lw := j.L.Schema().Len()
	chans := make([]chan []Tuple, j.nw)
	var wg sync.WaitGroup
	for w := 0; w < j.nw; w++ {
		w := w
		chans[w] = make(chan []Tuple, 4)
		j.parts[w] = newJoinTable(lw, j.lidx)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tbl := j.parts[w]
			for chunk := range chans[w] {
				for _, row := range chunk {
					if h, keyed := tbl.hashRow(row); keyed {
						tbl.insert(row, h)
					}
				}
			}
		}()
	}
	send := func(buf [][]Tuple, p int) {
		if len(buf[p]) > 0 {
			chans[p] <- buf[p]
			buf[p] = nil
		}
	}
	buf := make([][]Tuple, j.nw)
	bl := Batched(j.L)
	var err error
	for {
		batch, ok, e := bl.NextBatch()
		if e != nil {
			err = e
			break
		}
		if !ok {
			break
		}
		for _, row := range batch {
			h, keyed := hashKeyAt(row, j.lidx)
			if !keyed {
				continue // NULL keys never join
			}
			p := int(h % uint64(j.nw))
			if buf[p] == nil {
				buf[p] = make([]Tuple, 0, DefaultBatchSize)
			}
			buf[p] = append(buf[p], row)
			if len(buf[p]) == DefaultBatchSize {
				send(buf, p)
			}
		}
	}
	for p := 0; p < j.nw; p++ {
		send(buf, p)
		close(chans[p])
	}
	wg.Wait()
	return err
}

func (j *ParallelHashJoinIter) Next() (Tuple, bool, error) {
	for j.ppos >= len(j.pending) {
		batch, ok, err := j.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		j.pending = batch
		j.ppos = 0
	}
	t := j.pending[j.ppos]
	j.ppos++
	return t, true, nil
}

// NextBatch gathers a chunk of probe rows, scatters it across the
// build partitions, and probes all partitions in parallel.
func (j *ParallelHashJoinIter) NextBatch() ([]Tuple, bool, error) {
	target := j.nw * DefaultBatchSize
	for {
		// Gather probe rows (copying row headers: upstream batch buffers
		// may be reused by the producer).
		probe := j.probe[:0]
		for len(probe) < target {
			batch, ok, err := j.bin.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			probe = append(probe, batch...)
		}
		j.probe = probe
		if len(probe) == 0 {
			return nil, false, nil
		}
		// Scatter by key hash.
		for p := range j.buckets {
			j.buckets[p] = j.buckets[p][:0]
		}
		for _, row := range probe {
			h, keyed := hashKeyAt(row, j.ridx)
			if !keyed {
				continue
			}
			p := int(h % uint64(j.nw))
			j.buckets[p] = append(j.buckets[p], row)
		}
		// Probe each partition in parallel.
		var wg sync.WaitGroup
		for p := 0; p < j.nw; p++ {
			if len(j.buckets[p]) == 0 {
				j.outs[p] = j.outs[p][:0]
				continue
			}
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				tbl := j.parts[p]
				bound := j.bounds[p]
				arena := &j.arenas[p]
				scratch := j.scratches[p]
				out := j.outs[p][:0]
				for _, row := range j.buckets[p] {
					h, keyed := hashKeyAt(row, j.ridx)
					if !keyed {
						continue
					}
					for m := tbl.lookup(h, row, j.ridx); m >= 0; m = tbl.nextMatch(m) {
						l := tbl.row(m)
						if bound != nil {
							copy(scratch, l)
							copy(scratch[len(l):], row)
							if !bound.Eval(scratch).Truth() {
								continue
							}
						}
						out = append(out, arena.concat(l, row))
					}
				}
				j.outs[p] = out
			}()
		}
		wg.Wait()
		result := j.result[:0]
		for p := 0; p < j.nw; p++ {
			result = append(result, j.outs[p]...)
		}
		j.result = result
		if len(result) > 0 {
			return result, true, nil
		}
		// All probe rows missed; pull the next chunk.
	}
}

func (j *ParallelHashJoinIter) Close() error {
	j.parts = nil
	j.probe, j.buckets, j.outs, j.result, j.pending = nil, nil, nil, nil, nil
	j.arenas, j.scratches = nil, nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *ParallelHashJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// ParallelFilterIter is the parallel scan/drain operator: it pulls
// large input chunks and evaluates the predicate across Workers
// goroutines, each on a contiguous slice with its own bound expression
// copy. Output preserves input order.
type ParallelFilterIter struct {
	In      Iterator
	Pred    Expr
	Workers int // <= 0 means GOMAXPROCS

	nw      int
	bounds  []Expr
	bin     BatchIterator
	chunk   []Tuple   // gathered input rows (reused)
	outs    [][]Tuple // per-worker outputs (reused)
	result  []Tuple   // concatenated output batch (reused)
	pending []Tuple
	ppos    int
}

// NewParallelFilter builds a parallel filter; workers <= 0 selects
// GOMAXPROCS.
func NewParallelFilter(in Iterator, pred Expr, workers int) *ParallelFilterIter {
	return &ParallelFilterIter{In: in, Pred: pred, Workers: workers}
}

func (f *ParallelFilterIter) Open() error {
	if err := f.In.Open(); err != nil {
		return err
	}
	f.nw = effectiveWorkers(f.Workers)
	f.bounds = make([]Expr, f.nw)
	for w := 0; w < f.nw; w++ {
		b, err := f.Pred.Bind(f.In.Schema())
		if err != nil {
			return err
		}
		f.bounds[w] = b
	}
	f.bin = Batched(f.In)
	f.outs = make([][]Tuple, f.nw)
	f.pending = nil
	f.ppos = 0
	return nil
}

func (f *ParallelFilterIter) Next() (Tuple, bool, error) {
	for f.ppos >= len(f.pending) {
		batch, ok, err := f.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		f.pending = batch
		f.ppos = 0
	}
	t := f.pending[f.ppos]
	f.ppos++
	return t, true, nil
}

// NextBatch gathers a multi-batch chunk and filters it with all workers.
func (f *ParallelFilterIter) NextBatch() ([]Tuple, bool, error) {
	target := f.nw * DefaultBatchSize
	for {
		chunk := f.chunk[:0]
		for len(chunk) < target {
			batch, ok, err := f.bin.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			chunk = append(chunk, batch...)
		}
		f.chunk = chunk
		if len(chunk) == 0 {
			return nil, false, nil
		}
		per := (len(chunk) + f.nw - 1) / f.nw
		var wg sync.WaitGroup
		for w := 0; w < f.nw; w++ {
			lo := w * per
			if lo >= len(chunk) {
				f.outs[w] = f.outs[w][:0]
				continue
			}
			hi := lo + per
			if hi > len(chunk) {
				hi = len(chunk)
			}
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				bound := f.bounds[w]
				out := f.outs[w][:0]
				for _, row := range chunk[lo:hi] {
					if bound.Eval(row).Truth() {
						out = append(out, row)
					}
				}
				f.outs[w] = out
			}()
		}
		wg.Wait()
		result := f.result[:0]
		for w := 0; w < f.nw; w++ {
			result = append(result, f.outs[w]...)
		}
		f.result = result
		if len(result) > 0 {
			return result, true, nil
		}
	}
}

func (f *ParallelFilterIter) Close() error {
	f.chunk, f.outs, f.result, f.pending = nil, nil, nil, nil
	return f.In.Close()
}

func (f *ParallelFilterIter) Schema() Schema { return f.In.Schema() }
