package engine

// This file is the columnar half of the execution engine: a
// struct-of-arrays batch representation (ColBatch / ColVec), the
// iterator protocol that moves it (ColBatchIterator), and the two-way
// adapters between columnar and row execution. The representation
// mirrors what modern vectorized engines use: one typed vector per
// column, a null marker array, and a selection vector so filters
// narrow batches without moving any data. The storage layer's segments
// are already columnar, so a columnar scan hands its vectors upward
// with no transposition at all; row-major sources are adapted by a
// per-batch transpose, and any row consumer above a columnar subtree
// materializes tuples only at the boundary.

// ColVec is one column of a ColBatch. It has two layouts:
//
//   - typed: Kind names the payload vector (Ints for int and bool,
//     Floats, Strs), and Nulls — when non-nil — marks NULL cells;
//   - generic: Vals holds tagged Values cell by cell (used for mixed
//     or unknown columns; Vals non-nil selects this layout).
type ColVec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
	Vals   []Value
}

// IntVec builds a typed int column (nulls may be nil).
func IntVec(xs []int64, nulls []bool) ColVec { return ColVec{Kind: KindInt, Ints: xs, Nulls: nulls} }

// BoolVec builds a typed bool column stored as 0/1 ints.
func BoolVec(xs []int64, nulls []bool) ColVec { return ColVec{Kind: KindBool, Ints: xs, Nulls: nulls} }

// FloatVec builds a typed float column.
func FloatVec(xs []float64, nulls []bool) ColVec {
	return ColVec{Kind: KindFloat, Floats: xs, Nulls: nulls}
}

// StrVec builds a typed string column.
func StrVec(xs []string, nulls []bool) ColVec {
	return ColVec{Kind: KindString, Strs: xs, Nulls: nulls}
}

// GenericVec builds a generic tagged-value column.
func GenericVec(vals []Value) ColVec { return ColVec{Kind: KindNull, Vals: vals} }

// Len returns the physical cell count.
func (v *ColVec) Len() int {
	if v.Vals != nil {
		return len(v.Vals)
	}
	switch v.Kind {
	case KindInt, KindBool:
		return len(v.Ints)
	case KindFloat:
		return len(v.Floats)
	case KindString:
		return len(v.Strs)
	}
	return len(v.Nulls)
}

// IsNull reports whether cell i is NULL.
func (v *ColVec) IsNull(i int) bool {
	if v.Vals != nil {
		return v.Vals[i].IsNull()
	}
	return v.Nulls != nil && v.Nulls[i]
}

// Value materializes cell i as a tagged scalar.
func (v *ColVec) Value(i int) Value {
	if v.Vals != nil {
		return v.Vals[i]
	}
	if v.Nulls != nil && v.Nulls[i] {
		return Null()
	}
	switch v.Kind {
	case KindInt:
		return Int(v.Ints[i])
	case KindBool:
		return Bool(v.Ints[i] != 0)
	case KindFloat:
		return Float(v.Floats[i])
	case KindString:
		return Str(v.Strs[i])
	}
	return Null()
}

// ColBatch is a struct-of-arrays batch: N physical rows stored column
// by column, plus an optional selection vector. When Sel is non-nil
// only the listed physical row indices are live (in Sel order); a nil
// Sel means all N rows. Filters narrow batches by shrinking Sel, never
// by moving column data.
type ColBatch struct {
	Sch  Schema
	Cols []ColVec
	N    int
	Sel  []int32
}

// Rows returns the live (selected) row count.
func (b *ColBatch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// RowID maps a live row ordinal to its physical row index.
func (b *ColBatch) RowID(k int) int {
	if b.Sel != nil {
		return int(b.Sel[k])
	}
	return k
}

// ReadRow materializes live row k into dst (len(dst) must equal the
// column count). dst is returned for convenience.
func (b *ColBatch) ReadRow(k int, dst Tuple) Tuple {
	i := b.RowID(k)
	for c := range b.Cols {
		dst[c] = b.Cols[c].Value(i)
	}
	return dst
}

// Materialize converts the live rows to tuples. The returned []Tuple
// reuses rowsBuf's backing array, but the tuple cells are freshly
// allocated (one arena per call), so the tuples themselves remain
// valid indefinitely — matching the BatchIterator contract, under
// which consumers may retain tuples but not the batch slice.
func (b *ColBatch) Materialize(rowsBuf []Tuple) []Tuple {
	n := b.Rows()
	nc := len(b.Cols)
	cells := make([]Value, n*nc)
	rows := rowsBuf[:0]
	for k := 0; k < n; k++ {
		i := b.RowID(k)
		t := cells[k*nc : (k+1)*nc : (k+1)*nc]
		for c := range b.Cols {
			t[c] = b.Cols[c].Value(i)
		}
		rows = append(rows, t)
	}
	return rows
}

// ColBatchIterator is the columnar fast path of the iterator protocol.
// Operators that can produce column batches implement it; Columnar
// adapts everything else. As with NextBatch, the returned batch (its
// Sel and Cols headers) is owned by the caller only until the next
// NextColBatch call; column payloads are immutable. A consumer must
// drive an iterator through exactly one of Next, NextBatch, or
// NextColBatch.
type ColBatchIterator interface {
	Iterator
	// NextColBatch returns the next non-empty column batch, or ok=false
	// at end of stream.
	NextColBatch() (*ColBatch, bool, error)
	// ColumnarNative reports whether driving NextColBatch avoids a
	// row-to-column transpose — i.e. the operator (and, for unary
	// operators, its input chain) produces columns natively. Consumers
	// use it to pick the cheaper representation; NextColBatch works
	// either way.
	ColumnarNative() bool
}

// NativeColumnar returns the columnar fast path of it when driving it
// is genuinely columnar end-to-end (no hidden transpose), else nil and
// false.
func NativeColumnar(it Iterator) (ColBatchIterator, bool) {
	c, ok := it.(ColBatchIterator)
	if !ok || !c.ColumnarNative() {
		return nil, false
	}
	return c, true
}

// Columnar adapts any Iterator to a ColBatchIterator: native columnar
// implementations are returned unchanged; everything else gets a
// transposing adapter over its (row) batches.
func Columnar(it Iterator) ColBatchIterator {
	if c, ok := it.(ColBatchIterator); ok {
		return c
	}
	return &rowColAdapter{in: it}
}

// rowColAdapter transposes row batches into generic column vectors.
type rowColAdapter struct {
	in  Iterator
	bin BatchIterator
	cb  ColBatch
}

func (a *rowColAdapter) Open() error                { a.bin = nil; return a.in.Open() }
func (a *rowColAdapter) Close() error               { return a.in.Close() }
func (a *rowColAdapter) Schema() Schema             { return a.in.Schema() }
func (a *rowColAdapter) ColumnarNative() bool       { return false }
func (a *rowColAdapter) Next() (Tuple, bool, error) { return a.in.Next() }

func (a *rowColAdapter) NextBatch() ([]Tuple, bool, error) {
	if a.bin == nil {
		a.bin = Batched(a.in)
	}
	return a.bin.NextBatch()
}

func (a *rowColAdapter) NextColBatch() (*ColBatch, bool, error) {
	if a.bin == nil {
		a.bin = Batched(a.in)
	}
	rows, ok, err := a.bin.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	transposeInto(&a.cb, a.in.Schema(), rows)
	return &a.cb, true, nil
}

// transposeInto fills cb with the columns of rows. The cell arena is
// freshly allocated per batch because upstream row cells are stable
// but the adapter's output vectors must survive until its next call
// even if the upstream reuses its batch slice.
func transposeInto(cb *ColBatch, sch Schema, rows []Tuple) {
	nc := sch.Len()
	n := len(rows)
	if cap(cb.Cols) < nc {
		cb.Cols = make([]ColVec, nc)
	}
	cb.Cols = cb.Cols[:nc]
	arena := make([]Value, n*nc)
	for c := 0; c < nc; c++ {
		vals := arena[c*n : (c+1)*n : (c+1)*n]
		for r, row := range rows {
			vals[r] = row[c]
		}
		cb.Cols[c] = GenericVec(vals)
	}
	cb.Sch = sch
	cb.N = n
	cb.Sel = nil
}
