package engine

import (
	"math"
)

// Optimize rewrites a logical plan using the classical rule set:
//
//  1. split conjunctive filters and absorb filters into join conditions,
//  2. push selections as far down as schemas allow (through projects,
//     renames, unions, and into join inputs),
//  3. reorder chains of inner joins greedily by estimated cardinality
//     (System-R-style, avoiding cross products when possible),
//  4. prune unused columns by inserting projections above leaves.
//
// These are exactly the "standard techniques employed in off-the-shelf
// relational database management systems" the paper relies on for
// evaluating translated U-relation queries.
func Optimize(p Plan, cat *Catalog) (Plan, error) {
	p = pushFilters(p, cat)
	p, err := orderJoins(p, cat)
	if err != nil {
		return nil, err
	}
	p = pushFilters(p, cat) // join reordering may re-expose pushdowns
	p = applyIndexScans(p, cat)
	p, err = pruneColumns(p, cat)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// applyIndexScans rewrites an equality filter sitting directly on an
// indexed storage leaf into one probe of the leaf's sorted-run index:
// Filter(col = k, leaf) becomes Filter(rest, IndexScan(leaf, col, k)).
// It runs after filter pushdown (so the filters are on the leaves) and
// before column pruning (so leaves are still bare).
func applyIndexScans(p Plan, cat *Catalog) Plan {
	if f, ok := p.(*FilterPlan); ok {
		if src, oks := f.Child.(IndexedSource); oks {
			sch, err := src.Schema(cat)
			if err == nil {
				idxCols := src.IndexedCols()
				conjs := SplitConjuncts(f.Cond)
				for i, c := range conjs {
					cmp, okc := c.(*CmpExpr)
					if !okc || cmp.Op != EQ {
						continue
					}
					col, cst, op, okn := NormalizeColCmp(cmp)
					if !okn || op != EQ || cst.IsNull() {
						continue
					}
					ci := sch.IndexOf(col)
					if ci < 0 {
						continue
					}
					canon := sch.Cols[ci].Name
					if !containsStr(idxCols, canon) {
						continue
					}
					leaf := &IndexScanPlan{Src: src, Col: canon, Key: cst}
					rest := make([]Expr, 0, len(conjs)-1)
					rest = append(rest, conjs[:i]...)
					rest = append(rest, conjs[i+1:]...)
					if len(rest) == 0 {
						return leaf
					}
					return Filter(leaf, And(rest...))
				}
			}
		}
	}
	ch := p.Children()
	if len(ch) == 0 {
		return p
	}
	out := make([]Plan, len(ch))
	changed := false
	for i, c := range ch {
		out[i] = applyIndexScans(c, cat)
		if out[i] != c {
			changed = true
		}
	}
	if !changed {
		return p
	}
	return p.WithChildren(out)
}

// DefaultParallelThreshold is the estimated input row count above which
// physical lowering switches to the parallel operators when the config's
// Parallelism knob allows it. Below it, goroutine fan-out costs more
// than it saves.
const DefaultParallelThreshold = 8192

// parallelWorthwhile is the planner's serial-vs-parallel decision for an
// operator whose input is estimated at rows tuples.
func parallelWorthwhile(cfg ExecConfig, rows float64) bool {
	thr := cfg.ParallelThreshold
	if thr <= 0 {
		thr = DefaultParallelThreshold
	}
	return rows >= thr
}

// joinInputRows estimates the dominating input cardinality of a join:
// parallelism pays off when either side is large.
func joinInputRows(n *JoinPlan, cat *Catalog) float64 {
	l := EstimateRows(n.L, cat)
	r := EstimateRows(n.R, cat)
	if r > l {
		return r
	}
	return l
}

// pushFilters recursively pushes selection predicates downwards.
func pushFilters(p Plan, cat *Catalog) Plan {
	switch n := p.(type) {
	case *FilterPlan:
		child := pushFilters(n.Child, cat)
		conjs := SplitConjuncts(n.Cond)
		return pushConjuncts(child, conjs, cat)
	default:
		ch := p.Children()
		if len(ch) == 0 {
			return p
		}
		newCh := make([]Plan, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = pushFilters(c, cat)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			return p.WithChildren(newCh)
		}
		return p
	}
}

// pushConjuncts pushes each conjunct as deep as possible into child,
// re-attaching what cannot be pushed as a filter on top.
func pushConjuncts(child Plan, conjs []Expr, cat *Catalog) Plan {
	if len(conjs) == 0 {
		return child
	}
	switch n := child.(type) {
	case *FilterPlan:
		// Merge adjacent filters, then push the combined set.
		return pushConjuncts(n.Child, append(SplitConjuncts(n.Cond), conjs...), cat)
	case *ProjectPlan:
		// A filter on projected columns can move below the projection.
		insch, err := n.Child.Schema(cat)
		if err != nil {
			break
		}
		var below, above []Expr
		for _, c := range conjs {
			if CoveredBy(c, insch) {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		if len(below) > 0 {
			inner := pushConjuncts(n.Child, below, cat)
			out := Plan(&ProjectPlan{Child: inner, Names: n.Names})
			if len(above) > 0 {
				out = Filter(out, And(above...))
			}
			return out
		}
	case *JoinPlan:
		if n.Kind == InnerJoin {
			ls, errL := n.L.Schema(cat)
			rs, errR := n.R.Schema(cat)
			if errL == nil && errR == nil {
				var toL, toR, onJoin []Expr
				for _, c := range conjs {
					switch {
					case CoveredBy(c, ls):
						toL = append(toL, c)
					case CoveredBy(c, rs):
						toR = append(toR, c)
					default:
						onJoin = append(onJoin, c)
					}
				}
				l := n.L
				if len(toL) > 0 {
					l = pushConjuncts(pushFilters(n.L, cat), toL, cat)
				}
				r := n.R
				if len(toR) > 0 {
					r = pushConjuncts(pushFilters(n.R, cat), toR, cat)
				}
				cond := n.Cond
				if len(onJoin) > 0 {
					cond = And(append([]Expr{cond}, onJoin...)...)
				}
				return &JoinPlan{Kind: InnerJoin, L: l, R: r, Cond: cond}
			}
		}
	case *UnionPlan:
		// Filters distribute over union (schemas are positionally
		// compatible; names come from the left, so only push when both
		// sides resolve the columns).
		ls, errL := n.L.Schema(cat)
		rs, errR := n.R.Schema(cat)
		if errL == nil && errR == nil {
			all := And(conjs...)
			if CoveredBy(all, ls) && CoveredBy(all, rs) {
				return &UnionPlan{
					L: pushConjuncts(n.L, conjs, cat),
					R: pushConjuncts(n.R, conjs, cat),
				}
			}
		}
	case *DistinctPlan:
		return &DistinctPlan{Child: pushConjuncts(n.Child, conjs, cat)}
	case *SortPlan:
		return &SortPlan{Child: pushConjuncts(n.Child, conjs, cat), Keys: n.Keys}
	}
	return Filter(child, And(conjs...))
}

// joinLeaf is one input of a flattened join chain.
type joinLeaf struct {
	plan Plan
	sch  Schema
}

// orderJoins flattens trees of inner joins and reassembles them greedily
// by estimated output cardinality.
func orderJoins(p Plan, cat *Catalog) (Plan, error) {
	// Recurse first.
	ch := p.Children()
	if len(ch) > 0 {
		newCh := make([]Plan, len(ch))
		for i, c := range ch {
			nc, err := orderJoins(c, cat)
			if err != nil {
				return nil, err
			}
			newCh[i] = nc
		}
		p = p.WithChildren(newCh)
	}
	n, ok := p.(*JoinPlan)
	if !ok || n.Kind != InnerJoin {
		return p, nil
	}
	var leaves []joinLeaf
	var preds []Expr
	var collect func(q Plan) error
	collect = func(q Plan) error {
		if j, okj := q.(*JoinPlan); okj && j.Kind == InnerJoin {
			if err := collect(j.L); err != nil {
				return err
			}
			if err := collect(j.R); err != nil {
				return err
			}
			preds = append(preds, SplitConjuncts(j.Cond)...)
			return nil
		}
		sch, err := q.Schema(cat)
		if err != nil {
			return err
		}
		leaves = append(leaves, joinLeaf{plan: q, sch: sch})
		return nil
	}
	if err := collect(n); err != nil {
		return nil, err
	}
	if len(leaves) <= 2 {
		return p, nil
	}
	origSch, err := p.Schema(cat)
	if err != nil {
		return nil, err
	}
	out, err := greedyJoin(leaves, preds, cat)
	if err != nil {
		return nil, err
	}
	// Reordering permutes output columns; restore the original order so
	// Optimize is schema-preserving. Only possible when names are
	// unambiguous (which translated U-relation plans guarantee).
	newSch, err := out.Schema(cat)
	if err != nil {
		return nil, err
	}
	names := origSch.Names()
	if !sameStrings(names, newSch.Names()) && uniqueStrings(names) {
		out = &ProjectPlan{Child: out, Names: names}
	}
	return out, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func uniqueStrings(a []string) bool {
	seen := make(map[string]bool, len(a))
	for _, s := range a {
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// greedyJoin picks the smallest leaf, then repeatedly joins in the leaf
// that minimizes the estimated result size, preferring connected leaves
// (those sharing an applicable predicate) over cross products.
func greedyJoin(leaves []joinLeaf, preds []Expr, cat *Catalog) (Plan, error) {
	used := make([]bool, len(leaves))
	applied := make([]bool, len(preds))

	// Start from the leaf with the smallest estimated cardinality.
	best := 0
	bestRows := math.Inf(1)
	for i, lf := range leaves {
		r := EstimateStats(lf.plan, cat).Rows
		if r < bestRows {
			bestRows = r
			best = i
		}
	}
	used[best] = true
	cur := leaves[best].plan
	curSch := leaves[best].sch
	remaining := len(leaves) - 1

	for remaining > 0 {
		type cand struct {
			idx       int
			plan      Plan
			rows      float64
			connected bool
		}
		var bestCand *cand
		for i, lf := range leaves {
			if used[i] {
				continue
			}
			joined := curSch.Concat(lf.sch)
			var conds []Expr
			connected := false
			for pi, pr := range preds {
				if applied[pi] {
					continue
				}
				if CoveredBy(pr, joined) && !CoveredBy(pr, curSch) && !CoveredBy(pr, lf.sch) {
					conds = append(conds, pr)
					connected = true
				}
			}
			jp := &JoinPlan{Kind: InnerJoin, L: cur, R: lf.plan, Cond: And(conds...)}
			rows := EstimateStats(jp, cat).Rows
			c := &cand{idx: i, plan: jp, rows: rows, connected: connected}
			if bestCand == nil ||
				(c.connected && !bestCand.connected) ||
				(c.connected == bestCand.connected && c.rows < bestCand.rows) {
				bestCand = c
			}
		}
		// Apply the chosen join and mark its predicates used.
		lf := leaves[bestCand.idx]
		joined := curSch.Concat(lf.sch)
		var conds []Expr
		for pi, pr := range preds {
			if applied[pi] {
				continue
			}
			if CoveredBy(pr, joined) {
				conds = append(conds, pr)
				applied[pi] = true
			}
		}
		cur = &JoinPlan{Kind: InnerJoin, L: cur, R: lf.plan, Cond: And(conds...)}
		curSch = joined
		used[bestCand.idx] = true
		remaining--
	}
	// Any predicate not yet applied becomes a filter on top.
	var rest []Expr
	for pi, pr := range preds {
		if !applied[pi] {
			rest = append(rest, pr)
		}
	}
	if len(rest) > 0 {
		return Filter(cur, And(rest...)), nil
	}
	return cur, nil
}

// pruneColumns inserts projections so leaves only produce columns the
// rest of the plan needs.
func pruneColumns(p Plan, cat *Catalog) (Plan, error) {
	sch, err := p.Schema(cat)
	if err != nil {
		return nil, err
	}
	return pruneNeeding(p, cat, sch.Names())
}

// pruneNeeding rewrites p so it produces (at least) the needed columns,
// dropping unused ones below joins.
func pruneNeeding(p Plan, cat *Catalog, needed []string) (Plan, error) {
	switch n := p.(type) {
	case *ProjectPlan:
		childSch, err := n.Child.Schema(cat)
		if err != nil {
			return nil, err
		}
		// The projection itself defines what's needed below.
		child, err := pruneNeeding(n.Child, cat, resolveAll(childSch, n.Names))
		if err != nil {
			return nil, err
		}
		return &ProjectPlan{Child: child, Names: n.Names}, nil
	case *FilterPlan:
		childSch, err := n.Child.Schema(cat)
		if err != nil {
			return nil, err
		}
		req := union(needed, resolveAll(childSch, ExprColumns(n.Cond)))
		child, err := pruneNeeding(n.Child, cat, req)
		if err != nil {
			return nil, err
		}
		return &FilterPlan{Child: child, Cond: n.Cond}, nil
	case *JoinPlan:
		ls, err := n.L.Schema(cat)
		if err != nil {
			return nil, err
		}
		rs, err := n.R.Schema(cat)
		if err != nil {
			return nil, err
		}
		req := union(needed, resolveAll(ls.Concat(rs), ExprColumns(n.Cond)))
		lNeed := intersectSchema(req, ls)
		rNeed := intersectSchema(req, rs)
		l, err := pruneNeeding(n.L, cat, lNeed)
		if err != nil {
			return nil, err
		}
		r := n.R
		if n.Kind == InnerJoin {
			if r, err = pruneNeeding(n.R, cat, rNeed); err != nil {
				return nil, err
			}
		} else {
			// Semi/anti joins keep the right side as-is except pruning
			// to the columns its predicates need.
			if r, err = pruneNeeding(n.R, cat, rNeed); err != nil {
				return nil, err
			}
		}
		// Insert projections if we can actually drop columns.
		l = maybeProject(l, ls, lNeed)
		if n.Kind == InnerJoin {
			r = maybeProject(r, rs, rNeed)
		}
		return &JoinPlan{Kind: n.Kind, L: l, R: r, Cond: n.Cond}, nil
	case *ScanPlan, *ValuesPlan:
		return p, nil
	default:
		// Generic recursion: require everything from children (sorts,
		// unions, set ops, aggregates have positional or full needs).
		ch := p.Children()
		if len(ch) == 0 {
			return p, nil
		}
		newCh := make([]Plan, len(ch))
		for i, c := range ch {
			csch, err := c.Schema(cat)
			if err != nil {
				return nil, err
			}
			nc, err := pruneNeeding(c, cat, csch.Names())
			if err != nil {
				return nil, err
			}
			newCh[i] = nc
		}
		return p.WithChildren(newCh), nil
	}
}

// maybeProject wraps p in a projection to need if that strictly drops
// columns.
func maybeProject(p Plan, sch Schema, need []string) Plan {
	if len(need) == 0 || len(need) >= sch.Len() {
		return p
	}
	// Preserve schema order for determinism.
	var ordered []string
	nd := map[string]bool{}
	for _, n := range need {
		nd[n] = true
	}
	for _, c := range sch.Cols {
		if nd[c.Name] {
			ordered = append(ordered, c.Name)
		}
	}
	if len(ordered) == sch.Len() || len(ordered) == 0 {
		return p
	}
	return &ProjectPlan{Child: p, Names: ordered}
}

// resolveAll maps possibly-unqualified names to the schema's canonical
// column names (dropping unresolvable ones).
func resolveAll(sch Schema, names []string) []string {
	var out []string
	for _, n := range names {
		if i := sch.IndexOf(n); i >= 0 {
			out = append(out, sch.Cols[i].Name)
		}
	}
	return out
}

func union(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func intersectSchema(names []string, sch Schema) []string {
	var out []string
	for _, n := range names {
		if sch.IndexOf(n) >= 0 {
			out = append(out, n)
		}
	}
	return out
}
