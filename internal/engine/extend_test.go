package engine

import (
	"strings"
	"testing"
)

func TestExtendIter(t *testing.T) {
	r := testRel([]string{"a"}, [][]int64{{1}, {2}})
	it := NewExtend(NewScan(r), []NamedExpr{
		{Name: "b", E: Arith(AddOp, Col("a"), ConstInt(10)), Kind: KindInt},
		{Name: "c", E: Const(Null()), Kind: KindInt},
	})
	out := mustDrain(t, it)
	if out.Sch.Len() != 3 {
		t.Fatalf("schema: %v", out.Sch.Names())
	}
	if out.Rows[0][1].AsInt() != 11 || out.Rows[1][1].AsInt() != 12 {
		t.Fatalf("computed column wrong: %v", out.Rows)
	}
	if !out.Rows[0][2].IsNull() {
		t.Fatal("null column")
	}
}

func TestExtendPlan(t *testing.T) {
	cat := NewCatalog()
	cat.Put("r", testRel([]string{"a"}, [][]int64{{1}, {2}, {3}}))
	p := Filter(
		Extend(Scan("r"), NamedExpr{Name: "double", E: Arith(MulOp, Col("a"), ConstInt(2)), Kind: KindInt}),
		Cmp(GT, Col("double"), ConstInt(3)))
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("want 2 rows, got %d", out.Len())
	}
	// Schema propagates before Open.
	sch, err := p.Schema(cat)
	if err != nil || sch.Len() != 2 {
		t.Fatalf("schema: %v %v", sch, err)
	}
	st := EstimateStats(p, cat)
	if st.Rows <= 0 {
		t.Fatal("estimate")
	}
	if !strings.Contains(Extend(Scan("r"), NamedExpr{Name: "x", E: ConstInt(1), Kind: KindInt}).Label(), "x") {
		t.Fatal("label")
	}
}

func TestExtendBindError(t *testing.T) {
	r := testRel([]string{"a"}, [][]int64{{1}})
	it := NewExtend(NewScan(r), []NamedExpr{{Name: "b", E: Col("missing"), Kind: KindInt}})
	if err := it.Open(); err == nil {
		t.Fatal("unknown column must fail at Open")
	}
}

func TestRenamePlanAndIter(t *testing.T) {
	cat := NewCatalog()
	cat.Put("r", testRel([]string{"a", "b"}, [][]int64{{1, 2}}))
	p := Rename(Scan("r"), []string{"x", "y"})
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sch.Names()[0] != "x" || out.Sch.Names()[1] != "y" {
		t.Fatalf("renamed schema wrong: %v", out.Sch.Names())
	}
	// Width mismatch errors.
	bad := Rename(Scan("r"), []string{"only"})
	if _, err := bad.Schema(cat); err == nil {
		t.Fatal("rename width mismatch must fail")
	}
	it := NewRename(NewScan(cat.MustGet("r")), []string{"only"})
	if err := it.Open(); err == nil {
		t.Fatal("iter rename width mismatch must fail")
	}
}

func TestUnionWidthMismatch(t *testing.T) {
	a := testRel([]string{"x"}, [][]int64{{1}})
	b := testRel([]string{"x", "y"}, [][]int64{{1, 2}})
	u := NewUnion(NewScan(a), NewScan(b))
	if err := u.Open(); err == nil {
		t.Fatal("union width mismatch must fail")
	}
	d := NewDiff(NewScan(a), NewScan(b))
	if err := d.Open(); err == nil {
		t.Fatal("diff width mismatch must fail")
	}
	i := NewIntersect(NewScan(a), NewScan(b))
	if err := i.Open(); err == nil {
		t.Fatal("intersect width mismatch must fail")
	}
}

func TestFilterBindError(t *testing.T) {
	r := testRel([]string{"a"}, [][]int64{{1}})
	f := NewFilter(NewScan(r), Cmp(EQ, Col("zzz"), ConstInt(1)))
	if err := f.Open(); err == nil {
		t.Fatal("bad filter must fail at Open")
	}
	pr := NewProject(NewScan(r), []string{"zzz"})
	if err := pr.Open(); err == nil {
		t.Fatal("bad projection must fail at Open")
	}
	s := NewSort(NewScan(r), []string{"zzz"})
	if err := s.Open(); err == nil {
		t.Fatal("bad sort key must fail at Open")
	}
	hj := NewHashJoin(NewScan(r), NewScan(r), nil, nil)
	if err := hj.Open(); err == nil {
		t.Fatal("hash join without pairs must fail")
	}
	mj := NewMergeJoin(NewScan(r), NewScan(r), nil, nil)
	if err := mj.Open(); err == nil {
		t.Fatal("merge join without pairs must fail")
	}
	ag := NewHashAgg(NewScan(r), []string{"zzz"}, nil)
	if err := ag.Open(); err == nil {
		t.Fatal("bad group-by must fail")
	}
	ag2 := NewHashAgg(NewScan(r), nil, []AggSpec{{Fn: AggSum, Col: "zzz"}})
	if err := ag2.Open(); err == nil {
		t.Fatal("bad aggregate column must fail")
	}
}

func TestBuildUnknownRelation(t *testing.T) {
	cat := NewCatalog()
	if _, err := RunDefault(Scan("ghost"), cat); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if _, err := Explain(Scan("ghost"), cat, true); err == nil {
		t.Fatal("explain of broken plan must fail")
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	cat := planCatalog()
	plans := []Plan{
		Limit(Sort(Scan("orders"), "o.total"), 5),
		Union(Project(Scan("customer"), "c.nationkey"), Project(Scan("nation"), "n.nationkey")),
		Diff(Project(Scan("nation"), "n.nationkey"), Project(Scan("customer"), "c.nationkey")),
		Intersect(Project(Scan("nation"), "n.nationkey"), Project(Scan("customer"), "c.nationkey")),
		Agg(Scan("orders"), []string{"o.custkey"}, AggSpec{Fn: AggCount, As: "n"}),
		Semi(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
		Anti(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
		Extend(Scan("nation"), NamedExpr{Name: "k2", E: Col("n.nationkey"), Kind: KindInt}),
		Filter(Values(testRel([]string{"v"}, [][]int64{{1}}), "inline"), Cmp(EQ, Col("v"), ConstInt(1))),
		Filter(DistinctOf(Scan("nation")), Cmp(EQ, Col("n.name"), ConstStr("N1"))),
	}
	for i, p := range plans {
		s, err := Explain(p, cat, false)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if len(s) == 0 {
			t.Fatalf("plan %d: empty explain", i)
		}
		// And they all execute.
		if _, err := Run(p, cat, ExecConfig{DisableOptimizer: true}); err != nil {
			t.Fatalf("plan %d: run: %v", i, err)
		}
	}
}

func TestLabelStrings(t *testing.T) {
	labels := []struct {
		p    Plan
		want string
	}{
		{Scan("t"), "Seq Scan on t"},
		{Values(testRel([]string{"a"}, nil), ""), "Seq Scan on values"},
		{Limit(Scan("t"), 3), "Limit 3"},
		{DistinctOf(Scan("t")), "HashAggregate (distinct)"},
		{Union(Scan("t"), Scan("t")), "Append"},
		{Diff(Scan("t"), Scan("t")), "Except"},
		{Intersect(Scan("t"), Scan("t")), "Intersect"},
		{Join(Scan("t"), Scan("t"), nil), "Nested Loop (cross)"},
		{Semi(Scan("t"), Scan("t"), EqCols("a", "b")), "Semi Join"},
		{Rename(Scan("t"), []string{"x"}), "Rename"},
	}
	for _, l := range labels {
		if got := l.p.Label(); !strings.Contains(got, l.want) {
			t.Errorf("label %q does not contain %q", got, l.want)
		}
	}
}
