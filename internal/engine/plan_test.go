package engine

import (
	"strings"
	"testing"
)

func planCatalog() *Catalog {
	cat := NewCatalog()
	cust := NewRelation(NewSchema(
		Column{Name: "c.custkey", Kind: KindInt},
		Column{Name: "c.name", Kind: KindString},
		Column{Name: "c.nationkey", Kind: KindInt},
	))
	for i := int64(0); i < 50; i++ {
		name := "Cust" + string(rune('A'+i%26))
		cust.Append(Tuple{Int(i), Str(name), Int(i % 5)})
	}
	ord := NewRelation(NewSchema(
		Column{Name: "o.orderkey", Kind: KindInt},
		Column{Name: "o.custkey", Kind: KindInt},
		Column{Name: "o.total", Kind: KindInt},
	))
	for i := int64(0); i < 200; i++ {
		ord.Append(Tuple{Int(i), Int(i % 50), Int(i * 10)})
	}
	nat := NewRelation(NewSchema(
		Column{Name: "n.nationkey", Kind: KindInt},
		Column{Name: "n.name", Kind: KindString},
	))
	for i := int64(0); i < 5; i++ {
		nat.Append(Tuple{Int(i), Str("N" + string(rune('0'+i)))})
	}
	cat.Put("customer", cust)
	cat.Put("orders", ord)
	cat.Put("nation", nat)
	return cat
}

func TestRunSimplePlan(t *testing.T) {
	cat := planCatalog()
	p := Project(
		Filter(Scan("orders"), Cmp(GT, Col("o.total"), ConstInt(1900))),
		"o.orderkey")
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 9 { // totals 1910..1990
		t.Fatalf("want 9 rows, got %d", out.Len())
	}
}

func TestJoinPlanOptimizedMatchesUnoptimized(t *testing.T) {
	cat := planCatalog()
	p := Project(
		Filter(
			Join(Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
				Scan("nation"), EqCols("c.nationkey", "n.nationkey")),
			And(Cmp(GT, Col("o.total"), ConstInt(500)), Cmp(EQ, Col("n.name"), ConstStr("N1")))),
		"o.orderkey", "c.name")
	opt, err := Run(p, cat, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if !opt.EqualAsBag(raw) {
		t.Fatalf("optimizer changed the result: %d vs %d rows", opt.Len(), raw.Len())
	}
	if opt.Len() == 0 {
		t.Fatal("expected non-empty result")
	}
}

func TestJoinPhysicalConfigsAgree(t *testing.T) {
	cat := planCatalog()
	p := Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey"))
	var results []*Relation
	for _, algo := range []JoinAlgo{JoinHash, JoinMerge, JoinNestedLoop} {
		out, err := Run(p, cat, ExecConfig{Join: algo})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, out)
	}
	if !results[0].EqualAsBag(results[1]) || !results[0].EqualAsBag(results[2]) {
		t.Fatal("physical join algorithms disagree")
	}
	if results[0].Len() != 200 {
		t.Fatalf("every order joins exactly once: got %d", results[0].Len())
	}
}

func TestSelfJoinWithRename(t *testing.T) {
	cat := planCatalog()
	n1 := Rename(Scan("nation"), []string{"n1.nationkey", "n1.name"})
	n2 := Rename(Scan("nation"), []string{"n2.nationkey", "n2.name"})
	p := Filter(Join(n1, n2, nil), Cmp(LT, Col("n1.nationkey"), Col("n2.nationkey")))
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 { // C(5,2)
		t.Fatalf("want 10 pairs, got %d", out.Len())
	}
}

func TestUnionDiffIntersectPlans(t *testing.T) {
	cat := planCatalog()
	a := Project(Scan("customer"), "c.nationkey")
	b := Project(Scan("nation"), "n.nationkey")
	u, err := RunDefault(DistinctOf(Union(a, b)), cat)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 5 {
		t.Fatalf("distinct union: want 5, got %d", u.Len())
	}
	d, err := RunDefault(Diff(b, a), cat)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("diff: want 0, got %d", d.Len())
	}
	i, err := RunDefault(Intersect(b, a), cat)
	if err != nil {
		t.Fatal(err)
	}
	if i.Len() != 5 {
		t.Fatalf("intersect: want 5, got %d", i.Len())
	}
}

func TestAggPlan(t *testing.T) {
	cat := planCatalog()
	p := Agg(Scan("orders"), []string{"o.custkey"}, AggSpec{Fn: AggCount, As: "n"})
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 50 {
		t.Fatalf("want 50 groups, got %d", out.Len())
	}
	for _, row := range out.Rows {
		if row[1].AsInt() != 4 {
			t.Fatalf("each customer has 4 orders, got %v", row)
		}
	}
}

func TestSortLimitPlan(t *testing.T) {
	cat := planCatalog()
	p := Limit(Sort(Scan("orders"), "o.total"), 3)
	out, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 || out.Rows[0][2].AsInt() != 0 {
		t.Fatalf("sort+limit wrong: %v", out.Rows)
	}
}

func TestValuesPlan(t *testing.T) {
	cat := NewCatalog()
	rel := testRel([]string{"a"}, [][]int64{{1}, {2}})
	out, err := RunDefault(Values(rel, "tmp"), cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatal("values plan scan")
	}
}

func TestOptimizerPushesFilterBelowJoin(t *testing.T) {
	cat := planCatalog()
	p := Filter(
		Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
		Cmp(EQ, Col("c.name"), ConstStr("CustA")))
	opt, err := Optimize(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	// After pushdown the top node should be the join (possibly wrapped
	// in projections), not the filter.
	if _, isFilter := opt.(*FilterPlan); isFilter {
		t.Fatalf("filter was not pushed below the join:\n%s", mustExplain(t, opt, cat))
	}
	out, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualAsBag(want) {
		t.Fatal("pushdown changed semantics")
	}
}

func mustExplain(t *testing.T, p Plan, cat *Catalog) string {
	t.Helper()
	s, err := Explain(p, cat, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExplainOutput(t *testing.T) {
	cat := planCatalog()
	p := Project(
		Filter(
			Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
			Cmp(GT, Col("o.total"), ConstInt(100))),
		"c.name")
	s, err := Explain(p, cat, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Hash Join") {
		t.Errorf("explain should pick a hash join:\n%s", s)
	}
	if !strings.Contains(s, "Hash Cond") {
		t.Errorf("explain should print the hash condition:\n%s", s)
	}
	if !strings.Contains(s, "Seq Scan on orders") {
		t.Errorf("explain should show scans:\n%s", s)
	}
}

func TestJoinOrderingPrefersSelective(t *testing.T) {
	cat := planCatalog()
	// nation is tiny and has a selective filter; the greedy orderer
	// should start from it rather than orders.
	p := Filter(
		Join(Join(Scan("orders"), Scan("customer"), EqCols("o.custkey", "c.custkey")),
			Scan("nation"), EqCols("c.nationkey", "n.nationkey")),
		Cmp(EQ, Col("n.name"), ConstStr("N2")))
	opt, err := Optimize(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualAsBag(want) {
		t.Fatal("join reordering changed semantics")
	}
	if out.Len() != 40 { // 10 customers of nation 2 x 4 orders each
		t.Fatalf("want 40 rows, got %d", out.Len())
	}
}

func TestEstimateStatsSanity(t *testing.T) {
	cat := planCatalog()
	scan := EstimateStats(Scan("orders"), cat)
	if scan.Rows != 200 {
		t.Fatalf("scan rows: %v", scan.Rows)
	}
	filt := EstimateStats(Filter(Scan("orders"), Cmp(EQ, Col("o.custkey"), ConstInt(3))), cat)
	if filt.Rows <= 0 || filt.Rows >= 200 {
		t.Fatalf("eq filter estimate out of range: %v", filt.Rows)
	}
	join := EstimateStats(Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")), cat)
	if join.Rows < 100 || join.Rows > 1000 {
		t.Fatalf("join estimate implausible: %v", join.Rows)
	}
	cost := EstimateCost(Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")), cat)
	if cost <= 0 {
		t.Fatal("cost must be positive")
	}
}

func TestOptimizerAblationSemantics(t *testing.T) {
	cat := planCatalog()
	plans := []Plan{
		Project(Filter(Scan("orders"), Cmp(LT, Col("o.total"), ConstInt(300))), "o.orderkey"),
		Filter(Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
			Cmp(EQ, Col("c.nationkey"), ConstInt(1))),
		DistinctOf(Project(Join(Scan("customer"), Scan("nation"),
			EqCols("c.nationkey", "n.nationkey")), "n.name")),
	}
	for i, p := range plans {
		a, err := Run(p, cat, ExecConfig{})
		if err != nil {
			t.Fatalf("plan %d optimized: %v", i, err)
		}
		b, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatalf("plan %d raw: %v", i, err)
		}
		if !a.EqualAsSet(b) {
			t.Fatalf("plan %d: optimizer changed result", i)
		}
	}
}
