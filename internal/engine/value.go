package engine

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can take.
type Kind uint8

// The supported value kinds. KindNull is the zero value, so a zero Value
// is NULL, mirroring SQL semantics.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. It is a compact tagged union:
// Int doubles as the storage for booleans (0/1), and dates are stored as
// KindInt days since epoch by convention (see ParseDate).
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Convenience constructors.

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truth reports whether v is a true boolean. NULL and false are both
// not-true (SQL three-valued logic collapses to two-valued at the top of
// a WHERE clause).
func (v Value) Truth() bool { return v.K == KindBool && v.I != 0 }

// AsInt returns the value as int64, converting floats by truncation.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// AsFloat returns the value as float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// String renders the value for display and for EXPLAIN output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Quoted renders the value as a literal (strings quoted), used by plan
// printers.
func (v Value) Quoted() string {
	if v.K == KindString {
		return "'" + v.S + "'"
	}
	return v.String()
}

// numericKinds reports whether both kinds are numeric (int or float).
func numericKinds(a, b Kind) bool {
	return (a == KindInt || a == KindFloat) && (b == KindInt || b == KindFloat)
}

// Compare orders two values. NULL sorts before everything; values of
// different non-numeric kinds order by kind. Numeric kinds compare by
// numeric value. Returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K != b.K {
		if numericKinds(a.K, b.K) {
			return compareFloat(a.AsFloat(), b.AsFloat())
		}
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindInt, KindBool:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return compareFloat(a.F, b.F)
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics,
// with NULL equal only to NULL (used for grouping/dedup, not predicates).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a parameters, inlined so hashing never allocates (hash/fnv's
// New64a escapes to the heap, which made per-row hashing on join hot
// paths allocate).
const (
	fnvOffset64 = 1469598103934665603
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(x))
		x >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// HashValue returns a 64-bit hash of the value, consistent with Equal
// (ints and floats that compare equal hash the same). It is a plain
// FNV-1a over a tagged byte rendering and performs no allocation.
func HashValue(v Value) uint64 {
	return hashValueInto(fnvOffset64, v)
}

// hashValueInto folds v into a running FNV-1a state, so multi-column
// keys hash without intermediate values.
func hashValueInto(h uint64, v Value) uint64 {
	switch v.K {
	case KindNull:
		return fnvByte(h, 0)
	case KindInt, KindBool:
		return fnvUint64(fnvByte(h, 1), uint64(v.I))
	case KindFloat:
		// Hash floats that equal integers identically to the integer.
		if v.F == math.Trunc(v.F) && !math.IsInf(v.F, 0) &&
			v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			return fnvUint64(fnvByte(h, 1), uint64(int64(v.F)))
		}
		return fnvUint64(fnvByte(h, 2), math.Float64bits(v.F))
	case KindString:
		return fnvString(fnvByte(h, 3), v.S)
	}
	return h
}

// SizeBytes estimates the in-memory footprint of the value, used by the
// experiment harness to report database sizes analogous to the paper's
// MB column in Figure 9.
func (v Value) SizeBytes() int {
	// Tagged union: 1 tag + 8 payload, strings add their bytes.
	n := 9
	if v.K == KindString {
		n += len(v.S)
	}
	return n
}

// ParseDate converts "YYYY-MM-DD" into a day number (proleptic
// Gregorian, epoch 1970-01-01 = 0) stored as an int value. Dates are
// kept as integers so range predicates on dates are plain integer
// comparisons, as in the TPC-H substrate.
func ParseDate(s string) (Value, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return Null(), fmt.Errorf("engine: bad date %q", s)
	}
	y, err1 := strconv.Atoi(s[0:4])
	m, err2 := strconv.Atoi(s[5:7])
	d, err3 := strconv.Atoi(s[8:10])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return Null(), fmt.Errorf("engine: bad date %q", s)
	}
	return Int(epochDays(y, m, d)), nil
}

// MustDate is ParseDate that panics on malformed input; intended for
// literals in tests and examples.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FormatDate renders a day-number value back to "YYYY-MM-DD".
func FormatDate(v Value) string {
	y, m, d := fromEpochDays(v.AsInt())
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// epochDays converts a calendar date to days since 1970-01-01 using the
// standard civil-date algorithm.
func epochDays(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	era := yy / 400
	if yy < 0 && yy%400 != 0 {
		era--
	}
	yoe := yy - era*400
	var mm int64
	if m > 2 {
		mm = int64(m) - 3
	} else {
		mm = int64(m) + 9
	}
	doy := (153*mm+2)/5 + int64(d) - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return era*146097 + doe - 719468
}

func fromEpochDays(z int64) (y, m, d int) {
	z += 719468
	era := z / 146097
	if z < 0 && z%146097 != 0 {
		era--
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}
