package engine

import (
	"fmt"
	"sort"
)

// AggFunc enumerates aggregate functions supported by the substrate.
// (The uncertain algebra of the paper drops aggregation — the authors
// removed it from TPC-H Q3/Q6/Q7 — but a relational substrate without
// aggregation would not be credible, and the experiment harness uses
// COUNT to measure answer sizes.)
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[f]
}

// AggSpec is one aggregate column: Fn applied to input column Col
// (ignored for COUNT with Col == ""), output named As.
type AggSpec struct {
	Fn  AggFunc
	Col string
	As  string
}

// HashAggIter groups by the named columns and computes aggregates.
// Groups are emitted in deterministic (sorted key) order.
type HashAggIter struct {
	In      Iterator
	GroupBy []string
	Aggs    []AggSpec

	out *Relation
	pos int
}

// NewHashAgg builds a hash aggregate.
func NewHashAgg(in Iterator, groupBy []string, aggs []AggSpec) *HashAggIter {
	return &HashAggIter{In: in, GroupBy: groupBy, Aggs: aggs}
}

type aggState struct {
	key    Tuple
	count  []int64
	sum    []float64
	sumInt []int64
	isInt  []bool
	min    []Value
	max    []Value
	seen   []bool
}

func (h *HashAggIter) Open() error {
	if err := h.In.Open(); err != nil {
		return err
	}
	insch := h.In.Schema()
	gidx := make([]int, len(h.GroupBy))
	for i, g := range h.GroupBy {
		j := insch.IndexOf(g)
		if j < 0 {
			return fmt.Errorf("engine: group by: column %q not in %v", g, insch.Names())
		}
		gidx[i] = j
	}
	aidx := make([]int, len(h.Aggs))
	for i, a := range h.Aggs {
		if a.Col == "" {
			aidx[i] = -1
			continue
		}
		j := insch.IndexOf(a.Col)
		if j < 0 {
			return fmt.Errorf("engine: aggregate: column %q not in %v", a.Col, insch.Names())
		}
		aidx[i] = j
	}
	groups := map[string]*aggState{}
	scratch := make(Tuple, len(gidx))
	var kbuf []byte
	for {
		row, ok, err := h.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for i, j := range gidx {
			scratch[i] = row[j]
		}
		// Non-allocating lookup on the common (existing group) path; a
		// fresh group copies the key tuple once.
		kbuf = AppendKey(kbuf[:0], scratch)
		st, ok2 := groups[string(kbuf)]
		if !ok2 {
			n := len(h.Aggs)
			st = &aggState{
				key: scratch.Clone(), count: make([]int64, n), sum: make([]float64, n),
				sumInt: make([]int64, n), isInt: make([]bool, n),
				min: make([]Value, n), max: make([]Value, n), seen: make([]bool, n),
			}
			for i := range st.isInt {
				st.isInt[i] = true
			}
			groups[string(kbuf)] = st
		}
		for i, a := range h.Aggs {
			var v Value
			if aidx[i] >= 0 {
				v = row[aidx[i]]
			} else {
				v = Int(1)
			}
			if v.IsNull() && a.Fn != AggCount {
				continue
			}
			st.count[i]++
			switch a.Fn {
			case AggSum, AggAvg:
				if v.K == KindFloat {
					st.isInt[i] = false
				}
				st.sum[i] += v.AsFloat()
				st.sumInt[i] += v.AsInt()
			case AggMin:
				if !st.seen[i] || Compare(v, st.min[i]) < 0 {
					st.min[i] = v
				}
			case AggMax:
				if !st.seen[i] || Compare(v, st.max[i]) > 0 {
					st.max[i] = v
				}
			}
			st.seen[i] = true
		}
	}
	// Build output schema and rows.
	cols := make([]Column, 0, len(h.GroupBy)+len(h.Aggs))
	for i, g := range h.GroupBy {
		cols = append(cols, Column{Name: g, Kind: insch.Cols[gidx[i]].Kind})
	}
	for i, a := range h.Aggs {
		k := KindInt
		if a.Fn == AggAvg {
			k = KindFloat
		} else if aidx[i] >= 0 {
			srcKind := insch.Cols[aidx[i]].Kind
			if a.Fn == AggMin || a.Fn == AggMax {
				k = srcKind
			} else if srcKind == KindFloat {
				k = KindFloat
			}
		}
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s(%s)", a.Fn, a.Col)
		}
		cols = append(cols, Column{Name: name, Kind: k})
	}
	h.out = NewRelation(Schema{Cols: cols})
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := groups[k]
		row := make(Tuple, 0, len(cols))
		row = append(row, st.key...)
		for i, a := range h.Aggs {
			switch a.Fn {
			case AggCount:
				row = append(row, Int(st.count[i]))
			case AggSum:
				if st.count[i] == 0 {
					row = append(row, Null())
				} else if st.isInt[i] {
					row = append(row, Int(st.sumInt[i]))
				} else {
					row = append(row, Float(st.sum[i]))
				}
			case AggAvg:
				if st.count[i] == 0 {
					row = append(row, Null())
				} else {
					row = append(row, Float(st.sum[i]/float64(st.count[i])))
				}
			case AggMin:
				if !st.seen[i] {
					row = append(row, Null())
				} else {
					row = append(row, st.min[i])
				}
			case AggMax:
				if !st.seen[i] {
					row = append(row, Null())
				} else {
					row = append(row, st.max[i])
				}
			}
		}
		h.out.Rows = append(h.out.Rows, row)
	}
	// Global aggregate over empty input still yields one row.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		row := make(Tuple, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Fn == AggCount {
				row[i] = Int(0)
			} else {
				row[i] = Null()
			}
		}
		h.out.Rows = append(h.out.Rows, row)
	}
	h.pos = 0
	return nil
}

func (h *HashAggIter) Next() (Tuple, bool, error) {
	if h.out == nil || h.pos >= len(h.out.Rows) {
		return nil, false, nil
	}
	t := h.out.Rows[h.pos]
	h.pos++
	return t, true, nil
}

func (h *HashAggIter) Close() error { h.out = nil; return h.In.Close() }

func (h *HashAggIter) Schema() Schema {
	if h.out != nil {
		return h.out.Sch
	}
	// Pre-Open best effort.
	insch := h.In.Schema()
	cols := make([]Column, 0, len(h.GroupBy)+len(h.Aggs))
	for _, g := range h.GroupBy {
		j := insch.IndexOf(g)
		k := KindNull
		if j >= 0 {
			k = insch.Cols[j].Kind
		}
		cols = append(cols, Column{Name: g, Kind: k})
	}
	for _, a := range h.Aggs {
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s(%s)", a.Fn, a.Col)
		}
		cols = append(cols, Column{Name: name, Kind: KindInt})
	}
	return Schema{Cols: cols}
}
