package engine

// DefaultBatchSize is the number of tuples moved per NextBatch call. The
// value trades per-call overhead against cache residency of a batch;
// 1024 rows of a handful of Values fit comfortably in L2.
const DefaultBatchSize = 1024

// BatchIterator is the vectorized fast path of the Volcano interface:
// instead of one virtual call per tuple, NextBatch moves up to
// DefaultBatchSize tuples per call. Operators that can produce batches
// natively (scans, filters, projections, the parallel operators)
// implement it; everything else is adapted via Batched. A consumer must
// drive an iterator through either Next or NextBatch, not a mix of both.
type BatchIterator interface {
	Iterator
	// NextBatch returns the next non-empty batch of rows, or ok=false at
	// end of stream. The returned slice is owned by the caller until the
	// next NextBatch call (implementations may reuse the backing array).
	NextBatch() ([]Tuple, bool, error)
}

// Batched adapts any Iterator to a BatchIterator. Iterators with a
// native NextBatch are returned unchanged; others get a generic adapter
// that gathers DefaultBatchSize tuples per call, so every existing
// single-tuple operator participates in batch execution unmodified.
func Batched(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &batchAdapter{Iterator: it}
}

// batchAdapter implements NextBatch by repeated Next calls.
type batchAdapter struct {
	Iterator
	buf []Tuple
}

func (a *batchAdapter) NextBatch() ([]Tuple, bool, error) {
	if a.buf == nil {
		a.buf = make([]Tuple, 0, DefaultBatchSize)
	}
	batch := a.buf[:0]
	for len(batch) < DefaultBatchSize {
		row, ok, err := a.Iterator.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		batch = append(batch, row)
	}
	a.buf = batch
	if len(batch) == 0 {
		return nil, false, nil
	}
	return batch, true, nil
}

// NextBatch on ScanIter hands out slices of the underlying relation
// without copying row headers one at a time.
func (s *ScanIter) NextBatch() ([]Tuple, bool, error) {
	if s.pos >= len(s.Rel.Rows) {
		return nil, false, nil
	}
	end := s.pos + DefaultBatchSize
	if end > len(s.Rel.Rows) {
		end = len(s.Rel.Rows)
	}
	batch := s.Rel.Rows[s.pos:end]
	s.pos = end
	return batch, true, nil
}

// NextBatch on FilterIter evaluates the predicate over whole input
// batches, skipping the per-tuple virtual dispatch of the Next path.
func (f *FilterIter) NextBatch() ([]Tuple, bool, error) {
	if f.bin == nil {
		f.bin = Batched(f.In)
	}
	if f.out == nil {
		f.out = make([]Tuple, 0, DefaultBatchSize)
	}
	for {
		in, ok, err := f.bin.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		out := f.out[:0]
		for _, row := range in {
			if f.bound.Eval(row).Truth() {
				out = append(out, row)
			}
		}
		f.out = out
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// NextBatch on ProjectIter rebuilds whole batches of narrowed rows.
func (p *ProjectIter) NextBatch() ([]Tuple, bool, error) {
	if p.bin == nil {
		p.bin = Batched(p.In)
	}
	in, ok, err := p.bin.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if cap(p.out) < len(in) {
		p.out = make([]Tuple, len(in))
	}
	out := p.out[:len(in)]
	// One backing allocation for the whole batch's cells.
	cells := make([]Value, len(in)*len(p.idx))
	for r, row := range in {
		t := cells[r*len(p.idx) : (r+1)*len(p.idx) : (r+1)*len(p.idx)]
		for i, j := range p.idx {
			t[i] = row[j]
		}
		out[r] = t
	}
	p.out = out
	return out, true, nil
}
