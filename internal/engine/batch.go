package engine

// DefaultBatchSize is the number of tuples moved per NextBatch call. The
// value trades per-call overhead against cache residency of a batch;
// 1024 rows of a handful of Values fit comfortably in L2.
const DefaultBatchSize = 1024

// BatchIterator is the vectorized fast path of the Volcano interface:
// instead of one virtual call per tuple, NextBatch moves up to
// DefaultBatchSize tuples per call. Operators that can produce batches
// natively (scans, filters, projections, the parallel operators)
// implement it; everything else is adapted via Batched. A consumer must
// drive an iterator through either Next or NextBatch, not a mix of both.
type BatchIterator interface {
	Iterator
	// NextBatch returns the next non-empty batch of rows, or ok=false at
	// end of stream. The returned slice is owned by the caller until the
	// next NextBatch call (implementations may reuse the backing array).
	NextBatch() ([]Tuple, bool, error)
}

// Batched adapts any Iterator to a BatchIterator. Iterators with a
// native NextBatch are returned unchanged; others get a generic adapter
// that gathers DefaultBatchSize tuples per call, so every existing
// single-tuple operator participates in batch execution unmodified.
func Batched(it Iterator) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	return &batchAdapter{Iterator: it}
}

// batchAdapter implements NextBatch by repeated Next calls.
type batchAdapter struct {
	Iterator
	buf []Tuple
}

func (a *batchAdapter) NextBatch() ([]Tuple, bool, error) {
	if a.buf == nil {
		a.buf = make([]Tuple, 0, DefaultBatchSize)
	}
	batch := a.buf[:0]
	for len(batch) < DefaultBatchSize {
		row, ok, err := a.Iterator.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		batch = append(batch, row)
	}
	a.buf = batch
	if len(batch) == 0 {
		return nil, false, nil
	}
	return batch, true, nil
}

// NextBatch on ScanIter hands out slices of the underlying relation
// without copying row headers one at a time.
func (s *ScanIter) NextBatch() ([]Tuple, bool, error) {
	if s.pos >= len(s.Rel.Rows) {
		return nil, false, nil
	}
	end := s.pos + DefaultBatchSize
	if end > len(s.Rel.Rows) {
		end = len(s.Rel.Rows)
	}
	batch := s.Rel.Rows[s.pos:end]
	s.pos = end
	return batch, true, nil
}

// NextColBatch on ScanIter transposes one row batch; relations are
// row-major in memory, so the scan is not ColumnarNative — consumers
// prefer its row batches and use this only when they were asked to
// produce columns regardless.
func (s *ScanIter) NextColBatch() (*ColBatch, bool, error) {
	rows, ok, err := s.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	transposeInto(&s.cb, s.Rel.Sch, rows)
	return &s.cb, true, nil
}

// ColumnarNative reports that the scan's storage is row-major.
func (s *ScanIter) ColumnarNative() bool { return false }

// NextBatch on FilterIter evaluates the predicate over whole input
// batches, skipping the per-tuple virtual dispatch of the Next path.
// When the input is columnar end-to-end, the predicate instead runs
// vectorized over the input's column vectors and only the surviving
// rows are materialized as tuples.
func (f *FilterIter) NextBatch() ([]Tuple, bool, error) {
	if f.colNative {
		cb, ok, err := f.NextColBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		f.out = cb.Materialize(f.out)
		return f.out, true, nil
	}
	if f.bin == nil {
		f.bin = Batched(f.In)
	}
	if f.out == nil {
		f.out = make([]Tuple, 0, DefaultBatchSize)
	}
	for {
		in, ok, err := f.bin.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		out := f.out[:0]
		for _, row := range in {
			if f.bound.Eval(row).Truth() {
				out = append(out, row)
			}
		}
		f.out = out
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

// NextColBatch on FilterIter narrows input batches through the
// compiled vectorized predicate: typed comparisons run as tight loops
// over the column payloads and only the selection vector shrinks — no
// tuple is built and no column data moves.
func (f *FilterIter) NextColBatch() (*ColBatch, bool, error) {
	if f.colIn == nil {
		f.colIn = Columnar(f.In)
		f.vp = compileVecPred(f.bound, f.In.Schema())
	}
	for {
		in, ok, err := f.colIn.NextColBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		f.sel = f.vp.filter(in, f.sel)
		if len(f.sel) == 0 {
			continue
		}
		f.cb = ColBatch{Sch: in.Sch, Cols: in.Cols, N: in.N, Sel: f.sel}
		return &f.cb, true, nil
	}
}

// ColumnarNative reports whether the filter's whole input chain is
// columnar.
func (f *FilterIter) ColumnarNative() bool {
	_, ok := NativeColumnar(f.In)
	return ok
}

// NextBatch on ProjectIter rebuilds whole batches of narrowed rows.
func (p *ProjectIter) NextBatch() ([]Tuple, bool, error) {
	if p.colNative {
		cb, ok, err := p.NextColBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		p.out = cb.Materialize(p.out)
		return p.out, true, nil
	}
	if p.bin == nil {
		p.bin = Batched(p.In)
	}
	in, ok, err := p.bin.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if cap(p.out) < len(in) {
		p.out = make([]Tuple, len(in))
	}
	out := p.out[:len(in)]
	// One backing allocation for the whole batch's cells.
	cells := make([]Value, len(in)*len(p.idx))
	for r, row := range in {
		t := cells[r*len(p.idx) : (r+1)*len(p.idx) : (r+1)*len(p.idx)]
		for i, j := range p.idx {
			t[i] = row[j]
		}
		out[r] = t
	}
	p.out = out
	return out, true, nil
}

// NextColBatch on ProjectIter re-slices the input batch's column
// vectors: projection over columns is free.
func (p *ProjectIter) NextColBatch() (*ColBatch, bool, error) {
	if p.colIn == nil {
		p.colIn = Columnar(p.In)
	}
	in, ok, err := p.colIn.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	cols := p.cols[:0]
	for _, j := range p.idx {
		cols = append(cols, in.Cols[j])
	}
	p.cols = cols
	p.cb = ColBatch{Sch: p.sch, Cols: cols, N: in.N, Sel: in.Sel}
	return &p.cb, true, nil
}

// ColumnarNative reports whether the projection's whole input chain is
// columnar.
func (p *ProjectIter) ColumnarNative() bool {
	_, ok := NativeColumnar(p.In)
	return ok
}
