package engine

import (
	"math/rand"
	"testing"
)

// TestPushdownThroughUnion: a filter over a union distributes into both
// branches when the columns resolve on both sides.
func TestPushdownThroughUnion(t *testing.T) {
	cat := NewCatalog()
	cat.Put("a", testRel([]string{"v"}, [][]int64{{1}, {2}, {3}}))
	cat.Put("b", testRel([]string{"v"}, [][]int64{{2}, {4}}))
	p := Filter(Union(Scan("a"), Scan("b")), Cmp(GT, Col("v"), ConstInt(2)))
	opt, err := Optimize(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, stillFilter := opt.(*FilterPlan); stillFilter {
		t.Fatalf("filter should distribute over union:\n%s", mustExplain(t, opt, cat))
	}
	out, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 { // 3 from a, 4 from b
		t.Fatalf("want 2 rows, got %d", out.Len())
	}
}

// TestPushdownThroughDistinctAndSort: filters commute with distinct and
// sort.
func TestPushdownThroughDistinctAndSort(t *testing.T) {
	cat := NewCatalog()
	cat.Put("a", testRel([]string{"v"}, [][]int64{{1}, {1}, {2}, {3}}))
	for _, p := range []Plan{
		Filter(DistinctOf(Scan("a")), Cmp(GE, Col("v"), ConstInt(2))),
		Filter(Sort(Scan("a"), "v"), Cmp(GE, Col("v"), ConstInt(2))),
	} {
		opt, err := Optimize(p, cat)
		if err != nil {
			t.Fatal(err)
		}
		if _, stillFilter := opt.(*FilterPlan); stillFilter {
			t.Fatalf("filter should push below:\n%s", mustExplain(t, opt, cat))
		}
		a, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualAsSet(b) {
			t.Fatal("pushdown changed semantics")
		}
	}
}

// TestPruneColumnsKeepsSemantics: column pruning around joins never
// changes results, including for semi/anti joins.
func TestPruneColumnsKeepsSemantics(t *testing.T) {
	cat := planCatalog()
	plans := []Plan{
		Project(Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")), "c.name"),
		Project(Semi(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")), "c.name"),
		Project(Anti(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")), "c.name"),
	}
	for i, p := range plans {
		opt, err := Optimize(p, cat)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		a, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		b, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if !a.EqualAsBag(b) {
			t.Fatalf("plan %d: pruning changed semantics", i)
		}
	}
}

// TestJoinOrderRandomized: random star-join plans keep their semantics
// through optimization (schema order included).
func TestJoinOrderRandomized(t *testing.T) {
	cat := planCatalog()
	rng := rand.New(rand.NewSource(13))
	tables := []struct{ name, key string }{
		{"customer", "c.custkey"},
		{"orders", "o.custkey"},
	}
	_ = tables
	for iter := 0; iter < 20; iter++ {
		// Random permutation of a 3-way join with a random filter.
		j := Join(Join(Scan("orders"), Scan("customer"), EqCols("o.custkey", "c.custkey")),
			Scan("nation"), EqCols("c.nationkey", "n.nationkey"))
		var p Plan = j
		if rng.Intn(2) == 0 {
			p = Filter(p, Cmp(EQ, Col("n.nationkey"), ConstInt(int64(rng.Intn(5)))))
		}
		if rng.Intn(2) == 0 {
			p = Project(p, "o.orderkey", "n.name")
		}
		opt, err := Optimize(p, cat)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Run(opt, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(p, cat, ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatal(err)
		}
		if !a.EqualAsBag(b) {
			t.Fatalf("iter %d: optimization changed semantics", iter)
		}
	}
}

func TestStringHelpers(t *testing.T) {
	if !sameStrings([]string{"a", "b"}, []string{"a", "b"}) ||
		sameStrings([]string{"a"}, []string{"b"}) ||
		sameStrings([]string{"a"}, []string{"a", "b"}) {
		t.Fatal("sameStrings")
	}
	if !uniqueStrings([]string{"a", "b"}) || uniqueStrings([]string{"a", "a"}) {
		t.Fatal("uniqueStrings")
	}
}

// TestOptimizeIsSchemaPreserving: the contract core.Translate depends
// on — Optimize never changes the output schema.
func TestOptimizeIsSchemaPreserving(t *testing.T) {
	cat := planCatalog()
	plans := []Plan{
		Join(Join(Scan("orders"), Scan("customer"), EqCols("o.custkey", "c.custkey")),
			Scan("nation"), EqCols("c.nationkey", "n.nationkey")),
		Filter(Join(Scan("customer"), Scan("nation"), EqCols("c.nationkey", "n.nationkey")),
			Cmp(EQ, Col("n.name"), ConstStr("N0"))),
	}
	for i, p := range plans {
		before, err := p.Schema(cat)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(p, cat)
		if err != nil {
			t.Fatal(err)
		}
		after, err := opt.Schema(cat)
		if err != nil {
			t.Fatal(err)
		}
		if !before.Equal(after) {
			t.Fatalf("plan %d: schema changed: %v -> %v", i, before.Names(), after.Names())
		}
	}
}
