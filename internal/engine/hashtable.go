package engine

// joinTable is the hashed-key machinery shared by the hash join family
// (HashJoinIter, SemiJoinIter, and the per-partition tables of
// ParallelHashJoinIter). It replaces the former map[string][]Tuple
// design, which materialized a KeyString per build and probe row: here
// keys are 64-bit hashes of the key columns, collisions resolve by
// direct value comparison, and build rows live in one flat Value arena
// — so neither build nor probe performs any per-row string or map
// allocation.
//
// Layout: open addressing with linear probing. Each occupied slot owns
// the chain of all stored rows whose key columns are equal (chains are
// kept in insertion order, so join output order matches the serial
// row-at-a-time evaluation exactly). slotHash short-circuits most
// collision checks before any value comparison happens.
type joinTable struct {
	ncols  int
	keyIdx []int // key column positions within stored rows

	cells  []Value  // flat row arena, ncols stride
	hashes []uint64 // per stored row
	next   []int32  // per stored row: next row with equal key, -1 ends

	slots    []int32  // head row index + 1; 0 = empty
	slotTail []int32  // last row of the slot's chain
	slotHash []uint64 // full hash of the slot's key
	mask     uint64
}

// newJoinTable builds an empty table for rows of ncols columns keyed
// by the keyIdx columns. keyIdx may be empty, in which case every row
// shares one key (used by key-less semi joins).
func newJoinTable(ncols int, keyIdx []int) *joinTable {
	t := &joinTable{ncols: ncols, keyIdx: keyIdx}
	t.resetSlots(64)
	return t
}

func (t *joinTable) resetSlots(n int) {
	t.slots = make([]int32, n)
	t.slotTail = make([]int32, n)
	t.slotHash = make([]uint64, n)
	t.mask = uint64(n - 1)
}

// len returns the stored row count.
func (t *joinTable) len() int { return len(t.hashes) }

// row returns stored row i as a full-capacity tuple slice into the
// arena. The slice is only valid until the next insert (the arena may
// be reallocated), so callers copy out of it before inserting again.
func (t *joinTable) row(i int32) Tuple {
	lo := int(i) * t.ncols
	return Tuple(t.cells[lo : lo+t.ncols : lo+t.ncols])
}

// hashRow hashes the keyIdx columns of a prospective row; ok=false
// signals a NULL key, which never joins and must not be inserted.
func (t *joinTable) hashRow(row Tuple) (uint64, bool) {
	return hashKeyAt(row, t.keyIdx)
}

// insert copies row into the arena and links it under hash h (which
// must be hashRow's output for it).
func (t *joinTable) insert(row Tuple, h uint64) {
	r := int32(len(t.hashes))
	t.cells = append(t.cells, row...)
	t.hashes = append(t.hashes, h)
	t.next = append(t.next, -1)
	// Grow at 3/4 load. Row count bounds occupied slots from above
	// (only distinct keys claim slots), so this is conservative-safe.
	if uint64(len(t.hashes))*4 > (t.mask+1)*3 {
		t.rehash()
		return
	}
	t.link(r, h)
}

// link walks the probe sequence for h and attaches row r: to the tail
// of an existing equal-key chain, or to a claimed empty slot.
func (t *joinTable) link(r int32, h uint64) {
	s := h & t.mask
	for {
		head := t.slots[s]
		if head == 0 {
			t.slots[s] = r + 1
			t.slotTail[s] = r
			t.slotHash[s] = h
			return
		}
		if t.slotHash[s] == h && t.sameKey(head-1, r) {
			tail := t.slotTail[s]
			t.next[tail] = r
			t.slotTail[s] = r
			return
		}
		s = (s + 1) & t.mask
	}
}

// rehash doubles the slot directory and relinks every row in insertion
// order, which reproduces all chains in insertion order.
func (t *joinTable) rehash() {
	t.resetSlots(2 * len(t.slots))
	for i := range t.next {
		t.next[i] = -1
	}
	for i, h := range t.hashes {
		t.link(int32(i), h)
	}
}

// sameKey reports whether two stored rows agree on the key columns.
func (t *joinTable) sameKey(a, b int32) bool {
	ra, rb := t.row(a), t.row(b)
	for _, ki := range t.keyIdx {
		if Compare(ra[ki], rb[ki]) != 0 {
			return false
		}
	}
	return true
}

// keysEqual reports whether stored row i agrees with the probeIdx
// columns of probe on the key columns.
func (t *joinTable) keysEqual(i int32, probe Tuple, probeIdx []int) bool {
	r := t.row(i)
	for k, ki := range t.keyIdx {
		if Compare(r[ki], probe[probeIdx[k]]) != 0 {
			return false
		}
	}
	return true
}

// lookup returns the first stored row whose key equals probe's
// probeIdx columns under hash h, or -1. Follow the chain with
// nextMatch.
func (t *joinTable) lookup(h uint64, probe Tuple, probeIdx []int) int32 {
	if len(t.hashes) == 0 {
		return -1
	}
	s := h & t.mask
	for {
		head := t.slots[s]
		if head == 0 {
			return -1
		}
		if t.slotHash[s] == h && t.keysEqual(head-1, probe, probeIdx) {
			return head - 1
		}
		s = (s + 1) & t.mask
	}
}

// nextMatch follows the equal-key chain started by lookup.
func (t *joinTable) nextMatch(i int32) int32 { return t.next[i] }

// outArena carves write-once output tuples from chunked allocations,
// so emitting a join result row costs a copy, not an allocation. The
// carved tuples are never reused, which keeps the BatchIterator
// contract: consumers may retain them indefinitely.
type outArena struct {
	buf   []Value
	chunk int // last chunk size; doubles up to arenaChunk
}

// arenaChunk caps the allocation unit; with typical join output widths
// around ten columns this amortizes to roughly one allocation per
// eight hundred output rows. Chunks start small and double so an
// iterator that emits only a handful of rows doesn't pay for (or make
// the GC sweep) a full-size chunk.
const (
	arenaChunk      = 8192
	arenaFirstChunk = 64
)

// concat returns a stable copy of l ++ r.
func (a *outArena) concat(l, r Tuple) Tuple {
	t := a.carve(len(l) + len(r))
	copy(t, l)
	copy(t[len(l):], r)
	return t
}

func (a *outArena) carve(n int) Tuple {
	if len(a.buf) < n {
		size := a.chunk * 2
		if size < arenaFirstChunk {
			size = arenaFirstChunk
		}
		if size > arenaChunk {
			size = arenaChunk
		}
		if n > size {
			size = n
		}
		a.chunk = size
		a.buf = make([]Value, size)
	}
	t := a.buf[:n:n]
	a.buf = a.buf[n:]
	return t
}
