package engine

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() should be null")
	}
	if Int(7).AsInt() != 7 {
		t.Fatal("Int accessor")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Fatal("Float accessor")
	}
	if Str("x").S != "x" {
		t.Fatal("Str accessor")
	}
	if !Bool(true).Truth() || Bool(false).Truth() {
		t.Fatal("Bool truth")
	}
	if Null().Truth() {
		t.Fatal("null is not true")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Fatal("int as float")
	}
	if Float(3.9).AsInt() != 3 {
		t.Fatal("float as int truncates")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null(),
		"42":    Int(42),
		"2.5":   Float(2.5),
		"hi":    Str("hi"),
		"true":  Bool(true),
		"false": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.K, got, want)
		}
	}
	if Str("a").Quoted() != "'a'" {
		t.Error("Quoted string")
	}
	if Int(1).Quoted() != "1" {
		t.Error("Quoted int")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	// Ints and equal floats hash identically.
	if HashValue(Int(5)) != HashValue(Float(5.0)) {
		t.Error("5 and 5.0 must hash equal")
	}
	if HashValue(Int(5)) == HashValue(Int(6)) {
		t.Error("5 and 6 should differ (overwhelmingly)")
	}
	f := func(x int64) bool {
		x %= 1 << 50 // stay within exact float64 integer range
		return HashValue(Int(x)) == HashValue(Float(float64(x)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDateRoundTrip(t *testing.T) {
	dates := []string{
		"1970-01-01", "1995-03-15", "1992-02-29", "2000-12-31",
		"1994-01-01", "1996-01-01", "2026-06-10",
	}
	for _, s := range dates {
		v, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%s): %v", s, err)
		}
		if got := FormatDate(v); got != s {
			t.Errorf("round trip %s -> %s", s, got)
		}
	}
	if v := MustDate("1970-01-01"); v.AsInt() != 0 {
		t.Errorf("epoch should be 0, got %d", v.AsInt())
	}
	if v := MustDate("1970-01-02"); v.AsInt() != 1 {
		t.Errorf("epoch+1 should be 1, got %d", v.AsInt())
	}
}

func TestDateOrdering(t *testing.T) {
	if Compare(MustDate("1995-03-15"), MustDate("1995-03-17")) >= 0 {
		t.Error("date ordering broken")
	}
}

func TestParseDateErrors(t *testing.T) {
	for _, s := range []string{"", "1995", "1995-3-15", "1995-13-01", "1995-00-10", "xxxx-yy-zz"} {
		if _, err := ParseDate(s); err == nil {
			t.Errorf("ParseDate(%q) should fail", s)
		}
	}
}

func TestValueSizeBytes(t *testing.T) {
	if Int(1).SizeBytes() != 9 {
		t.Error("int size")
	}
	if Str("abcd").SizeBytes() != 13 {
		t.Error("string size includes bytes")
	}
}

func TestDateQuickRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		d := int64(n % 200000) // within a few centuries of epoch
		y, m, dd := fromEpochDays(d)
		return epochDays(y, m, dd) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
