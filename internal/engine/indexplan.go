package engine

import (
	"fmt"
)

// IndexedSource is a SourcePlan backed by persistent secondary indexes
// (internal/index sorted runs over the store's segment files). The
// engine stays storage-agnostic: it only asks which output columns
// have an equality index, what one probe is expected to return, and
// for an iterator over the rows matching a key — the storage layer
// answers from its runs, bloom filters, tombstones, and memtable, so
// an index hit is never stale.
type IndexedSource interface {
	SourcePlan
	// SourceName names the underlying relation/partition for EXPLAIN.
	SourceName() string
	// IndexedCols returns the canonical output column names that have a
	// usable equality index (every file layer carries a run).
	IndexedCols() []string
	// LookupEq returns an iterator over exactly the live rows whose
	// column equals key, in the source's full output schema.
	LookupEq(col string, key Value) (Iterator, error)
	// LookupEstimate estimates the rows one equality probe returns.
	LookupEstimate(col string) float64
}

// SortedSource is an IndexedSource that can additionally stream its
// live rows in ascending key order straight off the sorted runs — the
// feed a sort-merge join consumes without sorting. Rows whose key is
// NULL are omitted (an equi-join never matches them), so the iterator
// is only correct as a merge-join input, not as a general scan.
type SortedSource interface {
	IndexedSource
	// SortedCols returns the columns BuildSortedIter supports.
	SortedCols() []string
	// BuildSortedIter returns the live non-NULL-key rows in ascending
	// order of col under Compare.
	BuildSortedIter(col string, cfg ExecConfig) (Iterator, error)
}

// IndexScanPlan is the leaf produced by the optimizer's index rewrite:
// an equality filter over an IndexedSource leaf becomes one probe of
// the source's sorted-run indexes. It is itself a SourcePlan, so the
// generic lowering and estimators handle it like any storage leaf.
type IndexScanPlan struct {
	Src IndexedSource
	Col string // canonical column name in the source's schema
	Key Value
}

func (p *IndexScanPlan) Schema(cat *Catalog) (Schema, error) { return p.Src.Schema(cat) }
func (p *IndexScanPlan) Children() []Plan                    { return nil }
func (p *IndexScanPlan) WithChildren([]Plan) Plan            { c := *p; return &c }

func (p *IndexScanPlan) Label() string {
	return fmt.Sprintf("Index Scan on %s (%s = %s)", p.Src.SourceName(), p.Col, p.Key.Quoted())
}

// BuildIter lowers the probe to the source's lookup iterator.
func (p *IndexScanPlan) BuildIter(ExecConfig) (Iterator, error) {
	return p.Src.LookupEq(p.Col, p.Key)
}

// EstimateRowCount reports the expected probe result size.
func (p *IndexScanPlan) EstimateRowCount() float64 { return p.Src.LookupEstimate(p.Col) }

// IndexJoinCostFactor is the cost model's per-probe overhead of an
// index lookup relative to scanning one row: index-nested-loop wins
// when probing the index once per outer row (outer × factor) is
// cheaper than scanning the inner side in full.
const IndexJoinCostFactor = 8

// MergeJoinMinRows gates the sorted-run merge join: below it the hash
// join's table easily fits in cache and wins on constants.
const MergeJoinMinRows = 4096

// joinChoice is the physical join decision shared by Build and
// EXPLAIN, so the plan printed is the plan executed.
type joinChoice struct {
	algo JoinAlgo

	// Index-nested-loop: probe src on rcol with the left row's lcol.
	src  IndexedSource
	proj []string // projection above the source leaf (nil = bare)
	lcol string
	rcol string
	rest []EquiPair // equi pairs not used as the probe (→ residual)

	// Sorted-run merge: both sides stream presorted on these columns.
	lSorted  SortedSource
	rSorted  SortedSource
	lSortCol string
	rSortCol string
}

// indexedLeaf unwraps a join input down to an IndexedSource leaf,
// tolerating one projection (pruneColumns inserts those above leaves).
func indexedLeaf(p Plan) (IndexedSource, []string) {
	switch n := p.(type) {
	case *ProjectPlan:
		if src, ok := n.Child.(IndexedSource); ok {
			return src, n.Names
		}
	default:
		if src, ok := p.(IndexedSource); ok {
			return src, nil
		}
	}
	return nil, nil
}

func containsStr(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// chooseJoinAlgo picks the physical algorithm for an inner join under
// JoinAuto, instantiating the uncertain-join strategy suite on
// U-relations: index-nested-loop when the outer side is estimated far
// smaller than an indexed inner side, sort-merge over sorted runs when
// both sides can stream presorted on the (single) join column, and the
// partitioned hash join otherwise. Estimates come from EstimateRows —
// the same standard cardinality machinery the paper leans on.
func chooseJoinAlgo(n *JoinPlan, pairs []EquiPair, cat *Catalog) joinChoice {
	if len(pairs) == 0 {
		return joinChoice{algo: JoinNestedLoop}
	}
	estL := EstimateRows(n.L, cat)
	estR := EstimateRows(n.R, cat)

	// Index-nested-loop: the right side is an indexed leaf and probing
	// it once per left row beats scanning it.
	if estL*IndexJoinCostFactor < estR {
		if c, ok := pickIndexJoin(n, pairs, cat); ok {
			return c
		}
	}

	// Sort-merge over sorted runs: both sides stream presorted on the
	// single join column, so the merge needs no sort and no hash table.
	if len(pairs) == 1 && estL >= MergeJoinMinRows && estR >= MergeJoinMinRows {
		if ls, lok := n.L.(SortedSource); lok {
			if rsrc, rok := n.R.(SortedSource); rok {
				lsch, errL := n.L.Schema(cat)
				rsch, errR := n.R.Schema(cat)
				if errL == nil && errR == nil {
					li, ri := lsch.IndexOf(pairs[0].L), rsch.IndexOf(pairs[0].R)
					if li >= 0 && ri >= 0 &&
						containsStr(ls.SortedCols(), lsch.Cols[li].Name) &&
						containsStr(rsrc.SortedCols(), rsch.Cols[ri].Name) {
						return joinChoice{algo: JoinMerge, lSorted: ls, rSorted: rsrc,
							lSortCol: lsch.Cols[li].Name, rSortCol: rsch.Cols[ri].Name}
					}
				}
			}
		}
	}
	return joinChoice{algo: JoinHash}
}

// pickIndexJoin finds an equi pair whose right column carries a usable
// index on a right-side indexed leaf. It encodes availability only —
// the cost gate lives in chooseJoinAlgo, so a forced cfg.Join =
// JoinIndex can bypass it for ablation runs.
func pickIndexJoin(n *JoinPlan, pairs []EquiPair, cat *Catalog) (joinChoice, bool) {
	src, proj := indexedLeaf(n.R)
	if src == nil {
		return joinChoice{}, false
	}
	rs, err := n.R.Schema(cat)
	if err != nil {
		return joinChoice{}, false
	}
	idxCols := src.IndexedCols()
	for i, pr := range pairs {
		ri := rs.IndexOf(pr.R)
		if ri < 0 {
			continue
		}
		canon := rs.Cols[ri].Name
		if !containsStr(idxCols, canon) {
			continue
		}
		rest := make([]EquiPair, 0, len(pairs)-1)
		rest = append(rest, pairs[:i]...)
		rest = append(rest, pairs[i+1:]...)
		return joinChoice{algo: JoinIndex, src: src, proj: proj,
			lcol: pr.L, rcol: canon, rest: rest}, true
	}
	return joinChoice{}, false
}

// buildSortedLeaf lowers a merge-join input to the source's presorted
// run feed, wiring the same trace span Build would have attached.
func buildSortedLeaf(p Plan, src SortedSource, col string, cat *Catalog, cfg ExecConfig) (Iterator, error) {
	if cfg.Trace == nil {
		return src.BuildSortedIter(col, cfg)
	}
	sp := cfg.Trace.Child(fmt.Sprintf("Sorted Index Scan on %s (%s)", src.SourceName(), col), EstimateRows(p, cat))
	cfg.Trace = sp
	it, err := src.BuildSortedIter(col, cfg)
	if err != nil {
		return nil, err
	}
	return newTraceIter(it, sp), nil
}

// indexJoinResidual folds the unused equi pairs back into the residual
// predicate an index join evaluates on each concatenated row.
func indexJoinResidual(rest []EquiPair, residual Expr) Expr {
	parts := make([]Expr, 0, len(rest)+1)
	for _, pr := range rest {
		parts = append(parts, EqCols(pr.L, pr.R))
	}
	if residual != nil {
		parts = append(parts, residual)
	}
	switch len(parts) {
	case 0:
		return nil
	case 1:
		return parts[0]
	}
	return And(parts...)
}

// IndexJoinIter is the index-nested-loop join: for each left row it
// probes the right source's equality index with the left join-key
// value and concatenates the matching right rows, applying an optional
// residual predicate. The right side is never scanned, so a small
// outer against a large indexed inner touches only the segments the
// runs point at.
type IndexJoinIter struct {
	L        Iterator
	Src      IndexedSource
	SrcSch   Schema   // the source's full output schema
	Proj     []string // projection of the source's columns (nil = all)
	LCol     string   // probe column in the left schema
	RCol     string   // canonical indexed column in the source
	Residual Expr     // evaluated on the concatenated row (nil = none)

	sch     Schema
	rsch    Schema // right-side output schema (post-projection)
	li      int
	projIdx []int // source column index per output column (nil = identity)
	bound   Expr
	cur     Tuple // left row whose matches are being drained
	matches []Tuple
	mpos    int

	lookups int64
	stats   map[string]int64 // aggregated from probe iterators
}

// NewIndexJoin builds an index-nested-loop join.
func NewIndexJoin(l Iterator, src IndexedSource, srcSch Schema, proj []string, lcol, rcol string, residual Expr) *IndexJoinIter {
	return &IndexJoinIter{L: l, Src: src, SrcSch: srcSch, Proj: proj, LCol: lcol, RCol: rcol, Residual: residual}
}

func (j *IndexJoinIter) Open() error {
	if err := j.L.Open(); err != nil {
		return err
	}
	lsch := j.L.Schema()
	j.li = lsch.IndexOf(j.LCol)
	if j.li < 0 {
		return fmt.Errorf("engine: index join: probe column %q not in left schema %v", j.LCol, lsch.Names())
	}
	j.rsch = j.SrcSch
	j.projIdx = nil
	if j.Proj != nil {
		prj, err := j.SrcSch.Project(j.Proj)
		if err != nil {
			return err
		}
		j.rsch = prj
		j.projIdx = make([]int, len(j.Proj))
		for i, name := range j.Proj {
			j.projIdx[i] = j.SrcSch.MustIndexOf(name)
		}
	}
	j.sch = lsch.Concat(j.rsch)
	j.bound = nil
	if j.Residual != nil {
		b, err := j.Residual.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	j.matches, j.mpos = nil, 0
	j.lookups = 0
	j.stats = map[string]int64{}
	return nil
}

// probe drains one index lookup for key into j.matches, applying the
// projection and collecting the lookup iterator's operator stats.
func (j *IndexJoinIter) probe(key Value) error {
	j.lookups++
	it, err := j.Src.LookupEq(j.RCol, key)
	if err != nil {
		return err
	}
	if err := it.Open(); err != nil {
		return err
	}
	j.matches = j.matches[:0]
	for {
		row, ok, nerr := it.Next()
		if nerr != nil {
			it.Close()
			return nerr
		}
		if !ok {
			break
		}
		if j.projIdx != nil {
			out := make(Tuple, len(j.projIdx))
			for i, si := range j.projIdx {
				out[i] = row[si]
			}
			row = out
		}
		j.matches = append(j.matches, row)
	}
	err = it.Close()
	if os, ok := it.(OperatorStats); ok {
		os.OperatorStats(func(k string, v int64) { j.stats[k] += v })
	}
	return err
}

func (j *IndexJoinIter) Next() (Tuple, bool, error) {
	for {
		for j.mpos < len(j.matches) {
			r := j.matches[j.mpos]
			j.mpos++
			out := j.cur.Concat(r)
			if j.bound == nil || j.bound.Eval(out).Truth() {
				return out, true, nil
			}
		}
		row, ok, err := j.L.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := row[j.li]
		if key.IsNull() {
			continue // NULL keys never join
		}
		if err := j.probe(key); err != nil {
			return nil, false, err
		}
		j.cur = row
		j.mpos = 0
	}
}

func (j *IndexJoinIter) Close() error {
	j.matches = nil
	return j.L.Close()
}

func (j *IndexJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.rsch)
}

// OperatorStats reports the probe count plus the aggregated store-side
// stats of every lookup (runs consulted, bloom rejections, segments
// read), so EXPLAIN ANALYZE attributes index effort to the join node.
func (j *IndexJoinIter) OperatorStats(emit func(key string, v int64)) {
	emit("index_probes", j.lookups)
	for k, v := range j.stats {
		emit(k, v)
	}
}
