package engine

import (
	"testing"
	"testing/quick"
)

// TestExprEvalAgainstReference checks the expression evaluator against
// a direct reference implementation on random integer inputs.
func TestExprEvalAgainstReference(t *testing.T) {
	sch := NewSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindInt},
	)
	type exprCase struct {
		build func() Expr
		ref   func(a, b int64) bool
	}
	cases := []exprCase{
		{
			build: func() Expr { return Cmp(LT, Col("a"), Col("b")) },
			ref:   func(a, b int64) bool { return a < b },
		},
		{
			build: func() Expr {
				return And(Cmp(GE, Col("a"), ConstInt(0)), Cmp(LE, Col("b"), ConstInt(100)))
			},
			ref: func(a, b int64) bool { return a >= 0 && b <= 100 },
		},
		{
			build: func() Expr {
				return Or(Cmp(EQ, Col("a"), Col("b")), Not(Cmp(GT, Col("a"), ConstInt(5))))
			},
			ref: func(a, b int64) bool { return a == b || !(a > 5) },
		},
		{
			build: func() Expr {
				return Cmp(EQ, Arith(ModOp, Col("a"), ConstInt(7)), ConstInt(3))
			},
			ref: func(a, b int64) bool { return a%7 == 3 },
		},
		{
			build: func() Expr {
				return Cmp(GT, Arith(AddOp, Col("a"), Col("b")),
					Arith(MulOp, Col("a"), ConstInt(2)))
			},
			ref: func(a, b int64) bool { return a+b > a*2 },
		},
	}
	for i, c := range cases {
		bound, err := c.build().Bind(sch)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		f := func(a, b int32) bool {
			row := Tuple{Int(int64(a)), Int(int64(b))}
			return bound.Eval(row).Truth() == c.ref(int64(a), int64(b))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

// TestArithReference checks arithmetic evaluation including division
// and overflow-free paths.
func TestArithReference(t *testing.T) {
	sch := NewSchema(Column{Name: "a", Kind: KindInt})
	div, err := Arith(DivOp, Col("a"), ConstInt(0)).Bind(sch)
	if err != nil {
		t.Fatal(err)
	}
	if !div.Eval(Tuple{Int(5)}).IsNull() {
		t.Fatal("division by zero yields NULL")
	}
	mod, err := Arith(ModOp, Col("a"), ConstInt(0)).Bind(sch)
	if err != nil {
		t.Fatal(err)
	}
	if !mod.Eval(Tuple{Int(5)}).IsNull() {
		t.Fatal("mod by zero yields NULL")
	}
	// Float promotion.
	fdiv, err := Arith(DivOp, Col("a"), ConstFloat(2)).Bind(sch)
	if err != nil {
		t.Fatal(err)
	}
	if fdiv.Eval(Tuple{Int(5)}).AsFloat() != 2.5 {
		t.Fatal("float promotion in division")
	}
	fmodNull, err := Arith(ModOp, Col("a"), ConstFloat(2)).Bind(sch)
	if err != nil {
		t.Fatal(err)
	}
	if !fmodNull.Eval(Tuple{Int(5)}).IsNull() {
		t.Fatal("float mod yields NULL")
	}
	// NULL propagation through arithmetic.
	addNull, err := Arith(AddOp, Col("a"), Const(Null())).Bind(sch)
	if err != nil {
		t.Fatal(err)
	}
	if !addNull.Eval(Tuple{Int(5)}).IsNull() {
		t.Fatal("NULL propagates through +")
	}
}

// TestExprStringsRoundTrip: rendering is total and mentions operands.
func TestExprStrings(t *testing.T) {
	exprs := []Expr{
		Cmp(LE, Col("a"), ConstInt(3)),
		And(Cmp(GT, Col("a"), ConstInt(1)), Cmp(LT, Col("a"), ConstInt(9))),
		Or(Cmp(EQ, Col("a"), ConstStr("x")), Not(IsNull(Col("a")))),
		In(Col("a"), Int(1), Str("two")),
		Arith(SubOp, Col("a"), ConstFloat(1.5)),
	}
	for _, e := range exprs {
		if len(e.String()) == 0 {
			t.Errorf("empty render for %T", e)
		}
	}
	if got := Arith(SubOp, Col("a"), ConstInt(1)).String(); got != "(a - 1)" {
		t.Errorf("arith render: %s", got)
	}
	if got := In(Col("a"), Str("x")).String(); got != "a IN ('x')" {
		t.Errorf("in render: %s", got)
	}
}
