package engine

import (
	"math"
	"sort"
)

// ColStats holds per-column statistics used by the cost model.
type ColStats struct {
	NDV      float64 // approximate number of distinct values
	Min, Max Value   // extrema (numeric interpolation only)
	HasRange bool    // Min/Max are meaningful numerics
	// Hist is an equi-depth histogram over the (sampled) numeric
	// values: len(Hist) = histBuckets+1 sorted bucket boundaries, each
	// bucket holding an equal fraction of rows. Nil for non-numeric
	// columns or tiny samples.
	Hist []float64
}

// histBuckets is the equi-depth histogram resolution.
const histBuckets = 16

// TableStats holds statistics for one relation.
type TableStats struct {
	Rows float64
	Cols map[string]ColStats
}

// statsSampleCap bounds the number of rows scanned to estimate NDV; a
// real system samples, and so do we.
const statsSampleCap = 50000

// ComputeStats scans (a sample of) the relation and derives statistics.
func ComputeStats(r *Relation) *TableStats {
	ts := &TableStats{Rows: float64(len(r.Rows)), Cols: map[string]ColStats{}}
	n := len(r.Rows)
	step := 1
	if n > statsSampleCap {
		step = n / statsSampleCap
	}
	var kbuf []byte
	scratch := make(Tuple, 1)
	for ci, col := range r.Sch.Cols {
		distinct := make(map[string]struct{})
		var mn, mx Value
		seen := false
		numeric := true
		sampled := 0
		var nums []float64
		for i := 0; i < n; i += step {
			v := r.Rows[i][ci]
			sampled++
			// Reused key buffer; the map[string(bytes)] lookup does not
			// allocate, so only fresh distinct values pay a conversion.
			scratch[0] = v
			kbuf = AppendKey(kbuf[:0], scratch)
			if _, ok := distinct[string(kbuf)]; !ok {
				distinct[string(kbuf)] = struct{}{}
			}
			if v.K != KindInt && v.K != KindFloat {
				numeric = false
				continue
			}
			nums = append(nums, v.AsFloat())
			if !seen {
				mn, mx = v, v
				seen = true
			} else {
				if Compare(v, mn) < 0 {
					mn = v
				}
				if Compare(v, mx) > 0 {
					mx = v
				}
			}
		}
		ndv := float64(len(distinct))
		if step > 1 && sampled > 0 {
			// First-order scale-up of the sampled distinct count.
			frac := float64(len(distinct)) / float64(sampled)
			ndv = math.Min(ts.Rows, frac*ts.Rows)
		}
		if ndv < 1 {
			ndv = 1
		}
		cs := ColStats{NDV: ndv, Min: mn, Max: mx, HasRange: numeric && seen}
		if numeric && len(nums) >= histBuckets*2 {
			cs.Hist = equiDepthHist(nums)
		}
		ts.Cols[col.Name] = cs
	}
	return ts
}

// equiDepthHist builds sorted bucket boundaries holding equal row
// fractions.
func equiDepthHist(nums []float64) []float64 {
	sort.Float64s(nums)
	bounds := make([]float64, histBuckets+1)
	for b := 0; b <= histBuckets; b++ {
		idx := b * (len(nums) - 1) / histBuckets
		bounds[b] = nums[idx]
	}
	return bounds
}

// histFracBelow estimates the fraction of rows with value < x (equality
// boundary treated by linear interpolation inside the bucket).
func histFracBelow(hist []float64, x float64) float64 {
	nb := len(hist) - 1
	if x <= hist[0] {
		return 0
	}
	if x >= hist[nb] {
		return 1
	}
	for b := 0; b < nb; b++ {
		lo, hi := hist[b], hist[b+1]
		if x < hi || (x == hi && b == nb-1) {
			within := 0.0
			if hi > lo {
				within = (x - lo) / (hi - lo)
			}
			return (float64(b) + within) / float64(nb)
		}
	}
	return 1
}

// PlanStats is the derived estimate for a plan node: row count and
// per-output-column NDV estimates.
type PlanStats struct {
	Rows float64
	NDV  map[string]float64
}

const (
	defaultEqSel    = 0.01
	defaultRangeSel = 1.0 / 3.0
	defaultSel      = 0.25
	defaultNDV      = 100.0
)

// EstimateStats computes cardinality and NDV estimates bottom-up. It is
// intentionally simple — the same selectivity heuristics classic
// System-R-style optimizers use — because the paper's observation is
// that standard selectivity-based cost measures work well on translated
// U-relation queries.
func EstimateStats(p Plan, cat *Catalog) PlanStats {
	switch n := p.(type) {
	case *ScanPlan:
		ts := cat.Stats(n.Name)
		if ts == nil {
			return PlanStats{Rows: 1000, NDV: map[string]float64{}}
		}
		ndv := make(map[string]float64, len(ts.Cols))
		for c, cs := range ts.Cols {
			ndv[c] = cs.NDV
		}
		return PlanStats{Rows: ts.Rows, NDV: ndv}
	case *ValuesPlan:
		ts := ComputeStats(n.Rel)
		ndv := make(map[string]float64, len(ts.Cols))
		for c, cs := range ts.Cols {
			ndv[c] = cs.NDV
		}
		return PlanStats{Rows: ts.Rows, NDV: ndv}
	case *FilterPlan:
		in := EstimateStats(n.Child, cat)
		sel := estimateSelectivity(n.Cond, n.Child, cat, in)
		return scaleStats(in, sel)
	case *ProjectPlan:
		in := EstimateStats(n.Child, cat)
		ndv := make(map[string]float64, len(n.Names))
		for _, c := range n.Names {
			if v, ok := in.NDV[c]; ok {
				ndv[c] = v
			} else {
				ndv[c] = math.Min(in.Rows, defaultNDV)
			}
		}
		return PlanStats{Rows: in.Rows, NDV: ndv}
	case *RenamePlan:
		in := EstimateStats(n.Child, cat)
		sch, err := n.Child.Schema(cat)
		if err != nil {
			return in
		}
		ndv := make(map[string]float64, len(n.Names))
		for i, name := range n.Names {
			if i < sch.Len() {
				if v, ok := in.NDV[sch.Cols[i].Name]; ok {
					ndv[name] = v
					continue
				}
			}
			ndv[name] = math.Min(in.Rows, defaultNDV)
		}
		return PlanStats{Rows: in.Rows, NDV: ndv}
	case *JoinPlan:
		l := EstimateStats(n.L, cat)
		r := EstimateStats(n.R, cat)
		ls, _ := n.L.Schema(cat)
		rs, _ := n.R.Schema(cat)
		pairs, residual := ExtractEquiJoin(n.Cond, ls, rs)
		rows := l.Rows * r.Rows
		for _, pr := range pairs {
			ln := ndvOr(l.NDV, pr.L, defaultNDV)
			rn := ndvOr(r.NDV, pr.R, defaultNDV)
			rows /= math.Max(1, math.Max(ln, rn))
		}
		if residual != nil {
			rows *= residualSelectivity(residual)
		}
		if rows < 1 {
			rows = 1
		}
		switch n.Kind {
		case SemiJoin:
			out := math.Min(l.Rows, rows)
			return PlanStats{Rows: out, NDV: capNDV(l.NDV, out)}
		case AntiJoin:
			out := math.Max(1, l.Rows-rows)
			return PlanStats{Rows: out, NDV: capNDV(l.NDV, out)}
		}
		ndv := make(map[string]float64, len(l.NDV)+len(r.NDV))
		for c, v := range l.NDV {
			ndv[c] = math.Min(v, rows)
		}
		for c, v := range r.NDV {
			ndv[c] = math.Min(v, rows)
		}
		return PlanStats{Rows: rows, NDV: ndv}
	case *UnionPlan:
		l := EstimateStats(n.L, cat)
		r := EstimateStats(n.R, cat)
		rows := l.Rows + r.Rows
		ndv := make(map[string]float64, len(l.NDV))
		for c, v := range l.NDV {
			ndv[c] = math.Min(rows, v+ndvOr(r.NDV, c, 0))
		}
		return PlanStats{Rows: rows, NDV: ndv}
	case *DiffPlan:
		l := EstimateStats(n.L, cat)
		out := math.Max(1, l.Rows*0.5)
		return PlanStats{Rows: out, NDV: capNDV(l.NDV, out)}
	case *IntersectPlan:
		l := EstimateStats(n.L, cat)
		r := EstimateStats(n.R, cat)
		out := math.Max(1, math.Min(l.Rows, r.Rows)*0.5)
		return PlanStats{Rows: out, NDV: capNDV(l.NDV, out)}
	case *DistinctPlan:
		in := EstimateStats(n.Child, cat)
		prod := 1.0
		for _, v := range in.NDV {
			prod *= math.Max(1, v)
			if prod > in.Rows {
				prod = in.Rows
				break
			}
		}
		out := math.Max(1, math.Min(in.Rows, prod))
		return PlanStats{Rows: out, NDV: capNDV(in.NDV, out)}
	case *SortPlan:
		return EstimateStats(n.Child, cat)
	case *ExtendPlan:
		in := EstimateStats(n.Child, cat)
		ndv := make(map[string]float64, len(in.NDV)+len(n.Exprs))
		for c, v := range in.NDV {
			ndv[c] = v
		}
		for _, ne := range n.Exprs {
			ndv[ne.Name] = math.Min(in.Rows, defaultNDV)
		}
		return PlanStats{Rows: in.Rows, NDV: ndv}
	case *LimitPlan:
		in := EstimateStats(n.Child, cat)
		out := math.Min(in.Rows, float64(n.N))
		return PlanStats{Rows: out, NDV: capNDV(in.NDV, out)}
	case *AggPlan:
		in := EstimateStats(n.Child, cat)
		groups := 1.0
		for _, g := range n.GroupBy {
			groups *= math.Max(1, ndvOr(in.NDV, g, defaultNDV))
		}
		out := math.Max(1, math.Min(in.Rows, groups))
		return PlanStats{Rows: out, NDV: capNDV(in.NDV, out)}
	default:
		if sp, ok := p.(SourcePlan); ok {
			return PlanStats{Rows: sp.EstimateRowCount(), NDV: map[string]float64{}}
		}
		// Unknown unary wrappers pass their child's estimate through
		// rather than degrading to a constant.
		if ch := p.Children(); len(ch) == 1 {
			return EstimateStats(ch[0], cat)
		}
		return PlanStats{Rows: 1000, NDV: map[string]float64{}}
	}
}

// EstimateRows returns only the estimated output cardinality of a plan.
// Unlike EstimateStats it never computes per-column statistics (no
// ComputeStats on anonymous ValuesPlan inputs), so it is cheap enough to
// call during physical lowering, where it gates the serial-vs-parallel
// operator choice.
func EstimateRows(p Plan, cat *Catalog) float64 {
	switch n := p.(type) {
	case *ScanPlan:
		if ts := cat.Stats(n.Name); ts != nil {
			return ts.Rows
		}
		return 1000
	case *ValuesPlan:
		return float64(len(n.Rel.Rows))
	case *FilterPlan:
		return math.Max(1, EstimateRows(n.Child, cat)*defaultSel)
	case *ProjectPlan:
		return EstimateRows(n.Child, cat)
	case *RenamePlan:
		return EstimateRows(n.Child, cat)
	case *ExtendPlan:
		return EstimateRows(n.Child, cat)
	case *SortPlan:
		return EstimateRows(n.Child, cat)
	case *DistinctPlan:
		return EstimateRows(n.Child, cat)
	case *LimitPlan:
		return math.Min(EstimateRows(n.Child, cat), float64(n.N))
	case *JoinPlan:
		l := EstimateRows(n.L, cat)
		if n.Kind != InnerJoin {
			return l
		}
		// Equi joins typically produce on the order of the larger input.
		return math.Max(l, EstimateRows(n.R, cat))
	case *UnionPlan:
		return EstimateRows(n.L, cat) + EstimateRows(n.R, cat)
	case *DiffPlan:
		return math.Max(1, EstimateRows(n.L, cat)*0.5)
	case *IntersectPlan:
		return math.Max(1, math.Min(EstimateRows(n.L, cat), EstimateRows(n.R, cat))*0.5)
	case *AggPlan:
		return EstimateRows(n.Child, cat)
	default:
		if sp, ok := p.(SourcePlan); ok {
			return sp.EstimateRowCount()
		}
		// Propagate through unknown unary nodes (projection-/rename-like
		// wrappers over storage-backed leaves) instead of falling back to
		// a constant, so the parallelism gate still sees the leaf's
		// cardinality.
		if ch := p.Children(); len(ch) == 1 {
			return EstimateRows(ch[0], cat)
		}
		return 1000
	}
}

func ndvOr(m map[string]float64, k string, def float64) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return def
}

func capNDV(m map[string]float64, rows float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for c, v := range m {
		out[c] = math.Min(v, rows)
	}
	return out
}

func scaleStats(in PlanStats, sel float64) PlanStats {
	rows := math.Max(1, in.Rows*sel)
	return PlanStats{Rows: rows, NDV: capNDV(in.NDV, rows)}
}

// estimateSelectivity estimates the fraction of rows satisfying cond.
func estimateSelectivity(cond Expr, child Plan, cat *Catalog, in PlanStats) float64 {
	sel := 1.0
	for _, c := range SplitConjuncts(cond) {
		sel *= conjunctSelectivity(c, child, cat, in)
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

func conjunctSelectivity(c Expr, child Plan, cat *Catalog, in PlanStats) float64 {
	switch e := c.(type) {
	case *CmpExpr:
		col, cst, op, ok := normalizeCmp(e)
		if !ok {
			return defaultSel
		}
		switch op {
		case EQ:
			ndv := ndvOr(in.NDV, col, 1/defaultEqSel)
			return 1 / math.Max(1, ndv)
		case NE:
			ndv := ndvOr(in.NDV, col, 1/defaultEqSel)
			return 1 - 1/math.Max(1, ndv)
		default:
			if cs, ok2 := baseColStats(child, cat, col); ok2 && cs.HasRange {
				return rangeSelectivity(op, cst, cs)
			}
			return defaultRangeSel
		}
	case *LogicExpr:
		switch e.Op {
		case AndOp:
			s := 1.0
			for _, a := range e.Args {
				s *= conjunctSelectivity(a, child, cat, in)
			}
			return s
		case OrOp:
			s := 0.0
			for _, a := range e.Args {
				s += conjunctSelectivity(a, child, cat, in)
			}
			if s > 1 {
				s = 1
			}
			return s
		default:
			return 1 - conjunctSelectivity(e.Args[0], child, cat, in)
		}
	case *InExpr:
		cols := ExprColumns(e)
		if len(cols) == 1 {
			ndv := ndvOr(in.NDV, cols[0], 1/defaultEqSel)
			s := float64(len(e.Vals)) / math.Max(1, ndv)
			if s > 1 {
				s = 1
			}
			return s
		}
		return defaultSel
	default:
		return defaultSel
	}
}

// NormalizeColCmp rewrites a column-vs-constant comparison into (col,
// const, op) with the column on the left, flipping the operator when
// the constant was on the left. ok is false for any other shape.
// Shared by the selectivity estimator and storage-level segment
// pruning.
func NormalizeColCmp(e *CmpExpr) (col string, cst Value, op CmpOp, ok bool) {
	return normalizeCmp(e)
}

// normalizeCmp rewrites col-vs-constant comparisons into (col, const,
// op) with the column on the left.
func normalizeCmp(e *CmpExpr) (col string, cst Value, op CmpOp, ok bool) {
	if c, okc := e.L.(*ColRef); okc {
		if k, okk := e.R.(*ConstExpr); okk {
			return c.Name, k.Val, e.Op, true
		}
	}
	if c, okc := e.R.(*ColRef); okc {
		if k, okk := e.L.(*ConstExpr); okk {
			// Flip the operator.
			var flip CmpOp
			switch e.Op {
			case LT:
				flip = GT
			case LE:
				flip = GE
			case GT:
				flip = LT
			case GE:
				flip = LE
			default:
				flip = e.Op
			}
			return c.Name, k.Val, flip, true
		}
	}
	return "", Null(), EQ, false
}

func rangeSelectivity(op CmpOp, cst Value, cs ColStats) float64 {
	x := cst.AsFloat()
	var frac float64
	if len(cs.Hist) > 1 {
		// Equi-depth histogram: robust on skewed distributions.
		frac = histFracBelow(cs.Hist, x)
	} else {
		lo, hi := cs.Min.AsFloat(), cs.Max.AsFloat()
		if hi <= lo {
			return defaultRangeSel
		}
		frac = (x - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
	}
	switch op {
	case LT, LE:
		return clampSel(frac)
	case GT, GE:
		return clampSel(1 - frac)
	default:
		return defaultRangeSel
	}
}

func clampSel(s float64) float64 {
	if s < 0.0005 {
		return 0.0005
	}
	if s > 1 {
		return 1
	}
	return s
}

func residualSelectivity(residual Expr) float64 {
	// The ψ descriptor-consistency conditions are (var≠var' OR rng=rng')
	// disjunctions; they are weakly selective. Use a mild default per
	// conjunct.
	n := len(SplitConjuncts(residual))
	s := 1.0
	for i := 0; i < n; i++ {
		s *= 0.9
	}
	return s
}

// baseColStats traces a column through simple plan shapes down to a
// base relation to find range stats.
func baseColStats(p Plan, cat *Catalog, col string) (ColStats, bool) {
	switch n := p.(type) {
	case *ScanPlan:
		ts := cat.Stats(n.Name)
		if ts == nil {
			return ColStats{}, false
		}
		cs, ok := ts.Cols[col]
		if !ok {
			// Suffix resolution, mirroring Schema.IndexOf.
			for name, c := range ts.Cols {
				if suffixAfterDot(name) == col {
					return c, true
				}
			}
		}
		return cs, ok
	case *ValuesPlan:
		ts := ComputeStats(n.Rel)
		cs, ok := ts.Cols[col]
		return cs, ok
	case *FilterPlan:
		return baseColStats(n.Child, cat, col)
	case *ProjectPlan:
		return baseColStats(n.Child, cat, col)
	case *JoinPlan:
		if cs, ok := baseColStats(n.L, cat, col); ok {
			return cs, ok
		}
		return baseColStats(n.R, cat, col)
	default:
		return ColStats{}, false
	}
}

// EstimateCost computes a coarse total cost (rows processed) for a
// physical-agnostic plan; used by the greedy join orderer.
func EstimateCost(p Plan, cat *Catalog) float64 {
	cost := 0.0
	var walk func(Plan) float64
	walk = func(q Plan) float64 {
		st := EstimateStats(q, cat)
		for _, c := range q.Children() {
			cost += walk(c)
		}
		cost += st.Rows
		return st.Rows
	}
	walk(p)
	return cost
}
