package engine

// Vectorized predicate evaluation: a bound filter predicate is
// compiled once into a list of conjunct kernels, each of which narrows
// a selection vector over a ColBatch. Column-versus-constant and
// column-versus-column comparisons run as tight typed loops when the
// vectors are typed; every other shape falls back to evaluating the
// bound expression on a scratch tuple per selected row — still
// selection-vector driven, so no batch is ever materialized just to be
// filtered.

// vecPred is a compiled predicate over column batches.
type vecPred struct {
	conjuncts []vecConjunct
	scratch   Tuple
}

// vecConjunct narrows sel (physical row indices into cb) and returns
// the surviving prefix, writing survivors into sel's backing array.
type vecConjunct func(p *vecPred, cb *ColBatch, sel []int32) []int32

// compileVecPred compiles a bound predicate. It always succeeds: shapes
// without a specialized kernel use the generic row-eval fallback.
func compileVecPred(bound Expr, sch Schema) *vecPred {
	p := &vecPred{scratch: make(Tuple, sch.Len())}
	for _, c := range SplitConjuncts(bound) {
		p.conjuncts = append(p.conjuncts, compileConjunct(c))
	}
	if len(p.conjuncts) == 0 {
		// Constant-true predicate (And() of nothing).
		p.conjuncts = append(p.conjuncts, func(_ *vecPred, _ *ColBatch, sel []int32) []int32 {
			return sel
		})
	}
	return p
}

// filter narrows the batch's live rows through every conjunct, using
// selBuf as scratch, and returns the surviving physical row indices.
func (p *vecPred) filter(cb *ColBatch, selBuf []int32) []int32 {
	n := cb.Rows()
	sel := selBuf[:0]
	for k := 0; k < n; k++ {
		sel = append(sel, int32(cb.RowID(k)))
	}
	for _, c := range p.conjuncts {
		if len(sel) == 0 {
			return sel
		}
		sel = c(p, cb, sel)
	}
	return sel
}

// compileConjunct picks a kernel for one conjunct.
func compileConjunct(e Expr) vecConjunct {
	switch x := e.(type) {
	case *CmpExpr:
		if l, ok := x.L.(*ColRef); ok {
			if r, ok := x.R.(*ConstExpr); ok {
				return colConstCmp(l.Idx, x.Op, r.Val)
			}
			if r, ok := x.R.(*ColRef); ok {
				return colColCmp(l.Idx, x.Op, r.Idx)
			}
		}
		if l, ok := x.L.(*ConstExpr); ok {
			if r, ok := x.R.(*ColRef); ok {
				return colConstCmp(r.Idx, swapCmp(x.Op), l.Val)
			}
		}
	case *IsNullExpr:
		if c, ok := x.E.(*ColRef); ok {
			idx := c.Idx
			return func(_ *vecPred, cb *ColBatch, sel []int32) []int32 {
				v := &cb.Cols[idx]
				out := sel[:0]
				for _, i := range sel {
					if v.IsNull(int(i)) {
						out = append(out, i)
					}
				}
				return out
			}
		}
	case *InExpr:
		if c, ok := x.E.(*ColRef); ok {
			idx := c.Idx
			vals := x.Vals
			return func(_ *vecPred, cb *ColBatch, sel []int32) []int32 {
				v := &cb.Cols[idx]
				out := sel[:0]
				for _, i := range sel {
					cell := v.Value(int(i))
					if cell.IsNull() {
						continue
					}
					for _, w := range vals {
						if Compare(cell, w) == 0 {
							out = append(out, i)
							break
						}
					}
				}
				return out
			}
		}
	}
	return rowEvalConjunct(e)
}

// swapCmp mirrors an operator across an operand swap (c OP col becomes
// col OP' c).
func swapCmp(op CmpOp) CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	}
	return op // EQ, NE are symmetric
}

// rowEvalConjunct is the generic fallback: evaluate the bound conjunct
// on a scratch tuple per selected row.
func rowEvalConjunct(e Expr) vecConjunct {
	return func(p *vecPred, cb *ColBatch, sel []int32) []int32 {
		out := sel[:0]
		for _, i := range sel {
			for c := range cb.Cols {
				p.scratch[c] = cb.Cols[c].Value(int(i))
			}
			if e.Eval(p.scratch).Truth() {
				out = append(out, i)
			}
		}
		return out
	}
}

// cmpKeep reports whether a three-way comparison outcome satisfies op.
func cmpKeep(op CmpOp, c int) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	}
	return false
}

// colConstCmp builds the column-versus-constant kernel. The typed
// int/int, float/float, mixed numeric, and string/string cases run as
// tight loops over the payload vectors; anything else goes through
// Value+Compare, which is exactly the row evaluator's semantics.
func colConstCmp(idx int, op CmpOp, cst Value) vecConjunct {
	if cst.IsNull() {
		// Comparisons with NULL are false for every row.
		return func(_ *vecPred, _ *ColBatch, sel []int32) []int32 { return sel[:0] }
	}
	return func(_ *vecPred, cb *ColBatch, sel []int32) []int32 {
		v := &cb.Cols[idx]
		out := sel[:0]
		switch {
		case v.Vals == nil && v.Kind == KindInt && cst.K == KindInt:
			c := cst.I
			xs := v.Ints
			nulls := v.Nulls
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpKeep(op, cmpInt(xs[i], c)) {
					out = append(out, i)
				}
			}
		case v.Vals == nil && v.Kind == KindFloat && (cst.K == KindFloat || cst.K == KindInt):
			c := cst.AsFloat()
			xs := v.Floats
			nulls := v.Nulls
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpKeep(op, compareFloat(xs[i], c)) {
					out = append(out, i)
				}
			}
		case v.Vals == nil && v.Kind == KindInt && cst.K == KindFloat:
			c := cst.F
			xs := v.Ints
			nulls := v.Nulls
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpKeep(op, compareFloat(float64(xs[i]), c)) {
					out = append(out, i)
				}
			}
		case v.Vals == nil && v.Kind == KindString && cst.K == KindString:
			c := cst.S
			xs := v.Strs
			nulls := v.Nulls
			for _, i := range sel {
				if nulls != nil && nulls[i] {
					continue
				}
				if cmpKeep(op, cmpString(xs[i], c)) {
					out = append(out, i)
				}
			}
		default:
			for _, i := range sel {
				cell := v.Value(int(i))
				if cell.IsNull() {
					continue
				}
				if cmpKeep(op, Compare(cell, cst)) {
					out = append(out, i)
				}
			}
		}
		return out
	}
}

// colColCmp builds the column-versus-column kernel with a typed
// int/int fast loop.
func colColCmp(li int, op CmpOp, ri int) vecConjunct {
	return func(_ *vecPred, cb *ColBatch, sel []int32) []int32 {
		l, r := &cb.Cols[li], &cb.Cols[ri]
		out := sel[:0]
		if l.Vals == nil && r.Vals == nil && l.Kind == KindInt && r.Kind == KindInt {
			ln, rn := l.Nulls, r.Nulls
			lx, rx := l.Ints, r.Ints
			for _, i := range sel {
				if (ln != nil && ln[i]) || (rn != nil && rn[i]) {
					continue
				}
				if cmpKeep(op, cmpInt(lx[i], rx[i])) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			lv, rv := l.Value(int(i)), r.Value(int(i))
			if lv.IsNull() || rv.IsNull() {
				continue
			}
			if cmpKeep(op, Compare(lv, rv)) {
				out = append(out, i)
			}
		}
		return out
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
