package engine

import (
	"fmt"
	"strings"
)

// Explain renders a logical plan in a PostgreSQL-inspired tree format
// with cardinality estimates, so translated U-relation plans can be
// inspected the way the paper inspects Figure 13. If optimize is true
// the plan is optimized first (like EXPLAIN of the chosen plan).
func Explain(p Plan, cat *Catalog, optimize bool) (string, error) {
	if optimize {
		var err error
		p, err = Optimize(p, cat)
		if err != nil {
			return "", err
		}
	}
	var b strings.Builder
	explainNode(&b, p, cat, 0, true)
	return b.String(), nil
}

// execMode computes the execution mode EXPLAIN annotates a node with:
// "columnar" for chains of filters and projections over a columnar
// leaf (ColumnarLeaf sources, e.g. the store's segment scans), "row"
// for everything else — mirroring how the physical operators negotiate
// the batch representation at run time (NativeColumnar) under the
// default serial lowering. Explain sees only the logical plan, so the
// annotation does not account for ExecConfig: a filter that Build
// lowers to the parallel operator (Parallelism set and the input past
// ParallelThreshold) runs on row batches even when annotated columnar.
func execMode(p Plan) string {
	for {
		switch n := p.(type) {
		case *IndexScanPlan:
			return "index"
		case ColumnarLeaf:
			if n.ColumnarScan() {
				return "columnar"
			}
			return "row"
		case *FilterPlan:
			p = n.Child
		case *ProjectPlan:
			p = n.Child
		default:
			return "row"
		}
	}
}

func explainNode(b *strings.Builder, p Plan, cat *Catalog, depth int, root bool) {
	indent := strings.Repeat("  ", depth)
	head := indent
	if !root {
		head = indent + "->  "
	}
	st := EstimateStats(p, cat)
	mode := execMode(p)
	switch n := p.(type) {
	case *JoinPlan:
		ls, _ := n.L.Schema(cat)
		rs, _ := n.R.Schema(cat)
		pairs, residual := ExtractEquiJoin(n.Cond, ls, rs)
		// Mirror Build's JoinAuto decision so the plan printed is the
		// plan executed.
		choice := joinChoice{algo: JoinNestedLoop}
		if n.Kind == InnerJoin {
			choice = chooseJoinAlgo(n, pairs, cat)
		} else if len(pairs) > 0 {
			choice = joinChoice{algo: JoinHash}
		}
		algo, condLabel := "Nested Loop", "Join Cond"
		switch choice.algo {
		case JoinHash:
			algo, condLabel = "Hash Join", "Hash Cond"
		case JoinIndex:
			algo, condLabel = "Index Join", "Index Cond"
		case JoinMerge:
			algo, condLabel = "Merge Join", "Merge Cond"
		}
		switch n.Kind {
		case SemiJoin:
			algo += " (semi)"
		case AntiJoin:
			algo += " (anti)"
		}
		fmt.Fprintf(b, "%s%s  (rows=%.0f exec=%s)\n", head, algo, st.Rows, mode)
		if choice.algo == JoinIndex {
			fmt.Fprintf(b, "%s      Index Cond: (%s = %s) on %s\n", indent,
				choice.lcol, choice.rcol, choice.src.SourceName())
		} else if len(pairs) > 0 {
			conds := make([]string, len(pairs))
			for i, pr := range pairs {
				conds[i] = fmt.Sprintf("(%s = %s)", pr.L, pr.R)
			}
			fmt.Fprintf(b, "%s      %s: %s\n", indent, condLabel, strings.Join(conds, " AND "))
		}
		if residual != nil {
			fmt.Fprintf(b, "%s      Join Filter: %s\n", indent, residual)
		}
		explainNode(b, n.L, cat, depth+1, false)
		explainNode(b, n.R, cat, depth+1, false)
	case *FilterPlan:
		// Fuse Filter into the node beneath, PostgreSQL-style, when the
		// child is a scan.
		switch c := n.Child.(type) {
		case *ScanPlan:
			fmt.Fprintf(b, "%sSeq Scan on %s  (rows=%.0f exec=%s)\n", head, c.Name, st.Rows, mode)
			fmt.Fprintf(b, "%s      Filter: %s\n", indent, n.Cond)
		case *ValuesPlan:
			fmt.Fprintf(b, "%s%s  (rows=%.0f exec=%s)\n", head, c.Label(), st.Rows, mode)
			fmt.Fprintf(b, "%s      Filter: %s\n", indent, n.Cond)
		case *IndexScanPlan:
			fmt.Fprintf(b, "%s%s  (rows=%.0f exec=%s)\n", head, c.Label(), st.Rows, mode)
			fmt.Fprintf(b, "%s      Filter: %s\n", indent, n.Cond)
		default:
			fmt.Fprintf(b, "%sFilter  (rows=%.0f exec=%s)\n", head, st.Rows, mode)
			fmt.Fprintf(b, "%s      Cond: %s\n", indent, n.Cond)
			explainNode(b, n.Child, cat, depth+1, false)
		}
	case *ProjectPlan:
		fmt.Fprintf(b, "%sProject %s  (rows=%.0f exec=%s)\n", head, joinStrings(n.Names), st.Rows, mode)
		explainNode(b, n.Child, cat, depth+1, false)
	case *DistinctPlan:
		fmt.Fprintf(b, "%sHashAggregate (distinct)  (rows=%.0f exec=%s)\n", head, st.Rows, mode)
		explainNode(b, n.Child, cat, depth+1, false)
	case *SortPlan:
		fmt.Fprintf(b, "%sSort  (rows=%.0f exec=%s)\n", head, st.Rows, mode)
		fmt.Fprintf(b, "%s      Sort Key: %s\n", indent, joinStrings(n.Keys))
		explainNode(b, n.Child, cat, depth+1, false)
	default:
		fmt.Fprintf(b, "%s%s  (rows=%.0f exec=%s)\n", head, p.Label(), st.Rows, mode)
		for _, c := range p.Children() {
			explainNode(b, c, cat, depth+1, false)
		}
	}
}
