package engine

import (
	"fmt"
	"sort"
)

// HashJoinIter is an equi-join on extracted key pairs with an optional
// residual predicate evaluated on the concatenated row. This mirrors
// the Merge Cond / Join Filter split visible in the paper's Figure 13
// plan: the α (tuple-id) conditions become keys, and the ψ (descriptor
// consistency) conditions become the residual filter.
//
// The build side goes into an open-addressing joinTable keyed by a
// 64-bit hash of the key columns, with build rows stored in a flat
// arena; the probe side is driven in batches, each probe row hashed
// directly from its key columns. Neither phase allocates per row: the
// only allocations are the amortized arena chunks that output rows are
// carved from.
type HashJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr

	table *joinTable
	lidx  []int
	ridx  []int
	bound Expr
	sch   Schema

	bin        BatchIterator // probe-side batches
	probeBatch []Tuple
	probePos   int
	cur        Tuple // current probe row
	match      int32 // next build row in the current chain, -1 = none

	out     []Tuple  // reused output batch headers
	arena   outArena // output cells (write-once)
	scratch Tuple    // residual evaluation buffer
	pending []Tuple  // batch being served by Next
	ppos    int
}

// NewHashJoin builds a hash join; pairs must be non-empty.
func NewHashJoin(l, r Iterator, pairs []EquiPair, residual Expr) *HashJoinIter {
	return &HashJoinIter{L: l, R: r, Pairs: pairs, Residual: residual}
}

func (j *HashJoinIter) Open() error {
	if len(j.Pairs) == 0 {
		return fmt.Errorf("engine: hash join requires at least one equi pair")
	}
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch.Concat(rsch)
	j.lidx = make([]int, len(j.Pairs))
	j.ridx = make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: hash join: pair %v not resolvable (%v ⋈ %v)",
				p, lsch.Names(), rsch.Names())
		}
		j.lidx[i] = li
		j.ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	// Build phase on the left input, batch-driven.
	j.table = newJoinTable(lsch.Len(), j.lidx)
	bl := Batched(j.L)
	for {
		batch, ok, err := bl.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, row := range batch {
			if h, keyed := j.table.hashRow(row); keyed {
				j.table.insert(row, h) // NULL keys never join
			}
		}
	}
	j.bin = Batched(j.R)
	j.probeBatch, j.probePos = nil, 0
	j.match = -1
	j.pending, j.ppos = nil, 0
	j.scratch = make(Tuple, j.sch.Len())
	return nil
}

func (j *HashJoinIter) Next() (Tuple, bool, error) {
	for j.ppos >= len(j.pending) {
		batch, ok, err := j.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		j.pending = batch
		j.ppos = 0
	}
	t := j.pending[j.ppos]
	j.ppos++
	return t, true, nil
}

// NextBatch probes batches of right rows against the build table and
// emits up to DefaultBatchSize concatenated rows, carved from the
// output arena. The residual is evaluated on a reused scratch buffer,
// so rejected candidates cost no allocation at all.
func (j *HashJoinIter) NextBatch() ([]Tuple, bool, error) {
	out := j.out[:0]
	for {
		// Drain the current probe row's match chain.
		for j.match >= 0 {
			l := j.table.row(j.match)
			j.match = j.table.nextMatch(j.match)
			if j.bound != nil {
				s := j.scratch
				copy(s, l)
				copy(s[len(l):], j.cur)
				if !j.bound.Eval(s).Truth() {
					continue
				}
			}
			out = append(out, j.arena.concat(l, j.cur))
			if len(out) >= DefaultBatchSize {
				j.out = out
				return out, true, nil
			}
		}
		// Advance the probe side.
		for j.probePos >= len(j.probeBatch) {
			batch, ok, err := j.bin.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.out = out
				if len(out) > 0 {
					return out, true, nil
				}
				return nil, false, nil
			}
			j.probeBatch = batch
			j.probePos = 0
		}
		row := j.probeBatch[j.probePos]
		j.probePos++
		h, keyed := hashKeyAt(row, j.ridx)
		if !keyed {
			continue
		}
		if head := j.table.lookup(h, row, j.ridx); head >= 0 {
			j.cur = row
			j.match = head
		}
	}
}

func (j *HashJoinIter) Close() error {
	j.table = nil
	j.out, j.pending, j.probeBatch = nil, nil, nil
	j.arena = outArena{}
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *HashJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// NestedLoopJoinIter evaluates an arbitrary (possibly empty = cross
// product) predicate over the concatenated row. The right input is
// materialized.
type NestedLoopJoinIter struct {
	L, R Iterator
	Cond Expr

	right []Tuple
	cur   Tuple
	rpos  int
	bound Expr
	sch   Schema
	done  bool
}

// NewNestedLoopJoin builds a nested-loop join (cond may be nil for a
// cross product).
func NewNestedLoopJoin(l, r Iterator, cond Expr) *NestedLoopJoinIter {
	return &NestedLoopJoinIter{L: l, R: r, Cond: cond}
}

func (j *NestedLoopJoinIter) Open() error {
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	j.sch = j.L.Schema().Concat(j.R.Schema())
	if j.Cond != nil {
		b, err := j.Cond.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	for {
		row, ok, err := j.R.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.right = append(j.right, row)
	}
	j.cur = nil
	j.rpos = 0
	j.done = false
	return nil
}

func (j *NestedLoopJoinIter) Next() (Tuple, bool, error) {
	for {
		if j.cur == nil {
			row, ok, err := j.L.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = row
			j.rpos = 0
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			out := j.cur.Concat(r)
			if j.bound == nil || j.bound.Eval(out).Truth() {
				return out, true, nil
			}
		}
		j.cur = nil
	}
}

func (j *NestedLoopJoinIter) Close() error {
	j.right = nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *NestedLoopJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// MergeJoinIter sorts both inputs on the key pairs and merges,
// evaluating an optional residual predicate on concatenated rows. This
// is the physical operator PostgreSQL chose in Figure 13.
type MergeJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr
	// LSorted/RSorted declare an input already sorted on the key pairs
	// (a sorted-run index feed), skipping the in-memory sort.
	LSorted bool
	RSorted bool

	left, right   []Tuple
	lidx, ridx    []int
	li, ri        int
	groupL        []Tuple
	groupR        []Tuple
	gi, gj        int
	bound         Expr
	sch           Schema
	groupsPending bool
}

// NewMergeJoin builds a sort-merge join; pairs must be non-empty.
func NewMergeJoin(l, r Iterator, pairs []EquiPair, residual Expr) *MergeJoinIter {
	return &MergeJoinIter{L: l, R: r, Pairs: pairs, Residual: residual}
}

func (j *MergeJoinIter) Open() error {
	if len(j.Pairs) == 0 {
		return fmt.Errorf("engine: merge join requires at least one equi pair")
	}
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch.Concat(rsch)
	j.lidx = make([]int, len(j.Pairs))
	j.ridx = make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: merge join: pair %v not resolvable", p)
		}
		j.lidx[i] = li
		j.ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	var err error
	if j.left, err = drainAll(j.L); err != nil {
		return err
	}
	if j.right, err = drainAll(j.R); err != nil {
		return err
	}
	if !j.LSorted {
		sortByKeys(j.left, j.lidx)
	}
	if !j.RSorted {
		sortByKeys(j.right, j.ridx)
	}
	j.li, j.ri = 0, 0
	j.groupsPending = false
	return nil
}

func drainAll(it Iterator) ([]Tuple, error) {
	var rows []Tuple
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func sortByKeys(rows []Tuple, idx []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		for _, i := range idx {
			if c := Compare(rows[a][i], rows[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func keyCompare(a Tuple, ai []int, b Tuple, bi []int) int {
	for k := range ai {
		if c := Compare(a[ai[k]], b[bi[k]]); c != 0 {
			return c
		}
	}
	return 0
}

func hasNullKey(t Tuple, idx []int) bool {
	for _, i := range idx {
		if t[i].IsNull() {
			return true
		}
	}
	return false
}

func (j *MergeJoinIter) Next() (Tuple, bool, error) {
	for {
		if j.groupsPending {
			for j.gi < len(j.groupL) {
				for j.gj < len(j.groupR) {
					out := j.groupL[j.gi].Concat(j.groupR[j.gj])
					j.gj++
					if j.bound == nil || j.bound.Eval(out).Truth() {
						return out, true, nil
					}
				}
				j.gj = 0
				j.gi++
			}
			j.groupsPending = false
		}
		// Advance to the next matching key group.
		for {
			if j.li >= len(j.left) || j.ri >= len(j.right) {
				return nil, false, nil
			}
			if hasNullKey(j.left[j.li], j.lidx) {
				j.li++
				continue
			}
			if hasNullKey(j.right[j.ri], j.ridx) {
				j.ri++
				continue
			}
			c := keyCompare(j.left[j.li], j.lidx, j.right[j.ri], j.ridx)
			if c < 0 {
				j.li++
			} else if c > 0 {
				j.ri++
			} else {
				break
			}
		}
		// Collect equal-key groups on both sides.
		ls := j.li
		for j.li < len(j.left) && keyCompare(j.left[j.li], j.lidx, j.left[ls], j.lidx) == 0 {
			j.li++
		}
		rs := j.ri
		for j.ri < len(j.right) && keyCompare(j.right[j.ri], j.ridx, j.right[rs], j.ridx) == 0 {
			j.ri++
		}
		j.groupL = j.left[ls:j.li]
		j.groupR = j.right[rs:j.ri]
		j.gi, j.gj = 0, 0
		j.groupsPending = true
	}
}

func (j *MergeJoinIter) Close() error {
	j.left, j.right = nil, nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *MergeJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// SemiJoinIter emits left rows that have at least one match on the
// right under pairs + residual; with Anti=true it emits left rows with
// no match. Used by U-relation reduction (Proposition 3.3). It shares
// the hashed-key joinTable with HashJoinIter: the right side is built
// into the table (with no key columns, every right row lands on one
// chain, covering the keyless cross-check case), and left rows probe
// by direct hashing — no per-row key or candidate-slice allocations.
type SemiJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr
	Anti     bool

	table   *joinTable
	lidx    []int
	bound   Expr
	sch     Schema
	scratch Tuple // residual evaluation buffer

	bin BatchIterator // left-side batches
	out []Tuple       // reused output batch headers
}

// NewSemiJoin builds a (anti-)semi-join.
func NewSemiJoin(l, r Iterator, pairs []EquiPair, residual Expr, anti bool) *SemiJoinIter {
	return &SemiJoinIter{L: l, R: r, Pairs: pairs, Residual: residual, Anti: anti}
}

func (j *SemiJoinIter) Open() error {
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch
	j.lidx = make([]int, len(j.Pairs))
	ridx := make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: semi join: pair %v not resolvable", p)
		}
		j.lidx[i] = li
		ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(lsch.Concat(rsch))
		if err != nil {
			return err
		}
		j.bound = b
	}
	j.scratch = make(Tuple, lsch.Len()+rsch.Len())
	// Build phase on the right input. With no equi pairs the key is
	// empty, so all right rows share one chain and every left row
	// probes the full right side, as the keyless semantics require.
	j.table = newJoinTable(rsch.Len(), ridx)
	br := Batched(j.R)
	for {
		batch, ok, err := br.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, row := range batch {
			if h, keyed := j.table.hashRow(row); keyed {
				j.table.insert(row, h)
			}
		}
	}
	j.bin = nil
	return nil
}

// matched reports whether a left row has a qualifying right match.
func (j *SemiJoinIter) matched(row Tuple) bool {
	h, keyed := hashKeyAt(row, j.lidx)
	if !keyed {
		return false // NULL keys never match
	}
	m := j.table.lookup(h, row, j.lidx)
	for m >= 0 {
		if j.bound == nil {
			return true
		}
		r := j.table.row(m)
		s := j.scratch
		copy(s, row)
		copy(s[len(row):], r)
		if j.bound.Eval(s).Truth() {
			return true
		}
		m = j.table.nextMatch(m)
	}
	return false
}

func (j *SemiJoinIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := j.L.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.matched(row) != j.Anti {
			return row, true, nil
		}
	}
}

// NextBatch filters whole left batches, passing surviving row headers
// through unchanged (the semi join emits its input rows, so the batch
// path allocates nothing).
func (j *SemiJoinIter) NextBatch() ([]Tuple, bool, error) {
	if j.bin == nil {
		j.bin = Batched(j.L)
	}
	for {
		in, ok, err := j.bin.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		out := j.out[:0]
		for _, row := range in {
			if j.matched(row) != j.Anti {
				out = append(out, row)
			}
		}
		j.out = out
		if len(out) > 0 {
			return out, true, nil
		}
	}
}

func (j *SemiJoinIter) Close() error {
	j.table = nil
	j.out = nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *SemiJoinIter) Schema() Schema { return j.L.Schema() }
