package engine

import (
	"fmt"
	"sort"
)

// HashJoinIter is an equi-join on extracted key pairs with an optional
// residual predicate evaluated on the concatenated row. This mirrors
// the Merge Cond / Join Filter split visible in the paper's Figure 13
// plan: the α (tuple-id) conditions become keys, and the ψ (descriptor
// consistency) conditions become the residual filter.
type HashJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr

	table   map[string][]Tuple
	lidx    []int
	ridx    []int
	bound   Expr
	cur     Tuple // current right row
	matches []Tuple
	mpos    int
	sch     Schema
}

// NewHashJoin builds a hash join; pairs must be non-empty.
func NewHashJoin(l, r Iterator, pairs []EquiPair, residual Expr) *HashJoinIter {
	return &HashJoinIter{L: l, R: r, Pairs: pairs, Residual: residual}
}

func (j *HashJoinIter) Open() error {
	if len(j.Pairs) == 0 {
		return fmt.Errorf("engine: hash join requires at least one equi pair")
	}
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch.Concat(rsch)
	j.lidx = make([]int, len(j.Pairs))
	j.ridx = make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: hash join: pair %v not resolvable (%v ⋈ %v)",
				p, lsch.Names(), rsch.Names())
		}
		j.lidx[i] = li
		j.ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	// Build phase on the left input.
	j.table = make(map[string][]Tuple)
	key := make(Tuple, len(j.lidx))
	for {
		row, ok, err := j.L.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		null := false
		for i, li := range j.lidx {
			if row[li].IsNull() {
				null = true
				break
			}
			key[i] = row[li]
		}
		if null {
			continue // NULL keys never join
		}
		k := KeyString(key)
		j.table[k] = append(j.table[k], row)
	}
	return nil
}

func (j *HashJoinIter) Next() (Tuple, bool, error) {
	for {
		// Emit pending matches for the current probe row.
		for j.mpos < len(j.matches) {
			l := j.matches[j.mpos]
			j.mpos++
			out := l.Concat(j.cur)
			if j.bound == nil || j.bound.Eval(out).Truth() {
				return out, true, nil
			}
		}
		// Advance the probe side.
		row, ok, err := j.R.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := make(Tuple, len(j.ridx))
		null := false
		for i, ri := range j.ridx {
			if row[ri].IsNull() {
				null = true
				break
			}
			key[i] = row[ri]
		}
		if null {
			continue
		}
		j.cur = row
		j.matches = j.table[KeyString(key)]
		j.mpos = 0
	}
}

func (j *HashJoinIter) Close() error {
	j.table = nil
	j.matches = nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *HashJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// NestedLoopJoinIter evaluates an arbitrary (possibly empty = cross
// product) predicate over the concatenated row. The right input is
// materialized.
type NestedLoopJoinIter struct {
	L, R Iterator
	Cond Expr

	right []Tuple
	cur   Tuple
	rpos  int
	bound Expr
	sch   Schema
	done  bool
}

// NewNestedLoopJoin builds a nested-loop join (cond may be nil for a
// cross product).
func NewNestedLoopJoin(l, r Iterator, cond Expr) *NestedLoopJoinIter {
	return &NestedLoopJoinIter{L: l, R: r, Cond: cond}
}

func (j *NestedLoopJoinIter) Open() error {
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	j.sch = j.L.Schema().Concat(j.R.Schema())
	if j.Cond != nil {
		b, err := j.Cond.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	for {
		row, ok, err := j.R.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.right = append(j.right, row)
	}
	j.cur = nil
	j.rpos = 0
	j.done = false
	return nil
}

func (j *NestedLoopJoinIter) Next() (Tuple, bool, error) {
	for {
		if j.cur == nil {
			row, ok, err := j.L.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			j.cur = row
			j.rpos = 0
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			out := j.cur.Concat(r)
			if j.bound == nil || j.bound.Eval(out).Truth() {
				return out, true, nil
			}
		}
		j.cur = nil
	}
}

func (j *NestedLoopJoinIter) Close() error {
	j.right = nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *NestedLoopJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// MergeJoinIter sorts both inputs on the key pairs and merges,
// evaluating an optional residual predicate on concatenated rows. This
// is the physical operator PostgreSQL chose in Figure 13.
type MergeJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr

	left, right   []Tuple
	lidx, ridx    []int
	li, ri        int
	groupL        []Tuple
	groupR        []Tuple
	gi, gj        int
	bound         Expr
	sch           Schema
	groupsPending bool
}

// NewMergeJoin builds a sort-merge join; pairs must be non-empty.
func NewMergeJoin(l, r Iterator, pairs []EquiPair, residual Expr) *MergeJoinIter {
	return &MergeJoinIter{L: l, R: r, Pairs: pairs, Residual: residual}
}

func (j *MergeJoinIter) Open() error {
	if len(j.Pairs) == 0 {
		return fmt.Errorf("engine: merge join requires at least one equi pair")
	}
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch.Concat(rsch)
	j.lidx = make([]int, len(j.Pairs))
	j.ridx = make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: merge join: pair %v not resolvable", p)
		}
		j.lidx[i] = li
		j.ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(j.sch)
		if err != nil {
			return err
		}
		j.bound = b
	}
	var err error
	if j.left, err = drainAll(j.L); err != nil {
		return err
	}
	if j.right, err = drainAll(j.R); err != nil {
		return err
	}
	sortByKeys(j.left, j.lidx)
	sortByKeys(j.right, j.ridx)
	j.li, j.ri = 0, 0
	j.groupsPending = false
	return nil
}

func drainAll(it Iterator) ([]Tuple, error) {
	var rows []Tuple
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func sortByKeys(rows []Tuple, idx []int) {
	sort.SliceStable(rows, func(a, b int) bool {
		for _, i := range idx {
			if c := Compare(rows[a][i], rows[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func keyCompare(a Tuple, ai []int, b Tuple, bi []int) int {
	for k := range ai {
		if c := Compare(a[ai[k]], b[bi[k]]); c != 0 {
			return c
		}
	}
	return 0
}

func hasNullKey(t Tuple, idx []int) bool {
	for _, i := range idx {
		if t[i].IsNull() {
			return true
		}
	}
	return false
}

func (j *MergeJoinIter) Next() (Tuple, bool, error) {
	for {
		if j.groupsPending {
			for j.gi < len(j.groupL) {
				for j.gj < len(j.groupR) {
					out := j.groupL[j.gi].Concat(j.groupR[j.gj])
					j.gj++
					if j.bound == nil || j.bound.Eval(out).Truth() {
						return out, true, nil
					}
				}
				j.gj = 0
				j.gi++
			}
			j.groupsPending = false
		}
		// Advance to the next matching key group.
		for {
			if j.li >= len(j.left) || j.ri >= len(j.right) {
				return nil, false, nil
			}
			if hasNullKey(j.left[j.li], j.lidx) {
				j.li++
				continue
			}
			if hasNullKey(j.right[j.ri], j.ridx) {
				j.ri++
				continue
			}
			c := keyCompare(j.left[j.li], j.lidx, j.right[j.ri], j.ridx)
			if c < 0 {
				j.li++
			} else if c > 0 {
				j.ri++
			} else {
				break
			}
		}
		// Collect equal-key groups on both sides.
		ls := j.li
		for j.li < len(j.left) && keyCompare(j.left[j.li], j.lidx, j.left[ls], j.lidx) == 0 {
			j.li++
		}
		rs := j.ri
		for j.ri < len(j.right) && keyCompare(j.right[j.ri], j.ridx, j.right[rs], j.ridx) == 0 {
			j.ri++
		}
		j.groupL = j.left[ls:j.li]
		j.groupR = j.right[rs:j.ri]
		j.gi, j.gj = 0, 0
		j.groupsPending = true
	}
}

func (j *MergeJoinIter) Close() error {
	j.left, j.right = nil, nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *MergeJoinIter) Schema() Schema {
	if j.sch.Len() > 0 {
		return j.sch
	}
	return j.L.Schema().Concat(j.R.Schema())
}

// SemiJoinIter emits left rows that have at least one match on the
// right under pairs + residual; with Anti=true it emits left rows with
// no match. Used by U-relation reduction (Proposition 3.3).
type SemiJoinIter struct {
	L, R     Iterator
	Pairs    []EquiPair
	Residual Expr
	Anti     bool

	table map[string][]Tuple
	lidx  []int
	bound Expr
	sch   Schema
}

// NewSemiJoin builds a (anti-)semi-join.
func NewSemiJoin(l, r Iterator, pairs []EquiPair, residual Expr, anti bool) *SemiJoinIter {
	return &SemiJoinIter{L: l, R: r, Pairs: pairs, Residual: residual, Anti: anti}
}

func (j *SemiJoinIter) Open() error {
	if err := j.L.Open(); err != nil {
		return err
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	lsch, rsch := j.L.Schema(), j.R.Schema()
	j.sch = lsch
	j.lidx = make([]int, len(j.Pairs))
	ridx := make([]int, len(j.Pairs))
	for i, p := range j.Pairs {
		li := lsch.IndexOf(p.L)
		ri := rsch.IndexOf(p.R)
		if li < 0 || ri < 0 {
			return fmt.Errorf("engine: semi join: pair %v not resolvable", p)
		}
		j.lidx[i] = li
		ridx[i] = ri
	}
	if j.Residual != nil {
		b, err := j.Residual.Bind(lsch.Concat(rsch))
		if err != nil {
			return err
		}
		j.bound = b
	}
	j.table = make(map[string][]Tuple)
	key := make(Tuple, len(ridx))
	for {
		row, ok, err := j.R.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		null := false
		for i, ri := range ridx {
			if row[ri].IsNull() {
				null = true
				break
			}
			key[i] = row[ri]
		}
		if null {
			continue
		}
		k := KeyString(key)
		j.table[k] = append(j.table[k], row)
	}
	return nil
}

func (j *SemiJoinIter) Next() (Tuple, bool, error) {
	for {
		row, ok, err := j.L.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matched := false
		var candidates []Tuple
		if len(j.lidx) == 0 {
			// No equi keys: all right rows are candidates.
			for _, rows := range j.table {
				candidates = append(candidates, rows...)
			}
		} else {
			key := make(Tuple, len(j.lidx))
			null := false
			for i, li := range j.lidx {
				if row[li].IsNull() {
					null = true
					break
				}
				key[i] = row[li]
			}
			if !null {
				candidates = j.table[KeyString(key)]
			}
		}
		for _, r := range candidates {
			if j.bound == nil {
				matched = true
				break
			}
			if j.bound.Eval(row.Concat(r)).Truth() {
				matched = true
				break
			}
		}
		if matched != j.Anti {
			return row, true, nil
		}
	}
}

func (j *SemiJoinIter) Close() error {
	j.table = nil
	err1 := j.L.Close()
	err2 := j.R.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func (j *SemiJoinIter) Schema() Schema { return j.L.Schema() }
