package engine

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeStatsBasics(t *testing.T) {
	r := testRel([]string{"a", "b"}, [][]int64{{1, 10}, {2, 10}, {3, 20}, {3, 20}})
	ts := ComputeStats(r)
	if ts.Rows != 4 {
		t.Fatal("row count")
	}
	a := ts.Cols["a"]
	if a.NDV != 3 || a.Min.AsInt() != 1 || a.Max.AsInt() != 3 || !a.HasRange {
		t.Fatalf("column a stats wrong: %+v", a)
	}
	b := ts.Cols["b"]
	if b.NDV != 2 {
		t.Fatalf("column b ndv: %v", b.NDV)
	}
}

func TestComputeStatsStrings(t *testing.T) {
	sch := NewSchema(Column{Name: "s", Kind: KindString})
	r := NewRelation(sch)
	r.Append(Tuple{Str("x")})
	r.Append(Tuple{Str("y")})
	ts := ComputeStats(r)
	if ts.Cols["s"].HasRange {
		t.Fatal("strings have no numeric range")
	}
	if ts.Cols["s"].Hist != nil {
		t.Fatal("strings have no histogram")
	}
}

func TestComputeStatsSampling(t *testing.T) {
	// More rows than the sample cap: NDV is scaled up, not truncated.
	r := NewRelation(NewSchema(Column{Name: "a", Kind: KindInt}))
	for i := 0; i < statsSampleCap*2; i++ {
		r.Append(Tuple{Int(int64(i))})
	}
	ts := ComputeStats(r)
	ndv := ts.Cols["a"].NDV
	if ndv < float64(statsSampleCap) {
		t.Fatalf("scaled NDV too small: %v", ndv)
	}
}

func TestEquiDepthHistogram(t *testing.T) {
	// Heavily skewed data: 90% of values at 0..9, 10% spread to 10000.
	rng := rand.New(rand.NewSource(5))
	r := NewRelation(NewSchema(Column{Name: "v", Kind: KindInt}))
	n := 10000
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.9 {
			r.Append(Tuple{Int(int64(rng.Intn(10)))})
		} else {
			r.Append(Tuple{Int(int64(10 + rng.Intn(9990)))})
		}
	}
	ts := ComputeStats(r)
	cs := ts.Cols["v"]
	if len(cs.Hist) != histBuckets+1 {
		t.Fatalf("histogram missing: %v", cs.Hist)
	}
	// True selectivity of v < 10 is ~0.9; linear min/max interpolation
	// would say ~0.001. The histogram estimate must be near the truth.
	sel := rangeSelectivity(LT, Int(10), cs)
	if math.Abs(sel-0.9) > 0.1 {
		t.Fatalf("histogram selectivity %v, want ≈0.9", sel)
	}
	naive := rangeSelectivity(LT, Int(10), ColStats{
		Min: cs.Min, Max: cs.Max, HasRange: true,
	})
	if naive > 0.1 {
		t.Fatalf("naive interpolation should be badly off (got %v) — test setup broken", naive)
	}
	// Boundary behaviors.
	if s := rangeSelectivity(LT, Int(-5), cs); s > 0.01 {
		t.Fatalf("below min: %v", s)
	}
	if s := rangeSelectivity(GT, Int(-5), cs); s < 0.99 {
		t.Fatalf("above min going right: %v", s)
	}
	if s := rangeSelectivity(LT, Int(999999), cs); s < 0.99 {
		t.Fatalf("above max: %v", s)
	}
}

func TestHistFracBelowMonotone(t *testing.T) {
	hist := []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768}
	prev := -1.0
	for x := -10.0; x <= 40000; x += 500 {
		f := histFracBelow(hist, x)
		if f < prev-1e-12 {
			t.Fatalf("histFracBelow not monotone at %v: %v < %v", x, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("out of range at %v: %v", x, f)
		}
		prev = f
	}
}

func TestEstimateUsesHistogramThroughPlans(t *testing.T) {
	cat := NewCatalog()
	r := NewRelation(NewSchema(Column{Name: "v", Kind: KindInt}))
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		if rng.Float64() < 0.95 {
			r.Append(Tuple{Int(int64(rng.Intn(5)))})
		} else {
			r.Append(Tuple{Int(int64(1000 + rng.Intn(1000)))})
		}
	}
	cat.Put("skewed", r)
	st := EstimateStats(Filter(Scan("skewed"), Cmp(LT, Col("v"), ConstInt(5))), cat)
	// True cardinality ~0.95*4/5*5000 ≈ 3800; accept a loose band that
	// naive interpolation (≈ 12 rows) would fail.
	if st.Rows < 1000 {
		t.Fatalf("histogram-based estimate too low: %v", st.Rows)
	}
}

func TestNormalizeCmpFlips(t *testing.T) {
	col, cst, op, ok := normalizeCmp(Cmp(LT, ConstInt(5), Col("a")))
	if !ok || col != "a" || cst.AsInt() != 5 || op != GT {
		t.Fatalf("flip wrong: %v %v %v %v", col, cst, op, ok)
	}
	_, _, _, ok = normalizeCmp(Cmp(EQ, Col("a"), Col("b")))
	if ok {
		t.Fatal("col-col must not normalize")
	}
}

func TestSelectivityBounds(t *testing.T) {
	cat := planCatalog()
	// Compound predicates stay within [~0, rows].
	preds := []Expr{
		And(Cmp(GT, Col("o.total"), ConstInt(100)), Cmp(LT, Col("o.total"), ConstInt(500))),
		Or(Cmp(EQ, Col("o.custkey"), ConstInt(1)), Cmp(EQ, Col("o.custkey"), ConstInt(2))),
		Not(Cmp(EQ, Col("o.custkey"), ConstInt(1))),
		In(Col("o.custkey"), Int(1), Int(2), Int(3)),
	}
	for i, p := range preds {
		st := EstimateStats(Filter(Scan("orders"), p), cat)
		if st.Rows < 0.5 || st.Rows > 200 {
			t.Fatalf("pred %d: estimate out of bounds: %v", i, st.Rows)
		}
	}
}

// stubSource is a minimal SourcePlan for estimator tests.
type stubSource struct {
	rows float64
	sch  Schema
}

func (s *stubSource) Schema(*Catalog) (Schema, error) { return s.sch, nil }
func (s *stubSource) Children() []Plan                { return nil }
func (s *stubSource) WithChildren([]Plan) Plan        { c := *s; return &c }
func (s *stubSource) Label() string                   { return "stub source" }
func (s *stubSource) EstimateRowCount() float64       { return s.rows }
func (s *stubSource) BuildIter(ExecConfig) (Iterator, error) {
	return NewScan(NewRelation(s.sch)), nil
}

// opaqueUnary is an unknown unary plan node, standing in for future
// wrappers the estimator has no case for.
type opaqueUnary struct{ child Plan }

func (o *opaqueUnary) Schema(cat *Catalog) (Schema, error) { return o.child.Schema(cat) }
func (o *opaqueUnary) Children() []Plan                    { return []Plan{o.child} }
func (o *opaqueUnary) WithChildren(ch []Plan) Plan         { return &opaqueUnary{child: ch[0]} }
func (o *opaqueUnary) Label() string                       { return "opaque" }

// TestEstimateRowsSourcePropagation checks that cardinality estimates
// flow from storage-backed leaves up through projections, unions, and
// even unknown unary wrappers — so the parallelism gate fires on
// stored scans instead of seeing the unknown-node constant.
func TestEstimateRowsSourcePropagation(t *testing.T) {
	cat := NewCatalog()
	src := &stubSource{rows: 50000, sch: NewSchema(Column{Name: "a", Kind: KindInt})}
	if got := EstimateRows(src, cat); got != 50000 {
		t.Fatalf("source estimate = %g, want 50000", got)
	}
	if got := EstimateRows(Project(src, "a"), cat); got != 50000 {
		t.Fatalf("projection over source = %g, want 50000", got)
	}
	u := Union(Project(src, "a"), src)
	if got := EstimateRows(u, cat); got != 100000 {
		t.Fatalf("union over sources = %g, want 100000", got)
	}
	if got := EstimateRows(&opaqueUnary{child: src}, cat); got != 50000 {
		t.Fatalf("opaque unary over source = %g, want 50000", got)
	}
	if st := EstimateStats(&opaqueUnary{child: src}, cat); st.Rows != 50000 {
		t.Fatalf("EstimateStats opaque unary = %g, want 50000", st.Rows)
	}
	// The gate itself: estimated rows clear the default threshold.
	if !parallelWorthwhile(ExecConfig{}, EstimateRows(Project(src, "a"), cat)) {
		t.Fatal("parallel gate should fire on a 50k-row stored scan")
	}
}
