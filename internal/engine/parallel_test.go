package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// randJoinInput builds a relation (k int, s string, v float) with n rows
// whose keys are drawn from [0, keys) with occasional NULLs, so joins
// exercise skewed multi-match groups and NULL-key elimination.
func randJoinInput(r *rand.Rand, n, keys int, prefix string) *Relation {
	rel := NewRelation(NewSchema(
		Column{Name: prefix + ".k", Kind: KindInt},
		Column{Name: prefix + ".s", Kind: KindString},
		Column{Name: prefix + ".v", Kind: KindFloat},
	))
	for i := 0; i < n; i++ {
		k := Int(int64(r.Intn(keys)))
		if r.Intn(20) == 0 {
			k = Null()
		}
		rel.Append(Tuple{
			k,
			Str(fmt.Sprintf("s%d", r.Intn(8))),
			Float(r.Float64()),
		})
	}
	return rel
}

// TestParallelHashJoinEquivalence asserts the parallel partitioned hash
// join produces exactly the serial HashJoinIter's result multiset across
// randomized inputs, worker counts, and residual predicates.
func TestParallelHashJoinEquivalence(t *testing.T) {
	pairs := []EquiPair{{L: "l.k", R: "r.k"}}
	residuals := map[string]Expr{
		"none":     nil,
		"ne":       Cmp(NE, Col("l.s"), Col("r.s")),
		"lt-float": Cmp(LT, Col("l.v"), Col("r.v")),
	}
	for seed := int64(0); seed < 2; seed++ {
		for _, sz := range []struct{ ln, rn, keys int }{
			{0, 50, 5},
			{50, 0, 5},
			{200, 300, 7},    // heavy skew: many matches per key
			{1000, 800, 400}, // mostly unique keys
			{1500, 1200, 60},
		} {
			for rname, residual := range residuals {
				for _, workers := range []int{1, 3, 8} {
					name := fmt.Sprintf("seed=%d/l=%d/r=%d/keys=%d/res=%s/w=%d",
						seed, sz.ln, sz.rn, sz.keys, rname, workers)
					t.Run(name, func(t *testing.T) {
						rng := rand.New(rand.NewSource(seed))
						l := randJoinInput(rng, sz.ln, sz.keys, "l")
						r := randJoinInput(rng, sz.rn, sz.keys, "r")

						want, err := Drain(NewHashJoin(NewScan(l), NewScan(r), pairs, residual))
						if err != nil {
							t.Fatal(err)
						}
						got, err := Drain(NewParallelHashJoin(NewScan(l), NewScan(r), pairs, residual, workers))
						if err != nil {
							t.Fatal(err)
						}
						if !want.EqualAsBag(got) {
							t.Fatalf("parallel join multiset differs from serial: serial=%d rows, parallel=%d rows",
								want.Len(), got.Len())
						}
					})
				}
			}
		}
	}
}

// TestParallelHashJoinTupleAtATime drives the parallel join through the
// single-tuple Next protocol (not NextBatch) and checks the same
// equivalence, since downstream operators may consume either way.
func TestParallelHashJoinTupleAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := randJoinInput(rng, 500, 20, "l")
	r := randJoinInput(rng, 700, 20, "r")
	pairs := []EquiPair{{L: "l.k", R: "r.k"}}

	want, err := Drain(NewHashJoin(NewScan(l), NewScan(r), pairs, nil))
	if err != nil {
		t.Fatal(err)
	}
	j := NewParallelHashJoin(NewScan(l), NewScan(r), pairs, nil, 4)
	if err := j.Open(); err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := NewRelation(j.Schema())
	for {
		row, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got.Append(row)
	}
	if !want.EqualAsBag(got) {
		t.Fatalf("Next-protocol parallel join differs: want %d rows, got %d", want.Len(), got.Len())
	}
}

// TestParallelFilterEquivalence asserts the parallel filter matches the
// serial filter, including row order (chunks are recombined in input
// order).
func TestParallelFilterEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		for _, n := range []int{0, 1, 100, 5000} {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("seed=%d/n=%d/w=%d", seed, n, workers), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					rel := randJoinInput(rng, n, 10, "t")
					pred := Cmp(LT, Col("t.k"), ConstInt(5))

					want, err := Drain(NewFilter(NewScan(rel), pred))
					if err != nil {
						t.Fatal(err)
					}
					got, err := Drain(NewParallelFilter(NewScan(rel), pred, workers))
					if err != nil {
						t.Fatal(err)
					}
					if want.Len() != got.Len() {
						t.Fatalf("row count differs: want %d, got %d", want.Len(), got.Len())
					}
					for i := range want.Rows {
						if !TupleEqual(want.Rows[i], got.Rows[i]) {
							t.Fatalf("row %d differs: want %v, got %v", i, want.Rows[i], got.Rows[i])
						}
					}
				})
			}
		}
	}
}

// TestBatchedAdapterEquivalence asserts the generic NextBatch adapter
// and the native batch paths yield the same rows as the Next protocol.
func TestBatchedAdapterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := randJoinInput(rng, 2500, 6, "t")
	mk := func() Iterator {
		return NewProject(NewFilter(NewScan(rel), Cmp(GE, Col("t.k"), ConstInt(2))), []string{"t.k", "t.s"})
	}

	// Next protocol.
	it := mk()
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	want := NewRelation(it.Schema())
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		want.Append(row)
	}
	it.Close()

	// Batch protocol (Drain uses it).
	got, err := Drain(mk())
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != got.Len() {
		t.Fatalf("row count differs: next=%d, batch=%d", want.Len(), got.Len())
	}
	for i := range want.Rows {
		if !TupleEqual(want.Rows[i], got.Rows[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, want.Rows[i], got.Rows[i])
		}
	}
}

// TestBuildChoosesParallelOperators asserts the Parallelism knob plus
// cardinality gate pick the parallel physical operators exactly when
// the inputs are large enough, and that full plans return identical
// results either way.
func TestBuildChoosesParallelOperators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := randJoinInput(rng, 20000, 4000, "l")
	bigR := randJoinInput(rng, 20000, 4000, "r")
	small := randJoinInput(rng, 50, 10, "l")
	smallR := randJoinInput(rng, 50, 10, "r")
	cat := NewCatalog()
	join := func(l, r *Relation) Plan {
		return Join(Values(l, "l"), Values(r, "r"), EqCols("l.k", "r.k"))
	}

	// Large inputs + Parallelism>1 → parallel hash join.
	it, err := Build(join(big, bigR), cat, ExecConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*ParallelHashJoinIter); !ok {
		t.Fatalf("large join with Parallelism=4: got %T, want *ParallelHashJoinIter", it)
	}
	// Small inputs stay serial despite the knob.
	it, err = Build(join(small, smallR), cat, ExecConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*HashJoinIter); !ok {
		t.Fatalf("small join with Parallelism=4: got %T, want *HashJoinIter", it)
	}
	// Default config stays serial regardless of size.
	it, err = Build(join(big, bigR), cat, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*HashJoinIter); !ok {
		t.Fatalf("large join with default config: got %T, want *HashJoinIter", it)
	}
	// Threshold override flips the small case.
	it, err = Build(join(small, smallR), cat, ExecConfig{Parallelism: 4, ParallelThreshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*ParallelHashJoinIter); !ok {
		t.Fatalf("small join with low threshold: got %T, want *ParallelHashJoinIter", it)
	}

	// Filters gate the same way.
	fit, err := Build(Filter(Values(big, "l"), Cmp(LT, Col("l.k"), ConstInt(50))), cat, ExecConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fit.(*ParallelFilterIter); !ok {
		t.Fatalf("large filter with Parallelism=4: got %T, want *ParallelFilterIter", fit)
	}

	// End-to-end: identical result multisets through Run.
	p := Filter(join(big, bigR), Cmp(NE, Col("l.s"), Col("r.s")))
	serial, err := Run(p, cat, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(p, cat, ExecConfig{Parallelism: -1, ParallelThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.EqualAsBag(parallel) {
		t.Fatalf("Run serial vs parallel differs: %d vs %d rows", serial.Len(), parallel.Len())
	}
}
