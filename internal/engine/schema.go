package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Column describes one attribute of a relation schema. Name is the
// fully qualified column name; qualification uses '.' (e.g. "c.custkey")
// but the engine treats names opaquely except for suffix resolution.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns. Schemas are immutable by
// convention: operators build new schemas rather than mutating.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Cols) }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// IndexOf resolves a column reference. An exact match wins; otherwise a
// unique suffix match on the part after the last '.' is accepted, so
// "custkey" resolves against "c.custkey" if unambiguous. Returns -1 if
// the name cannot be resolved uniquely.
func (s Schema) IndexOf(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	// Suffix resolution.
	found := -1
	for i, c := range s.Cols {
		if suffixAfterDot(c.Name) == name {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

func suffixAfterDot(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// MustIndexOf is IndexOf that panics on failure; used when the caller
// has already validated the plan.
func (s Schema) MustIndexOf(name string) int {
	i := s.IndexOf(name)
	if i < 0 {
		panic(fmt.Sprintf("engine: column %q not found in schema %v", name, s.Names()))
	}
	return i
}

// Has reports whether name resolves in the schema.
func (s Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Concat returns the concatenation of two schemas (join output shape).
func (s Schema) Concat(t Schema) Schema {
	cols := make([]Column, 0, len(s.Cols)+len(t.Cols))
	cols = append(cols, s.Cols...)
	cols = append(cols, t.Cols...)
	return Schema{Cols: cols}
}

// Project returns the schema consisting of the named columns, in order.
func (s Schema) Project(names []string) (Schema, error) {
	cols := make([]Column, 0, len(names))
	for _, n := range names {
		i := s.IndexOf(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("engine: project: column %q not in schema %v", n, s.Names())
		}
		c := s.Cols[i]
		c.Name = n // keep the name as written by the caller
		cols = append(cols, c)
	}
	return Schema{Cols: cols}, nil
}

// Rename returns a copy of the schema with every column name passed
// through f. Used to alias relations (e.g. self-joins).
func (s Schema) Rename(f func(string) string) Schema {
	cols := make([]Column, len(s.Cols))
	for i, c := range s.Cols {
		cols[i] = Column{Name: f(c.Name), Kind: c.Kind}
	}
	return Schema{Cols: cols}
}

// Equal reports structural equality of schemas (names and kinds).
func (s Schema) Equal(t Schema) bool {
	if len(s.Cols) != len(t.Cols) {
		return false
	}
	for i := range s.Cols {
		if s.Cols[i] != t.Cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(a int, b string)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is one row of a relation; len(Tuple) == schema.Len().
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of two tuples in a fresh slice.
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// TupleEqual reports element-wise equality of two tuples.
func TupleEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// CompareTuples orders tuples lexicographically.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// HashTuple hashes a tuple consistently with TupleEqual.
func HashTuple(t Tuple) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h ^= HashValue(v)
		h *= fnvPrime64
	}
	return h
}

// KeyString renders a tuple into a string usable as a map key,
// consistent with TupleEqual (numeric values normalize). String cells
// are length-prefixed so adjacent strings can never produce ambiguous
// concatenations: ("ab","c") and ("a","bc") — or a single string that
// embeds the separator bytes of another encoding — render to distinct
// keys. AppendKey exposes the underlying append-style encoder for
// callers that reuse a scratch buffer.
func KeyString(t Tuple) string {
	return string(AppendKey(nil, t))
}

// AppendKey appends the KeyString encoding of t to dst and returns the
// extended buffer.
func AppendKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		switch v.K {
		case KindNull:
			dst = append(dst, 0, 'n')
		case KindBool:
			// Distinct tag: booleans are not Compare-equal to the ints
			// 0/1 (kinds order first), so they must not share encodings.
			dst = append(dst, 0, 'b')
			dst = strconv.AppendInt(dst, v.I, 10)
		case KindInt:
			dst = append(dst, 0, 'i')
			dst = strconv.AppendInt(dst, v.I, 10)
		case KindFloat:
			if v.F == float64(int64(v.F)) {
				dst = append(dst, 0, 'i')
				dst = strconv.AppendInt(dst, int64(v.F), 10)
			} else {
				dst = append(dst, 0, 'f')
				dst = strconv.AppendFloat(dst, v.F, 'g', -1, 64)
			}
		case KindString:
			dst = append(dst, 0, 's')
			dst = strconv.AppendInt(dst, int64(len(v.S)), 10)
			dst = append(dst, ':')
			dst = append(dst, v.S...)
		}
	}
	return dst
}
