package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is an in-memory table: a schema plus a bag of tuples. The
// engine uses bag semantics internally; Distinct converts to set
// semantics where the algebra requires it (e.g. poss, union).
type Relation struct {
	Sch  Schema
	Rows []Tuple
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(sch Schema) *Relation {
	return &Relation{Sch: sch}
}

// Append adds a row. The row length must match the schema; this is
// checked because U-relation encodings are assembled programmatically
// and width bugs must fail loudly.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.Sch.Len() {
		panic(fmt.Sprintf("engine: row width %d != schema width %d (%v)",
			len(t), r.Sch.Len(), r.Sch.Names()))
	}
	r.Rows = append(r.Rows, t)
}

// AppendVals adds a row built from the given values.
func (r *Relation) AppendVals(vals ...Value) { r.Append(Tuple(vals)) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Sch: r.Sch, Rows: make([]Tuple, len(r.Rows))}
	for i, t := range r.Rows {
		out.Rows[i] = t.Clone()
	}
	return out
}

// SizeBytes estimates the in-memory footprint of the relation's data,
// used for the Figure 9 "dbsize" reproduction.
func (r *Relation) SizeBytes() int64 {
	var n int64
	for _, t := range r.Rows {
		for _, v := range t {
			n += int64(v.SizeBytes())
		}
		n += 24 // slice header
	}
	return n
}

// Sorted returns a copy of the rows sorted lexicographically; useful for
// deterministic comparisons in tests.
func (r *Relation) Sorted() []Tuple {
	rows := make([]Tuple, len(r.Rows))
	copy(rows, r.Rows)
	sort.Slice(rows, func(i, j int) bool { return CompareTuples(rows[i], rows[j]) < 0 })
	return rows
}

// Distinct returns a new relation with duplicate rows removed.
func (r *Relation) Distinct() *Relation {
	out := NewRelation(r.Sch)
	seen := make(map[string]struct{}, len(r.Rows))
	for _, t := range r.Rows {
		k := KeyString(t)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, t)
	}
	return out
}

// EqualAsSet reports whether two relations contain the same set of
// tuples (ignoring order and multiplicity). Schemas must have the same
// width; column names are not compared.
func (r *Relation) EqualAsSet(o *Relation) bool {
	if r.Sch.Len() != o.Sch.Len() {
		return false
	}
	a := make(map[string]struct{})
	for _, t := range r.Rows {
		a[KeyString(t)] = struct{}{}
	}
	b := make(map[string]struct{})
	for _, t := range o.Rows {
		b[KeyString(t)] = struct{}{}
	}
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// EqualAsBag reports whether two relations contain the same multiset of
// tuples (ignoring order).
func (r *Relation) EqualAsBag(o *Relation) bool {
	if r.Sch.Len() != o.Sch.Len() || len(r.Rows) != len(o.Rows) {
		return false
	}
	counts := make(map[string]int)
	for _, t := range r.Rows {
		counts[KeyString(t)]++
	}
	for _, t := range o.Rows {
		k := KeyString(t)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// String renders the relation as an aligned text table (for examples and
// debugging; deterministic given row order).
func (r *Relation) String() string {
	var b strings.Builder
	names := r.Sch.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(r.Rows))
	for ri, t := range r.Rows {
		cells[ri] = make([]string, len(t))
		for ci, v := range t {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(vals []string) {
		for ci, s := range vals {
			if ci > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			for p := len(s); p < widths[ci]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// Catalog maps relation names to stored relations and their statistics.
// It is the engine's "database".
type Catalog struct {
	rels  map[string]*Relation
	stats map[string]*TableStats
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: map[string]*Relation{}, stats: map[string]*TableStats{}}
}

// Put registers (or replaces) a relation under name and recomputes its
// statistics lazily (on first use).
func (c *Catalog) Put(name string, r *Relation) {
	c.rels[name] = r
	delete(c.stats, name)
}

// Get returns the named relation or an error.
func (c *Catalog) Get(name string) (*Relation, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("engine: relation %q not in catalog", name)
	}
	return r, nil
}

// MustGet is Get that panics; for tests and examples.
func (c *Catalog) MustGet(name string) *Relation {
	r, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return r
}

// Names returns the sorted relation names.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats returns (computing and caching on demand) statistics for the
// named relation, or nil if the relation does not exist.
func (c *Catalog) Stats(name string) *TableStats {
	if s, ok := c.stats[name]; ok {
		return s
	}
	r, ok := c.rels[name]
	if !ok {
		return nil
	}
	s := ComputeStats(r)
	c.stats[name] = s
	return s
}

// SizeBytes sums the footprint of all relations in the catalog.
func (c *Catalog) SizeBytes() int64 {
	var n int64
	for _, r := range c.rels {
		n += r.SizeBytes()
	}
	return n
}
