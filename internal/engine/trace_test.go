package engine

import (
	"testing"

	"urel/internal/obs"
)

// traceRun builds p with tracing rooted at a fresh span, drains it
// through the requested protocol, and returns the result with the root.
func traceRun(t *testing.T, p Plan, cat *Catalog, cfg ExecConfig, columnar bool) (*Relation, *obs.Span) {
	t.Helper()
	root := obs.NewSpan("query")
	cfg.Trace = root
	it, err := Build(p, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !columnar {
		out, err := Drain(it)
		if err != nil {
			t.Fatal(err)
		}
		return out, root
	}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	out := NewRelation(it.Schema())
	cit := Columnar(it)
	for {
		cb, ok, err := cit.NextColBatch()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out, root
		}
		out.Rows = append(out.Rows, cb.Materialize(nil)...)
	}
}

// spanRows walks the trace tree and returns the recorded row count of
// the span whose operator label matches, -1 when absent.
func findSpan(sp *obs.Span, label string) *obs.Span {
	if sp.Op() == label {
		return sp
	}
	for _, c := range sp.Children() {
		if f := findSpan(c, label); f != nil {
			return f
		}
	}
	return nil
}

func countSpans(sp *obs.Span) int {
	n := 1
	for _, c := range sp.Children() {
		n += countSpans(c)
	}
	return n
}

// TestTraceRowCountsMatchResult asserts the invariant EXPLAIN ANALYZE
// rests on: the root operator's traced row count equals the rows the
// query actually produced — across the serial, parallel, and columnar
// drive protocols (the three ways a consumer can pull the same plan).
func TestTraceRowCountsMatchResult(t *testing.T) {
	cat := planCatalog()
	p := Project(
		Filter(
			Join(Scan("customer"), Scan("orders"), EqCols("c.custkey", "o.custkey")),
			Cmp(GT, Col("o.total"), ConstInt(500))),
		"o.orderkey", "c.name")
	want, err := RunDefault(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture query must produce rows")
	}
	for _, tc := range []struct {
		name     string
		cfg      ExecConfig
		columnar bool
	}{
		{"serial", ExecConfig{}, false},
		{"parallel", ExecConfig{Parallelism: 4}, false},
		{"columnar", ExecConfig{}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out, root := traceRun(t, p, cat, tc.cfg, tc.columnar)
			if !want.EqualAsBag(out) {
				t.Fatalf("traced run changed the result: want %d rows, got %d", want.Len(), out.Len())
			}
			kids := root.Children()
			if len(kids) != 1 {
				t.Fatalf("query root should have exactly the top operator, got %d children", len(kids))
			}
			top := kids[0]
			if got := top.Rows(); got != int64(out.Len()) {
				t.Fatalf("top operator %q traced %d rows, result has %d", top.Op(), got, out.Len())
			}
			// Every plan node must be present in the trace: project,
			// filter, join, two scans (Build wraps recursively).
			if n := countSpans(top); n != 5 {
				t.Fatalf("trace has %d operator spans, plan has 5 nodes:\n%s", n, top)
			}
			// The scans feed everything: each must have traced exactly
			// its base relation's cardinality.
			for _, sc := range []struct {
				label string
				rows  int64
			}{{"Seq Scan on customer", 50}, {"Seq Scan on orders", 200}} {
				sp := findSpan(top, sc.label)
				if sp == nil {
					t.Fatalf("span %q missing from trace:\n%s", sc.label, top)
				}
				if sp.Rows() != sc.rows {
					t.Fatalf("%s traced %d rows, want %d", sc.label, sp.Rows(), sc.rows)
				}
			}
		})
	}
}

// TestTraceDisabledIsUnwrapped asserts the zero-config build path pays
// nothing for tracing: no wrapper iterators appear.
func TestTraceDisabledIsUnwrapped(t *testing.T) {
	cat := planCatalog()
	it, err := Build(Filter(Scan("orders"), Cmp(GT, Col("o.total"), ConstInt(0))), cat, ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, wrapped := it.(*traceIter); wrapped {
		t.Fatal("Build wrapped a trace iterator without cfg.Trace")
	}
}

// TestTraceBatchCounts asserts batch accounting: batches recorded only
// on the batch protocol, and batch row sums equal Next-protocol rows.
func TestTraceBatchCounts(t *testing.T) {
	cat := planCatalog()
	p := Filter(Scan("orders"), Cmp(GT, Col("o.total"), ConstInt(990)))
	out, root := traceRun(t, p, cat, ExecConfig{}, false)
	top := root.Children()[0]
	if top.Rows() != int64(out.Len()) {
		t.Fatalf("traced %d rows, result has %d", top.Rows(), out.Len())
	}
	if out.Len() > 0 && top.Batches() == 0 {
		t.Fatal("Drain pulls batches; the trace recorded none")
	}
}
