// Package engine implements a small but complete in-memory relational
// database engine: typed values, schemas, relations, an expression
// language, Volcano-style physical operators with a vectorized batch
// fast path, parallel partitioned operators, logical plans, a rule- and
// cost-based optimizer with table statistics, and an EXPLAIN facility.
//
// The engine plays the role PostgreSQL plays in the U-relations paper
// (Antova, Jansen, Koch, Olteanu: "Fast and Simple Relational Processing
// of Uncertain Data", ICDE 2008): a plain relational substrate on which
// translated queries over U-relations are evaluated and optimized using
// only standard relational techniques. The paper's thesis is that
// uncertain-data processing reduces to ordinary relational processing —
// so making this substrate fast makes the whole system fast.
//
// # Execution model
//
// Physical operators implement the single-tuple Iterator protocol
// (Open/Next/Close). Two vectorized fast paths sit on top. Operators
// that can produce whole row batches implement BatchIterator; Batched
// adapts any Iterator, so consumers like Drain always drive the
// vectorized path. Operators that can produce struct-of-arrays column
// batches (ColBatch: typed per-column vectors, null markers, and a
// selection vector) implement ColBatchIterator; Columnar and
// ColBatch.Materialize are the two-way adapters, and NativeColumnar is
// the negotiation by which filters and projections run columnar
// (vectorized predicate kernels over the selection vector, zero-copy
// column re-slicing) exactly when their input chain is columnar
// without a transpose — the storage layer's segment scans being the
// canonical such source. Joins use the hashed-key joinTable: an
// open-addressing table over a flat build-row arena keyed by 64-bit
// hashes, probed without per-row key or map allocations. Parallel
// operators — ParallelHashJoinIter (build side hash-partitioned across
// workers, probe batches scattered through per-partition private
// joinTables) and ParallelFilterIter (chunked predicate evaluation) —
// are selected during physical lowering when ExecConfig.Parallelism
// allows and the estimated input cardinality (EstimateRows) clears the
// threshold, so small inputs keep the cheaper serial operators.
//
// Paper-section map: plan.go/optimizer.go — the "standard techniques
// employed in off-the-shelf relational DBMS" (Sections 3 and 6) that
// evaluate translated plans, including the Figure 13 Merge Cond / Join
// Filter split (ExtractEquiJoin); stats.go — the selectivity-based cost
// measures of a System-R-style optimizer; explain.go — the Figure 10/13
// plan views, annotated with each operator's execution mode (columnar
// vs row); join.go, hashtable.go, iter.go, batch.go, colbatch.go,
// vecfilter.go, parallel.go — the physical operator layer, whose raw
// speed is what the paper's "fast" rests on (Section 6's evaluation
// reduces uncertain-query processing to exactly these plain relational
// operators).
package engine
