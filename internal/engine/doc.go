// Package engine implements a small but complete in-memory relational
// database engine: typed values, schemas, relations, an expression
// language, Volcano-style physical operators with a vectorized batch
// fast path, parallel partitioned operators, logical plans, a rule- and
// cost-based optimizer with table statistics, and an EXPLAIN facility.
//
// The engine plays the role PostgreSQL plays in the U-relations paper
// (Antova, Jansen, Koch, Olteanu: "Fast and Simple Relational Processing
// of Uncertain Data", ICDE 2008): a plain relational substrate on which
// translated queries over U-relations are evaluated and optimized using
// only standard relational techniques. The paper's thesis is that
// uncertain-data processing reduces to ordinary relational processing —
// so making this substrate fast makes the whole system fast.
//
// # Execution model
//
// Physical operators implement the single-tuple Iterator protocol
// (Open/Next/Close). Operators that can produce whole batches also
// implement BatchIterator; Batched adapts any Iterator, so consumers
// like Drain always drive the vectorized path. Parallel operators —
// ParallelHashJoinIter (build side hash-partitioned across workers,
// probe batches scattered through per-partition private tables) and
// ParallelFilterIter (chunked predicate evaluation) — are selected
// during physical lowering when ExecConfig.Parallelism allows and the
// estimated input cardinality (EstimateRows) clears the threshold, so
// small inputs keep the cheaper serial operators.
//
// Paper-section map: plan.go/optimizer.go — the "standard techniques
// employed in off-the-shelf relational DBMS" (Sections 3 and 6) that
// evaluate translated plans, including the Figure 13 Merge Cond / Join
// Filter split (ExtractEquiJoin); stats.go — the selectivity-based cost
// measures of a System-R-style optimizer; explain.go — the Figure 10/13
// plan views; join.go, iter.go, batch.go, parallel.go — the physical
// operator layer.
package engine
