package engine

import (
	"time"

	"urel/internal/obs"
)

// OperatorStats is implemented by physical operators that accumulate
// side statistics worth surfacing in a trace — the store's segment
// scan reports segments read/pruned, cache hits, and bytes decoded.
// The engine calls it once, after Close, so implementations just
// expose their final counters.
type OperatorStats interface {
	OperatorStats(emit func(key string, v int64))
}

// traceIter wraps a physical operator and records its actual row and
// batch counts plus inclusive wall time (children included, as in
// EXPLAIN ANALYZE) into a span. It implements all three drive
// protocols and delegates the columnar-native negotiation to the
// wrapped operator, so inserting it never changes which execution
// path (row, batch, columnar) the plan takes — only adds a counter
// update per batch. It is only ever constructed when tracing is on;
// the untraced hot path never sees it.
type traceIter struct {
	in Iterator
	sp *obs.Span

	bin BatchIterator
	cin ColBatchIterator
}

func newTraceIter(in Iterator, sp *obs.Span) *traceIter {
	return &traceIter{in: in, sp: sp}
}

func (t *traceIter) Open() error {
	start := time.Now()
	err := t.in.Open()
	t.sp.AddNanos(int64(time.Since(start)))
	return err
}

func (t *traceIter) Next() (Tuple, bool, error) {
	start := time.Now()
	tup, ok, err := t.in.Next()
	t.sp.AddNanos(int64(time.Since(start)))
	if ok {
		t.sp.AddRows(1)
	}
	return tup, ok, err
}

func (t *traceIter) NextBatch() ([]Tuple, bool, error) {
	if t.bin == nil {
		t.bin = Batched(t.in)
	}
	start := time.Now()
	b, ok, err := t.bin.NextBatch()
	t.sp.AddNanos(int64(time.Since(start)))
	if ok {
		t.sp.AddRows(int64(len(b)))
		t.sp.AddBatches(1)
	}
	return b, ok, err
}

func (t *traceIter) NextColBatch() (*ColBatch, bool, error) {
	if t.cin == nil {
		t.cin = Columnar(t.in)
	}
	start := time.Now()
	cb, ok, err := t.cin.NextColBatch()
	t.sp.AddNanos(int64(time.Since(start)))
	if ok {
		t.sp.AddRows(int64(cb.Rows()))
		t.sp.AddBatches(1)
	}
	return cb, ok, err
}

// ColumnarNative reports the wrapped operator's answer, so the parent
// negotiates the same representation it would without tracing.
func (t *traceIter) ColumnarNative() bool {
	c, ok := t.in.(ColBatchIterator)
	return ok && c.ColumnarNative()
}

func (t *traceIter) Close() error {
	start := time.Now()
	err := t.in.Close()
	t.sp.AddNanos(int64(time.Since(start)))
	if os, ok := t.in.(OperatorStats); ok {
		os.OperatorStats(t.sp.AddStat)
	}
	return err
}

func (t *traceIter) Schema() Schema { return t.in.Schema() }
