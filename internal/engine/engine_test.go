package engine

import (
	"strings"
	"testing"
)

// testRel builds a small relation from int columns for operator tests.
func testRel(names []string, rows [][]int64) *Relation {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = Column{Name: n, Kind: KindInt}
	}
	r := NewRelation(Schema{Cols: cols})
	for _, row := range rows {
		t := make(Tuple, len(row))
		for i, v := range row {
			t[i] = Int(v)
		}
		r.Append(t)
	}
	return r
}

func mustDrain(t *testing.T, it Iterator) *Relation {
	t.Helper()
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSchemaResolution(t *testing.T) {
	s := NewSchema(
		Column{Name: "c.custkey", Kind: KindInt},
		Column{Name: "o.orderkey", Kind: KindInt},
		Column{Name: "o.custkey", Kind: KindInt},
	)
	if s.IndexOf("c.custkey") != 0 {
		t.Error("exact match")
	}
	if s.IndexOf("orderkey") != 1 {
		t.Error("unique suffix match")
	}
	if s.IndexOf("custkey") != -1 {
		t.Error("ambiguous suffix must fail")
	}
	if s.IndexOf("nope") != -1 {
		t.Error("missing must fail")
	}
}

func TestScanFilterProject(t *testing.T) {
	r := testRel([]string{"a", "b"}, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	it := NewProject(NewFilter(NewScan(r), Cmp(GT, Col("a"), ConstInt(1))), []string{"b"})
	out := mustDrain(t, it)
	if out.Len() != 2 || out.Rows[0][0].AsInt() != 20 || out.Rows[1][0].AsInt() != 30 {
		t.Fatalf("got %v", out.Rows)
	}
	if out.Sch.Names()[0] != "b" {
		t.Fatal("projection schema")
	}
}

func TestFilterExpressions(t *testing.T) {
	r := testRel([]string{"a"}, [][]int64{{1}, {2}, {3}, {4}, {5}})
	cases := []struct {
		pred Expr
		want int
	}{
		{Cmp(EQ, Col("a"), ConstInt(3)), 1},
		{Cmp(NE, Col("a"), ConstInt(3)), 4},
		{Cmp(LE, Col("a"), ConstInt(3)), 3},
		{Cmp(GE, Col("a"), ConstInt(3)), 3},
		{And(Cmp(GT, Col("a"), ConstInt(1)), Cmp(LT, Col("a"), ConstInt(5))), 3},
		{Or(Cmp(EQ, Col("a"), ConstInt(1)), Cmp(EQ, Col("a"), ConstInt(5))), 2},
		{Not(Cmp(EQ, Col("a"), ConstInt(1))), 4},
		{In(Col("a"), Int(2), Int(4), Int(9)), 2},
		{Cmp(EQ, Arith(ModOp, Col("a"), ConstInt(2)), ConstInt(0)), 2},
		{Cmp(GT, Arith(AddOp, Col("a"), ConstInt(10)), ConstInt(13)), 2},
	}
	for i, c := range cases {
		out := mustDrain(t, NewFilter(NewScan(r), c.pred))
		if out.Len() != c.want {
			t.Errorf("case %d (%s): got %d rows, want %d", i, c.pred, out.Len(), c.want)
		}
	}
}

func TestNullComparisons(t *testing.T) {
	sch := NewSchema(Column{Name: "a", Kind: KindInt})
	r := NewRelation(sch)
	r.Append(Tuple{Null()})
	r.Append(Tuple{Int(1)})
	out := mustDrain(t, NewFilter(NewScan(r), Cmp(EQ, Col("a"), ConstInt(1))))
	if out.Len() != 1 {
		t.Fatal("null should not match equality")
	}
	out = mustDrain(t, NewFilter(NewScan(r), IsNull(Col("a"))))
	if out.Len() != 1 {
		t.Fatal("IS NULL should match the null row")
	}
	// NULL = NULL is false in predicates.
	out = mustDrain(t, NewFilter(NewScan(r), Cmp(EQ, Col("a"), Const(Null()))))
	if out.Len() != 0 {
		t.Fatal("nothing equals NULL")
	}
}

func TestHashJoinBasic(t *testing.T) {
	l := testRel([]string{"l.k", "l.v"}, [][]int64{{1, 100}, {2, 200}, {2, 201}, {3, 300}})
	r := testRel([]string{"r.k", "r.w"}, [][]int64{{2, 9}, {3, 8}, {4, 7}})
	it := NewHashJoin(NewScan(l), NewScan(r), []EquiPair{{L: "l.k", R: "r.k"}}, nil)
	out := mustDrain(t, it)
	if out.Len() != 3 {
		t.Fatalf("want 3 join rows, got %d: %v", out.Len(), out.Rows)
	}
	// Residual filter.
	it2 := NewHashJoin(NewScan(l), NewScan(r),
		[]EquiPair{{L: "l.k", R: "r.k"}}, Cmp(GT, Col("l.v"), ConstInt(200)))
	out2 := mustDrain(t, it2)
	if out2.Len() != 2 {
		t.Fatalf("residual: want 2, got %d", out2.Len())
	}
}

func TestJoinAlgorithmsAgree(t *testing.T) {
	l := testRel([]string{"l.k", "l.v"}, [][]int64{
		{1, 1}, {2, 2}, {2, 3}, {3, 4}, {5, 5}, {5, 6}, {5, 7},
	})
	r := testRel([]string{"r.k", "r.w"}, [][]int64{
		{2, 1}, {2, 2}, {3, 3}, {5, 4}, {6, 5},
	})
	pairs := []EquiPair{{L: "l.k", R: "r.k"}}
	res := Cmp(NE, Col("l.v"), Col("r.w"))
	hj := mustDrain(t, NewHashJoin(NewScan(l), NewScan(r), pairs, res))
	mj := mustDrain(t, NewMergeJoin(NewScan(l), NewScan(r), pairs, res))
	cond := And(EqCols("l.k", "r.k"), res)
	nl := mustDrain(t, NewNestedLoopJoin(NewScan(l), NewScan(r), cond))
	if !hj.EqualAsBag(mj) {
		t.Errorf("hash vs merge join disagree: %d vs %d", hj.Len(), mj.Len())
	}
	if !hj.EqualAsBag(nl) {
		t.Errorf("hash vs nested loop disagree: %d vs %d", hj.Len(), nl.Len())
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	sch := NewSchema(Column{Name: "k", Kind: KindInt})
	l := NewRelation(sch)
	l.Append(Tuple{Null()})
	l.Append(Tuple{Int(1)})
	r := NewRelation(NewSchema(Column{Name: "k2", Kind: KindInt}))
	r.Append(Tuple{Null()})
	r.Append(Tuple{Int(1)})
	out := mustDrain(t, NewHashJoin(NewScan(l), NewScan(r), []EquiPair{{L: "k", R: "k2"}}, nil))
	if out.Len() != 1 {
		t.Fatalf("null keys must not join: got %d rows", out.Len())
	}
	out2 := mustDrain(t, NewMergeJoin(NewScan(l), NewScan(r), []EquiPair{{L: "k", R: "k2"}}, nil))
	if out2.Len() != 1 {
		t.Fatalf("merge join null keys: got %d rows", out2.Len())
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	l := testRel([]string{"k", "v"}, [][]int64{{1, 1}, {2, 2}, {3, 3}})
	r := testRel([]string{"k2"}, [][]int64{{2}, {3}, {3}})
	semi := mustDrain(t, NewSemiJoin(NewScan(l), NewScan(r), []EquiPair{{L: "k", R: "k2"}}, nil, false))
	if semi.Len() != 2 {
		t.Fatalf("semi join: want 2, got %d", semi.Len())
	}
	anti := mustDrain(t, NewSemiJoin(NewScan(l), NewScan(r), []EquiPair{{L: "k", R: "k2"}}, nil, true))
	if anti.Len() != 1 || anti.Rows[0][0].AsInt() != 1 {
		t.Fatalf("anti join: got %v", anti.Rows)
	}
}

func TestSetOps(t *testing.T) {
	a := testRel([]string{"x"}, [][]int64{{1}, {2}, {2}, {3}})
	b := testRel([]string{"x"}, [][]int64{{2}, {4}})
	u := mustDrain(t, NewUnion(NewScan(a), NewScan(b)))
	if u.Len() != 6 {
		t.Fatalf("union all: want 6, got %d", u.Len())
	}
	d := mustDrain(t, NewDiff(NewScan(a), NewScan(b)))
	if d.Len() != 2 { // {1,3} deduplicated
		t.Fatalf("diff: want 2, got %d: %v", d.Len(), d.Rows)
	}
	i := mustDrain(t, NewIntersect(NewScan(a), NewScan(b)))
	if i.Len() != 1 || i.Rows[0][0].AsInt() != 2 {
		t.Fatalf("intersect: got %v", i.Rows)
	}
	dd := mustDrain(t, NewDistinct(NewScan(a)))
	if dd.Len() != 3 {
		t.Fatalf("distinct: want 3, got %d", dd.Len())
	}
}

func TestSortAndLimit(t *testing.T) {
	r := testRel([]string{"a", "b"}, [][]int64{{3, 1}, {1, 2}, {2, 3}})
	s := mustDrain(t, NewSort(NewScan(r), []string{"a"}))
	if s.Rows[0][0].AsInt() != 1 || s.Rows[2][0].AsInt() != 3 {
		t.Fatalf("sort order wrong: %v", s.Rows)
	}
	l := mustDrain(t, NewLimit(NewScan(r), 2))
	if l.Len() != 2 {
		t.Fatalf("limit: want 2, got %d", l.Len())
	}
}

func TestHashAgg(t *testing.T) {
	r := testRel([]string{"g", "v"}, [][]int64{{1, 10}, {1, 20}, {2, 5}, {2, 15}, {2, 1}})
	out := mustDrain(t, NewHashAgg(NewScan(r), []string{"g"}, []AggSpec{
		{Fn: AggCount, As: "n"},
		{Fn: AggSum, Col: "v", As: "s"},
		{Fn: AggMin, Col: "v", As: "mn"},
		{Fn: AggMax, Col: "v", As: "mx"},
		{Fn: AggAvg, Col: "v", As: "avg"},
	}))
	if out.Len() != 2 {
		t.Fatalf("want 2 groups, got %d", out.Len())
	}
	g1 := out.Rows[0]
	if g1[0].AsInt() != 1 || g1[1].AsInt() != 2 || g1[2].AsInt() != 30 ||
		g1[3].AsInt() != 10 || g1[4].AsInt() != 20 || g1[5].AsFloat() != 15 {
		t.Fatalf("group 1 wrong: %v", g1)
	}
	// Global aggregate over empty input yields count 0.
	empty := testRel([]string{"v"}, nil)
	out2 := mustDrain(t, NewHashAgg(NewScan(empty), nil, []AggSpec{{Fn: AggCount, As: "n"}}))
	if out2.Len() != 1 || out2.Rows[0][0].AsInt() != 0 {
		t.Fatalf("empty count: %v", out2.Rows)
	}
}

func TestRelationHelpers(t *testing.T) {
	a := testRel([]string{"x", "y"}, [][]int64{{1, 2}, {3, 4}})
	b := testRel([]string{"x", "y"}, [][]int64{{3, 4}, {1, 2}})
	if !a.EqualAsSet(b) || !a.EqualAsBag(b) {
		t.Error("order must not matter")
	}
	c := testRel([]string{"x", "y"}, [][]int64{{1, 2}, {1, 2}, {3, 4}})
	if a.EqualAsBag(c) {
		t.Error("bag equality counts multiplicity")
	}
	if !a.EqualAsSet(c) {
		t.Error("set equality ignores multiplicity")
	}
	if a.Clone().Len() != 2 {
		t.Error("clone")
	}
	if !strings.Contains(a.String(), "x") {
		t.Error("String header")
	}
	if a.SizeBytes() <= 0 {
		t.Error("SizeBytes")
	}
}

func TestCatalog(t *testing.T) {
	cat := NewCatalog()
	cat.Put("r", testRel([]string{"a"}, [][]int64{{1}, {2}}))
	r, err := cat.Get("r")
	if err != nil || r.Len() != 2 {
		t.Fatal("catalog get")
	}
	if _, err := cat.Get("missing"); err == nil {
		t.Fatal("missing relation must error")
	}
	st := cat.Stats("r")
	if st == nil || st.Rows != 2 {
		t.Fatal("stats")
	}
	if got := cat.Names(); len(got) != 1 || got[0] != "r" {
		t.Fatal("names")
	}
}

func TestExtractEquiJoin(t *testing.T) {
	ls := NewSchema(Column{Name: "l.a", Kind: KindInt}, Column{Name: "l.b", Kind: KindInt})
	rs := NewSchema(Column{Name: "r.a", Kind: KindInt}, Column{Name: "r.c", Kind: KindInt})
	cond := And(EqCols("l.a", "r.a"), Cmp(GT, Col("l.b"), Col("r.c")), EqCols("r.c", "l.b"))
	pairs, res := ExtractEquiJoin(cond, ls, rs)
	if len(pairs) != 2 {
		t.Fatalf("want 2 equi pairs, got %v", pairs)
	}
	if pairs[1].L != "l.b" || pairs[1].R != "r.c" {
		t.Fatalf("flipped pair wrong: %v", pairs)
	}
	if res == nil {
		t.Fatal("expected residual")
	}
}
