package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestJoinTableChains checks insertion, chain order, growth across
// rehashes, and lookups against a map-based oracle.
func TestJoinTableChains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keyIdx := []int{0}
	tbl := newJoinTable(2, keyIdx)
	oracle := map[int64][]int64{}
	const n = 5000 // forces several rehashes from the initial 64 slots
	for i := 0; i < n; i++ {
		k := int64(rng.Intn(97))
		row := Tuple{Int(k), Int(int64(i))}
		h, ok := tbl.hashRow(row)
		if !ok {
			t.Fatal("non-null key must hash")
		}
		tbl.insert(row, h)
		oracle[k] = append(oracle[k], int64(i))
	}
	if tbl.len() != n {
		t.Fatalf("len=%d want %d", tbl.len(), n)
	}
	for k, want := range oracle {
		probe := Tuple{Int(k)}
		h, _ := hashKeyAt(probe, []int{0})
		var got []int64
		for m := tbl.lookup(h, probe, []int{0}); m >= 0; m = tbl.nextMatch(m) {
			got = append(got, tbl.row(m)[1].AsInt())
		}
		if len(got) != len(want) {
			t.Fatalf("key %d: %d matches, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("key %d: chain order diverged at %d: %v vs %v", k, i, got, want)
			}
		}
	}
	// Missing keys.
	probe := Tuple{Int(1000)}
	h, _ := hashKeyAt(probe, []int{0})
	if m := tbl.lookup(h, probe, []int{0}); m != -1 {
		t.Fatalf("lookup(miss) = %d", m)
	}
}

// TestJoinTableNullKeys checks hashRow refuses NULL keys (they never
// join).
func TestJoinTableNullKeys(t *testing.T) {
	tbl := newJoinTable(2, []int{0, 1})
	if _, ok := tbl.hashRow(Tuple{Int(1), Null()}); ok {
		t.Fatal("NULL key must not hash")
	}
	if _, ok := tbl.hashRow(Tuple{Int(1), Int(2)}); !ok {
		t.Fatal("non-NULL key must hash")
	}
}

// TestJoinTableNumericKeyNormalization checks int and integral float
// keys meet in one chain, mirroring Compare/KeyString semantics.
func TestJoinTableNumericKeyNormalization(t *testing.T) {
	tbl := newJoinTable(1, []int{0})
	for _, v := range []Value{Int(5), Float(5.0), Int(5)} {
		row := Tuple{v}
		h, _ := tbl.hashRow(row)
		tbl.insert(row, h)
	}
	probe := Tuple{Float(5)}
	h, _ := hashKeyAt(probe, []int{0})
	count := 0
	for m := tbl.lookup(h, probe, []int{0}); m >= 0; m = tbl.nextMatch(m) {
		count++
	}
	if count != 3 {
		t.Fatalf("int/float key chain has %d rows, want 3", count)
	}
}

// TestKeyStringAdversarial is the regression test for the KeyString
// collision hazard: adjacent string columns must never produce
// ambiguous concatenations, including strings that embed the encoding's
// own separator bytes.
func TestKeyStringAdversarial(t *testing.T) {
	collide := [][2]Tuple{
		{{Str("ab"), Str("c")}, {Str("a"), Str("bc")}},
		{{Str("a\x00sb")}, {Str("a"), Str("b")}},
		{{Str("a\x00s1:b")}, {Str("a"), Str("b")}},
		{{Str("1:ab")}, {Str("ab")}},
		{{Str(""), Str("x")}, {Str("x"), Str("")}},
		{{Str("\x00i1")}, {Int(1)}},
		{{Str("12")}, {Int(12)}},
		{{Null(), Str("n")}, {Str("n"), Null()}},
	}
	for i, pair := range collide {
		a, b := KeyString(pair[0]), KeyString(pair[1])
		if a == b {
			t.Errorf("case %d: %v and %v collide on %q", i, pair[0], pair[1], a)
		}
	}
	equal := [][2]Tuple{
		{{Int(5)}, {Float(5.0)}},
		{{Str("ab"), Str("c")}, {Str("ab"), Str("c")}},
		{{Null()}, {Null()}},
	}
	for i, pair := range equal {
		a, b := KeyString(pair[0]), KeyString(pair[1])
		if a != b {
			t.Errorf("case %d: %v and %v must agree (%q vs %q)", i, pair[0], pair[1], a, b)
		}
	}
}

// TestKeyStringMatchesTupleEqual is the property: KeyString equality
// coincides with TupleEqual on random tuples.
func TestKeyStringMatchesTupleEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Null()
		case 1:
			return Int(int64(rng.Intn(4)))
		case 2:
			return Float(float64(rng.Intn(4)))
		case 3:
			return Str(fmt.Sprintf("s%d\x00s%d", rng.Intn(3), rng.Intn(3)))
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(3)
		a := make(Tuple, n)
		b := make(Tuple, n)
		for i := 0; i < n; i++ {
			a[i] = randVal()
			b[i] = randVal()
		}
		if (KeyString(a) == KeyString(b)) != TupleEqual(a, b) {
			t.Fatalf("KeyString/TupleEqual disagree on %v vs %v", a, b)
		}
		if TupleEqual(a, b) && HashTuple(a) != HashTuple(b) {
			t.Fatalf("equal tuples hash differently: %v vs %v", a, b)
		}
	}
}

// repeatIter cycles over a relation forever; benchmarks use it to
// measure steady-state probe cost without rebuilding the join.
type repeatIter struct {
	rel *Relation
	pos int
}

func (r *repeatIter) Open() error    { r.pos = 0; return nil }
func (r *repeatIter) Close() error   { return nil }
func (r *repeatIter) Schema() Schema { return r.rel.Sch }

func (r *repeatIter) Next() (Tuple, bool, error) {
	if r.pos >= len(r.rel.Rows) {
		r.pos = 0
	}
	t := r.rel.Rows[r.pos]
	r.pos++
	return t, true, nil
}

func (r *repeatIter) NextBatch() ([]Tuple, bool, error) {
	if r.pos >= len(r.rel.Rows) {
		r.pos = 0
	}
	end := r.pos + DefaultBatchSize
	if end > len(r.rel.Rows) {
		end = len(r.rel.Rows)
	}
	batch := r.rel.Rows[r.pos:end]
	r.pos = end
	return batch, true, nil
}

// BenchmarkHashJoinProbe measures the steady-state probe path of the
// rewritten hash join: one op is one output row. The probe side cycles
// forever, so after Open the only allocations are the amortized output
// arena chunks — the benchmark must report 0 allocs/op.
func BenchmarkHashJoinProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	build := randJoinInput(rng, 20000, 5000, "l")
	probe := randJoinInput(rng, 8192, 5000, "r")
	j := NewHashJoin(NewScan(build), &repeatIter{rel: probe}, []EquiPair{{L: "l.k", R: "r.k"}}, nil)
	if err := j.Open(); err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			b.Fatal("probe stream ended", err)
		}
	}
}

// BenchmarkHashJoinProbeResidual is the same with a residual filter,
// exercising the scratch-buffer evaluation path.
func BenchmarkHashJoinProbeResidual(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	build := randJoinInput(rng, 20000, 5000, "l")
	probe := randJoinInput(rng, 8192, 5000, "r")
	res := Cmp(NE, Col("l.s"), Col("r.s"))
	j := NewHashJoin(NewScan(build), &repeatIter{rel: probe}, []EquiPair{{L: "l.k", R: "r.k"}}, res)
	if err := j.Open(); err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			b.Fatal("probe stream ended", err)
		}
	}
}

// BenchmarkSemiJoinProbe measures the semi join's probe path; one op
// is one emitted left row. Zero allocs: the semi join passes input
// rows through.
func BenchmarkSemiJoinProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	right := randJoinInput(rng, 20000, 5000, "r")
	left := randJoinInput(rng, 8192, 5000, "l")
	j := NewSemiJoin(&repeatIter{rel: left}, NewScan(right), []EquiPair{{L: "l.k", R: "r.k"}}, nil, false)
	if err := j.Open(); err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			b.Fatal("probe stream ended", err)
		}
	}
}

// BenchmarkHashJoinBuild measures the build phase (table construction)
// per build row.
func BenchmarkHashJoinBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	build := randJoinInput(rng, 100000, 30000, "l")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl := newJoinTable(build.Sch.Len(), []int{0})
		for _, row := range build.Rows {
			if h, ok := tbl.hashRow(row); ok {
				tbl.insert(row, h)
			}
		}
	}
}

// BenchmarkVectorizedFilter contrasts the columnar filter kernels with
// the row path over the same data and predicate.
func BenchmarkVectorizedFilter(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	rel := randColInput(rng, 100000, "t")
	pred := And(Cmp(GE, Col("t.k"), ConstInt(1)), Cmp(LT, Col("t.v"), ConstFloat(0.5)))
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Drain(NewFilter(newColSource(rel, DefaultBatchSize), pred)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Drain(NewFilter(NewScan(rel), pred)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
