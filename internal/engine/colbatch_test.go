package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// colSource is a native-columnar test source over a relation: it
// serves typed column vectors (with null markers) built once from the
// relation's rows, standing in for a columnar storage layer so engine
// tests can exercise the columnar operator paths without importing the
// store package.
type colSource struct {
	rel   *Relation
	chunk int // rows per batch
	pos   int
	cb    ColBatch
}

func newColSource(rel *Relation, chunk int) *colSource {
	if chunk <= 0 {
		chunk = 100
	}
	return &colSource{rel: rel, chunk: chunk}
}

func (c *colSource) Open() error          { c.pos = 0; return nil }
func (c *colSource) Close() error         { return nil }
func (c *colSource) Schema() Schema       { return c.rel.Sch }
func (c *colSource) ColumnarNative() bool { return true }

func (c *colSource) Next() (Tuple, bool, error) {
	if c.pos >= len(c.rel.Rows) {
		return nil, false, nil
	}
	t := c.rel.Rows[c.pos]
	c.pos++
	return t, true, nil
}

func (c *colSource) NextBatch() ([]Tuple, bool, error) {
	cb, ok, err := c.NextColBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	return cb.Materialize(nil), true, nil
}

func (c *colSource) NextColBatch() (*ColBatch, bool, error) {
	if c.pos >= len(c.rel.Rows) {
		return nil, false, nil
	}
	end := c.pos + c.chunk
	if end > len(c.rel.Rows) {
		end = len(c.rel.Rows)
	}
	rows := c.rel.Rows[c.pos:end]
	c.pos = end
	n := len(rows)
	cols := make([]ColVec, c.rel.Sch.Len())
	for ci, col := range c.rel.Sch.Cols {
		// Build a typed vector when every non-null cell matches the
		// declared kind; otherwise fall back to a generic vector.
		typed := true
		for _, row := range rows {
			if !row[ci].IsNull() && row[ci].K != col.Kind {
				typed = false
				break
			}
		}
		var nulls []bool
		for r, row := range rows {
			if row[ci].IsNull() {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[r] = true
			}
		}
		if !typed {
			vals := make([]Value, n)
			for r, row := range rows {
				vals[r] = row[ci]
			}
			cols[ci] = GenericVec(vals)
			continue
		}
		switch col.Kind {
		case KindInt, KindBool:
			xs := make([]int64, n)
			for r, row := range rows {
				xs[r] = row[ci].I
			}
			if col.Kind == KindBool {
				cols[ci] = BoolVec(xs, nulls)
			} else {
				cols[ci] = IntVec(xs, nulls)
			}
		case KindFloat:
			xs := make([]float64, n)
			for r, row := range rows {
				xs[r] = row[ci].F
			}
			cols[ci] = FloatVec(xs, nulls)
		case KindString:
			xs := make([]string, n)
			for r, row := range rows {
				xs[r] = row[ci].S
			}
			cols[ci] = StrVec(xs, nulls)
		default:
			vals := make([]Value, n)
			for r, row := range rows {
				vals[r] = row[ci]
			}
			cols[ci] = GenericVec(vals)
		}
	}
	c.cb = ColBatch{Sch: c.rel.Sch, Cols: cols, N: n}
	return &c.cb, true, nil
}

// randPredicates returns the predicate menu the property tests draw
// from: typed kernels (int, float, string, column-column), selection
// kernels (IN, IS NULL), and shapes that must hit the generic row-eval
// fallback (OR, arithmetic).
func randPredicates(prefix string) map[string]Expr {
	c := func(n string) Expr { return Col(prefix + "." + n) }
	return map[string]Expr{
		"int-lt":    Cmp(LT, c("k"), ConstInt(3)),
		"int-ge":    Cmp(GE, c("k"), ConstInt(2)),
		"int-eq":    Cmp(EQ, c("k"), ConstInt(1)),
		"const-lhs": Cmp(LT, ConstInt(2), c("k")),
		"float-le":  Cmp(LE, c("v"), ConstFloat(0.5)),
		"int-vs-float": And(
			Cmp(GT, c("k"), ConstFloat(0.5)),
			Cmp(NE, c("k"), ConstInt(4))),
		"string-eq": Cmp(EQ, c("s"), ConstStr("s3")),
		"string-gt": Cmp(GT, c("s"), ConstStr("s5")),
		"col-col":   Cmp(LT, c("k"), c("k2")),
		"in":        In(c("s"), Str("s1"), Str("s2"), Str("s7")),
		"isnull":    IsNull(c("k")),
		"not-null":  Not(IsNull(c("k"))),
		"or-fallback": Or(
			Cmp(EQ, c("k"), ConstInt(0)),
			Cmp(GT, c("v"), ConstFloat(0.9))),
		"arith-fallback": Cmp(EQ, Arith(ModOp, c("k"), ConstInt(2)), ConstInt(0)),
	}
}

// randColInput builds a relation (k int, k2 int, s string, v float)
// with NULLs sprinkled into k and s.
func randColInput(r *rand.Rand, n int, prefix string) *Relation {
	rel := NewRelation(NewSchema(
		Column{Name: prefix + ".k", Kind: KindInt},
		Column{Name: prefix + ".k2", Kind: KindInt},
		Column{Name: prefix + ".s", Kind: KindString},
		Column{Name: prefix + ".v", Kind: KindFloat},
	))
	for i := 0; i < n; i++ {
		k := Int(int64(r.Intn(6)))
		if r.Intn(15) == 0 {
			k = Null()
		}
		s := Str(fmt.Sprintf("s%d", r.Intn(9)))
		if r.Intn(25) == 0 {
			s = Null()
		}
		rel.Append(Tuple{k, Int(int64(r.Intn(6))), s, Float(r.Float64())})
	}
	return rel
}

// TestFilterColumnarRowEquivalence runs every predicate shape through
// the row filter path, the columnar filter path (vectorized kernels
// over typed vectors), and the transposing adapter, asserting
// identical result multisets.
func TestFilterColumnarRowEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rel := randColInput(rng, 500, "t")
		for name, pred := range randPredicates("t") {
			t.Run(fmt.Sprintf("seed=%d/%s", seed, name), func(t *testing.T) {
				want := mustDrain(t, NewFilter(NewScan(rel), pred))
				// Columnar-native source: typed kernels.
				got := mustDrain(t, NewFilter(newColSource(rel, 64), pred))
				if !want.EqualAsBag(got) {
					t.Fatalf("columnar filter diverged (%d vs %d rows)", want.Len(), got.Len())
				}
				// Row source driven through NextColBatch explicitly: the
				// transposing adapter feeds generic vectors to the kernels.
				f := NewFilter(NewScan(rel), pred)
				if err := f.Open(); err != nil {
					t.Fatal(err)
				}
				adapted := NewRelation(f.Schema())
				for {
					cb, ok, err := f.NextColBatch()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
					adapted.Rows = append(adapted.Rows, cb.Materialize(nil)...)
				}
				f.Close()
				if !want.EqualAsBag(adapted) {
					t.Fatalf("adapted columnar filter diverged (%d vs %d rows)",
						want.Len(), adapted.Len())
				}
			})
		}
	}
}

// TestRandomPlanColumnarRowEquivalence is the end-to-end property
// test: randomized plans (filters, projections, equi-joins with
// residuals, NULL keys, semi/anti joins) evaluated through the row
// path, the columnar path, and the parallel operators must produce the
// same result multiset. Run under -race this also proves the parallel
// path race-clean over the shared columnar inputs.
func TestRandomPlanColumnarRowEquivalence(t *testing.T) {
	pairs := []EquiPair{{L: "l.k", R: "r.k"}}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		l := randColInput(rng, 300+rng.Intn(400), "l")
		r := randColInput(rng, 300+rng.Intn(400), "r")
		lpreds := randPredicates("l")
		residuals := map[string]Expr{
			"none":  nil,
			"ne":    Cmp(NE, Col("l.s"), Col("r.s")),
			"float": Cmp(LT, Col("l.v"), Col("r.v")),
		}
		proj := []string{"l.k", "r.s", "l.v"}
		for pname, pred := range lpreds {
			for rname, residual := range residuals {
				name := fmt.Sprintf("seed=%d/pred=%s/res=%s", seed, pname, rname)
				t.Run(name, func(t *testing.T) {
					build := func(lsrc, rsrc Iterator, workers int) Iterator {
						fl := NewFilter(lsrc, pred)
						var jn Iterator
						if workers > 1 {
							jn = NewParallelHashJoin(fl, rsrc, pairs, residual, workers)
						} else {
							jn = NewHashJoin(fl, rsrc, pairs, residual)
						}
						return NewProject(jn, proj)
					}
					want := mustDrain(t, build(NewScan(l), NewScan(r), 1))
					colGot := mustDrain(t, build(newColSource(l, 128), newColSource(r, 77), 1))
					if !want.EqualAsBag(colGot) {
						t.Fatalf("columnar plan diverged (%d vs %d rows)", want.Len(), colGot.Len())
					}
					parGot := mustDrain(t, build(newColSource(l, 128), newColSource(r, 77), 4))
					if !want.EqualAsBag(parGot) {
						t.Fatalf("parallel columnar plan diverged (%d vs %d rows)", want.Len(), parGot.Len())
					}
					// Semi and anti joins share the hashed-key table.
					for _, anti := range []bool{false, true} {
						sj := mustDrain(t, NewSemiJoin(NewScan(l), NewScan(r), pairs, residual, anti))
						sjCol := mustDrain(t, NewSemiJoin(newColSource(l, 99), newColSource(r, 99), pairs, residual, anti))
						if !sj.EqualAsBag(sjCol) {
							t.Fatalf("semi(anti=%v) diverged (%d vs %d rows)", anti, sj.Len(), sjCol.Len())
						}
					}
				})
			}
		}
	}
}

// TestKeylessSemiJoin pins the no-equi-pair semi join semantics on the
// hashed table: every right row is a candidate for every left row.
func TestKeylessSemiJoin(t *testing.T) {
	l := testRel([]string{"a"}, [][]int64{{1}, {2}, {3}})
	r := testRel([]string{"b"}, [][]int64{{2}, {3}, {4}})
	res := Cmp(LT, Col("a"), Col("b"))
	got := mustDrain(t, NewSemiJoin(NewScan(l), NewScan(r), nil, res, false))
	if got.Len() != 3 { // every a has some b > a
		t.Fatalf("semi: got %v", got.Rows)
	}
	anti := mustDrain(t, NewSemiJoin(NewScan(l), NewScan(r), nil, Cmp(GT, Col("a"), Col("b")), true))
	// a=1: no b < 1 → kept; a=2: no b < 2 → kept; a=3: b=2 matches → dropped.
	if anti.Len() != 2 {
		t.Fatalf("anti: got %v", anti.Rows)
	}
}

// TestProjectColumnarZeroCopy checks the columnar projection re-slices
// vectors and preserves results and schema.
func TestProjectColumnarZeroCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel := randColInput(rng, 257, "t")
	want := mustDrain(t, NewProject(NewScan(rel), []string{"t.v", "t.k"}))
	got := mustDrain(t, NewProject(newColSource(rel, 50), []string{"t.v", "t.k"}))
	if !want.EqualAsBag(got) {
		t.Fatalf("columnar project diverged")
	}
	if !want.Sch.Equal(got.Sch) {
		t.Fatalf("schema diverged: %v vs %v", want.Sch, got.Sch)
	}
}

// TestFilterProjectColumnarChain checks that a filter-project chain
// above a columnar source stays columnar (ColumnarNative) and agrees
// with the row path.
func TestFilterProjectColumnarChain(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := randColInput(rng, 700, "t")
	pred := And(Cmp(GE, Col("t.k"), ConstInt(1)), Cmp(LT, Col("t.v"), ConstFloat(0.8)))
	mk := func(src Iterator) Iterator {
		return NewProject(NewFilter(src, pred), []string{"t.s", "t.k"})
	}
	colIt := mk(newColSource(rel, 128))
	if err := colIt.Open(); err != nil {
		t.Fatal(err)
	}
	if c, ok := NativeColumnar(colIt); !ok {
		t.Fatal("filter-project chain over a columnar source should be ColumnarNative")
	} else if !c.ColumnarNative() {
		t.Fatal("ColumnarNative must report true")
	}
	colIt.Close()
	want := mustDrain(t, mk(NewScan(rel)))
	got := mustDrain(t, mk(newColSource(rel, 128)))
	if !want.EqualAsBag(got) {
		t.Fatal("columnar chain diverged")
	}
	// A chain over a row scan must not claim to be columnar.
	rowIt := mk(NewScan(rel))
	if err := rowIt.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok := NativeColumnar(rowIt); ok {
		t.Fatal("chain over a row scan must not be ColumnarNative")
	}
	rowIt.Close()
}
