package engine

import (
	"fmt"
	"strings"
	"time"

	"urel/internal/obs"
)

// ExplainAnalyze optimizes (unless disabled), lowers with tracing,
// and actually executes the plan, returning the annotated plan text,
// the span tree, and the materialized result. Each line carries the
// operator's actual rows/batches/inclusive time next to the
// build-time estimate; nodes whose estimate is off by more than
// obs.DriftLimit× are flagged est-drift, and store-backed scans report
// their segment/cache statistics.
func ExplainAnalyze(p Plan, cat *Catalog, cfg ExecConfig) (string, *obs.Span, *Relation, error) {
	if !cfg.DisableOptimizer {
		var err error
		p, err = Optimize(p, cat)
		if err != nil {
			return "", nil, nil, err
		}
	}
	root := obs.NewSpan("query")
	cfg.Trace = root
	cfg.DisableOptimizer = true // already optimized above
	it, err := Build(p, cat, cfg)
	if err != nil {
		return "", nil, nil, err
	}
	start := time.Now()
	rel, err := Drain(it)
	elapsed := time.Since(start)
	if err != nil {
		return "", root, nil, err
	}
	var b strings.Builder
	for _, c := range root.Children() {
		c.Render(&b)
	}
	fmt.Fprintf(&b, "Execution: %d rows in %s\n", rel.Len(), elapsed.Round(time.Microsecond))
	return b.String(), root, rel, nil
}
