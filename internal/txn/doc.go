// Package txn is the write path of the store: it turns the read-only
// columnar snapshots of internal/store into mutable U-relational
// databases with durable, crash-safe DML and MVCC snapshot reads.
//
// The design carries the paper's central claim — U-relations are just
// relations, so queries evaluate purely relationally on the
// representation (Antova, Jansen, Koch, Olteanu, "Fast and Simple
// Relational Processing of Uncertain Data", ICDE 2008, Section 3) —
// over to updates:
//
//   - INSERT ... VALUES appends certain tuples: representation rows
//     with the empty ws-descriptor (present in every world, Section 2)
//     scattered across the relation's vertical partitions under fresh
//     tuple ids.
//   - INSERT ... SELECT evaluates the source query with the
//     tuple-level translation (TranslateFull, the Section 4 form whose
//     descriptors characterize world membership exactly) and inserts
//     its rows with descriptors preserved — uncertain data moves
//     between relations without leaving the representation.
//   - DELETE FROM R WHERE φ runs σ_φ over the merged representation
//     of R (the merge operator of Figure 4: partitions joined on
//     tuple id, ψ discarding inconsistent descriptor combinations)
//     and tombstones every contributing partition row (D_p, t). It is
//     itself just a relational query whose answer is a set of delta
//     rows.
//   - UPDATE is delete plus reinsertion of the matched rows with the
//     assigned attributes replaced, same descriptors and tuple ids —
//     the relational view of attribute-level uncertain update.
//
// Durability and atomicity follow the classic WAL recipe:
//
//   - Every commit is one length-prefixed, CRC32-framed record,
//     fsynced before the statement returns; replay on Open discards a
//     torn tail and restores everything acknowledged.
//   - Commits apply to per-partition memtables (inserted rows plus
//     layer-scoped tombstone batches) and publish a fresh immutable
//     snapshot; readers pin an epoch and never see a partial commit.
//   - A background flusher spills memtables into delta segment files;
//     a compactor folds tombstones into rewritten bases. Both commit
//     their transition by atomically renaming the manifest (the PR 2
//     crash-safety rule: the manifest is written last) and rotate the
//     WAL so it only ever describes state the segment files lack.
//
// The uncertainty-aware write path is what makes maintaining certain
// and possible answers under updates cheap, in the spirit of
// Uncertainty Annotated Databases (Feng, Huber, Glavic, Kennedy,
// SIGMOD 2019) and of conditioning U-relational databases (Koch,
// Olteanu, "Conditioning probabilistic databases", VLDB 2008): because
// updates stay inside the representation, every read mode (plain,
// possible, certain, conf) keeps working unchanged on a database that
// is being written to.
package txn
