package txn

import (
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/store"
)

// TestReadOnlyOpenSeesWALCommits: a plain store.Open of a directory a
// writer committed to (without flushing) must replay the WAL read-only
// and serve the committed state — unflushed inserts, deletes, and
// updates included — without modifying any file.
func TestReadOnlyOpenSeesWALCommits(t *testing.T) {
	d, ref := openFixture(t)
	exec(t, d, ref, "insert into r values (41, 42, 43)")
	exec(t, d, ref, "delete from r where a = 1")
	exec(t, d, ref, "update r set c = 7 where a = 3")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := store.Open(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if msg, ok := equalDump(dump(t, ro), dump(t, ref.db)); !ok {
		t.Fatalf("read-only open diverged from committed state: %s", msg)
	}
	got := possRows(t, ro, core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.ConstInt(41))))
	if len(got) != 1 {
		t.Fatalf("read-only open misses the unflushed insert: %v", got)
	}

	// And the writer can still reopen afterwards (the read-only open
	// must not have truncated or rotated anything).
	d2, err := Open(d.Dir(), Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	requireSame(t, d2, ref, "writable reopen after read-only open")
}
