package txn

import (
	"fmt"
	"sort"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/ws"
)

// This file turns DML statements into commit ops by running ordinary
// relational plans over the current snapshot — the paper's claim that
// U-relations are just relations, carried to the write path:
//
//   - INSERT ... VALUES appends certain rows (empty ws-descriptor) to
//     every vertical partition of the relation under fresh tuple ids;
//   - INSERT ... SELECT evaluates the source query on the
//     representation (tuple-level translation) and appends its rows,
//     descriptors preserved, under fresh tuple ids;
//   - DELETE evaluates σ_φ over the merged representation of the
//     relation (Figure 4's merge: partitions joined on tuple id with
//     consistent descriptors) and tombstones, per partition, every
//     contributing representation row — i.e. it removes the tuples
//     that possibly satisfy φ, in all of those rows' worlds;
//   - UPDATE is DELETE plus reinsertion of the matched rows with the
//     assigned attributes replaced (same tuple ids and descriptors),
//     restricted to the partitions covering an assigned attribute.
//
// Matching assumes a valid database (Definition 2.2): partitions
// sharing an attribute agree on its value in shared worlds, so the
// merged row determines every partition row's values.

// buildOps translates one DML statement into ops against the given
// snapshot. maxTID supplies the per-relation tuple-id allocator floor;
// layerGen reports each partition's current file-layer count (the
// scope recorded on tombstone batches).
func buildOps(udb *core.UDB, maxTID map[string]int64, layerGen func(partKey) int,
	st sqlparse.Statement, workers int) ([]store.WALOp, *Result, error) {
	switch s := st.(type) {
	case *sqlparse.InsertStmt:
		return buildInsert(udb, maxTID, s, workers)
	case *sqlparse.DeleteStmt:
		return buildDelete(udb, layerGen, s, workers)
	case *sqlparse.UpdateStmt:
		return buildUpdate(udb, layerGen, s, workers)
	default:
		return nil, nil, fmt.Errorf("txn: unsupported statement %T", st)
	}
}

// resolveCols validates an explicit column list (or defaults to the
// relation's full attribute list) and returns, per column, its index
// in the relation's attribute order.
func resolveCols(rs *core.URelSet, rel string, cols []string) ([]int, error) {
	if len(cols) == 0 {
		out := make([]int, len(rs.Attrs))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(cols))
	seen := map[string]bool{}
	for i, c := range cols {
		if seen[c] {
			return nil, fmt.Errorf("txn: column %q listed twice", c)
		}
		seen[c] = true
		idx := -1
		for ai, a := range rs.Attrs {
			if a == c {
				idx = ai
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("txn: relation %q has no attribute %q", rel, c)
		}
		out[i] = idx
	}
	return out, nil
}

func buildInsert(udb *core.UDB, maxTID map[string]int64, st *sqlparse.InsertStmt, workers int) ([]store.WALOp, *Result, error) {
	rs, ok := udb.Rels[st.Table]
	if !ok {
		return nil, nil, fmt.Errorf("txn: unknown relation %q", st.Table)
	}
	colIdx, err := resolveCols(rs, st.Table, st.Cols)
	if err != nil {
		return nil, nil, err
	}

	// Source rows: literal VALUES tuples (certain), or a query result
	// (descriptors preserved).
	type srcRow struct {
		d    ws.Descriptor
		vals []engine.Value // in colIdx order
	}
	var src []srcRow
	switch {
	case st.Select == nil:
		for _, row := range st.Rows {
			if len(row) != len(colIdx) {
				return nil, nil, fmt.Errorf("txn: INSERT expects %d values, got %d", len(colIdx), len(row))
			}
			src = append(src, srcRow{vals: row})
		}
	case st.Select.Mode == sqlparse.ModePossible:
		rel, err := udb.EvalPoss(st.Select.Query, engine.ExecConfig{Parallelism: workers})
		if err != nil {
			return nil, nil, err
		}
		if rel.Sch.Len() != len(colIdx) {
			return nil, nil, fmt.Errorf("txn: INSERT expects %d columns, SELECT produces %d", len(colIdx), rel.Sch.Len())
		}
		for _, t := range rel.Rows {
			src = append(src, srcRow{vals: t})
		}
	default:
		res, err := udb.Eval(st.Select.Query, engine.ExecConfig{Parallelism: workers})
		if err != nil {
			return nil, nil, err
		}
		if len(res.Attrs) != len(colIdx) {
			return nil, nil, fmt.Errorf("txn: INSERT expects %d columns, SELECT produces %d", len(colIdx), len(res.Attrs))
		}
		for _, r := range res.Rows {
			src = append(src, srcRow{d: r.D, vals: r.Vals})
		}
	}

	// Scatter each source row across the relation's partitions under a
	// fresh tuple id; unlisted attributes insert as NULL. The partition
	// attribute -> relation attribute mapping is loop-invariant, so it
	// is resolved once, not per row.
	relIdx := map[string]int{}
	for ai, a := range rs.Attrs {
		relIdx[a] = ai
	}
	partAttrIdx := make([][]int, len(rs.Parts))
	for pi, p := range rs.Parts {
		partAttrIdx[pi] = make([]int, len(p.Attrs))
		for vi, a := range p.Attrs {
			partAttrIdx[pi][vi] = relIdx[a]
		}
	}
	next := maxTID[st.Table]
	perPart := make([][]core.URow, len(rs.Parts))
	for i, sr := range src {
		tid := next + int64(i) + 1
		full := make([]engine.Value, len(rs.Attrs))
		for fi := range full {
			full[fi] = engine.Null()
		}
		for ci, ai := range colIdx {
			full[ai] = sr.vals[ci]
		}
		for pi := range rs.Parts {
			idx := partAttrIdx[pi]
			vals := make([]engine.Value, len(idx))
			for vi, ai := range idx {
				vals[vi] = full[ai]
			}
			perPart[pi] = append(perPart[pi], core.URow{D: sr.d, TID: tid, Vals: vals})
		}
	}
	var ops []store.WALOp
	repr := 0
	for pi, rows := range perPart {
		if len(rows) == 0 {
			continue
		}
		repr += len(rows)
		ops = append(ops, store.WALOp{Rel: st.Table, Part: pi, Rows: rows})
	}
	return ops, &Result{Kind: "insert", Tuples: len(src), ReprRows: repr}, nil
}

// matchPlan evaluates σ_where over the relation's full merged
// representation and returns the raw (undecoded) result together with
// the layout and the merge's partition picks — everything needed to
// recover each contributing partition row's own descriptor.
type matchResult struct {
	rel     *engine.Relation
	tidIdx  int
	attrIdx map[string]int // relation attribute -> result column
	picks   []pick
}

type pick struct {
	pidx    int
	pairIdx [][2]int // (var, rng) result columns per descriptor slot
}

func matchPlan(udb *core.UDB, table string, where engine.Expr, workers int) (*matchResult, error) {
	rs, ok := udb.Rels[table]
	if !ok {
		return nil, fmt.Errorf("txn: unknown relation %q", table)
	}
	var q core.Query = core.Rel(table)
	if where != nil {
		q = core.Select(q, where)
	}
	plan, lay, err := udb.TranslateFull(q)
	if err != nil {
		return nil, err
	}
	rel, err := engine.Run(plan, engine.NewCatalog(), engine.ExecConfig{Parallelism: workers})
	if err != nil {
		return nil, err
	}
	out := &matchResult{rel: rel, attrIdx: map[string]int{}}
	out.tidIdx = rel.Sch.IndexOf(lay.TIDs[0])
	if out.tidIdx < 0 {
		return nil, fmt.Errorf("txn: internal: tid column %q missing from match result", lay.TIDs[0])
	}
	for _, a := range rs.Attrs {
		idx := rel.Sch.IndexOf(table + "." + a)
		if idx < 0 {
			return nil, fmt.Errorf("txn: internal: attribute column %q missing from match result", table+"."+a)
		}
		out.attrIdx[a] = idx
	}
	// The translation reports which partitions its merge included and
	// their descriptor-pair columns (ULayout.Picks) — the single source
	// of truth, so the write path can never diverge from the cover the
	// plan actually used. Column resolution failures are loud.
	if len(lay.Picks) == 0 {
		return nil, fmt.Errorf("txn: internal: translation of %s reported no partition picks", table)
	}
	for _, lp := range lay.Picks {
		pk := pick{pidx: lp.Part}
		for _, dp := range lp.DPairs {
			vi := rel.Sch.IndexOf(dp[0])
			ri := rel.Sch.IndexOf(dp[1])
			if vi < 0 || ri < 0 {
				return nil, fmt.Errorf("txn: internal: descriptor columns %v of %s partition %d missing from match result", dp, table, lp.Part)
			}
			pk.pairIdx = append(pk.pairIdx, [2]int{vi, ri})
		}
		out.picks = append(out.picks, pk)
	}
	return out, nil
}

// rowDescriptor decodes one pick's padded descriptor from a match row.
func rowDescriptor(row engine.Tuple, pairIdx [][2]int) (ws.Descriptor, error) {
	var assigns []ws.Assignment
	for _, pr := range pairIdx {
		x := ws.Var(row[pr[0]].I)
		if x == ws.TrivialVar {
			continue
		}
		assigns = append(assigns, ws.A(x, ws.Val(row[pr[1]].I)))
	}
	return ws.NewDescriptor(assigns...)
}

// tombAcc accumulates one partition's deduplicated tombstones (and,
// for UPDATE, the matching reinserts) keyed by tuple id — no string
// keys or descriptor formatting on the hot write path.
type tombAcc struct {
	byTID map[int64]*tidTombs
	n     int
}

type tidTombs struct {
	wild bool
	ds   []ws.Descriptor
	rows []core.URow // UPDATE reinserts, parallel to ds
}

func newTombAcc() *tombAcc { return &tombAcc{byTID: map[int64]*tidTombs{}} }

// addWild records a wildcard tombstone for the tuple id.
func (a *tombAcc) addWild(tid int64) {
	tt := a.byTID[tid]
	if tt == nil {
		tt = &tidTombs{}
		a.byTID[tid] = tt
	}
	if !tt.wild {
		tt.wild = true
		a.n++
	}
}

// add records a descriptor-exact tombstone; it reports whether the
// identity was new (so UPDATE appends exactly one reinsert per row).
func (a *tombAcc) add(tid int64, d ws.Descriptor) bool {
	tt := a.byTID[tid]
	if tt == nil {
		tt = &tidTombs{}
		a.byTID[tid] = tt
	}
	for _, e := range tt.ds {
		if store.DescriptorEqual(e, d) {
			return false
		}
	}
	tt.ds = append(tt.ds, d)
	a.n++
	return true
}

// flatten produces the sorted tombstone batch (and the reinsert rows,
// when any were recorded).
func (a *tombAcc) flatten() ([]store.WALTomb, []core.URow) {
	tombs := make([]store.WALTomb, 0, a.n)
	var rows []core.URow
	for tid, tt := range a.byTID {
		if tt.wild {
			tombs = append(tombs, store.WALTomb{TID: tid, Wild: true})
		}
		for _, d := range tt.ds {
			tombs = append(tombs, store.WALTomb{TID: tid, D: d})
		}
		rows = append(rows, tt.rows...)
	}
	sortTombs(tombs)
	sortURowsStable(rows)
	return tombs, rows
}

func buildDelete(udb *core.UDB, layerGen func(partKey) int, st *sqlparse.DeleteStmt, workers int) ([]store.WALOp, *Result, error) {
	rs := udb.Rels[st.Table]
	m, err := matchPlan(udb, st.Table, st.Where, workers)
	if err != nil {
		return nil, nil, err
	}
	perPart := make([]*tombAcc, len(rs.Parts))
	for i := range perPart {
		perPart[i] = newTombAcc()
	}
	picked := map[int]bool{}
	for _, pk := range m.picks {
		picked[pk.pidx] = true
	}
	tids := map[int64]bool{}
	for _, row := range m.rel.Rows {
		tid := row[m.tidIdx].I
		tids[tid] = true
		for _, pk := range m.picks {
			d, err := rowDescriptor(row, pk.pairIdx)
			if err != nil {
				return nil, nil, fmt.Errorf("txn: delete: %v", err)
			}
			perPart[pk.pidx].add(tid, d)
		}
		// Partitions the merge skipped (their attributes fully covered
		// elsewhere) still hold rows of the tuple: wildcard them.
		for pidx := range rs.Parts {
			if !picked[pidx] {
				perPart[pidx].addWild(tid)
			}
		}
	}
	ops, nTombs := tombOps(st.Table, perPart, layerGen)
	return ops, &Result{Kind: "delete", Tuples: len(tids), Tombstones: nTombs}, nil
}

func buildUpdate(udb *core.UDB, layerGen func(partKey) int, st *sqlparse.UpdateStmt, workers int) ([]store.WALOp, *Result, error) {
	rs, ok := udb.Rels[st.Table]
	if !ok {
		return nil, nil, fmt.Errorf("txn: unknown relation %q", st.Table)
	}
	set := map[string]engine.Value{}
	for _, sc := range st.Set {
		found := false
		for _, a := range rs.Attrs {
			if a == sc.Col {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("txn: relation %q has no attribute %q", st.Table, sc.Col)
		}
		if _, dup := set[sc.Col]; dup {
			return nil, nil, fmt.Errorf("txn: attribute %q assigned twice", sc.Col)
		}
		set[sc.Col] = sc.Val
	}
	touches := func(p *core.URelation) bool {
		for _, a := range p.Attrs {
			if _, ok := set[a]; ok {
				return true
			}
		}
		return false
	}

	m, err := matchPlan(udb, st.Table, st.Where, workers)
	if err != nil {
		return nil, nil, err
	}
	perPart := make([]*tombAcc, len(rs.Parts))
	for i := range perPart {
		perPart[i] = newTombAcc()
	}
	picked := map[int]bool{}
	for _, pk := range m.picks {
		picked[pk.pidx] = true
	}
	tids := map[int64]bool{}
	for _, row := range m.rel.Rows {
		tid := row[m.tidIdx].I
		tids[tid] = true
		for _, pk := range m.picks {
			p := rs.Parts[pk.pidx]
			if !touches(p) {
				continue
			}
			d, err := rowDescriptor(row, pk.pairIdx)
			if err != nil {
				return nil, nil, fmt.Errorf("txn: update: %v", err)
			}
			if !perPart[pk.pidx].add(tid, d) {
				continue // join multiplicity: already tombstoned + reinserted
			}
			vals := make([]engine.Value, len(p.Attrs))
			for vi, a := range p.Attrs {
				if nv, ok := set[a]; ok {
					vals[vi] = nv
				} else {
					vals[vi] = row[m.attrIdx[a]]
				}
			}
			tt := perPart[pk.pidx].byTID[tid]
			tt.rows = append(tt.rows, core.URow{D: d, TID: tid, Vals: vals})
		}
		// A skipped partition covering an assigned attribute would keep
		// serving the old value: wildcard-delete its rows for the tuple.
		// (Its attributes are covered by a picked partition, so the
		// updated values remain fully represented.)
		for pidx, p := range rs.Parts {
			if picked[pidx] || !touches(p) {
				continue
			}
			perPart[pidx].addWild(tid)
		}
	}
	ops, nTombs := tombOps(st.Table, perPart, layerGen)
	// Attach each partition's reinserts as a follow-up insert op
	// (tombstones must apply first — see PartDelta.ApplyOp).
	repr := 0
	reprByPart := map[int][]core.URow{}
	for pidx, acc := range perPart {
		_, rows := acc.flatten()
		if len(rows) > 0 {
			reprByPart[pidx] = rows
			repr += len(rows)
		}
	}
	for pidx := 0; pidx < len(rs.Parts); pidx++ {
		if rows, ok := reprByPart[pidx]; ok {
			ops = append(ops, store.WALOp{Rel: st.Table, Part: pidx, Rows: rows})
		}
	}
	return ops, &Result{Kind: "update", Tuples: len(tids), ReprRows: repr, Tombstones: nTombs}, nil
}

// tombOps flattens per-partition tombstone accumulators into ops
// (stable order: by tid, then descriptor), one batch per partition.
func tombOps(rel string, perPart []*tombAcc, layerGen func(partKey) int) ([]store.WALOp, int) {
	var ops []store.WALOp
	n := 0
	for pidx, acc := range perPart {
		if acc.n == 0 {
			continue
		}
		batch, _ := acc.flatten()
		n += len(batch)
		ops = append(ops, store.WALOp{Rel: rel, Part: pidx, Tombs: batch, Gen: layerGen(partKey{rel, pidx})})
	}
	return ops, n
}

func lessDescriptor(a, b ws.Descriptor) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i].Var != b[i].Var {
				return a[i].Var < b[i].Var
			}
			return a[i].Val < b[i].Val
		}
	}
	return len(a) < len(b)
}

func sortTombs(ts []store.WALTomb) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Wild != b.Wild {
			return !a.Wild
		}
		return lessDescriptor(a.D, b.D)
	})
}

func sortURowsStable(rows []core.URow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].TID != rows[j].TID {
			return rows[i].TID < rows[j].TID
		}
		return lessDescriptor(rows[i].D, rows[j].D)
	})
}

// Applier executes DML statements directly against a materialized
// in-memory database: the same op translation as the persistent write
// path, applied straight to the partition rows. Like the persistent
// store, its tuple-id allocator is monotonic across statements —
// deleting the highest tuple never recycles its id — so a statement
// sequence applied here is the exact reference semantics for the same
// sequence executed durably (the round-trip and crash-recovery
// property tests compare against it).
type Applier struct {
	db     *core.UDB
	maxTID map[string]int64
}

// NewApplier seeds an applier's tuple-id allocator from the database's
// current rows. The database must be materialized.
func NewApplier(db *core.UDB) (*Applier, error) {
	a := &Applier{db: db, maxTID: map[string]int64{}}
	for _, rel := range db.RelNames() {
		rs := db.Rels[rel]
		for _, p := range rs.Parts {
			if p.Back != nil {
				return nil, fmt.Errorf("txn: Apply requires a materialized database (partition %s is storage-backed)", p.Name)
			}
			for _, r := range p.Rows {
				if r.TID > a.maxTID[rel] {
					a.maxTID[rel] = r.TID
				}
			}
		}
	}
	return a, nil
}

// Apply executes one statement in place.
func (a *Applier) Apply(st sqlparse.Statement) (*Result, error) {
	if _, ok := st.(*sqlparse.Parsed); ok {
		return nil, fmt.Errorf("%w: txn: Apply wants a DML statement; run queries with EvalPoss/Eval", ErrStatement)
	}
	ops, res, err := buildOps(a.db, a.maxTID, func(partKey) int { return 0 }, st, 0)
	if err != nil {
		return nil, err
	}
	for _, o := range ops {
		u := a.db.Rels[o.Rel].Parts[o.Part]
		if len(o.Tombs) > 0 {
			b := store.NewTombBatch(o.Tombs, 0)
			kept := u.Rows[:0:len(u.Rows)]
			for _, r := range u.Rows {
				if b.Matches(r.TID, r.D) {
					continue
				}
				kept = append(kept, r)
			}
			u.Rows = kept
		}
		u.Rows = append(u.Rows, o.Rows...)
		for _, r := range o.Rows {
			if r.TID > a.maxTID[o.Rel] {
				a.maxTID[o.Rel] = r.TID
			}
		}
	}
	return res, nil
}

// Apply executes one DML statement against a materialized in-memory
// database (a fresh Applier per call: tuple ids restart above the
// current maximum stored id).
func Apply(db *core.UDB, st sqlparse.Statement) (*Result, error) {
	a, err := NewApplier(db)
	if err != nil {
		return nil, err
	}
	return a.Apply(st)
}
