package txn

import "urel/internal/obs"

// Process-wide write-path maintenance metrics on obs.Default: flush
// and compaction hold the commit lock, so their durations bound writer
// stalls. Commit/epoch/memtable gauges are per-catalog and register on
// the server's registry instead (see internal/server).
var (
	flushSeconds = obs.Default.Histogram("urel_flush_seconds",
		"Memtable flush duration (spill + WAL rotation + manifest rename).", nil)
	compactionSeconds = obs.Default.Histogram("urel_compaction_seconds",
		"Compaction duration (base rewrite + manifest rename + cleanup).", nil)
)
