package txn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"urel/internal/store"
)

// Compact rewrites every partition into a single fresh base file
// holding exactly its live rows: all file layers merged, each filtered
// by the tombstones scoped to it, plus the memtable rows — so deletes
// stop costing a per-row filter on every scan and the layer count
// returns to one. The successor WAL is empty (nothing remains
// memory-only) and the rewritten manifest is renamed into place as the
// crash-atomic commit point; the old segment files and WAL are then
// unlinked. Handles retired here are dropped from the segment cache
// and from the DB's own references, not closed: concurrent readers
// still scanning an older epoch keep working off the open (unlinked)
// files, and once the last such snapshot becomes unreachable the
// os.File finalizer closes the descriptor — resource use is bounded
// by live snapshots, not by compaction count.
func (d *DB) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

func (d *DB) compactLocked() error {
	if d.closed {
		return errClosed
	}
	if d.degraded {
		return errDegraded
	}
	defer func(start time.Time) { compactionSeconds.ObserveDuration(time.Since(start)) }(time.Now())
	gen := d.man.Epoch + 1

	// 1. Rewrite each partition's live rows into a fresh base file.
	type rewritten struct {
		pk   partKey
		file string
		rows int
		w    int
		h    *store.PartHandle
	}
	var rewrites []rewritten
	fail := func(err error) error {
		for _, rw := range rewrites {
			rw.h.Close()
			os.Remove(filepath.Join(d.dir, rw.file))
			store.RemoveIndexFiles(d.dir, rw.file)
		}
		return err
	}
	for ri, mr := range d.man.Relations {
		for pi, mp := range mr.Parts {
			pk := partKey{mr.Name, pi}
			src := &store.PartSource{Layers: d.layers[pk]}
			if m := d.mem[pk]; m != nil {
				m.Freeze(src)
			}
			rows, err := src.Load()
			if err != nil {
				return fail(fmt.Errorf("txn: compact %s/%d: %w", mr.Name, pi, err))
			}
			file := store.BaseFileName(ri, pi, gen)
			width, err := store.WritePartition(filepath.Join(d.dir, file), rows, len(mp.Attrs), store.DefaultSegmentRows)
			if err != nil {
				return fail(fmt.Errorf("txn: compact %s: %w", file, err))
			}
			// Best-effort, as in flush: a missing run degrades lookups
			// to scans, never the compaction.
			if err := store.WritePartIndexes(d.dir, file, rows, store.DeclaredIdxOrds(mr.Indexes, mp.Attrs), store.DefaultSegmentRows); err != nil {
				store.RemoveIndexFiles(d.dir, file)
			}
			h, err := store.OpenPart(filepath.Join(d.dir, file))
			if err != nil {
				os.Remove(filepath.Join(d.dir, file))
				return fail(fmt.Errorf("txn: compact %s: %w", file, err))
			}
			h.SetCache(d.opts.Cache)
			rewrites = append(rewrites, rewritten{pk: pk, file: file, rows: len(rows), w: width, h: h})
		}
	}

	// 2. The successor WAL: empty, since the rewrite folded every
	// memtable row and tombstone into the new bases.
	nw, err := store.CreateWAL(filepath.Join(d.dir, store.WALFileName(gen)))
	if err != nil {
		return fail(fmt.Errorf("txn: compact: %w", err))
	}

	// 3. Commit by manifest rename.
	man := d.man.Clone()
	for _, rw := range rewrites {
		for ri := range man.Relations {
			if man.Relations[ri].Name != rw.pk.rel {
				continue
			}
			mp := &man.Relations[ri].Parts[rw.pk.idx]
			mp.File = rw.file
			mp.Rows = rw.rows
			mp.Width = rw.w
			mp.Deltas = nil
		}
	}
	man.Epoch = gen
	man.WAL = store.WALFileName(gen)
	man.Version = store.FormatVersion
	for i := range man.Relations {
		man.Relations[i].MaxTID = d.maxTID[man.Relations[i].Name]
	}
	if err := store.WriteManifest(d.dir, man); err != nil {
		if errors.Is(err, store.ErrManifestUnsynced) {
			// As in flush: the rename committed, the new files are
			// referenced on disk and must survive; refuse further writes
			// and let a reopen recover.
			nw.Close()
			for _, rw := range rewrites {
				rw.h.Close()
			}
			d.degraded = true
			return fmt.Errorf("txn: compact: %w", err)
		}
		nw.Close()
		os.Remove(filepath.Join(d.dir, store.WALFileName(gen)))
		return fail(fmt.Errorf("txn: compact manifest: %w", err))
	}

	// 4. Adopt: swap the WAL, retire the old layers (cache-dropped,
	// unlinked, closed at DB.Close), install the new bases, clear the
	// memtables.
	oldWAL := d.wal
	d.wal = nw
	oldWAL.Close()
	os.Remove(oldWAL.Path())
	oldMan := d.man
	d.man = man
	// Retire the old layers: drop their cache entries and our
	// references, and unlink the files. Snapshots of older epochs keep
	// the handles (and with them the unlinked files' contents) alive
	// exactly as long as they are reachable; once the last snapshot is
	// collected, the os.File finalizer closes the descriptor — so
	// neither descriptors nor disk space accumulate across compactions.
	for _, mr := range oldMan.Relations {
		for pi, mp := range mr.Parts {
			pk := partKey{mr.Name, pi}
			for _, h := range d.layers[pk] {
				h.DropCached()
			}
			os.Remove(filepath.Join(d.dir, mp.File))
			store.RemoveIndexFiles(d.dir, mp.File)
			for _, md := range mp.Deltas {
				os.Remove(filepath.Join(d.dir, md.File))
				store.RemoveIndexFiles(d.dir, md.File)
			}
		}
	}
	for _, rw := range rewrites {
		d.layers[rw.pk] = []*store.PartHandle{rw.h}
		d.mem[rw.pk] = &store.PartDelta{}
	}
	d.compactions.Add(1)
	d.publishLocked()
	return nil
}
