package txn

// Split-brain fencing. A promoted replica bumps the Fence epoch in its
// manifest past its dead upstream's; coordinated writes carry the
// coordinator's view of the epoch (cluster.FenceHeader), and a primary
// asked to write under a higher epoch has been superseded — it
// persists the witnessed epoch (FencedBy) BEFORE refusing, so a
// resurrected old primary stays fenced across restarts even if the
// coordinator never contacts it again.

import (
	"fmt"

	"urel/internal/store"
)

// FenceError is the typed refusal of a fenced write. Own is this
// store's authority epoch (clients adopt it when theirs was stale),
// Incoming the epoch the write carried, and Superseded whether this
// store has witnessed a higher epoch than its own — i.e. it is an old
// primary that must never accept writes again.
type FenceError struct {
	Own        uint64
	Incoming   uint64
	Superseded bool
}

func (e *FenceError) Error() string {
	if e.Superseded {
		return fmt.Sprintf("txn: writes fenced: a replica was promoted at epoch %d past this primary's epoch %d (rebuild this node as a follower of the new primary)", e.Incoming, e.Own)
	}
	return fmt.Sprintf("txn: write carries stale fence epoch %d, this primary owns epoch %d (refresh the topology)", e.Incoming, e.Own)
}

// Fences returns the store's own fencing epoch and the highest foreign
// epoch it has witnessed.
func (d *DB) Fences() (own, fencedBy uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.man.Fence, d.man.FencedBy
}

// fencedLocked reports whether the store has been superseded by a
// promotion (witnessed epoch higher than its own).
func (d *DB) fencedLocked() bool { return d.man.FencedBy > d.man.Fence }

// CheckFence validates the fencing epoch of an incoming coordinated
// write. Equal epochs pass. A HIGHER incoming epoch means a replica
// was promoted past this store: the witnessed epoch is durably
// recorded, then the write refused — permanently, ExecStmt refuses
// everything once superseded. A LOWER incoming epoch means the caller
// is stale; the returned FenceError carries Own so it can adopt the
// current epoch and retry against the right primary.
func (d *DB) CheckFence(incoming uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	own := d.man.Fence
	if d.fencedLocked() {
		return &FenceError{Own: own, Incoming: d.man.FencedBy, Superseded: true}
	}
	switch {
	case incoming == own:
		return nil
	case incoming > own:
		man := d.man.Clone()
		man.FencedBy = incoming
		if err := store.WriteManifest(d.dir, man); err != nil {
			// Could not persist the witness; still refuse the write, but
			// the fence will have to be re-witnessed after a restart.
			return &FenceError{Own: own, Incoming: incoming, Superseded: true}
		}
		d.man = man
		return &FenceError{Own: own, Incoming: incoming, Superseded: true}
	default:
		return &FenceError{Own: own, Incoming: incoming}
	}
}
