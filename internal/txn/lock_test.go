//go:build unix

package txn

import (
	"strings"
	"testing"

	"urel/internal/store"
)

// TestSecondWritableOpenFails: the flock excludes a second writable
// open of the same directory (two writers on one WAL would interleave
// frames); releasing the first allows the second.
func TestSecondWritableOpenFails(t *testing.T) {
	base := fixtureDB()
	dir := t.TempDir()
	if err := store.Save(base, dir); err != nil {
		t.Fatal(err)
	}
	d1, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{DisableAutoFlush: true}); err == nil {
		t.Fatal("second writable open must fail while the first holds the lock")
	} else if !strings.Contains(err.Error(), "already open for writing") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Read-only opens are unaffected.
	ro, err := store.Open(dir)
	if err != nil {
		t.Fatalf("read-only open blocked by writer lock: %v", err)
	}
	ro.Close()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	d2.Close()
}
