//go:build !unix

package txn

// Non-unix platforms get no advisory writer exclusion (flock is not
// portable); the single-writer requirement is then on the operator,
// as documented on DB.
type dirLock struct{}

func acquireDirLock(string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) release() {}
