package txn

import (
	"errors"
	"fmt"

	"urel/internal/sqlparse"
	"urel/internal/store"
)

// createIndexLocked executes CREATE INDEX ON table(col): sorted runs
// are built for every existing file layer of every partition that
// stores the column, and the column is recorded in the manifest so
// future flushes and compactions keep building runs beside each new
// layer. The statement is not WAL-logged — the manifest entry is the
// durable record, and the runs themselves are reconstructible
// (a missing or stale run only degrades lookups to scans).
//
// Declaring the same index twice is a no-op; only the manifest commit
// makes the declaration (and the already-written runs) visible, so a
// crash mid-build leaves orphan run files that the next Open removes.
func (d *DB) createIndexLocked(st *sqlparse.CreateIndexStmt) (*Result, error) {
	if d.closed {
		return nil, errClosed
	}
	if d.degraded {
		return nil, errDegraded
	}
	if d.fencedLocked() {
		return nil, &FenceError{Own: d.man.Fence, Incoming: d.man.FencedBy, Superseded: true}
	}
	ri := -1
	for i := range d.man.Relations {
		if d.man.Relations[i].Name == st.Table {
			ri = i
			break
		}
	}
	if ri < 0 {
		return nil, fmt.Errorf("%w: unknown relation %q", ErrStatement, st.Table)
	}
	mr := &d.man.Relations[ri]
	found := false
	for _, a := range mr.Attrs {
		if a == st.Col {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: relation %q has no attribute %q", ErrStatement, st.Table, st.Col)
	}
	for _, ix := range mr.Indexes {
		if ix == st.Col {
			// Already declared: runs exist (or are rebuilt lazily by the
			// next flush/compaction); nothing to do.
			return &Result{Kind: "create_index", Epoch: d.state.Load().epoch}, nil
		}
	}

	// Build runs for every existing layer of each partition storing the
	// column. Unlike the flush-time builds this one is NOT best-effort:
	// the user asked for the index now, so a build failure fails the
	// statement (already-written runs are orphans the next Open removes).
	for pi, mp := range mr.Parts {
		ai := -1
		for j, a := range mp.Attrs {
			if a == st.Col {
				ai = j
				break
			}
		}
		if ai < 0 {
			continue
		}
		for _, h := range d.layers[partKey{mr.Name, pi}] {
			if err := store.BuildLayerIndex(h, ai); err != nil {
				return nil, fmt.Errorf("txn: create index %s(%s): %w", st.Table, st.Col, err)
			}
		}
	}

	// Commit the declaration by manifest rename, then publish a fresh
	// snapshot whose PartSources advertise the new indexed column.
	man := d.man.Clone()
	man.Relations[ri].Indexes = append(man.Relations[ri].Indexes, st.Col)
	for i := range man.Relations {
		man.Relations[i].MaxTID = d.maxTID[man.Relations[i].Name]
	}
	if err := store.WriteManifest(d.dir, man); err != nil {
		if errors.Is(err, store.ErrManifestUnsynced) {
			d.man = man
			d.degraded = true
			return nil, fmt.Errorf("txn: create index: %w", err)
		}
		return nil, fmt.Errorf("txn: create index manifest: %w", err)
	}
	d.man = man
	d.publishLocked()
	return &Result{Kind: "create_index", Epoch: d.state.Load().epoch}, nil
}
