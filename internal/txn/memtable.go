package txn

// partKey addresses one vertical partition of the catalog. The
// per-partition in-memory delta itself (rows + tombstone batches,
// with the eager-delete and layer-scoping semantics) is
// store.PartDelta, shared with the read-only replay path in
// store.Open.
type partKey struct {
	rel string
	idx int
}
