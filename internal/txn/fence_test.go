package txn

import (
	"errors"
	"strings"
	"testing"

	"urel/internal/store"
)

// TestCheckFenceEpochs pins the three-way epoch comparison: equal
// passes, higher supersedes (durably), lower is a stale caller that
// must adopt Own.
func TestCheckFenceEpochs(t *testing.T) {
	dir := t.TempDir()
	if err := store.Save(fixtureDB(), dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.CheckFence(0); err != nil {
		t.Fatalf("equal epoch must pass: %v", err)
	}
	if _, err := d.Exec("insert into s values (500, 1)"); err != nil {
		t.Fatalf("unfenced write: %v", err)
	}

	// A higher incoming epoch supersedes this store.
	err = d.CheckFence(3)
	var fe *FenceError
	if !errors.As(err, &fe) || !fe.Superseded || fe.Own != 0 || fe.Incoming != 3 {
		t.Fatalf("CheckFence(3) = %v, want superseded FenceError{Own:0, Incoming:3}", err)
	}
	if own, by := d.Fences(); own != 0 || by != 3 {
		t.Fatalf("Fences() = (%d, %d), want (0, 3)", own, by)
	}
	// Once superseded, everything is refused — fenced writes and plain
	// DML alike, equal epochs included.
	if err := d.CheckFence(0); !errors.As(err, &fe) || !fe.Superseded {
		t.Fatalf("superseded store accepted epoch 0: %v", err)
	}
	if _, err := d.Exec("insert into s values (501, 1)"); !errors.As(err, &fe) || !fe.Superseded {
		t.Fatalf("superseded store accepted DML: %v", err)
	}
}

// TestCheckFenceStaleCaller: a store that owns a higher epoch refuses
// a lower incoming one with a non-superseded FenceError carrying Own,
// and keeps accepting matching writes.
func TestCheckFenceStaleCaller(t *testing.T) {
	dir := t.TempDir()
	if err := store.Save(fixtureDB(), dir); err != nil {
		t.Fatal(err)
	}
	man, err := store.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Fence = 5
	if err := store.WriteManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	err = d.CheckFence(3)
	var fe *FenceError
	if !errors.As(err, &fe) || fe.Superseded || fe.Own != 5 || fe.Incoming != 3 {
		t.Fatalf("CheckFence(3) = %v, want stale FenceError{Own:5, Incoming:3}", err)
	}
	if !strings.Contains(fe.Error(), "stale") {
		t.Fatalf("stale error text = %q", fe.Error())
	}
	// The refusal is advisory, not terminal: the matching epoch passes
	// and the store still writes.
	if err := d.CheckFence(5); err != nil {
		t.Fatalf("matching epoch refused: %v", err)
	}
	if _, err := d.Exec("insert into s values (500, 1)"); err != nil {
		t.Fatalf("write on epoch-owning store: %v", err)
	}
}

// TestFenceDurableAcrossReopen: witnessing a higher epoch persists
// FencedBy BEFORE the refusal, so a restarted old primary stays fenced
// even if the coordinator never contacts it again.
func TestFenceDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	if err := store.Save(fixtureDB(), dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckFence(7); err == nil {
		t.Fatal("higher epoch must refuse")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if own, by := d2.Fences(); own != 0 || by != 7 {
		t.Fatalf("after reopen Fences() = (%d, %d), want (0, 7)", own, by)
	}
	var fe *FenceError
	if _, err := d2.Exec("insert into s values (500, 1)"); !errors.As(err, &fe) || !fe.Superseded {
		t.Fatalf("resurrected fenced primary accepted a write: %v", err)
	}
}
