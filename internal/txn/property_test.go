package txn

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"urel/internal/core"
	"urel/internal/sqlparse"
	"urel/internal/store"
)

// genStmt produces a random DML statement over the fixture schema.
// INSERT ... SELECT sticks to single-relation sources so row order —
// and with it tuple-id assignment — is deterministic across the
// persistent store and the in-memory reference.
func genStmt(rng *rand.Rand) string {
	v := func(n int) int { return rng.Intn(n) }
	switch v(8) {
	case 0:
		return fmt.Sprintf("insert into r values (%d, %d, %d)", v(50), v(50), v(50))
	case 1:
		return fmt.Sprintf("insert into r (a, b) values (%d, %d), (%d, %d)", v(50), v(50), v(50), v(50))
	case 2:
		return fmt.Sprintf("insert into s values (%d, %d)", v(50), v(50))
	case 3:
		return fmt.Sprintf("insert into s (x, y) select y, x from s where x < %d", v(30))
	case 4:
		return fmt.Sprintf("delete from r where a = %d", v(50))
	case 5:
		return fmt.Sprintf("delete from s where x < %d", v(10))
	case 6:
		return fmt.Sprintf("update r set b = %d where a < %d", v(50), v(30))
	default:
		return fmt.Sprintf("update r set c = %d, a = %d where b < %d", v(50), v(50), v(30))
	}
}

// TestRoundTripProperty is the acceptance-criteria proof: randomized
// DML interleaved with flushes, compactions, and reopens must leave
// the persistent store multiset-equal — partition by partition — to an
// in-memory database that applied the same statements, at every
// comparison point and after a final reopen.
func TestRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := fixtureDB()
			refUDB := base.Clone()
			app, err := NewApplier(refUDB)
			if err != nil {
				t.Fatal(err)
			}
			ref := &refDB{db: refUDB, app: app}
			dir := t.TempDir()
			if err := store.Save(base, dir); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { d.Close() }()

			for i := 0; i < 60; i++ {
				switch r := rng.Intn(12); {
				case r == 0:
					if err := d.Flush(); err != nil {
						t.Fatalf("op %d flush: %v", i, err)
					}
				case r == 1:
					if err := d.Compact(); err != nil {
						t.Fatalf("op %d compact: %v", i, err)
					}
				case r == 2:
					if err := d.Close(); err != nil {
						t.Fatalf("op %d close: %v", i, err)
					}
					if d, err = Open(dir, Options{DisableAutoFlush: true}); err != nil {
						t.Fatalf("op %d reopen: %v", i, err)
					}
				default:
					sql := genStmt(rng)
					st, err := sqlparse.ParseStatement(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					got, err := d.ExecStmt(st)
					if err != nil {
						t.Fatalf("op %d exec %s: %v", i, sql, err)
					}
					want, err := ref.app.Apply(st)
					if err != nil {
						t.Fatalf("op %d apply %s: %v", i, sql, err)
					}
					if got.Tuples != want.Tuples || got.ReprRows != want.ReprRows || got.Tombstones != want.Tombstones {
						t.Fatalf("op %d %s: store %+v vs reference %+v", i, sql, got, want)
					}
				}
				if i%10 == 9 {
					requireSame(t, d, ref, fmt.Sprintf("op %d", i))
				}
			}

			// Final: flush, compact, reopen, compare everything.
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			requireSame(t, d, ref, "final flush")
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
			requireSame(t, d, ref, "final compact")
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			d, err = Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			requireSame(t, d, ref, "final reopen")

			// And the possible answers agree on a query touching every
			// partition of r.
			got := possRows(t, d.Snapshot(), core.Rel("r"))
			want := possRows(t, ref.db, core.Rel("r"))
			if len(got) != len(want) {
				t.Fatalf("possible answers diverged: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("possible answer %d: %q vs %q", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCrashRecoveryProperty simulates kill -9 at arbitrary byte
// boundaries: after a random commit sequence (with occasional flushes
// and compactions), the current WAL is truncated at a random point —
// possibly mid-record — and the reopened state must equal an in-memory
// database that applied exactly the commits whose records survive
// whole. Torn tail records are discarded, committed-and-restated state
// is never lost.
func TestCrashRecoveryProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := fixtureDB()
			dir := t.TempDir()
			if err := store.Save(base, dir); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatal(err)
			}

			walPath := func() string {
				man, err := store.ReadManifest(dir)
				if err != nil {
					t.Fatal(err)
				}
				return filepath.Join(dir, man.WAL)
			}
			walSize := func() int64 {
				st, err := os.Stat(walPath())
				if err != nil {
					t.Fatal(err)
				}
				return st.Size()
			}

			// durable: statements folded into segment files (or restated)
			// by a flush/compaction — they survive any WAL truncation.
			// pending: statements only in the current WAL, with the log
			// size after each.
			var durable, pending []sqlparse.Statement
			var sizes []int64
			baseSize := walSize()

			nOps := 25 + rng.Intn(15)
			for i := 0; i < nOps; i++ {
				switch r := rng.Intn(10); {
				case r == 0:
					if err := d.Flush(); err != nil {
						t.Fatal(err)
					}
					durable = append(durable, pending...)
					pending, sizes = nil, nil
					baseSize = walSize()
				case r == 1:
					if err := d.Compact(); err != nil {
						t.Fatal(err)
					}
					durable = append(durable, pending...)
					pending, sizes = nil, nil
					baseSize = walSize()
				default:
					st, err := sqlparse.ParseStatement(genStmt(rng))
					if err != nil {
						t.Fatal(err)
					}
					if _, err := d.ExecStmt(st); err != nil {
						t.Fatal(err)
					}
					pending = append(pending, st)
					sizes = append(sizes, walSize())
				}
			}
			path := walPath()
			full := walSize()

			// Crash: no Close — just abandon the handles and truncate the
			// log somewhere between "no pending commit" and "all of them".
			cut := baseSize + rng.Int63n(full-baseSize+1)
			d.closeForCrashTest()
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}

			// Reference: the durable statements plus the pending prefix
			// whose records survive whole.
			surviving := 0
			for i, sz := range sizes {
				if sz <= cut {
					surviving = i + 1
				}
			}
			refUDB := base.Clone()
			app, err := NewApplier(refUDB)
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range durable {
				if _, err := app.Apply(st); err != nil {
					t.Fatal(err)
				}
			}
			for _, st := range pending[:surviving] {
				if _, err := app.Apply(st); err != nil {
					t.Fatal(err)
				}
			}
			ref := &refDB{db: refUDB, app: app}

			d2, err := Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatalf("reopen after crash (cut %d of %d): %v", cut, full, err)
			}
			defer d2.Close()
			requireSame(t, d2, ref, fmt.Sprintf("crash at byte %d of %d (%d/%d pending commits survive)",
				cut, full, surviving, len(pending)))
		})
	}
}

// closeForCrashTest releases file handles without any graceful-close
// work (no WAL sync bookkeeping beyond what append already did) —
// the closest a test can get to SIGKILL while still being able to
// reopen the directory on all platforms.
func (d *DB) closeForCrashTest() {
	d.mu.Lock()
	d.closed = true
	close(d.quit)
	d.mu.Unlock()
	<-d.bgDone
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal != nil {
		d.wal.CloseAbrupt()
	}
	d.closeHandlesLocked()
	// A real crash releases the flock with the process; the simulation
	// must too, or the reopen below would self-deadlock.
	d.lock.release()
}
