package txn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/store"
)

// TestConfidenceDifferentialAfterDML pins the confidence fast paths
// across the write path: after randomized DML (insert/delete/update,
// with flushes and compactions interleaved), the persistent snapshot's
// dispatcher confidences must equal brute-force world enumeration over
// an in-memory reference that applied the same statements, the
// read-once detector must agree wherever it fires, and the one-pass
// bounds must sandwich the exact value. DML only adds certain rows, so
// the fixture's world count (6) stays oracle-sized throughout.
func TestConfidenceDifferentialAfterDML(t *testing.T) {
	const maxWorlds = 64
	queries := []core.Query{
		core.Rel("r"),
		core.Rel("s"),
		core.Project(core.Rel("r"), "b"),
		core.Select(core.Rel("r"), engine.Cmp(engine.LT, engine.Col("a"), engine.ConstInt(30))),
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := fixtureDB()
			refUDB := base.Clone()
			app, err := NewApplier(refUDB)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := store.Save(base, dir); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { d.Close() }()

			check := func(step string) {
				snap := d.Snapshot()
				for _, q := range queries {
					oracle, err := refUDB.ConfidenceGroundTruth(q, maxWorlds)
					if err != nil {
						t.Fatalf("%s: oracle for %s: %v", step, q, err)
					}
					res, err := snap.Eval(q, engine.ExecConfig{})
					if err != nil {
						t.Fatalf("%s: eval %s: %v", step, q, err)
					}
					confs, stats, err := res.ConfidencesDispatch(core.ConfOptions{})
					if err != nil {
						t.Fatalf("%s: dispatch %s: %v", step, q, err)
					}
					if stats.MC != 0 {
						t.Fatalf("%s: %s sampled %d tuples on a %d-world catalog", step, q, stats.MC, maxWorlds)
					}
					for _, tc := range confs {
						k := engine.KeyString(tc.Vals)
						if w := oracle[k]; math.Abs(tc.P-w) > 1e-9 {
							t.Fatalf("%s: %s: confidence %v for %v, oracle says %v", step, q, tc.P, tc.Vals, w)
						}
					}
					for _, tb := range res.ConfidenceBounds() {
						w := oracle[engine.KeyString(tb.Vals)]
						if tb.Certain > w+1e-9 || w > tb.Possible+1e-9 {
							t.Fatalf("%s: %s: bounds [%v, %v] do not sandwich exact %v for %v",
								step, q, tb.Certain, tb.Possible, w, tb.Vals)
						}
					}
				}
			}

			check("initial")
			for i := 0; i < 24; i++ {
				switch r := rng.Intn(10); {
				case r == 0:
					if err := d.Flush(); err != nil {
						t.Fatalf("op %d flush: %v", i, err)
					}
				case r == 1:
					if err := d.Compact(); err != nil {
						t.Fatalf("op %d compact: %v", i, err)
					}
				default:
					sql := genStmt(rng)
					st, err := sqlparse.ParseStatement(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if _, err := d.ExecStmt(st); err != nil {
						t.Fatalf("op %d exec %s: %v", i, sql, err)
					}
					if _, err := app.Apply(st); err != nil {
						t.Fatalf("op %d apply %s: %v", i, sql, err)
					}
				}
				if i%6 == 5 {
					check(fmt.Sprintf("op %d", i))
				}
			}
			check("final")
		})
	}
}
