package txn

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"urel/internal/store"
)

// Flush spills every non-empty memtable into fresh delta segment
// files layered on top of the partitions' existing files, then
// rotates the WAL: a new log restates the still-memory-only state
// (the tombstone batches, which only compaction folds away), the new
// manifest referencing both is renamed into place — the crash-atomic
// commit point — and the old log is deleted. A crash at any earlier
// point leaves the previous manifest + WAL fully authoritative and
// the new files as removable orphans.
//
// Readers are unaffected: the flushed rows change representation (file
// layer instead of memtable) but not content, and concurrent snapshots
// keep their epoch's view. Writers are blocked for the duration (the
// spill is proportional to the memtable, not the database).
func (d *DB) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flushLocked()
}

func (d *DB) flushLocked() error {
	if d.closed {
		return errClosed
	}
	if d.degraded {
		return errDegraded
	}
	dirty := false
	for _, m := range d.mem {
		if len(m.Rows) > 0 {
			dirty = true
			break
		}
	}
	// A clean memtable normally makes flush a no-op — unless the WAL
	// was poisoned by a failed append, in which case the rotation below
	// (zero spills, restated tombstones, fresh log) is the heal path.
	if !dirty && !d.wal.Poisoned() {
		return nil
	}
	defer func(start time.Time) { flushSeconds.ObserveDuration(time.Since(start)) }(time.Now())
	gen := d.man.Epoch + 1

	// 1. Spill each non-empty memtable into a delta file and open a
	// validated handle over it.
	type spilled struct {
		pk    partKey
		delta store.ManifestDelta
		h     *store.PartHandle
	}
	var spills []spilled
	fail := func(err error) error {
		for _, s := range spills {
			s.h.Close()
			os.Remove(filepath.Join(d.dir, s.delta.File))
			store.RemoveIndexFiles(d.dir, s.delta.File)
		}
		return err
	}
	for ri, mr := range d.man.Relations {
		for pi, mp := range mr.Parts {
			pk := partKey{mr.Name, pi}
			m := d.mem[pk]
			if m == nil || len(m.Rows) == 0 {
				continue
			}
			file := store.DeltaFileName(ri, pi, gen)
			width, err := store.WritePartition(filepath.Join(d.dir, file), m.Rows, len(mp.Attrs), store.DefaultSegmentRows)
			if err != nil {
				return fail(fmt.Errorf("txn: flush %s: %w", file, err))
			}
			// Index runs ride beside the delta, best-effort: a failed
			// build degrades the layer's lookups to scans, it never
			// fails the flush (debris is removed so loads see either a
			// whole run or none).
			if err := store.WritePartIndexes(d.dir, file, m.Rows, store.DeclaredIdxOrds(mr.Indexes, mp.Attrs), store.DefaultSegmentRows); err != nil {
				store.RemoveIndexFiles(d.dir, file)
			}
			h, err := store.OpenPart(filepath.Join(d.dir, file))
			if err != nil {
				os.Remove(filepath.Join(d.dir, file))
				return fail(fmt.Errorf("txn: flush %s: %w", file, err))
			}
			h.SetCache(d.opts.Cache)
			spills = append(spills, spilled{pk: pk, delta: store.ManifestDelta{File: file, Rows: len(m.Rows), Width: width}, h: h})
		}
	}

	// 2. Write the successor WAL restating the residual in-memory
	// state: every live tombstone batch, with its original layer scope.
	nw, err := store.CreateWAL(filepath.Join(d.dir, store.WALFileName(gen)))
	if err != nil {
		return fail(fmt.Errorf("txn: flush: %w", err))
	}
	if ops := d.restateOpsLocked(); len(ops) > 0 {
		if err := nw.Append(store.EncodeWALRecord(ops)); err != nil {
			nw.Close()
			os.Remove(filepath.Join(d.dir, store.WALFileName(gen)))
			return fail(fmt.Errorf("txn: flush restate: %w", err))
		}
	}

	// 3. Commit: manifest references the delta files and the new WAL.
	man := d.man.Clone()
	for _, s := range spills {
		for ri := range man.Relations {
			if man.Relations[ri].Name != s.pk.rel {
				continue
			}
			mp := &man.Relations[ri].Parts[s.pk.idx]
			mp.Deltas = append(mp.Deltas, s.delta)
		}
	}
	man.Epoch = gen
	man.WAL = store.WALFileName(gen)
	man.Version = store.FormatVersion
	for i := range man.Relations {
		man.Relations[i].MaxTID = d.maxTID[man.Relations[i].Name]
	}
	if err := store.WriteManifest(d.dir, man); err != nil {
		if errors.Is(err, store.ErrManifestUnsynced) {
			// The rename DID commit: the on-disk manifest references the
			// new files, so they must not be deleted — but its durability
			// is uncertain and the in-memory state still points at the
			// old WAL. Refuse further writes; a reopen recovers from
			// whichever manifest survived (both WALs stay on disk).
			nw.Close()
			for _, s := range spills {
				s.h.Close()
			}
			d.degraded = true
			return fmt.Errorf("txn: flush: %w", err)
		}
		nw.Close()
		os.Remove(filepath.Join(d.dir, store.WALFileName(gen)))
		return fail(fmt.Errorf("txn: flush manifest: %w", err))
	}

	// 4. Adopt the new state: swap logs, layer the delta handles, reset
	// the spilled memtables (tombstone batches stay).
	oldWAL := d.wal
	d.wal = nw
	oldWAL.Close()
	os.Remove(oldWAL.Path())
	d.man = man
	for _, s := range spills {
		d.layers[s.pk] = append(d.layers[s.pk], s.h)
		m := d.mem[s.pk]
		d.mem[s.pk] = &store.PartDelta{Batches: m.Batches, NTombs: m.NTombs}
	}
	d.flushes.Add(1)
	d.publishLocked()
	return nil
}

// restateOpsLocked encodes the state that lives only in memory (and
// must therefore ride the successor WAL): every partition's live
// tombstone batches in commit order. Memtable rows are omitted by the
// flush path (it just spilled them) — Compact folds tombstones too,
// restating nothing.
func (d *DB) restateOpsLocked() []store.WALOp {
	var ops []store.WALOp
	for _, mr := range d.man.Relations {
		for pi := range mr.Parts {
			m := d.mem[partKey{mr.Name, pi}]
			if m == nil {
				continue
			}
			for _, b := range m.Batches {
				if b.N == 0 {
					continue
				}
				ops = append(ops, store.WALOp{Rel: mr.Name, Part: pi, Tombs: b.Entries, Gen: b.Gen})
			}
		}
	}
	return ops
}
