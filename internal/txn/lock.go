//go:build unix

package txn

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock holds the advisory write lock of a store directory. The
// lock is a flock(2) on a dedicated lock file: it excludes a second
// writable open of the same directory (two writers appending to one
// WAL with independent offsets would interleave frames and lose
// acknowledged commits), and — being advisory and tied to the file
// description — it evaporates automatically when the holding process
// exits or crashes, so recovery never has to clean up a stale lock.
type dirLock struct {
	f *os.File
}

// lockFileName is the lock file inside a store directory.
const lockFileName = "wal.lock"

// acquireDirLock takes the directory's exclusive write lock,
// non-blocking: a held lock is an immediate, pointed error.
func acquireDirLock(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("txn: %s is already open for writing by another process (flock: %v)", dir, err)
	}
	return &dirLock{f: f}, nil
}

// release drops the lock (also dropped implicitly on process exit).
func (l *dirLock) release() {
	if l == nil || l.f == nil {
		return
	}
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	l.f.Close()
	l.f = nil
}
