package txn

import (
	"errors"
	"strings"
	"testing"

	"urel/internal/store"
)

// TestWALFaultRollback: an injected WAL append or fsync failure fails
// the statement, leaves no trace in the live snapshot, and — because
// the partial frame is rolled back — leaves nothing to replay: the
// reopened store matches the reference that only saw the acknowledged
// writes.
func TestWALFaultRollback(t *testing.T) {
	base := fixtureDB()
	refUDB := base.Clone()
	app, err := NewApplier(refUDB)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refDB{db: refUDB, app: app}
	dir := t.TempDir()
	if err := store.Save(base, dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}

	exec(t, d, ref, "insert into s values (100, 0)")
	requireSame(t, d, ref, "healthy write before faults")

	for _, op := range []string{"append", "sync"} {
		op := op
		restore := store.SetWALFaultHook(func(o, path string) error {
			if o == op {
				return errors.New("injected " + op + " failure")
			}
			return nil
		})
		_, werr := d.Exec("insert into s values (600, 6)")
		restore()
		if werr == nil || !strings.Contains(werr.Error(), "injected "+op) {
			t.Fatalf("write under %s fault: err = %v, want injected failure", op, werr)
		}
		requireSame(t, d, ref, "after injected "+op+" failure")
	}

	// The fault was transient: with the hook cleared the write path
	// recovers without a restart.
	exec(t, d, ref, "insert into s values (601, 7)")
	exec(t, d, ref, "delete from s where x = 100")
	requireSame(t, d, ref, "after recovery")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing unacknowledged replays: the reopened store equals the
	// reference exactly.
	d2, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	requireSame(t, d2, ref, "after reopen")
}
