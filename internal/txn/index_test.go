package txn

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/store"
)

// TestCreateIndexStatement covers the DDL surface: SQL form, facade
// semantics (idempotent redeclaration), statement errors, and
// persistence of the declaration across flush and reopen.
func TestCreateIndexStatement(t *testing.T) {
	d, _ := openFixture(t)
	res, err := d.Exec("create index on r(a)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "create_index" {
		t.Fatalf("kind = %q, want create_index", res.Kind)
	}
	// Redeclaring is a no-op, not an error.
	if _, err := d.Exec("create index on r(a)"); err != nil {
		t.Fatalf("redeclare: %v", err)
	}
	if _, err := d.Exec("create index on nosuch(a)"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := d.Exec("create index on r(nosuch)"); err == nil {
		t.Fatal("unknown attribute accepted")
	}

	// The declaration is manifest-durable: new layers get runs, and a
	// reopen still advertises the index.
	if _, err := d.Exec("insert into r values (41, 42, 43)"); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	man, err := store.ReadManifest(d.Dir())
	if err != nil {
		t.Fatal(err)
	}
	declared := false
	for _, mr := range man.Relations {
		if mr.Name == "r" {
			declared = len(mr.Indexes) == 1 && mr.Indexes[0] == "a"
		}
	}
	if !declared {
		t.Fatalf("manifest does not declare the index: %+v", man.Relations)
	}
	// Every layer of every partition of r that stores "a" carries a run.
	for _, mr := range man.Relations {
		if mr.Name != "r" {
			continue
		}
		for _, mp := range mr.Parts {
			ai := -1
			for j, a := range mp.Attrs {
				if a == "a" {
					ai = j
				}
			}
			if ai < 0 {
				continue
			}
			files := append([]string{mp.File}, deltaFiles(mp)...)
			for _, f := range files {
				if !fileExists(filepath.Join(d.Dir(), store.IdxFileName(f, store.IdxKeyAttr(ai)))) {
					t.Fatalf("layer %s of %s has no run for attr %d", f, mp.Name, ai)
				}
			}
		}
	}
}

func deltaFiles(mp store.ManifestPart) []string {
	var out []string
	for _, md := range mp.Deltas {
		out = append(out, md.File)
	}
	return out
}

func fileExists(path string) bool {
	_, err := filepath.Glob(path)
	if err != nil {
		return false
	}
	m, _ := filepath.Glob(path)
	return len(m) > 0
}

// lookupQuery is the point query the index property test compares
// across the index path and the reference full scan.
func lookupQuery(k int) core.Query {
	return core.Select(core.Rel("r"),
		engine.Eq(engine.Col("a"), engine.ConstInt(int64(k))))
}

// TestIndexPathProperty is the index-correctness proof: randomized DML
// interleaved with flushes, compactions, graceful reopens, and abrupt
// crashes (handles dropped, WAL replayed on reopen) must keep the
// indexed point-lookup path multiset-equal to a full scan of an
// in-memory reference database that applied the same statements — the
// index may degrade to scans (missing or stale runs) but must never
// change answers.
func TestIndexPathProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := fixtureDB()
			refUDB := base.Clone()
			app, err := NewApplier(refUDB)
			if err != nil {
				t.Fatal(err)
			}
			ref := &refDB{db: refUDB, app: app}
			dir := t.TempDir()
			if err := store.Save(base, dir); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, Options{DisableAutoFlush: true})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { d.Close() }()
			if _, err := d.Exec("create index on r(a)"); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Exec("create index on s(x)"); err != nil {
				t.Fatal(err)
			}

			check := func(when string) {
				t.Helper()
				for _, k := range []int{0, 1, 2, 3, 7, 13, 25, 41, 49} {
					got := possRows(t, d.Snapshot(), lookupQuery(k))
					want := possRows(t, ref.db, lookupQuery(k))
					if len(got) != len(want) {
						t.Fatalf("%s: a=%d: index path %d rows, full scan %d", when, k, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: a=%d row %d: %q vs %q", when, k, i, got[i], want[i])
						}
					}
				}
			}

			for i := 0; i < 50; i++ {
				switch r := rng.Intn(12); {
				case r == 0:
					if err := d.Flush(); err != nil {
						t.Fatalf("op %d flush: %v", i, err)
					}
				case r == 1:
					if err := d.Compact(); err != nil {
						t.Fatalf("op %d compact: %v", i, err)
					}
				case r == 2:
					if err := d.Close(); err != nil {
						t.Fatalf("op %d close: %v", i, err)
					}
					if d, err = Open(dir, Options{DisableAutoFlush: true}); err != nil {
						t.Fatalf("op %d reopen: %v", i, err)
					}
				case r == 3:
					// Crash: drop the handles without graceful-close work;
					// the reopen replays the WAL, and the index path must
					// agree with the reference over the replayed memtables.
					d.closeForCrashTest()
					if d, err = Open(dir, Options{DisableAutoFlush: true}); err != nil {
						t.Fatalf("op %d crash reopen: %v", i, err)
					}
				default:
					sql := genStmt(rng)
					st, err := sqlparse.ParseStatement(sql)
					if err != nil {
						t.Fatalf("%s: %v", sql, err)
					}
					if _, err := d.ExecStmt(st); err != nil {
						t.Fatalf("op %d exec %s: %v", i, sql, err)
					}
					if _, err := ref.app.Apply(st); err != nil {
						t.Fatalf("op %d apply %s: %v", i, sql, err)
					}
				}
				if i%5 == 4 {
					check(fmt.Sprintf("op %d", i))
				}
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			check("final flush")
			if err := d.Compact(); err != nil {
				t.Fatal(err)
			}
			check("final compact")
			requireSame(t, d, ref, "final")
		})
	}
}

// explainText renders the optimized physical plan for q against the
// snapshot, the way the server's EXPLAIN endpoint does.
func explainText(t *testing.T, db *core.UDB, q core.Query) string {
	t.Helper()
	plan, _, err := db.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	text, err := engine.Explain(plan, engine.NewCatalog(), true)
	if err != nil {
		t.Fatal(err)
	}
	return text
}

// TestJoinChoiceSelectivity is the optimizer acceptance criterion for
// the strategy suite: a selective join (tiny probe side into a large
// indexed relation) must pick index-nested-loop; a non-selective join
// of two large relations on an indexed column must use the sort-merge
// join over the sorted runs; the same join on an unindexed column must
// keep the partitioned hash join — and every strategy produces the
// same answers as the scan-based plans.
func TestJoinChoiceSelectivity(t *testing.T) {
	db := core.NewUDB()
	db.MustAddRelation("big", "k", "v")
	ub := db.MustAddPartition("big", "u_big", "k", "v")
	const n = 20000
	for i := 0; i < n; i++ {
		ub.Add(nil, int64(i+1), engine.Int(int64((i*2654435761)%n)), engine.Int(int64(i)))
	}
	db.MustAddRelation("small", "k", "w")
	us := db.MustAddPartition("small", "u_small", "k", "w")
	for i := 0; i < 10; i++ {
		us.Add(nil, int64(i+1), engine.Int(int64((i*37*2654435761)%n)), engine.Int(int64(i)))
	}
	dir := t.TempDir()
	if err := store.Save(db, dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	selective := core.Project(core.Join(core.RelAs("small", "s"), core.RelAs("big", "b"),
		engine.Eq(engine.Col("s.k"), engine.Col("b.k"))), "s.k", "b.v")
	nonSelective := core.Project(core.Join(core.RelAs("big", "b1"), core.RelAs("big", "b2"),
		engine.Eq(engine.Col("b1.k"), engine.Col("b2.k"))), "b1.k", "b2.v")
	unindexed := core.Join(core.RelAs("big", "b1"), core.RelAs("big", "b2"),
		engine.Eq(engine.Col("b1.v"), engine.Col("b2.v")))

	// Reference answers before any index exists (pure scan plans).
	wantSel := possRows(t, d.Snapshot(), selective)
	wantNonSel := possRows(t, d.Snapshot(), nonSelective)

	if _, err := d.Exec("create index on big(k)"); err != nil {
		t.Fatal(err)
	}

	selPlan := explainText(t, d.Snapshot(), selective)
	if !strings.Contains(selPlan, "Index Join") {
		t.Fatalf("selective join did not choose index-nested-loop:\n%s", selPlan)
	}
	nonSelPlan := explainText(t, d.Snapshot(), nonSelective)
	if !strings.Contains(nonSelPlan, "Merge Join") {
		t.Fatalf("non-selective indexed join did not choose sort-merge:\n%s", nonSelPlan)
	}
	hashPlan := explainText(t, d.Snapshot(), unindexed)
	if strings.Contains(hashPlan, "Index Join") || strings.Contains(hashPlan, "Merge Join") ||
		!strings.Contains(hashPlan, "Hash Join") {
		t.Fatalf("unindexed join did not keep the hash join:\n%s", hashPlan)
	}

	requireRows := func(q core.Query, want []string, what string) {
		t.Helper()
		got := possRows(t, d.Snapshot(), q)
		if len(got) != len(want) {
			t.Fatalf("%s answers diverge: %d vs %d rows", what, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: %q vs %q", what, i, got[i], want[i])
			}
		}
	}
	requireRows(selective, wantSel, "index join")
	requireRows(nonSelective, wantNonSel, "merge join")

	// A point query routes through the index scan.
	pointPlan := explainText(t, d.Snapshot(), lookupBigQuery(5))
	if !strings.Contains(pointPlan, "Index Scan") || !strings.Contains(pointPlan, "exec=index") {
		t.Fatalf("point query did not route through the index:\n%s", pointPlan)
	}
}

func lookupBigQuery(k int) core.Query {
	return core.Select(core.Rel("big"),
		engine.Eq(engine.Col("k"), engine.ConstInt(int64(k))))
}
