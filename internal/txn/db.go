package txn

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"urel/internal/core"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/ws"
)

// Options configures a mutable store.
type Options struct {
	// Cache is the shared decoded-segment cache attached to every file
	// layer (nil = uncached).
	Cache *store.SegCache
	// FlushBytes is the total memtable size that triggers a background
	// flush (<= 0 selects DefaultFlushBytes).
	FlushBytes int64
	// CompactTombs is the live-tombstone count that triggers a
	// background compaction folding deletes into rewritten bases
	// (<= 0 selects DefaultCompactTombs). Tombstones cost a per-row
	// filter on every scan of their layers and are restated into each
	// successor WAL, so they must not accumulate unboundedly under
	// delete/update traffic.
	CompactTombs int
	// DisableAutoFlush turns the background maintenance goroutine off
	// entirely (no auto-flush, no auto-compaction); Flush and Compact
	// remain available explicitly.
	DisableAutoFlush bool
	// Parallelism is the engine worker count for the relational plans
	// DML executes (0 = serial).
	Parallelism int
}

// DefaultFlushBytes is the auto-flush threshold: big enough that delta
// files amortize their per-file overhead, small enough to bound replay
// work and memtable footprint.
const DefaultFlushBytes = 4 << 20

// DefaultCompactTombs is the auto-compaction threshold on live
// tombstones.
const DefaultCompactTombs = 8192

// DB is a mutable U-relational database rooted at a saved-store
// directory: the immutable columnar snapshot (internal/store) extended
// with a write path. Commits append to a CRC-framed write-ahead log
// (fsynced before acknowledging) and apply to per-partition in-memory
// delta memtables; every commit publishes a fresh immutable snapshot
// (MVCC): readers obtained via Snapshot never see a partial commit and
// keep their consistent view while writers proceed. A background
// flusher spills memtables into delta segment files and a compactor
// folds tombstones into rewritten bases; both commit their state
// transition by atomically renaming the manifest, and WAL replay on
// Open restores any commits the segment files do not yet reflect.
//
// One DB owns its directory: at most one process (and one DB value)
// may have it open for writing — enforced on unix by an advisory
// flock on a lock file, so a second writable open fails immediately
// instead of interleaving WAL frames (read-only store.Open needs no
// lock). All methods are safe for concurrent use; statements execute
// one at a time under the commit lock while reads proceed lock-free
// on published snapshots.
type DB struct {
	dir  string
	opts Options
	w    *ws.WorldTable

	mu     sync.Mutex // commit lock: statements, flush, compaction, close
	lock   *dirLock   // inter-process writer exclusion (flock)
	man    *store.Manifest
	wal    *store.WAL
	layers map[partKey][]*store.PartHandle
	mem    map[partKey]*store.PartDelta
	maxTID map[string]int64
	closed bool
	// degraded marks a store whose manifest rename committed but whose
	// directory fsync failed (store.ErrManifestUnsynced): the on-disk
	// and in-memory WAL references may disagree, so further writes are
	// refused; a reopen recovers from whichever manifest survived.
	degraded bool

	commits     atomic.Uint64
	flushes     atomic.Uint64
	compactions atomic.Uint64
	state       atomic.Pointer[dbState]

	flushCh   chan struct{}
	compactCh chan struct{}
	quit      chan struct{}
	bgDone    chan struct{}
}

// dbState is one published MVCC snapshot.
type dbState struct {
	epoch     uint64
	fileEpoch uint64 // manifest generation at publication
	udb       *core.UDB
	walBytes  int64
	memRows   int
	memBytes  int64
	tombs     int
}

// Result reports what one DML statement did.
type Result struct {
	// Kind is "insert", "delete", or "update".
	Kind string `json:"kind"`
	// Tuples is the number of logical tuples affected (inserted rows,
	// or distinct matched tuple ids for delete/update).
	Tuples int `json:"tuples"`
	// ReprRows is the number of representation rows written.
	ReprRows int `json:"repr_rows"`
	// Tombstones is the number of tombstones recorded.
	Tombstones int `json:"tombstones"`
	// Epoch is the commit epoch after the statement.
	Epoch uint64 `json:"epoch"`
}

// Stats is a point-in-time snapshot of the write path.
type Stats struct {
	Epoch       uint64 `json:"epoch"`
	FileEpoch   uint64 `json:"file_epoch"` // flush/compaction generation
	WALBytes    int64  `json:"wal_bytes"`
	MemRows     int    `json:"mem_rows"`
	MemBytes    int64  `json:"mem_bytes"`
	Tombstones  int    `json:"tombstones"`
	Commits     uint64 `json:"commits"`
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
}

// Open opens dir — a directory written by store.Save (or a previous
// mutable session) — for reading and writing. Commits found in the
// write-ahead log but not yet flushed to segment files are replayed
// into the memtables, so the first snapshot already reflects every
// acknowledged commit. Orphan files from a crashed flush or compaction
// (written but never referenced by the atomically-renamed manifest)
// are removed.
func Open(dir string, opts Options) (*DB, error) {
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	man, err := store.ReadManifest(dir)
	if err != nil {
		lock.release()
		return nil, err
	}
	w, err := store.ReadWorldTable(dir)
	if err != nil {
		lock.release()
		return nil, fmt.Errorf("txn: open %s: %w", dir, err)
	}
	if err := removeOrphans(dir, man); err != nil {
		lock.release()
		return nil, fmt.Errorf("txn: open %s: %w", dir, err)
	}
	d := &DB{
		dir:       dir,
		opts:      opts,
		w:         w,
		lock:      lock,
		man:       man,
		layers:    map[partKey][]*store.PartHandle{},
		mem:       map[partKey]*store.PartDelta{},
		maxTID:    map[string]int64{},
		flushCh:   make(chan struct{}, 1),
		compactCh: make(chan struct{}, 1),
		quit:      make(chan struct{}),
		bgDone:    make(chan struct{}),
	}
	if d.opts.FlushBytes <= 0 {
		d.opts.FlushBytes = DefaultFlushBytes
	}
	if d.opts.CompactTombs <= 0 {
		d.opts.CompactTombs = DefaultCompactTombs
	}
	ok := false
	defer func() {
		if !ok {
			d.closeHandlesLocked()
			d.lock.release()
		}
	}()
	for _, mr := range man.Relations {
		for pi, mp := range mr.Parts {
			src, err := store.OpenPartLayers(dir, mp, opts.Cache)
			if err != nil {
				return nil, fmt.Errorf("txn: open %s: %w", dir, err)
			}
			d.layers[partKey{mr.Name, pi}] = src.Layers
		}
		d.maxTID[mr.Name] = mr.MaxTID
	}
	// Version-1 snapshots predate the manifest's max_tid field; derive
	// it from the stored tuple ids once, here.
	for _, mr := range man.Relations {
		if d.maxTID[mr.Name] == 0 {
			m, err := d.scanMaxTIDLocked(mr.Name)
			if err != nil {
				return nil, fmt.Errorf("txn: open %s: %w", dir, err)
			}
			d.maxTID[mr.Name] = m
		}
	}
	if man.WAL == "" {
		// First writable open of a read-only snapshot: adopt it by
		// creating the log and recording it in the manifest.
		gen := man.Epoch + 1
		nw, err := store.CreateWAL(filepath.Join(dir, store.WALFileName(gen)))
		if err != nil {
			return nil, fmt.Errorf("txn: open %s: %w", dir, err)
		}
		man.WAL = store.WALFileName(gen)
		man.Epoch = gen
		man.Version = store.FormatVersion
		d.syncManifestTIDs()
		if err := store.WriteManifest(dir, man); err != nil {
			nw.Close()
			return nil, fmt.Errorf("txn: open %s: %w", dir, err)
		}
		d.wal = nw
	} else {
		nw, records, err := store.OpenWAL(filepath.Join(dir, man.WAL))
		if err != nil {
			return nil, fmt.Errorf("txn: open %s: %w", dir, err)
		}
		d.wal = nw
		for _, rec := range records {
			ops, err := store.DecodeWALRecord(rec)
			if err != nil {
				nw.Close()
				return nil, fmt.Errorf("txn: open %s: %w", dir, err)
			}
			if err := d.applyOpsLocked(ops); err != nil {
				nw.Close()
				return nil, fmt.Errorf("txn: open %s: replay: %w", dir, err)
			}
		}
	}
	d.publishLocked()
	if !d.opts.DisableAutoFlush {
		go d.background()
	} else {
		close(d.bgDone)
	}
	ok = true
	return d, nil
}

// removeOrphans deletes files this layer owns (segment files, WALs,
// the manifest temp file) that the manifest does not reference — the
// debris of a flush or compaction that crashed before its manifest
// rename.
func removeOrphans(dir string, man *store.Manifest) error {
	referenced := map[string]bool{}
	for _, mr := range man.Relations {
		for _, mp := range mr.Parts {
			referenced[mp.File] = true
			for _, md := range mp.Deltas {
				referenced[md.File] = true
			}
		}
	}
	if man.WAL != "" {
		referenced[man.WAL] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		// Index runs are named <layer>.<key>.idx and live or die with
		// their layer file: keep the run iff the manifest references the
		// layer. (Runs themselves are never listed in the manifest.)
		if strings.HasSuffix(name, ".idx") {
			if i := strings.Index(name, ".useg"); i >= 0 && !referenced[name[:i+len(".useg")]] {
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		owned := strings.HasSuffix(name, ".useg") ||
			(strings.HasPrefix(name, "wal_") && strings.HasSuffix(name, ".log")) ||
			name == store.CatalogName+".tmp"
		if owned && !referenced[name] {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanMaxTIDLocked derives a relation's maximum stored tuple id by
// scanning its first partition's layers (every partition of a relation
// carries the same tuple-id set).
func (d *DB) scanMaxTIDLocked(rel string) (int64, error) {
	for _, mr := range d.man.Relations {
		if mr.Name != rel || len(mr.Parts) == 0 {
			continue
		}
		src := &store.PartSource{Layers: d.layers[partKey{rel, 0}]}
		rows, err := src.Load()
		if err != nil {
			return 0, err
		}
		max := int64(0)
		for _, r := range rows {
			if r.TID > max {
				max = r.TID
			}
		}
		return max, nil
	}
	return 0, nil
}

// syncManifestTIDs copies the live max-tid map into the manifest.
func (d *DB) syncManifestTIDs() {
	for i := range d.man.Relations {
		d.man.Relations[i].MaxTID = d.maxTID[d.man.Relations[i].Name]
	}
}

// background runs the maintenance goroutine: it drains trigger
// signals sent by commits whose memtables crossed the flush threshold
// or whose tombstones crossed the compaction threshold.
func (d *DB) background() {
	defer close(d.bgDone)
	for {
		select {
		case <-d.quit:
			return
		case <-d.flushCh:
			// Best effort: a failed background flush leaves the commits
			// safe in the WAL; the next trigger (or Close+reopen) retries.
			_ = d.Flush()
		case <-d.compactCh:
			_ = d.Compact()
		}
	}
}

// Snapshot returns the current committed state as a read-only
// database view. The view is immutable and safe for concurrent use;
// it shares the store's open files, so do not call its Close — close
// the DB instead. Successive commits publish new snapshots; a held
// snapshot keeps observing its own epoch (MVCC).
func (d *DB) Snapshot() *core.UDB { return d.state.Load().udb }

// Epoch returns the current commit epoch.
func (d *DB) Epoch() uint64 { return d.state.Load().epoch }

// Stats snapshots the write path's counters. It is lock-free (the
// published snapshot plus atomic counters), so introspection — a
// server's /stats — stays responsive while a long DML statement,
// flush, or compaction holds the commit lock.
func (d *DB) Stats() Stats {
	s := d.state.Load()
	return Stats{
		Epoch:       s.epoch,
		FileEpoch:   s.fileEpoch,
		WALBytes:    s.walBytes,
		MemRows:     s.memRows,
		MemBytes:    s.memBytes,
		Tombstones:  s.tombs,
		Commits:     d.commits.Load(),
		Flushes:     d.flushes.Load(),
		Compactions: d.compactions.Load(),
	}
}

// Dir returns the store directory.
func (d *DB) Dir() string { return d.dir }

// Manifest returns a deep copy of the current on-disk manifest. The
// replication endpoints serve it to bootstrapping followers, which
// fetch the referenced files afterwards; because flush/compaction
// commit by writing NEW file names and only delete superseded files
// after the manifest rename, every file a copied manifest references
// either still exists or the follower's fetch fails cleanly and it
// re-requests the manifest.
func (d *DB) Manifest() *store.Manifest {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.man.Clone()
}

// WALView reports the live WAL for streaming replication: the manifest
// generation that names it, its path, and the durable byte length.
// durable is the published snapshot's walBytes — it advances only
// after fsync succeeds (Append acknowledges before the commit
// publishes), so a reader serving bytes [off, durable) can never ship
// a torn or unacknowledged frame to a follower.
func (d *DB) WALView() (gen uint64, path string, durable int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.state.Load()
	return d.man.Epoch, d.wal.Path(), s.walBytes
}

// ErrStatement marks errors caused by the statement itself (parse
// failures, unknown relations or attributes, arity mismatches) as
// opposed to storage failures; servers map it to a client error.
var ErrStatement = fmt.Errorf("invalid statement")

// Exec parses and executes one DML statement (INSERT, DELETE, or
// UPDATE). Queries are rejected: run those against Snapshot().
func (d *DB) Exec(sql string) (*Result, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	if _, ok := st.(*sqlparse.Parsed); ok {
		return nil, fmt.Errorf("%w: txn: Exec wants a DML statement; run queries against Snapshot()", ErrStatement)
	}
	return d.ExecStmt(st)
}

// ExecStmt executes one parsed DML statement: the statement is
// translated into ordinary relational plans over the current snapshot
// (per the paper, updates are just queries that emit delta rows), the
// resulting ops are appended to the WAL (fsynced), applied to the
// memtables, and published as a new epoch — atomically with respect to
// every reader.
func (d *DB) ExecStmt(st sqlparse.Statement) (*Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if ci, ok := st.(*sqlparse.CreateIndexStmt); ok {
		// DDL, not DML: runs are built and the declaration committed by
		// manifest rename, bypassing the WAL entirely.
		return d.createIndexLocked(ci)
	}
	if d.closed {
		return nil, errClosed
	}
	if d.degraded {
		return nil, errDegraded
	}
	if d.fencedLocked() {
		return nil, &FenceError{Own: d.man.Fence, Incoming: d.man.FencedBy, Superseded: true}
	}
	s := d.state.Load()
	ops, res, err := buildOps(s.udb, d.maxTID, d.layerGenLocked, st, d.opts.Parallelism)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStatement, err)
	}
	if len(ops) > 0 {
		if err := d.wal.Append(store.EncodeWALRecord(ops)); err != nil {
			// A failed append may have poisoned the log; a rotation
			// (flush) heals it, so nudge the background flusher.
			if !d.opts.DisableAutoFlush {
				select {
				case d.flushCh <- struct{}{}:
				default:
				}
			}
			return nil, fmt.Errorf("txn: wal append: %w", err)
		}
		if err := d.applyOpsLocked(ops); err != nil {
			return nil, err
		}
		d.commits.Add(1)
		d.publishLocked()
		d.maybeTriggerMaintenanceLocked()
	}
	res.Epoch = d.state.Load().epoch
	return res, nil
}

var errClosed = fmt.Errorf("txn: database is closed")

var errDegraded = fmt.Errorf("txn: store degraded after a manifest sync failure; close and reopen to recover")

// layerGenLocked returns the partition's current file-layer count —
// the scope recorded on new tombstone batches.
func (d *DB) layerGenLocked(pk partKey) int { return len(d.layers[pk]) }

// applyOpsLocked applies decoded ops to the memtables and the tid
// allocator, in order.
func (d *DB) applyOpsLocked(ops []store.WALOp) error {
	for _, o := range ops {
		pk := partKey{o.Rel, o.Part}
		if _, ok := d.layers[pk]; !ok {
			return fmt.Errorf("txn: op targets unknown partition %s/%d", o.Rel, o.Part)
		}
		mp := d.mem[pk]
		if mp == nil {
			mp = &store.PartDelta{}
			d.mem[pk] = mp
		}
		mp.ApplyOp(o)
		for _, r := range o.Rows {
			if r.TID > d.maxTID[o.Rel] {
				d.maxTID[o.Rel] = r.TID
			}
		}
	}
	return nil
}

// publishLocked builds and publishes the next epoch's snapshot.
func (d *DB) publishLocked() {
	var epoch uint64
	if s := d.state.Load(); s != nil {
		epoch = s.epoch
	}
	st := &dbState{epoch: epoch + 1, fileEpoch: d.man.Epoch, walBytes: d.wal.Size()}
	udb := core.NewUDB()
	udb.W = d.w
	for _, mr := range d.man.Relations {
		udb.MustAddRelation(mr.Name, mr.Attrs...)
		for pi, mp := range mr.Parts {
			u := udb.MustAddPartition(mr.Name, mp.Name, mp.Attrs...)
			pk := partKey{mr.Name, pi}
			ls := d.layers[pk]
			src := &store.PartSource{
				Layers:  ls[:len(ls):len(ls)],
				IdxCols: store.DeclaredIdxOrds(mr.Indexes, mp.Attrs),
			}
			if m := d.mem[pk]; m != nil {
				m.Freeze(src)
				st.memRows += len(m.Rows)
				st.memBytes += m.Bytes
				st.tombs += m.NTombs
			}
			u.Back = src
		}
	}
	st.udb = udb
	d.state.Store(st)
}

// maybeTriggerMaintenanceLocked signals the background goroutine when
// the memtables cross the flush threshold or the live tombstones
// cross the compaction threshold.
func (d *DB) maybeTriggerMaintenanceLocked() {
	if d.opts.DisableAutoFlush {
		return
	}
	var bytes int64
	tombs := 0
	for _, m := range d.mem {
		bytes += m.Bytes
		tombs += m.NTombs
	}
	if tombs >= d.opts.CompactTombs {
		select {
		case d.compactCh <- struct{}{}:
		default:
		}
		return // compaction folds the memtables too
	}
	if bytes < d.opts.FlushBytes {
		return
	}
	select {
	case d.flushCh <- struct{}{}:
	default:
	}
}

// Close stops the background flusher, syncs and closes the WAL, and
// releases every file handle (including handles retired by past
// compactions). Committed state needs no flushing: the WAL already
// holds it durably and replays on the next Open.
func (d *DB) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.quit)
	d.mu.Unlock()
	<-d.bgDone

	d.mu.Lock()
	defer d.mu.Unlock()
	var err error
	if d.wal != nil {
		err = d.wal.Close()
	}
	d.closeHandlesLocked()
	d.lock.release()
	return err
}

func (d *DB) closeHandlesLocked() {
	for _, ls := range d.layers {
		for _, h := range ls {
			h.Close()
		}
	}
}
