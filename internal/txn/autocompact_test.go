package txn

import (
	"fmt"
	"testing"
	"time"

	"urel/internal/store"
)

// TestAutoCompaction: delete/update traffic crossing the tombstone
// threshold triggers a background compaction that folds the deletes
// into rewritten bases — tombstones drop to zero and the data stays
// correct.
func TestAutoCompaction(t *testing.T) {
	base := fixtureDB()
	refUDB := base.Clone()
	app, err := NewApplier(refUDB)
	if err != nil {
		t.Fatal(err)
	}
	ref := &refDB{db: refUDB, app: app}
	dir := t.TempDir()
	if err := store.Save(base, dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{CompactTombs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Insert then delete tuples until tombstones cross the threshold.
	for i := 0; i < 4; i++ {
		exec(t, d, ref, fmt.Sprintf("insert into s values (%d, %d)", 100+i, i))
		exec(t, d, ref, fmt.Sprintf("delete from s where x = %d", 100+i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := d.Stats()
		if st.Compactions >= 1 && st.Tombstones == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never folded the tombstones: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	requireSame(t, d, ref, "after auto-compaction")
}
