package txn

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"urel/internal/core"
	"urel/internal/engine"
	"urel/internal/sqlparse"
	"urel/internal/store"
	"urel/internal/ws"
)

// fixtureDB builds a small uncertain database exercising the write
// path's corner cases: r has overlapping partitions (b is covered
// three times, so the merge skips u_r_b and deletes must wildcard it),
// certain and uncertain tuples, and a second relation s for
// INSERT ... SELECT.
func fixtureDB() *core.UDB {
	db := core.NewUDB()
	db.MustAddRelation("r", "a", "b", "c")
	pab := db.MustAddPartition("r", "u_r_ab", "a", "b")
	pbc := db.MustAddPartition("r", "u_r_bc", "b", "c")
	pb := db.MustAddPartition("r", "u_r_b", "b")
	db.MustAddRelation("s", "x", "y")
	ps := db.MustAddPartition("s", "u_s", "x", "y")

	x := db.W.NewBoolVar("x1")
	y := db.W.MustNewVar("y1", 1, 2, 3)

	// tid 1: fully certain.
	pab.Add(nil, 1, engine.Int(1), engine.Int(10))
	pbc.Add(nil, 1, engine.Int(10), engine.Int(100))
	pb.Add(nil, 1, engine.Int(10))
	// tid 2: b uncertain via x (a shared by both alternatives).
	pab.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Int(2), engine.Int(20))
	pab.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(2), engine.Int(21))
	pbc.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Int(20), engine.Int(200))
	pbc.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(21), engine.Int(201))
	pb.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Int(20))
	pb.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(21))
	// tid 3: c uncertain via y.
	pab.Add(nil, 3, engine.Int(3), engine.Int(30))
	for i := 1; i <= 3; i++ {
		pbc.Add(ws.MustDescriptor(ws.A(y, ws.Val(i))), 3, engine.Int(30), engine.Int(int64(300+i)))
	}
	pb.Add(nil, 3, engine.Int(30))

	for i := int64(1); i <= 4; i++ {
		ps.Add(nil, i, engine.Int(i), engine.Int(2*i))
	}
	return db
}

// dump canonicalizes every partition's live rows for multiset
// comparison (storage-backed partitions are loaded through their
// backing, so tombstones and layers collapse to live rows).
func dump(t *testing.T, db *core.UDB) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, rel := range db.RelNames() {
		for pi, p := range db.Rels[rel].Parts {
			rows := p.Rows
			if p.Back != nil {
				var err error
				rows, err = p.Back.Load()
				if err != nil {
					t.Fatal(err)
				}
			}
			key := fmt.Sprintf("%s/%d", rel, pi)
			ss := make([]string, len(rows))
			for i, r := range rows {
				ss[i] = fmt.Sprintf("%s|%d|%s", r.D, r.TID, engine.KeyString(r.Vals))
			}
			sort.Strings(ss)
			out[key] = ss
		}
	}
	return out
}

func equalDump(a, b map[string][]string) (string, bool) {
	if len(a) != len(b) {
		return "partition sets differ", false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return "missing partition " + k, false
		}
		if len(av) != len(bv) {
			return fmt.Sprintf("%s: %d vs %d rows", k, len(av), len(bv)), false
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Sprintf("%s row %d: %q vs %q", k, i, av[i], bv[i]), false
			}
		}
	}
	return "", true
}

// requireSame asserts the persistent store and the in-memory reference
// hold multiset-equal representations, partition by partition.
func requireSame(t *testing.T, d *DB, ref *refDB, when string) {
	t.Helper()
	if msg, ok := equalDump(dump(t, d.Snapshot()), dump(t, ref.db)); !ok {
		t.Fatalf("%s: store and reference diverged: %s", when, msg)
	}
}

// refDB pairs the in-memory reference database with its stateful
// applier (the tuple-id allocator is monotonic, like the store's).
type refDB struct {
	db  *core.UDB
	app *Applier
}

// exec applies the statement to both the persistent store and the
// in-memory reference, asserting they report the same effect.
func exec(t *testing.T, d *DB, ref *refDB, sql string) *Result {
	t.Helper()
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	got, err := d.ExecStmt(st)
	if err != nil {
		t.Fatalf("exec %s: %v", sql, err)
	}
	want, err := ref.app.Apply(st)
	if err != nil {
		t.Fatalf("apply %s: %v", sql, err)
	}
	if got.Kind != want.Kind || got.Tuples != want.Tuples || got.ReprRows != want.ReprRows || got.Tombstones != want.Tombstones {
		t.Fatalf("%s: store reported %+v, reference %+v", sql, got, want)
	}
	return got
}

func openFixture(t *testing.T) (*DB, *refDB) {
	t.Helper()
	base := fixtureDB()
	refUDB := base.Clone()
	app, err := NewApplier(refUDB)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := store.Save(base, dir); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, Options{DisableAutoFlush: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, &refDB{db: refUDB, app: app}
}

func possRows(t *testing.T, db *core.UDB, q core.Query) []string {
	t.Helper()
	rel, err := db.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, rel.Len())
	for i, r := range rel.Rows {
		out[i] = engine.KeyString(r)
	}
	sort.Strings(out)
	return out
}

func TestInsertValues(t *testing.T) {
	d, ref := openFixture(t)
	res := exec(t, d, ref, "insert into r (a, b) values (7, 70), (8, 80)")
	if res.Tuples != 2 || res.ReprRows != 6 { // 2 tuples × 3 partitions
		t.Fatalf("res = %+v", res)
	}
	if res.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2 (open publishes 1)", res.Epoch)
	}
	requireSame(t, d, ref, "after insert")

	// The inserted tuples are certain, a/b set, c NULL.
	got := possRows(t, d.Snapshot(), core.Select(core.Rel("r"),
		engine.Cmp(engine.GE, engine.Col("a"), engine.ConstInt(7))))
	if len(got) != 2 {
		t.Fatalf("possible answers = %v", got)
	}
}

func TestInsertSelect(t *testing.T) {
	d, ref := openFixture(t)
	exec(t, d, ref, "insert into s (x, y) select y, x from s where x <= 2")
	requireSame(t, d, ref, "after insert-select")
	got := possRows(t, d.Snapshot(), core.Rel("s"))
	if len(got) != 6 {
		t.Fatalf("s has %d possible tuples, want 6", len(got))
	}

	// Descriptor-preserving: copying the uncertain attribute b of r
	// into s keeps the alternatives mutually exclusive.
	exec(t, d, ref, "insert into s (x, y) select a, b from r where a = 2")
	requireSame(t, d, ref, "after uncertain insert-select")
	snap := d.Snapshot()
	ures, err := snap.Eval(core.Select(core.Rel("s"),
		engine.Cmp(engine.EQ, engine.Col("x"), engine.ConstInt(2))), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nonEmptyD := 0
	for _, r := range ures.Rows {
		if len(r.D) > 0 {
			nonEmptyD++
		}
	}
	if nonEmptyD != 2 {
		t.Fatalf("expected 2 uncertain representation rows in s, got %d", nonEmptyD)
	}
}

func TestDeleteTombstonesAllPartitions(t *testing.T) {
	d, ref := openFixture(t)
	// b = 21 possibly holds only for tid 2's x=2 alternative.
	res := exec(t, d, ref, "delete from r where b = 21")
	if res.Tuples != 1 {
		t.Fatalf("res = %+v", res)
	}
	requireSame(t, d, ref, "after delete")
	got := possRows(t, d.Snapshot(), core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.ConstInt(2))))
	want := []string{engine.KeyString(engine.Tuple{engine.Int(2), engine.Int(20), engine.Int(200)})}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("after delete, possible tid-2 tuples = %v", got)
	}

	// Unconditional delete empties the relation (and the redundant
	// partition via wildcards).
	exec(t, d, ref, "delete from r")
	requireSame(t, d, ref, "after delete all")
	if n := len(possRows(t, d.Snapshot(), core.Rel("r"))); n != 0 {
		t.Fatalf("r still has %d possible tuples", n)
	}
	// s is untouched.
	if n := len(possRows(t, d.Snapshot(), core.Rel("s"))); n != 4 {
		t.Fatalf("s has %d possible tuples, want 4", n)
	}
}

func TestUpdateOverlappingPartitions(t *testing.T) {
	d, ref := openFixture(t)
	// b is covered by all three partitions of r; the update must keep
	// them consistent (reinsert into picked ones, wildcard the skipped
	// redundant one).
	exec(t, d, ref, "update r set b = 55 where a = 2")
	requireSame(t, d, ref, "after update b")
	got := possRows(t, d.Snapshot(), core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.ConstInt(2))))
	want := []string{
		engine.KeyString(engine.Tuple{engine.Int(2), engine.Int(55), engine.Int(200)}),
		engine.KeyString(engine.Tuple{engine.Int(2), engine.Int(55), engine.Int(201)}),
	}
	sort.Strings(want)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after update, possible tid-2 tuples = %v, want %v", got, want)
	}

	// Updating c touches only u_r_bc; the uncertain alternatives keep
	// their descriptors but all get the new value.
	exec(t, d, ref, "update r set c = 999 where a = 3")
	requireSame(t, d, ref, "after update c")
	got = possRows(t, d.Snapshot(), core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.ConstInt(3))))
	if len(got) != 1 {
		t.Fatalf("after update c, possible tid-3 tuples = %v", got)
	}
	// Validate the database is still well-formed (Definition 2.2).
	snap := d.Snapshot().Clone()
	if err := snap.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("database invalid after updates: %v", err)
	}
}

func TestUpdateAfterDeleteSurvives(t *testing.T) {
	// The regression the layer-scoped tombstones exist for: an UPDATE's
	// reinsert shares (tid, descriptor) with its tombstone; flushing
	// afterwards must not shadow the flushed reinsert, and a second
	// update must still see it.
	d, ref := openFixture(t)
	exec(t, d, ref, "update r set b = 11 where a = 1")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	requireSame(t, d, ref, "after update+flush")
	exec(t, d, ref, "update r set b = 12 where a = 1")
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	requireSame(t, d, ref, "after second update+flush")
	got := possRows(t, d.Snapshot(), core.Select(core.Rel("r"),
		engine.Cmp(engine.EQ, engine.Col("a"), engine.ConstInt(1))))
	want := engine.KeyString(engine.Tuple{engine.Int(1), engine.Int(12), engine.Int(100)})
	if len(got) != 1 || got[0] != want {
		t.Fatalf("tuple 1 after updates = %v", got)
	}
}

func TestExecErrors(t *testing.T) {
	d, _ := openFixture(t)
	for _, sql := range []string{
		"insert into nosuch values (1)",
		"insert into r (a, nope) values (1, 2)",
		"insert into r (a, a) values (1, 2)",
		"insert into r (a) values (1, 2)",
		"insert into s (x, y) select x from s",
		"delete from nosuch",
		"update r set nope = 1",
		"update r set a = 1, a = 2",
		"delete from r where nosuchcol = 1",
		"select a from r",
	} {
		if _, err := d.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
	// Errors must not have bumped the epoch or corrupted state.
	if d.Epoch() != 1 {
		t.Fatalf("failed statements changed the epoch to %d", d.Epoch())
	}
}

func TestDeleteMatchingNothingIsNoop(t *testing.T) {
	d, ref := openFixture(t)
	st0 := d.Stats()
	res := exec(t, d, ref, "delete from r where a = 12345")
	if res.Tuples != 0 || res.Tombstones != 0 {
		t.Fatalf("res = %+v", res)
	}
	st1 := d.Stats()
	if st1.Epoch != st0.Epoch || st1.WALBytes != st0.WALBytes {
		t.Fatal("no-op delete must not commit anything")
	}
}

func TestApplyRejectsQueries(t *testing.T) {
	db := fixtureDB()
	st, err := sqlparse.ParseStatement("select a from r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(db, st); err == nil || !strings.Contains(err.Error(), "DML statement") {
		t.Fatalf("Apply accepted a query (or gave an unhelpful error): %v", err)
	}
}
