package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of a per-query trace tree: an operator's actual
// row/batch counts, inclusive wall time, and a small bag of
// operator-specific stats (segments read, cache hits, bytes decoded).
// The tree mirrors the physical plan; it is built single-threaded at
// lowering time, but counters are updated from however many goroutines
// drive the operator (parallel joins scatter work), so all updates are
// atomic. A nil *Span is the disabled tracer: every method no-ops, so
// call sites need no branches beyond the receiver nil check the
// compiler already emits.
type Span struct {
	op  string
	est float64 // estimated rows at build time; NaN-free, <0 = unknown

	rows    atomic.Int64
	batches atomic.Int64
	nanos   atomic.Int64

	mu       sync.Mutex
	kv       map[string]int64
	children []*Span
}

// NewSpan returns an enabled root span.
func NewSpan(op string) *Span { return &Span{op: op, est: -1} }

// Child creates, attaches, and returns a child span; nil-safe (a nil
// parent returns nil, keeping the whole tree disabled).
func (s *Span) Child(op string, est float64) *Span {
	if s == nil {
		return nil
	}
	c := &Span{op: op, est: est}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// AddRows counts n rows emitted by the operator.
func (s *Span) AddRows(n int64) {
	if s == nil {
		return
	}
	s.rows.Add(n)
}

// AddBatches counts n batches emitted.
func (s *Span) AddBatches(n int64) {
	if s == nil {
		return
	}
	s.batches.Add(n)
}

// AddNanos accumulates inclusive wall time spent inside the operator
// (children included, as in EXPLAIN ANALYZE).
func (s *Span) AddNanos(n int64) {
	if s == nil {
		return
	}
	s.nanos.Add(n)
}

// AddStat accumulates an operator-specific named statistic.
func (s *Span) AddStat(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.kv == nil {
		s.kv = map[string]int64{}
	}
	s.kv[key] += v
	s.mu.Unlock()
}

// Op returns the operator label ("" on nil).
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

// Rows returns the actual rows emitted.
func (s *Span) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// Batches returns the batches emitted.
func (s *Span) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batches.Load()
}

// Duration returns the inclusive wall time.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.nanos.Load())
}

// Est returns the build-time row estimate (<0 = unknown).
func (s *Span) Est() float64 {
	if s == nil {
		return -1
	}
	return s.est
}

// Stat returns one named statistic.
func (s *Span) Stat(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kv[key]
}

// Children returns the child spans in attachment order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// DriftLimit is the estimate-vs-actual ratio past which a node is
// flagged in the rendering — the signal the optimizer-stats work feeds
// on.
const DriftLimit = 10

// drift reports the off-by ratio between estimate and actual and
// whether it crosses DriftLimit. Estimates below one row are clamped
// to one (estimating 0.3 rows and seeing 2 is not drift worth
// flagging).
func drift(est float64, actual int64) (ratio float64, flagged bool) {
	if est < 0 {
		return 0, false
	}
	e := est
	if e < 1 {
		e = 1
	}
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	ratio = e / a
	if a > e {
		ratio = a / e
	}
	return ratio, ratio > DriftLimit
}

// Render writes the trace tree as an indented text plan annotated with
// actuals, estimates, and per-operator stats — the EXPLAIN ANALYZE
// body. Nodes whose estimate is off by more than DriftLimit× carry an
// "est-drift" flag.
func (s *Span) Render(b *strings.Builder) {
	s.render(b, 0, true)
}

func (s *Span) render(b *strings.Builder, depth int, root bool) {
	if s == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	head := indent
	if !root {
		head = indent + "->  "
	}
	fmt.Fprintf(b, "%s%s  (actual rows=%d batches=%d time=%s", head, s.op,
		s.Rows(), s.Batches(), s.Duration().Round(time.Microsecond))
	if s.est >= 0 {
		fmt.Fprintf(b, " est=%.0f", s.est)
		if ratio, off := drift(s.est, s.Rows()); off {
			fmt.Fprintf(b, " est-drift=%.0fx", ratio)
		}
	}
	b.WriteString(")\n")
	s.mu.Lock()
	if len(s.kv) > 0 {
		keys := make([]string, 0, len(s.kv))
		for k := range s.kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, s.kv[k])
		}
		fmt.Fprintf(b, "%s      Stats: %s\n", indent, strings.Join(parts, " "))
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.render(b, depth+1, false)
	}
}

// String renders the tree (convenience for logs and tests).
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

// spanJSON is the wire form of a span tree.
type spanJSON struct {
	Op       string           `json:"op"`
	Rows     int64            `json:"rows"`
	Batches  int64            `json:"batches"`
	TimeMS   float64          `json:"time_ms"`
	EstRows  *float64         `json:"est_rows,omitempty"`
	EstDrift bool             `json:"est_drift,omitempty"`
	Stats    map[string]int64 `json:"stats,omitempty"`
	Children []*spanJSON      `json:"children,omitempty"`
}

func (s *Span) toJSON() *spanJSON {
	if s == nil {
		return nil
	}
	j := &spanJSON{
		Op:      s.op,
		Rows:    s.Rows(),
		Batches: s.Batches(),
		TimeMS:  float64(s.nanos.Load()) / 1e6,
	}
	if s.est >= 0 {
		est := s.est
		j.EstRows = &est
		_, j.EstDrift = drift(est, j.Rows)
	}
	s.mu.Lock()
	if len(s.kv) > 0 {
		j.Stats = make(map[string]int64, len(s.kv))
		for k, v := range s.kv {
			j.Stats[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		j.Children = append(j.Children, c.toJSON())
	}
	return j
}

// MarshalJSON renders the span tree as a nested object (the /query
// "trace" field and the slow-query log use it).
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toJSON())
}
