package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// nShards is the number of cache-line-padded cells a Counter spreads
// its increments over. Eight covers the concurrency levels the server
// runs at (admission control caps in-flight queries near 2×GOMAXPROCS)
// without bloating every counter.
const nShards = 8

// paddedInt64 occupies a full cache line so neighboring shards never
// false-share.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// shardIdx picks a shard from the goroutine's stack address: distinct
// goroutines live on distinct stacks, so concurrent writers spread
// across cells without any per-goroutine state or runtime hooks. The
// uintptr conversion is only used as a hash, never dereferenced.
func shardIdx() int {
	var b byte
	return int((uintptr(unsafe.Pointer(&b)) >> 10) % nShards)
}

// Counter is a monotonically increasing metric, sharded to avoid
// hot-path contention. The zero value is unusable; obtain counters
// from a Registry.
type Counter struct {
	shards [nShards]paddedInt64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIdx()].v.Add(n)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	fn   func() float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge value (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge (calling the backing function if one was
// registered with GaugeFunc).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets is the default histogram bucketing for latencies
// observed in seconds: 100µs to 10s, roughly logarithmic — the range
// between a cached point query and the per-query deadline.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates observations into fixed buckets. Observe is
// lock-free: one atomic add on the bucket, one on the count, and a CAS
// on the float sum.
type Histogram struct {
	bounds []float64 // sorted inclusive upper bounds; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// NewHistogram returns a standalone (unregistered) histogram with the
// given buckets (nil selects DefLatencyBuckets) — for internal
// estimates that should not appear in /metrics, like the
// coordinator's hedge-delay quantile.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	h := &Histogram{bounds: buckets}
	h.counts = make([]atomic.Int64, len(buckets)+1)
	return h
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// q-th observation. With no observations it returns 0; when the
// quantile lands in the overflow bucket it returns the highest bound
// (the histogram cannot resolve beyond it).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance inside a family.
type series struct {
	labelValues []string
	c           *Counter
	g           *Gauge
	h           *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.buckets}
		h.counts = make([]atomic.Int64, len(f.buckets)+1)
		s.h = h
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Lookups have get-or-create semantics: asking for
// an existing (name, kind) returns the registered instance, so call
// sites do not need to coordinate registration order.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Default is the process-wide registry storage-layer metrics register
// on (WAL, flush/compaction, prune memo). Server-scoped metrics live
// on per-Server registries instead; /metrics renders both.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: map[string]*series{}}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter returns the unlabeled counter name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).get(nil).c
}

// CounterWith returns the counter for one label combination of a
// labeled family.
func (r *Registry) CounterWith(name, help string, labels []string, values ...string) *Counter {
	return r.family(name, help, kindCounter, labels, nil).get(values).c
}

// Gauge returns the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).get(nil).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil).get(nil).g.fn = fn
}

// GaugeFuncWith registers a scrape-time gauge for one label
// combination (e.g. per-catalog memtable size).
func (r *Registry) GaugeFuncWith(name, help string, labels []string, values []string, fn func() float64) {
	r.family(name, help, kindGauge, labels, nil).get(values).g.fn = fn
}

// GaugeWith returns the gauge for one label combination.
func (r *Registry) GaugeWith(name, help string, labels []string, values ...string) *Gauge {
	return r.family(name, help, kindGauge, labels, nil).get(values).g
}

// Histogram returns the unlabeled histogram name with the given
// buckets (nil selects DefLatencyBuckets). Buckets are fixed at first
// registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return r.family(name, help, kindHistogram, nil, buckets).get(nil).h
}

// HistogramWith returns the histogram for one label combination.
func (r *Registry) HistogramWith(name, help string, buckets []float64, labels []string, values ...string) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return r.family(name, help, kindHistogram, labels, buckets).get(values).h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelString renders {k="v",...} for the series, with extra appended
// (used for the histogram le label). Returns "" when empty.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value; Prometheus accepts Go's shortest
// float form plus +Inf/NaN.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range sers {
			ls := labelString(f.labels, s.labelValues, "", "")
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.c.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(s.g.Value()))
			case kindHistogram:
				var cum int64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelString(f.labels, s.labelValues, "le", formatFloat(bound)), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelValues, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(s.h.Sum()))
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, cum); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
