package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("urel_test_total", "test")
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter lost updates: got %d want %d", got, goroutines*perG)
	}
	// Get-or-create returns the same instance.
	if again := r.Counter("urel_test_total", "test"); again.Value() != goroutines*perG {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var s *Span
	s.AddRows(1)
	s.AddStat("x", 1)
	if s.Child("op", 1) != nil {
		t.Fatal("nil span produced a child")
	}
	var l *SlowLog
	if l.Enabled() {
		t.Fatal("nil slow log enabled")
	}
	l.Record(SlowEntry{ElapsedMS: 1e9})
}

// TestExpositionFormat renders a populated registry and checks every
// line against the Prometheus text format: HELP/TYPE comments, sample
// lines parse, histogram buckets are cumulative (monotonic) and agree
// with _count.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("urel_queries_total", "queries served").Add(7)
	r.CounterWith("urel_mode_total", "per mode", []string{"mode"}, "conf").Add(3)
	r.CounterWith("urel_mode_total", "per mode", []string{"mode"}, `we"ird\mo
de`).Add(1)
	r.Gauge("urel_active", "active now").Set(2.5)
	r.GaugeFunc("urel_uptime_seconds", "uptime", func() float64 { return 12 })
	h := r.Histogram("urel_query_seconds", "latency", nil)
	for _, v := range []float64{0.0002, 0.003, 0.003, 0.07, 42} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var (
		lastBucket  = map[string]int64{} // family -> previous cumulative
		bucketFinal = map[string]int64{}
		countVal    = map[string]int64{}
		sawType     = map[string]string{}
	)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition:\n%s", out)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			sawType[parts[2]] = parts[3]
			continue
		}
		// Sample line: name{labels} value — value must parse.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if strings.HasSuffix(base, "_bucket") {
			fam := strings.TrimSuffix(base, "_bucket")
			cum := int64(val)
			if cum < lastBucket[fam] {
				t.Fatalf("histogram %s buckets not monotonic at %q", fam, line)
			}
			lastBucket[fam] = cum
			bucketFinal[fam] = cum
			if !strings.Contains(name, `le="`) {
				t.Fatalf("bucket line missing le label: %q", line)
			}
		}
		if strings.HasSuffix(base, "_count") {
			countVal[strings.TrimSuffix(base, "_count")] = int64(val)
		}
	}
	for _, want := range []string{"urel_queries_total", "urel_mode_total", "urel_active", "urel_uptime_seconds", "urel_query_seconds"} {
		if _, ok := sawType[want]; !ok {
			t.Fatalf("family %s missing a TYPE line:\n%s", want, out)
		}
	}
	if bucketFinal["urel_query_seconds"] != 5 || countVal["urel_query_seconds"] != 5 {
		t.Fatalf("histogram +Inf bucket %d and _count %d should both be 5",
			bucketFinal["urel_query_seconds"], countVal["urel_query_seconds"])
	}
	if !strings.Contains(out, `urel_mode_total{mode="conf"} 3`) {
		t.Fatalf("labeled counter missing:\n%s", out)
	}
	if !strings.Contains(out, `mode="we\"ird\\mo\nde"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, "urel_uptime_seconds 12") {
		t.Fatalf("gauge func not evaluated at scrape:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "x", []float64{0.01, 0.1, 1})
	h.Observe(0.01) // boundary lands in its own bucket (le is inclusive)
	h.Observe(0.5)
	h.Observe(99)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 99.5 || got > 99.52 {
		t.Fatalf("sum = %g", got)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 2`,
		`h_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("query")
	scan := root.Child("Scan(customer)", 1000)
	scan.AddRows(50)
	scan.AddBatches(1)
	scan.AddNanos(int64(3 * time.Millisecond))
	scan.AddStat("segments_read", 2)
	scan.AddStat("segments_read", 1)
	filt := root.Child("Filter", 40)
	filt.AddRows(38)

	if scan.Rows() != 50 || scan.Stat("segments_read") != 3 {
		t.Fatalf("span counters wrong: rows=%d stat=%d", scan.Rows(), scan.Stat("segments_read"))
	}
	text := root.String()
	if !strings.Contains(text, "Scan(customer)") || !strings.Contains(text, "actual rows=50") {
		t.Fatalf("render missing actuals:\n%s", text)
	}
	// 1000 estimated vs 50 actual is a 20x drift: must be flagged.
	if !strings.Contains(text, "est-drift=20x") {
		t.Fatalf("drift not flagged:\n%s", text)
	}
	// 40 vs 38 is within 10x: must not be flagged on that node.
	if strings.Count(text, "est-drift") != 1 {
		t.Fatalf("drift flag count wrong:\n%s", text)
	}
	buf, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Op       string `json:"op"`
		Children []struct {
			Op       string           `json:"op"`
			Rows     int64            `json:"rows"`
			EstDrift bool             `json:"est_drift"`
			Stats    map[string]int64 `json:"stats"`
		} `json:"children"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Children) != 2 || decoded.Children[0].Rows != 50 ||
		!decoded.Children[0].EstDrift || decoded.Children[0].Stats["segments_read"] != 3 {
		t.Fatalf("JSON tree wrong: %s", buf)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry()
	total := r.Counter("urel_slow_queries_total", "slow queries")
	l := NewSlowLog(&buf, 10*time.Millisecond, total)
	l.Record(SlowEntry{SQL: "select fast", ElapsedMS: 2})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %s", buf.String())
	}
	l.Record(SlowEntry{SQL: "select slow", ElapsedMS: 25, Mode: "conf"})
	if total.Value() != 1 {
		t.Fatalf("slow counter = %d", total.Value())
	}
	var e SlowEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("slow log line is not one JSON object: %v\n%s", err, buf.String())
	}
	if e.SQL != "select slow" || e.Mode != "conf" || e.Time == "" {
		t.Fatalf("bad entry: %+v", e)
	}
}

func BenchmarkCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("urel_bench_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("lost updates: %d != %d", c.Value(), b.N)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("urel_bench_seconds", "bench", nil)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.0001)
	}
	_ = fmt.Sprintf("%d", h.Count())
}
