package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowEntry is one slow-query log record. Fields with zero values are
// omitted so the line stays compact.
type SlowEntry struct {
	// Time is the completion time in RFC 3339 with milliseconds.
	Time string `json:"time"`
	// SQL is the whitespace-normalized statement text (string literals
	// preserved byte-for-byte).
	SQL       string  `json:"sql"`
	DB        string  `json:"db,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	RowCount  int     `json:"row_count"`
	Truncated bool    `json:"truncated,omitempty"`
	// DeadlineMS is the per-query deadline in effect, if any.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Accuracy and Estimator describe the CONF path taken.
	Accuracy  string `json:"accuracy,omitempty"`
	Estimator string `json:"estimator,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`
	// Trace is the operator trace tree (present when tracing ran).
	Trace *Span `json:"trace,omitempty"`
}

// SlowLog emits one JSON line per query slower than Threshold. A nil
// *SlowLog is disabled: Enabled reports false and Record no-ops, so
// the serving path pays a nil check when the operator did not ask for
// slow-query logging.
type SlowLog struct {
	threshold time.Duration
	total     *Counter

	mu sync.Mutex
	w  io.Writer
}

// NewSlowLog returns a slow-query log writing JSON lines to w for
// queries at or above threshold. total, if non-nil, counts emitted
// lines (wired to urel_slow_queries_total).
func NewSlowLog(w io.Writer, threshold time.Duration, total *Counter) *SlowLog {
	if w == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{threshold: threshold, w: w, total: total}
}

// Enabled reports whether the log is active (false on nil).
func (l *SlowLog) Enabled() bool { return l != nil }

// Threshold returns the configured cutoff (0 on nil).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record emits e if its elapsed time is at or above the threshold.
// The JSON line is written atomically under a lock so concurrent
// queries never interleave bytes.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || time.Duration(e.ElapsedMS*float64(time.Millisecond)) < l.threshold {
		return
	}
	if e.Time == "" {
		e.Time = time.Now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
	l.total.Inc()
}
