// Package obs is the dependency-free observability layer: an atomic
// metrics registry with Prometheus text exposition, a per-query
// operator trace tree, and a structured slow-query log.
//
// The package is a leaf — it imports nothing above the standard
// library — so every layer of the system (engine, store, txn, server)
// can instrument itself without import cycles. Instrumentation is
// pay-for-what-you-use: a nil *Span or nil *SlowLog is a valid
// disabled instance whose methods are no-ops, so the hot path costs a
// nil check when tracing is off; counters are sharded across cache
// lines so concurrent queries do not contend on one atomic word.
//
// Metric naming follows the Prometheus conventions: every family is
// prefixed urel_, counters end in _total, and histograms observe
// seconds (urel_wal_fsync_seconds) or carry an explicit unit suffix
// (_bytes). Process-wide storage metrics (WAL latency, flush and
// compaction durations, prune-memo hits) register on the package
// Default registry; per-server metrics register on the server's own
// Registry so tests with multiple servers stay isolated. GET /metrics
// renders both.
package obs
