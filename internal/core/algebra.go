package core

import (
	"fmt"
	"strings"

	"urel/internal/engine"
)

// Query is a positive relational algebra query over the logical schema,
// extended with the poss operator (Section 3 of the paper). Conditions
// are engine expressions over qualified logical attribute names
// ("<alias>.<attr>"; unqualified names resolve when unambiguous).
type Query interface {
	// Attrs returns the qualified output attributes of the query given
	// the database's logical schema.
	Attrs(db *UDB) ([]string, error)
	// String renders the query algebraically.
	String() string
}

// RelQ references a logical relation, optionally under an alias
// (aliases are required to be unique within a query; self-joins must
// alias at least one side, cf. Figure 4's T1 ∩ T2 = ∅ requirement).
type RelQ struct {
	Name string
	As   string
}

// Rel references a logical relation.
func Rel(name string) *RelQ { return &RelQ{Name: name} }

// RelAs references a logical relation under an alias.
func RelAs(name, as string) *RelQ { return &RelQ{Name: name, As: as} }

func (r *RelQ) alias() string {
	if r.As != "" {
		return r.As
	}
	return r.Name
}

// Attrs returns the alias-qualified attributes of the relation.
func (r *RelQ) Attrs(db *UDB) ([]string, error) {
	rs, ok := db.Rels[r.Name]
	if !ok {
		return nil, fmt.Errorf("core: unknown relation %q", r.Name)
	}
	out := make([]string, len(rs.Attrs))
	for i, a := range rs.Attrs {
		out[i] = r.alias() + "." + a
	}
	return out, nil
}

func (r *RelQ) String() string {
	if r.As != "" {
		return r.Name + " AS " + r.As
	}
	return r.Name
}

// SelectQ is a selection σ_cond(Q).
type SelectQ struct {
	Q    Query
	Cond engine.Expr
}

// Select builds a selection.
func Select(q Query, cond engine.Expr) *SelectQ { return &SelectQ{Q: q, Cond: cond} }

// Attrs of a selection are those of its input.
func (s *SelectQ) Attrs(db *UDB) ([]string, error) { return s.Q.Attrs(db) }

func (s *SelectQ) String() string {
	return fmt.Sprintf("σ[%s](%s)", s.Cond, s.Q)
}

// ProjectQ is a projection π_attrs(Q). Attribute names may be qualified
// or unqualified (resolved against the input attributes).
type ProjectQ struct {
	Q      Query
	Attrs_ []string
}

// Project builds a projection.
func Project(q Query, attrs ...string) *ProjectQ { return &ProjectQ{Q: q, Attrs_: attrs} }

// Attrs resolves the projection list against the input attributes.
func (p *ProjectQ) Attrs(db *UDB) ([]string, error) {
	in, err := p.Q.Attrs(db)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(p.Attrs_))
	for i, a := range p.Attrs_ {
		q, err := resolveAttr(a, in)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

func (p *ProjectQ) String() string {
	return fmt.Sprintf("π[%s](%s)", strings.Join(p.Attrs_, ","), p.Q)
}

// JoinQ is a join Q1 ⋈_cond Q2 (cond nil = cross product).
type JoinQ struct {
	L, R Query
	Cond engine.Expr
}

// Join builds a join.
func Join(l, r Query, cond engine.Expr) *JoinQ { return &JoinQ{L: l, R: r, Cond: cond} }

// Attrs of a join is the concatenation of both inputs' attributes.
func (j *JoinQ) Attrs(db *UDB) ([]string, error) {
	l, err := j.L.Attrs(db)
	if err != nil {
		return nil, err
	}
	r, err := j.R.Attrs(db)
	if err != nil {
		return nil, err
	}
	return append(append([]string{}, l...), r...), nil
}

func (j *JoinQ) String() string {
	if j.Cond == nil {
		return fmt.Sprintf("(%s × %s)", j.L, j.R)
	}
	return fmt.Sprintf("(%s ⋈[%s] %s)", j.L, j.Cond, j.R)
}

// UnionQ is a union of two schema-compatible queries (positional on
// attributes; output attribute names from the left input).
type UnionQ struct {
	L, R Query
}

// UnionOf builds a union.
func UnionOf(l, r Query) *UnionQ { return &UnionQ{L: l, R: r} }

// Attrs of a union are the left input's attributes.
func (u *UnionQ) Attrs(db *UDB) ([]string, error) {
	l, err := u.L.Attrs(db)
	if err != nil {
		return nil, err
	}
	r, err := u.R.Attrs(db)
	if err != nil {
		return nil, err
	}
	if len(l) != len(r) {
		return nil, fmt.Errorf("core: union arity mismatch: %d vs %d", len(l), len(r))
	}
	return l, nil
}

func (u *UnionQ) String() string { return fmt.Sprintf("(%s ∪ %s)", u.L, u.R) }

// PossQ closes the possible-worlds semantics: poss(Q) is the set of
// tuples possible in Q across all worlds. It translates to a
// (duplicate-eliminating) projection on the value attributes of the
// representation (Figure 4).
type PossQ struct {
	Q Query
}

// Poss builds a poss query.
func Poss(q Query) *PossQ { return &PossQ{Q: q} }

// Attrs of poss are its input's attributes.
func (p *PossQ) Attrs(db *UDB) ([]string, error) { return p.Q.Attrs(db) }

func (p *PossQ) String() string { return fmt.Sprintf("poss(%s)", p.Q) }

// resolveAttr resolves a possibly-unqualified attribute against a list
// of qualified attributes.
func resolveAttr(name string, attrs []string) (string, error) {
	for _, a := range attrs {
		if a == name {
			return a, nil
		}
	}
	found := ""
	for _, a := range attrs {
		if unqualify(a) == name {
			if found != "" {
				return "", fmt.Errorf("core: ambiguous attribute %q in %v", name, attrs)
			}
			found = a
		}
	}
	if found == "" {
		return "", fmt.Errorf("core: unknown attribute %q in %v", name, attrs)
	}
	return found, nil
}

// collectAliases walks the query and returns the relation aliases in
// occurrence order, erroring on duplicates (which would violate the
// translation's disjoint-tuple-id requirement).
func collectAliases(q Query) ([]*RelQ, error) {
	var rels []*RelQ
	seen := map[string]bool{}
	var walk func(Query) error
	walk = func(n Query) error {
		switch m := n.(type) {
		case *RelQ:
			a := m.alias()
			if seen[a] {
				return fmt.Errorf("core: duplicate relation alias %q (alias self-joins explicitly)", a)
			}
			seen[a] = true
			rels = append(rels, m)
		case *SelectQ:
			return walk(m.Q)
		case *ProjectQ:
			return walk(m.Q)
		case *JoinQ:
			if err := walk(m.L); err != nil {
				return err
			}
			return walk(m.R)
		case *UnionQ:
			if err := walk(m.L); err != nil {
				return err
			}
			return walk(m.R)
		case *PossQ:
			return walk(m.Q)
		default:
			return fmt.Errorf("core: unsupported query node %T", n)
		}
		return nil
	}
	if err := walk(q); err != nil {
		return nil, err
	}
	return rels, nil
}

// Relations returns the distinct logical relation names a query
// references, in first-reference order. The cluster coordinator uses
// it to route: a query touching a hash-sharded relation must scatter,
// one touching only replicated relations can run on any single shard.
// Unlike collectAliases it tolerates duplicate aliases — routing
// happens before plan validation, which reports that error properly.
func Relations(q Query) []string {
	var names []string
	seen := map[string]bool{}
	var walk func(Query)
	walk = func(n Query) {
		switch m := n.(type) {
		case *RelQ:
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		case *SelectQ:
			walk(m.Q)
		case *ProjectQ:
			walk(m.Q)
		case *JoinQ:
			walk(m.L)
			walk(m.R)
		case *UnionQ:
			walk(m.L)
			walk(m.R)
		case *PossQ:
			walk(m.Q)
		}
	}
	walk(q)
	return names
}
