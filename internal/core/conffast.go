package core

import (
	"errors"
	"math/rand"
	"time"

	"urel/internal/engine"
	"urel/internal/ws"
)

// Confidence fast paths. The Section 7 confidence computation is #P-hard
// in general, so the exact enumerator (prob.go) is the wrong cost model
// for interactive traffic. Two cheaper evaluation strategies sit in
// front of it:
//
//   - Bounds: a single relational pass over the result representation
//     computes per-tuple [certain, possible] confidence bounds — the
//     under/over-approximation semantics of UA-DBs (Feng & Glavic,
//     "Uncertainty Annotated Databases"). The lower bound is the most
//     probable single disjunct, max_i P(d_i); the upper bound is
//     Boole's union bound, min(1, Σ_i P(d_i)). Both are honest:
//     certain ≤ exact ≤ possible always holds.
//
//   - Read-once: when a tuple's lineage — the DNF ∨_i ∧_j (x_j = v_j)
//     over its ws-descriptors — decomposes into variable-disjoint
//     factors that are each either a single conjunction or a set of
//     pairwise-exclusive conjunctions, the exact confidence is a
//     product/sum computable in (near-)linear time, per the tractable
//     lineage classes of Amarilli et al. ("Structurally Tractable
//     Uncertain Data"). The detector is sound: it either certifies the
//     decomposition and evaluates exactly, or rejects and the caller
//     falls back to enumeration/Monte-Carlo.
//
// ConfidencesDispatch routes every answer tuple through the cheapest
// exact path that applies (read-once → enumeration → Monte-Carlo) under
// an optional deadline, reporting per-path counts.

// ErrConfDeadline reports that a confidence computation exceeded its
// deadline. Callers (the query server's "auto" accuracy) detect it with
// errors.Is and degrade to ConfidenceBounds.
var ErrConfDeadline = errors.New("core: confidence deadline exceeded")

// TupleBounds holds one distinct answer tuple with lower/upper bounds
// on its confidence.
type TupleBounds struct {
	Vals engine.Tuple
	// Certain is a lower bound on the tuple's exact confidence.
	Certain float64
	// Possible is an upper bound on the tuple's exact confidence.
	Possible float64
}

// ConfidenceBounds computes, for every distinct value tuple of the
// result, certain/possible confidence bounds in one pass over the
// representation rows: Certain = max_i P(d_i), Possible =
// min(1, Σ_i P(d_i)). A tuple with a trivial (empty) descriptor row is
// pinned to [1, 1]. Cost is O(rows × descriptor width) — no
// enumeration, no sampling.
func (r *UResult) ConfidenceBounds() []TupleBounds {
	type acc struct {
		vals engine.Tuple
		lo   float64
		sum  float64
	}
	accs := map[string]*acc{}
	var order []string
	for _, row := range r.Rows {
		k := engine.KeyString(row.Vals)
		a, ok := accs[k]
		if !ok {
			a = &acc{vals: row.Vals}
			accs[k] = a
			order = append(order, k)
		}
		p := row.D.Prob(r.W)
		if p > a.lo {
			a.lo = p
		}
		a.sum += p
	}
	out := make([]TupleBounds, 0, len(order))
	for _, k := range order {
		a := accs[k]
		hi := a.sum
		if hi > 1 {
			hi = 1
		}
		out = append(out, TupleBounds{Vals: a.vals, Certain: a.lo, Possible: hi})
	}
	return out
}

// maxExclusivePairwise bounds the quadratic pairwise-exclusivity check
// of the read-once detector; larger mixed components fall back to
// enumeration rather than paying O(m²) comparisons.
const maxExclusivePairwise = 64

// DescriptorUnionReadOnce computes P(∪ events(d)) exactly when the
// descriptor set decomposes into independent tractable factors, and
// reports ok=false otherwise (never an approximate value). The
// decomposition: after deduplication, descriptors are grouped into
// connected components by shared non-trivial variables; components are
// variable-disjoint and therefore independent, so
//
//	P(∪ all) = 1 − ∏_c (1 − P(∪ component c)).
//
// A component is tractable when it is a single descriptor (a
// conjunction of independent variables → product of assignment
// probabilities) or a set of pairwise-inconsistent descriptors
// (mutually exclusive events → sum of their products). Anything else —
// genuinely shared variables without exclusivity, the hard lineage —
// is rejected.
func DescriptorUnionReadOnce(w *ws.WorldTable, ds []ws.Descriptor) (float64, bool) {
	// Dedup identical descriptors (repeated representation rows add
	// nothing to the union) and strip trivial assignments.
	seen := map[string]bool{}
	uniq := make([]ws.Descriptor, 0, len(ds))
	for _, d := range ds {
		nd := nontrivial(d)
		if len(nd) == 0 {
			return 1, true // present in every world
		}
		k := nd.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, nd)
	}

	// Connected components over shared variables (union-find on
	// descriptor indices keyed by variable).
	parent := make([]int, len(uniq))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(i, j int) {
		ri, rj := find(i), find(j)
		if ri != rj {
			parent[rj] = ri
		}
	}
	byVar := map[ws.Var]int{}
	for i, d := range uniq {
		for _, a := range d {
			if j, ok := byVar[a.Var]; ok {
				union(i, j)
			} else {
				byVar[a.Var] = i
			}
		}
	}
	comps := map[int][]ws.Descriptor{}
	var compOrder []int
	for i, d := range uniq {
		r := find(i)
		if _, ok := comps[r]; !ok {
			compOrder = append(compOrder, r)
		}
		comps[r] = append(comps[r], d)
	}

	// Evaluate each component; combine by independence.
	noneProb := 1.0 // probability that no component fires
	for _, r := range compOrder {
		members := comps[r]
		p, ok := componentUnionProb(w, members)
		if !ok {
			return 0, false
		}
		noneProb *= 1 - p
	}
	return clamp01(1 - noneProb), true
}

// componentUnionProb evaluates one variable-connected component of the
// decomposition, or rejects it.
func componentUnionProb(w *ws.WorldTable, members []ws.Descriptor) (float64, bool) {
	if len(members) == 1 {
		// A single conjunction over distinct variables: product.
		return members[0].Prob(w), true
	}
	// All single assignments of one shared variable: pairwise exclusive
	// (values are distinct after dedup), sum in O(m).
	singleVar := true
	for _, d := range members {
		if len(d) != 1 {
			singleVar = false
			break
		}
	}
	if singleVar {
		sum := 0.0
		for _, d := range members {
			sum += w.Prob(d[0].Var, d[0].Val)
		}
		return clamp01(sum), true
	}
	// General exclusivity: every pair conflicts on some shared variable,
	// so the events are disjoint and the union is the sum. Quadratic;
	// bounded.
	if len(members) > maxExclusivePairwise {
		return 0, false
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if members[i].ConsistentWith(members[j]) {
				return 0, false
			}
		}
	}
	sum := 0.0
	for _, d := range members {
		sum += d.Prob(w)
	}
	return clamp01(sum), true
}

// nontrivial strips trivial-variable assignments (padding artifacts)
// from a descriptor.
func nontrivial(d ws.Descriptor) ws.Descriptor {
	keep := true
	for _, a := range d {
		if a.Var == ws.TrivialVar {
			keep = false
			break
		}
	}
	if keep {
		return d
	}
	out := make(ws.Descriptor, 0, len(d))
	for _, a := range d {
		if a.Var != ws.TrivialVar {
			out = append(out, a)
		}
	}
	return out
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ConfOptions configures the confidence dispatcher.
type ConfOptions struct {
	// MCSamples is the Monte-Carlo sample count for lineage past the
	// exact enumeration cap (default 20000).
	MCSamples int
	// MCSeed seeds the Monte-Carlo estimator (default 1).
	MCSeed int64
	// Deadline, when non-zero, bounds the whole computation; exceeding
	// it returns ErrConfDeadline.
	Deadline time.Time
	// NoReadOnce disables the read-once fast path, forcing the legacy
	// enumeration/Monte-Carlo policy (benchmark baselines, tests).
	NoReadOnce bool
}

// ConfPathStats counts the distinct answer tuples routed through each
// evaluation path by ConfidencesDispatch.
type ConfPathStats struct {
	// ReadOnce: exact, via the independence/exclusivity decomposition.
	ReadOnce int
	// Enum: exact, via joint-domain enumeration.
	Enum int
	// MC: Monte-Carlo estimate (lineage past the enumeration cap).
	MC int
}

// Estimator returns the response label summarizing the paths taken:
// "monte-carlo" if any tuple was sampled, else "exact" if any tuple was
// enumerated, else "read-once" (every tuple took the fast path).
func (s ConfPathStats) Estimator() string {
	switch {
	case s.MC > 0:
		return "monte-carlo"
	case s.Enum > 0:
		return "exact"
	default:
		return "read-once"
	}
}

// ConfidencesDispatch computes per-tuple confidences through the
// cheapest applicable path: the read-once exact evaluation where the
// detector certifies tractable lineage, joint-domain enumeration below
// the cap otherwise, and seeded Monte-Carlo sampling past it. Results
// are exact except for tuples counted in stats.MC. The deadline (if
// set) is checked inside the enumeration recursion and the sampling
// loop, so a budget overrun surfaces as ErrConfDeadline instead of an
// unbounded stall.
func (r *UResult) ConfidencesDispatch(opts ConfOptions) ([]TupleConfidence, ConfPathStats, error) {
	if opts.MCSamples <= 0 {
		opts.MCSamples = 20000
	}
	if opts.MCSeed == 0 {
		opts.MCSeed = 1
	}
	check := deadlineChecker(opts.Deadline)
	groups, order := r.groupDescriptors()
	out := make([]TupleConfidence, len(order))
	stats := ConfPathStats{}
	var mcKeys []string
	mcIdx := map[string]int{}
	for i, k := range order {
		g := groups[k]
		if !opts.NoReadOnce {
			if p, ok := DescriptorUnionReadOnce(r.W, g.ds); ok {
				out[i] = TupleConfidence{Vals: g.vals, P: p}
				stats.ReadOnce++
				continue
			}
		}
		p, err := descriptorUnionProbCheck(r.W, g.ds, check)
		switch {
		case err == nil:
			out[i] = TupleConfidence{Vals: g.vals, P: p}
			stats.Enum++
		case errors.Is(err, ErrConfidenceCap):
			mcIdx[k] = i
			mcKeys = append(mcKeys, k)
			stats.MC++
		default:
			return nil, ConfPathStats{}, err
		}
	}
	if len(mcKeys) > 0 {
		rng := rand.New(rand.NewSource(opts.MCSeed))
		hits := make(map[string]int, len(mcKeys))
		for i := 0; i < opts.MCSamples; i++ {
			if check != nil {
				if err := check(); err != nil {
					return nil, ConfPathStats{}, err
				}
			}
			f := r.W.SampleWorld(rng)
			for _, k := range mcKeys {
				for _, d := range groups[k].ds {
					if d.ExtendedBy(f) {
						hits[k]++
						break
					}
				}
			}
		}
		for _, k := range mcKeys {
			out[mcIdx[k]] = TupleConfidence{
				Vals: groups[k].vals,
				P:    float64(hits[k]) / float64(opts.MCSamples),
			}
		}
	}
	return out, stats, nil
}

// deadlineChecker returns a cheap deadline probe (nil when no deadline
// is set). The probe rate-limits time.Now to every 256th call, so it
// can be invoked per enumeration leaf / per sample.
func deadlineChecker(deadline time.Time) func() error {
	if deadline.IsZero() {
		return nil
	}
	calls := 0
	return func() error {
		calls++
		if calls%256 != 1 {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrConfDeadline
		}
		return nil
	}
}
