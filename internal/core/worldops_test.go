package core

import (
	"math"
	"testing"

	"urel/internal/engine"
	"urel/internal/ws"
)

type ws2 = ws.Valuation

func TestAddCertainRelation(t *testing.T) {
	db := NewUDB()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Column{Name: "t.a", Kind: engine.KindInt},
		engine.Column{Name: "t.b", Kind: engine.KindString},
	))
	rel.AppendVals(engine.Int(1), engine.Str("x"))
	rel.AppendVals(engine.Int(2), engine.Str("y"))
	if err := db.AddCertainRelation("t", rel); err != nil {
		t.Fatal(err)
	}
	if db.W.NumWorlds().Int64() != 1 {
		t.Fatal("certain relation adds no worlds")
	}
	got, err := db.EvalPoss(Poss(Rel("t")), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("want both tuples possible, got %d", got.Len())
	}
	cert, err := db.CertainAnswers(Rel("t"))
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 2 {
		t.Fatalf("want both tuples certain, got %d", cert.Len())
	}
}

func TestRepairKeyWorlds(t *testing.T) {
	// A relation violating the key (city): two readings for Paris,
	// three for Rome, one for Oslo -> 2*3 = 6 repairs.
	db := NewUDB()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Column{Name: "city", Kind: engine.KindString},
		engine.Column{Name: "pop", Kind: engine.KindInt},
	))
	rel.AppendVals(engine.Str("Paris"), engine.Int(2100))
	rel.AppendVals(engine.Str("Paris"), engine.Int(2200))
	rel.AppendVals(engine.Str("Rome"), engine.Int(2800))
	rel.AppendVals(engine.Str("Rome"), engine.Int(2900))
	rel.AppendVals(engine.Str("Rome"), engine.Int(3000))
	rel.AppendVals(engine.Str("Oslo"), engine.Int(700))
	if err := db.RepairKey("cities", rel, []string{"city"}, ""); err != nil {
		t.Fatal(err)
	}
	if n := db.W.NumWorlds().Int64(); n != 6 {
		t.Fatalf("want 6 repairs, got %d", n)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if !db.IsReduced() {
		t.Fatal("repair-key output must be reduced")
	}
	// Every world has exactly 3 cities, and all 6 worlds are distinct.
	sigs, err := db.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 6 {
		t.Fatalf("want 6 distinct worlds, got %d", len(sigs))
	}
	db.EnumWorlds(func(_ ws2, world map[string]*engine.Relation) bool {
		if world["cities"].Len() != 3 {
			t.Fatalf("every repair has 3 cities, got %d", world["cities"].Len())
		}
		return true
	})
	// Possible populations of Paris: both readings.
	q := Project(Select(Rel("cities"),
		engine.Cmp(engine.EQ, engine.Col("city"), engine.ConstStr("Paris"))), "pop")
	poss, err := db.EvalPoss(Poss(q), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if poss.Len() != 2 {
		t.Fatalf("Paris has 2 possible populations, got %d", poss.Len())
	}
	// Certain answers of the projection: none (the key is ambiguous).
	cert, err := db.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Len() != 0 {
		t.Fatalf("no population is certain for Paris: %s", cert)
	}
}

func TestRepairKeyWeights(t *testing.T) {
	db := NewUDB()
	rel := engine.NewRelation(engine.NewSchema(
		engine.Column{Name: "k", Kind: engine.KindInt},
		engine.Column{Name: "v", Kind: engine.KindString},
		engine.Column{Name: "w", Kind: engine.KindFloat},
	))
	rel.AppendVals(engine.Int(1), engine.Str("a"), engine.Float(3))
	rel.AppendVals(engine.Int(1), engine.Str("b"), engine.Float(1))
	if err := db.RepairKey("r", rel, []string{"k"}, "w"); err != nil {
		t.Fatal(err)
	}
	// The weight column is dropped from the schema.
	if len(db.Rels["r"].Attrs) != 2 {
		t.Fatalf("weight column must be dropped: %v", db.Rels["r"].Attrs)
	}
	res, err := db.Eval(Project(Rel("r"), "v"), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := res.TupleProb(engine.Tuple{engine.Str("a")})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa-0.75) > 1e-12 {
		t.Fatalf("P(v=a) = %v, want 0.75 (weight 3 of 4)", pa)
	}
	// Errors: non-positive weight, unknown columns.
	bad := engine.NewRelation(rel.Sch)
	bad.AppendVals(engine.Int(1), engine.Str("a"), engine.Float(0))
	bad.AppendVals(engine.Int(1), engine.Str("b"), engine.Float(1))
	db2 := NewUDB()
	if err := db2.RepairKey("r", bad, []string{"k"}, "w"); err == nil {
		t.Fatal("zero weight must fail")
	}
	db3 := NewUDB()
	if err := db3.RepairKey("r", rel, []string{"nope"}, ""); err == nil {
		t.Fatal("unknown key column must fail")
	}
	db4 := NewUDB()
	if err := db4.RepairKey("r", rel, []string{"k"}, "nope"); err == nil {
		t.Fatal("unknown weight column must fail")
	}
}
