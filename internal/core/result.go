package core

import (
	"fmt"

	"urel/internal/engine"
	"urel/internal/ws"
)

// UResultRow is a decoded row of a query-result U-relation: the
// ws-descriptor, the tuple ids of the contributing relation instances
// (NULL entries come from unions), and the value attributes.
type UResultRow struct {
	D    ws.Descriptor
	TIDs engine.Tuple
	Vals engine.Tuple
}

// UResult is a query result in U-relational form: it pairs the decoded
// rows with the world table, so possible tuples, certain tuples, and
// confidences can all be derived from it.
type UResult struct {
	W       *ws.WorldTable
	Attrs   []string // qualified attribute names
	TIDCols []string // tuple-id column names
	Rows    []UResultRow
}

// Eval translates and evaluates a (poss-free) query, returning the
// result as a decoded U-relation whose descriptors characterize world
// membership exactly (tuple-level translation — all partitions of the
// referenced relations are merged, as Section 4 requires for certain
// answers). Use EvalPoss for the lazy possible-answers fast path. The
// engine optimizer is applied unless cfg disables it.
func (db *UDB) Eval(q Query, cfg engine.ExecConfig) (*UResult, error) {
	if _, ok := q.(*PossQ); ok {
		return nil, fmt.Errorf("core: Eval expects a poss-free query; use EvalPoss")
	}
	plan, lay, err := db.TranslateFull(q)
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	rel, err := engine.Run(plan, cat, cfg)
	if err != nil {
		return nil, err
	}
	return decodeUResult(db.W, rel, lay)
}

// EvalPoss evaluates poss(q) (wrapping q if needed): the set of tuples
// possible in the answer across all worlds, computed purely relationally
// as a projection of the translated query (Theorem 3.5).
func (db *UDB) EvalPoss(q Query, cfg engine.ExecConfig) (*engine.Relation, error) {
	if _, ok := q.(*PossQ); !ok {
		q = Poss(q)
	}
	plan, _, err := db.Translate(q)
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	return engine.Run(plan, cat, cfg)
}

// ExplainQuery renders the engine plan for the translated query
// (optimized when optimize is true), the Figure 13 view of a query.
func (db *UDB) ExplainQuery(q Query, optimize bool) (string, error) {
	plan, _, err := db.Translate(q)
	if err != nil {
		return "", err
	}
	cat := engine.NewCatalog()
	return engine.Explain(plan, cat, optimize)
}

// Decode reconstructs a UResult from an evaluated representation-level
// relation and its layout — the last step of Eval, exported so callers
// that drive the engine themselves (e.g. the query server's limited
// drain) can reuse the same decoding.
func Decode(w *ws.WorldTable, rel *engine.Relation, lay *ULayout) (*UResult, error) {
	return decodeUResult(w, rel, lay)
}

// decodeUResult reconstructs descriptors from the padded relational
// encoding. Padding repeats assignments, and the trivial assignment
// (⊤ -> 0) denotes "all worlds", so both collapse during decoding.
func decodeUResult(w *ws.WorldTable, rel *engine.Relation, lay *ULayout) (*UResult, error) {
	out := &UResult{
		W:       w,
		Attrs:   append([]string{}, lay.Attrs...),
		TIDCols: append([]string{}, lay.TIDs...),
	}
	sch := rel.Sch
	var dIdx [][2]int
	for _, dp := range lay.DPairs {
		vi := sch.IndexOf(dp[0])
		ri := sch.IndexOf(dp[1])
		if vi < 0 || ri < 0 {
			return nil, fmt.Errorf("core: decode: descriptor columns %v missing", dp)
		}
		dIdx = append(dIdx, [2]int{vi, ri})
	}
	tIdx := make([]int, len(lay.TIDs))
	for i, t := range lay.TIDs {
		j := sch.IndexOf(t)
		if j < 0 {
			return nil, fmt.Errorf("core: decode: tid column %q missing", t)
		}
		tIdx[i] = j
	}
	aIdx := make([]int, len(lay.Attrs))
	for i, a := range lay.Attrs {
		j := sch.IndexOf(a)
		if j < 0 {
			return nil, fmt.Errorf("core: decode: attribute column %q missing", a)
		}
		aIdx[i] = j
	}
	for _, row := range rel.Rows {
		var assigns []ws.Assignment
		for _, di := range dIdx {
			v := ws.Var(row[di[0]].AsInt())
			if v == ws.TrivialVar {
				continue
			}
			assigns = append(assigns, ws.A(v, ws.Val(row[di[1]].AsInt())))
		}
		d, err := ws.NewDescriptor(assigns...)
		if err != nil {
			return nil, fmt.Errorf("core: decode: inconsistent descriptor escaped ψ: %v", err)
		}
		tids := make(engine.Tuple, len(tIdx))
		for i, j := range tIdx {
			tids[i] = row[j]
		}
		vals := make(engine.Tuple, len(aIdx))
		for i, j := range aIdx {
			vals[i] = row[j]
		}
		out.Rows = append(out.Rows, UResultRow{D: d, TIDs: tids, Vals: vals})
	}
	return out, nil
}

// PossibleTuples returns the distinct value tuples of the result (the
// poss operator applied after the fact).
func (r *UResult) PossibleTuples() *engine.Relation {
	cols := make([]engine.Column, len(r.Attrs))
	for i, a := range r.Attrs {
		cols[i] = engine.Column{Name: a, Kind: engine.KindNull}
	}
	for _, row := range r.Rows {
		for i, v := range row.Vals {
			if cols[i].Kind == engine.KindNull && !v.IsNull() {
				cols[i].Kind = v.K
			}
		}
	}
	rel := engine.NewRelation(engine.Schema{Cols: cols})
	for _, row := range r.Rows {
		rel.Rows = append(rel.Rows, row.Vals)
	}
	return rel.Distinct()
}

// Len returns the number of representation rows.
func (r *UResult) Len() int { return len(r.Rows) }

// MaxDescriptorWidth returns the widest decoded descriptor.
func (r *UResult) MaxDescriptorWidth() int {
	w := 0
	for _, row := range r.Rows {
		if len(row.D) > w {
			w = len(row.D)
		}
	}
	return w
}

// String renders the result U-relation as a table (descriptor, tids,
// values), in row order.
func (r *UResult) String() string {
	cols := []engine.Column{{Name: "D", Kind: engine.KindString}}
	for _, t := range r.TIDCols {
		cols = append(cols, engine.Column{Name: t, Kind: engine.KindString})
	}
	for _, a := range r.Attrs {
		cols = append(cols, engine.Column{Name: a, Kind: engine.KindString})
	}
	rel := engine.NewRelation(engine.Schema{Cols: cols})
	for _, row := range r.Rows {
		t := make(engine.Tuple, 0, len(cols))
		t = append(t, engine.Str(row.D.StringNamed(r.W)))
		for _, v := range row.TIDs {
			t = append(t, engine.Str(v.String()))
		}
		for _, v := range row.Vals {
			t = append(t, engine.Str(v.String()))
		}
		rel.Append(t)
	}
	return rel.String()
}
