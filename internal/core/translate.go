package core

import (
	"fmt"

	"urel/internal/engine"
	"urel/internal/ws"
)

// ULayout describes how a translated (representation-level) relation
// encodes a U-relation: which engine columns hold ws-descriptor pairs,
// tuple ids, and value attributes. Physical value-attribute columns are
// named exactly by their qualified logical names, so logical conditions
// bind directly.
type ULayout struct {
	// DPairs lists (varColumn, rngColumn) name pairs of the descriptor.
	DPairs [][2]string
	// TIDs lists tuple-id column names, one per relation instance
	// (alias) contributing to the result.
	TIDs []string
	// Attrs lists the qualified value-attribute column names in order.
	Attrs []string
	// Picks records, for a single-relation translation, which vertical
	// partitions the merge included and each one's own descriptor-pair
	// columns — the information the write path needs to recover a
	// partition row's identity (descriptor, tuple id) from a result
	// row. Selections preserve it; joins, projections, and unions drop
	// it (their results no longer correspond to one relation's rows).
	Picks []PartPick
}

// PartPick names one partition's contribution to a translated
// relation: its index in the relation's partition list and its
// descriptor-pair column names in the translated schema.
type PartPick struct {
	Part   int
	DPairs [][2]string
}

// Columns returns all column names in canonical order (D, T, A) — the
// paper's U[D; T; A] layout.
func (l *ULayout) Columns() []string {
	var out []string
	for _, dp := range l.DPairs {
		out = append(out, dp[0], dp[1])
	}
	out = append(out, l.TIDs...)
	out = append(out, l.Attrs...)
	return out
}

// translator carries state for one query translation.
type translator struct {
	db      *UDB
	unameCt int // counter for fresh union-pad column names
	// full forces merging all partitions of every referenced relation,
	// making result descriptors characterize world membership exactly
	// (tuple-level results). Possible-answer queries can stay lazy
	// ("the answer is simply U", Section 3); certain answers and
	// confidence computation need tuple-level descriptors (Section 4).
	full bool
}

// Translate compiles a positive relational algebra query with poss into
// a plain relational algebra plan over the U-relational representation
// (the [[·]] translation of Figure 4). For a query without a top-level
// poss the returned layout describes the result U-relation; for a
// poss-query the layout is nil and the plan computes the set of
// possible answer tuples directly.
func (db *UDB) Translate(q Query) (engine.Plan, *ULayout, error) {
	return db.translateMode(q, false)
}

// TranslateFull compiles q with full partition merging: the result's
// ws-descriptors characterize world membership exactly (tuple-level),
// as required for certain answers and confidence computation. For
// relations with overlapping partitions exactness additionally assumes
// tuples are present in all partitions covering them (disjoint
// partitions, the common case, are always exact).
func (db *UDB) TranslateFull(q Query) (engine.Plan, *ULayout, error) {
	return db.translateMode(q, true)
}

func (db *UDB) translateMode(q Query, full bool) (engine.Plan, *ULayout, error) {
	if _, err := collectAliases(q); err != nil {
		return nil, nil, err
	}
	tr := &translator{db: db, full: full}
	if p, ok := q.(*PossQ); ok {
		plan, lay, err := tr.translate(p.Q, nil)
		if err != nil {
			return nil, nil, err
		}
		// poss(Q) := π_A(U), a duplicate-eliminating projection on the
		// value attributes.
		return engine.DistinctOf(engine.Project(plan, lay.Attrs...)), nil, nil
	}
	plan, lay, err := tr.translate(q, nil)
	if err != nil {
		return nil, nil, err
	}
	return plan, lay, nil
}

// translate compiles q; need lists the qualified value attributes
// required by ancestors (nil = all output attributes). Needed-attribute
// propagation is what lets the translation merge in only the necessary
// vertical partitions (Section 3, "it does not require to reconstruct
// the entire relations involved in the query").
func (tr *translator) translate(q Query, need []string) (engine.Plan, *ULayout, error) {
	switch n := q.(type) {
	case *RelQ:
		return tr.translateRel(n, need)
	case *SelectQ:
		childNeed, err := tr.extendNeed(n.Q, need, engine.ExprColumns(n.Cond))
		if err != nil {
			return nil, nil, err
		}
		plan, lay, err := tr.translate(n.Q, childNeed)
		if err != nil {
			return nil, nil, err
		}
		// Analysis: the condition must resolve unambiguously against
		// the value attributes (before the optimizer moves it around).
		if err := checkCondBinds(n.Cond, lay.Attrs); err != nil {
			return nil, nil, err
		}
		// [[σ_φ(Q)]] := σ_φ(U): conditions apply to value attributes,
		// whose physical columns carry the logical names.
		return engine.Filter(plan, n.Cond), lay, nil
	case *ProjectQ:
		attrs, err := n.Attrs(tr.db)
		if err != nil {
			return nil, nil, err
		}
		plan, lay, err := tr.translate(n.Q, attrs)
		if err != nil {
			return nil, nil, err
		}
		// [[π_X(Q)]] := π_{D,T,X}(U): descriptors and tuple ids are
		// preserved.
		out := &ULayout{DPairs: lay.DPairs, TIDs: lay.TIDs, Attrs: attrs}
		return engine.Project(plan, out.Columns()...), out, nil
	case *JoinQ:
		lAttrs, err := n.L.Attrs(tr.db)
		if err != nil {
			return nil, nil, err
		}
		rAttrs, err := n.R.Attrs(tr.db)
		if err != nil {
			return nil, nil, err
		}
		condAttrs := engine.ExprColumns(n.Cond)
		lNeed, err := splitNeed(need, condAttrs, lAttrs)
		if err != nil {
			return nil, nil, err
		}
		rNeed, err := splitNeed(need, condAttrs, rAttrs)
		if err != nil {
			return nil, nil, err
		}
		lp, ll, err := tr.translate(n.L, lNeed)
		if err != nil {
			return nil, nil, err
		}
		rp, rl, err := tr.translate(n.R, rNeed)
		if err != nil {
			return nil, nil, err
		}
		if err := checkCondBinds(n.Cond, append(append([]string{}, ll.Attrs...), rl.Attrs...)); err != nil {
			return nil, nil, err
		}
		// [[Q1 ⋈_φ Q2]] := π_{D1,D2,T1,T2,A,B}(U1 ⋈_{φ∧ψ} U2), where ψ
		// discards combinations with inconsistent ws-descriptors.
		cond := engine.And(n.Cond, psiCond(ll.DPairs, rl.DPairs))
		out := &ULayout{
			DPairs: append(append([][2]string{}, ll.DPairs...), rl.DPairs...),
			TIDs:   append(append([]string{}, ll.TIDs...), rl.TIDs...),
			Attrs:  append(append([]string{}, ll.Attrs...), rl.Attrs...),
		}
		return engine.Join(lp, rp, cond), out, nil
	case *UnionQ:
		return tr.translateUnion(n, need)
	case *PossQ:
		return nil, nil, fmt.Errorf("core: poss is only supported at the top level of a query")
	default:
		return nil, nil, fmt.Errorf("core: unsupported query node %T", q)
	}
}

// translateRel merges the necessary vertical partitions of a logical
// relation (the merge operator of Figure 4: U1 ⋈_{α∧ψ} U2 projected to
// a single tuple-id set).
func (tr *translator) translateRel(n *RelQ, need []string) (engine.Plan, *ULayout, error) {
	rs, ok := tr.db.Rels[n.Name]
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown relation %q", n.Name)
	}
	alias := n.alias()
	// Determine the unqualified attributes this occurrence must produce.
	var wanted []string
	if need == nil || tr.full {
		wanted = append(wanted, rs.Attrs...)
	} else {
		prefix := alias + "."
		for _, a := range need {
			if len(a) > len(prefix) && a[:len(prefix)] == prefix {
				wanted = append(wanted, a[len(prefix):])
			}
		}
	}
	// Greedy partition cover: take partitions (in declaration order)
	// while they contribute uncovered wanted attributes.
	covered := map[string]bool{}
	type chosen struct {
		part    *URelation
		pidx    int
		contrib []string
	}
	var picks []chosen
	for pi, p := range rs.Parts {
		var contrib []string
		for _, a := range p.Attrs {
			if !covered[a] && contains(wanted, a) {
				contrib = append(contrib, a)
			}
		}
		if len(contrib) == 0 {
			continue
		}
		for _, a := range contrib {
			covered[a] = true
		}
		picks = append(picks, chosen{part: p, pidx: pi, contrib: contrib})
	}
	for _, a := range wanted {
		if !covered[a] {
			return nil, nil, fmt.Errorf("core: attribute %s.%s not covered by any partition", n.Name, a)
		}
	}
	if len(picks) == 0 {
		// A projection to zero attributes still needs tuple existence:
		// use the first partition for tuple ids.
		if len(rs.Parts) == 0 {
			return nil, nil, fmt.Errorf("core: relation %q has no partitions", n.Name)
		}
		picks = append(picks, chosen{part: rs.Parts[0], pidx: 0})
	}
	// Encode and merge.
	var plan engine.Plan
	lay := &ULayout{}
	for i, pick := range picks {
		scan, slay := tr.encodePartition(pick.part, alias, pick.pidx, pick.contrib)
		slay.Picks = []PartPick{{Part: pick.pidx, DPairs: slay.DPairs}}
		if i == 0 {
			plan, lay = scan, slay
			continue
		}
		// merge(Q1, Q2) := π_{D1,D2,T1∪T2,A,B}(U1 ⋈_{α∧ψ} U2): α joins
		// the common tuple-id attributes, ψ discards inconsistent
		// descriptor combinations.
		alpha := engine.EqCols(lay.TIDs[0], slay.TIDs[0])
		cond := engine.And(alpha, psiCond(lay.DPairs, slay.DPairs))
		joined := engine.Join(plan, scan, cond)
		merged := &ULayout{
			DPairs: append(append([][2]string{}, lay.DPairs...), slay.DPairs...),
			TIDs:   lay.TIDs, // T1 ∪ T2 = T1 for partitions of one relation
			Attrs:  append(append([]string{}, lay.Attrs...), slay.Attrs...),
			Picks:  append(append([]PartPick{}, lay.Picks...), slay.Picks...),
		}
		plan = engine.Project(joined, merged.Columns()...)
		lay = merged
	}
	return plan, lay, nil
}

// encodePartition materializes one partition as an engine relation with
// unique column names: descriptor pairs "<alias>.p<j>.d<k>v/r", tuple id
// "tid:<alias>.p<j>", and the contributed attributes under their
// qualified logical names.
func (tr *translator) encodePartition(u *URelation, alias string, pidx int, contrib []string) (engine.Plan, *ULayout) {
	width := u.MaxDescriptorWidth()
	lay := &ULayout{}
	var cols []engine.Column
	for k := 0; k < width; k++ {
		vc := fmt.Sprintf("%s.p%d.d%dv", alias, pidx, k)
		rc := fmt.Sprintf("%s.p%d.d%dr", alias, pidx, k)
		lay.DPairs = append(lay.DPairs, [2]string{vc, rc})
		cols = append(cols,
			engine.Column{Name: vc, Kind: engine.KindInt},
			engine.Column{Name: rc, Kind: engine.KindInt})
	}
	tidCol := fmt.Sprintf("tid:%s.p%d", alias, pidx)
	lay.TIDs = []string{tidCol}
	cols = append(cols, engine.Column{Name: tidCol, Kind: engine.KindInt})
	// Column indexes of the contributed attributes.
	var attrIdx []int
	kinds := kindsOf(u)
	for _, a := range contrib {
		for ai, pa := range u.Attrs {
			if pa == a {
				q := alias + "." + a
				lay.Attrs = append(lay.Attrs, q)
				cols = append(cols, engine.Column{Name: q, Kind: kinds[ai]})
				attrIdx = append(attrIdx, ai)
				break
			}
		}
	}
	name := u.Name
	if alias != u.RelName {
		name = u.Name + "#" + alias
	}
	if u.Back != nil {
		// Storage-backed partition: plan a lazy segment scan instead of
		// materializing; cold data feeds the engine batch-by-batch.
		return u.Back.ScanPlan(engine.Schema{Cols: cols}, width, attrIdx, name), lay
	}
	rel := engine.NewRelation(engine.Schema{Cols: cols})
	for _, r := range u.Rows {
		row := make(engine.Tuple, 0, len(cols))
		d := r.D.Pad(width)
		for _, a := range d {
			row = append(row, engine.Int(int64(a.Var)), engine.Int(int64(a.Val)))
		}
		row = append(row, engine.Int(r.TID))
		for _, ai := range attrIdx {
			row = append(row, r.Vals[ai])
		}
		rel.Append(row)
	}
	return engine.Values(rel, name), lay
}

func kindsOf(u *URelation) []engine.Kind {
	if u.Back != nil {
		return u.Back.AttrKinds()
	}
	kinds := make([]engine.Kind, len(u.Attrs))
	for ai := range u.Attrs {
		for _, r := range u.Rows {
			if !r.Vals[ai].IsNull() {
				kinds[ai] = r.Vals[ai].K
				break
			}
		}
	}
	return kinds
}

// translateUnion implements the union of Figure 4's discussion: both
// sides are brought to a common schema by padding the smaller
// ws-descriptors with already-contained assignments (or the trivial
// assignment) and adding empty (NULL) tuple-id columns for the other
// side's relations; then a standard union applies.
func (tr *translator) translateUnion(n *UnionQ, need []string) (engine.Plan, *ULayout, error) {
	lAttrs, err := n.L.Attrs(tr.db)
	if err != nil {
		return nil, nil, err
	}
	rAttrs, err := n.R.Attrs(tr.db)
	if err != nil {
		return nil, nil, err
	}
	if len(lAttrs) != len(rAttrs) {
		return nil, nil, fmt.Errorf("core: union arity mismatch: %d vs %d", len(lAttrs), len(rAttrs))
	}
	// Map the needed attributes positionally to each side.
	var lNeed, rNeed []string
	if need != nil {
		for i, a := range lAttrs {
			if contains(need, a) {
				lNeed = append(lNeed, a)
				rNeed = append(rNeed, rAttrs[i])
			}
		}
		if len(lNeed) == 0 {
			// Keep at least one attribute for tuple existence.
			lNeed, rNeed = lAttrs[:1], rAttrs[:1]
		}
	}
	lp, ll, err := tr.translate(n.L, lNeed)
	if err != nil {
		return nil, nil, err
	}
	rp, rl, err := tr.translate(n.R, rNeed)
	if err != nil {
		return nil, nil, err
	}
	if len(ll.Attrs) != len(rl.Attrs) {
		return nil, nil, fmt.Errorf("core: union attr mismatch after translation: %v vs %v", ll.Attrs, rl.Attrs)
	}
	width := len(ll.DPairs)
	if len(rl.DPairs) > width {
		width = len(rl.DPairs)
	}
	if width == 0 {
		width = 1 // always carry at least the trivial descriptor
	}
	tr.unameCt++
	// Target layout: fresh descriptor column names, the union of both
	// sides' tuple-id columns, and the left side's attribute names.
	target := &ULayout{}
	for k := 0; k < width; k++ {
		target.DPairs = append(target.DPairs, [2]string{
			fmt.Sprintf("un%d.d%dv", tr.unameCt, k),
			fmt.Sprintf("un%d.d%dr", tr.unameCt, k),
		})
	}
	target.TIDs = append(append([]string{}, ll.TIDs...), rl.TIDs...)
	target.Attrs = ll.Attrs

	lSide, err := unionSide(lp, ll, target, width, ll.TIDs, rl.TIDs, ll.Attrs)
	if err != nil {
		return nil, nil, err
	}
	rSide, err := unionSide(rp, rl, target, width, ll.TIDs, rl.TIDs, rl.Attrs)
	if err != nil {
		return nil, nil, err
	}
	return engine.Union(lSide, rSide), target, nil
}

// unionSide pads one union input to the target layout. ownTIDsL/R give
// the target's tid column order (left's then right's); the side whose
// tid columns are absent gets NULL-extended.
func unionSide(p engine.Plan, lay, target *ULayout, width int, tidsL, tidsR, attrs []string) (engine.Plan, error) {
	var ext []engine.NamedExpr
	// Pad descriptors by repeating the first assignment (or trivial).
	var padV, padR engine.Expr
	if len(lay.DPairs) > 0 {
		padV = engine.Col(lay.DPairs[0][0])
		padR = engine.Col(lay.DPairs[0][1])
	} else {
		padV = engine.ConstInt(int64(ws.TrivialVar))
		padR = engine.ConstInt(0)
	}
	padCols := make([][2]string, width)
	for k := 0; k < width; k++ {
		if k < len(lay.DPairs) {
			padCols[k] = lay.DPairs[k]
			continue
		}
		vc := target.DPairs[k][0] + "~pad"
		rc := target.DPairs[k][1] + "~pad"
		ext = append(ext,
			engine.NamedExpr{Name: vc, E: padV, Kind: engine.KindInt},
			engine.NamedExpr{Name: rc, E: padR, Kind: engine.KindInt})
		padCols[k] = [2]string{vc, rc}
	}
	// NULL tuple-id columns for the other side's relations.
	own := map[string]bool{}
	for _, t := range lay.TIDs {
		own[t] = true
	}
	tidCols := make([]string, 0, len(tidsL)+len(tidsR))
	for _, t := range append(append([]string{}, tidsL...), tidsR...) {
		if own[t] {
			tidCols = append(tidCols, t)
			continue
		}
		nc := t + "~null"
		ext = append(ext, engine.NamedExpr{Name: nc, E: engine.Const(engine.Null()), Kind: engine.KindInt})
		tidCols = append(tidCols, nc)
	}
	if len(ext) > 0 {
		p = engine.Extend(p, ext...)
	}
	// Project into target positional order, then rename to the target's
	// column names.
	var order []string
	for k := 0; k < width; k++ {
		order = append(order, padCols[k][0], padCols[k][1])
	}
	order = append(order, tidCols...)
	order = append(order, attrs...)
	p = engine.Project(p, order...)
	return engine.Rename(p, target.Columns()), nil
}

// psiCond builds the ψ condition of Figure 4: for every descriptor pair
// (D', D”) across the two sides, D'.Var = D”.Var ⇒ D'.Rng = D”.Rng,
// i.e. (D'.Var <> D”.Var OR D'.Rng = D”.Rng).
func psiCond(a, b [][2]string) engine.Expr {
	var conjs []engine.Expr
	for _, da := range a {
		for _, db := range b {
			conjs = append(conjs, engine.Or(
				engine.Cmp(engine.NE, engine.Col(da[0]), engine.Col(db[0])),
				engine.Cmp(engine.EQ, engine.Col(da[1]), engine.Col(db[1])),
			))
		}
	}
	return engine.And(conjs...)
}

// extendNeed resolves extra attribute references (e.g. from a selection
// condition) against q's output attributes and unions them into need.
// A nil need stays nil (= all attributes).
func (tr *translator) extendNeed(q Query, need []string, extra []string) ([]string, error) {
	if need == nil {
		return nil, nil
	}
	attrs, err := q.Attrs(tr.db)
	if err != nil {
		return nil, err
	}
	out := append([]string{}, need...)
	for _, e := range extra {
		r, err := resolveAttr(e, attrs)
		if err != nil {
			return nil, err
		}
		if !contains(out, r) {
			out = append(out, r)
		}
	}
	return out, nil
}

// splitNeed selects, from need plus the join condition's attributes,
// those that belong to a side with output attributes sideAttrs.
func splitNeed(need []string, condAttrs []string, sideAttrs []string) ([]string, error) {
	if need == nil {
		return nil, nil
	}
	var out []string
	for _, a := range need {
		if contains(sideAttrs, a) {
			out = append(out, a)
		}
	}
	for _, c := range condAttrs {
		// Condition attrs may be unqualified; resolve if they belong to
		// this side, and ignore resolution failures (they belong to the
		// other side).
		if r, err := resolveAttr(c, sideAttrs); err == nil {
			if !contains(out, r) {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// checkCondBinds validates that every column reference in cond resolves
// uniquely against the given attribute names (SQL-style analysis before
// optimization; the engine's suffix resolution rejects ambiguity).
func checkCondBinds(cond engine.Expr, attrs []string) error {
	if cond == nil {
		return nil
	}
	cols := make([]engine.Column, len(attrs))
	for i, a := range attrs {
		cols[i] = engine.Column{Name: a}
	}
	sch := engine.Schema{Cols: cols}
	if _, err := cond.Bind(sch); err != nil {
		return fmt.Errorf("core: condition %s: %w", cond, err)
	}
	return nil
}
