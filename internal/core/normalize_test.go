package core

import (
	"testing"

	"urel/internal/engine"
	"urel/internal/ws"
)

// TestFigure5Normalization reproduces the paper's Figure 5 example
// exactly: a U-relation over variables c1, c2, c3 where c1 and c2
// co-occur in a descriptor; normalization merges them into one fresh
// variable with the product domain (4 values), while c3 stays separate.
func TestFigure5Normalization(t *testing.T) {
	db := NewUDB()
	db.MustAddRelation("r", "a")
	c1 := db.W.MustNewVar("c1", 1, 2)
	c2 := db.W.MustNewVar("c2", 1, 2)
	c3 := db.W.MustNewVar("c3", 1, 2)
	u := db.MustAddPartition("r", "u", "a")

	// Figure 5(a): descriptors of width two (padding repeats the
	// assignment, as in the paper's first and third rows).
	u.Add(ws.MustDescriptor(ws.A(c1, 1)), 1, engine.Str("a1"))
	d12, _ := ws.Descriptor{ws.A(c1, 1)}.Union(ws.Descriptor{ws.A(c2, 2)})
	u.Add(d12, 2, engine.Str("a2"))
	u.Add(ws.MustDescriptor(ws.A(c1, 2)), 2, engine.Str("a3"))
	u.Add(ws.MustDescriptor(ws.A(c3, 1)), 3, engine.Str("a4"))
	u.Add(ws.MustDescriptor(ws.A(c3, 2)), 3, engine.Str("a5"))

	norm, err := db.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// All descriptors have size ≤ 1 (Definition 4.1).
	np := norm.Rels["r"].Parts[0]
	for _, r := range np.Rows {
		if len(r.D) > 1 {
			t.Fatalf("normalized descriptor too wide: %s", r.D)
		}
	}
	// Figure 5(b): seven rows — (1,1),(1,2) for a1; (1,2) for a2;
	// (2,1),(2,2) for a3; c3 rows for a4/a5 unchanged.
	if len(np.Rows) != 7 {
		t.Fatalf("Figure 5(b) has 7 rows, got %d:\n%v", len(np.Rows), np.Rows)
	}
	// The fresh variable for {c1,c2} has the product domain of size 4;
	// c3's replacement keeps size 2.
	sizes := map[int]int{}
	for _, x := range norm.W.NontrivialVars() {
		sizes[norm.W.DomainSize(x)]++
	}
	if sizes[4] != 1 || sizes[2] != 1 {
		t.Fatalf("want one 4-domain and one 2-domain variable, got %v", sizes)
	}
	// Theorem 4.2: same world-set.
	s1, err := db.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := norm.WorldSetSignature(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("world-set changed: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("world-set contents changed")
		}
	}
	// Figure 5(c): the corresponding WSD has components with 4 and 2
	// local worlds — checked via the wsd package in its own tests; here
	// we verify the count of new variables equals the number of
	// connected components (2 non-trivial).
	if len(norm.W.NontrivialVars()) != 2 {
		t.Fatalf("want 2 components, got %d", len(norm.W.NontrivialVars()))
	}
}

func TestNormalizeComponentCap(t *testing.T) {
	// A single descriptor chaining many variables forms one component;
	// exceeding the domain cap must error rather than explode.
	db := NewUDB()
	db.MustAddRelation("r", "a")
	u := db.MustAddPartition("r", "u", "a")
	var d ws.Descriptor
	for i := 0; i < 30; i++ {
		x := db.W.MustNewVar("", 1, 2)
		nd, ok := d.Union(ws.Descriptor{ws.A(x, 1)})
		if !ok {
			t.Fatal("union failed")
		}
		d = nd
	}
	u.Add(d, 1, engine.Int(1))
	if _, err := db.Normalize(); err == nil {
		t.Fatal("2^30 product domain must be rejected")
	}
}

func TestNormalizeEmptyDescriptors(t *testing.T) {
	db := NewUDB()
	db.MustAddRelation("r", "a")
	u := db.MustAddPartition("r", "u", "a")
	u.Add(nil, 1, engine.Int(10))
	x := db.W.MustNewVar("x", 1, 2)
	u.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Int(20))
	u.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(21))
	norm, err := db.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Certain row keeps its empty descriptor.
	found := false
	for _, r := range norm.Rels["r"].Parts[0].Rows {
		if r.TID == 1 && len(r.D) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("certain row must stay certain after normalization")
	}
}

func TestNormalizeCarriesProbabilities(t *testing.T) {
	// Probabilities multiply across merged components.
	db := NewUDB()
	db.MustAddRelation("r", "a")
	x := db.W.MustNewVar("x", 1, 2)
	y := db.W.MustNewVar("y", 1, 2)
	if err := db.W.SetProbs(x, []float64{0.25, 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := db.W.SetProbs(y, []float64{0.1, 0.9}); err != nil {
		t.Fatal(err)
	}
	u := db.MustAddPartition("r", "u", "a")
	d, _ := ws.Descriptor{ws.A(x, 1)}.Union(ws.Descriptor{ws.A(y, 1)})
	u.Add(d, 1, engine.Int(1))
	d2, _ := ws.Descriptor{ws.A(x, 2)}.Union(ws.Descriptor{ws.A(y, 2)})
	u.Add(d2, 1, engine.Int(2))
	norm, err := db.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// One merged variable over 4 combos; total probability must be 1
	// and the combo (x=1,y=1) must carry 0.025.
	vars := norm.W.NontrivialVars()
	if len(vars) != 1 {
		t.Fatalf("want one merged variable, got %d", len(vars))
	}
	g := vars[0]
	sum := 0.0
	found := false
	for _, v := range norm.W.Domain(g) {
		p := norm.W.Prob(g, v)
		sum += p
		if p > 0.0249 && p < 0.0251 {
			found = true
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities must sum to 1, got %g", sum)
	}
	if !found {
		t.Fatal("combo probability 0.25*0.1 missing")
	}
}

// TestEvalPossAgreesWithEvalFull: the lazy poss fast path and the full
// tuple-level translation agree on possible answers.
func TestEvalPossAgreesWithEvalFull(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	queries := []Query{
		Project(Rel("r"), "id"),
		Project(Rel("r"), "type", "faction"),
		Select(Rel("r"), engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy"))),
	}
	for i, q := range queries {
		lazy, err := db.EvalPoss(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		full, err := db.Eval(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !lazy.EqualAsSet(full.PossibleTuples()) {
			t.Fatalf("query %d: lazy and full translations disagree", i)
		}
	}
}

// TestTranslateErrors exercises the translation's error paths.
func TestTranslateErrors(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// Duplicate alias.
	if _, _, err := db.Translate(Join(Rel("r"), Rel("r"), nil)); err == nil {
		t.Fatal("self-join without alias must fail")
	}
	// Unknown relation.
	if _, _, err := db.Translate(Rel("nope")); err == nil {
		t.Fatal("unknown relation must fail")
	}
	// Unknown attribute in projection.
	if _, err := db.Eval(Project(Rel("r"), "nope"), engine.ExecConfig{}); err == nil {
		t.Fatal("unknown attribute must fail")
	}
	// Nested poss.
	if _, _, err := db.Translate(Project(Poss(Rel("r")), "id")); err == nil {
		t.Fatal("nested poss must fail")
	}
	// Eval of a poss query.
	if _, err := db.Eval(Poss(Rel("r")), engine.ExecConfig{}); err == nil {
		t.Fatal("Eval must reject poss queries")
	}
	// Certain answers of a poss query.
	if _, err := db.CertainAnswers(Poss(Rel("r"))); err == nil {
		t.Fatal("CertainAnswers must reject poss queries")
	}
	// Union arity mismatch.
	bad := UnionOf(Project(RelAs("r", "a1"), "a1.id"),
		Project(RelAs("r", "a2"), "a2.id", "a2.type"))
	if _, _, err := db.Translate(bad); err == nil {
		t.Fatal("union arity mismatch must fail")
	}
	// Ambiguous unqualified attribute.
	amb := Select(Join(RelAs("r", "x1"), RelAs("r", "x2"), nil),
		engine.Cmp(engine.EQ, engine.Col("id"), engine.ConstInt(1)))
	if _, err := db.EvalPoss(Poss(amb), engine.ExecConfig{}); err == nil {
		t.Fatal("ambiguous attribute must fail at binding")
	}
}

// TestULayoutColumns checks the canonical D,T,A ordering.
func TestULayoutColumns(t *testing.T) {
	lay := &ULayout{
		DPairs: [][2]string{{"d0v", "d0r"}},
		TIDs:   []string{"tid1", "tid2"},
		Attrs:  []string{"a", "b"},
	}
	got := lay.Columns()
	want := []string{"d0v", "d0r", "tid1", "tid2", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestResultString renders without panicking and includes descriptors.
func TestResultString(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	res, err := db.Eval(Project(Rel("r"), "id"), engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
}
