package core

import (
	"fmt"
	"sort"

	"urel/internal/ws"
)

// Normalization (Section 4, Algorithm 1) rewrites a reduced U-relational
// database so that every ws-descriptor has size one: variables that
// co-occur in some descriptor are grouped into connected components,
// each component is replaced by a single fresh variable, and that
// variable's domain is the product of the component's domains (encoded
// injectively into integers by a mixed-radix code — the paper's f_|Gi|).

// maxNormalizeDomain caps the product domain of a component; exceeding
// it returns an error instead of exploding (normalization is inherently
// exponential — Theorem 5.2's separation between U-relations and WSDs).
const maxNormalizeDomain = 1 << 22

// unionFind is a plain union-find over variable ids.
type unionFind struct {
	parent map[ws.Var]ws.Var
}

func newUnionFind() *unionFind { return &unionFind{parent: map[ws.Var]ws.Var{}} }

func (u *unionFind) find(x ws.Var) ws.Var {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b ws.Var) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// component describes one connected component of co-occurring
// variables: its sorted member variables, the fresh variable replacing
// it, and the mixed-radix strides for encoding valuations.
type component struct {
	vars    []ws.Var
	newVar  ws.Var
	domains [][]ws.Val
	strides []int64
	size    int64
}

// encode maps a total valuation of the component's variables to the
// injective integer code (the paper's f_|Gi|).
func (c *component) encode(val map[ws.Var]ws.Val) (ws.Val, error) {
	var code int64
	for i, x := range c.vars {
		v, ok := val[x]
		if !ok {
			return 0, fmt.Errorf("core: normalize: component valuation missing %s", x)
		}
		idx := -1
		for j, dv := range c.domains[i] {
			if dv == v {
				idx = j
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("core: normalize: value %d not in domain of %s", v, x)
		}
		code += int64(idx) * c.strides[i]
	}
	return ws.Val(code), nil
}

// decode inverts encode.
func (c *component) decode(code ws.Val) map[ws.Var]ws.Val {
	out := make(map[ws.Var]ws.Val, len(c.vars))
	rem := int64(code)
	for i := len(c.vars) - 1; i >= 0; i-- {
		idx := rem / c.strides[i]
		rem %= c.strides[i]
		out[c.vars[i]] = c.domains[i][idx]
	}
	return out
}

// buildComponents groups variables by descriptor co-occurrence across
// all provided descriptors and assigns fresh variables in the new world
// table. Probabilities carry over as products.
func buildComponents(w *ws.WorldTable, descriptors []ws.Descriptor) (*ws.WorldTable, map[ws.Var]*component, error) {
	uf := newUnionFind()
	for _, x := range w.NontrivialVars() {
		uf.find(x)
	}
	for _, d := range descriptors {
		vars := d.Vars()
		for i := 1; i < len(vars); i++ {
			if vars[0] == ws.TrivialVar || vars[i] == ws.TrivialVar {
				continue
			}
			uf.union(vars[0], vars[i])
		}
	}
	groups := map[ws.Var][]ws.Var{}
	for _, x := range w.NontrivialVars() {
		r := uf.find(x)
		groups[r] = append(groups[r], x)
	}
	newW := ws.NewWorldTable()
	byVar := map[ws.Var]*component{}
	// Deterministic order over components.
	var roots []ws.Var
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		vars := groups[r]
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
		c := &component{vars: vars}
		size := int64(1)
		for _, x := range vars {
			dom := w.Domain(x)
			c.domains = append(c.domains, dom)
			size *= int64(len(dom))
			if size > maxNormalizeDomain {
				return nil, nil, fmt.Errorf("core: normalize: component of %d vars exceeds domain cap", len(vars))
			}
		}
		c.size = size
		c.strides = make([]int64, len(vars))
		stride := int64(1)
		for i := range vars {
			c.strides[i] = stride
			stride *= int64(len(c.domains[i]))
		}
		// Fresh variable with the product domain 0..size-1 and product
		// probabilities.
		dom := make([]ws.Val, size)
		probs := make([]float64, size)
		name := "g"
		for i, x := range vars {
			if i > 0 {
				name += "+"
			}
			name += w.Name(x)
		}
		for code := int64(0); code < size; code++ {
			dom[code] = ws.Val(code)
		}
		nv, err := newW.NewVar(name, dom)
		if err != nil {
			return nil, nil, err
		}
		c.newVar = nv
		for code := int64(0); code < size; code++ {
			val := c.decode(ws.Val(code))
			p := 1.0
			for x, v := range val {
				p *= w.Prob(x, v)
			}
			probs[code] = p
		}
		if err := newW.SetProbs(nv, probs); err != nil {
			return nil, nil, err
		}
		for _, x := range vars {
			byVar[x] = c
		}
	}
	return newW, byVar, nil
}

// normalizeDescriptor rewrites one descriptor into the set of singleton
// descriptors it expands to: all total valuations of its component
// consistent with it, each encoded as one assignment of the fresh
// variable. An empty (or all-trivial) descriptor stays empty.
func normalizeDescriptor(w *ws.WorldTable, byVar map[ws.Var]*component, d ws.Descriptor) ([]ws.Descriptor, error) {
	var comp *component
	base := map[ws.Var]ws.Val{}
	for _, a := range d {
		if a.Var == ws.TrivialVar {
			continue
		}
		c := byVar[a.Var]
		if c == nil {
			return nil, fmt.Errorf("core: normalize: unknown variable %s", a.Var)
		}
		if comp == nil {
			comp = c
		} else if comp != c {
			return nil, fmt.Errorf("core: normalize: descriptor %s spans two components", d)
		}
		base[a.Var] = a.Val
	}
	if comp == nil {
		return []ws.Descriptor{nil}, nil
	}
	// Enumerate the unassigned variables of the component.
	var free []ws.Var
	for _, x := range comp.vars {
		if _, ok := base[x]; !ok {
			free = append(free, x)
		}
	}
	var out []ws.Descriptor
	val := make(map[ws.Var]ws.Val, len(comp.vars))
	for k, v := range base {
		val[k] = v
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(free) {
			code, err := comp.encode(val)
			if err != nil {
				return err
			}
			out = append(out, ws.MustDescriptor(ws.A(comp.newVar, code)))
			return nil
		}
		for _, v := range w.Domain(free[i]) {
			val[free[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(val, free[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// Normalize applies Algorithm 1 to the database: the result is a
// normalized (all descriptors of size ≤ 1), reduced U-relational
// database representing the same world-set (Theorem 4.2).
func (db *UDB) Normalize() (*UDB, error) {
	if err := db.requireMaterialized("Normalize"); err != nil {
		return nil, err
	}
	var descriptors []ws.Descriptor
	for _, name := range db.relOrder {
		for _, p := range db.Rels[name].Parts {
			for _, r := range p.Rows {
				descriptors = append(descriptors, r.D)
			}
		}
	}
	newW, byVar, err := buildComponents(db.W, descriptors)
	if err != nil {
		return nil, err
	}
	out := &UDB{W: newW, Rels: map[string]*URelSet{}, relOrder: append([]string(nil), db.relOrder...)}
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		nrs := &URelSet{Attrs: append([]string(nil), rs.Attrs...)}
		for _, p := range rs.Parts {
			np := &URelation{Name: p.Name, RelName: p.RelName, Attrs: append([]string(nil), p.Attrs...)}
			for _, r := range p.Rows {
				ds, err := normalizeDescriptor(db.W, byVar, r.D)
				if err != nil {
					return nil, err
				}
				for _, nd := range ds {
					np.Rows = append(np.Rows, URow{D: nd, TID: r.TID, Vals: r.Vals})
				}
			}
			sortURows(np.Rows)
			nrs.Parts = append(nrs.Parts, np)
		}
		out.Rels[name] = nrs
	}
	return out, nil
}

// NormalizeResult applies the same rewriting to a query result,
// yielding a tuple-level normalized U-relation on which certain answers
// can be computed relationally (Lemma 4.3). Each result row keeps its
// identity through a synthesized tuple id.
func (r *UResult) Normalize() (*NormalizedResult, error) {
	var descriptors []ws.Descriptor
	for _, row := range r.Rows {
		descriptors = append(descriptors, row.D)
	}
	newW, byVar, err := buildComponents(r.W, descriptors)
	if err != nil {
		return nil, err
	}
	out := &NormalizedResult{W: newW, Attrs: append([]string{}, r.Attrs...)}
	for i, row := range r.Rows {
		ds, err := normalizeDescriptor(r.W, byVar, row.D)
		if err != nil {
			return nil, err
		}
		for _, nd := range ds {
			out.Rows = append(out.Rows, NormalizedRow{D: nd, TID: int64(i), Vals: row.Vals})
		}
	}
	return out, nil
}
