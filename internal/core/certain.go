package core

import (
	"fmt"

	"urel/internal/engine"
	"urel/internal/ws"
)

// NormalizedRow is one tuple of a tuple-level normalized U-relation:
// a singleton (or empty = trivial) descriptor, a tuple id, and values.
type NormalizedRow struct {
	D    ws.Descriptor // len ≤ 1
	TID  int64
	Vals engine.Tuple
}

// NormalizedResult is a tuple-level normalized U-relation, the input
// shape of Lemma 4.3's certain-answer computation.
type NormalizedResult struct {
	W     *ws.WorldTable
	Attrs []string
	Rows  []NormalizedRow
}

// Relation encodes the normalized result as U[var, rng, tid, A...],
// with empty descriptors stored as the trivial assignment.
func (n *NormalizedResult) Relation() *engine.Relation {
	cols := []engine.Column{
		{Name: "u.var", Kind: engine.KindInt},
		{Name: "u.rng", Kind: engine.KindInt},
		{Name: "u.tid", Kind: engine.KindInt},
	}
	for i := range n.Attrs {
		k := engine.KindNull
		for _, r := range n.Rows {
			// Infer the column kind from data.
			if !r.Vals[i].IsNull() {
				k = r.Vals[i].K
				break
			}
		}
		// Positional names avoid collisions between attributes that
		// share an unqualified name (e.g. self-join results).
		cols = append(cols, engine.Column{Name: fmt.Sprintf("u.a%d", i), Kind: k})
	}
	rel := engine.NewRelation(engine.Schema{Cols: cols})
	for _, r := range n.Rows {
		row := make(engine.Tuple, 0, len(cols))
		if len(r.D) == 0 {
			row = append(row, engine.Int(int64(ws.TrivialVar)), engine.Int(0))
		} else {
			row = append(row, engine.Int(int64(r.D[0].Var)), engine.Int(int64(r.D[0].Val)))
		}
		row = append(row, engine.Int(r.TID))
		row = append(row, r.Vals...)
		rel.Append(row)
	}
	return rel
}

func indexOfStr(list []string, s string) int {
	for i, x := range list {
		if x == s {
			return i
		}
	}
	return -1
}

// CertainTuplesRA computes the certain tuples of the normalized result
// using only relational algebra, exactly the query of Lemma 4.3:
//
//	π_A( π_Var(W) × π_A(U)  −  π_{Var,A}( W × π_A(U) − π_{Var,Rng,A}(U) ) )
//
// A tuple is certain iff some variable x covers it in every world:
// (x -> l, s, t) ∈ U for each l ∈ dom(x).
func (n *NormalizedResult) CertainTuplesRA() (*engine.Relation, error) {
	u := n.Relation()
	w := n.worldRelation()
	cat := engine.NewCatalog()
	cat.Put("U", u)
	cat.Put("W", w)

	attrCols := make([]string, len(n.Attrs))
	for i := range n.Attrs {
		attrCols[i] = fmt.Sprintf("u.a%d", i)
	}
	// π_A(U)
	piA := engine.DistinctOf(engine.Project(engine.Scan("U"), attrCols...))
	// π_Var(W) × π_A(U)
	left := engine.Join(engine.DistinctOf(engine.Project(engine.Scan("W"), "w.var")), piA, nil)
	// W × π_A(U)
	wTimesA := engine.Join(engine.Scan("W"), piA, nil)
	// π_{Var,Rng,A}(U)
	varRngA := engine.DistinctOf(engine.Project(engine.Scan("U"),
		append([]string{"u.var", "u.rng"}, attrCols...)...))
	// (W × π_A(U)) − π_{Var,Rng,A}(U): variable/value combinations the
	// tuple is missing.
	missing := engine.Diff(
		engine.Project(wTimesA, append([]string{"w.var", "w.rng"}, attrCols...)...),
		varRngA)
	// π_{Var,A}(missing): variables that do not fully cover the tuple.
	notCovering := engine.Project(missing, append([]string{"w.var"}, attrCols...)...)
	// Fully covering (var, tuple) pairs, projected to tuples.
	covered := engine.Diff(
		engine.Project(left, append([]string{"w.var"}, attrCols...)...),
		notCovering)
	certain := engine.DistinctOf(engine.Project(covered, attrCols...))
	return engine.Run(certain, cat, engine.ExecConfig{})
}

// worldRelation encodes W[var, rng] restricted to the variables the
// normalized result actually references. The restriction preserves the
// Lemma 4.3 answer: a variable with no U-rows on a tuple contributes
// every (var, rng) pair to `missing`, so it can never be the covering
// variable — dropping it from W removes candidates that always lose.
// The pipeline's cost then scales with the result's own descriptors,
// not the database's whole world table.
func (n *NormalizedResult) worldRelation() *engine.Relation {
	used := map[ws.Var]bool{}
	for _, r := range n.Rows {
		if len(r.D) == 0 {
			used[ws.TrivialVar] = true
		} else {
			used[r.D[0].Var] = true
		}
	}
	sch := engine.NewSchema(
		engine.Column{Name: "w.var", Kind: engine.KindInt},
		engine.Column{Name: "w.rng", Kind: engine.KindInt},
	)
	rel := engine.NewRelation(sch)
	for _, x := range n.W.Vars() {
		if !used[x] {
			continue
		}
		for _, v := range n.W.Domain(x) {
			rel.Append(engine.Tuple{engine.Int(int64(x)), engine.Int(int64(v))})
		}
	}
	return rel
}

// CertainTuplesDirect computes the same set with a direct algorithm
// (per value tuple, check whether some variable's domain is exhausted),
// used to cross-validate the relational query.
func (n *NormalizedResult) CertainTuplesDirect() *engine.Relation {
	type cover struct {
		vals map[ws.Var]map[ws.Val]bool
		row  engine.Tuple
	}
	byTuple := map[string]*cover{}
	order := []string{}
	for _, r := range n.Rows {
		k := engine.KeyString(r.Vals)
		c, ok := byTuple[k]
		if !ok {
			c = &cover{vals: map[ws.Var]map[ws.Val]bool{}, row: r.Vals}
			byTuple[k] = c
			order = append(order, k)
		}
		x, v := ws.TrivialVar, ws.Val(0)
		if len(r.D) > 0 {
			x, v = r.D[0].Var, r.D[0].Val
		}
		if c.vals[x] == nil {
			c.vals[x] = map[ws.Val]bool{}
		}
		c.vals[x][v] = true
	}
	cols := make([]engine.Column, len(n.Attrs))
	for i := range n.Attrs {
		cols[i] = engine.Column{Name: fmt.Sprintf("u.a%d", i), Kind: engine.KindNull}
	}
	out := engine.NewRelation(engine.Schema{Cols: cols})
	for _, k := range order {
		c := byTuple[k]
		for x, seen := range c.vals {
			if len(seen) == n.W.DomainSize(x) {
				out.Rows = append(out.Rows, c.row)
				break
			}
		}
	}
	return out
}

// CertainAnswers evaluates q, normalizes the result, and computes the
// certain answers via the Lemma 4.3 relational query with the default
// execution configuration. The full pipeline is the paper's recipe for
// certain-answer computation on U-relations.
func (db *UDB) CertainAnswers(q Query) (*engine.Relation, error) {
	return db.CertainAnswersCfg(q, engine.ExecConfig{})
}

// CertainAnswersCfg is CertainAnswers under an explicit execution
// configuration (optimizer, join algorithm, parallelism) for the query
// evaluation step.
func (db *UDB) CertainAnswersCfg(q Query, cfg engine.ExecConfig) (*engine.Relation, error) {
	if _, ok := q.(*PossQ); ok {
		return nil, fmt.Errorf("core: certain answers of a poss query are its possible answers")
	}
	res, err := db.Eval(q, cfg)
	if err != nil {
		return nil, err
	}
	norm, err := res.Normalize()
	if err != nil {
		return nil, err
	}
	rel, err := norm.CertainTuplesRA()
	if err != nil {
		return nil, err
	}
	// Restore the query's attribute names (the Lemma 4.3 pipeline works
	// on positional columns).
	for i := range rel.Sch.Cols {
		if i < len(res.Attrs) {
			rel.Sch.Cols[i].Name = res.Attrs[i]
		}
	}
	return rel, nil
}
