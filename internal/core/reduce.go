package core

import (
	"urel/internal/engine"
	"urel/internal/ws"
)

// A U-relational database is *reduced* when no partition contains a
// tuple that cannot be completed to an actual tuple in any world
// (Section 3, Example 3.2). On reduced inputs the translation's output
// is again reduced (Proposition 3.8), and a projection query can answer
// from a single partition without merging the rest.

// IsReduced reports whether every row of every partition of every
// relation is completable: there exists a choice of rows, one from each
// other partition with the same tuple id, whose descriptors are jointly
// consistent. (Joint consistency of a set of descriptors equals
// pairwise consistency, since any conflict — one variable, two values —
// is pairwise.)
func (db *UDB) IsReduced() bool {
	db.mustMaterialized("IsReduced")
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		for pi, p := range rs.Parts {
			for _, r := range p.Rows {
				if !completable(rs, pi, r, db) {
					return false
				}
			}
		}
	}
	return true
}

// Reduce returns a copy of the database with all non-completable rows
// removed — the exact reduction promised by Proposition 3.3. (The
// proposition's construction is relational: semijoin each partition
// with the full α∧ψ merge of its siblings; this implementation computes
// the same fixpoint directly. See ReduceSemijoinOnce for the one-pass
// pairwise operator.)
func (db *UDB) Reduce() *UDB {
	db.mustMaterialized("Reduce")
	out := db.Clone()
	for _, name := range out.relOrder {
		rs := out.Rels[name]
		for pi, p := range rs.Parts {
			var kept []URow
			for _, r := range p.Rows {
				if completable(rs, pi, r, out) {
					kept = append(kept, r)
				}
			}
			p.Rows = kept
		}
	}
	return out
}

// completable checks whether row r of partition pi can be completed to
// an actual tuple in some world: a backtracking search for rows with
// the same tuple id, at most one per other partition, whose descriptors
// are jointly consistent with r's and which together provide every
// attribute of the relation. (Joint consistency of descriptors equals
// pairwise consistency, since a conflict — one variable, two values —
// is always pairwise.)
func completable(rs *URelSet, pi int, r URow, db *UDB) bool {
	need := map[string]bool{}
	for _, a := range rs.Attrs {
		need[a] = true
	}
	uncovered := len(need)
	cover := func(p *URelation, delta int) {
		for _, a := range p.Attrs {
			if need[a] {
				if delta > 0 {
					uncovered--
				} else {
					uncovered++
				}
				need[a] = false
			}
		}
	}
	// Recover helper: recomputes coverage from a set of contributing
	// partitions (simplest correct bookkeeping for backtracking).
	recompute := func(contrib []int) {
		for a := range need {
			need[a] = true
		}
		uncovered = len(rs.Attrs)
		for _, j := range contrib {
			cover(rs.Parts[j], 1)
		}
	}
	chosen := []ws.Descriptor{r.D}
	contrib := []int{pi}
	recompute(contrib)
	var rec func(j int) bool
	rec = func(j int) bool {
		if j == len(rs.Parts) {
			return uncovered == 0
		}
		if j == pi {
			return rec(j + 1)
		}
		p := rs.Parts[j]
		for _, cand := range p.Rows {
			if cand.TID != r.TID {
				continue
			}
			ok := true
			for _, d := range chosen {
				if !cand.D.ConsistentWith(d) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, cand.D)
			contrib = append(contrib, j)
			recompute(contrib)
			if rec(j + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
			contrib = contrib[:len(contrib)-1]
			recompute(contrib)
		}
		// Skipping this partition is allowed if the remaining ones can
		// still cover everything.
		return rec(j + 1)
	}
	return rec(0)
}

// ReduceSemijoinOnce applies one pass of the paper's pairwise semijoin
// reduction, expressed through the engine: each partition is semijoined
// (α∧ψ) with every sibling partition. For singleton-descriptor
// (normalized) databases one pass computes the exact reduction; in
// general it is an upper approximation and can be iterated to a
// fixpoint (ReduceSemijoinFixpoint).
func (db *UDB) ReduceSemijoinOnce() (*UDB, error) {
	if err := db.requireMaterialized("ReduceSemijoinOnce"); err != nil {
		return nil, err
	}
	out := db.Clone()
	tr := &translator{db: out}
	for _, name := range out.relOrder {
		rs := out.Rels[name]
		if len(rs.Parts) <= 1 {
			continue
		}
		newRows := make([][]URow, len(rs.Parts))
		for i, p := range rs.Parts {
			plan, lay := tr.encodePartition(p, name, i, p.Attrs)
			cur := plan
			for j, q := range rs.Parts {
				if i == j {
					continue
				}
				qplan, qlay := tr.encodePartition(q, name+"~sj", j, nil)
				alpha := engine.EqCols(lay.TIDs[0], qlay.TIDs[0])
				cond := engine.And(alpha, psiCond(lay.DPairs, qlay.DPairs))
				cur = engine.Semi(cur, qplan, cond)
			}
			cat := engine.NewCatalog()
			rel, err := engine.Run(cur, cat, engine.ExecConfig{})
			if err != nil {
				return nil, err
			}
			ur, err := decodeUResult(out.W, rel, lay)
			if err != nil {
				return nil, err
			}
			rows := make([]URow, 0, len(ur.Rows))
			for _, rr := range ur.Rows {
				rows = append(rows, URow{D: rr.D, TID: rr.TIDs[0].AsInt(), Vals: rr.Vals})
			}
			newRows[i] = rows
		}
		for i, p := range rs.Parts {
			p.Rows = newRows[i]
		}
	}
	return out, nil
}

// ReduceSemijoinFixpoint iterates ReduceSemijoinOnce until no partition
// shrinks, returning the fixpoint and the number of passes.
func (db *UDB) ReduceSemijoinFixpoint() (*UDB, int, error) {
	cur := db
	passes := 0
	for {
		next, err := cur.ReduceSemijoinOnce()
		if err != nil {
			return nil, passes, err
		}
		passes++
		if totalRows(next) == totalRows(cur) {
			return next, passes, nil
		}
		cur = next
	}
}

func totalRows(db *UDB) int {
	n := 0
	for _, rs := range db.Rels {
		for _, p := range rs.Parts {
			n += len(p.Rows)
		}
	}
	return n
}
