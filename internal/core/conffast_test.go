package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"urel/internal/engine"
	"urel/internal/ws"
)

// maxDiffWorlds bounds the differential suite's oracle: catalogs with
// more worlds are skipped, so the brute-force side stays trivial.
const maxDiffWorlds = 16

// randProbs makes roughly half the variables non-uniform (strictly
// positive weights), so the differential suite exercises the
// probability-weighted paths, not just counting.
func randProbs(rng *rand.Rand, db *UDB) {
	for _, x := range db.W.Vars() {
		if rng.Intn(2) == 0 {
			continue
		}
		n := db.W.DomainSize(x)
		weights := make([]float64, n)
		sum := 0.0
		for i := range weights {
			weights[i] = float64(1 + rng.Intn(9))
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		if err := db.W.SetProbs(x, weights); err != nil {
			panic(err)
		}
	}
}

// TestPropertyConfidenceFastDifferential is the fast-path pin: on
// randomized ≤16-world catalogs, brute-force world enumeration
// (ConfidenceGroundTruth) is the oracle, and
//
//   - the dispatcher's exact answer (read-once + enumeration) ≡ oracle,
//   - the dispatcher with the read-once path disabled ≡ oracle,
//   - DescriptorUnionReadOnce ≡ oracle whenever the detector fires,
//   - certain ≤ exact ≤ possible for the one-pass bounds, always.
//
// Zero tolerance beyond float rounding (1e-9).
func TestPropertyConfidenceFastDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked, readOnceGroups := 0, 0
	for iter := 0; iter < 250; iter++ {
		db := randUDB(rng).Reduce()
		randProbs(rng, db)
		if _, err := db.W.CountWorlds(maxDiffWorlds); err != nil {
			continue
		}
		q := randQuery(rng, db, 1)
		oracle, err := db.ConfidenceGroundTruth(q, maxDiffWorlds)
		if err != nil {
			t.Fatalf("iter %d: oracle: %v (query %s)", iter, err, q)
		}
		res, err := db.Eval(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("iter %d: eval: %v (query %s)", iter, err, q)
		}

		confs, stats, err := res.ConfidencesDispatch(ConfOptions{})
		if err != nil {
			t.Fatalf("iter %d: dispatch: %v (query %s)", iter, err, q)
		}
		if stats.MC != 0 {
			t.Fatalf("iter %d: %d tuples sampled on a %d-world catalog", iter, stats.MC, maxDiffWorlds)
		}
		readOnceGroups += stats.ReadOnce
		requireConfsMatch(t, iter, "dispatch", q, confs, oracle)

		noRO, _, err := res.ConfidencesDispatch(ConfOptions{NoReadOnce: true})
		if err != nil {
			t.Fatalf("iter %d: enumeration dispatch: %v (query %s)", iter, err, q)
		}
		requireConfsMatch(t, iter, "enumeration", q, noRO, oracle)

		// Detector ≡ oracle on every group where it fires.
		groups, _ := res.groupDescriptors()
		for k, g := range groups {
			p, ok := DescriptorUnionReadOnce(res.W, g.ds)
			if !ok {
				continue
			}
			if w := oracle[k]; math.Abs(p-w) > 1e-9 {
				t.Fatalf("iter %d: read-once says %v for %v, oracle says %v (query %s)",
					iter, p, g.vals, w, q)
			}
		}

		// Bounds sandwich: certain ≤ exact ≤ possible.
		for _, tb := range res.ConfidenceBounds() {
			w := oracle[engine.KeyString(tb.Vals)]
			if tb.Certain > w+1e-9 || w > tb.Possible+1e-9 {
				t.Fatalf("iter %d: bounds [%v, %v] do not sandwich exact %v for %v (query %s)",
					iter, tb.Certain, tb.Possible, w, tb.Vals, q)
			}
		}
		checked++
	}
	if checked < 80 {
		t.Fatalf("too few instances checked: %d", checked)
	}
	if readOnceGroups == 0 {
		t.Fatal("the read-once detector never fired; the fast path is untested")
	}
}

// requireConfsMatch asserts a confidence vector equals the oracle, key
// for key and with no extra or missing tuples.
func requireConfsMatch(t *testing.T, iter int, path string, q Query, confs []TupleConfidence, oracle map[string]float64) {
	t.Helper()
	seen := map[string]bool{}
	for _, tc := range confs {
		k := engine.KeyString(tc.Vals)
		seen[k] = true
		if w := oracle[k]; math.Abs(tc.P-w) > 1e-9 {
			t.Fatalf("iter %d: %s confidence %v for %v, oracle says %v (query %s)",
				iter, path, tc.P, tc.Vals, w, q)
		}
	}
	for k, w := range oracle {
		if !seen[k] && w > 1e-9 {
			t.Fatalf("iter %d: %s missed tuple %s with oracle confidence %v (query %s)",
				iter, path, k, w, q)
		}
	}
}

// confResult builds a single-group UResult over one int column, one
// representation row per descriptor.
func confResult(w *ws.WorldTable, ds ...ws.Descriptor) *UResult {
	r := &UResult{W: w, Attrs: []string{"a"}}
	for _, d := range ds {
		r.Rows = append(r.Rows, UResultRow{D: d, Vals: engine.Tuple{engine.Int(7)}})
	}
	return r
}

// TestReadOnceDetectorAccepts pins the tractable shapes: independent
// conjunctions, same-variable alternatives, pairwise-exclusive mixed
// descriptors — each evaluated exactly (checked against enumeration).
func TestReadOnceDetectorAccepts(t *testing.T) {
	db := NewUDB()
	x := db.W.NewBoolVar("x")
	y := db.W.MustNewVar("y", 1, 2, 3)
	z := db.W.NewBoolVar("z")
	if err := db.W.SetProbs(y, []float64{0.5, 0.3, 0.2}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		ds   []ws.Descriptor
	}{
		{"empty descriptor wins", []ws.Descriptor{nil, ws.MustDescriptor(ws.A(x, 1))}},
		{"single conjunction", []ws.Descriptor{ws.MustDescriptor(ws.A(x, 1), ws.A(y, 2))}},
		{"independent singles", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1)), ws.MustDescriptor(ws.A(y, 2)), ws.MustDescriptor(ws.A(z, 1))}},
		{"same-variable alternatives", []ws.Descriptor{
			ws.MustDescriptor(ws.A(y, 1)), ws.MustDescriptor(ws.A(y, 3))}},
		{"pairwise-exclusive conjunctions", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 1)),
			ws.MustDescriptor(ws.A(x, 2), ws.A(z, 1)),
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 2))}},
		{"duplicate rows collapse", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1)), ws.MustDescriptor(ws.A(x, 1))}},
	}
	for _, c := range cases {
		p, ok := DescriptorUnionReadOnce(db.W, c.ds)
		if !ok {
			t.Errorf("%s: detector rejected a tractable lineage", c.name)
			continue
		}
		want, err := descriptorUnionProb(db.W, c.ds)
		if err != nil {
			t.Fatalf("%s: enumeration: %v", c.name, err)
		}
		if math.Abs(p-want) > 1e-12 {
			t.Errorf("%s: read-once %v, enumeration %v", c.name, p, want)
		}
	}
}

// TestReadOnceDetectorRejects is the adversarial pin: shared-variable
// non-read-once DNFs must be rejected — the fast path may refuse, but
// it must never silently return a wrong exact value. Each rejected
// lineage is then routed through the dispatcher, which must agree with
// enumeration.
func TestReadOnceDetectorRejects(t *testing.T) {
	db := NewUDB()
	x := db.W.NewBoolVar("x")
	y := db.W.NewBoolVar("y")
	z := db.W.NewBoolVar("z")
	big := db.W.MustNewVar("big", func() []ws.Val {
		vals := make([]ws.Val, maxExclusivePairwise+2)
		for i := range vals {
			vals[i] = ws.Val(i + 1)
		}
		return vals
	}()...)

	wide := func() []ws.Descriptor {
		// maxExclusivePairwise+2 pairwise-exclusive two-variable
		// conjunctions: exclusive, but past the quadratic-check budget.
		var ds []ws.Descriptor
		for i := 0; i < maxExclusivePairwise+2; i++ {
			ds = append(ds, ws.MustDescriptor(ws.A(big, ws.Val(i+1)), ws.A(x, 1)))
		}
		return ds
	}()

	cases := []struct {
		name string
		ds   []ws.Descriptor
	}{
		{"overlapping pair", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 1)),
			ws.MustDescriptor(ws.A(x, 1), ws.A(z, 1))}},
		{"triangle x∧y ∨ y∧z ∨ z∧x", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 1)),
			ws.MustDescriptor(ws.A(y, 1), ws.A(z, 1)),
			ws.MustDescriptor(ws.A(z, 1), ws.A(x, 1))}},
		{"subsumed disjunct", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1)),
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 1))}},
		{"chain x∧y ∨ y∧z", []ws.Descriptor{
			ws.MustDescriptor(ws.A(x, 1), ws.A(y, 1)),
			ws.MustDescriptor(ws.A(y, 1), ws.A(z, 1))}},
		{"exclusive component past the pairwise budget", wide},
	}
	for _, c := range cases {
		if p, ok := DescriptorUnionReadOnce(db.W, c.ds); ok {
			t.Errorf("%s: detector accepted a non-read-once lineage (returned %v)", c.name, p)
			continue
		}
		// The dispatcher must fall back to enumeration and stay exact.
		res := confResult(db.W, c.ds...)
		confs, stats, err := res.ConfidencesDispatch(ConfOptions{})
		if err != nil {
			t.Fatalf("%s: dispatch: %v", c.name, err)
		}
		if stats.ReadOnce != 0 || stats.Enum != 1 {
			t.Errorf("%s: expected the enumeration path, got %+v", c.name, stats)
		}
		want, err := descriptorUnionProb(db.W, c.ds)
		if err != nil {
			t.Fatalf("%s: enumeration: %v", c.name, err)
		}
		if len(confs) != 1 || math.Abs(confs[0].P-want) > 1e-12 {
			t.Errorf("%s: dispatch fallback %v, enumeration %v", c.name, confs, want)
		}
	}
}

// TestConfidencesMCHoeffding covers the Monte-Carlo fallback without
// flakes: with a fixed seed the estimate is deterministic, and a
// Hoeffding bound sized for δ = 1e-12 (ε = sqrt(ln(2/δ)/2n) ≈ 0.027 at
// n = 20000) makes the assertion fail only on a genuine regression,
// not on sampling noise.
func TestConfidencesMCHoeffding(t *testing.T) {
	db := NewUDB()
	var vars []ws.Var
	for i := 0; i < 8; i++ {
		vars = append(vars, db.W.NewBoolVar(fmt.Sprintf("x%d", i)))
	}
	// Hard chained lineage plus an easy disjunct, all in one group.
	var ds []ws.Descriptor
	for i := 0; i+1 < len(vars); i++ {
		ds = append(ds, ws.MustDescriptor(ws.A(vars[i], 1), ws.A(vars[i+1], 1)))
	}
	res := confResult(db.W, ds...)

	exact, err := descriptorUnionProb(db.W, ds)
	if err != nil {
		t.Fatal(err)
	}
	const n, eps = 20000, 0.027
	mc := res.ConfidencesMC(n, 9)
	if len(mc) != 1 {
		t.Fatalf("one group, got %v", mc)
	}
	if diff := math.Abs(mc[0].P - exact); diff > eps {
		t.Fatalf("MC estimate %v vs exact %v: off by %v > Hoeffding ε %v", mc[0].P, exact, diff, eps)
	}
	// Same seed, same estimate — the CI contract.
	again := res.ConfidencesMC(n, 9)
	if mc[0].P != again[0].P {
		t.Fatalf("seeded MC is not deterministic: %v vs %v", mc[0].P, again[0].P)
	}
}

// TestConfidencesDispatchDeadline: an expired deadline surfaces as
// ErrConfDeadline from both the enumeration recursion and the
// Monte-Carlo loop instead of an unbounded stall.
func TestConfidencesDispatchDeadline(t *testing.T) {
	db := NewUDB()
	var ds []ws.Descriptor
	var vars []ws.Var
	for i := 0; i < 16; i++ {
		vars = append(vars, db.W.NewBoolVar(fmt.Sprintf("x%d", i)))
	}
	for i := 0; i+1 < len(vars); i++ {
		ds = append(ds, ws.MustDescriptor(ws.A(vars[i], 1), ws.A(vars[i+1], 1)))
	}
	res := confResult(db.W, ds...)
	expired := time.Now().Add(-time.Second)

	// Enumeration path (read-once disabled by the lineage shape).
	_, _, err := res.ConfidencesDispatch(ConfOptions{Deadline: expired})
	if !errors.Is(err, ErrConfDeadline) {
		t.Fatalf("enumeration under expired deadline: %v, want ErrConfDeadline", err)
	}

	// Monte-Carlo path: extend past the enumeration cap.
	for len(vars) < 24 {
		x := db.W.NewBoolVar(fmt.Sprintf("x%d", len(vars)))
		ds = append(ds, ws.MustDescriptor(ws.A(vars[len(vars)-1], 1), ws.A(x, 1)))
		vars = append(vars, x)
	}
	res = confResult(db.W, ds...)
	_, _, err = res.ConfidencesDispatch(ConfOptions{Deadline: expired, MCSamples: 1 << 30})
	if !errors.Is(err, ErrConfDeadline) {
		t.Fatalf("Monte-Carlo under expired deadline: %v, want ErrConfDeadline", err)
	}

	// No deadline: the same dispatch completes (Monte-Carlo).
	_, stats, err := res.ConfidencesDispatch(ConfOptions{MCSamples: 100})
	if err != nil || stats.MC != 1 {
		t.Fatalf("dispatch without deadline: stats %+v, err %v", stats, err)
	}
}

// TestConfidenceBoundsShape pins the one-pass bounds on hand-built
// lineage: trivial rows are [1,1], sums clamp at 1, and the lower
// bound is the most probable disjunct.
func TestConfidenceBoundsShape(t *testing.T) {
	db := NewUDB()
	x := db.W.NewBoolVar("x")
	y := db.W.MustNewVar("y", 1, 2)
	if err := db.W.SetProbs(y, []float64{0.8, 0.2}); err != nil {
		t.Fatal(err)
	}

	res := confResult(db.W,
		ws.MustDescriptor(ws.A(x, 1)),             // p = 0.5
		ws.MustDescriptor(ws.A(y, 1)),             // p = 0.8
		ws.MustDescriptor(ws.A(y, 2), ws.A(x, 2))) // p = 0.1
	bounds := res.ConfidenceBounds()
	if len(bounds) != 1 {
		t.Fatalf("one group, got %v", bounds)
	}
	if got := bounds[0]; got.Certain != 0.8 || got.Possible != 1 {
		// Certain = max(0.5, 0.8, 0.1); Possible = min(1, 1.4).
		t.Fatalf("bounds [%v, %v], want [0.8, 1]", got.Certain, got.Possible)
	}

	// Trivial descriptor pins both ends to 1.
	res = confResult(db.W, nil, ws.MustDescriptor(ws.A(x, 1)))
	if b := res.ConfidenceBounds(); b[0].Certain != 1 || b[0].Possible != 1 {
		t.Fatalf("trivial-row bounds [%v, %v], want [1, 1]", b[0].Certain, b[0].Possible)
	}
}
