package core

import (
	"urel/internal/engine"
	"urel/internal/obs"
)

// ExplainAnalyzeResult is what EXPLAIN ANALYZE produced: the rendered
// plan annotated with actuals, the raw span tree (for JSON transport),
// and the executed plan's representation-level row count.
type ExplainAnalyzeResult struct {
	Text  string
	Trace *obs.Span
	Rows  int
}

// ExplainAnalyze translates q and actually executes the translated
// relational plan with operator tracing, returning the plan annotated
// with per-operator actual rows/batches/time, estimate drift, and
// store-side statistics. full selects which translation runs — the
// same split the evaluation modes use: false runs the lazy
// possible-answers plan (poss(q) as a projection, Theorem 3.5); true
// runs the representation-level plan with full lineage columns (what
// plain/certain/conf evaluation decodes and post-processes — the
// post-relational steps like world enumeration are not iterators and
// are reported by the caller's timings, not the trace).
func (db *UDB) ExplainAnalyze(q Query, full bool, cfg engine.ExecConfig) (*ExplainAnalyzeResult, error) {
	var plan engine.Plan
	var err error
	if full {
		if _, ok := q.(*PossQ); ok {
			q = StripPoss(q)
		}
		plan, _, err = db.TranslateFull(q)
	} else {
		// Translate dispatches on *PossQ itself: wrapped queries get the
		// poss projection, bare ones the lazy plain-mode plan — exactly
		// the split the possible/plain evaluation modes run.
		plan, _, err = db.Translate(q)
	}
	if err != nil {
		return nil, err
	}
	cat := engine.NewCatalog()
	text, span, rel, err := engine.ExplainAnalyze(plan, cat, cfg)
	if err != nil {
		return nil, err
	}
	return &ExplainAnalyzeResult{Text: text, Trace: span, Rows: rel.Len()}, nil
}
