package core

import (
	"strings"
	"testing"

	"urel/internal/engine"
	"urel/internal/ws"
)

// vehiclesDB builds the database of Figure 1: vehicles a-d (tids
// 1001-1004) with uncertain positions, types and factions governed by
// boolean variables x, y, z. Vehicle tids: a=1, b=2, c=3, d=4. Values:
// Id column holds positions 1-4.
func vehiclesDB(t testing.TB) (*UDB, ws.Var, ws.Var, ws.Var) {
	db := NewUDB()
	db.MustAddRelation("r", "id", "type", "faction")
	x := db.W.NewBoolVar("x")
	y := db.W.NewBoolVar("y")
	z := db.W.NewBoolVar("z")

	u1 := db.MustAddPartition("r", "u_r_id", "id")
	u2 := db.MustAddPartition("r", "u_r_type", "type")
	u3 := db.MustAddPartition("r", "u_r_faction", "faction")

	// U1: positions (Figure 1b left).
	u1.Add(nil, 1, engine.Int(1))
	u1.Add(ws.MustDescriptor(ws.A(x, 1)), 2, engine.Int(2))
	u1.Add(ws.MustDescriptor(ws.A(x, 2)), 2, engine.Int(3))
	u1.Add(ws.MustDescriptor(ws.A(x, 1)), 3, engine.Int(3))
	u1.Add(ws.MustDescriptor(ws.A(x, 2)), 3, engine.Int(2))
	u1.Add(nil, 4, engine.Int(4))

	// U2: types.
	u2.Add(nil, 1, engine.Str("Tank"))
	u2.Add(nil, 2, engine.Str("Transport"))
	u2.Add(nil, 3, engine.Str("Tank"))
	u2.Add(ws.MustDescriptor(ws.A(y, 1)), 4, engine.Str("Tank"))
	u2.Add(ws.MustDescriptor(ws.A(y, 2)), 4, engine.Str("Transport"))

	// U3: factions.
	u3.Add(nil, 1, engine.Str("Friend"))
	u3.Add(nil, 2, engine.Str("Friend"))
	u3.Add(nil, 3, engine.Str("Enemy"))
	u3.Add(ws.MustDescriptor(ws.A(z, 1)), 4, engine.Str("Friend"))
	u3.Add(ws.MustDescriptor(ws.A(z, 2)), 4, engine.Str("Enemy"))

	if err := db.Validate(); err != nil {
		t.Fatalf("vehicles DB must be valid: %v", err)
	}
	if err := db.CoverageComplete(); err != nil {
		t.Fatal(err)
	}
	return db, x, y, z
}

func TestVehiclesWorldCount(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	if n := db.W.NumWorlds().Int64(); n != 8 {
		t.Fatalf("Example 2.1: want 8 worlds, got %d", n)
	}
}

func TestVehiclesInstantiation(t *testing.T) {
	db, x, y, z := vehiclesDB(t)
	// θ = {x->1, y->1, z->1}: b at position 2, c at 3, d a friendly tank.
	world := db.Instantiate(ws.Valuation{ws.TrivialVar: 0, x: 1, y: 1, z: 1})
	r := world["r"]
	if r.Len() != 4 {
		t.Fatalf("want 4 complete tuples, got %d:\n%s", r.Len(), r)
	}
	rows := r.Sorted()
	// Tuple c (tid 3) must be at position 3 (x->1).
	if rows[2][0].AsInt() != 3 || rows[2][1].S != "Tank" || rows[2][2].S != "Enemy" {
		t.Fatalf("vehicle c wrong in world x=1: %v", rows[2])
	}
	// Flip x: c moves to position 2.
	world2 := db.Instantiate(ws.Valuation{ws.TrivialVar: 0, x: 2, y: 1, z: 1})
	rows2 := world2["r"].Sorted()
	found := false
	for _, row := range rows2 {
		if row[1].S == "Tank" && row[2].S == "Enemy" && row[0].AsInt() == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("in world x=2 the enemy tank is at position 2:\n%s", world2["r"])
	}
}

func TestVehiclesEnemyTankQuery(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// Example 3.6: S = π_Id(σ_{Type='Tank' ∧ Faction='Enemy'}(R)).
	q := Project(
		Select(Rel("r"), engine.And(
			engine.Cmp(engine.EQ, engine.Col("type"), engine.ConstStr("Tank")),
			engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")))),
		"id")
	res, err := db.Eval(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's U4 has three tuples: (x->1, c, 3), (x->2, c, 2),
	// (y->1 z->2, d, 4).
	if res.Len() != 3 {
		t.Fatalf("Example 3.6: want 3 result tuples, got %d:\n%s", res.Len(), res)
	}
	// Possible ids: {2, 3, 4}.
	poss := res.PossibleTuples()
	want := map[int64]bool{2: true, 3: true, 4: true}
	if poss.Len() != 3 {
		t.Fatalf("want 3 possible ids, got %d", poss.Len())
	}
	for _, row := range poss.Rows {
		if !want[row[0].AsInt()] {
			t.Fatalf("unexpected possible id %v", row[0])
		}
	}
	// Descriptor widths: the d tuple's descriptor has two assignments.
	if res.MaxDescriptorWidth() != 2 {
		t.Fatalf("want max descriptor width 2, got %d", res.MaxDescriptorWidth())
	}
	// Cross-check against the brute-force ground truth.
	gt, err := db.PossibleGroundTruth(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !poss.EqualAsSet(gt) {
		t.Fatalf("translation disagrees with world enumeration:\npossible:\n%s\nground truth:\n%s", poss, gt)
	}
}

func TestVehiclesTwoEnemyTanksSelfJoin(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// Example 3.7: pairs of distinct enemy tanks (S s1) ⋈_{s1.Id <> s2.Id} (S s2).
	enemyTank := func(alias string) Query {
		return Project(
			Select(RelAs("r", alias), engine.And(
				engine.Cmp(engine.EQ, engine.Col(alias+".type"), engine.ConstStr("Tank")),
				engine.Cmp(engine.EQ, engine.Col(alias+".faction"), engine.ConstStr("Enemy")))),
			alias+".id")
	}
	q := Join(enemyTank("s1"), enemyTank("s2"),
		engine.Cmp(engine.NE, engine.Col("s1.id"), engine.Col("s2.id")))
	res, err := db.Eval(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's U5 has 4 tuples: (3,4), (2,4), (4,3), (4,2). The
	// combinations of c with itself at different positions are filtered
	// by ψ.
	if res.Len() != 4 {
		t.Fatalf("Example 3.7: want 4 representation tuples, got %d:\n%s", res.Len(), res)
	}
	poss := res.PossibleTuples()
	gt, err := db.PossibleGroundTruth(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !poss.EqualAsSet(gt) {
		t.Fatalf("self-join disagrees with ground truth:\n%s\nvs\n%s", poss, gt)
	}
	for _, row := range poss.Rows {
		a, b := row[0].AsInt(), row[1].AsInt()
		if a == b {
			t.Fatalf("pair with equal ids escaped: %v", row)
		}
		if a != 4 && b != 4 {
			t.Fatalf("every enemy-tank pair involves vehicle d (id 4): %v", row)
		}
	}
}

func TestVehiclesPossOperator(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	q := Poss(Project(Rel("r"), "id"))
	rel, err := db.EvalPoss(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("possible ids are 1-4, got %d:\n%s", rel.Len(), rel)
	}
}

func TestVehiclesCertainAnswers(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// Ids are certain for all four vehicles? No: b and c swap positions
	// 2/3 but both positions are always occupied, so π_id(R) is
	// certainly {1,2,3,4}.
	q := Project(Rel("r"), "id")
	got, err := db.CertainAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := db.CertainGroundTruth(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(gt) {
		t.Fatalf("certain answers mismatch:\ngot\n%s\nwant\n%s", got, gt)
	}
	if got.Len() != 4 {
		t.Fatalf("all four positions are certainly occupied: got %d\n%s", got.Len(), got)
	}
	// Faction of vehicle 4 is uncertain; (4, 'Enemy') is possible but
	// not certain.
	q2 := Project(Select(Rel("r"), engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy"))), "id")
	got2, err := db.CertainAnswers(q2)
	if err != nil {
		t.Fatal(err)
	}
	gt2, err := db.CertainGroundTruth(q2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.EqualAsSet(gt2) {
		t.Fatalf("certain enemy ids mismatch: got\n%s\nwant\n%s", got2, gt2)
	}
	// Vehicle 3-or-2 (c) is certainly an enemy but its id is uncertain;
	// only... in fact no id is certainly enemy-occupied? c is at 2 or 3.
	if got2.Len() != 0 {
		t.Fatalf("no single id certainly hosts an enemy: %s", got2)
	}
}

func TestVehiclesExplain(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	q := Poss(Project(
		Select(Rel("r"), engine.And(
			engine.Cmp(engine.EQ, engine.Col("type"), engine.ConstStr("Tank")),
			engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")))),
		"id"))
	s, err := db.ExplainQuery(q, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Join", "u_r_type", "u_r_faction", "u_r_id"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain should mention %q:\n%s", want, s)
		}
	}
}

func TestVehiclesValidation(t *testing.T) {
	db, x, _, _ := vehiclesDB(t)
	// Example 2.3: contradictory values for the same field in a shared
	// world make the database invalid.
	u2 := db.Rels["r"].Parts[1]
	u2.Add(ws.MustDescriptor(ws.A(x, 1)), 1, engine.Str("Transport"))
	if err := db.Validate(); err == nil {
		t.Fatal("contradiction must be detected (tid 1 type is Tank in all worlds)")
	}
}

func TestVehiclesConfidence(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// With uniform variable probabilities, vehicle 4 is an enemy tank
	// with probability P(y=1)P(z=2) = 1/4.
	q := Project(
		Select(Rel("r"), engine.And(
			engine.Cmp(engine.EQ, engine.Col("type"), engine.ConstStr("Tank")),
			engine.Cmp(engine.EQ, engine.Col("faction"), engine.ConstStr("Enemy")))),
		"id")
	res, err := db.Eval(q, engine.ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := res.TupleProb(engine.Tuple{engine.Int(4)})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Fatalf("P(enemy tank at 4) = %v, want 0.25", p)
	}
	// Ids 2 and 3 each host an enemy tank iff x points there: 1/2.
	for _, id := range []int64{2, 3} {
		p, err := res.TupleProb(engine.Tuple{engine.Int(id)})
		if err != nil {
			t.Fatal(err)
		}
		if p != 0.5 {
			t.Fatalf("P(enemy tank at %d) = %v, want 0.5", id, p)
		}
	}
	// Monte-Carlo agrees within tolerance.
	mc := res.ConfidencesMC(20000, 7)
	for _, tc := range mc {
		exact, err := res.TupleProb(tc.Vals)
		if err != nil {
			t.Fatal(err)
		}
		if diff := tc.P - exact; diff > 0.02 || diff < -0.02 {
			t.Fatalf("MC estimate %v for %v far from exact %v", tc.P, tc.Vals, exact)
		}
	}
}

func TestVehiclesULDBExample(t *testing.T) {
	db, _, _, _ := vehiclesDB(t)
	// The reduced database stays identical (it is already reduced).
	if !db.IsReduced() {
		t.Fatal("vehicles database is reduced")
	}
	red := db.Reduce()
	if totalRows(red) != totalRows(db) {
		t.Fatal("reducing a reduced database must not drop rows")
	}
}
