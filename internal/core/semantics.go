package core

import (
	"fmt"
	"sort"

	"urel/internal/engine"
	"urel/internal/ws"
)

// Instantiate materializes the single possible world selected by the
// total valuation f (Section 2 semantics): for every tuple (d, t, a) of
// every partition whose descriptor d is extended by f, the values a are
// inserted into the fields of the tuple with id t; tuples left partial
// (some field never provided) are removed from the world.
func (db *UDB) Instantiate(f ws.Valuation) map[string]*engine.Relation {
	db.mustMaterialized("Instantiate")
	out := make(map[string]*engine.Relation, len(db.Rels))
	for _, name := range db.relOrder {
		out[name] = db.instantiateRel(name, f)
	}
	return out
}

func (db *UDB) instantiateRel(name string, f ws.Valuation) *engine.Relation {
	rs := db.Rels[name]
	kinds := db.inferKinds(name)
	attrIdx := map[string]int{}
	cols := make([]engine.Column, len(rs.Attrs))
	for i, a := range rs.Attrs {
		attrIdx[a] = i
		cols[i] = engine.Column{Name: name + "." + a, Kind: kinds[a]}
	}
	type partial struct {
		vals engine.Tuple
		set  []bool
	}
	fields := map[int64]*partial{}
	var tids []int64
	for _, p := range rs.Parts {
		for _, r := range p.Rows {
			if !r.D.ExtendedBy(f) {
				continue
			}
			pt, ok := fields[r.TID]
			if !ok {
				pt = &partial{vals: make(engine.Tuple, len(rs.Attrs)), set: make([]bool, len(rs.Attrs))}
				fields[r.TID] = pt
				tids = append(tids, r.TID)
			}
			for ai, a := range p.Attrs {
				i := attrIdx[a]
				pt.vals[i] = r.Vals[ai]
				pt.set[i] = true
			}
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	rel := engine.NewRelation(engine.Schema{Cols: cols})
	for _, tid := range tids {
		pt := fields[tid]
		complete := true
		for _, s := range pt.set {
			if !s {
				complete = false
				break
			}
		}
		if complete {
			rel.Rows = append(rel.Rows, pt.vals)
		}
	}
	return rel
}

// EnumWorlds enumerates every possible world (valuation plus
// instantiated relations) and calls yield until it returns false.
// Intended for ground-truth testing; guard the world count first with
// db.W.CountWorlds.
func (db *UDB) EnumWorlds(yield func(f ws.Valuation, world map[string]*engine.Relation) bool) {
	db.W.AllWorlds(func(f ws.Valuation) bool {
		return yield(f, db.Instantiate(f))
	})
}

// WorldSignature renders a world deterministically (relation name ->
// sorted tuples); used to compare world-sets structurally in tests and
// in the normalization-preserves-worlds property.
func WorldSignature(world map[string]*engine.Relation) string {
	names := make([]string, 0, len(world))
	for n := range world {
		names = append(names, n)
	}
	sort.Strings(names)
	sig := ""
	for _, n := range names {
		sig += "#" + n + "{"
		for _, t := range world[n].Sorted() {
			sig += engine.KeyString(t) + ";"
		}
		sig += "}"
	}
	return sig
}

// WorldSetSignature enumerates all worlds and returns the sorted set of
// world signatures — a canonical fingerprint of the represented
// world-set. maxWorlds guards against exponential blowup.
func (db *UDB) WorldSetSignature(maxWorlds int64) ([]string, error) {
	if err := db.requireMaterialized("WorldSetSignature"); err != nil {
		return nil, err
	}
	if _, err := db.W.CountWorlds(maxWorlds); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	db.EnumWorlds(func(_ ws.Valuation, world map[string]*engine.Relation) bool {
		seen[WorldSignature(world)] = true
		return true
	})
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// classicalPlan compiles a logical Query into an ordinary engine plan
// over a single instantiated world. This is the "evaluate Q in each
// world" side of the semantics, used as ground truth for the Figure 4
// translation.
func classicalPlan(q Query, world map[string]*engine.Relation) (engine.Plan, error) {
	switch n := q.(type) {
	case *RelQ:
		rel, ok := world[n.Name]
		if !ok {
			return nil, fmt.Errorf("core: unknown relation %q", n.Name)
		}
		alias := n.alias()
		names := make([]string, rel.Sch.Len())
		for i, c := range rel.Sch.Cols {
			// Stored as "<relname>.<attr>"; re-qualify with the alias.
			names[i] = alias + "." + unqualify(c.Name)
		}
		return engine.Rename(engine.Values(rel, n.Name), names), nil
	case *SelectQ:
		child, err := classicalPlan(n.Q, world)
		if err != nil {
			return nil, err
		}
		return engine.Filter(child, n.Cond), nil
	case *ProjectQ:
		child, err := classicalPlan(n.Q, world)
		if err != nil {
			return nil, err
		}
		return engine.Project(child, n.Attrs_...), nil
	case *JoinQ:
		l, err := classicalPlan(n.L, world)
		if err != nil {
			return nil, err
		}
		r, err := classicalPlan(n.R, world)
		if err != nil {
			return nil, err
		}
		return engine.Join(l, r, n.Cond), nil
	case *UnionQ:
		l, err := classicalPlan(n.L, world)
		if err != nil {
			return nil, err
		}
		r, err := classicalPlan(n.R, world)
		if err != nil {
			return nil, err
		}
		return engine.Union(l, r), nil
	case *PossQ:
		child, err := classicalPlan(n.Q, world)
		if err != nil {
			return nil, err
		}
		return engine.DistinctOf(child), nil
	default:
		return nil, fmt.Errorf("core: classicalPlan: unsupported node %T", q)
	}
}

// PossibleGroundTruth computes poss(q) by brute force: evaluate q in
// every world and union the answers (set semantics). maxWorlds guards
// the enumeration.
func (db *UDB) PossibleGroundTruth(q Query, maxWorlds int64) (*engine.Relation, error) {
	if err := db.requireMaterialized("PossibleGroundTruth"); err != nil {
		return nil, err
	}
	if _, err := db.W.CountWorlds(maxWorlds); err != nil {
		return nil, err
	}
	inner := stripPoss(q)
	var out *engine.Relation
	var evalErr error
	cat := engine.NewCatalog()
	db.EnumWorlds(func(_ ws.Valuation, world map[string]*engine.Relation) bool {
		p, err := classicalPlan(inner, world)
		if err != nil {
			evalErr = err
			return false
		}
		res, err := engine.Run(p, cat, engine.ExecConfig{DisableOptimizer: true})
		if err != nil {
			evalErr = err
			return false
		}
		if out == nil {
			out = engine.NewRelation(res.Sch)
		}
		out.Rows = append(out.Rows, res.Rows...)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if out == nil {
		return nil, fmt.Errorf("core: no worlds enumerated")
	}
	return out.Distinct(), nil
}

// CertainGroundTruth computes the certain answers of q by brute force:
// the tuples present in q's answer in every world.
func (db *UDB) CertainGroundTruth(q Query, maxWorlds int64) (*engine.Relation, error) {
	if err := db.requireMaterialized("CertainGroundTruth"); err != nil {
		return nil, err
	}
	if _, err := db.W.CountWorlds(maxWorlds); err != nil {
		return nil, err
	}
	inner := stripPoss(q)
	var out *engine.Relation
	var evalErr error
	first := true
	cat := engine.NewCatalog()
	db.EnumWorlds(func(_ ws.Valuation, world map[string]*engine.Relation) bool {
		p, err := classicalPlan(inner, world)
		if err != nil {
			evalErr = err
			return false
		}
		res, err := engine.Run(p, cat, engine.ExecConfig{DisableOptimizer: true})
		if err != nil {
			evalErr = err
			return false
		}
		res = res.Distinct()
		if first {
			out = res
			first = false
			return true
		}
		keep := map[string]bool{}
		for _, t := range res.Rows {
			keep[engine.KeyString(t)] = true
		}
		filtered := engine.NewRelation(out.Sch)
		for _, t := range out.Rows {
			if keep[engine.KeyString(t)] {
				filtered.Rows = append(filtered.Rows, t)
			}
		}
		out = filtered
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	if out == nil {
		return nil, fmt.Errorf("core: no worlds enumerated")
	}
	return out, nil
}

// ConfidenceGroundTruth computes every possible answer tuple's exact
// confidence by brute force: evaluate q in every world and accumulate
// each distinct tuple's world-probability mass. The result maps
// engine.KeyString of the value tuple to its confidence. maxWorlds
// guards the enumeration; this is the oracle of the confidence
// differential test suite (conffast_test.go, txn's DML differential).
func (db *UDB) ConfidenceGroundTruth(q Query, maxWorlds int64) (map[string]float64, error) {
	if err := db.requireMaterialized("ConfidenceGroundTruth"); err != nil {
		return nil, err
	}
	if _, err := db.W.CountWorlds(maxWorlds); err != nil {
		return nil, err
	}
	inner := stripPoss(q)
	out := map[string]float64{}
	var evalErr error
	cat := engine.NewCatalog()
	db.EnumWorlds(func(f ws.Valuation, world map[string]*engine.Relation) bool {
		p, err := classicalPlan(inner, world)
		if err != nil {
			evalErr = err
			return false
		}
		rel, err := engine.Run(p, cat, engine.ExecConfig{DisableOptimizer: true})
		if err != nil {
			evalErr = err
			return false
		}
		wp := db.W.WorldProb(f)
		for _, row := range rel.Distinct().Rows {
			out[engine.KeyString(row)] += wp
		}
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// stripPoss removes a top-level poss operator (world-by-world
// evaluation already yields ordinary relations).
func stripPoss(q Query) Query {
	if p, ok := q.(*PossQ); ok {
		return stripPoss(p.Q)
	}
	return q
}

// StripPoss removes a top-level poss operator, exposing the inner
// query (harnesses measure both the representation-level result size
// and the distinct possible tuples).
func StripPoss(q Query) Query { return stripPoss(q) }

func unqualify(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
