package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"urel/internal/engine"
	"urel/internal/ws"
)

// Probabilistic U-relations (Section 7): adding a probability column to
// the world table W makes every variable an independent discrete random
// variable; the probability of a world is the product of its choices,
// and the confidence of an answer tuple is the probability of the union
// of the worlds its descriptors select. The query translation is
// untouched; only confidence computation is new (and inherently hard in
// general — the paper points to approximation, which ConfidenceMC
// provides).

// maxExactConfidenceWorlds caps the enumeration size of the exact
// confidence computation over the variables involved in a tuple's
// descriptors.
const maxExactConfidenceWorlds = 1 << 22

// ErrConfidenceCap reports that the exact confidence computation would
// enumerate more than maxExactConfidenceWorlds joint assignments.
// Callers (e.g. the query server) detect it with errors.Is and fall
// back to the Monte-Carlo estimator.
var ErrConfidenceCap = errors.New("core: exact confidence enumeration exceeds cap")

// TupleConfidence holds one distinct answer tuple with its confidence.
type TupleConfidence struct {
	Vals engine.Tuple
	P    float64
}

// Confidences computes, for every distinct value tuple of the result,
// the exact probability that the tuple appears (the probability of the
// union of its descriptors' events), by enumerating the joint domain of
// the involved variables. Returns an error if that joint domain exceeds
// the cap; use ConfidencesMC then.
func (r *UResult) Confidences() ([]TupleConfidence, error) {
	groups, order := r.groupDescriptors()
	out := make([]TupleConfidence, 0, len(order))
	for _, k := range order {
		g := groups[k]
		p, err := descriptorUnionProb(r.W, g.ds)
		if err != nil {
			return nil, err
		}
		out = append(out, TupleConfidence{Vals: g.vals, P: p})
	}
	return out, nil
}

// ConfidencesAuto computes exact confidences, falling back to
// Monte-Carlo sampling (n samples, seeded) when exact enumeration
// would exceed its cap. The returned estimator is "exact" or
// "monte-carlo"; both query front-ends (urquery, the server) share
// this fallback policy.
func (r *UResult) ConfidencesAuto(n int, seed int64) ([]TupleConfidence, string, error) {
	out, err := r.Confidences()
	if errors.Is(err, ErrConfidenceCap) {
		return r.ConfidencesMC(n, seed), "monte-carlo", nil
	}
	if err != nil {
		return nil, "", err
	}
	return out, "exact", nil
}

// ConfidencesMC estimates confidences by Monte-Carlo sampling of worlds
// (n samples with the given seed). The standard error of each estimate
// is ≤ 0.5/sqrt(n).
func (r *UResult) ConfidencesMC(n int, seed int64) []TupleConfidence {
	groups, order := r.groupDescriptors()
	rng := rand.New(rand.NewSource(seed))
	// Collect involved variables per group for cheap evaluation.
	hits := make(map[string]int, len(order))
	for i := 0; i < n; i++ {
		f := r.W.SampleWorld(rng)
		for k, g := range groups {
			for _, d := range g.ds {
				if d.ExtendedBy(f) {
					hits[k]++
					break
				}
			}
		}
	}
	out := make([]TupleConfidence, 0, len(order))
	for _, k := range order {
		out = append(out, TupleConfidence{
			Vals: groups[k].vals,
			P:    float64(hits[k]) / float64(n),
		})
	}
	return out
}

type descGroup struct {
	vals engine.Tuple
	ds   []ws.Descriptor
}

func (r *UResult) groupDescriptors() (map[string]*descGroup, []string) {
	groups := map[string]*descGroup{}
	var order []string
	for _, row := range r.Rows {
		k := engine.KeyString(row.Vals)
		g, ok := groups[k]
		if !ok {
			g = &descGroup{vals: row.Vals}
			groups[k] = g
			order = append(order, k)
		}
		g.ds = append(g.ds, row.D)
	}
	return groups, order
}

// descriptorUnionProb computes P(∪ events(d)) exactly by enumerating
// the joint domain of the involved variables.
func descriptorUnionProb(w *ws.WorldTable, ds []ws.Descriptor) (float64, error) {
	return descriptorUnionProbCheck(w, ds, nil)
}

// descriptorUnionProbCheck is descriptorUnionProb with an optional
// per-leaf check hook (the dispatcher's deadline probe; see
// conffast.go). A non-nil check error aborts the enumeration.
func descriptorUnionProbCheck(w *ws.WorldTable, ds []ws.Descriptor, check func() error) (float64, error) {
	varSet := map[ws.Var]bool{}
	for _, d := range ds {
		for _, a := range d {
			if a.Var != ws.TrivialVar {
				varSet[a.Var] = true
			}
		}
	}
	// A tuple with an empty (trivial) descriptor is present in every
	// world.
	for _, d := range ds {
		nontrivial := false
		for _, a := range d {
			if a.Var != ws.TrivialVar {
				nontrivial = true
				break
			}
		}
		if !nontrivial {
			return 1, nil
		}
	}
	vars := make([]ws.Var, 0, len(varSet))
	for x := range varSet {
		vars = append(vars, x)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	size := int64(1)
	for _, x := range vars {
		size *= int64(w.DomainSize(x))
		if size > maxExactConfidenceWorlds {
			return 0, fmt.Errorf("%w: %d variables involved; use ConfidencesMC", ErrConfidenceCap, len(vars))
		}
	}
	total := 0.0
	var checkErr error
	val := ws.Valuation{ws.TrivialVar: 0}
	var rec func(i int, p float64)
	rec = func(i int, p float64) {
		if p == 0 || checkErr != nil {
			return
		}
		if i == len(vars) {
			if check != nil {
				if err := check(); err != nil {
					checkErr = err
					return
				}
			}
			for _, d := range ds {
				if d.ExtendedBy(val) {
					total += p
					return
				}
			}
			return
		}
		for _, v := range w.Domain(vars[i]) {
			val[vars[i]] = v
			rec(i+1, p*w.Prob(vars[i], v))
		}
		delete(val, vars[i])
	}
	rec(0, 1)
	if checkErr != nil {
		return 0, checkErr
	}
	return total, nil
}

// TupleProb returns the exact confidence of one specific value tuple in
// the result (0 if the tuple is not possible).
func (r *UResult) TupleProb(vals engine.Tuple) (float64, error) {
	key := engine.KeyString(vals)
	groups, _ := r.groupDescriptors()
	g, ok := groups[key]
	if !ok {
		return 0, nil
	}
	return descriptorUnionProb(r.W, g.ds)
}
