package core

import (
	"fmt"

	"urel/internal/engine"
	"urel/internal/ws"
)

// World-creation constructs (the Section 7 "support for new language
// constructs" direction, realized in MayBMS as repair-key / pick-tuples):
// turning ordinary relations into uncertain ones.

// AddCertainRelation imports an ordinary relation as a certain logical
// relation (every tuple in every world): a single tuple-level partition
// with empty ws-descriptors. Column names may be qualified; the
// unqualified suffixes become the attribute names.
func (db *UDB) AddCertainRelation(name string, rel *engine.Relation) error {
	attrs := make([]string, rel.Sch.Len())
	for i, c := range rel.Sch.Cols {
		attrs[i] = unqualify(c.Name)
	}
	if err := db.AddRelation(name, attrs...); err != nil {
		return err
	}
	p, err := db.AddPartition(name, "u_"+name, attrs...)
	if err != nil {
		return err
	}
	for i, row := range rel.Rows {
		p.Add(nil, int64(i+1), row.Clone()...)
	}
	return nil
}

// RepairKey interprets a relation with a (possibly violated) key as an
// uncertain relation: tuples sharing a key value are mutually exclusive
// alternatives; one fresh world-set variable per key group chooses
// among them; independent groups multiply. If weightCol is non-empty,
// its (positive) values become the alternatives' probabilities after
// normalization within the group; the weight column is dropped from the
// uncertain relation's schema.
//
// This is MayBMS's repair-key construct: the resulting world-set is the
// set of all maximal repairs of the key constraint.
func (db *UDB) RepairKey(name string, rel *engine.Relation, keyCols []string, weightCol string) error {
	keyIdx := make([]int, len(keyCols))
	for i, k := range keyCols {
		j := rel.Sch.IndexOf(k)
		if j < 0 {
			return fmt.Errorf("core: repair-key: key column %q not in %v", k, rel.Sch.Names())
		}
		keyIdx[i] = j
	}
	weightIdx := -1
	if weightCol != "" {
		weightIdx = rel.Sch.IndexOf(weightCol)
		if weightIdx < 0 {
			return fmt.Errorf("core: repair-key: weight column %q not in %v", weightCol, rel.Sch.Names())
		}
	}
	// Output attributes: all columns except the weight.
	var attrs []string
	var outIdx []int
	for i, c := range rel.Sch.Cols {
		if i == weightIdx {
			continue
		}
		attrs = append(attrs, unqualify(c.Name))
		outIdx = append(outIdx, i)
	}
	if err := db.AddRelation(name, attrs...); err != nil {
		return err
	}
	p, err := db.AddPartition(name, "u_"+name, attrs...)
	if err != nil {
		return err
	}
	// Group rows by key, preserving first-seen order.
	groups := map[string][]engine.Tuple{}
	var order []string
	for _, row := range rel.Rows {
		key := make(engine.Tuple, len(keyIdx))
		for i, j := range keyIdx {
			key[i] = row[j]
		}
		k := engine.KeyString(key)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	tid := int64(0)
	for _, k := range order {
		rows := groups[k]
		tid++
		emit := func(d ws.Descriptor, row engine.Tuple) {
			vals := make([]engine.Value, len(outIdx))
			for i, j := range outIdx {
				vals[i] = row[j]
			}
			p.Add(d, tid, vals...)
		}
		if len(rows) == 1 {
			emit(nil, rows[0])
			continue
		}
		dom := make([]ws.Val, len(rows))
		for i := range dom {
			dom[i] = ws.Val(i + 1)
		}
		x, err := db.W.NewVar(fmt.Sprintf("rk:%s#%d", name, tid), dom)
		if err != nil {
			return err
		}
		if weightIdx >= 0 {
			probs := make([]float64, len(rows))
			sum := 0.0
			for i, row := range rows {
				w := row[weightIdx].AsFloat()
				if w <= 0 {
					return fmt.Errorf("core: repair-key: non-positive weight %v in group %d", w, tid)
				}
				probs[i] = w
				sum += w
			}
			for i := range probs {
				probs[i] /= sum
			}
			if err := db.W.SetProbs(x, probs); err != nil {
				return err
			}
		}
		for i, row := range rows {
			emit(ws.MustDescriptor(ws.A(x, ws.Val(i+1))), row)
		}
	}
	return nil
}

// PossibleWorldsCount returns the number of worlds as a convenience
// (big-integer string) for examples and tools.
func (db *UDB) PossibleWorldsCount() string { return db.W.NumWorlds().String() }
