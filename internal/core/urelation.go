package core

import (
	"fmt"
	"sort"

	"urel/internal/engine"
	"urel/internal/ws"
)

// URow is one tuple of a U-relation: ws-descriptor, tuple id, and the
// values of the partition's attributes.
type URow struct {
	D    ws.Descriptor
	TID  int64
	Vals []engine.Value
}

// URelation is one vertical partition U[D; T; B] of a logical relation.
type URelation struct {
	Name    string   // representation-level name, e.g. "u_r_type"
	RelName string   // logical relation this partitions
	Attrs   []string // value attributes B (unqualified logical names)
	Rows    []URow
}

// Add appends a tuple (descriptor, tuple id, attribute values).
func (u *URelation) Add(d ws.Descriptor, tid int64, vals ...engine.Value) {
	if len(vals) != len(u.Attrs) {
		panic(fmt.Sprintf("core: %s: %d values for attrs %v", u.Name, len(vals), u.Attrs))
	}
	u.Rows = append(u.Rows, URow{D: d, TID: tid, Vals: vals})
}

// MaxDescriptorWidth returns the largest descriptor size in the
// partition (its encoding width).
func (u *URelation) MaxDescriptorWidth() int {
	w := 0
	for _, r := range u.Rows {
		if len(r.D) > w {
			w = len(r.D)
		}
	}
	return w
}

// SizeBytes estimates the representation footprint of the partition:
// each row stores its (padded) descriptor, tuple id, and values.
func (u *URelation) SizeBytes() int64 {
	w := u.MaxDescriptorWidth()
	var n int64
	for _, r := range u.Rows {
		n += int64(w)*18 + 9 // descriptor pairs + tid
		for _, v := range r.Vals {
			n += int64(v.SizeBytes())
		}
	}
	return n
}

// Clone deep-copies the partition.
func (u *URelation) Clone() *URelation {
	out := &URelation{Name: u.Name, RelName: u.RelName, Attrs: append([]string(nil), u.Attrs...)}
	out.Rows = make([]URow, len(u.Rows))
	for i, r := range u.Rows {
		vals := make([]engine.Value, len(r.Vals))
		copy(vals, r.Vals)
		out.Rows[i] = URow{D: append(ws.Descriptor(nil), r.D...), TID: r.TID, Vals: vals}
	}
	return out
}

// URelSet holds the partitions of one logical relation together with
// the relation's full attribute list (in schema order).
type URelSet struct {
	Attrs []string
	Parts []*URelation
}

// UDB is a U-relational database: a world table plus, per logical
// relation, a set of vertical partitions.
type UDB struct {
	W    *ws.WorldTable
	Rels map[string]*URelSet

	relOrder []string
}

// NewUDB creates an empty U-relational database with a fresh world
// table.
func NewUDB() *UDB {
	return &UDB{W: ws.NewWorldTable(), Rels: map[string]*URelSet{}}
}

// AddRelation declares a logical relation with its attribute list.
func (db *UDB) AddRelation(name string, attrs ...string) error {
	if _, dup := db.Rels[name]; dup {
		return fmt.Errorf("core: relation %q already declared", name)
	}
	if len(attrs) == 0 {
		return fmt.Errorf("core: relation %q needs attributes", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return fmt.Errorf("core: relation %q has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	db.Rels[name] = &URelSet{Attrs: append([]string(nil), attrs...)}
	db.relOrder = append(db.relOrder, name)
	return nil
}

// AddPartition declares a vertical partition of relation rel covering
// the given attributes (each must belong to the relation; partitions
// may overlap, cf. Section 2). Returns the partition for row insertion.
func (db *UDB) AddPartition(rel, name string, attrs ...string) (*URelation, error) {
	rs, ok := db.Rels[rel]
	if !ok {
		return nil, fmt.Errorf("core: unknown relation %q", rel)
	}
	for _, a := range attrs {
		found := false
		for _, ra := range rs.Attrs {
			if a == ra {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: attribute %q not in relation %q", a, rel)
		}
	}
	if name == "" {
		name = fmt.Sprintf("u_%s_%d", rel, len(rs.Parts))
	}
	u := &URelation{Name: name, RelName: rel, Attrs: append([]string(nil), attrs...)}
	rs.Parts = append(rs.Parts, u)
	return u, nil
}

// MustAddRelation / MustAddPartition panic on error; for examples.
func (db *UDB) MustAddRelation(name string, attrs ...string) {
	if err := db.AddRelation(name, attrs...); err != nil {
		panic(err)
	}
}

// MustAddPartition panics on error; for examples.
func (db *UDB) MustAddPartition(rel, name string, attrs ...string) *URelation {
	u, err := db.AddPartition(rel, name, attrs...)
	if err != nil {
		panic(err)
	}
	return u
}

// RelNames returns the logical relation names in declaration order.
func (db *UDB) RelNames() []string {
	return append([]string(nil), db.relOrder...)
}

// CoverageComplete reports whether every attribute of every relation is
// covered by at least one partition (a completeness sanity check before
// querying).
func (db *UDB) CoverageComplete() error {
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		for _, a := range rs.Attrs {
			covered := false
			for _, p := range rs.Parts {
				for _, pa := range p.Attrs {
					if pa == a {
						covered = true
						break
					}
				}
			}
			if !covered {
				return fmt.Errorf("core: attribute %s.%s covered by no partition", name, a)
			}
		}
	}
	return nil
}

// SizeBytes estimates the total representation size (partitions plus
// world table), the paper's Figure 9 "dbsize" metric.
func (db *UDB) SizeBytes() int64 {
	n := db.W.SizeBytes()
	for _, rs := range db.Rels {
		for _, p := range rs.Parts {
			n += p.SizeBytes()
		}
	}
	return n
}

// Clone deep-copies the database (sharing no mutable state).
func (db *UDB) Clone() *UDB {
	out := &UDB{W: db.W.Clone(), Rels: map[string]*URelSet{}, relOrder: append([]string(nil), db.relOrder...)}
	for name, rs := range db.Rels {
		nrs := &URelSet{Attrs: append([]string(nil), rs.Attrs...)}
		for _, p := range rs.Parts {
			nrs.Parts = append(nrs.Parts, p.Clone())
		}
		out.Rels[name] = nrs
	}
	return out
}

// Validate checks that the database is well-formed per Definition 2.2:
// every descriptor's graph is a subset of W, and no two tuples provide
// contradictory values for the same tuple field in a shared world (the
// paper's Example 2.3).
func (db *UDB) Validate() error {
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		for _, p := range rs.Parts {
			for i, r := range p.Rows {
				if !r.D.ValidIn(db.W) {
					return fmt.Errorf("core: %s row %d: descriptor %s not a subset of W",
						p.Name, i, r.D)
				}
			}
		}
		// Contradiction check across (and within) partitions.
		for pi, p1 := range rs.Parts {
			for pj := pi; pj < len(rs.Parts); pj++ {
				p2 := rs.Parts[pj]
				shared := sharedAttrs(p1.Attrs, p2.Attrs)
				if len(shared) == 0 {
					continue
				}
				if err := checkNoContradiction(p1, p2, shared, pi == pj); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sharedAttrs(a, b []string) [][2]int {
	var out [][2]int
	for i, x := range a {
		for j, y := range b {
			if x == y {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func checkNoContradiction(p1, p2 *URelation, shared [][2]int, same bool) error {
	// Group p2 rows by tid for pairwise checks.
	byTID := map[int64][]int{}
	for i, r := range p2.Rows {
		byTID[r.TID] = append(byTID[r.TID], i)
	}
	for i1, r1 := range p1.Rows {
		for _, i2 := range byTID[r1.TID] {
			if same && i2 <= i1 {
				continue
			}
			r2 := p2.Rows[i2]
			if !r1.D.ConsistentWith(r2.D) {
				continue
			}
			for _, s := range shared {
				if !engine.Equal(r1.Vals[s[0]], r2.Vals[s[1]]) {
					return fmt.Errorf(
						"core: invalid database: %s and %s assign different values to field (tid=%d, attr=%s) in a shared world",
						p1.Name, p2.Name, r1.TID, p1.Attrs[s[0]])
				}
			}
		}
	}
	return nil
}

// inferKinds derives engine column kinds for a relation's attributes
// from the partition data (first non-null value wins).
func (db *UDB) inferKinds(rel string) map[string]engine.Kind {
	rs := db.Rels[rel]
	kinds := map[string]engine.Kind{}
	for _, p := range rs.Parts {
		for ai, a := range p.Attrs {
			if _, done := kinds[a]; done {
				continue
			}
			for _, r := range p.Rows {
				if !r.Vals[ai].IsNull() {
					kinds[a] = r.Vals[ai].K
					break
				}
			}
		}
	}
	for _, a := range rs.Attrs {
		if _, ok := kinds[a]; !ok {
			kinds[a] = engine.KindNull
		}
	}
	return kinds
}

// sortURows orders rows by (tid, descriptor, values) for deterministic
// output in tests and printing.
func sortURows(rows []URow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].TID != rows[j].TID {
			return rows[i].TID < rows[j].TID
		}
		di, dj := rows[i].D, rows[j].D
		for k := 0; k < len(di) && k < len(dj); k++ {
			if di[k] != dj[k] {
				if di[k].Var != dj[k].Var {
					return di[k].Var < dj[k].Var
				}
				return di[k].Val < dj[k].Val
			}
		}
		if len(di) != len(dj) {
			return len(di) < len(dj)
		}
		return engine.CompareTuples(rows[i].Vals, rows[j].Vals) < 0
	})
}
