package core

import (
	"fmt"
	"io"
	"sort"

	"urel/internal/engine"
	"urel/internal/ws"
)

// URow is one tuple of a U-relation: ws-descriptor, tuple id, and the
// values of the partition's attributes.
type URow struct {
	D    ws.Descriptor
	TID  int64
	Vals []engine.Value
}

// Backing provides lazy, segment-backed access to a partition's rows.
// It is implemented by the persistent store (internal/store): a
// URelation with a non-nil Back keeps Rows empty and is scanned
// straight from storage at query time, segment by segment, instead of
// being materialized up front. Backed partitions are read-only.
type Backing interface {
	// NumRows returns the stored row count.
	NumRows() int
	// DescriptorWidth returns the stored (padded) ws-descriptor width.
	DescriptorWidth() int
	// AttrKinds returns the engine column kind of each value attribute
	// (KindNull for columns with no single stored kind).
	AttrKinds() []engine.Kind
	// ScanPlan returns a leaf plan producing the partition in the
	// U-layout encoding: width (var, rng) descriptor pairs, one tuple-id
	// column, then the attributes selected by attrIdx (indexes into the
	// partition's attribute list), under sch's column names.
	ScanPlan(sch engine.Schema, width int, attrIdx []int, name string) engine.Plan
	// Load materializes every stored row (for validation, cloning, and
	// representation-level algorithms that need the full partition).
	Load() ([]URow, error)
	// SizeBytes reports the on-storage footprint.
	SizeBytes() int64
}

// URelation is one vertical partition U[D; T; B] of a logical relation.
type URelation struct {
	Name    string   // representation-level name, e.g. "u_r_type"
	RelName string   // logical relation this partitions
	Attrs   []string // value attributes B (unqualified logical names)
	Rows    []URow
	// Back, when non-nil, backs this partition with lazily scanned
	// storage; Rows stays empty until Materialize is called.
	Back Backing
}

// Add appends a tuple (descriptor, tuple id, attribute values).
func (u *URelation) Add(d ws.Descriptor, tid int64, vals ...engine.Value) {
	if u.Back != nil {
		panic(fmt.Sprintf("core: %s: cannot add rows to a storage-backed partition (Materialize first)", u.Name))
	}
	if len(vals) != len(u.Attrs) {
		panic(fmt.Sprintf("core: %s: %d values for attrs %v", u.Name, len(vals), u.Attrs))
	}
	u.Rows = append(u.Rows, URow{D: d, TID: tid, Vals: vals})
}

// NumRows returns the row count, consulting the backing for lazy
// partitions.
func (u *URelation) NumRows() int {
	if u.Back != nil {
		return u.Back.NumRows()
	}
	return len(u.Rows)
}

// MaxDescriptorWidth returns the largest descriptor size in the
// partition (its encoding width).
func (u *URelation) MaxDescriptorWidth() int {
	if u.Back != nil {
		return u.Back.DescriptorWidth()
	}
	w := 0
	for _, r := range u.Rows {
		if len(r.D) > w {
			w = len(r.D)
		}
	}
	return w
}

// SizeBytes estimates the representation footprint of the partition:
// each row stores its (padded) descriptor, tuple id, and values.
// Backed partitions report their storage footprint.
func (u *URelation) SizeBytes() int64 {
	if u.Back != nil {
		return u.Back.SizeBytes()
	}
	w := u.MaxDescriptorWidth()
	var n int64
	for _, r := range u.Rows {
		n += int64(w)*18 + 9 // descriptor pairs + tid
		for _, v := range r.Vals {
			n += int64(v.SizeBytes())
		}
	}
	return n
}

// Materialize loads a backed partition's rows into memory and detaches
// the backing; it is a no-op for in-memory partitions.
func (u *URelation) Materialize() error {
	if u.Back == nil {
		return nil
	}
	rows, err := u.Back.Load()
	if err != nil {
		return fmt.Errorf("core: materialize %s: %w", u.Name, err)
	}
	u.Rows = rows
	u.Back = nil
	return nil
}

// Clone deep-copies the partition. A backed partition shares its
// read-only storage backing instead of duplicating it — so closing the
// backing (UDB.Close) on any one clone releases it for all of them.
func (u *URelation) Clone() *URelation {
	out := &URelation{Name: u.Name, RelName: u.RelName, Attrs: append([]string(nil), u.Attrs...), Back: u.Back}
	out.Rows = make([]URow, len(u.Rows))
	for i, r := range u.Rows {
		vals := make([]engine.Value, len(r.Vals))
		copy(vals, r.Vals)
		out.Rows[i] = URow{D: append(ws.Descriptor(nil), r.D...), TID: r.TID, Vals: vals}
	}
	return out
}

// URelSet holds the partitions of one logical relation together with
// the relation's full attribute list (in schema order).
type URelSet struct {
	Attrs []string
	Parts []*URelation
}

// UDB is a U-relational database: a world table plus, per logical
// relation, a set of vertical partitions.
type UDB struct {
	W    *ws.WorldTable
	Rels map[string]*URelSet

	relOrder []string
}

// NewUDB creates an empty U-relational database with a fresh world
// table.
func NewUDB() *UDB {
	return &UDB{W: ws.NewWorldTable(), Rels: map[string]*URelSet{}}
}

// AddRelation declares a logical relation with its attribute list.
func (db *UDB) AddRelation(name string, attrs ...string) error {
	if _, dup := db.Rels[name]; dup {
		return fmt.Errorf("core: relation %q already declared", name)
	}
	if len(attrs) == 0 {
		return fmt.Errorf("core: relation %q needs attributes", name)
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return fmt.Errorf("core: relation %q has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	db.Rels[name] = &URelSet{Attrs: append([]string(nil), attrs...)}
	db.relOrder = append(db.relOrder, name)
	return nil
}

// AddPartition declares a vertical partition of relation rel covering
// the given attributes (each must belong to the relation; partitions
// may overlap, cf. Section 2). Returns the partition for row insertion.
func (db *UDB) AddPartition(rel, name string, attrs ...string) (*URelation, error) {
	rs, ok := db.Rels[rel]
	if !ok {
		return nil, fmt.Errorf("core: unknown relation %q", rel)
	}
	for _, a := range attrs {
		found := false
		for _, ra := range rs.Attrs {
			if a == ra {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: attribute %q not in relation %q", a, rel)
		}
	}
	if name == "" {
		name = fmt.Sprintf("u_%s_%d", rel, len(rs.Parts))
	}
	u := &URelation{Name: name, RelName: rel, Attrs: append([]string(nil), attrs...)}
	rs.Parts = append(rs.Parts, u)
	return u, nil
}

// MustAddRelation / MustAddPartition panic on error; for examples.
func (db *UDB) MustAddRelation(name string, attrs ...string) {
	if err := db.AddRelation(name, attrs...); err != nil {
		panic(err)
	}
}

// MustAddPartition panics on error; for examples.
func (db *UDB) MustAddPartition(rel, name string, attrs ...string) *URelation {
	u, err := db.AddPartition(rel, name, attrs...)
	if err != nil {
		panic(err)
	}
	return u
}

// RelNames returns the logical relation names in declaration order.
func (db *UDB) RelNames() []string {
	return append([]string(nil), db.relOrder...)
}

// CoverageComplete reports whether every attribute of every relation is
// covered by at least one partition (a completeness sanity check before
// querying).
func (db *UDB) CoverageComplete() error {
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		for _, a := range rs.Attrs {
			covered := false
			for _, p := range rs.Parts {
				for _, pa := range p.Attrs {
					if pa == a {
						covered = true
						break
					}
				}
			}
			if !covered {
				return fmt.Errorf("core: attribute %s.%s covered by no partition", name, a)
			}
		}
	}
	return nil
}

// SizeBytes estimates the total representation size (partitions plus
// world table), the paper's Figure 9 "dbsize" metric.
func (db *UDB) SizeBytes() int64 {
	n := db.W.SizeBytes()
	for _, rs := range db.Rels {
		for _, p := range rs.Parts {
			n += p.SizeBytes()
		}
	}
	return n
}

// Materialize loads every storage-backed partition into memory (see
// URelation.Materialize); afterwards the database behaves exactly like
// a freshly built in-memory one.
func (db *UDB) Materialize() error {
	for _, name := range db.relOrder {
		for _, p := range db.Rels[name].Parts {
			if err := p.Materialize(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close releases resources held by storage backings (open segment
// files). In-memory databases have nothing to close.
func (db *UDB) Close() error {
	var first error
	for _, name := range db.relOrder {
		for _, p := range db.Rels[name].Parts {
			if c, ok := p.Back.(io.Closer); ok {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// requireMaterialized guards the representation-level algorithms that
// read partition rows directly (validation, normalization, reduction,
// world enumeration): on a storage-backed database they would silently
// see empty partitions, so they fail loudly instead and point the
// caller at Materialize.
func (db *UDB) requireMaterialized(op string) error {
	for _, name := range db.relOrder {
		for _, p := range db.Rels[name].Parts {
			if p.Back != nil {
				return fmt.Errorf("core: %s requires a materialized database: partition %s is storage-backed (call Materialize first)", op, p.Name)
			}
		}
	}
	return nil
}

// mustMaterialized panics for the no-error entry points (ground-truth
// world enumeration); silently wrong results would be worse.
func (db *UDB) mustMaterialized(op string) {
	if err := db.requireMaterialized(op); err != nil {
		panic(err)
	}
}

// Clone deep-copies the database. In-memory state is shared with
// nothing; storage-backed partitions share their read-only backing
// with the original, so UDB.Close on either database releases the
// segment files for both (Materialize one of them first to detach).
func (db *UDB) Clone() *UDB {
	out := &UDB{W: db.W.Clone(), Rels: map[string]*URelSet{}, relOrder: append([]string(nil), db.relOrder...)}
	for name, rs := range db.Rels {
		nrs := &URelSet{Attrs: append([]string(nil), rs.Attrs...)}
		for _, p := range rs.Parts {
			nrs.Parts = append(nrs.Parts, p.Clone())
		}
		out.Rels[name] = nrs
	}
	return out
}

// Validate checks that the database is well-formed per Definition 2.2:
// every descriptor's graph is a subset of W, and no two tuples provide
// contradictory values for the same tuple field in a shared world (the
// paper's Example 2.3). Storage-backed databases must be materialized
// first.
func (db *UDB) Validate() error {
	if err := db.requireMaterialized("Validate"); err != nil {
		return err
	}
	for _, name := range db.relOrder {
		rs := db.Rels[name]
		for _, p := range rs.Parts {
			for i, r := range p.Rows {
				if !r.D.ValidIn(db.W) {
					return fmt.Errorf("core: %s row %d: descriptor %s not a subset of W",
						p.Name, i, r.D)
				}
			}
		}
		// Contradiction check across (and within) partitions.
		for pi, p1 := range rs.Parts {
			for pj := pi; pj < len(rs.Parts); pj++ {
				p2 := rs.Parts[pj]
				shared := sharedAttrs(p1.Attrs, p2.Attrs)
				if len(shared) == 0 {
					continue
				}
				if err := checkNoContradiction(p1, p2, shared, pi == pj); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sharedAttrs(a, b []string) [][2]int {
	var out [][2]int
	for i, x := range a {
		for j, y := range b {
			if x == y {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

func checkNoContradiction(p1, p2 *URelation, shared [][2]int, same bool) error {
	// Group p2 rows by tid for pairwise checks.
	byTID := map[int64][]int{}
	for i, r := range p2.Rows {
		byTID[r.TID] = append(byTID[r.TID], i)
	}
	for i1, r1 := range p1.Rows {
		for _, i2 := range byTID[r1.TID] {
			if same && i2 <= i1 {
				continue
			}
			r2 := p2.Rows[i2]
			if !r1.D.ConsistentWith(r2.D) {
				continue
			}
			for _, s := range shared {
				if !engine.Equal(r1.Vals[s[0]], r2.Vals[s[1]]) {
					return fmt.Errorf(
						"core: invalid database: %s and %s assign different values to field (tid=%d, attr=%s) in a shared world",
						p1.Name, p2.Name, r1.TID, p1.Attrs[s[0]])
				}
			}
		}
	}
	return nil
}

// inferKinds derives engine column kinds for a relation's attributes
// from the partition data (first non-null value wins).
func (db *UDB) inferKinds(rel string) map[string]engine.Kind {
	rs := db.Rels[rel]
	kinds := map[string]engine.Kind{}
	for _, p := range rs.Parts {
		var backed []engine.Kind
		if p.Back != nil {
			backed = p.Back.AttrKinds()
		}
		for ai, a := range p.Attrs {
			if _, done := kinds[a]; done {
				continue
			}
			if backed != nil {
				if ai < len(backed) && backed[ai] != engine.KindNull {
					kinds[a] = backed[ai]
				}
				continue
			}
			for _, r := range p.Rows {
				if !r.Vals[ai].IsNull() {
					kinds[a] = r.Vals[ai].K
					break
				}
			}
		}
	}
	for _, a := range rs.Attrs {
		if _, ok := kinds[a]; !ok {
			kinds[a] = engine.KindNull
		}
	}
	return kinds
}

// sortURows orders rows by (tid, descriptor, values) for deterministic
// output in tests and printing.
func sortURows(rows []URow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].TID != rows[j].TID {
			return rows[i].TID < rows[j].TID
		}
		di, dj := rows[i].D, rows[j].D
		for k := 0; k < len(di) && k < len(dj); k++ {
			if di[k] != dj[k] {
				if di[k].Var != dj[k].Var {
					return di[k].Var < dj[k].Var
				}
				return di[k].Val < dj[k].Val
			}
		}
		if len(di) != len(dj) {
			return len(di) < len(dj)
		}
		return engine.CompareTuples(rows[i].Vals, rows[j].Vals) < 0
	})
}
