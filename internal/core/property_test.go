package core

import (
	"fmt"
	"math/rand"
	"testing"

	"urel/internal/engine"
	"urel/internal/ws"
)

// randUDB generates a small random, valid U-relational database. Per
// (tuple id, partition) it emits either one certain row or a set of
// pairwise-inconsistent alternatives over one variable, which keeps the
// database valid by construction (Definition 2.2). The result may be
// non-reduced (some tids missing from some partitions).
func randUDB(rng *rand.Rand) *UDB {
	db := NewUDB()
	nVars := 2 + rng.Intn(2)
	vars := make([]ws.Var, nVars)
	for i := range vars {
		domSize := 2 + rng.Intn(2)
		dom := make([]ws.Val, domSize)
		for j := range dom {
			dom[j] = ws.Val(j + 1)
		}
		vars[i] = db.W.MustNewVar(fmt.Sprintf("v%d", i), dom...)
	}
	nRels := 1 + rng.Intn(2)
	for ri := 0; ri < nRels; ri++ {
		name := fmt.Sprintf("r%d", ri)
		nAttrs := 2 + rng.Intn(2)
		attrs := make([]string, nAttrs)
		for i := range attrs {
			attrs[i] = fmt.Sprintf("a%d", i)
		}
		db.MustAddRelation(name, attrs...)
		// Disjoint partition cover.
		nParts := 1 + rng.Intn(nAttrs)
		bounds := append([]int{0}, sortedCuts(rng, nAttrs, nParts)...)
		var parts []*URelation
		for pi := 0; pi+1 < len(bounds); pi++ {
			lo, hi := bounds[pi], bounds[pi+1]
			if lo == hi {
				continue
			}
			parts = append(parts, db.MustAddPartition(name, "", attrs[lo:hi]...))
		}
		nTIDs := 2 + rng.Intn(4)
		for tid := int64(1); tid <= int64(nTIDs); tid++ {
			for _, p := range parts {
				switch rng.Intn(5) {
				case 0: // missing: leaves the database non-reduced
					continue
				case 1, 2: // certain row
					p.Add(nil, tid, randVals(rng, len(p.Attrs))...)
				default: // alternatives over one variable
					x := vars[rng.Intn(len(vars))]
					dom := db.W.Domain(x)
					for _, v := range dom {
						if rng.Intn(4) == 0 {
							continue // subset of the domain
						}
						d := ws.Descriptor{ws.A(x, v)}
						// Occasionally widen the descriptor with a second
						// variable (same value for all alternatives keeps
						// pairwise inconsistency via x).
						if rng.Intn(3) == 0 {
							y := vars[rng.Intn(len(vars))]
							if y != x {
								yv := db.W.Domain(y)[rng.Intn(db.W.DomainSize(y))]
								d, _ = d.Union(ws.Descriptor{ws.A(y, yv)})
							}
						}
						p.Add(d, tid, randVals(rng, len(p.Attrs))...)
					}
				}
			}
		}
	}
	return db
}

func sortedCuts(rng *rand.Rand, n, k int) []int {
	cuts := map[int]bool{n: true}
	for len(cuts) < k {
		cuts[1+rng.Intn(n)] = true
	}
	out := make([]int, 0, len(cuts))
	for c := range cuts {
		out = append(out, c)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func randVals(rng *rand.Rand, n int) []engine.Value {
	out := make([]engine.Value, n)
	for i := range out {
		out[i] = engine.Int(int64(rng.Intn(3)))
	}
	return out
}

// randQuery generates a random positive RA query over the database.
func randQuery(rng *rand.Rand, db *UDB, depth int) Query {
	rels := db.RelNames()
	if depth <= 0 || rng.Intn(3) == 0 {
		name := rels[rng.Intn(len(rels))]
		return RelAs(name, fmt.Sprintf("t%d", rng.Int63n(1<<40)))
	}
	switch rng.Intn(5) {
	case 0: // selection
		q := randQuery(rng, db, depth-1)
		attrs, err := q.Attrs(db)
		if err != nil || len(attrs) == 0 {
			return q
		}
		a := attrs[rng.Intn(len(attrs))]
		var cond engine.Expr
		if rng.Intn(2) == 0 {
			cond = engine.Cmp(engine.EQ, engine.Col(a), engine.ConstInt(int64(rng.Intn(3))))
		} else {
			b := attrs[rng.Intn(len(attrs))]
			cond = engine.Cmp(engine.CmpOp(rng.Intn(6)), engine.Col(a), engine.Col(b))
		}
		return Select(q, cond)
	case 1: // projection
		q := randQuery(rng, db, depth-1)
		attrs, err := q.Attrs(db)
		if err != nil || len(attrs) == 0 {
			return q
		}
		k := 1 + rng.Intn(len(attrs))
		perm := rng.Perm(len(attrs))[:k]
		sel := make([]string, k)
		for i, p := range perm {
			sel[i] = attrs[p]
		}
		return Project(q, sel...)
	case 2: // join
		l := randQuery(rng, db, depth-1)
		r := randQuery(rng, db, depth-1)
		la, err1 := l.Attrs(db)
		ra, err2 := r.Attrs(db)
		if err1 != nil || err2 != nil || len(la) == 0 || len(ra) == 0 {
			return l
		}
		var cond engine.Expr
		if rng.Intn(3) > 0 {
			cond = engine.Cmp(engine.EQ,
				engine.Col(la[rng.Intn(len(la))]),
				engine.Col(ra[rng.Intn(len(ra))]))
		}
		return Join(l, r, cond)
	case 3: // union of two same-relation projections
		name := rels[rng.Intn(len(rels))]
		attrs := db.Rels[name].Attrs
		k := 1 + rng.Intn(len(attrs))
		perm1 := rng.Perm(len(attrs))[:k]
		perm2 := rng.Perm(len(attrs))[:k]
		a1 := RelAs(name, fmt.Sprintf("ua%d", rng.Int63n(1<<40)))
		a2 := RelAs(name, fmt.Sprintf("ub%d", rng.Int63n(1<<40)))
		sel1 := make([]string, k)
		sel2 := make([]string, k)
		for i := range perm1 {
			sel1[i] = a1.alias() + "." + attrs[perm1[i]]
			sel2[i] = a2.alias() + "." + attrs[perm2[i]]
		}
		return UnionOf(Project(a1, sel1...), Project(a2, sel2...))
	default:
		return randQuery(rng, db, depth-1)
	}
}

const maxPropWorlds = 4000

// TestPropertyTranslationMatchesGroundTruth is the paper's Theorem 3.5
// as a property: for random reduced databases and random positive RA
// queries, the purely relational translation computes exactly the set
// of possible answer tuples.
func TestPropertyTranslationMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checked := 0
	for iter := 0; iter < 120; iter++ {
		db := randUDB(rng).Reduce()
		if _, err := db.W.CountWorlds(maxPropWorlds); err != nil {
			continue
		}
		q := randQuery(rng, db, 2)
		gt, err := db.PossibleGroundTruth(q, maxPropWorlds)
		if err != nil {
			t.Fatalf("iter %d: ground truth: %v (query %s)", iter, err, q)
		}
		res, err := db.EvalPoss(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("iter %d: eval: %v (query %s)", iter, err, q)
		}
		if !res.EqualAsSet(gt) {
			t.Fatalf("iter %d: translation mismatch for %s:\ntranslated (%d rows):\n%s\nground truth (%d rows):\n%s",
				iter, q, res.Len(), res, gt.Len(), gt)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

// TestPropertyOptimizerPreservesSemantics: optimized and unoptimized
// physical plans agree on translated queries (the Figure 2/3 algebraic
// equivalences as exercised through the engine optimizer).
func TestPropertyOptimizerPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 60; iter++ {
		db := randUDB(rng).Reduce()
		q := randQuery(rng, db, 2)
		a, err := db.EvalPoss(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		b, err := db.EvalPoss(q, engine.ExecConfig{DisableOptimizer: true})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !a.EqualAsSet(b) {
			t.Fatalf("iter %d: optimizer changed result of %s", iter, q)
		}
		// Physical join ablation.
		for _, algo := range []engine.JoinAlgo{engine.JoinMerge, engine.JoinNestedLoop} {
			c, err := db.EvalPoss(q, engine.ExecConfig{Join: algo})
			if err != nil {
				t.Fatalf("iter %d: algo %v: %v", iter, algo, err)
			}
			if !a.EqualAsSet(c) {
				t.Fatalf("iter %d: join algo %v changed result of %s", iter, algo, q)
			}
		}
	}
}

// TestPropertyCertainAnswers: the normalize + Lemma 4.3 pipeline equals
// the per-world intersection.
func TestPropertyCertainAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for iter := 0; iter < 60; iter++ {
		db := randUDB(rng).Reduce()
		if _, err := db.W.CountWorlds(maxPropWorlds); err != nil {
			continue
		}
		q := randQuery(rng, db, 1)
		gt, err := db.CertainGroundTruth(q, maxPropWorlds)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		got, err := db.CertainAnswers(q)
		if err != nil {
			t.Fatalf("iter %d: certain answers: %v (query %s)", iter, err, q)
		}
		if !got.EqualAsSet(gt) {
			t.Fatalf("iter %d: certain mismatch for %s:\ngot (%d):\n%s\nwant (%d):\n%s",
				iter, q, got.Len(), got, gt.Len(), gt)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

// TestPropertyCertainRAEqualsDirect: the Lemma 4.3 relational query and
// the direct algorithm agree on normalized results.
func TestPropertyCertainRAEqualsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 60; iter++ {
		db := randUDB(rng).Reduce()
		q := randQuery(rng, db, 1)
		res, err := db.Eval(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		norm, err := res.Normalize()
		if err != nil {
			continue // component blowup guard
		}
		ra, err := norm.CertainTuplesRA()
		if err != nil {
			t.Fatalf("iter %d: RA certain: %v", iter, err)
		}
		direct := norm.CertainTuplesDirect()
		if !ra.EqualAsSet(direct) {
			t.Fatalf("iter %d: RA and direct certain disagree for %s:\nRA:\n%s\ndirect:\n%s",
				iter, q, ra, direct)
		}
	}
}

// TestPropertyNormalizePreservesWorldSet is Theorem 4.2 as a property.
func TestPropertyNormalizePreservesWorldSet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for iter := 0; iter < 60; iter++ {
		db := randUDB(rng).Reduce()
		if _, err := db.W.CountWorlds(maxPropWorlds); err != nil {
			continue
		}
		norm, err := db.Normalize()
		if err != nil {
			t.Fatalf("iter %d: normalize: %v", iter, err)
		}
		// All descriptors have size ≤ 1.
		for _, name := range norm.RelNames() {
			for _, p := range norm.Rels[name].Parts {
				if p.MaxDescriptorWidth() > 1 {
					t.Fatalf("iter %d: descriptor of width %d after normalization",
						iter, p.MaxDescriptorWidth())
				}
			}
		}
		sig1, err := db.WorldSetSignature(maxPropWorlds)
		if err != nil {
			continue
		}
		sig2, err := norm.WorldSetSignature(maxPropWorlds * 8)
		if err != nil {
			t.Fatalf("iter %d: normalized signature: %v", iter, err)
		}
		if !equalStrings(sig1, sig2) {
			t.Fatalf("iter %d: normalization changed the world-set (%d vs %d distinct worlds)",
				iter, len(sig1), len(sig2))
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

// TestPropertyReducePreservesWorldSet: reduction removes rows but never
// changes the represented world-set, and its output is reduced.
func TestPropertyReducePreservesWorldSet(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	checked := 0
	for iter := 0; iter < 60; iter++ {
		db := randUDB(rng)
		if _, err := db.W.CountWorlds(maxPropWorlds); err != nil {
			continue
		}
		red := db.Reduce()
		if !red.IsReduced() {
			t.Fatalf("iter %d: Reduce output not reduced", iter)
		}
		sig1, err := db.WorldSetSignature(maxPropWorlds)
		if err != nil {
			continue
		}
		sig2, err := red.WorldSetSignature(maxPropWorlds)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !equalStrings(sig1, sig2) {
			t.Fatalf("iter %d: reduction changed the world-set", iter)
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

// TestPropertySemijoinReductionFixpoint: the paper's semijoin-based
// reduction, iterated to a fixpoint, agrees with the exact reduction on
// these databases.
func TestPropertySemijoinReductionFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		db := randUDB(rng)
		exact := db.Reduce()
		fix, _, err := db.ReduceSemijoinFixpoint()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if totalRows(fix) != totalRows(exact) {
			// The semijoin fixpoint may keep rows whose pairwise matches
			// never combine globally; verify the world-sets still agree
			// (the kept rows must be harmless).
			s1, err1 := exact.WorldSetSignature(maxPropWorlds)
			s2, err2 := fix.WorldSetSignature(maxPropWorlds)
			if err1 != nil || err2 != nil {
				continue
			}
			if !equalStrings(s1, s2) {
				t.Fatalf("iter %d: semijoin fixpoint changed the world-set", iter)
			}
		}
	}
}

// TestPropertyConfidenceMatchesWorldEnumeration: exact confidence equals
// the probability mass of worlds containing the tuple.
func TestPropertyConfidenceMatchesWorldEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checked := 0
	for iter := 0; iter < 40; iter++ {
		db := randUDB(rng).Reduce()
		if _, err := db.W.CountWorlds(2000); err != nil {
			continue
		}
		q := randQuery(rng, db, 1)
		res, err := db.Eval(q, engine.ExecConfig{})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		confs, err := res.Confidences()
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// Brute force: for each tuple, sum world probabilities.
		inner := stripPoss(q)
		want := map[string]float64{}
		cat := engine.NewCatalog()
		db.EnumWorlds(func(f ws.Valuation, world map[string]*engine.Relation) bool {
			p, err := classicalPlan(inner, world)
			if err != nil {
				t.Fatal(err)
			}
			rel, err := engine.Run(p, cat, engine.ExecConfig{DisableOptimizer: true})
			if err != nil {
				t.Fatal(err)
			}
			wp := db.W.WorldProb(f)
			for _, row := range rel.Distinct().Rows {
				want[engine.KeyString(row)] += wp
			}
			return true
		})
		for _, tc := range confs {
			w := want[engine.KeyString(tc.Vals)]
			if diff := tc.P - w; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("iter %d: confidence %v for %v, world enumeration says %v (query %s)",
					iter, tc.P, tc.Vals, w, q)
			}
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("too few instances checked: %d", checked)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
