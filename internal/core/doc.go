// Package core implements U-relations, the representation system for
// uncertain databases introduced by Antova, Jansen, Koch and Olteanu in
// "Fast and Simple Relational Processing of Uncertain Data" (ICDE 2008).
//
// A U-relational database represents a finite set of possible worlds
// over a logical schema. Each logical relation is vertically partitioned
// into U-relations U[D; T; B]: D is a ws-descriptor (a set of
// variable-to-value assignments identifying the worlds a tuple belongs
// to), T a tuple identifier, and B a subset of the relation's value
// attributes. The package provides:
//
//   - construction and validation of U-relational databases (Section 2),
//   - the possible-worlds semantics via world enumeration (ground truth),
//   - the translation of positive relational algebra + poss into plain
//     relational algebra over the representation (Section 3, Figure 4),
//     evaluated on the engine substrate,
//   - merge, reduction (Proposition 3.3) and the algebraic equivalences
//     of Figure 2 via the engine optimizer,
//   - normalization of ws-descriptors (Section 4, Algorithm 1),
//   - certain answers on tuple-level normalized U-relations (Lemma 4.3),
//   - the probabilistic extension sketched in Section 7 (confidence
//     computation, exact and Monte-Carlo).
//
// Paper-section map: urelation.go — Section 2 (representation);
// translate.go — Section 3/Figure 4 (query translation); reduce.go —
// Proposition 3.3 (reduction); normalize.go — Section 4/Algorithm 1;
// certain.go — Lemma 4.3; worldops.go — possible-worlds ground truth;
// prob.go — Section 7 (confidences).
package core
