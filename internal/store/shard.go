package store

import (
	"fmt"
	"os"
	"path/filepath"

	"urel/internal/core"
)

// ShardSpec records, inside a shard directory's manifest, which slice
// of a larger catalog the directory holds. Rows of the relations named
// in Sharded are hash-partitioned by tuple id (ShardHash); every other
// relation is replicated in full to every shard so single-shard plans
// can join against it locally. The world table is replicated too —
// ws-descriptors travel with each shard's rows, but the variables they
// reference live in W, and W is small (it never grows with data volume,
// only with uncertainty).
type ShardSpec struct {
	// Index in [0, Count) identifies this shard.
	Index int `json:"index"`
	// Count is the total number of shards in the catalog.
	Count int `json:"count"`
	// Sharded lists the relations whose rows are hash-partitioned; all
	// other relations are full replicas.
	Sharded []string `json:"sharded"`
}

// ShardHash maps a tuple id to its owning shard. The function is part
// of the on-disk contract: manifests written by ShardedSave stay valid
// only while every reader agrees on it, so it must never change for
// existing data. Fibonacci hashing spreads the sequential tids the DML
// path allocates evenly across shards.
func ShardHash(tid int64, count int) int {
	if count <= 1 {
		return 0
	}
	h := uint64(tid) * 0x9e3779b97f4a7c15
	return int(h % uint64(count))
}

// ShardedSave splits db across len(dirs) shard directories: relations
// named in sharded keep only the rows ShardHash assigns to each shard,
// every other relation and the world table are copied whole, and each
// manifest carries the ShardSpec plus the GLOBAL per-relation MaxTID —
// so any shard's writer allocates fresh tuple ids above every shard's
// rows and new ids never collide across the cluster. Each directory is
// a complete, independently openable catalog (Open/OpenCached/txn.Open
// all work on it unchanged).
func ShardedSave(db *core.UDB, dirs []string, sharded []string) error {
	if len(dirs) == 0 {
		return fmt.Errorf("store: sharded save: no shard directories")
	}
	isSharded := map[string]bool{}
	for _, name := range sharded {
		if db.Rels[name] == nil {
			return fmt.Errorf("store: sharded save: unknown relation %q", name)
		}
		isSharded[name] = true
	}

	worlds := EncodeWorldTable(db.W)
	// Global MaxTID per relation, computed once over the unsplit rows.
	maxTID := map[string]int64{}
	loaded := map[string][][]core.URow{}
	for _, relName := range db.RelNames() {
		rs := db.Rels[relName]
		parts := make([][]core.URow, len(rs.Parts))
		for pi, p := range rs.Parts {
			rows := p.Rows
			if p.Back != nil {
				var err error
				if rows, err = p.Back.Load(); err != nil {
					return fmt.Errorf("store: sharded save %s: %w", p.Name, err)
				}
			}
			parts[pi] = rows
			for _, r := range rows {
				if r.TID > maxTID[relName] {
					maxTID[relName] = r.TID
				}
			}
		}
		loaded[relName] = parts
	}

	for si, dir := range dirs {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, WorldsName), worlds, 0o644); err != nil {
			return fmt.Errorf("store: sharded save world table: %w", err)
		}
		man := &Manifest{
			Version: FormatVersion,
			Shard:   &ShardSpec{Index: si, Count: len(dirs), Sharded: append([]string(nil), sharded...)},
		}
		for ri, relName := range db.RelNames() {
			rs := db.Rels[relName]
			mr := ManifestRel{Name: relName, Attrs: rs.Attrs, MaxTID: maxTID[relName]}
			for pi, p := range rs.Parts {
				rows := loaded[relName][pi]
				if isSharded[relName] {
					mine := make([]core.URow, 0, len(rows)/len(dirs)+1)
					for _, r := range rows {
						if ShardHash(r.TID, len(dirs)) == si {
							mine = append(mine, r)
						}
					}
					rows = mine
				}
				file := partFileName(ri, pi)
				width, err := WritePartition(filepath.Join(dir, file), rows, len(p.Attrs), DefaultSegmentRows)
				if err != nil {
					return fmt.Errorf("store: sharded save %s: %w", p.Name, err)
				}
				// No index runs at save time (see Save); when urgen
				// declares indexes, each shard directory builds runs over
				// exactly its own rows, so indexes stay shard-local.
				mr.Parts = append(mr.Parts, ManifestPart{
					Name: p.Name, Attrs: p.Attrs, File: file, Rows: len(rows), Width: width,
				})
			}
			man.Relations = append(man.Relations, mr)
		}
		if err := WriteManifest(dir, man); err != nil {
			return err
		}
	}
	return nil
}
