package store

import (
	"sync"
	"sync/atomic"
	"testing"

	"urel/internal/engine"
)

// drainScan runs a full scan over the handle and returns the tuples.
func drainScan(t *testing.T, h *PartHandle, pruned []bool) []engine.Tuple {
	t.Helper()
	it := &StoreScanIter{Src: srcOf(h), Sch: scanSchema(), Width: 0, AttrIdx: []int{0}, Pruned: [][]bool{pruned}}
	rel, err := engine.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return rel.Rows
}

// TestCachedRescanZeroReadAt is the acceptance-criteria proof: with a
// segment cache attached, re-scanning a partition issues zero ReadAt
// calls — every segment is served decoded from memory — and the cache
// reports the hits.
func TestCachedRescanZeroReadAt(t *testing.T) {
	tr, h := sortedPartition(t)
	cache := NewSegCache(64 << 20)
	h.SetCache(cache)

	tr.reset()
	cold := drainScan(t, h, nil)
	if len(cold) != 1000 {
		t.Fatalf("cold scan returned %d rows, want 1000", len(cold))
	}
	coldReads := len(tr.reads())
	if coldReads == 0 {
		t.Fatal("cold scan issued no reads")
	}

	tr.reset()
	warm := drainScan(t, h, nil)
	if len(warm) != 1000 {
		t.Fatalf("warm scan returned %d rows, want 1000", len(warm))
	}
	if got := tr.reads(); len(got) != 0 {
		t.Fatalf("warm scan issued %d ReadAt calls, want 0: %v", len(got), got)
	}
	st := cache.Stats()
	if st.Hits < 10 {
		t.Fatalf("cache reports %d hits, want >= 10 (one per segment)", st.Hits)
	}
	if st.Misses != 10 {
		t.Fatalf("cache reports %d misses, want 10", st.Misses)
	}
}

// TestCachedFilteredRescan covers the full repeated-selection path:
// the second identical filtered query hits both the prune memo (no
// per-query re-pruning) and the segment cache (zero ReadAt).
func TestCachedFilteredRescan(t *testing.T) {
	tr, h := sortedPartition(t)
	cache := NewSegCache(64 << 20)
	h.SetCache(cache)
	cond := engine.Cmp(engine.LT, engine.Col("r.a"), engine.ConstInt(250))

	run := func() int {
		plan := &StoreScanPlan{Src: srcOf(h), Sch: scanSchema(), Width: 0, AttrIdx: []int{0}, Name: "u_r_a"}
		plan.AdviseFilter(cond)
		if est := int(plan.EstimateRowCount()); est != 300 {
			t.Fatalf("EstimateRowCount = %d, want 300 (3 surviving segments)", est)
		}
		it, err := plan.BuildIter(engine.ExecConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := engine.Drain(engine.NewFilter(it, cond))
		if err != nil {
			t.Fatal(err)
		}
		return rel.Len()
	}

	if n := run(); n != 250 {
		t.Fatalf("first run returned %d rows, want 250", n)
	}
	hits, misses := h.PruneMemoStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("after first run prune memo hits=%d misses=%d, want 0/1", hits, misses)
	}

	tr.reset()
	if n := run(); n != 250 {
		t.Fatalf("second run returned %d rows, want 250", n)
	}
	if got := tr.reads(); len(got) != 0 {
		t.Fatalf("repeated query issued %d ReadAt calls, want 0 (segment cache + prune memo)", len(got))
	}
	hits, misses = h.PruneMemoStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("after second run prune memo hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestSegCacheEviction checks the byte budget is honored LRU-wise.
func TestSegCacheEviction(t *testing.T) {
	_, h := sortedPartition(t)
	// Each 100-row segment costs 100 * (2*0+1) * 8 = 800 bytes for the
	// tid column plus the int values; budget two segments' worth.
	seg0, err := h.ReadSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	per := segmentCost(seg0)
	cache := NewSegCache(2 * per)
	h.SetCache(cache)

	for i := 0; i < 4; i++ {
		if _, err := h.ReadSegment(i); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2 (budget %d, per-segment %d)", st.Entries, 2*per, per)
	}
	if st.Evictions != 2 {
		t.Fatalf("cache evicted %d, want 2", st.Evictions)
	}
	if st.Bytes > st.CapBytes {
		t.Fatalf("cache holds %d bytes over budget %d", st.Bytes, st.CapBytes)
	}
	// Segment 3 is resident (most recent); reading it again is a hit.
	before := cache.Stats().Hits
	if _, err := h.ReadSegment(3); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits != before+1 {
		t.Fatal("expected a hit on the most recently inserted segment")
	}
}

// TestSegCacheSingleflight proves concurrent cold misses on one
// segment decode it once: N goroutines race on an empty cache and the
// underlying reader sees exactly one payload fetch per segment.
func TestSegCacheSingleflight(t *testing.T) {
	tr, h := sortedPartition(t)
	cache := NewSegCache(64 << 20)
	h.SetCache(cache)
	tr.reset()

	const goroutines = 32
	var wg sync.WaitGroup
	var failures atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < h.NumSegments(); i++ {
				seg, err := h.ReadSegment(i)
				if err != nil || seg.n != 100 {
					failures.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatal("concurrent reads failed")
	}
	if got := len(tr.reads()); got != h.NumSegments() {
		t.Fatalf("%d ReadAt calls for %d segments under %d concurrent scans, want one decode per segment",
			got, h.NumSegments(), goroutines)
	}
	st := cache.Stats()
	if int(st.Misses) != h.NumSegments() {
		t.Fatalf("%d misses, want %d", st.Misses, h.NumSegments())
	}
}

// TestSegCacheCloseDuringLoad: a load in flight while its handle
// closes must not be inserted afterwards — handle ids are never
// reused, so the entry could never be hit again and would pin its
// bytes in a long-lived shared cache.
func TestSegCacheCloseDuringLoad(t *testing.T) {
	_, h := sortedPartition(t)
	cache := NewSegCache(64 << 20)
	h.SetCache(cache)

	seg, err := h.readSegment(0)
	if err != nil {
		t.Fatal(err)
	}
	// Emulate the race deterministically: invalidate (as Close does)
	// while a load result is about to be published.
	cache.invalidateHandle(h.id)
	cache.mu.Lock()
	cache.insert(segKey{handle: h.id, seg: 0}, seg)
	cache.mu.Unlock()
	if st := cache.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("closed handle's segment was retained: %+v", st)
	}
}

// TestSegCacheDisabled checks a zero-budget cache passes through.
func TestSegCacheDisabled(t *testing.T) {
	tr, h := sortedPartition(t)
	h.SetCache(NewSegCache(0))
	tr.reset()
	drainScan(t, h, nil)
	drainScan(t, h, nil)
	if len(tr.reads()) == 0 {
		t.Fatal("disabled cache should not retain segments")
	}
}
