package store

import (
	"fmt"

	"urel/internal/engine"
)

// StoreScanPlan is the leaf plan over one stored partition (all of its
// file layers plus the source's in-memory delta). It implements
// engine.SourcePlan (so Build lowers it and the estimators cost it
// without the engine importing this package) and engine.FilterAdvisor:
// a selection evaluated directly above the scan prunes file segments
// whose footer min/max statistics refute it, and the surviving row
// count is what EstimateRowCount reports — so the parallelism gate
// sees post-pruning cardinality. In-memory delta rows carry no
// statistics and are never pruned (they flow through the filter
// above), and tombstones are orthogonal to pruning: a pruned segment
// only loses rows the filter would reject anyway.
type StoreScanPlan struct {
	Src     *PartSource
	Sch     engine.Schema
	Width   int   // target descriptor width (>= stored width)
	AttrIdx []int // stored value-column index per schema attr column
	Name    string

	pruned [][]bool // per layer, per segment; nil until pruning bites
}

// Schema returns the scan's output schema.
func (p *StoreScanPlan) Schema(*engine.Catalog) (engine.Schema, error) { return p.Sch, nil }

// Children returns nil: the scan is a leaf.
func (p *StoreScanPlan) Children() []engine.Plan { return nil }

// WithChildren copies the node (leaves have no children to replace).
func (p *StoreScanPlan) WithChildren([]engine.Plan) engine.Plan { c := *p; return &c }

// Label renders the node for EXPLAIN, including the pruning outcome
// and any delta layers.
func (p *StoreScanPlan) Label() string {
	total := 0
	for _, h := range p.Src.Layers {
		total += h.NumSegments()
	}
	lbl := fmt.Sprintf("Store Scan on %s (%d/%d segments", p.Name, total-p.numPruned(), total)
	if len(p.Src.Layers) > 1 {
		lbl += fmt.Sprintf(", %d layers", len(p.Src.Layers))
	}
	if n := len(p.Src.Mem); n > 0 {
		lbl += fmt.Sprintf(", +%d delta rows", n)
	}
	if t := p.Src.tomb(); t != nil {
		lbl += fmt.Sprintf(", %d tombstones", t.Len())
	}
	return lbl + ")"
}

func (p *StoreScanPlan) numPruned() int {
	n := 0
	for _, layer := range p.pruned {
		for _, sk := range layer {
			if sk {
				n++
			}
		}
	}
	return n
}

// ColumnarScan marks the scan as a columnar leaf for EXPLAIN: its
// iterator serves the stored segment vectors directly.
func (p *StoreScanPlan) ColumnarScan() bool { return true }

// EstimateRowCount sums the rows of the surviving segments plus the
// in-memory delta.
func (p *StoreScanPlan) EstimateRowCount() float64 {
	rows := len(p.Src.Mem)
	for li, h := range p.Src.Layers {
		for i := 0; i < h.NumSegments(); i++ {
			if p.pruned == nil || p.pruned[li] == nil || !p.pruned[li][i] {
				rows += h.SegmentRows(i)
			}
		}
	}
	return float64(rows)
}

// BuildIter lowers the scan to its physical iterator.
func (p *StoreScanPlan) BuildIter(engine.ExecConfig) (engine.Iterator, error) {
	return &StoreScanIter{Src: p.Src, Sch: p.Sch, Width: p.Width, AttrIdx: p.AttrIdx, Pruned: p.pruned}, nil
}

// AdviseFilter inspects the conjuncts of a predicate that will be
// applied directly above the scan and marks segments that provably
// produce no satisfying row. Only column-vs-constant comparisons on
// value-attribute columns are used; everything else is ignored. The
// advice is safe because a comparison over NULL evaluates to false
// (engine.CmpExpr), so min/max over the non-null values — ordered by
// engine.Compare, the evaluator's own order — bound every row that
// could pass.
//
// The pruning decision is memoized per file layer on the partition
// handle, per canonical (stored column, op, constant) conjunct set, so
// a repeated selection — the common case under a serving workload with
// a plan cache — reuses the bitmap and its surviving-row count instead
// of re-testing every segment's statistics per query. Handles are
// immutable (flush and compaction publish new handles under new ids),
// so a memo entry can never go stale while a writer commits.
func (p *StoreScanPlan) AdviseFilter(cond engine.Expr) {
	attrStart := 2*p.Width + 1 // descriptor pairs, then tid, then attrs
	var cmps []colCmp
	key := ""
	for _, c := range engine.SplitConjuncts(cond) {
		ce, ok := c.(*engine.CmpExpr)
		if !ok {
			continue
		}
		col, cst, op, ok := engine.NormalizeColCmp(ce)
		if !ok {
			continue
		}
		si := p.Sch.IndexOf(col)
		if si < attrStart || si >= p.Sch.Len() {
			continue
		}
		stored := p.AttrIdx[si-attrStart]
		cmps = append(cmps, colCmp{stored: stored, op: op, cst: cst})
		key += fmt.Sprintf("a%d %s %s;", stored, op, cst.Quoted())
	}
	if len(cmps) == 0 {
		return
	}
	for li, h := range p.Src.Layers {
		res := h.prunedFor(key, cmps)
		if res.pruned == nil {
			continue
		}
		if p.pruned == nil {
			p.pruned = make([][]bool, len(p.Src.Layers))
		}
		if p.pruned[li] == nil {
			p.pruned[li] = make([]bool, h.NumSegments())
		}
		// Merge: stacked filters accumulate, and a segment refuted by
		// any advised predicate stays pruned.
		for i, sk := range res.pruned {
			if sk {
				p.pruned[li][i] = true
			}
		}
	}
}

// segmentRefutes reports whether no row of a segment can satisfy
// "col op cst" given the column's statistics.
func segmentRefutes(st colStats, op engine.CmpOp, cst engine.Value) bool {
	if st.NonNull == 0 {
		// Every value is NULL; NULL satisfies no comparison.
		return true
	}
	switch op {
	case engine.EQ:
		return engine.Compare(cst, st.Min) < 0 || engine.Compare(cst, st.Max) > 0
	case engine.NE:
		return engine.Compare(st.Min, st.Max) == 0 && engine.Compare(st.Min, cst) == 0
	case engine.LT:
		return engine.Compare(st.Min, cst) >= 0
	case engine.LE:
		return engine.Compare(st.Min, cst) > 0
	case engine.GT:
		return engine.Compare(st.Max, cst) <= 0
	case engine.GE:
		return engine.Compare(st.Max, cst) < 0
	default:
		return false
	}
}

// StoreScanIter is the cold-scan physical operator: an
// engine.ColBatchIterator whose file segments are already columnar, so
// NextColBatch wraps the decoded descriptor/tid/value vectors into an
// engine.ColBatch with no transposition at all — one batch per
// segment. Layers are scanned base-first, then the source's in-memory
// delta rows come out as a final batch. Tombstones narrow file
// batches through the selection vector (the decoded vectors stay
// zero-copy and shared; only live row indices are listed), so a
// partition without deletes pays nothing. The row paths
// (Next/NextBatch) materialize a tuple block per segment for consumers
// that want rows; a columnar consumer (a filter or projection directly
// above the scan) never pays that cost.
type StoreScanIter struct {
	Src     *PartSource
	Sch     engine.Schema
	Width   int
	AttrIdx []int
	Pruned  [][]bool // per layer, segments to skip (nil = scan everything)

	// SegmentsRead counts file segments actually fetched and decoded;
	// tests and EXPLAIN ANALYZE-style introspection read it after a
	// scan. CacheHits counts how many of those were served from the
	// shared decoded-segment cache; BytesDecoded is the encoded size of
	// the segments this scan itself fetched and decoded (misses only).
	SegmentsRead int
	CacheHits    int64
	BytesDecoded int64

	layer   int // current layer index
	seg     int // next segment index within the layer
	memDone bool
	rows    []engine.Tuple
	pos     int
	cb      engine.ColBatch // reused columnar batch header
	sel     []int32         // reused tombstone selection vector
	pad     []int64         // shared zero column for width padding
	tomb    TombSet
	tf      TombFilter // tombstones scoped to the current layer
	tfLayer int        // layer tf was computed for
}

// Open resets the scan to the first segment.
func (s *StoreScanIter) Open() error {
	s.layer = 0
	s.seg = 0
	s.memDone = len(s.Src.Mem) == 0
	s.rows = nil
	s.pos = 0
	s.SegmentsRead = 0
	s.CacheHits = 0
	s.BytesDecoded = 0
	s.tomb = s.Src.tomb()
	s.tf = nil
	s.tfLayer = -1
	if s.tomb != nil && len(s.Src.Layers) > 0 {
		s.tf = s.tomb.Layer(0)
		s.tfLayer = 0
	}
	return nil
}

// nextSegment decodes the next unpruned non-empty file segment,
// together with its layer's stored width. Returns nil at the end of
// the file layers (the in-memory delta is served separately).
func (s *StoreScanIter) nextSegment() (*segment, int, error) {
	for s.layer < len(s.Src.Layers) {
		h := s.Src.Layers[s.layer]
		if s.seg >= h.NumSegments() {
			s.layer++
			s.seg = 0
			continue
		}
		i := s.seg
		s.seg++
		if s.Pruned != nil && s.Pruned[s.layer] != nil && s.Pruned[s.layer][i] {
			continue
		}
		seg, hit, err := h.ReadSegmentStats(i)
		if err != nil {
			return nil, 0, err
		}
		s.SegmentsRead++
		if hit {
			s.CacheHits++
		} else {
			s.BytesDecoded += h.SegmentBytes(i)
		}
		if seg.n == 0 {
			continue
		}
		if s.tomb != nil && s.tfLayer != s.layer {
			s.tf = s.tomb.Layer(s.layer)
			s.tfLayer = s.layer
		}
		return seg, h.Width(), nil
	}
	return nil, 0, nil
}

// tombSel builds the selection vector of live rows for a decoded
// segment under the current layer's tombstone filter, or nil when
// every row survives.
func (s *StoreScanIter) tombSel(seg *segment, width int) ([]int32, error) {
	if s.tf == nil {
		return nil, nil
	}
	if s.sel == nil {
		// Non-nil even when empty: an all-dead segment must yield an
		// empty selection, not the nil "select everything".
		s.sel = make([]int32, 0, seg.n)
	}
	dead := 0
	sel := s.sel[:0]
	for r := 0; r < seg.n; r++ {
		if s.tf.HasTID(seg.tid[r]) {
			d, err := segDescriptor(seg, width, r)
			if err != nil {
				return nil, corruptf("row %d: %v", r, err)
			}
			if s.tf.Has(seg.tid[r], d) {
				dead++
				continue
			}
		}
		sel = append(sel, int32(r))
	}
	s.sel = sel
	if dead == 0 {
		return nil, nil
	}
	return sel, nil
}

// advance decodes the next unpruned segment (or the in-memory delta)
// into a tuple block. Returns false at end of stream.
func (s *StoreScanIter) advance() (bool, error) {
	for {
		seg, fw, err := s.nextSegment()
		if err != nil {
			return false, err
		}
		if seg == nil {
			if s.memDone {
				return false, nil
			}
			s.memDone = true
			rows, err := s.memTuples()
			if err != nil || len(rows) == 0 {
				return false, err
			}
			s.rows = rows
			s.pos = 0
			return true, nil
		}
		sel, err := s.tombSel(seg, fw)
		if err != nil {
			return false, err
		}
		s.materialize(seg, fw, sel)
		if len(s.rows) == 0 {
			continue
		}
		s.pos = 0
		return true, nil
	}
}

// materialize builds the segment's live tuples over one backing cell
// array, so batches handed upward are sub-slices with no per-row
// copying. sel lists the surviving physical rows (nil = all).
func (s *StoreScanIter) materialize(seg *segment, fw int, sel []int32) {
	n := seg.n
	if sel != nil {
		n = len(sel)
	}
	ncols := s.Sch.Len()
	cells := make([]engine.Value, n*ncols)
	rows := make([]engine.Tuple, n)
	for out := 0; out < n; out++ {
		r := out
		if sel != nil {
			r = int(sel[out])
		}
		t := cells[out*ncols : (out+1)*ncols : (out+1)*ncols]
		for k := 0; k < s.Width; k++ {
			// Pad to the target width by repeating the first stored pair
			// (the stored pairs are themselves already padded).
			src := k
			if src >= fw {
				src = 0
			}
			if fw == 0 {
				t[2*k] = engine.Int(0)
				t[2*k+1] = engine.Int(0)
			} else {
				t[2*k] = engine.Int(seg.dvar[src][r])
				t[2*k+1] = engine.Int(seg.drng[src][r])
			}
		}
		t[2*s.Width] = engine.Int(seg.tid[r])
		for j, ai := range s.AttrIdx {
			t[2*s.Width+1+j] = seg.cols[ai].Value(r)
		}
		rows[out] = t
	}
	s.rows = rows
}

// memTuples materializes the in-memory delta rows in the scan's
// schema (padded descriptor pairs, tid, selected attributes). Delta
// rows are never tombstone-filtered: commits remove deleted memtable
// rows eagerly, so whatever remains is live by construction.
func (s *StoreScanIter) memTuples() ([]engine.Tuple, error) {
	mem := s.Src.Mem
	ncols := s.Sch.Len()
	out := make([]engine.Tuple, 0, len(mem))
	for _, r := range mem {
		t := make(engine.Tuple, ncols)
		d := r.D.Pad(s.Width)
		for k := 0; k < s.Width; k++ {
			t[2*k] = engine.Int(int64(d[k].Var))
			t[2*k+1] = engine.Int(int64(d[k].Val))
		}
		t[2*s.Width] = engine.Int(r.TID)
		for j, ai := range s.AttrIdx {
			t[2*s.Width+1+j] = r.Vals[ai]
		}
		out = append(out, t)
	}
	return out, nil
}

// NextColBatch serves one file segment per batch, handing the decoded
// segment vectors to the engine directly: descriptor and tid columns
// as typed int vectors, value columns as their decoded typed vectors.
// This is the path that deletes the row transpose — decoded segments
// are immutable and shared (see SegCache), so the vectors are served
// zero-copy; tombstones only narrow the batch's selection vector. The
// in-memory delta comes out last as one transposed batch.
func (s *StoreScanIter) NextColBatch() (*engine.ColBatch, bool, error) {
	for {
		seg, fw, err := s.nextSegment()
		if err != nil {
			return nil, false, err
		}
		if seg == nil {
			if s.memDone {
				return nil, false, nil
			}
			s.memDone = true
			rows, err := s.memTuples()
			if err != nil || len(rows) == 0 {
				return nil, false, err
			}
			s.memColBatch(rows)
			return &s.cb, true, nil
		}
		sel, err := s.tombSel(seg, fw)
		if err != nil {
			return nil, false, err
		}
		if sel != nil && len(sel) == 0 {
			continue
		}
		ncols := s.Sch.Len()
		if cap(s.cb.Cols) < ncols {
			s.cb.Cols = make([]engine.ColVec, ncols)
		}
		cols := s.cb.Cols[:ncols]
		for k := 0; k < s.Width; k++ {
			src := k
			if src >= fw {
				src = 0
			}
			if fw == 0 {
				z := s.zeroPad(seg.n)
				cols[2*k] = engine.IntVec(z, nil)
				cols[2*k+1] = engine.IntVec(z, nil)
			} else {
				cols[2*k] = engine.IntVec(seg.dvar[src], nil)
				cols[2*k+1] = engine.IntVec(seg.drng[src], nil)
			}
		}
		cols[2*s.Width] = engine.IntVec(seg.tid, nil)
		for j, ai := range s.AttrIdx {
			cols[2*s.Width+1+j] = seg.cols[ai]
		}
		s.cb = engine.ColBatch{Sch: s.Sch, Cols: cols, N: seg.n, Sel: sel}
		return &s.cb, true, nil
	}
}

// memColBatch transposes the delta tuples into the reused batch
// header as generic vectors (the delta is the small tail of a scan).
func (s *StoreScanIter) memColBatch(rows []engine.Tuple) {
	ncols := s.Sch.Len()
	n := len(rows)
	if cap(s.cb.Cols) < ncols {
		s.cb.Cols = make([]engine.ColVec, ncols)
	}
	cols := s.cb.Cols[:ncols]
	arena := make([]engine.Value, n*ncols)
	for c := 0; c < ncols; c++ {
		vals := arena[c*n : (c+1)*n : (c+1)*n]
		for r, row := range rows {
			vals[r] = row[c]
		}
		cols[c] = engine.GenericVec(vals)
	}
	s.cb = engine.ColBatch{Sch: s.Sch, Cols: cols, N: n}
}

// ColumnarNative reports that the scan serves columns without any
// transpose (the in-memory delta tail is the one small exception).
func (s *StoreScanIter) ColumnarNative() bool { return true }

// zeroPad returns a shared all-zero int column of length n (only used
// for databases stored with descriptor width zero).
func (s *StoreScanIter) zeroPad(n int) []int64 {
	if len(s.pad) < n {
		s.pad = make([]int64, n)
	}
	return s.pad[:n]
}

// NextBatch returns up to engine.DefaultBatchSize tuples per call.
func (s *StoreScanIter) NextBatch() ([]engine.Tuple, bool, error) {
	for s.pos >= len(s.rows) {
		ok, err := s.advance()
		if err != nil || !ok {
			return nil, false, err
		}
	}
	end := s.pos + engine.DefaultBatchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	batch := s.rows[s.pos:end]
	s.pos = end
	return batch, true, nil
}

// Next serves the single-tuple Volcano interface from the same
// segment block.
func (s *StoreScanIter) Next() (engine.Tuple, bool, error) {
	for s.pos >= len(s.rows) {
		ok, err := s.advance()
		if err != nil || !ok {
			return nil, false, err
		}
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

// Close releases the scan's references (the shared handles stay open).
// The stat counters survive Close so tracing can collect them.
func (s *StoreScanIter) Close() error {
	s.rows = nil
	return nil
}

// OperatorStats reports the scan's store-side effects to a trace span
// (engine.OperatorStats): segments fetched, segments skipped by
// min/max pruning, shared-cache hits, and bytes this scan fetched and
// decoded itself.
func (s *StoreScanIter) OperatorStats(emit func(key string, v int64)) {
	emit("segments_read", int64(s.SegmentsRead))
	emit("cache_hits", s.CacheHits)
	emit("bytes_decoded", s.BytesDecoded)
	var pruned int64
	for _, layer := range s.Pruned {
		for _, sk := range layer {
			if sk {
				pruned++
			}
		}
	}
	emit("segments_pruned", pruned)
}

// Schema returns the scan's output schema.
func (s *StoreScanIter) Schema() engine.Schema { return s.Sch }
